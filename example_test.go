package zipper_test

import (
	"fmt"
	"log"
	"os"
	"sync"

	"zipper"
	"zipper/internal/analysis"
	"zipper/internal/floatbuf"
)

// Example couples a producer that emits two blocks per step with a variance
// analysis, the minimal form of the paper's synthetic workflow.
func Example() {
	dir, err := os.MkdirTemp("", "zipper-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	job, err := zipper.NewJob(zipper.Config{Producers: 1, Consumers: 1, SpoolDir: dir})
	if err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p := job.Producer(0)
		for step := 0; step < 3; step++ {
			for blk := 0; blk < 2; blk++ {
				vals := []float64{float64(step), float64(blk), 1}
				p.Write(step, int64(blk)*24, floatbuf.Encode(vals))
			}
		}
		p.Close()
	}()

	v := analysis.NewVariance()
	n := 0
	for {
		blk, ok := job.Consumer(0).Read()
		if !ok {
			break
		}
		v.Analyze(floatbuf.Decode(blk.Data))
		n++
	}
	wg.Wait()
	job.Wait()

	fmt.Printf("blocks=%d samples=%d\n", n, v.Count())
	// Output: blocks=6 samples=18
}
