// benchbatch records the batching baseline: the same backpressured
// one-producer workload run with the seed's one-block-per-message protocol
// (fresh allocation per payload) and with pooled payloads at several
// MaxBatchBlocks settings, on the real platform. It writes the comparison as
// JSON so CI and future optimization PRs have a committed reference point.
//
// Usage:
//
//	benchbatch [-o BENCH_batching.json] [-blocks N] [-blockbytes B]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"zipper/internal/benchharness"
)

// Row is one protocol variant's measurement.
type Row struct {
	Variant        string  `json:"variant"`
	MaxBatchBlocks int     `json:"max_batch_blocks"`
	Pooled         bool    `json:"pooled"`
	Blocks         int64   `json:"blocks"`
	Messages       int64   `json:"messages"`
	MsgsPerBlock   float64 `json:"msgs_per_block"`
	NsPerBlock     float64 `json:"ns_per_block"`
	AllocBPerBlock float64 `json:"alloc_bytes_per_block"`
	ThroughputMBs  float64 `json:"throughput_mb_per_s"`
}

// Report is the file layout of BENCH_batching.json.
type Report struct {
	BlockBytes int64  `json:"block_bytes"`
	BlocksRun  int    `json:"blocks_per_variant"`
	GoVersion  string `json:"go_version"`
	Rows       []Row  `json:"rows"`
}

func run(dir string, blocks int, blockBytes int64, v benchharness.Variant) (Row, error) {
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	start := time.Now()
	st, err := benchharness.Run(dir, v, blocks, int(blockBytes))
	elapsed := time.Since(start).Nanoseconds()
	runtime.ReadMemStats(&m1)
	if err != nil {
		return Row{}, err
	}

	row := Row{
		Variant:        v.Name,
		MaxBatchBlocks: v.Batch,
		Pooled:         v.Pooled,
		Blocks:         st.BlocksSent,
		Messages:       st.Messages,
		NsPerBlock:     float64(elapsed) / float64(blocks),
		AllocBPerBlock: float64(m1.TotalAlloc-m0.TotalAlloc) / float64(blocks),
	}
	if st.BlocksSent > 0 {
		row.MsgsPerBlock = float64(st.Messages) / float64(st.BlocksSent)
	}
	if elapsed > 0 {
		row.ThroughputMBs = float64(int64(blocks)*blockBytes) / (float64(elapsed) / 1e9) / 1e6
	}
	return row, nil
}

func main() {
	out := flag.String("o", "BENCH_batching.json", "output file")
	blocks := flag.Int("blocks", 100_000, "blocks per variant")
	blockBytes := flag.Int64("blockbytes", 32<<10, "payload bytes per block")
	flag.Parse()
	if *blocks < 1 {
		fatal(fmt.Errorf("-blocks must be ≥ 1, got %d", *blocks))
	}
	if *blockBytes < 2 {
		fatal(fmt.Errorf("-blockbytes must be ≥ 2, got %d", *blockBytes))
	}

	rep := Report{BlockBytes: *blockBytes, BlocksRun: *blocks, GoVersion: runtime.Version()}
	for _, v := range benchharness.Variants {
		dir, err := os.MkdirTemp("", "benchbatch")
		if err != nil {
			fatal(err)
		}
		row, err := run(dir, *blocks, *blockBytes, v)
		os.RemoveAll(dir)
		if err != nil {
			fatal(err)
		}
		rep.Rows = append(rep.Rows, row)
		fmt.Printf("%-18s msgs/block=%.4f ns/block=%.0f allocB/block=%.0f %.0f MB/s\n",
			row.Variant, row.MsgsPerBlock, row.NsPerBlock, row.AllocBPerBlock, row.ThroughputMBs)
	}

	// The headline claims the README and the tentpole PR make: batching ≥ 4
	// at least halves messages per block, and pooling cuts per-block
	// allocation versus the seed protocol.
	seed, batched := rep.Rows[0], rep.Rows[2]
	if batched.MsgsPerBlock*2 > seed.MsgsPerBlock {
		fatal(fmt.Errorf("batching regression: %.3f msgs/block (batch=4) vs %.3f (seed)",
			batched.MsgsPerBlock, seed.MsgsPerBlock))
	}
	if batched.AllocBPerBlock >= seed.AllocBPerBlock {
		fatal(fmt.Errorf("pooling regression: %.0f alloc B/block (batch=4) vs %.0f (seed)",
			batched.AllocBPerBlock, seed.AllocBPerBlock))
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchbatch:", err)
	os.Exit(1)
}
