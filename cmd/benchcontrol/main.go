// benchcontrol records the multi-job control-plane baseline: the shared
// heterogeneous fleet scenario (the same one `zippertrace fleet` renders —
// a steady normal-priority job, a latency-sensitive high-priority job, and
// a spill-heavy low-priority job that joins the running fleet late) versus
// each of those jobs running alone on its own peak-provisioned private
// tier. Both sides run on the simulated platform in virtual time, so every
// number in the report is bit-for-bit reproducible.
//
// The consolidation bargain, gated on both axes:
//
//   - Aggregate stager node-seconds (each stager billed to its finish time,
//     summed across every tier that had to exist) must drop at least 25%
//     when the jobs share one fleet instead of each holding a private one.
//   - The high-priority tenant's worst producer write-stall — the max is
//     the p99 proxy at this producer count — must stay within 1.5x its
//     private-tier baseline: consolidation is only a bargain if the
//     latency-sensitive job doesn't pay for it.
//   - Zero blocks lost everywhere; the low-priority tenant may stall (that
//     is the preemption working) but never loses data.
//
// Usage:
//
//	benchcontrol [-steps N] [-o BENCH_control.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"zipper/internal/exp"
	"zipper/internal/workflow"
)

// JobRow is one tenant's outcome inside a fleet run.
type JobRow struct {
	Name          string  `json:"name"`
	Priority      string  `json:"priority"`
	BlocksWritten int64   `json:"blocks_written"`
	BlocksSpilled int64   `json:"blocks_spilled"`
	BlocksLost    int64   `json:"blocks_lost"`
	WriteStallS   float64 `json:"write_stall_s"`
	Preempted     int     `json:"preempted"`
}

// FleetRow is one fleet execution: the shared run, or one job's private tier.
type FleetRow struct {
	Variant     string   `json:"variant"`
	Stagers     int      `json:"stagers"`
	E2ES        float64  `json:"e2e_s"`
	NodeSeconds float64  `json:"stager_node_seconds"`
	Preemptions int      `json:"preemptions"`
	Spills      int64    `json:"stager_spills"`
	Jobs        []JobRow `json:"jobs"`
}

// Report is the file layout of BENCH_control.json.
type Report struct {
	Steps              int    `json:"steps"`
	Stagers            int    `json:"stagers"`
	StagerBufferBlocks int    `json:"stager_buffer_blocks"`
	GoVersion          string `json:"go_version"`
	// Shared is the one consolidated fleet; Private is each job alone on an
	// identically provisioned tier (the capacity it would have to hold
	// without a control plane to multiplex it).
	Shared  FleetRow   `json:"shared"`
	Private []FleetRow `json:"private"`
	// PrivateNodeSeconds is the private tiers' aggregate cost and SavingFrac
	// the consolidation saving: 1 - shared/private.
	PrivateNodeSeconds float64 `json:"private_node_seconds"`
	SavingFrac         float64 `json:"saving_frac"`
	// Yardstick is the high-priority job alone on a fair-share-sized tier
	// (its slice of the shared fleet, not the peak-provisioned private one).
	// The isolation gate compares against this: the shared run adds only
	// interference, not capacity, so any stall blow-up beyond it is the
	// other tenants' fault.
	Yardstick FleetRow `json:"stall_yardstick"`
}

func run(variant string, spec workflow.FleetSpec) (FleetRow, error) {
	spec.Sample = 0 // the bench wants outcomes, not the timeline
	res := workflow.RunFleet(spec)
	if !res.OK {
		return FleetRow{}, fmt.Errorf("%s: %s", variant, res.Fail)
	}
	row := FleetRow{
		Variant: variant, Stagers: spec.Stagers,
		E2ES: res.E2E.Seconds(), NodeSeconds: res.StagerNodeSeconds,
		Preemptions: res.Preemptions, Spills: res.StagerSpills,
	}
	for _, j := range res.Jobs {
		if j.BlocksLost != 0 {
			return FleetRow{}, fmt.Errorf("%s: job %s lost %d blocks", variant, j.Name, j.BlocksLost)
		}
		if j.BlocksAnalyzed != j.BlocksWritten || j.BlocksWritten == 0 {
			return FleetRow{}, fmt.Errorf("%s: job %s analyzed %d of %d blocks",
				variant, j.Name, j.BlocksAnalyzed, j.BlocksWritten)
		}
		row.Jobs = append(row.Jobs, JobRow{
			Name:          j.Name,
			BlocksWritten: j.BlocksWritten, BlocksSpilled: j.BlocksSpilled,
			BlocksLost:  j.BlocksLost,
			WriteStallS: j.WriteStall.Seconds(), Preempted: j.Preempted,
		})
	}
	return row, nil
}

func main() {
	steps := flag.Int("steps", 6, "time steps per job")
	out := flag.String("o", "BENCH_control.json", "output file")
	flag.Parse()

	spec := exp.FleetScenario(*steps)
	rep := Report{
		Steps: *steps, Stagers: spec.Stagers,
		StagerBufferBlocks: spec.StagerBufferBlocks,
		GoVersion:          runtime.Version(),
	}
	shared, err := run("shared", spec)
	if err != nil {
		fatal(err)
	}
	// The scenario's jobs carry their priority in the spec, not the result;
	// attach it by name for the report.
	for i := range shared.Jobs {
		for _, j := range spec.Jobs {
			if j.Name == shared.Jobs[i].Name {
				shared.Jobs[i].Priority = j.Quota.Priority.String()
			}
		}
	}
	rep.Shared = shared
	fmt.Printf("%-14s stagers=%d e2e=%.3fs node-seconds=%.2f preemptions=%d\n",
		shared.Variant, shared.Stagers, shared.E2ES, shared.NodeSeconds, shared.Preemptions)

	// Private baselines: each job alone, from t=0, on a tier provisioned
	// exactly like the shared one — without a control plane to multiplex,
	// every job holds that capacity for its whole runtime.
	for _, job := range spec.Jobs {
		pspec := exp.FleetScenario(*steps)
		job.StartAfter = 0
		pspec.Jobs = []workflow.FleetJob{job}
		row, err := run("private:"+job.Name, pspec)
		if err != nil {
			fatal(err)
		}
		row.Jobs[0].Priority = job.Quota.Priority.String()
		rep.Private = append(rep.Private, row)
		rep.PrivateNodeSeconds += row.NodeSeconds
		fmt.Printf("%-14s stagers=%d e2e=%.3fs node-seconds=%.2f stall=%.4fs\n",
			row.Variant, row.Stagers, row.E2ES, row.NodeSeconds, row.Jobs[0].WriteStallS)
	}
	rep.SavingFrac = 1 - rep.Shared.NodeSeconds/rep.PrivateNodeSeconds
	fmt.Printf("consolidation: %.2f shared vs %.2f private node-seconds — %.0f%% saving\n",
		rep.Shared.NodeSeconds, rep.PrivateNodeSeconds, rep.SavingFrac*100)

	// The isolation yardstick: the high-priority job alone on its fair share
	// of the shared fleet (1 of the Stagers stagers, same per-stager buffer).
	// The peak-provisioned private rows above hold double quiet's shared-run
	// quota, so their stall would flatter the comparison.
	var yardName string
	for _, job := range spec.Jobs {
		if job.Quota.Priority.String() != "high" {
			continue
		}
		yspec := exp.FleetScenario(*steps)
		job.StartAfter = 0
		yspec.Jobs = []workflow.FleetJob{job}
		yspec.Stagers = (spec.Stagers + len(spec.Jobs) - 1) / len(spec.Jobs)
		row, err := run("yardstick:"+job.Name, yspec)
		if err != nil {
			fatal(err)
		}
		row.Jobs[0].Priority = job.Quota.Priority.String()
		rep.Yardstick = row
		yardName = job.Name
		fmt.Printf("%-14s stagers=%d e2e=%.3fs stall=%.4fs\n",
			row.Variant, row.Stagers, row.E2ES, row.Jobs[0].WriteStallS)
	}

	// Gate 1: the fleet must earn its keep — ≥25% fewer stager node-seconds
	// than the sum of private tiers.
	if rep.SavingFrac < 0.25 {
		fatal(fmt.Errorf("consolidation regression: %.2f shared vs %.2f private node-seconds (%.0f%% saving, want ≥ 25%%)",
			rep.Shared.NodeSeconds, rep.PrivateNodeSeconds, rep.SavingFrac*100))
	}
	// Gate 2: the high-priority tenant must not pay for the consolidation —
	// its worst write-stall stays within 1.5x the fair-share yardstick's.
	for _, j := range rep.Shared.Jobs {
		if j.Name != yardName {
			continue
		}
		base := rep.Yardstick.Jobs[0].WriteStallS
		if j.WriteStallS > base*1.5 {
			fatal(fmt.Errorf("isolation regression: %s stalled %.4fs on the shared fleet vs %.4fs on its fair-share yardstick (> 1.5x)",
				j.Name, j.WriteStallS, base))
		}
	}
	// Gate 3: the preemption story must actually appear — the low-priority
	// flood is contained by eviction, not luck.
	if rep.Shared.Preemptions == 0 {
		fatal(fmt.Errorf("the shared run fired no preemptions — the scenario lost its pressure story"))
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcontrol:", err)
	os.Exit(1)
}
