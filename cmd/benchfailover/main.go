// benchfailover records the survivable-data-plane baseline: the shared
// bursty benchharness relay scenario run with the fault plane off, on but
// quiet, and on with stagers hard-killed mid-run on the real platform. It
// writes the comparison as JSON so CI and future optimization PRs have a
// committed reference point, and fails when recovery stops being lossless
// or stops being prompt: every killed run must analyze every block with
// blocks_lost == 0 (the recovery reader replays the victims' journals), at
// least as many evictions as kills must be detected, and the mean
// evict→respawn recovery time must stay under a generous ceiling.
//
// Usage:
//
//	benchfailover [-o BENCH_failover.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"zipper"
	"zipper/internal/benchharness"
)

// minProcs floors GOMAXPROCS for the measurement. The job under test runs
// ~18 runtime threads (producers, stagers, consumers, heartbeats, the
// monitor) whose interleaving IS the phenomenon being measured: on a 1-core
// box the default GOMAXPROCS serializes the pipeline into lockstep and the
// crash never interrupts in-flight work. Raising GOMAXPROCS (even above the
// physical core count — async preemption interleaves fairly) restores
// concurrent progress so kills land mid-burst as they would on a real
// deployment.
const minProcs = 8

// maxMeanRecovery gates the detector's promptness: mean evict→respawn time
// per eviction. The floor is LeaseTTL (a kill must lapse before it is
// seen); the ceiling leaves room for the fence/drain/replay sequence under
// CI scheduling jitter.
const maxMeanRecovery = 2 * time.Second

// Row is one fault-plane configuration's measurement.
type Row struct {
	Variant        string  `json:"variant"`
	Kills          int     `json:"kills"`
	Blocks         int64   `json:"blocks"`
	Analyzed       int64   `json:"blocks_analyzed"`
	Lost           int64   `json:"blocks_lost"`
	Evictions      int64   `json:"evictions"`
	Replayed       int64   `json:"blocks_replayed"`
	MeanRecoveryMs float64 `json:"mean_recovery_ms"`
	ThroughputMBs  float64 `json:"throughput_mb_per_s"`
}

// Report is the file layout of BENCH_failover.json.
type Report struct {
	Producers   int     `json:"producers"`
	Consumers   int     `json:"consumers"`
	Stagers     int     `json:"stagers"`
	Bursts      int     `json:"bursts"`
	BurstBlocks int     `json:"burst_blocks_per_producer"`
	BurstPauseS float64 `json:"burst_pause_s"`
	BlockBytes  int     `json:"block_bytes"`
	AnalyzeUs   float64 `json:"analyze_us_per_block"`
	HeartbeatMs float64 `json:"heartbeat_ms"`
	LeaseTTLMs  float64 `json:"lease_ttl_ms"`
	GoVersion   string  `json:"go_version"`
	Rows        []Row   `json:"rows"`
}

// meanRecovery averages the evict→respawn latency over the eviction
// timeline; evictions that were never respawned (the run ended first) are
// excluded.
func meanRecovery(events []zipper.FailoverEvent) time.Duration {
	evictAt := map[int]time.Duration{}
	var sum time.Duration
	var n int
	for _, ev := range events {
		switch ev.Kind {
		case "evict":
			evictAt[ev.Addr] = ev.At
		case "respawn":
			if at, ok := evictAt[ev.Addr]; ok {
				sum += ev.At - at
				n++
				delete(evictAt, ev.Addr)
			}
		}
	}
	if n == 0 {
		return 0
	}
	return sum / time.Duration(n)
}

func run(sc benchharness.FailoverScenario, name string, faultOn bool, kills int) (Row, error) {
	dir, err := os.MkdirTemp("", "benchfailover")
	if err != nil {
		return Row{}, err
	}
	defer os.RemoveAll(dir)
	start := time.Now()
	st, err := benchharness.RunFailover(dir, sc, faultOn, kills)
	elapsed := time.Since(start)
	if err != nil {
		return Row{}, err
	}
	total := sc.Total()
	if st.BlocksAnalyzed != total {
		return Row{}, fmt.Errorf("%s: analyzed %d of %d blocks", name, st.BlocksAnalyzed, total)
	}
	row := Row{
		Variant: name, Kills: kills,
		Blocks: st.BlocksWritten, Analyzed: st.BlocksAnalyzed, Lost: st.BlocksLost,
		Evictions: st.Evictions, Replayed: st.ReplayedBlocks,
		MeanRecoveryMs: float64(meanRecovery(st.FailoverEvents)) / 1e6,
	}
	if ns := elapsed.Nanoseconds(); ns > 0 {
		row.ThroughputMBs = float64(total*int64(sc.BlockBytes)) / (float64(ns) / 1e9) / 1e6
	}
	return row, nil
}

func main() {
	out := flag.String("o", "BENCH_failover.json", "output file")
	flag.Parse()
	if runtime.GOMAXPROCS(0) < minProcs {
		runtime.GOMAXPROCS(minProcs)
	}

	sc := benchharness.FailoverScenarioDefault
	fcfg := sc.Fault
	rep := Report{
		Producers: sc.Producers, Consumers: sc.Consumers, Stagers: sc.Stagers,
		Bursts: sc.Bursts, BurstBlocks: sc.BurstBlocks, BurstPauseS: sc.BurstPause.Seconds(),
		BlockBytes: sc.BlockBytes, AnalyzeUs: float64(sc.Analyze) / 1e3,
		HeartbeatMs: float64(fcfg.Heartbeat) / 1e6, LeaseTTLMs: float64(fcfg.LeaseTTL) / 1e6,
		GoVersion: runtime.Version(),
	}
	variants := []struct {
		name    string
		faultOn bool
		kills   int
	}{
		{"fault-off", false, 0},
		{"fault-on-quiet", true, 0},
		{"fault-on-1-kill", true, 1},
		{"fault-on-2-kills", true, 2},
	}
	rows := map[string]Row{}
	for _, v := range variants {
		row, err := run(sc, v.name, v.faultOn, v.kills)
		if err != nil {
			fatal(err)
		}
		rep.Rows = append(rep.Rows, row)
		rows[v.name] = row
		fmt.Printf("%-16s kills=%d evictions=%d replayed=%d lost=%d recovery=%.1fms %.0f MB/s\n",
			row.Variant, row.Kills, row.Evictions, row.Replayed, row.Lost,
			row.MeanRecoveryMs, row.ThroughputMBs)
	}

	// The survivability bargain, gated on both axes: killed runs must lose
	// nothing (the replay balances the counted streams) and must recover
	// promptly (mean evict→respawn under the ceiling). A quiet fault-on run
	// must not evict anyone — a healthy member lapsing its lease means the
	// heartbeat path is broken, which fencing would mask as "recovery".
	for _, v := range variants {
		row := rows[v.name]
		if row.Lost != 0 {
			fatal(fmt.Errorf("%s: blocks_lost = %d, want 0 — spool replay failed to recover", v.name, row.Lost))
		}
		if v.kills > 0 {
			if row.Evictions < int64(v.kills) {
				fatal(fmt.Errorf("%s: %d evictions for %d kills — a crash went undetected", v.name, row.Evictions, v.kills))
			}
			if row.MeanRecoveryMs > float64(maxMeanRecovery)/1e6 {
				fatal(fmt.Errorf("%s: mean recovery %.1fms exceeds %.0fms", v.name, row.MeanRecoveryMs, float64(maxMeanRecovery)/1e6))
			}
		} else if row.Evictions != 0 {
			fatal(fmt.Errorf("%s: %d evictions with no kills — healthy members are lapsing their leases", v.name, row.Evictions))
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchfailover:", err)
	os.Exit(1)
}
