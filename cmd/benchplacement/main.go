// benchplacement records the placement baseline: the shared skewed-rate
// benchharness scenario (one producer emits 10x its peers' volume in each
// burst) run under rank-affine, least-occupancy, and hash-ring placement on
// the real platform. It writes the comparison as JSON so CI and future
// optimization PRs have a committed reference point, and fails when the
// load-aware policy stops earning its keep: least-occupancy must cut the
// per-stager relayed-block max/mean imbalance at least in half versus
// rank-affine AND stall producers less (the fast producer gets the whole
// tier's buffering instead of one stager's).
//
// Usage:
//
//	benchplacement [-o BENCH_placement.json]
//
// Caveat: the measurement needs concurrent producer/stager/consumer
// progress, so GOMAXPROCS is floored at 8 (a warning is printed when the
// floor engages). On a 1-core box the un-floored pipeline serializes into
// lockstep — no queue ever forms and no occupancy signal exists — so
// numbers from such hosts describe the scheduler, not the placement plane.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"zipper/internal/benchharness"
)

// minProcs floors GOMAXPROCS for the measurement. The job under test runs
// ~14 runtime threads whose interleaving IS the phenomenon being measured:
// on a 1-core box the default GOMAXPROCS serializes the pipeline into
// lockstep, no queue ever forms, and the occupancy signals the placement
// plane steers on never exist. Raising GOMAXPROCS (even above the physical
// core count — async preemption interleaves fairly) restores concurrent
// producer/stager/consumer progress so backpressure forms where it would on
// a real deployment.
const minProcs = 8

// Row is one placement policy's measurement.
type Row struct {
	Variant        string  `json:"variant"`
	Blocks         int64   `json:"blocks"`
	Relayed        int64   `json:"blocks_relayed"`
	PerStager      []int64 `json:"relayed_per_stager"`
	RelayImbalance float64 `json:"relay_imbalance_max_over_mean"`
	WriteStallS    float64 `json:"write_stall_s"`
	StagerSpills   int64   `json:"stager_spills"`
	ThroughputMBs  float64 `json:"throughput_mb_per_s"`
}

// Report is the file layout of BENCH_placement.json.
type Report struct {
	Producers   int     `json:"producers"`
	Consumers   int     `json:"consumers"`
	Stagers     int     `json:"stagers"`
	Bursts      int     `json:"bursts"`
	BurstBlocks []int   `json:"burst_blocks_per_producer"`
	BurstPauseS float64 `json:"burst_pause_s"`
	BlockBytes  int     `json:"block_bytes"`
	AnalyzeUs   float64 `json:"analyze_us_per_block"`
	GoVersion   string  `json:"go_version"`
	Rows        []Row   `json:"rows"`
}

func run(sc benchharness.PlacementScenario, v benchharness.PlacementVariant) (Row, error) {
	dir, err := os.MkdirTemp("", "benchplacement")
	if err != nil {
		return Row{}, err
	}
	defer os.RemoveAll(dir)
	start := time.Now()
	st, err := benchharness.RunPlacement(dir, v, sc)
	elapsed := time.Since(start)
	if err != nil {
		return Row{}, err
	}
	total := sc.Total()
	if st.BlocksAnalyzed != total {
		return Row{}, fmt.Errorf("%s: analyzed %d of %d blocks", v.Name, st.BlocksAnalyzed, total)
	}
	row := Row{
		Variant: v.Name,
		Blocks:  st.BlocksWritten, Relayed: st.BlocksRelayed,
		RelayImbalance: st.RelayImbalance, WriteStallS: st.WriteStall,
		StagerSpills: st.BlocksSpilled,
	}
	for _, s := range st.Stagers {
		row.PerStager = append(row.PerStager, s.BlocksIn)
	}
	if ns := elapsed.Nanoseconds(); ns > 0 {
		row.ThroughputMBs = float64(total*int64(sc.BlockBytes)) / (float64(ns) / 1e9) / 1e6
	}
	return row, nil
}

func main() {
	out := flag.String("o", "BENCH_placement.json", "output file")
	flag.Parse()
	if procs := runtime.GOMAXPROCS(0); procs < minProcs {
		runtime.GOMAXPROCS(minProcs)
		fmt.Fprintf(os.Stderr,
			"benchplacement: raising GOMAXPROCS %d -> %d: the pipeline's thread interleaving is the thing being measured; on few-core hosts the numbers reflect scheduling, not placement\n",
			procs, minProcs)
	}

	sc := benchharness.PlacementScenarioDefault
	rep := Report{
		Producers: sc.Producers, Consumers: sc.Consumers, Stagers: sc.Stagers,
		Bursts: sc.Bursts, BurstBlocks: sc.BurstBlocks, BurstPauseS: sc.BurstPause.Seconds(),
		BlockBytes: sc.BlockBytes,
		AnalyzeUs:  float64(sc.Analyze) / 1e3, GoVersion: runtime.Version(),
	}
	rows := map[string]Row{}
	for _, v := range benchharness.PlacementVariants {
		row, err := run(sc, v)
		if err != nil {
			fatal(err)
		}
		rep.Rows = append(rep.Rows, row)
		rows[v.Name] = row
		fmt.Printf("%-16s imbalance=%.2f stall=%.3fs relayed=%v spills=%d %.0f MB/s\n",
			row.Variant, row.RelayImbalance, row.WriteStallS, row.PerStager,
			row.StagerSpills, row.ThroughputMBs)
	}

	// The placement bargain, gated on both axes: on the skewed workload the
	// load-aware policy must spread the relay traffic (max/mean imbalance at
	// least halved versus the fixed mod-map) and liberate the producers
	// (less total Write stall — the fast producer's burst lands in the whole
	// tier's buffering instead of overflowing one stager's).
	ra, lo := rows["rank-affine"], rows["least-occupancy"]
	if lo.RelayImbalance*2 > ra.RelayImbalance {
		fatal(fmt.Errorf("placement regression: least-occupancy imbalance %.2f vs rank-affine %.2f — not a 2x reduction",
			lo.RelayImbalance, ra.RelayImbalance))
	}
	if lo.WriteStallS >= ra.WriteStallS {
		fatal(fmt.Errorf("placement regression: least-occupancy write stall %.3fs vs rank-affine %.3fs",
			lo.WriteStallS, ra.WriteStallS))
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchplacement:", err)
	os.Exit(1)
}
