// zippertrace renders execution traces of coupled workflows as ASCII Gantt
// charts, reproducing the paper's TAU / Intel Trace Analyzer views: the
// native DIMES lock trace (Figure 4), the Flexpath and Decaf interference
// traces (Figures 5, 6), and the Zipper-vs-Decaf step-rate comparisons
// (Figures 17, 19).
//
// Usage:
//
//	zippertrace dimes|flexpath|decaf            # Figures 4, 5, 6
//	zippertrace compare-cfd [-cores N]          # Figure 17
//	zippertrace compare-lammps [-cores N]       # Figure 19
//	zippertrace staging [-steps N]              # in-transit stager threads
//	zippertrace elastic [-steps N]              # autoscaled stager pool
//	zippertrace placement [-steps N]            # endpoint placement policies
//	zippertrace failover [-steps N]             # crash, replay, respawn
//	zippertrace fleet [-steps N]                # multi-job shared-fleet control plane
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"zipper/internal/exp"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	cores := fs.Int("cores", 204, "total cores for the comparison traces")
	steps := fs.Int("steps", 10, "time steps to simulate")
	_ = fs.Parse(os.Args[2:])

	switch cmd {
	case "dimes":
		print1(exp.RunFig4())
	case "flexpath":
		print1(exp.RunFig5())
	case "decaf":
		print1(exp.RunFig6())
	case "staging":
		print1(exp.RunStagingTrace(*steps))
		fmt.Println()
		print1(exp.RunAdaptiveTrace(*steps))
		fmt.Println()
		fmt.Print(exp.FormatStaging("synthetic", exp.RunAdaptiveSweep("synthetic", 8, *steps)))
	case "elastic":
		print1(exp.RunElasticTrace(*steps))
	case "placement":
		fmt.Print(exp.FormatPlacement(exp.RunPlacementSweep(*steps)))
	case "failover":
		print1(exp.RunFailoverTrace(*steps))
	case "fleet":
		print1(exp.RunFleetTrace(*steps))
	case "compare-cfd", "compare-lammps":
		app, window := "cfd", 1300*time.Millisecond
		if cmd == "compare-lammps" {
			app, window = "lammps", 9100*time.Millisecond
		}
		cmp := exp.RunStepComparison(app, *cores, *steps, window)
		fmt.Println(cmp.Title)
		fmt.Printf("steps in snapshot: Zipper %.2f, Decaf %.2f\n\n", cmp.ZipperSteps, cmp.DecafSteps)
		fmt.Println("Zipper:")
		fmt.Print(cmp.ZipperGantt)
		fmt.Println("\nDecaf:")
		fmt.Print(cmp.DecafGantt)
	default:
		usage()
		os.Exit(2)
	}
}

func print1(f exp.TraceFigure) {
	fmt.Println(f.Title)
	fmt.Print(f.Gantt)
	fmt.Println(f.Detail)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: zippertrace dimes|flexpath|decaf|staging|elastic|placement|failover|fleet|compare-cfd|compare-lammps [-cores N] [-steps N]")
}
