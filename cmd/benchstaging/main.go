// benchstaging records the staging-tier baseline: the shared benchharness
// consumer-bound workload (fast producers, deliberately slow consumer) run
// in-situ (the paper's two-channel protocol), in-transit (everything through
// the staging relay), and hybrid (per-batch routing from live backpressure),
// on the real platform. It writes the comparison as JSON so CI and future
// optimization PRs have a committed reference point, and fails when hybrid
// routing stops beating in-situ on producer stall and file-system traffic.
//
// Usage:
//
//	benchstaging [-o BENCH_staging.json] [-producers P] [-blocks N]
//	             [-blockbytes B] [-analyze D]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"zipper/internal/benchharness"
)

// Row is one routing variant's measurement.
type Row struct {
	Variant       string  `json:"variant"`
	Stagers       int     `json:"stagers"`
	Blocks        int64   `json:"blocks"`
	Direct        int64   `json:"blocks_direct"`
	Relayed       int64   `json:"blocks_relayed"`
	ViaDisk       int64   `json:"blocks_via_disk"`
	StagerSpills  int64   `json:"stager_spills"`
	WriteStallS   float64 `json:"write_stall_s"`
	NsPerBlock    float64 `json:"ns_per_block"`
	ThroughputMBs float64 `json:"throughput_mb_per_s"`
}

// Report is the file layout of BENCH_staging.json.
type Report struct {
	Producers  int     `json:"producers"`
	BlockBytes int64   `json:"block_bytes"`
	BlocksRun  int     `json:"blocks_per_producer"`
	AnalyzeUs  float64 `json:"analyze_us_per_block"`
	GoVersion  string  `json:"go_version"`
	Rows       []Row   `json:"rows"`
}

func run(dir string, producers, blocks int, blockBytes int64, analyze time.Duration, v benchharness.StagingVariant) (Row, error) {
	start := time.Now()
	st, err := benchharness.RunStaging(dir, v, producers, blocks, int(blockBytes), analyze)
	elapsed := time.Since(start).Nanoseconds()
	if err != nil {
		return Row{}, err
	}
	total := int64(producers) * int64(blocks)
	row := Row{
		Variant:      v.Name,
		Stagers:      v.Stagers,
		Blocks:       st.BlocksWritten,
		Direct:       st.BlocksSent,
		Relayed:      st.BlocksRelayed,
		ViaDisk:      st.BlocksStolen,
		StagerSpills: st.BlocksSpilled,
		WriteStallS:  st.WriteStall,
		NsPerBlock:   float64(elapsed) / float64(total),
	}
	if elapsed > 0 {
		row.ThroughputMBs = float64(total*blockBytes) / (float64(elapsed) / 1e9) / 1e6
	}
	if st.BlocksAnalyzed != total {
		return Row{}, fmt.Errorf("%s: analyzed %d of %d blocks", v.Name, st.BlocksAnalyzed, total)
	}
	return row, nil
}

func main() {
	out := flag.String("o", "BENCH_staging.json", "output file")
	producers := flag.Int("producers", 2, "producer endpoints")
	blocks := flag.Int("blocks", 2000, "blocks per producer")
	blockBytes := flag.Int64("blockbytes", 32<<10, "payload bytes per block")
	analyze := flag.Duration("analyze", 250*time.Microsecond, "consumer busy time per block")
	flag.Parse()
	if *producers < 1 || *blocks < 1 {
		fatal(fmt.Errorf("-producers and -blocks must be ≥ 1"))
	}
	if *blockBytes < 2 {
		fatal(fmt.Errorf("-blockbytes must be ≥ 2, got %d", *blockBytes))
	}

	rep := Report{
		Producers: *producers, BlockBytes: *blockBytes, BlocksRun: *blocks,
		AnalyzeUs: float64(*analyze) / 1e3, GoVersion: runtime.Version(),
	}
	for _, v := range benchharness.StagingVariants {
		dir, err := os.MkdirTemp("", "benchstaging")
		if err != nil {
			fatal(err)
		}
		row, err := run(dir, *producers, *blocks, *blockBytes, *analyze, v)
		os.RemoveAll(dir)
		if err != nil {
			fatal(err)
		}
		rep.Rows = append(rep.Rows, row)
		fmt.Printf("%-12s stall=%.3fs direct=%d relayed=%d viaDisk=%d spills=%d %.0f MB/s\n",
			row.Variant, row.WriteStallS, row.Direct, row.Relayed, row.ViaDisk,
			row.StagerSpills, row.ThroughputMBs)
	}

	// The headline claims of the staging tier: with a consumer that cannot
	// keep up, hybrid routing stalls the producers less than pure in-situ
	// coupling and moves fewer blocks over the file system than the
	// steal-heavy in-situ run.
	insitu, hybrid := rep.Rows[0], rep.Rows[2]
	if hybrid.WriteStallS >= insitu.WriteStallS {
		fatal(fmt.Errorf("staging regression: hybrid stalls %.3fs vs %.3fs in-situ",
			hybrid.WriteStallS, insitu.WriteStallS))
	}
	if hybrid.ViaDisk >= insitu.ViaDisk {
		fatal(fmt.Errorf("staging regression: hybrid sent %d blocks via disk vs %d in-situ",
			hybrid.ViaDisk, insitu.ViaDisk))
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchstaging:", err)
	os.Exit(1)
}
