// benchring records the intra-node fast-path baseline in two sections. The
// transport section pushes a single sender's batched messages through the
// SPSC ring transport and through the classic channel network at 1-, 4-,
// and 16-block batches — the per-message synchronization-overhead claim.
// The reduce section encodes the same compressible blocks through the
// single inline encoder (the pre-pipeline sender-thread behavior) and
// through the parallel reduction pipeline at GOMAXPROCS workers — the
// encode-throughput claim — and then runs a real staged job with both fast
// paths on to prove the accounting identity still holds: every raw payload
// byte is either carried on the wire or reduced away. It writes everything
// as JSON so CI and future optimization PRs have a committed reference
// point, and fails when a claim stops holding: the ring must at least
// halve ns/message on 1-block traffic, and the parallel pipeline must
// reach 1.5x inline encode throughput when the host has cores to
// parallelize across (on a serial host the gate degrades to an overhead
// bound — see reduceGate).
//
// Usage:
//
//	benchring [-o BENCH_ring.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"zipper"
	"zipper/internal/block"
	"zipper/internal/reduce"
	"zipper/internal/rt/realenv"
)

// minProcs floors GOMAXPROCS for both sections: the transport measurement
// needs the sender and receiver threads genuinely interleaving, and the
// reduce section needs room for the pipeline's workers. Like
// cmd/benchwire, the floor restores concurrent progress on small hosts —
// but it cannot mint physical cores, which is why the reduce gate consults
// runtime.NumCPU (see reduceGate). A note is printed when the floor
// engages.
const minProcs = 8

const (
	transportMessages = 500_000
	transportDepth    = 1024

	reduceRounds     = 8
	reduceBlocks     = 64
	reduceBlockBytes = 64 << 10

	identityProducers  = 4
	identityBlocks     = 60
	identityBlockBytes = 8 << 10
)

// TransportRow is one transport measurement: one sender, one receiver,
// `transportMessages` messages of a fixed batch size.
type TransportRow struct {
	Transport    string  `json:"transport"`
	BlocksPerMsg int     `json:"blocks_per_msg"`
	NsPerMessage float64 `json:"ns_per_message"`
	NsPerBlock   float64 `json:"ns_per_block"`
}

// ReduceRow is one encode-throughput measurement over the shared
// compressible workload.
type ReduceRow struct {
	Mode          string  `json:"mode"`
	Workers       int     `json:"workers"`
	Blocks        int64   `json:"blocks"`
	ThroughputMBs float64 `json:"throughput_mb_per_s"`
}

// Report is the file layout of BENCH_ring.json.
type Report struct {
	GoVersion         string         `json:"go_version"`
	NumCPU            int            `json:"num_cpu"`
	TransportMessages int            `json:"transport_messages"`
	TransportDepth    int            `json:"transport_depth"`
	ReduceRounds      int            `json:"reduce_rounds"`
	ReduceBlocks      int            `json:"reduce_blocks_per_round"`
	ReduceBlockBytes  int            `json:"reduce_block_bytes"`
	TransportRows     []TransportRow `json:"transport_rows"`
	RingSpeedup1Block float64        `json:"ring_speedup_1block"`
	ReduceRows        []ReduceRow    `json:"reduce_rows"`
	ReduceSpeedup     float64        `json:"reduce_speedup"`
	ReduceGate        float64        `json:"reduce_gate"`
	IdentityRaw       int64          `json:"identity_bytes_raw_two_legs"`
	IdentityOnWire    int64          `json:"identity_bytes_on_wire"`
	IdentityReduced   int64          `json:"identity_bytes_reduced"`
}

// transportRow measures one transport/batch-size pair, keeping the best of
// three runs: on a timeshared host a single run can absorb an unrelated
// scheduling hiccup, and the minimum is the run least polluted by it.
func transportRow(ring bool, blocksPerMsg int) TransportRow {
	name := "channel"
	if ring {
		name = "ring"
	}
	best := realenv.TransportBenchResult{}
	for rep := 0; rep < 3; rep++ {
		r := realenv.BenchTransport(ring, transportMessages, blocksPerMsg, transportDepth)
		if rep == 0 || r.NsPerMessage < best.NsPerMessage {
			best = r
		}
	}
	return TransportRow{
		Transport: name, BlocksPerMsg: blocksPerMsg,
		NsPerMessage: best.NsPerMessage, NsPerBlock: best.NsPerBlock,
	}
}

// reduceWorkload pre-builds every round's batch outside the timed region:
// plateau payloads 64 bytes wide drifting per block, the shape simulation
// output takes and the reason compression pays.
func reduceWorkload() [][]*block.Block {
	rounds := make([][]*block.Block, reduceRounds)
	for r := range rounds {
		batch := make([]*block.Block, reduceBlocks)
		for i := range batch {
			data := make([]byte, reduceBlockBytes)
			for j := range data {
				data[j] = byte((j / 64) + i + r)
			}
			batch[i] = block.New(block.ID{Rank: i % 4, Step: r, Seq: i}, 0, data)
		}
		rounds[r] = batch
	}
	return rounds
}

func reduceRow(workers int) (ReduceRow, error) {
	cfg := reduce.Config{Operator: reduce.Compress}
	rounds := reduceWorkload()
	start := time.Now()
	if workers == 0 {
		enc := reduce.NewEncoder(cfg)
		for _, batch := range rounds {
			for _, b := range batch {
				if err := enc.EncodeBlock(b); err != nil {
					return ReduceRow{}, err
				}
			}
		}
	} else {
		p := reduce.NewPipeline(cfg, workers)
		defer p.Close()
		for _, batch := range rounds {
			if err := p.EncodeBatch(batch); err != nil {
				return ReduceRow{}, err
			}
		}
	}
	elapsed := time.Since(start)
	mode := "inline"
	if workers != 0 {
		mode = "parallel"
	}
	total := int64(reduceRounds * reduceBlocks)
	for _, batch := range rounds {
		for _, b := range batch {
			if b.Enc != uint8(reduce.Compress) {
				return ReduceRow{}, fmt.Errorf("%s: block %v left unencoded", mode, b.ID)
			}
		}
	}
	row := ReduceRow{Mode: mode, Workers: workers, Blocks: total}
	if ns := elapsed.Nanoseconds(); ns > 0 {
		row.ThroughputMBs = float64(total*reduceBlockBytes) / (float64(ns) / 1e9) / 1e6
	}
	return row, nil
}

// identityRun proves the two fast paths compose without bending the
// conservation law: a staged job with the ring transport and the parallel
// pipeline both on must still account every raw byte as either on-wire or
// reduced, across both relay legs.
func identityRun() (raw, onWire, reduced int64, err error) {
	dir, err := os.MkdirTemp("", "benchring")
	if err != nil {
		return 0, 0, 0, err
	}
	defer os.RemoveAll(dir)
	job, err := zipper.NewJob(zipper.Config{
		Producers: identityProducers, Consumers: 1, SpoolDir: dir,
		BufferBlocks: 16, Window: 2, MaxBatchBlocks: 8, DisableSteal: true,
		Staging: zipper.StagingConfig{
			Stagers: 1, BufferBlocks: identityProducers * identityBlocks,
			RoutePolicy: zipper.RouteStaging,
			RingDepth:   64,
			Reduce:      zipper.ReduceConfig{Operator: zipper.ReduceCompress, Workers: -1},
		},
	})
	if err != nil {
		return 0, 0, 0, err
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			blk, ok := job.Consumer(0).Read()
			if !ok {
				return
			}
			blk.Release()
		}
	}()
	for p := 0; p < identityProducers; p++ {
		go func(p int) {
			prod := job.Producer(p)
			for i := 0; i < identityBlocks; i++ {
				data := zipper.NewPayload(identityBlockBytes)
				for j := range data {
					data[j] = byte((j / 64) + i + p)
				}
				prod.Write(i, 0, data)
			}
			prod.Close()
		}(p)
	}
	<-done
	job.Wait()
	st := job.Stats()
	raw = 2 * int64(identityProducers*identityBlocks) * int64(identityBlockBytes)
	return raw, st.BytesOnWire, st.BytesReduced, nil
}

// reduceGate picks the throughput gate the parallel pipeline must clear.
// With ≥ 2 physical cores the pipeline must earn its keep: 1.5x inline.
// On a serial host parallel encode cannot beat inline no matter how the
// pipeline is built — flate is pure CPU — so the gate degrades to an
// overhead bound: the pipeline may cost at most 30% over inline. The
// committed JSON records which gate applied (reduce_gate) next to num_cpu
// so a reader comparing files across hosts sees why the numbers differ.
func reduceGate(numCPU int) float64 {
	if numCPU >= 2 {
		return 1.5
	}
	return 0.7
}

func main() {
	out := flag.String("o", "BENCH_ring.json", "output file")
	flag.Parse()
	if procs := runtime.GOMAXPROCS(0); procs < minProcs {
		runtime.GOMAXPROCS(minProcs)
		fmt.Fprintf(os.Stderr,
			"benchring: raising GOMAXPROCS %d -> %d: the transport and pipeline need concurrently progressing threads; on few-core hosts un-floored numbers describe the scheduler, not the fast path\n",
			procs, minProcs)
	}

	rep := Report{
		GoVersion: runtime.Version(), NumCPU: runtime.NumCPU(),
		TransportMessages: transportMessages, TransportDepth: transportDepth,
		ReduceRounds: reduceRounds, ReduceBlocks: reduceBlocks, ReduceBlockBytes: reduceBlockBytes,
	}

	for _, blocks := range []int{1, 4, 16} {
		ch := transportRow(false, blocks)
		rg := transportRow(true, blocks)
		rep.TransportRows = append(rep.TransportRows, ch, rg)
		if blocks == 1 && rg.NsPerMessage > 0 {
			rep.RingSpeedup1Block = ch.NsPerMessage / rg.NsPerMessage
		}
		fmt.Printf("transport %2d-block: channel %8.1f ns/msg, ring %8.1f ns/msg (%.2fx)\n",
			blocks, ch.NsPerMessage, rg.NsPerMessage, ch.NsPerMessage/rg.NsPerMessage)
	}

	inline, err := reduceRow(0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchring:", err)
		os.Exit(1)
	}
	parallel, err := reduceRow(-1)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchring:", err)
		os.Exit(1)
	}
	rep.ReduceRows = []ReduceRow{inline, parallel}
	if inline.ThroughputMBs > 0 {
		rep.ReduceSpeedup = parallel.ThroughputMBs / inline.ThroughputMBs
	}
	rep.ReduceGate = reduceGate(rep.NumCPU)
	fmt.Printf("reduce: inline %.1f MB/s, parallel %.1f MB/s (%.2fx, gate %.2fx on %d cpu)\n",
		inline.ThroughputMBs, parallel.ThroughputMBs, rep.ReduceSpeedup, rep.ReduceGate, rep.NumCPU)

	raw, onWire, reduced, err := identityRun()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchring: identity run:", err)
		os.Exit(1)
	}
	rep.IdentityRaw, rep.IdentityOnWire, rep.IdentityReduced = raw, onWire, reduced
	fmt.Printf("identity: %d on wire + %d reduced == %d raw\n", onWire, reduced, raw)

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "benchring: FAIL: "+format+"\n", args...)
		os.Exit(1)
	}
	if rep.RingSpeedup1Block < 2.0 {
		fail("ring is %.2fx channel ns/message on 1-block traffic, want ≥ 2x", rep.RingSpeedup1Block)
	}
	if rep.ReduceSpeedup < rep.ReduceGate {
		fail("parallel reduce is %.2fx inline throughput, want ≥ %.2fx (num_cpu %d)",
			rep.ReduceSpeedup, rep.ReduceGate, rep.NumCPU)
	}
	if onWire+reduced != raw {
		fail("accounting leak with ring + parallel reduce: %d on wire + %d reduced != %d raw", onWire, reduced, raw)
	}
	if reduced == 0 {
		fail("compressible payload reduced nothing through the parallel pipeline")
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchring:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchring:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)
}
