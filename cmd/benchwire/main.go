// benchwire records the wire-path baseline in two sections. The frame
// section measures the frame-v5 send path into a discard sink with the
// vectored (writev) writer against the pre-v5 buffered-copy path on the
// same 16-block large-payload message — the zero-copy claim. The reduction
// section runs the shared benchharness wire workload (a staged job over
// real TCP sockets, smooth plateau payloads) raw and compressed — the
// bytes-on-wire claim. It writes both as JSON so CI and future
// optimization PRs have a committed reference point, and fails when either
// claim stops holding: the vectored writer must cut ns/block by at least
// 20% and stay at ≤1 steady-state allocation per frame, and compression
// must at least halve the bytes crossing the wire.
//
// Usage:
//
//	benchwire [-o BENCH_wire.json]
//
// Caveat: the reduction section needs concurrent producer/stager/consumer
// progress, so GOMAXPROCS is floored at 8 (a warning is printed when the
// floor engages). On a 1-core box the un-floored TCP job serializes into
// lockstep and its throughput numbers describe the scheduler, not the
// wire; the byte accounting is unaffected either way.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"zipper/internal/benchharness"
	"zipper/internal/rt/realenv"
)

// minProcs floors GOMAXPROCS for the reduction section, whose TCP job runs
// producer, stager, and consumer threads concurrently; on a 1-core box the
// default GOMAXPROCS serializes them into lockstep and the timing side of
// the measurement stops resembling a real deployment. The frame section is
// single-threaded and indifferent.
const minProcs = 8

const (
	frameCount      = 2000
	frameBlocks     = 16
	frameBlockBytes = 256 << 10

	wireProducers  = 2
	wireBlocks     = 200
	wireBlockBytes = 64 << 10
)

// FrameRow is one frame-writer measurement.
type FrameRow struct {
	Variant        string  `json:"variant"`
	NsPerFrame     float64 `json:"ns_per_frame"`
	NsPerBlock     float64 `json:"ns_per_block"`
	AllocsPerFrame float64 `json:"allocs_per_frame"`
	BytesPerFrame  int64   `json:"bytes_per_frame"`
}

// WireRow is one reduction variant's staged-TCP measurement.
type WireRow struct {
	Variant       string  `json:"variant"`
	Blocks        int64   `json:"blocks"`
	BytesRaw      int64   `json:"bytes_raw_two_legs"`
	BytesOnWire   int64   `json:"bytes_on_wire"`
	BytesReduced  int64   `json:"bytes_reduced"`
	ReductionX    float64 `json:"reduction_factor"`
	ThroughputMBs float64 `json:"throughput_mb_per_s"`
}

// Report is the file layout of BENCH_wire.json.
type Report struct {
	FrameCount      int        `json:"frame_count"`
	FrameBlocks     int        `json:"frame_blocks"`
	FrameBlockBytes int        `json:"frame_block_bytes"`
	WireProducers   int        `json:"wire_producers"`
	WireBlocks      int        `json:"wire_blocks_per_producer"`
	WireBlockBytes  int        `json:"wire_block_bytes"`
	GoVersion       string     `json:"go_version"`
	FrameRows       []FrameRow `json:"frame_rows"`
	WireRows        []WireRow  `json:"wire_rows"`
}

func frameRow(name string, vectoredMin int) FrameRow {
	r := realenv.BenchWriteFrame(frameCount, frameBlocks, frameBlockBytes, vectoredMin)
	return FrameRow{
		Variant:    name,
		NsPerFrame: r.NsPerFrame, NsPerBlock: r.NsPerBlock,
		AllocsPerFrame: r.AllocsPerFrame, BytesPerFrame: r.BytesPerFrame,
	}
}

func wireRow(v benchharness.WireVariant) (WireRow, error) {
	dir, err := os.MkdirTemp("", "benchwire")
	if err != nil {
		return WireRow{}, err
	}
	defer os.RemoveAll(dir)
	start := time.Now()
	st, err := benchharness.RunWire(dir, v, wireProducers, wireBlocks, wireBlockBytes)
	elapsed := time.Since(start)
	if err != nil {
		return WireRow{}, err
	}
	total := int64(wireProducers * wireBlocks)
	if st.BlocksAnalyzed != total {
		return WireRow{}, fmt.Errorf("%s: analyzed %d of %d blocks", v.Name, st.BlocksAnalyzed, total)
	}
	// Every block crosses two wire legs (producer→stager socket,
	// stager→consumer loopback), so the raw reference is twice the payload.
	raw := 2 * total * int64(wireBlockBytes)
	row := WireRow{
		Variant: v.Name, Blocks: total,
		BytesRaw: raw, BytesOnWire: st.BytesOnWire, BytesReduced: st.BytesReduced,
	}
	if st.BytesOnWire > 0 {
		row.ReductionX = float64(raw) / float64(st.BytesOnWire)
	}
	if ns := elapsed.Nanoseconds(); ns > 0 {
		row.ThroughputMBs = float64(total*int64(wireBlockBytes)) / (float64(ns) / 1e9) / 1e6
	}
	if st.BytesOnWire+st.BytesReduced != raw {
		return WireRow{}, fmt.Errorf("%s: accounting leak: %d on wire + %d reduced != %d raw",
			v.Name, st.BytesOnWire, st.BytesReduced, raw)
	}
	return row, nil
}

func main() {
	out := flag.String("o", "BENCH_wire.json", "output file")
	flag.Parse()
	if procs := runtime.GOMAXPROCS(0); procs < minProcs {
		runtime.GOMAXPROCS(minProcs)
		fmt.Fprintf(os.Stderr,
			"benchwire: raising GOMAXPROCS %d -> %d: the reduction section's TCP job needs concurrent producer/stager/consumer progress; on few-core hosts un-floored timing numbers describe the scheduler, not the wire\n",
			procs, minProcs)
	}

	rep := Report{
		FrameCount: frameCount, FrameBlocks: frameBlocks, FrameBlockBytes: frameBlockBytes,
		WireProducers: wireProducers, WireBlocks: wireBlocks, WireBlockBytes: wireBlockBytes,
		GoVersion: runtime.Version(),
	}

	copyRow := frameRow("copy", -1)
	vecRow := frameRow("vectored", 0)
	rep.FrameRows = []FrameRow{copyRow, vecRow}
	for _, r := range rep.FrameRows {
		fmt.Printf("%-10s %12.0f ns/frame %10.1f ns/block %6.2f allocs/frame %d bytes/frame\n",
			r.Variant, r.NsPerFrame, r.NsPerBlock, r.AllocsPerFrame, r.BytesPerFrame)
	}

	// The zero-copy bargain: skipping the bufio copy for large payloads must
	// cut per-block send cost by at least 20%, and the vector assembly must
	// not turn into an allocation habit (≤1 steady-state alloc per frame,
	// with headroom for background-runtime noise in the counter).
	if vecRow.NsPerBlock > 0.8*copyRow.NsPerBlock {
		fatal(fmt.Errorf("frame regression: vectored %.1f ns/block vs copy %.1f — not a 20%% win",
			vecRow.NsPerBlock, copyRow.NsPerBlock))
	}
	if vecRow.AllocsPerFrame > 1.5 {
		fatal(fmt.Errorf("frame regression: vectored writer allocates %.2f objects/frame, want ≤1",
			vecRow.AllocsPerFrame))
	}

	rows := map[string]WireRow{}
	for _, v := range benchharness.WireVariants {
		row, err := wireRow(v)
		if err != nil {
			fatal(err)
		}
		rep.WireRows = append(rep.WireRows, row)
		rows[v.Name] = row
		fmt.Printf("%-10s %d blocks %d raw %d on-wire %d reduced %.2fx %.0f MB/s\n",
			row.Variant, row.Blocks, row.BytesRaw, row.BytesOnWire, row.BytesReduced,
			row.ReductionX, row.ThroughputMBs)
	}

	// The reduction bargain: on the smooth plateau payload, compression must
	// at least halve the bytes crossing the wire versus the raw relay.
	rawR, compR := rows["raw"], rows["compress"]
	if 2*compR.BytesOnWire > rawR.BytesOnWire {
		fatal(fmt.Errorf("reduction regression: compress puts %d bytes on the wire vs raw %d — not a 2x cut",
			compR.BytesOnWire, rawR.BytesOnWire))
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchwire:", err)
	os.Exit(1)
}
