// benchelastic records the elastic-staging baseline: the shared bursty
// benchharness scenario run against a fixed pool sized for the average load
// (fixed-small), a fixed pool sized for the peak (fixed-large), and the
// autoscaled pool (elastic), on the real platform. It writes the comparison
// as JSON so CI and future optimization PRs have a committed reference
// point, and fails when the autoscaler stops earning its keep on either
// axis: elastic must stall producers less than the under-provisioned fixed
// pool AND bill fewer stager node-seconds than the peak-provisioned one.
//
// Usage:
//
//	benchelastic [-o BENCH_elastic.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"zipper/internal/benchharness"
)

// Row is one pool-sizing variant's measurement.
type Row struct {
	Variant           string  `json:"variant"`
	Stagers           int     `json:"stagers_ceiling"`
	Blocks            int64   `json:"blocks"`
	Relayed           int64   `json:"blocks_relayed"`
	StagerSpills      int64   `json:"stager_spills"`
	WriteStallS       float64 `json:"write_stall_s"`
	StagerNodeSeconds float64 `json:"stager_node_seconds"`
	ScaleGrows        int     `json:"scale_grows"`
	ScaleDrains       int     `json:"scale_drains"`
	PoolPeak          int     `json:"pool_peak"`
	ThroughputMBs     float64 `json:"throughput_mb_per_s"`
}

// Report is the file layout of BENCH_elastic.json.
type Report struct {
	Producers   int     `json:"producers"`
	Bursts      int     `json:"bursts"`
	BurstBlocks int     `json:"burst_blocks_per_producer"`
	BurstPauseS float64 `json:"burst_pause_s"`
	BlockBytes  int     `json:"block_bytes"`
	AnalyzeUs   float64 `json:"analyze_us_per_block"`
	GoVersion   string  `json:"go_version"`
	Rows        []Row   `json:"rows"`
}

func run(sc benchharness.ElasticScenario, v benchharness.ElasticVariant) (Row, error) {
	dir, err := os.MkdirTemp("", "benchelastic")
	if err != nil {
		return Row{}, err
	}
	defer os.RemoveAll(dir)
	start := time.Now()
	st, err := benchharness.RunElastic(dir, v, sc)
	elapsed := time.Since(start)
	if err != nil {
		return Row{}, err
	}
	total := int64(sc.Producers) * int64(sc.Bursts) * int64(sc.BurstBlocks)
	if st.BlocksAnalyzed != total {
		return Row{}, fmt.Errorf("%s: analyzed %d of %d blocks", v.Name, st.BlocksAnalyzed, total)
	}
	row := Row{
		Variant: v.Name, Stagers: v.Stagers,
		Blocks: st.BlocksWritten, Relayed: st.BlocksRelayed,
		StagerSpills: st.BlocksSpilled, WriteStallS: st.WriteStall,
		StagerNodeSeconds: st.StagerNodeSeconds,
	}
	pool := 0
	if v.Elastic.Enabled {
		pool = v.Elastic.MinStagers
	} else {
		pool = v.Stagers
	}
	row.PoolPeak = pool
	for _, ev := range st.ScaleEvents {
		switch ev.Action {
		case "grow":
			row.ScaleGrows++
		case "drain":
			row.ScaleDrains++
		}
		if ev.PoolSize > row.PoolPeak {
			row.PoolPeak = ev.PoolSize
		}
	}
	if ns := elapsed.Nanoseconds(); ns > 0 {
		row.ThroughputMBs = float64(total*int64(sc.BlockBytes)) / (float64(ns) / 1e9) / 1e6
	}
	return row, nil
}

func main() {
	out := flag.String("o", "BENCH_elastic.json", "output file")
	flag.Parse()

	sc := benchharness.ElasticScenarioDefault
	rep := Report{
		Producers: sc.Producers, Bursts: sc.Bursts, BurstBlocks: sc.BurstBlocks,
		BurstPauseS: sc.BurstPause.Seconds(), BlockBytes: sc.BlockBytes,
		AnalyzeUs: float64(sc.Analyze) / 1e3, GoVersion: runtime.Version(),
	}
	rows := map[string]Row{}
	for _, v := range benchharness.ElasticVariants {
		row, err := run(sc, v)
		if err != nil {
			fatal(err)
		}
		rep.Rows = append(rep.Rows, row)
		rows[v.Name] = row
		fmt.Printf("%-12s stall=%.3fs node-s=%.2f relayed=%d spills=%d pool-peak=%d grows=%d drains=%d %.0f MB/s\n",
			row.Variant, row.WriteStallS, row.StagerNodeSeconds, row.Relayed,
			row.StagerSpills, row.PoolPeak, row.ScaleGrows, row.ScaleDrains, row.ThroughputMBs)
	}

	// The elastic bargain, gated on both axes: under bursts the autoscaled
	// pool must liberate producers better than the average-sized fixed pool
	// (it grows into the ceiling when the burst lands) while billing fewer
	// stager node-seconds than the peak-sized fixed pool (it drains between
	// bursts instead of idling four nodes all run long).
	e, small, large := rows["elastic"], rows["fixed-small"], rows["fixed-large"]
	if e.WriteStallS >= small.WriteStallS {
		fatal(fmt.Errorf("elastic regression: write stall %.3fs vs %.3fs fixed-small",
			e.WriteStallS, small.WriteStallS))
	}
	if e.StagerNodeSeconds >= large.StagerNodeSeconds {
		fatal(fmt.Errorf("elastic regression: %.2f stager node-seconds vs %.2f fixed-large",
			e.StagerNodeSeconds, large.StagerNodeSeconds))
	}
	if e.ScaleGrows == 0 || e.ScaleDrains == 0 {
		fatal(fmt.Errorf("the scaler never cycled: %d grows, %d drains", e.ScaleGrows, e.ScaleDrains))
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchelastic:", err)
	os.Exit(1)
}
