// zipperbench regenerates the paper's tables and figures on the simulated
// platform. Each subcommand prints the same rows or series the paper
// reports; compare shapes (ordering, ratios, crossovers) per EXPERIMENTS.md.
//
// Usage:
//
//	zipperbench table1|table2|table3
//	zipperbench fig2   [-steps N] [-scale K]
//	zipperbench fig4|fig5|fig6
//	zipperbench fig11
//	zipperbench fig12|fig13 [-producers P]
//	zipperbench fig14|fig15 [-steps N] [-full]
//	zipperbench fig16|fig18 [-steps N] [-full]
//	zipperbench fig17|fig19 [-cores N] [-steps N]
//	zipperbench model  [-producers P]
//	zipperbench all    (quick versions of everything)
//
// Paper-scale runs (-scale 1 / -full) simulate thousands of ranks and take
// minutes of wall time; the defaults are scaled for interactive use.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"zipper/internal/apps/synthetic"
	"zipper/internal/core"
	"zipper/internal/exp"
	"zipper/internal/model"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	steps := fs.Int("steps", 0, "time steps (0 = experiment default)")
	scale := fs.Int("scale", 8, "rank-count divisor for fig2 (1 = paper scale)")
	producers := fs.Int("producers", 56, "producer ranks for fig12/fig13/model (paper: 1568)")
	cores := fs.Int("cores", 204, "total cores for fig17/fig19 (paper fig19: 13056)")
	full := fs.Bool("full", false, "run the full paper-scale sweep (slow)")
	_ = fs.Parse(os.Args[2:])

	switch cmd {
	case "table1":
		fmt.Print(exp.Table1())
	case "table2":
		fmt.Print(exp.Table2())
	case "table3":
		fmt.Print(exp.Table3())
	case "fig2":
		n := *steps
		if n == 0 {
			n = 30
		}
		fmt.Print(exp.FormatFig2(exp.RunFig2(n, *scale)))
	case "fig3":
		printTrace(exp.RunFig3())
	case "fig4":
		printTrace(exp.RunFig4())
	case "fig5":
		printTrace(exp.RunFig5())
	case "fig6":
		printTrace(exp.RunFig6())
	case "fig11":
		fmt.Println("Figure 11: non-integrated vs integrated (pipelined) design")
		fmt.Print(model.PipelineDiagram(7))
	case "fig12":
		fmt.Print(exp.FormatBreakdown(
			fmt.Sprintf("Figure 12: Zipper stage breakdown, No Preserve mode (%d producers)", *producers),
			exp.RunBreakdown(core.NoPreserve, *producers)))
	case "fig13":
		fmt.Print(exp.FormatBreakdown(
			fmt.Sprintf("Figure 13: Zipper stage breakdown, Preserve mode (%d producers)", *producers),
			exp.RunBreakdown(core.Preserve, *producers)))
	case "fig14", "fig15":
		coresList := []int{84, 168, 336}
		n := 10
		if *full {
			coresList = exp.Fig14Cores
			n = 0
		}
		if *steps > 0 {
			n = *steps
		}
		for _, c := range []synthetic.Complexity{synthetic.Linear, synthetic.NLogN, synthetic.N32} {
			fmt.Print(exp.FormatSweep(c, exp.RunConcurrentSweep(c, coresList, n)))
		}
	case "fig16", "fig18":
		app := "cfd"
		title := "Figure 16: CFD weak scaling on Stampede2"
		if cmd == "fig18" {
			app = "lammps"
			title = "Figure 18: LAMMPS weak scaling on Stampede2"
		}
		coresList := []int{204, 408, 816}
		n := 10
		if *full {
			coresList = exp.ScalingCores
			n = 30
		}
		if *steps > 0 {
			n = *steps
		}
		fmt.Print(exp.FormatScaling(title, exp.RunScaling(app, coresList, n)))
	case "fig17", "fig19":
		app := "cfd"
		window := 1300 * time.Millisecond
		if cmd == "fig19" {
			app = "lammps"
			window = 9100 * time.Millisecond
		}
		n := *steps
		if n == 0 {
			n = 10
		}
		cmp := exp.RunStepComparison(app, *cores, n, window)
		fmt.Printf("%s\n", cmp.Title)
		fmt.Printf("steps completed in the snapshot: Zipper %.2f vs Decaf %.2f (%.2fx)\n",
			cmp.ZipperSteps, cmp.DecafSteps, cmp.ZipperSteps/cmp.DecafSteps)
		fmt.Println("Zipper (sim.0):")
		fmt.Print(cmp.ZipperGantt)
		fmt.Println("Decaf (sim.0):")
		fmt.Print(cmp.DecafGantt)
	case "model":
		fmt.Print(exp.FormatModel(exp.RunModelValidation(*producers)))
	case "all":
		fmt.Print(exp.Table1(), "\n", exp.Table2(), "\n", exp.Table3(), "\n")
		fmt.Print(exp.FormatFig2(exp.RunFig2(12, 16)), "\n")
		printTrace(exp.RunFig4())
		printTrace(exp.RunFig5())
		printTrace(exp.RunFig6())
		fmt.Print(model.PipelineDiagram(7), "\n")
		fmt.Print(exp.FormatBreakdown("Figure 12 (No Preserve)", exp.RunBreakdown(core.NoPreserve, 28)), "\n")
		fmt.Print(exp.FormatBreakdown("Figure 13 (Preserve)", exp.RunBreakdown(core.Preserve, 28)), "\n")
		fmt.Print(exp.FormatSweep(synthetic.Linear, exp.RunConcurrentSweep(synthetic.Linear, []int{84, 168}, 8)), "\n")
		fmt.Print(exp.FormatScaling("Figure 16 (CFD)", exp.RunScaling("cfd", []int{204, 408}, 8)), "\n")
		fmt.Print(exp.FormatScaling("Figure 18 (LAMMPS)", exp.RunScaling("lammps", []int{204, 408}, 8)), "\n")
		fmt.Print(exp.FormatModel(exp.RunModelValidation(28)))
	default:
		usage()
		os.Exit(2)
	}
}

func printTrace(f exp.TraceFigure) {
	fmt.Println(f.Title)
	fmt.Print(f.Gantt)
	fmt.Println(f.Detail)
	fmt.Println()
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: zipperbench <experiment> [flags]
experiments: table1 table2 table3 fig2 fig3 fig4 fig5 fig6 fig11 fig12 fig13
             fig14 fig15 fig16 fig17 fig18 fig19 model all
flags:       -steps N  -scale K  -producers P  -cores N  -full`)
}
