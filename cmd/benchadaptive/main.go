// benchadaptive records the closed-loop routing baseline: the shared
// benchharness flow scenarios (a steadily lagging consumer in front of a
// RAM-provisioned staging tier, and a bursty producer pair in front of a
// bounded one) run under the reactive hybrid policy and the adaptive flow
// controller, on the real platform. It writes the comparison as JSON so CI
// and future optimization PRs have a committed reference point, and fails
// when the controller stops earning its keep: adaptive routing must beat
// hybrid on producer write-stall in the slow-consumer scenario and must not
// regress it materially in the bursty one.
//
// Usage:
//
//	benchadaptive [-o BENCH_adaptive.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"zipper/internal/benchharness"
)

// Row is one routing variant's measurement within a scenario.
type Row struct {
	Variant       string  `json:"variant"`
	Blocks        int64   `json:"blocks"`
	Direct        int64   `json:"blocks_direct"`
	Relayed       int64   `json:"blocks_relayed"`
	ViaDisk       int64   `json:"blocks_via_disk"`
	StagerSpills  int64   `json:"stager_spills"`
	WriteStallS   float64 `json:"write_stall_s"`
	ThroughputMBs float64 `json:"throughput_mb_per_s"`
}

// Scenario is one workload's comparison.
type Scenario struct {
	Name               string  `json:"name"`
	AnalyzeUs          float64 `json:"analyze_us_per_block"`
	StagerBufferBlocks int     `json:"stager_buffer_blocks"`
	DisableSteal       bool    `json:"disable_steal"`
	Rows               []Row   `json:"rows"`
}

// Report is the file layout of BENCH_adaptive.json.
type Report struct {
	Producers  int        `json:"producers"`
	BlockBytes int        `json:"block_bytes"`
	BlocksRun  int        `json:"blocks_per_producer"`
	GoVersion  string     `json:"go_version"`
	Scenarios  []Scenario `json:"scenarios"`
}

func run(sc benchharness.FlowScenario, v benchharness.StagingVariant) (Row, error) {
	dir, err := os.MkdirTemp("", "benchadaptive")
	if err != nil {
		return Row{}, err
	}
	defer os.RemoveAll(dir)
	start := time.Now()
	st, err := benchharness.RunFlow(dir, v, sc)
	elapsed := time.Since(start)
	if err != nil {
		return Row{}, err
	}
	total := int64(sc.Producers) * int64(sc.Blocks)
	if st.BlocksAnalyzed != total {
		return Row{}, fmt.Errorf("%s/%s: analyzed %d of %d blocks", sc.Name, v.Name, st.BlocksAnalyzed, total)
	}
	row := Row{
		Variant:      v.Name,
		Blocks:       st.BlocksWritten,
		Direct:       st.BlocksSent,
		Relayed:      st.BlocksRelayed,
		ViaDisk:      st.BlocksStolen,
		StagerSpills: st.BlocksSpilled,
		WriteStallS:  st.WriteStall,
	}
	if ns := elapsed.Nanoseconds(); ns > 0 {
		row.ThroughputMBs = float64(total*int64(sc.BlockBytes)) / (float64(ns) / 1e9) / 1e6
	}
	return row, nil
}

func main() {
	out := flag.String("o", "BENCH_adaptive.json", "output file")
	flag.Parse()

	base := benchharness.FlowScenarios[0]
	rep := Report{
		Producers: base.Producers, BlockBytes: base.BlockBytes, BlocksRun: base.Blocks,
		GoVersion: runtime.Version(),
	}
	byName := map[string]map[string]Row{}
	for _, sc := range benchharness.FlowScenarios {
		s := Scenario{
			Name:               sc.Name,
			AnalyzeUs:          float64(sc.Analyze) / 1e3,
			StagerBufferBlocks: sc.StagerBufferBlocks,
			DisableSteal:       sc.DisableSteal,
		}
		byName[sc.Name] = map[string]Row{}
		for _, v := range benchharness.AdaptiveVariants {
			row, err := run(sc, v)
			if err != nil {
				fatal(err)
			}
			s.Rows = append(s.Rows, row)
			byName[sc.Name][v.Name] = row
			fmt.Printf("%-14s %-9s stall=%.3fs direct=%d relayed=%d viaDisk=%d spills=%d %.0f MB/s\n",
				sc.Name, row.Variant, row.WriteStallS, row.Direct, row.Relayed,
				row.ViaDisk, row.StagerSpills, row.ThroughputMBs)
		}
		rep.Scenarios = append(rep.Scenarios, s)
	}

	// The headline claim of the closed loop: with a lagging consumer and a
	// provisioned staging tier, the controller sheds the stream into the
	// tier and stalls the producers far less than the reactive policy,
	// whose window-credit polls look healthy at every decision instant.
	slow := byName["slow-consumer"]
	if a, h := slow["adaptive"], slow["hybrid"]; a.WriteStallS >= h.WriteStallS {
		fatal(fmt.Errorf("adaptive regression: slow-consumer stall %.3fs vs %.3fs hybrid",
			a.WriteStallS, h.WriteStallS))
	}
	if a := slow["adaptive"]; a.Relayed == 0 {
		fatal(fmt.Errorf("adaptive never engaged the staging tier under a lagging consumer"))
	}
	// Bursty is noisier (the steal path competes on shared disk); gate on
	// non-regression with headroom rather than a strict win.
	bursty := byName["bursty"]
	if a, h := bursty["adaptive"], bursty["hybrid"]; a.WriteStallS > h.WriteStallS*1.5 {
		fatal(fmt.Errorf("adaptive regression: bursty stall %.3fs vs %.3fs hybrid (>1.5x)",
			a.WriteStallS, h.WriteStallS))
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchadaptive:", err)
	os.Exit(1)
}
