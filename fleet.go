package zipper

// Multi-job control plane: a Fleet is one shared in-transit stager tier that
// many concurrent Jobs multiplex over, with per-tenant admission quotas,
// weighted fair share, and priority preemption (see internal/control). Each
// Submit admits one job as a tenant: the control plane assigns it a slice of
// the fleet through its own epoch-versioned place.Directory, the shared
// stagers account its buffer residency and spills on its own tenant state,
// and the reconcile loop continuously rebalances slices and quotas as jobs
// arrive and finish. A Fleet of one job with no quotas behaves like a plain
// NewJob with the same staging tier — the single tenant holds the whole
// fleet and its quota equals the full buffer, so no admission decision ever
// differs.

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"zipper/internal/control"
	"zipper/internal/core"
	"zipper/internal/flow"
	"zipper/internal/rt"
	"zipper/internal/rt/realenv"
	"zipper/internal/staging"
)

// QuotaConfig is a fleet-submitted job's resource envelope: guaranteed
// stager buffer blocks, weighted bandwidth share, and preemption priority.
// See the control package for the semantics; NewJob ignores it.
type QuotaConfig = control.Quota

// Priority is a fleet tenant's preemption class.
type Priority = control.Priority

const (
	// PriorityLow marks best-effort batch tenants: first to lose capacity
	// under pressure (the default).
	PriorityLow = control.PriorityLow
	// PriorityNormal is the middle class.
	PriorityNormal = control.PriorityNormal
	// PriorityHigh marks latency-sensitive tenants whose quota pressure
	// triggers preemption of lower classes.
	PriorityHigh = control.PriorityHigh
)

// FleetEvent is one control-plane action on the shared fleet — admit,
// finish, assign, preempt, or resize — reported in FleetStats.Events.
type FleetEvent = control.Event

// FleetConfig configures a shared stager fleet.
type FleetConfig struct {
	// Stagers is the shared in-transit tier's size (≥ 1). Every submitted
	// job relays through a control-plane-assigned slice of these endpoints.
	Stagers int
	// StagerBufferBlocks is each shared stager's in-memory buffer capacity
	// in blocks (default 64). The control plane splits each buffer among
	// the tenants assigned to it.
	StagerBufferBlocks int
	// SpoolDir is the directory standing in for the parallel file system.
	// Required. Stager spill partitions and per-job spool partitions live
	// under it.
	SpoolDir string
	// MaxJobs caps how many jobs the fleet admits over its lifetime
	// (default 4). Tenant ids index pre-sized per-tenant state at every
	// stager, so ids are never reused.
	MaxJobs int
	// MaxConsumers reserves the consumer address space (default
	// 4 × MaxJobs). The wire's endpoint count is fixed at construction;
	// each Submit allocates its job's consumer endpoints from this pool and
	// is rejected once it runs dry.
	MaxConsumers int
	// MaxBatchBlocks / MaxBatchBytes bound the stagers' re-batched
	// forwarded messages (defaults as in staging.Config).
	MaxBatchBlocks int
	MaxBatchBytes  int64
	// Window is each endpoint's receive window in messages (default 4).
	Window int
	// RingDepth selects the intra-node fast path for the shared wire: when
	// > 0 every sending thread gets private lock-free SPSC ring lanes of
	// this depth instead of the buffered-channel endpoints (see
	// StagingConfig.RingDepth). 0 keeps channels, byte-identical.
	RingDepth int
	// Reconcile is the control plane's reconcile period (default 2ms).
	Reconcile time.Duration
	// PreemptOccupancy is the quota-fraction at which a tenant counts as
	// pressured, triggering preemption of a lower-priority spill-heavy
	// tenant (default 0.75).
	PreemptOccupancy float64
}

// withDefaults resolves zero fields.
func (cfg FleetConfig) withDefaults() FleetConfig {
	if cfg.StagerBufferBlocks <= 0 {
		cfg.StagerBufferBlocks = 64
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 4
	}
	if cfg.MaxConsumers <= 0 {
		cfg.MaxConsumers = 4 * cfg.MaxJobs
	}
	if cfg.Window <= 0 {
		cfg.Window = 4
	}
	return cfg
}

// Fleet is one shared stager tier plus the control plane that multiplexes
// submitted jobs over it. Build with NewFleet, admit jobs with Submit, Wait
// each returned Job as usual, and Close once every job has finished.
type Fleet struct {
	env     *realenv.Env
	cfg     FleetConfig // defaults resolved
	net     *realenv.Network
	fs      *realenv.FileStore
	plane   *control.Plane
	stagers []*staging.Stager // immutable after NewFleet

	// rankTenant maps global producer ranks to tenant ids. Copy-on-write
	// behind an atomic so the stagers' receiver threads resolve tenants
	// without a lock the Submit path could be parked under.
	rankTenant atomic.Value // []int

	mu       sync.Mutex
	tenants  []*control.Tenant
	jobs     []*Job
	nextCons int // next free consumer address in [0, MaxConsumers)
	nextRank int // next free global producer rank
	closed   bool
}

// stagerBase is the transport address of fleet stager 0: the consumer
// address space [0, MaxConsumers) comes first.
func (f *Fleet) stagerBase() int { return f.cfg.MaxConsumers }

// NewFleet validates the configuration, builds the shared wire and stager
// tier, and starts the control plane's reconcile loop.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	if cfg.Stagers < 1 {
		return nil, &ConfigError{Field: "Stagers",
			Reason: fmt.Sprintf("a fleet is a shared staging tier; it needs Stagers ≥ 1, got %d", cfg.Stagers)}
	}
	if cfg.StagerBufferBlocks < 0 {
		return nil, &ConfigError{Field: "StagerBufferBlocks",
			Reason: fmt.Sprintf("must be ≥ 0 (0 selects the default), got %d", cfg.StagerBufferBlocks)}
	}
	if cfg.SpoolDir == "" {
		return nil, &ConfigError{Field: "SpoolDir",
			Reason: "required: the directory standing in for the parallel file system"}
	}
	if cfg.MaxJobs < 0 || cfg.MaxConsumers < 0 {
		return nil, &ConfigError{Field: "MaxJobs",
			Reason: fmt.Sprintf("reservations must be ≥ 0 (0 selects the default), got MaxJobs %d MaxConsumers %d",
				cfg.MaxJobs, cfg.MaxConsumers)}
	}
	if cfg.RingDepth < 0 {
		return nil, &ConfigError{Field: "RingDepth",
			Reason: fmt.Sprintf("must be ≥ 0 (0 = channel transport, > 0 = SPSC ring depth in messages), got %d", cfg.RingDepth)}
	}
	cfg = cfg.withDefaults()
	env := realenv.New()
	fs, err := realenv.NewFileStore(cfg.SpoolDir)
	if err != nil {
		return nil, err
	}
	f := &Fleet{env: env, cfg: cfg, fs: fs}
	f.rankTenant.Store([]int(nil))
	if cfg.RingDepth > 0 {
		f.net = realenv.NewRingNetwork(cfg.MaxConsumers+cfg.Stagers, cfg.RingDepth)
	} else {
		f.net = realenv.NewNetwork(cfg.MaxConsumers+cfg.Stagers, cfg.Window)
	}
	for s := 0; s < cfg.Stagers; s++ {
		spill, err := fs.Partition(fmt.Sprintf("stage%d", s))
		if err != nil {
			return nil, err
		}
		scfg := staging.Config{
			BufferBlocks:   cfg.StagerBufferBlocks,
			MaxBatchBlocks: cfg.MaxBatchBlocks,
			MaxBatchBytes:  cfg.MaxBatchBytes,
			Managed:        true,
			Tenants:        cfg.MaxJobs,
			Tenant:         f.tenantOfRank,
		}
		// Each shared stager's forwarder is one sending thread: its own
		// port (a private SPSC lane set on the ring wire).
		f.stagers = append(f.stagers,
			staging.NewStager(env, scfg, s, f.net.Inbox(f.stagerBase()+s), f.net.Port(), spill))
	}
	addrs := make([]int, cfg.Stagers)
	for s := range addrs {
		addrs[s] = f.stagerBase() + s
	}
	f.plane = control.NewPlane(control.Config{
		Interval:         cfg.Reconcile,
		PreemptOccupancy: cfg.PreemptOccupancy,
		MaxTenants:       cfg.MaxJobs,
	}, addrs, cfg.StagerBufferBlocks, (*fleetHost)(f))
	f.plane.Start(env)
	return f, nil
}

// tenantOfRank resolves a global producer rank to its tenant id — the
// resolver the shared stagers call per arriving message. Lock-free: the
// rank table is copy-on-write.
func (f *Fleet) tenantOfRank(rank int) int {
	ranks := f.rankTenant.Load().([]int)
	if rank >= 0 && rank < len(ranks) {
		return ranks[rank]
	}
	return 0
}

// fleetHost adapts a Fleet to the control.Host interface without exporting
// the plane's callbacks on the public API. The stager slice is immutable
// after NewFleet, so no method needs the fleet mutex.
type fleetHost Fleet

func (h *fleetHost) stagerAt(addr int) *staging.Stager {
	return h.stagers[addr-h.cfg.MaxConsumers]
}

// TenantLevel implements control.Host.
func (h *fleetHost) TenantLevel(addr, tenant int) *flow.Level {
	return h.stagerAt(addr).TenantLevel(tenant)
}

// TenantSpilled implements control.Host.
func (h *fleetHost) TenantSpilled(addr, tenant int) int64 {
	return h.stagerAt(addr).TenantSpilled(tenant)
}

// SetTenantQuota implements control.Host.
func (h *fleetHost) SetTenantQuota(c rt.Ctx, addr, tenant, blocks int) {
	h.stagerAt(addr).SetTenantQuota(c, tenant, blocks)
}

// Submit validates cfg, admits it to the control plane as a new tenant
// (Config.Quota is its resource envelope), and builds its producer and
// consumer endpoints over the shared wire. The returned Job is used exactly
// like a NewJob one — Producer/Consumer/Wait/Stats — except that the shared
// staging tier outlives it: its Wait releases the tenant's capacity back to
// the fleet instead of retiring stagers, and its Stats carry no stager
// entries (see FleetStats for the shared tier).
//
// The job's staging tier is the fleet's: Staging.Stagers, Placement,
// Elastic, Fault, Reduce, and TCPAddr must be unset, and SpoolDir is
// optional (the job gets its own partition of the fleet's). Rejections are
// *ConfigError values; over-subscribed quotas and an exhausted MaxJobs or
// MaxConsumers reservation are admission rejections, not panics.
func (f *Fleet) Submit(cfg Config) (*Job, error) {
	cfg = cfg.normalized()
	switch {
	case cfg.Staging.Stagers != 0:
		return nil, &ConfigError{Field: "Staging.Stagers",
			Reason: "a fleet job relays through the shared tier; size it with FleetConfig.Stagers"}
	case cfg.Staging.Placement != RankAffine:
		return nil, &ConfigError{Field: "Staging.Placement",
			Reason: "a fleet job's stager placement is the control plane's decision; Placement must be left default"}
	case cfg.Elastic.Enabled:
		return nil, &ConfigError{Field: "Staging.Elastic",
			Reason: "the shared fleet is fixed-size from a job's point of view; resize it through the fleet, not per job"}
	case cfg.Fault.Enabled:
		return nil, &ConfigError{Field: "Fault",
			Reason: "the fault plane protects a private staging tier; it is not available per fleet job"}
	case cfg.Staging.Reduce.Enabled():
		return nil, &ConfigError{Field: "Staging.Reduce",
			Reason: "in-transit reduction is a tier property; it is not available per fleet job"}
	case cfg.TCPAddr != "":
		return nil, &ConfigError{Field: "TCPAddr",
			Reason: "a fleet shares one in-process wire; per-job TCP endpoints are not available"}
	}
	// Core validation against the fleet-provided tier shape.
	probe := cfg
	if probe.SpoolDir == "" {
		probe.SpoolDir = f.cfg.SpoolDir
	}
	probe.Staging.Stagers = f.cfg.Stagers
	probe = probe.normalized()
	if err := probe.validate(); err != nil {
		return nil, err
	}

	ctx := f.env.Ctx()
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, &ConfigError{Field: "Jobs", Reason: "the fleet is closed"}
	}
	if f.nextCons+cfg.Consumers > f.cfg.MaxConsumers {
		return nil, &ConfigError{Field: "Consumers",
			Reason: fmt.Sprintf("consumer reservation exhausted: %d requested, %d of MaxConsumers %d free",
				cfg.Consumers, f.cfg.MaxConsumers-f.nextCons, f.cfg.MaxConsumers)}
	}
	name := fmt.Sprintf("job%d", len(f.tenants))
	tenant, err := f.plane.Admit(ctx, control.JobSpec{Name: name, Quota: cfg.Quota})
	if err != nil {
		var ce *control.ConfigError
		if errors.As(err, &ce) {
			return nil, &ConfigError{Field: ce.Field, Reason: ce.Reason}
		}
		return nil, err
	}
	tid := tenant.ID()
	// Publish the job's global rank range before its producers exist: the
	// shared stagers must resolve the very first message's tenant.
	consBase, rankBase := f.nextCons, f.nextRank
	f.nextCons += cfg.Consumers
	f.nextRank += cfg.Producers
	old := f.rankTenant.Load().([]int)
	ranks := make([]int, f.nextRank)
	copy(ranks, old)
	for i := rankBase; i < f.nextRank; i++ {
		ranks[i] = tid
	}
	f.rankTenant.Store(ranks)
	f.tenants = append(f.tenants, tenant)

	jobfs := f.fs
	if cfg.SpoolDir == "" {
		jobfs, err = f.fs.Partition(name)
		if err != nil {
			return nil, err
		}
	} else if jobfs, err = realenv.NewFileStore(cfg.SpoolDir); err != nil {
		return nil, err
	}
	ccfg := core.Config{
		BufferBlocks:         cfg.BufferBlocks,
		HighWater:            cfg.HighWater,
		ConsumerBufferBlocks: cfg.ConsumerBufferBlocks,
		MaxBatchBlocks:       cfg.MaxBatchBlocks,
		MaxBatchBytes:        cfg.MaxBatchBytes,
		DisableSteal:         cfg.DisableSteal,
		RoutePolicy:          cfg.RoutePolicy,
		Adaptive:             cfg.Adaptive,
		Recorder:             cfg.Recorder,
	}
	if cfg.Preserve {
		ccfg.Mode = core.Preserve
	}
	if cfg.RoutePolicy != RouteDirect {
		// The tenant's slice of the fleet: an epoch-versioned directory the
		// control plane edits and the producers Peek/Claim/Done against,
		// with tenant-scoped occupancy as the routing signal — another
		// tenant's backlog never shows up in this job's gauges.
		ccfg.Directory = tenant.Directory()
		ccfg.StagerLevel = func(addr int) *flow.Level {
			return (*fleetHost)(f).TenantLevel(addr, tid)
		}
	}
	j := &Job{env: f.env, cfg: cfg, net: f.net, fs: jobfs, fleet: f, tenant: tenant}
	for q := 0; q < cfg.Consumers; q++ {
		n := 0
		for p := 0; p < cfg.Producers; p++ {
			if p*cfg.Consumers/cfg.Producers == q {
				n++
			}
		}
		addr := consBase + q
		j.cons = append(j.cons, &Consumer{
			c:   core.NewConsumer(f.env, ccfg, addr, n, f.net.Inbox(addr), jobfs),
			ctx: f.env.Ctx(),
		})
	}
	for p := 0; p < cfg.Producers; p++ {
		dest := consBase + p*cfg.Consumers/cfg.Producers
		// Each producer's sender is one sending thread: its own port.
		j.prod = append(j.prod, &Producer{
			p:   core.NewStagedProducer(f.env, ccfg, rankBase+p, dest, core.NoStager, f.net.Port(), jobfs),
			ctx: f.env.Ctx(),
		})
	}
	f.jobs = append(f.jobs, j)
	return j, nil
}

// jobFinished releases a fleet job's tenant capacity: Job.Wait calls it
// after the job's streams complete, and the plane's synchronous reconcile
// redistributes the slice to the remaining tenants.
func (f *Fleet) jobFinished(j *Job) {
	f.mu.Lock()
	if j.finished {
		f.mu.Unlock()
		return
	}
	j.finished = true
	f.mu.Unlock()
	f.plane.Finish(f.env.Ctx(), j.tenant)
}

// Close stops the control plane and retires the shared stager tier: each
// endpoint leaves every tenant directory, in-flight claims quiesce, and the
// provably-last Retire message flushes it. Call Close after every submitted
// job's Wait has returned; it is then the analogue of the tier shutdown a
// private Job performs inside its own Wait. Close is idempotent.
func (f *Fleet) Close() {
	ctx := f.env.Ctx()
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	tenants := append([]*control.Tenant(nil), f.tenants...)
	f.mu.Unlock()
	f.plane.Stop(ctx)
	for s, st := range f.stagers {
		addr := f.stagerBase() + s
		for _, t := range tenants {
			t.Directory().Remove(addr)
			t.Directory().Quiesce(ctx, addr)
		}
		f.net.Send(ctx, addr, rt.Message{Retire: true})
		st.Wait(ctx)
	}
}

// FleetTenantStats is one tenant's view in FleetStats.
type FleetTenantStats struct {
	Name     string
	Priority string
	Active   bool
	// Stagers is the tenant's current slice size and QuotaBlocks its total
	// admission cap across the slice (0 after Finish).
	Stagers     int
	QuotaBlocks int
	// BlocksRelayed / BlocksSpilled are the tenant's lifetime totals across
	// the shared tier.
	BlocksRelayed int64
	BlocksSpilled int64
	// Preempted counts how many times this tenant was the preemption victim.
	Preempted int
}

// FleetStats aggregates the shared tier and the control plane's timeline.
// Stager totals are final only after Close.
type FleetStats struct {
	JobsAdmitted int
	JobsActive   int
	Stagers      []StagerStats
	Tenants      []FleetTenantStats
	// BlocksRelayed / BlocksSpilled are fleet-wide stager totals.
	BlocksRelayed int64
	BlocksSpilled int64
	// StagerNodeSeconds is the shared tier's provisioned cost: each
	// stager's finish time summed, complete after Close. The number the
	// shared fleet is judged on against N private tiers — see
	// BENCH_control.json.
	StagerNodeSeconds float64
	// Preemptions is the control plane's lifetime preemption count, and
	// Events its admit/finish/assign/preempt/resize timeline.
	Preemptions int
	Events      []FleetEvent
}

// Stats aggregates the shared stager tier, per-tenant accounting, and the
// control plane's event timeline in one call. May be called mid-run; call
// after Close for final stager totals.
func (f *Fleet) Stats() FleetStats {
	ctx := f.env.Ctx()
	snaps := f.plane.Snapshot()
	var fs FleetStats
	fs.JobsAdmitted = len(snaps)
	fs.Preemptions = f.plane.Preemptions()
	fs.Events = f.plane.Events()
	for _, st := range f.stagers {
		s := st.Stats(ctx)
		fs.Stagers = append(fs.Stagers, stagerStats(s, false))
		fs.BlocksRelayed += s.BlocksIn
		fs.BlocksSpilled += s.BlocksSpilled
		fs.StagerNodeSeconds += s.Finished.Seconds()
	}
	for _, sn := range snaps {
		t := FleetTenantStats{
			Name: sn.Name, Priority: sn.Priority.String(), Active: sn.Active,
			Stagers: len(sn.Stagers), QuotaBlocks: sn.QuotaBlocks, Preempted: sn.Preempted,
		}
		for _, st := range f.stagers {
			t.BlocksRelayed += st.TenantIn(sn.ID)
			t.BlocksSpilled += st.TenantSpilled(sn.ID)
		}
		if sn.Active {
			fs.JobsActive++
		}
		fs.Tenants = append(fs.Tenants, t)
	}
	return fs
}
