module zipper

go 1.24
