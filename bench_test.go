// Benchmarks regenerating every table and figure of the paper's evaluation
// at reduced scale (one bench per experiment), plus ablation benches for the
// design choices DESIGN.md calls out. Run specific figures with e.g.
//
//	go test -bench BenchmarkFig16 -benchmem
//
// Paper-scale runs are available through cmd/zipperbench with -full/-scale 1.
package zipper_test

import (
	"testing"
	"time"

	"zipper"
	"zipper/internal/apps/synthetic"
	"zipper/internal/benchharness"
	"zipper/internal/core"
	"zipper/internal/exp"
	"zipper/internal/model"
	"zipper/internal/transport"
	"zipper/internal/workflow"
)

// --- Tables (configuration rendering) ---

func BenchmarkTable1Setup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if exp.Table1() == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable2Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = exp.Table2()
	}
}

func BenchmarkTable3Apps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = exp.Table3()
	}
}

// --- Figure 2: the seven transports + Zipper on the CFD workflow ---

func benchFig2Method(b *testing.B, mk func() transport.Method) {
	spec := exp.Scale(exp.CFDBridges(6), 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := workflow.RunBaseline(spec, mk())
		if !res.OK {
			b.Fatal(res.Fail)
		}
	}
}

func BenchmarkFig2_MPIIO(b *testing.B) {
	benchFig2Method(b, func() transport.Method { return transport.NewMPIIO() })
}

func BenchmarkFig2_DataSpaces(b *testing.B) {
	benchFig2Method(b, func() transport.Method { return transport.NewDataSpaces(false) })
}

func BenchmarkFig2_ADIOSDataSpaces(b *testing.B) {
	benchFig2Method(b, func() transport.Method { return transport.NewDataSpaces(true) })
}

func BenchmarkFig2_DIMES(b *testing.B) {
	benchFig2Method(b, func() transport.Method { return transport.NewDIMES(false) })
}

func BenchmarkFig2_ADIOSDIMES(b *testing.B) {
	benchFig2Method(b, func() transport.Method { return transport.NewDIMES(true) })
}

func BenchmarkFig2_Flexpath(b *testing.B) {
	benchFig2Method(b, func() transport.Method { return transport.NewFlexpath() })
}

func BenchmarkFig2_Decaf(b *testing.B) {
	benchFig2Method(b, func() transport.Method { return transport.NewDecaf() })
}

func BenchmarkFig2_Zipper(b *testing.B) {
	spec := exp.Scale(exp.CFDBridges(6), 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if res := workflow.RunZipper(spec); !res.OK {
			b.Fatal(res.Fail)
		}
	}
}

// --- Figures 3/11: overlap model ---

func BenchmarkFig11PipelineModel(b *testing.B) {
	m := model.Model{P: 1568, Q: 784, NB: 3_211_264, Tc: time.Millisecond, Tm: 2 * time.Millisecond, Ta: time.Millisecond}
	for i := 0; i < b.N; i++ {
		if m.TT2S() <= 0 {
			b.Fatal("bad model")
		}
	}
}

// --- Figures 4-6: trace captures ---

func BenchmarkFig4TraceDIMES(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if f := exp.RunFig4(); f.Gantt == "" {
			b.Fatal("empty trace")
		}
	}
}

func BenchmarkFig5TraceFlexpath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if f := exp.RunFig5(); f.Gantt == "" {
			b.Fatal("empty trace")
		}
	}
}

func BenchmarkFig6TraceDecaf(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if f := exp.RunFig6(); f.Gantt == "" {
			b.Fatal("empty trace")
		}
	}
}

// --- Figures 12/13: stage breakdowns ---

func BenchmarkFig12BreakdownNoPreserve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := exp.RunBreakdown(core.NoPreserve, 14); len(rows) != 6 {
			b.Fatal("incomplete breakdown")
		}
	}
}

func BenchmarkFig13BreakdownPreserve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := exp.RunBreakdown(core.Preserve, 14); len(rows) != 6 {
			b.Fatal("incomplete breakdown")
		}
	}
}

// --- Figures 14/15: concurrent transfer optimization sweep ---

func BenchmarkFig14ConcurrentSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.RunConcurrentSweep(synthetic.Linear, []int{84}, 6)
		if rows[0].Concurrent.Stolen == 0 {
			b.Fatal("sweep produced no stealing")
		}
	}
}

func BenchmarkFig15XmitWait(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.RunConcurrentSweep(synthetic.Linear, []int{84}, 6)
		if rows[0].MP.XmitWait == 0 {
			b.Fatal("no congestion recorded")
		}
	}
}

// --- Figures 16/18: weak scaling ---

func BenchmarkFig16CFDScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.RunScaling("cfd", []int{204, 408}, 6)
		if !rows[0].Methods["Zipper"].OK {
			b.Fatal("Zipper run failed")
		}
	}
}

func BenchmarkFig18LAMMPSScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.RunScaling("lammps", []int{204, 408}, 6)
		if !rows[0].Methods["Zipper"].OK {
			b.Fatal("Zipper run failed")
		}
	}
}

// --- Figures 17/19: step-rate trace comparisons ---

func BenchmarkFig17CFDStepComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cmp := exp.RunStepComparison("cfd", 204, 8, 1300*time.Millisecond)
		if cmp.ZipperSteps <= cmp.DecafSteps {
			b.Fatal("Zipper not ahead")
		}
	}
}

func BenchmarkFig19LAMMPSStepComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cmp := exp.RunStepComparison("lammps", 204, 6, 9100*time.Millisecond)
		if cmp.ZipperSteps <= cmp.DecafSteps {
			b.Fatal("Zipper not ahead")
		}
	}
}

// --- §6.1 model validation ---

func BenchmarkModelValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := exp.RunModelValidation(14); len(rows) != 3 {
			b.Fatal("incomplete validation")
		}
	}
}

// --- Ablations (DESIGN.md §4) ---

// BenchmarkAblationBlockSize compares fine-grain blocks against
// one-big-block-per-step (what the baseline systems do).
func BenchmarkAblationBlockSize(b *testing.B) {
	for _, bs := range []int64{512 << 10, 2 << 20, 16 << 20} {
		bs := bs
		b.Run(byteSize(bs), func(b *testing.B) {
			spec := exp.Scale(exp.CFDBridges(6), 32)
			spec.Workload.BlockBytes = bs
			for i := 0; i < b.N; i++ {
				res := workflow.RunZipper(spec)
				if !res.OK {
					b.Fatal(res.Fail)
				}
				b.ReportMetric(res.E2E.Seconds(), "virt-s/run")
			}
		})
	}
}

// BenchmarkAblationSteal toggles the concurrent dual-channel optimization
// under a slow consumer.
func BenchmarkAblationSteal(b *testing.B) {
	for _, disable := range []bool{false, true} {
		disable := disable
		name := "concurrent"
		if disable {
			name = "message-passing-only"
		}
		b.Run(name, func(b *testing.B) {
			spec := exp.Synthetic(synthetic.Linear, 1<<20, 28)
			spec.Workload.Steps = 6
			spec.Workload.AnalyzePerByte = time.Nanosecond
			spec.Zipper.DisableSteal = disable
			for i := 0; i < b.N; i++ {
				res := workflow.RunZipper(spec)
				if !res.OK {
					b.Fatal(res.Fail)
				}
				b.ReportMetric(res.ProducerWallClock.Seconds(), "virt-s/wall")
			}
		})
	}
}

// BenchmarkAblationThreshold sweeps the high-water mark.
func BenchmarkAblationThreshold(b *testing.B) {
	for _, hw := range []int{2, 6, 12} {
		hw := hw
		b.Run(byteCount(hw), func(b *testing.B) {
			spec := exp.Synthetic(synthetic.Linear, 1<<20, 28)
			spec.Workload.Steps = 6
			spec.Workload.AnalyzePerByte = time.Nanosecond
			spec.Zipper.BufferBlocks = 16
			spec.Zipper.HighWater = hw
			for i := 0; i < b.N; i++ {
				res := workflow.RunZipper(spec)
				if !res.OK {
					b.Fatal(res.Fail)
				}
				b.ReportMetric(float64(res.BlocksStolen), "stolen")
			}
		})
	}
}

// BenchmarkAblationSlots sweeps the producer buffer depth (num_slots).
func BenchmarkAblationSlots(b *testing.B) {
	for _, slots := range []int{2, 8, 32} {
		slots := slots
		b.Run(byteCount(slots), func(b *testing.B) {
			spec := exp.Scale(exp.CFDBridges(6), 32)
			spec.Zipper.BufferBlocks = slots
			for i := 0; i < b.N; i++ {
				res := workflow.RunZipper(spec)
				if !res.OK {
					b.Fatal(res.Fail)
				}
				b.ReportMetric(res.E2E.Seconds(), "virt-s/run")
			}
		})
	}
}

// BenchmarkAblationPreserve compares Preserve against NoPreserve.
func BenchmarkAblationPreserve(b *testing.B) {
	for _, mode := range []core.Mode{core.NoPreserve, core.Preserve} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			spec := exp.Scale(exp.CFDBridges(6), 32)
			spec.Zipper.Mode = mode
			for i := 0; i < b.N; i++ {
				res := workflow.RunZipper(spec)
				if !res.OK {
					b.Fatal(res.Fail)
				}
				b.ReportMetric(res.E2E.Seconds(), "virt-s/run")
			}
		})
	}
}

// BenchmarkAblationBarrier compares Zipper's dataflow hand-off against the
// Decaf-style interlocked hand-off on the identical workload.
func BenchmarkAblationBarrier(b *testing.B) {
	spec := exp.Scale(exp.CFDBridges(6), 32)
	b.Run("dataflow", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := workflow.RunZipper(spec)
			if !res.OK {
				b.Fatal(res.Fail)
			}
			b.ReportMetric(res.E2E.Seconds(), "virt-s/run")
		}
	})
	b.Run("interlocked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := workflow.RunBaseline(spec, transport.NewDecaf())
			if !res.OK {
				b.Fatal(res.Fail)
			}
			b.ReportMetric(res.E2E.Seconds(), "virt-s/run")
		}
	})
}

// --- Batched dual-channel transfers (the per-message-overhead ablation) ---

// BenchmarkBatching pushes blocks through a one-deep receive window (the
// regime where the producer runs ahead of the network) under the canonical
// protocol variants: the seed's one-block-per-message protocol with a fresh
// allocation per payload ("seed"), the pooled unbatched protocol, and pooled
// batched sends. The msgs/block metric shows batching amortizing the
// per-message overhead; B/op shows the payload pool closing the allocation
// loop (~32 KiB/block for the seed vs a few hundred bytes pooled). The
// workload itself lives in internal/benchharness, shared with cmd/benchbatch
// so the committed BENCH_batching.json baseline measures the same thing.
func BenchmarkBatching(b *testing.B) {
	const blockBytes = 32 << 10
	for _, v := range benchharness.Variants {
		v := v
		b.Run(v.Name, func(b *testing.B) {
			dir := b.TempDir()
			b.ReportAllocs()
			b.SetBytes(blockBytes)
			b.ResetTimer()
			st, err := benchharness.Run(dir, v, b.N, blockBytes)
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			if st.BlocksSent > 0 {
				b.ReportMetric(float64(st.Messages)/float64(st.BlocksSent), "msgs/block")
			}
		})
	}
}

// BenchmarkStaging runs the consumer-bound staging workload under the three
// routing modes on the real platform. The stall/op metric is the producer
// liberation the in-transit tier buys; viaDisk/op the file-system traffic it
// avoids. The workload lives in internal/benchharness, shared with
// cmd/benchstaging so the committed BENCH_staging.json baseline measures the
// same thing.
func BenchmarkStaging(b *testing.B) {
	const blockBytes = 32 << 10
	for _, v := range benchharness.StagingVariants {
		v := v
		b.Run(v.Name, func(b *testing.B) {
			dir := b.TempDir()
			b.SetBytes(2 * blockBytes) // two producers
			b.ResetTimer()
			st, err := benchharness.RunStaging(dir, v, 2, b.N, blockBytes, 50*time.Microsecond)
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(st.WriteStall/float64(b.N), "stall-s/op")
			b.ReportMetric(float64(st.BlocksStolen)/float64(b.N), "viaDisk/op")
			b.ReportMetric(float64(st.BlocksRelayed)/float64(b.N), "relayed/op")
		})
	}
}

// BenchmarkAdaptive runs the bursty flow scenario under the reactive hybrid
// policy and the closed-loop adaptive controller. The workload lives in
// internal/benchharness, shared with cmd/benchadaptive so the committed
// BENCH_adaptive.json baseline measures the same thing. (The benchmark uses
// the bursty scenario scaled to b.N; the slow-consumer gate scenario runs at
// its committed size in the baseline tool only.)
func BenchmarkAdaptive(b *testing.B) {
	sc := benchharness.FlowScenarios[1] // bursty
	for _, v := range benchharness.AdaptiveVariants {
		v := v
		b.Run(v.Name, func(b *testing.B) {
			dir := b.TempDir()
			run := sc
			run.Blocks = b.N
			b.SetBytes(int64(run.Producers) * int64(run.BlockBytes))
			b.ResetTimer()
			st, err := benchharness.RunFlow(dir, v, run)
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(st.WriteStall/float64(b.N), "stall-s/op")
			b.ReportMetric(float64(st.BlocksStolen)/float64(b.N), "viaDisk/op")
			b.ReportMetric(float64(st.BlocksRelayed)/float64(b.N), "relayed/op")
		})
	}
}

// BenchmarkElastic runs the bursty elastic-staging scenario under the three
// pool-sizing variants on the real platform. The stall/op metric is the
// producer liberation the pool buys; node-s/op the stager provisioning it
// costs — elastic should land between the fixed pools on neither axis's bad
// side. The workload lives in internal/benchharness, shared with
// cmd/benchelastic so the committed BENCH_elastic.json baseline measures
// the same thing. (The benchmark scales burst length to b.N; the committed
// gate runs at the baseline size in the tool only.)
func BenchmarkElastic(b *testing.B) {
	sc := benchharness.ElasticScenarioDefault
	sc.Bursts = 2
	sc.BurstPause = 50 * time.Millisecond
	for _, v := range benchharness.ElasticVariants {
		v := v
		b.Run(v.Name, func(b *testing.B) {
			run := sc
			run.BurstBlocks = (b.N + run.Bursts - 1) / run.Bursts
			total := run.Producers * run.Bursts * run.BurstBlocks
			b.SetBytes(int64(run.Producers) * int64(run.BlockBytes))
			b.ResetTimer()
			st, err := benchharness.RunElastic(b.TempDir(), v, run)
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(st.WriteStall/float64(total), "stall-s/op")
			b.ReportMetric(st.StagerNodeSeconds/float64(total), "node-s/op")
			b.ReportMetric(float64(st.BlocksRelayed)/float64(total), "relayed/op")
		})
	}
}

// BenchmarkPlacement compares the placement policies on the skewed-rate
// staging workload: imbalance is the per-stager relayed max/mean ratio the
// load-aware policy exists to shrink, stall-s/op the producer liberation it
// buys. The workload lives in internal/benchharness, shared with
// cmd/benchplacement so the committed BENCH_placement.json baseline
// measures the same thing. (The benchmark scales the skewed burst to b.N;
// the committed ≥2x-imbalance gate runs at the baseline size in the tool
// only.)
func BenchmarkPlacement(b *testing.B) {
	sc := benchharness.PlacementScenarioDefault
	sc.Bursts = 2
	sc.BurstPause = 30 * time.Millisecond
	for _, v := range benchharness.PlacementVariants {
		v := v
		b.Run(v.Name, func(b *testing.B) {
			run := sc
			fast := (b.N + run.Bursts - 1) / run.Bursts
			if fast < 10 {
				fast = 10 // keep the 10:1 skew shape at benchtime 1x
			}
			run.BurstBlocks = []int{fast, fast / 10, fast / 10, fast / 10}
			total := run.Total()
			b.SetBytes(total * int64(run.BlockBytes) / int64(b.N))
			b.ResetTimer()
			st, err := benchharness.RunPlacement(b.TempDir(), v, run)
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(st.RelayImbalance, "imbalance")
			b.ReportMetric(st.WriteStall/float64(total), "stall-s/op")
		})
	}
}

// --- Real-platform throughput of the public API ---

func BenchmarkRealJobThroughput(b *testing.B) {
	dir := b.TempDir()
	job, err := zipper.NewJob(zipper.Config{Producers: 1, Consumers: 1, SpoolDir: dir, BufferBlocks: 16})
	if err != nil {
		b.Fatal(err)
	}
	const blockBytes = 64 << 10
	payload := make([]byte, blockBytes)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if _, ok := job.Consumer(0).Read(); !ok {
				return
			}
		}
	}()
	b.SetBytes(blockBytes)
	b.ResetTimer()
	p := job.Producer(0)
	for i := 0; i < b.N; i++ {
		p.Write(i, 0, payload)
	}
	p.Close()
	<-done
	job.Wait()
}

func byteSize(n int64) string {
	switch {
	case n >= 1<<20:
		return itoa(int(n>>20)) + "MiB"
	default:
		return itoa(int(n>>10)) + "KiB"
	}
}

func byteCount(n int) string { return itoa(n) }

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
