package zipper

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRoutePolicyNames pins the policy names, including the descriptive
// rendering of out-of-range values (which used to read as "in-situ").
func TestRoutePolicyNames(t *testing.T) {
	cases := map[RoutePolicy]string{
		RouteDirect:     "in-situ",
		RouteStaging:    "in-transit",
		RouteHybrid:     "hybrid",
		RouteAdaptive:   "adaptive",
		RoutePolicy(7):  "unknown(7)",
		RoutePolicy(-3): "unknown(-3)",
	}
	for pol, want := range cases {
		if got := pol.String(); got != want {
			t.Errorf("RoutePolicy(%d).String() = %q, want %q", int(pol), got, want)
		}
	}
}

// TestAdaptiveConfigValidation covers the new knobs: RouteAdaptive needs a
// staging tier, unknown policies are rejected with the descriptive name, and
// nonsensical controller tuning is refused.
func TestAdaptiveConfigValidation(t *testing.T) {
	dir := t.TempDir()
	base := Config{Producers: 1, Consumers: 1, SpoolDir: dir}

	cfg := base
	cfg.RoutePolicy = RouteAdaptive
	if _, err := NewJob(cfg); err == nil {
		t.Error("RouteAdaptive without stagers accepted")
	}
	cfg = base
	cfg.RoutePolicy = RoutePolicy(9)
	if _, err := NewJob(cfg); err == nil || !strings.Contains(err.Error(), "unknown(9)") {
		t.Errorf("unknown policy error %v, want it to name unknown(9)", err)
	}
	cfg = base
	cfg.Stagers = 1
	cfg.RoutePolicy = RouteAdaptive
	cfg.Adaptive.MaxShare = 1.5
	if _, err := NewJob(cfg); err == nil {
		t.Error("MaxShare > 1 accepted")
	}
	cfg.Adaptive = AdaptiveTuning{Tau: -time.Second}
	if _, err := NewJob(cfg); err == nil {
		t.Error("negative Tau accepted")
	}
	cfg.Adaptive = AdaptiveTuning{MinShare: 0.9, MaxShare: 0.5}
	if _, err := NewJob(cfg); err == nil {
		t.Error("MinShare > MaxShare accepted (would be silently clamped)")
	}

	cfg = base
	cfg.Stagers = 1
	cfg.RoutePolicy = RouteAdaptive
	job, err := NewJob(cfg)
	if err != nil {
		t.Fatalf("legal adaptive config rejected: %v", err)
	}
	job.Producer(0).Close()
	for {
		if _, ok := job.Consumer(0).Read(); !ok {
			break
		}
	}
	job.Wait()
}

// TestJobAdaptiveRoundTrip runs the closed-loop policy end to end on the
// real platform under a lagging consumer (with -race in CI this doubles as
// the concurrency test for the shared flow gauges: producers, stagers, and
// the stats reader all touch them at once). It also covers the new
// observability surface: stager occupancy in StagerStats and live EWMA
// rates in JobStats.
func TestJobAdaptiveRoundTrip(t *testing.T) {
	job, err := NewJob(Config{
		Producers: 2, Consumers: 1, SpoolDir: t.TempDir(),
		Stagers: 1, StagerBufferBlocks: 64, RoutePolicy: RouteAdaptive,
		BufferBlocks: 8, Window: 1, MaxBatchBlocks: 4,
		Adaptive: AdaptiveTuning{Tau: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	const blocks = 200
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := job.Producer(i)
			for s := 0; s < blocks; s++ {
				data := NewPayload(256)
				for j := range data {
					data[j] = byte(i ^ s)
				}
				p.Write(s, 0, data)
			}
			p.Close()
		}()
	}
	// A stats poller races the runtime threads mid-flight: under -race this
	// proves Job.Stats' live gauges are safe while data moves.
	stop := make(chan struct{})
	var poller sync.WaitGroup
	poller.Add(1)
	go func() {
		defer poller.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := job.Stats()
			if len(st.Stagers) == 1 {
				ss := st.Stagers[0]
				if ss.Queued < 0 || ss.Queued > ss.Capacity {
					t.Errorf("stager occupancy out of range: %d/%d", ss.Queued, ss.Capacity)
					return
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()
	n := 0
	for {
		blk, ok := job.Consumer(0).Read()
		if !ok {
			break
		}
		want := byte(blk.ID.Rank ^ blk.ID.Step)
		for _, v := range blk.Data {
			if v != want {
				t.Fatalf("block %+v corrupted", blk.ID)
			}
		}
		blk.Release()
		n++
		time.Sleep(100 * time.Microsecond) // the lag that engages the controller
	}
	close(stop)
	poller.Wait()
	wg.Wait()
	job.Wait()
	if n != 2*blocks {
		t.Fatalf("analyzed %d blocks, want %d", n, 2*blocks)
	}
	st := job.Stats()
	if st.BlocksSent+st.BlocksRelayed+st.BlocksStolen != st.BlocksWritten {
		t.Fatalf("channel split %d+%d+%d != %d",
			st.BlocksSent, st.BlocksRelayed, st.BlocksStolen, st.BlocksWritten)
	}
	if st.BlocksRelayed == 0 {
		t.Fatal("adaptive routing never engaged the staging tier under a lagging consumer")
	}
	ss := st.Stagers[0]
	if ss.Capacity != 64 {
		t.Fatalf("stager capacity %d, want 64", ss.Capacity)
	}
	if ss.Queued != 0 {
		t.Fatalf("stager still holds %d blocks after drain", ss.Queued)
	}
	if st.WriteRate < 0 || st.AnalyzeRate < 0 || st.DeliverRate < 0 {
		t.Fatalf("negative live rates: %+v", st)
	}
}

// TestJobStatsLiveRates checks the mid-run observability the flow gauges
// added: while a stream is moving, Job.Stats reports nonzero EWMA rates,
// not just terminal totals.
func TestJobStatsLiveRates(t *testing.T) {
	job, err := NewJob(Config{
		Producers: 1, Consumers: 1, SpoolDir: t.TempDir(),
		BufferBlocks: 8, Window: 2, DisableSteal: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	const blocks = 400
	go func() {
		p := job.Producer(0)
		for s := 0; s < blocks; s++ {
			p.Write(s, 0, NewPayload(512))
			time.Sleep(200 * time.Microsecond)
		}
		p.Close()
	}()
	var midWrite, midAnalyze float64
	n := 0
	for {
		blk, ok := job.Consumer(0).Read()
		if !ok {
			break
		}
		blk.Release()
		n++
		if n == blocks/2 {
			st := job.Stats()
			midWrite, midAnalyze = st.WriteRate, st.AnalyzeRate
		}
	}
	job.Wait()
	if n != blocks {
		t.Fatalf("analyzed %d blocks, want %d", n, blocks)
	}
	// ~5000 blocks/s are flowing at mid-stream; the EWMAs must see them.
	if midWrite < 100 || midAnalyze < 100 {
		t.Fatalf("mid-run rates write=%.0f analyze=%.0f blocks/s, want ≫ 0", midWrite, midAnalyze)
	}
}
