// LAMMPS-style melt + MSD analysis: the paper's molecular-dynamics workflow
// (§6.3.2) at laptop scale. Lennard-Jones systems start as cold FCC solids,
// are driven to melt, and stream per-step atom positions through the Zipper
// runtime; the consumer computes the mean squared displacement — the
// diffusion signature that distinguishes solid from liquid.
package main

import (
	"fmt"
	"log"
	"os"
	"sync"

	"zipper"
	"zipper/internal/analysis"
	"zipper/internal/apps/ljmd"
	"zipper/internal/floatbuf"
)

const (
	producers = 2
	steps     = 120
	outEvery  = 10
)

func main() {
	dir, err := os.MkdirTemp("", "zipper-md")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	job, err := zipper.NewJob(zipper.Config{
		Producers: producers,
		Consumers: 1,
		SpoolDir:  dir,
	})
	if err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < producers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			sim, err := ljmd.New(ljmd.Params{
				Cells:   3,
				Density: 0.8442, // LAMMPS melt benchmark parameters
				T0:      1.44,
				Dt:      0.005,
				RCut:    2.5,
				Seed:    int64(i + 1),
			})
			if err != nil {
				log.Fatal(err)
			}
			p := job.Producer(i)
			p.Write(0, 0, floatbuf.Encode(sim.Positions())) // reference frame
			for s := 1; s <= steps; s++ {
				sim.Step()
				if s%outEvery == 0 {
					p.Write(s, 0, floatbuf.Encode(sim.Positions()))
				}
			}
			p.Close()
		}()
	}

	msd := analysis.NewMSD()
	for {
		blk, ok := job.Consumer(0).Read()
		if !ok {
			break
		}
		msd.Analyze(blk.ID.Rank, blk.ID.Step, floatbuf.Decode(blk.Data))
	}
	wg.Wait()
	job.Wait()
	if err := job.Consumer(0).Err(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("LJ melt workflow: %d systems × %d steps\n", producers, steps)
	fmt.Println("mean squared displacement (growing MSD = melting):")
	for _, s := range msd.Steps() {
		v, _ := msd.At(s)
		fmt.Printf("  step %4d  MSD = %8.4f σ²\n", s, v)
	}
}
