// Quickstart: couple a toy producer with a streaming variance analysis
// through the Zipper runtime. One producer emits blocks of synthetic data;
// one consumer reduces each block into a running standard variance — the
// workflow of the paper's §6.1, at desk scale.
package main

import (
	"fmt"
	"log"
	"os"
	"sync"

	"zipper"
	"zipper/internal/analysis"
	"zipper/internal/apps/synthetic"
	"zipper/internal/floatbuf"
)

func main() {
	dir, err := os.MkdirTemp("", "zipper-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	job, err := zipper.NewJob(zipper.Config{
		Producers: 1,
		Consumers: 1,
		SpoolDir:  dir,
	})
	if err != nil {
		log.Fatal(err)
	}

	const steps, elemsPerBlock = 20, 4096
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		gen := synthetic.NewGenerator(synthetic.Linear, elemsPerBlock, 42)
		p := job.Producer(0)
		for s := 0; s < steps; s++ {
			p.Write(s, 0, floatbuf.Encode(gen.Next()))
		}
		p.Close()
	}()

	v := analysis.NewVariance()
	blocks := 0
	for {
		blk, ok := job.Consumer(0).Read()
		if !ok {
			break
		}
		v.Analyze(floatbuf.Decode(blk.Data))
		blocks++
	}
	wg.Wait()
	job.Wait()
	if err := job.Consumer(0).Err(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("analyzed %d blocks (%d samples)\n", blocks, v.Count())
	fmt.Printf("mean     = %.6f\n", v.Mean())
	fmt.Printf("variance = %.6f (uniform(0,1) expects ≈ 0.0833)\n", v.Value())
	st := job.Producer(0).Stats()
	fmt.Printf("paths: %d via network, %d via file system\n", st.BlocksSent, st.BlocksStolen)
}
