// Quickstart: couple a toy producer with a streaming variance analysis
// through the Zipper runtime. One producer emits blocks of synthetic data;
// one consumer reduces each block into a running standard variance — the
// workflow of the paper's §6.1, at desk scale.
package main

import (
	"fmt"
	"log"
	"os"
	"sync"

	"zipper"
	"zipper/internal/analysis"
	"zipper/internal/apps/synthetic"
	"zipper/internal/floatbuf"
)

func main() {
	dir, err := os.MkdirTemp("", "zipper-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	job, err := zipper.NewJob(zipper.Config{
		Producers: 1,
		Consumers: 1,
		SpoolDir:  dir,
		// Let the sender drain a few blocks per mixed message when the
		// buffer runs deep; with shallow buffers it stays one-per-message.
		MaxBatchBlocks: 4,
	})
	if err != nil {
		log.Fatal(err)
	}

	const steps, elemsPerBlock = 20, 4096
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		gen := synthetic.NewGenerator(synthetic.Linear, elemsPerBlock, 42)
		p := job.Producer(0)
		for s := 0; s < steps; s++ {
			// Pooled payload: once the consumer Releases a block, this
			// NewPayload reuses its buffer instead of allocating.
			data := zipper.NewPayload(8 * elemsPerBlock)
			floatbuf.EncodeInto(data, gen.Next())
			p.Write(s, 0, data)
		}
		p.Close()
	}()

	v := analysis.NewVariance()
	blocks := 0
	for {
		blk, ok := job.Consumer(0).Read()
		if !ok {
			break
		}
		v.Analyze(floatbuf.Decode(blk.Data))
		blk.Release()
		blocks++
	}
	wg.Wait()
	job.Wait()
	if err := job.Consumer(0).Err(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("analyzed %d blocks (%d samples)\n", blocks, v.Count())
	fmt.Printf("mean     = %.6f\n", v.Mean())
	fmt.Printf("variance = %.6f (uniform(0,1) expects ≈ 0.0833)\n", v.Value())
	st := job.Producer(0).Stats()
	fmt.Printf("paths: %d via network, %d via file system\n", st.BlocksSent, st.BlocksStolen)
}
