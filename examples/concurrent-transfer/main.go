// Concurrent dual-channel transfer demo (§4.3, §6.2): a fast producer feeds
// a deliberately slow consumer, once with the work-stealing writer thread
// enabled and once in message-passing-only mode. With stealing enabled, the
// writer detects the high-water mark and routes overflow blocks through real
// spool files, cutting the producer's stall time — Algorithm 1 in action.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"zipper"
)

const (
	blocks     = 120
	blockBytes = 64 << 10
	consumerMs = 3 // artificial analysis cost per block
)

func run(disableSteal bool) (wall time.Duration, stats zipper.ProducerStats) {
	dir, err := os.MkdirTemp("", "zipper-concurrent")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	job, err := zipper.NewJob(zipper.Config{
		Producers: 1, Consumers: 1,
		SpoolDir:     dir,
		BufferBlocks: 6, HighWater: 3,
		Window:       1,
		DisableSteal: disableSteal,
	})
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	done := make(chan struct{})
	go func() {
		defer close(done)
		p := job.Producer(0)
		payload := make([]byte, blockBytes)
		for s := 0; s < blocks; s++ {
			p.Write(s, 0, payload)
		}
		p.Close()
	}()
	for {
		if _, ok := job.Consumer(0).Read(); !ok {
			break
		}
		time.Sleep(consumerMs * time.Millisecond) // slow analysis
	}
	<-done
	job.Wait()
	return time.Since(start), job.Producer(0).Stats()
}

func main() {
	mpWall, mpStats := run(true)
	ccWall, ccStats := run(false)

	fmt.Println("message-passing-only (writer thread off):")
	fmt.Printf("  wall %v, producer stalled %.3fs, stolen %d\n",
		mpWall.Round(time.Millisecond), mpStats.WriteStall, mpStats.BlocksStolen)
	fmt.Println("concurrent message+file transfer (Algorithm 1):")
	fmt.Printf("  wall %v, producer stalled %.3fs, stolen %d of %d blocks\n",
		ccWall.Round(time.Millisecond), ccStats.WriteStall, ccStats.BlocksStolen, blocks)
	if ccStats.BlocksStolen > 0 && ccStats.WriteStall < mpStats.WriteStall {
		fmt.Println("=> the file-system path absorbed the overflow and reduced the stall,")
		fmt.Println("   matching Figure 14's O(n) result.")
	}
}
