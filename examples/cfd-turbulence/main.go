// CFD + turbulence analysis: the paper's flagship workflow (§3, §6.3.1) at
// laptop scale. Several lattice-Boltzmann channel-flow simulations (one per
// producer, each owning a slab of the channel) stream their velocity fields
// through the Zipper runtime to consumers that accumulate the n-th moments
// E(u^k) of the streamwise velocity — the statistics that characterize
// turbulent fluctuation.
package main

import (
	"fmt"
	"log"
	"os"
	"sync"

	"zipper"
	"zipper/internal/analysis"
	"zipper/internal/apps/lbm"
	"zipper/internal/floatbuf"
)

const (
	producers = 2
	consumers = 1
	steps     = 60
	outEvery  = 5 // analyze every 5th time step
	moments   = 4
)

func main() {
	dir, err := os.MkdirTemp("", "zipper-cfd")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	job, err := zipper.NewJob(zipper.Config{
		Producers: producers,
		Consumers: consumers,
		SpoolDir:  dir,
	})
	if err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < producers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			sim, err := lbm.New(lbm.Params{
				NX: 16, NY: 16, NZ: 32,
				Tau:   0.8,
				Force: 1e-5,
			})
			if err != nil {
				log.Fatal(err)
			}
			p := job.Producer(i)
			for s := 0; s < steps; s++ {
				sim.Step()
				if (s+1)%outEvery == 0 {
					p.Write(s, 0, floatbuf.Encode(sim.VelocityField()))
				}
			}
			p.Close()
		}()
	}

	mom := analysis.NewNthMoment(moments)
	blocks := 0
	for {
		blk, ok := job.Consumer(0).Read()
		if !ok {
			break
		}
		mom.Analyze(floatbuf.Decode(blk.Data))
		blocks++
	}
	wg.Wait()
	job.Wait()
	if err := job.Consumer(0).Err(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("CFD workflow: %d producers × %d steps, %d field blocks analyzed\n",
		producers, steps, blocks)
	for k := 1; k <= moments; k++ {
		fmt.Printf("  E(u^%d) = %+.6e\n", k, mom.Moment(k))
	}
	fmt.Println("positive odd moments confirm net flow along +x; the full set")
	fmt.Println("characterizes the velocity PDF of the developing channel flow.")
}
