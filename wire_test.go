package zipper

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestWireValidation pins the typed rejections the wire-path options add:
// reduction needs a reachable staging tier, delta encoding needs a single
// in-order relay path, and pool-managed tiers cannot run over TCP.
func TestWireValidation(t *testing.T) {
	dir := t.TempDir()
	bad := []struct {
		name  string
		field string
		cfg   Config
	}{
		{"reduce without stagers", "Staging.Reduce",
			Config{Producers: 1, Consumers: 1, SpoolDir: dir,
				Staging: StagingConfig{Reduce: ReduceConfig{Operator: ReduceCompress}}}},
		{"reduce with RouteDirect", "Staging.Reduce",
			Config{Producers: 2, Consumers: 1, SpoolDir: dir,
				Staging: StagingConfig{Stagers: 1, Reduce: ReduceConfig{Operator: ReduceCompress}}}},
		{"stride without a stride", "Staging.Reduce",
			Config{Producers: 2, Consumers: 1, SpoolDir: dir,
				Staging: StagingConfig{Stagers: 1, RoutePolicy: RouteStaging,
					Reduce: ReduceConfig{Operator: ReduceStride}}}},
		{"delta over an elastic tier", "Staging.Reduce",
			Config{Producers: 4, Consumers: 1, SpoolDir: dir,
				Staging: StagingConfig{Stagers: 2, RoutePolicy: RouteStaging,
					Elastic: ElasticConfig{Enabled: true},
					Reduce:  ReduceConfig{Operator: ReduceDelta}}}},
		{"delta over a fault-protected tier", "Staging.Reduce",
			Config{Producers: 4, Consumers: 1, SpoolDir: dir,
				Staging: StagingConfig{Stagers: 2, RoutePolicy: RouteStaging,
					Reduce: ReduceConfig{Operator: ReduceDelta}},
				Fault: FaultConfig{Enabled: true}}},
		{"delta under load-aware placement", "Staging.Reduce",
			Config{Producers: 4, Consumers: 1, SpoolDir: dir,
				Staging: StagingConfig{Stagers: 2, RoutePolicy: RouteStaging,
					Placement: LeastOccupancy,
					Reduce:    ReduceConfig{Operator: ReduceDelta}}}},
		{"elastic tier over TCP", "TCPAddr",
			Config{Producers: 4, Consumers: 1, SpoolDir: dir, TCPAddr: "127.0.0.1:0",
				Staging: StagingConfig{Stagers: 2, RoutePolicy: RouteStaging,
					Elastic: ElasticConfig{Enabled: true}}}},
		{"fault plane over TCP", "TCPAddr",
			Config{Producers: 4, Consumers: 1, SpoolDir: dir, TCPAddr: "127.0.0.1:0",
				Staging: StagingConfig{Stagers: 2, RoutePolicy: RouteStaging},
				Fault:   FaultConfig{Enabled: true}}},
		{"placement-directed tier over TCP", "TCPAddr",
			Config{Producers: 4, Consumers: 1, SpoolDir: dir, TCPAddr: "127.0.0.1:0",
				Staging: StagingConfig{Stagers: 2, RoutePolicy: RouteStaging,
					Placement: HashRing}}},
	}
	for _, tc := range bad {
		_, err := NewJob(tc.cfg)
		if err == nil {
			t.Errorf("%s accepted", tc.name)
			continue
		}
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Errorf("%s: error %v is not a *ConfigError", tc.name, err)
			continue
		}
		if ce.Field != tc.field {
			t.Errorf("%s: rejected field %q, want %q", tc.name, ce.Field, tc.field)
		}
	}
}

// TestJobTCPStagedReduced runs a complete job over real TCP sockets with
// producer-side compression through the staging tier: the public-API
// integration of frame v5 (vectored writes, encoded descriptors) plus
// in-transit reduction. Every block must arrive intact and decoded, and the
// byte accounting must show the reduction on both wire legs.
func TestJobTCPStagedReduced(t *testing.T) {
	job, err := NewJob(Config{
		Producers: 2, Consumers: 1, SpoolDir: t.TempDir(),
		TCPAddr: "127.0.0.1:0",
		Staging: StagingConfig{Stagers: 1, BufferBlocks: 16, RoutePolicy: RouteStaging,
			Reduce: ReduceConfig{Operator: ReduceCompress}},
		BufferBlocks: 8, MaxBatchBlocks: 4, DisableSteal: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	const blocks = 100
	const blockBytes = 1024
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := job.Producer(i)
			for s := 0; s < blocks; s++ {
				data := NewPayload(blockBytes)
				for j := range data {
					data[j] = byte(i ^ s) // constant per block: compresses hard
				}
				p.Write(s, 0, data)
			}
			p.Close()
		}()
	}
	n := 0
	for {
		blk, ok := job.Consumer(0).Read()
		if !ok {
			break
		}
		if len(blk.Data) != blockBytes {
			t.Fatalf("block %+v arrived with %d bytes, want %d", blk.ID, len(blk.Data), blockBytes)
		}
		want := byte(blk.ID.Rank ^ blk.ID.Step)
		for _, v := range blk.Data {
			if v != want {
				t.Fatalf("block %+v corrupted over the TCP relay", blk.ID)
			}
		}
		blk.Release()
		n++
		time.Sleep(50 * time.Microsecond)
	}
	wg.Wait()
	job.Wait()
	if err := job.Consumer(0).Err(); err != nil {
		t.Fatal(err)
	}
	if n != 2*blocks {
		t.Fatalf("analyzed %d blocks, want %d", n, 2*blocks)
	}
	st := job.Stats()
	if st.BlocksRelayed != 2*blocks || st.BlocksSent != 0 {
		t.Fatalf("channel split sent=%d relayed=%d, want 0/%d", st.BlocksSent, st.BlocksRelayed, 2*blocks)
	}
	raw := int64(2 * blocks * blockBytes)
	// Two wire legs (producer→stager over TCP, stager→consumer loopback),
	// both carrying the encoded payload.
	if st.BytesOnWire >= 2*raw {
		t.Fatalf("BytesOnWire=%d, want under the %d two raw legs would cost", st.BytesOnWire, 2*raw)
	}
	if st.BytesReduced == 0 {
		t.Fatal("BytesReduced is zero despite compression on a constant payload")
	}
	if st.BytesOnWire+st.BytesReduced != 2*raw {
		t.Fatalf("accounting leak: %d on wire + %d reduced != %d", st.BytesOnWire, st.BytesReduced, 2*raw)
	}
}
