package zipper

import (
	"sync"
	"testing"
	"time"

	"zipper/internal/floatbuf"
)

func TestJobValidation(t *testing.T) {
	if _, err := NewJob(Config{Producers: 0, Consumers: 1, SpoolDir: t.TempDir()}); err == nil {
		t.Error("zero producers accepted")
	}
	if _, err := NewJob(Config{Producers: 1, Consumers: 2, SpoolDir: t.TempDir()}); err == nil {
		t.Error("more consumers than producers accepted")
	}
	if _, err := NewJob(Config{Producers: 1, Consumers: 1}); err == nil {
		t.Error("missing spool dir accepted")
	}
}

func TestJobRoundTrip(t *testing.T) {
	job, err := NewJob(Config{Producers: 3, Consumers: 2, SpoolDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	const steps = 8
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := job.Producer(i)
			for s := 0; s < steps; s++ {
				p.Write(s, int64(s), floatbuf.Encode([]float64{float64(i), float64(s)}))
			}
			p.Close()
		}()
	}
	var mu sync.Mutex
	got := map[BlockID][]float64{}
	var cwg sync.WaitGroup
	for q := 0; q < 2; q++ {
		q := q
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				blk, ok := job.Consumer(q).Read()
				if !ok {
					return
				}
				mu.Lock()
				got[blk.ID] = floatbuf.Decode(blk.Data)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	cwg.Wait()
	job.Wait()
	if len(got) != 3*steps {
		t.Fatalf("got %d blocks, want %d", len(got), 3*steps)
	}
	for id, vals := range got {
		if vals[0] != float64(id.Rank) || vals[1] != float64(id.Step) {
			t.Fatalf("block %+v corrupted: %v", id, vals)
		}
	}
	for q := 0; q < 2; q++ {
		if err := job.Consumer(q).Err(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestJobStealingVisibleInStats(t *testing.T) {
	job, err := NewJob(Config{
		Producers: 1, Consumers: 1, SpoolDir: t.TempDir(),
		BufferBlocks: 4, HighWater: 2, Window: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 30
	go func() {
		p := job.Producer(0)
		for s := 0; s < n; s++ {
			p.Write(s, 0, make([]byte, 2048))
		}
		p.Close()
	}()
	viaDisk := 0
	for {
		blk, ok := job.Consumer(0).Read()
		if !ok {
			break
		}
		if blk.ViaDisk {
			viaDisk++
		}
		time.Sleep(2 * time.Millisecond)
	}
	job.Wait()
	ps := job.Producer(0).Stats()
	cs := job.Consumer(0).Stats()
	if ps.BlocksStolen == 0 {
		t.Fatal("no stealing under slow consumer")
	}
	if int64(viaDisk) != ps.BlocksStolen || cs.BlocksRead != ps.BlocksStolen {
		t.Fatalf("disk-path accounting mismatch: viaDisk=%d stolen=%d read=%d",
			viaDisk, ps.BlocksStolen, cs.BlocksRead)
	}
	if ps.BlocksWritten != n || cs.BlocksAnalyzed != n {
		t.Fatalf("written=%d analyzed=%d want %d", ps.BlocksWritten, cs.BlocksAnalyzed, n)
	}
}

func TestJobBatchingAndPooledPayloads(t *testing.T) {
	// The full public-API loop: pooled payloads written by the producer,
	// batched over the network, verified and released by the consumer. The
	// release/rewrite cycle must never corrupt a block in flight.
	job, err := NewJob(Config{
		Producers: 2, Consumers: 1, SpoolDir: t.TempDir(),
		BufferBlocks: 16, MaxBatchBlocks: 8, Window: 1, DisableSteal: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	const steps = 200
	const blockBytes = 1024
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := job.Producer(i)
			for s := 0; s < steps; s++ {
				data := NewPayload(blockBytes)
				for j := range data {
					data[j] = byte(i ^ s)
				}
				p.Write(s, 0, data)
			}
			p.Close()
		}()
	}
	n := 0
	for {
		blk, ok := job.Consumer(0).Read()
		if !ok {
			break
		}
		want := byte(blk.ID.Rank ^ blk.ID.Step)
		for _, v := range blk.Data {
			if v != want {
				t.Fatalf("block %+v corrupted: %d != %d", blk.ID, v, want)
			}
		}
		blk.Release()
		n++
	}
	wg.Wait()
	job.Wait()
	if n != 2*steps {
		t.Fatalf("analyzed %d blocks, want %d", n, 2*steps)
	}
	ps := job.Producer(0).Stats()
	if ps.Messages == 0 || ps.Messages > ps.BlocksSent+1 {
		t.Fatalf("message accounting off: %d messages for %d sent blocks", ps.Messages, ps.BlocksSent)
	}
}

func TestJobPreserve(t *testing.T) {
	dir := t.TempDir()
	job, err := NewJob(Config{Producers: 1, Consumers: 1, SpoolDir: dir, Preserve: true})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		p := job.Producer(0)
		for s := 0; s < 5; s++ {
			p.Write(s, 0, []byte{byte(s)})
		}
		p.Close()
	}()
	for {
		if _, ok := job.Consumer(0).Read(); !ok {
			break
		}
	}
	job.Wait()
	cs := job.Consumer(0).Stats()
	ps := job.Producer(0).Stats()
	if cs.BlocksStored+ps.BlocksStolen != 5 {
		t.Fatalf("preserve mode persisted %d+%d blocks, want 5", cs.BlocksStored, ps.BlocksStolen)
	}
}
