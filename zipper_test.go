package zipper

import (
	"sync"
	"testing"
	"time"

	"zipper/internal/floatbuf"
)

func TestJobValidation(t *testing.T) {
	dir := t.TempDir()
	base := Config{Producers: 1, Consumers: 1, SpoolDir: dir}
	bad := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero producers", func(c *Config) { c.Producers = 0 }},
		{"more consumers than producers", func(c *Config) { c.Consumers = 2 }},
		{"missing spool dir", func(c *Config) { c.SpoolDir = "" }},
		{"negative BufferBlocks", func(c *Config) { c.BufferBlocks = -1 }},
		{"negative HighWater", func(c *Config) { c.HighWater = -4 }},
		{"HighWater above BufferBlocks", func(c *Config) { c.BufferBlocks = 8; c.HighWater = 9 }},
		{"negative ConsumerBufferBlocks", func(c *Config) { c.ConsumerBufferBlocks = -1 }},
		{"negative MaxBatchBlocks", func(c *Config) { c.MaxBatchBlocks = -2 }},
		{"negative MaxBatchBytes", func(c *Config) { c.MaxBatchBytes = -1 }},
		{"negative Window", func(c *Config) { c.Window = -1 }},
		{"negative Stagers", func(c *Config) { c.Stagers = -1 }},
		{"negative StagerBufferBlocks", func(c *Config) { c.StagerBufferBlocks = -1 }},
		{"RoutePolicy out of range", func(c *Config) { c.RoutePolicy = RoutePolicy(7) }},
		{"staging policy without stagers", func(c *Config) { c.RoutePolicy = RouteHybrid }},
	}
	for _, tc := range bad {
		cfg := base
		tc.mut(&cfg)
		if _, err := NewJob(cfg); err == nil {
			t.Errorf("%s accepted", tc.name)
		} else if err.Error() == "" {
			t.Errorf("%s: empty error message", tc.name)
		}
	}
	// The boundary cases that must stay legal.
	ok := []func(*Config){
		func(c *Config) { c.BufferBlocks = 8; c.HighWater = 8 }, // clamped, not rejected
		func(c *Config) { c.Stagers = 2; c.RoutePolicy = RouteHybrid },
	}
	for i, mut := range ok {
		cfg := base
		mut(&cfg)
		job, err := NewJob(cfg)
		if err != nil {
			t.Errorf("legal config %d rejected: %v", i, err)
			continue
		}
		job.Producer(0).Close()
		for {
			if _, open := job.Consumer(0).Read(); !open {
				break
			}
		}
		job.Wait()
	}
}

func TestJobRoundTrip(t *testing.T) {
	job, err := NewJob(Config{Producers: 3, Consumers: 2, SpoolDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	const steps = 8
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := job.Producer(i)
			for s := 0; s < steps; s++ {
				p.Write(s, int64(s), floatbuf.Encode([]float64{float64(i), float64(s)}))
			}
			p.Close()
		}()
	}
	var mu sync.Mutex
	got := map[BlockID][]float64{}
	var cwg sync.WaitGroup
	for q := 0; q < 2; q++ {
		q := q
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				blk, ok := job.Consumer(q).Read()
				if !ok {
					return
				}
				mu.Lock()
				got[blk.ID] = floatbuf.Decode(blk.Data)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	cwg.Wait()
	job.Wait()
	if len(got) != 3*steps {
		t.Fatalf("got %d blocks, want %d", len(got), 3*steps)
	}
	for id, vals := range got {
		if vals[0] != float64(id.Rank) || vals[1] != float64(id.Step) {
			t.Fatalf("block %+v corrupted: %v", id, vals)
		}
	}
	for q := 0; q < 2; q++ {
		if err := job.Consumer(q).Err(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestJobStealingVisibleInStats(t *testing.T) {
	job, err := NewJob(Config{
		Producers: 1, Consumers: 1, SpoolDir: t.TempDir(),
		BufferBlocks: 4, HighWater: 2, Window: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 30
	go func() {
		p := job.Producer(0)
		for s := 0; s < n; s++ {
			p.Write(s, 0, make([]byte, 2048))
		}
		p.Close()
	}()
	viaDisk := 0
	for {
		blk, ok := job.Consumer(0).Read()
		if !ok {
			break
		}
		if blk.ViaDisk {
			viaDisk++
		}
		time.Sleep(2 * time.Millisecond)
	}
	job.Wait()
	ps := job.Producer(0).Stats()
	cs := job.Consumer(0).Stats()
	if ps.BlocksStolen == 0 {
		t.Fatal("no stealing under slow consumer")
	}
	if int64(viaDisk) != ps.BlocksStolen || cs.BlocksRead != ps.BlocksStolen {
		t.Fatalf("disk-path accounting mismatch: viaDisk=%d stolen=%d read=%d",
			viaDisk, ps.BlocksStolen, cs.BlocksRead)
	}
	if ps.BlocksWritten != n || cs.BlocksAnalyzed != n {
		t.Fatalf("written=%d analyzed=%d want %d", ps.BlocksWritten, cs.BlocksAnalyzed, n)
	}
}

func TestJobBatchingAndPooledPayloads(t *testing.T) {
	// The full public-API loop: pooled payloads written by the producer,
	// batched over the network, verified and released by the consumer. The
	// release/rewrite cycle must never corrupt a block in flight.
	job, err := NewJob(Config{
		Producers: 2, Consumers: 1, SpoolDir: t.TempDir(),
		BufferBlocks: 16, MaxBatchBlocks: 8, Window: 1, DisableSteal: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	const steps = 200
	const blockBytes = 1024
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := job.Producer(i)
			for s := 0; s < steps; s++ {
				data := NewPayload(blockBytes)
				for j := range data {
					data[j] = byte(i ^ s)
				}
				p.Write(s, 0, data)
			}
			p.Close()
		}()
	}
	n := 0
	for {
		blk, ok := job.Consumer(0).Read()
		if !ok {
			break
		}
		want := byte(blk.ID.Rank ^ blk.ID.Step)
		for _, v := range blk.Data {
			if v != want {
				t.Fatalf("block %+v corrupted: %d != %d", blk.ID, v, want)
			}
		}
		blk.Release()
		n++
	}
	wg.Wait()
	job.Wait()
	if n != 2*steps {
		t.Fatalf("analyzed %d blocks, want %d", n, 2*steps)
	}
	ps := job.Producer(0).Stats()
	if ps.Messages == 0 || ps.Messages > ps.BlocksSent+1 {
		t.Fatalf("message accounting off: %d messages for %d sent blocks", ps.Messages, ps.BlocksSent)
	}
}

// TestJobStagingRoundTrip runs the public API through the in-transit tier
// under both staging policies and checks Job.Stats ties the whole pipeline
// together: written = direct + relayed + stolen = analyzed, with relayed
// traffic flowing through the stager counters.
func TestJobStagingRoundTrip(t *testing.T) {
	for _, policy := range []RoutePolicy{RouteStaging, RouteHybrid} {
		job, err := NewJob(Config{
			Producers: 4, Consumers: 2, SpoolDir: t.TempDir(),
			Stagers: 2, StagerBufferBlocks: 16, RoutePolicy: policy,
			BufferBlocks: 8, Window: 1, MaxBatchBlocks: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		const blocks = 150
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				p := job.Producer(i)
				for s := 0; s < blocks; s++ {
					data := NewPayload(256)
					for j := range data {
						data[j] = byte(i ^ s)
					}
					p.Write(s, 0, data)
				}
				p.Close()
			}()
		}
		var mu sync.Mutex
		n := 0
		var cwg sync.WaitGroup
		for q := 0; q < 2; q++ {
			q := q
			cwg.Add(1)
			go func() {
				defer cwg.Done()
				for {
					blk, ok := job.Consumer(q).Read()
					if !ok {
						return
					}
					want := byte(blk.ID.Rank ^ blk.ID.Step)
					for _, v := range blk.Data {
						if v != want {
							t.Errorf("policy %v: block %+v corrupted", policy, blk.ID)
							break
						}
					}
					blk.Release()
					mu.Lock()
					n++
					mu.Unlock()
					time.Sleep(50 * time.Microsecond) // lag enough to exercise relay + spill
				}
			}()
		}
		wg.Wait()
		cwg.Wait()
		job.Wait()
		if n != 4*blocks {
			t.Fatalf("policy %v: analyzed %d blocks, want %d", policy, n, 4*blocks)
		}
		st := job.Stats()
		if len(st.Producers) != 4 || len(st.Consumers) != 2 || len(st.Stagers) != 2 {
			t.Fatalf("policy %v: Stats shape %d/%d/%d", policy, len(st.Producers), len(st.Consumers), len(st.Stagers))
		}
		if st.BlocksWritten != 4*blocks || st.BlocksAnalyzed != 4*blocks {
			t.Fatalf("policy %v: written=%d analyzed=%d want %d", policy, st.BlocksWritten, st.BlocksAnalyzed, 4*blocks)
		}
		if st.BlocksSent+st.BlocksRelayed+st.BlocksStolen != st.BlocksWritten {
			t.Fatalf("policy %v: channel split %d+%d+%d != %d", policy,
				st.BlocksSent, st.BlocksRelayed, st.BlocksStolen, st.BlocksWritten)
		}
		if policy == RouteStaging {
			if st.BlocksSent != 0 {
				t.Fatalf("in-transit policy sent %d blocks direct", st.BlocksSent)
			}
			if st.BlocksRelayed == 0 {
				t.Fatal("in-transit policy relayed nothing")
			}
		}
		var stagerIn int64
		for _, ss := range st.Stagers {
			stagerIn += ss.BlocksIn
			if ss.BlocksIn != ss.BlocksForwarded {
				t.Fatalf("stager in/out mismatch: %+v", ss)
			}
		}
		if stagerIn != st.BlocksRelayed {
			t.Fatalf("relayed %d but stagers saw %d", st.BlocksRelayed, stagerIn)
		}
	}
}

// TestJobStagingPreserve couples Preserve mode with the staging relay at
// the public-API level: every block must land on the file system whichever
// of the three channels it traveled.
func TestJobStagingPreserve(t *testing.T) {
	job, err := NewJob(Config{
		Producers: 2, Consumers: 1, SpoolDir: t.TempDir(), Preserve: true,
		Stagers: 1, StagerBufferBlocks: 8, RoutePolicy: RouteStaging,
		BufferBlocks: 8, Window: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	const blocks = 40
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := job.Producer(i)
			for s := 0; s < blocks; s++ {
				p.Write(s, 0, []byte{byte(i), byte(s)})
			}
			p.Close()
		}()
	}
	n := 0
	for {
		blk, ok := job.Consumer(0).Read()
		if !ok {
			break
		}
		blk.Release()
		n++
	}
	wg.Wait()
	job.Wait()
	if err := job.Consumer(0).Err(); err != nil {
		t.Fatal(err)
	}
	if n != 2*blocks {
		t.Fatalf("analyzed %d blocks, want %d", n, 2*blocks)
	}
	st := job.Stats()
	cs := st.Consumers[0]
	if cs.BlocksStored+st.BlocksStolen != 2*blocks {
		t.Fatalf("preserve through relay persisted %d+%d blocks, want %d",
			cs.BlocksStored, st.BlocksStolen, 2*blocks)
	}
}

func TestJobPreserve(t *testing.T) {
	dir := t.TempDir()
	job, err := NewJob(Config{Producers: 1, Consumers: 1, SpoolDir: dir, Preserve: true})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		p := job.Producer(0)
		for s := 0; s < 5; s++ {
			p.Write(s, 0, []byte{byte(s)})
		}
		p.Close()
	}()
	for {
		if _, ok := job.Consumer(0).Read(); !ok {
			break
		}
	}
	job.Wait()
	cs := job.Consumer(0).Stats()
	ps := job.Producer(0).Stats()
	if cs.BlocksStored+ps.BlocksStolen != 5 {
		t.Fatalf("preserve mode persisted %d+%d blocks, want 5", cs.BlocksStored, ps.BlocksStolen)
	}
}
