package zipper

import (
	"testing"
	"time"
)

// TestElasticConfigValidation pins the rejection of inconsistent elastic
// bounds before any runtime thread starts.
func TestElasticConfigValidation(t *testing.T) {
	dir := t.TempDir()
	base := Config{
		Producers: 4, Consumers: 1, SpoolDir: dir,
		Stagers: 4, RoutePolicy: RouteHybrid,
		Elastic: ElasticConfig{Enabled: true},
	}
	if _, err := NewJob(base); err != nil {
		t.Fatalf("valid elastic config rejected: %v", err)
	}
	bad := []struct {
		name string
		mut  func(*Config)
	}{
		{"elastic without stagers", func(c *Config) { c.Stagers = 0 }},
		{"elastic with RouteDirect", func(c *Config) { c.RoutePolicy = RouteDirect }},
		{"min above max", func(c *Config) { c.Elastic.MinStagers = 3; c.Elastic.MaxStagers = 2 }},
		{"max above ceiling", func(c *Config) { c.Elastic.MaxStagers = 5 }},
		{"min above ceiling", func(c *Config) { c.Elastic.MinStagers = 5 }},
		{"bounds above producer-clamped ceiling", func(c *Config) {
			c.Producers = 2 // the tier never outnumbers producers: effective ceiling 2
			c.Elastic.MinStagers, c.Elastic.MaxStagers = 4, 4
		}},
		{"negative bounds", func(c *Config) { c.Elastic.MinStagers = -1 }},
		{"occupancy out of range", func(c *Config) { c.Elastic.GrowOccupancy = 1.5 }},
		{"empty hysteresis band", func(c *Config) { c.Elastic.GrowOccupancy = 0.3; c.Elastic.DrainOccupancy = 0.4 }},
		{"negative interval", func(c *Config) { c.Elastic.Interval = -time.Millisecond }},
	}
	for _, tc := range bad {
		cfg := base
		tc.mut(&cfg)
		if _, err := NewJob(cfg); err == nil {
			t.Errorf("%s: invalid config accepted", tc.name)
		}
	}
}

// elasticChurnRun drives a bursty workload through an elastic job whose
// scaler is tuned fast enough that the pool grows during every burst and
// drains during every pause — membership changes happen while producers are
// mid-send, which is exactly what the -race run checks.
func elasticChurnRun(t *testing.T) JobStats {
	t.Helper()
	const (
		producers   = 4
		bursts      = 3
		burstBlocks = 150
		blockBytes  = 8 << 10
		pause       = 100 * time.Millisecond
		analyze     = 50 * time.Microsecond
	)
	job, err := NewJob(Config{
		Producers: producers, Consumers: 1, SpoolDir: t.TempDir(),
		BufferBlocks: 16, Window: 2, MaxBatchBlocks: 4,
		Stagers: 4, StagerBufferBlocks: 32,
		RoutePolicy: RouteStaging, DisableSteal: true,
		Elastic: ElasticConfig{
			Enabled: true, MinStagers: 1, MaxStagers: 4,
			Interval: 500 * time.Microsecond, Cooldown: 2 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		var sink byte
		for {
			blk, ok := job.Consumer(0).Read()
			if !ok {
				_ = sink
				return
			}
			sink ^= blk.Data[0]
			for t0 := time.Now(); time.Since(t0) < analyze; {
			}
			blk.Release()
		}
	}()
	for p := 0; p < producers; p++ {
		go func(p int) {
			prod := job.Producer(p)
			i := 0
			for b := 0; b < bursts; b++ {
				if b > 0 {
					time.Sleep(pause)
				}
				for k := 0; k < burstBlocks; k++ {
					data := NewPayload(blockBytes)
					data[0] = byte(i)
					prod.Write(i, 0, data)
					i++
				}
			}
			prod.Close()
		}(p)
	}
	<-done
	job.Wait()
	return job.Stats()
}

// TestElasticJobMembershipChurn is the real-platform stress of the elastic
// tier: pool membership changes while producers are mid-send must lose no
// block, every relayed block must reach the consumer through whatever
// stager held it, and the retired instances must stay visible in the stats.
func TestElasticJobMembershipChurn(t *testing.T) {
	st := elasticChurnRun(t)
	const total = 4 * 3 * 150
	if st.BlocksAnalyzed != total {
		t.Fatalf("analyzed %d of %d blocks", st.BlocksAnalyzed, total)
	}
	if st.BlocksRelayed != total || st.BlocksSent != 0 {
		t.Fatalf("RouteStaging split wrong: relayed=%d sent=%d want %d/0",
			st.BlocksRelayed, st.BlocksSent, total)
	}
	var in, fwd int64
	for i, sg := range st.Stagers {
		in += sg.BlocksIn
		fwd += sg.BlocksForwarded
		if !sg.Drained {
			t.Errorf("stager instance %d not marked Drained after Wait", i)
		}
	}
	if in != total || fwd != total {
		t.Fatalf("staging tier conservation broken: in=%d forwarded=%d want %d", in, fwd, total)
	}
	var grows, drains int
	for _, ev := range st.ScaleEvents {
		switch ev.Action {
		case "grow":
			grows++
		case "drain":
			drains++
		default:
			t.Fatalf("unknown scale action %q", ev.Action)
		}
		if ev.PoolSize < 1 || ev.PoolSize > 4 {
			t.Fatalf("pool size %d escaped [1,4]", ev.PoolSize)
		}
	}
	if grows == 0 {
		t.Error("the scaler never grew the pool under a saturating burst")
	}
	if drains == 0 {
		t.Error("the scaler never drained the pool during a pause")
	}
	if st.StagerNodeSeconds <= 0 {
		t.Errorf("StagerNodeSeconds = %v, want > 0", st.StagerNodeSeconds)
	}
}

// TestElasticStagerStatsSpillVolume checks the new spill-volume counter: a
// deliberately tiny stager buffer under a pure-relay burst must overflow,
// and the spilled bytes must be the spilled block count times the block
// size.
func TestElasticStagerStatsSpillVolume(t *testing.T) {
	st := elasticChurnRun(t)
	var spills, bytes int64
	for _, sg := range st.Stagers {
		spills += sg.BlocksSpilled
		bytes += sg.SpilledBytes
	}
	if spills == 0 {
		t.Skip("no spills this run (scheduler kept the tier ahead); volume check not exercised")
	}
	if bytes != spills*(8<<10) {
		t.Fatalf("SpilledBytes = %d for %d spilled 8KiB blocks, want %d", bytes, spills, spills*(8<<10))
	}
}
