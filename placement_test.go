package zipper

import (
	"sync"
	"testing"
	"time"
)

func TestPlacementValidation(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Producers: 2, Consumers: 1, SpoolDir: dir, Placement: Placement(42)}
	if _, err := NewJob(cfg); err == nil {
		t.Fatal("out-of-range Placement accepted")
	}
	for _, p := range []Placement{RankAffine, LeastOccupancy, HashRing} {
		cfg.Placement = p
		job, err := NewJob(cfg)
		if err != nil {
			t.Fatalf("placement %v rejected: %v", p, err)
		}
		job.Producer(0).Close()
		job.Producer(1).Close()
		for {
			if _, ok := job.Consumer(0).Read(); !ok {
				break
			}
		}
		job.Wait()
	}
	if RankAffine.String() != "rank-affine" || LeastOccupancy.String() != "least-occupancy" ||
		HashRing.String() != "hash-ring" {
		t.Fatalf("placement names drifted: %v %v %v", RankAffine, LeastOccupancy, HashRing)
	}
}

// drainConsumers reads every consumer to completion, sleeping `analyze` per
// block (a yielding sleep, not a busy-wait, so producers keep the runtime
// saturated even on a single-core box), returning the per-consumer analyzed
// counts.
func drainConsumers(t *testing.T, job *Job, consumers int, analyze time.Duration) []int64 {
	t.Helper()
	counts := make([]int64, consumers)
	var wg sync.WaitGroup
	for q := 0; q < consumers; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			for {
				blk, ok := job.Consumer(q).Read()
				if !ok {
					return
				}
				counts[q]++
				blk.Release()
				if analyze > 0 {
					time.Sleep(analyze)
				}
			}
		}(q)
	}
	wg.Wait()
	return counts
}

// TestPlacementLeastOccupancyRoundTrip runs the load-aware consumer
// directory on the real platform without a staging tier: counted
// termination (per-destination Fin totals) must deliver every block even
// though the destination is re-resolved per batch, and the skewed producer's
// output must reach both analysis endpoints.
func TestPlacementLeastOccupancyRoundTrip(t *testing.T) {
	const (
		fastBlocks = 600
		slowBlocks = 60
		blockBytes = 4 << 10
	)
	job, err := NewJob(Config{
		Producers: 2, Consumers: 2, SpoolDir: t.TempDir(),
		BufferBlocks: 8, Window: 1, MaxBatchBlocks: 4,
		Placement: LeastOccupancy, DisableSteal: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for p, blocks := range []int{fastBlocks, slowBlocks} {
		go func(p, blocks int) {
			prod := job.Producer(p)
			for i := 0; i < blocks; i++ {
				data := NewPayload(blockBytes)
				data[0], data[blockBytes-1] = byte(i), byte(i>>8)
				prod.Write(i, 0, data)
				if p == 1 {
					time.Sleep(100 * time.Microsecond) // the slow producer
				}
			}
			prod.Close()
		}(p, blocks)
	}
	counts := drainConsumers(t, job, 2, 0)
	job.Wait()
	if got := counts[0] + counts[1]; got != fastBlocks+slowBlocks {
		t.Fatalf("analyzed %d blocks, want %d", got, fastBlocks+slowBlocks)
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("least-occupancy starved an analysis endpoint: %v", counts)
	}
	st := job.Stats()
	if st.BlocksAnalyzed != int64(fastBlocks+slowBlocks) {
		t.Fatalf("stats analyzed %d, want %d", st.BlocksAnalyzed, fastBlocks+slowBlocks)
	}
}

// TestPlacementHashRingElasticChurn is the realenv churn test: consistent
// hashing over an elastic pool that grows and drains mid-run. Bursty
// producers force membership epochs to turn over while every batch
// re-resolves its stager and its consumer; counted termination must land
// every block regardless of which epoch relayed it. Run under -race in CI.
func TestPlacementHashRingElasticChurn(t *testing.T) {
	const (
		producers   = 4
		bursts      = 3
		burstBlocks = 150
		blockBytes  = 8 << 10
	)
	job, err := NewJob(Config{
		Producers: producers, Consumers: 2, SpoolDir: t.TempDir(),
		BufferBlocks: 8, Window: 2, MaxBatchBlocks: 4,
		Stagers: 3, StagerBufferBlocks: 32,
		RoutePolicy: RouteStaging, Placement: HashRing, DisableSteal: true,
		Elastic: ElasticConfig{
			Enabled: true, MinStagers: 1, MaxStagers: 3,
			Interval: time.Millisecond, Cooldown: 3 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < producers; p++ {
		go func(p int) {
			prod := job.Producer(p)
			i := 0
			for b := 0; b < bursts; b++ {
				if b > 0 {
					time.Sleep(25 * time.Millisecond) // calm between bursts: the pool drains
				}
				for k := 0; k < burstBlocks; k++ {
					data := NewPayload(blockBytes)
					data[0], data[blockBytes-1] = byte(i), byte(i>>8)
					prod.Write(i, 0, data)
					i++
				}
			}
			prod.Close()
		}(p)
	}
	// A 200µs yielding analyze per block keeps the consumers well behind
	// the memory-speed bursts: the tier backlogs (occupancy + spills), the
	// scaler grows, and the calm between bursts lets it drain again.
	counts := drainConsumers(t, job, 2, 200*time.Microsecond)
	job.Wait()

	total := int64(producers) * bursts * burstBlocks
	if got := counts[0] + counts[1]; got != total {
		t.Fatalf("analyzed %d blocks across churn, want %d", got, total)
	}
	st := job.Stats()
	if st.BlocksRelayed != total {
		t.Fatalf("RouteStaging relayed %d of %d blocks", st.BlocksRelayed, total)
	}
	grows := 0
	for _, ev := range st.ScaleEvents {
		if ev.Action == "grow" {
			grows++
		}
	}
	if grows == 0 {
		t.Fatal("the bursts never grew the pool — no membership churn was exercised")
	}
	if st.RelayImbalance <= 0 {
		t.Fatalf("RelayImbalance = %v, want > 0 with relay traffic", st.RelayImbalance)
	}
}
