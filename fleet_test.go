package zipper

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestFleetValidation(t *testing.T) {
	dir := t.TempDir()
	bad := []struct {
		name string
		cfg  FleetConfig
		want string
	}{
		{"no stagers", FleetConfig{SpoolDir: dir}, "Stagers"},
		{"no spool", FleetConfig{Stagers: 1}, "SpoolDir"},
		{"negative buffer", FleetConfig{Stagers: 1, SpoolDir: dir, StagerBufferBlocks: -1}, "StagerBufferBlocks"},
		{"negative reservation", FleetConfig{Stagers: 1, SpoolDir: dir, MaxJobs: -1}, "MaxJobs"},
	}
	for _, tc := range bad {
		_, err := NewFleet(tc.cfg)
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Fatalf("%s: got %v, want *ConfigError", tc.name, err)
		}
		if ce.Field != tc.want {
			t.Fatalf("%s: rejected field %q, want %q", tc.name, ce.Field, tc.want)
		}
	}
}

func TestFleetSubmitRejections(t *testing.T) {
	fleet, err := NewFleet(FleetConfig{Stagers: 2, StagerBufferBlocks: 8, SpoolDir: t.TempDir(),
		MaxJobs: 2, MaxConsumers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	base := Config{Producers: 1, Consumers: 1, RoutePolicy: RouteStaging}
	bad := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"private tier", func(c *Config) { c.Stagers = 3 }, "Staging.Stagers"},
		{"placement", func(c *Config) { c.Placement = LeastOccupancy }, "Staging.Placement"},
		{"elastic", func(c *Config) { c.Elastic = ElasticConfig{Enabled: true} }, "Staging.Elastic"},
		{"fault", func(c *Config) { c.Fault = FaultConfig{Enabled: true} }, "Fault"},
		{"reduce", func(c *Config) { c.Staging.Reduce = ReduceConfig{Operator: ReduceCompress} }, "Staging.Reduce"},
		{"tcp", func(c *Config) { c.TCPAddr = "127.0.0.1:0" }, "TCPAddr"},
		{"core validation", func(c *Config) { c.Producers = 0 }, "Producers"},
		{"over-subscribed quota", func(c *Config) { c.Quota.BufferBlocks = 17 }, "Quota.BufferBlocks"},
		{"bad share", func(c *Config) { c.Quota.Share = -1 }, "Quota.Share"},
		{"bad priority", func(c *Config) { c.Quota.Priority = Priority(9) }, "Quota.Priority"},
	}
	for _, tc := range bad {
		cfg := base
		tc.mut(&cfg)
		_, err := fleet.Submit(cfg)
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Fatalf("%s: got %v, want *ConfigError", tc.name, err)
		}
		if ce.Field != tc.want {
			t.Fatalf("%s: rejected field %q, want %q", tc.name, ce.Field, tc.want)
		}
	}
	// The consumer reservation runs dry before MaxJobs does here.
	if _, err := fleet.Submit(Config{Producers: 3, Consumers: 3, RoutePolicy: RouteStaging}); err == nil {
		t.Fatal("Submit beyond MaxConsumers succeeded")
	} else if !strings.Contains(err.Error(), "Consumers") {
		t.Fatalf("reservation rejection = %v", err)
	}
}

func TestFleetMaxJobsLifetimeCap(t *testing.T) {
	fleet, err := NewFleet(FleetConfig{Stagers: 1, StagerBufferBlocks: 8, SpoolDir: t.TempDir(),
		MaxJobs: 1, MaxConsumers: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	j, err := fleet.Submit(Config{Producers: 1, Consumers: 1, RoutePolicy: RouteStaging})
	if err != nil {
		t.Fatal(err)
	}
	j.Producer(0).Close()
	for {
		if _, ok := j.Consumer(0).Read(); !ok {
			break
		}
	}
	j.Wait()
	// Tenant ids index pre-sized stager state and are never reused: the cap
	// is a lifetime admission ceiling, not a concurrency limit.
	if _, err := fleet.Submit(Config{Producers: 1, Consumers: 1, RoutePolicy: RouteStaging}); err == nil {
		t.Fatal("Submit beyond MaxJobs succeeded")
	}
}

// runFleetWorkload drives one job's producers and consumers to completion
// and returns the analyzed-block count.
func runFleetWorkload(t *testing.T, j *Job, producers, consumers, blocks, payload int) int {
	t.Helper()
	var wg sync.WaitGroup
	for i := 0; i < producers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := j.Producer(i)
			for s := 0; s < blocks; s++ {
				data := NewPayload(payload)
				for k := range data {
					data[k] = byte(i ^ s)
				}
				p.Write(s, 0, data)
			}
			p.Close()
		}()
	}
	var mu sync.Mutex
	n := 0
	var cwg sync.WaitGroup
	for q := 0; q < consumers; q++ {
		q := q
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				blk, ok := j.Consumer(q).Read()
				if !ok {
					return
				}
				want := byte((blk.ID.Rank % producers) ^ blk.ID.Step)
				for _, v := range blk.Data {
					if v != want {
						t.Errorf("block %+v corrupted", blk.ID)
						break
					}
				}
				blk.Release()
				mu.Lock()
				n++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	cwg.Wait()
	j.Wait()
	return n
}

// TestFleetOfOneMatchesNewJob pins the single-job equivalence the control
// plane must preserve: a Fleet of one job with no quotas makes the same
// channel decisions as a plain NewJob over an identical private tier. With
// one tenant the fair share is the whole fleet and the tenant quota equals
// the full buffer, so no admission or routing decision can differ; the
// count-based invariants below are identical across both runs.
func TestFleetOfOneMatchesNewJob(t *testing.T) {
	const (
		producers = 2
		consumers = 1
		blocks    = 120
		payload   = 128
	)
	cfg := Config{
		Producers: producers, Consumers: consumers,
		RoutePolicy: RouteStaging, DisableSteal: true,
		BufferBlocks: 8, MaxBatchBlocks: 4,
	}

	privCfg := cfg
	privCfg.SpoolDir = t.TempDir()
	privCfg.Stagers = 2
	privCfg.StagerBufferBlocks = 16
	priv, err := NewJob(privCfg)
	if err != nil {
		t.Fatal(err)
	}
	if n := runFleetWorkload(t, priv, producers, consumers, blocks, payload); n != producers*blocks {
		t.Fatalf("private job analyzed %d, want %d", n, producers*blocks)
	}
	ps := priv.Stats()

	fleet, err := NewFleet(FleetConfig{Stagers: 2, StagerBufferBlocks: 16, SpoolDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	job, err := fleet.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n := runFleetWorkload(t, job, producers, consumers, blocks, payload); n != producers*blocks {
		t.Fatalf("fleet job analyzed %d, want %d", n, producers*blocks)
	}
	js := job.Stats()
	fleet.Close()
	fs := fleet.Stats()

	// Count-based equivalence: with stealing disabled and RouteStaging, every
	// block relays — both runs must land on identical channel splits.
	type counts struct{ written, sent, relayed, stolen, analyzed, lost int64 }
	pc := counts{ps.BlocksWritten, ps.BlocksSent, ps.BlocksRelayed, ps.BlocksStolen, ps.BlocksAnalyzed, ps.BlocksLost}
	fc := counts{js.BlocksWritten, js.BlocksSent, js.BlocksRelayed, js.BlocksStolen, js.BlocksAnalyzed, js.BlocksLost}
	want := counts{written: producers * blocks, relayed: producers * blocks, analyzed: producers * blocks}
	if pc != want {
		t.Fatalf("private counts %+v, want %+v", pc, want)
	}
	if fc != pc {
		t.Fatalf("fleet counts %+v, private %+v", fc, pc)
	}
	// The fleet job's Stats carry no stager entries — the shared tier's are
	// in FleetStats and must account for exactly this job's relay traffic.
	if len(js.Stagers) != 0 {
		t.Fatalf("fleet job reported %d private stagers", len(js.Stagers))
	}
	if len(fs.Stagers) != 2 || fs.BlocksRelayed != int64(producers*blocks) {
		t.Fatalf("fleet tier: %d stagers, relayed %d", len(fs.Stagers), fs.BlocksRelayed)
	}
	if fs.JobsAdmitted != 1 || fs.JobsActive != 0 || fs.Preemptions != 0 {
		t.Fatalf("fleet lifecycle: %+v", fs)
	}
	if len(fs.Tenants) != 1 || fs.Tenants[0].BlocksRelayed != int64(producers*blocks) ||
		fs.Tenants[0].Preempted != 0 {
		t.Fatalf("tenant accounting: %+v", fs.Tenants)
	}
}

// TestFleetTwoJobsConcurrent runs two jobs over one shared tier end to end
// on the real environment: both complete with every block intact and the
// per-tenant accounting splits the relay traffic exactly.
func TestFleetTwoJobsConcurrent(t *testing.T) {
	const blocks = 80
	fleet, err := NewFleet(FleetConfig{Stagers: 2, StagerBufferBlocks: 16, SpoolDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Producers: 2, Consumers: 1, RoutePolicy: RouteStaging,
		DisableSteal: true, BufferBlocks: 8, MaxBatchBlocks: 4}
	a, err := fleet.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fleet.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	counts := make([]int, 2)
	for i, j := range []*Job{a, b} {
		i, j := i, j
		wg.Add(1)
		go func() {
			defer wg.Done()
			counts[i] = runFleetWorkload(t, j, 2, 1, blocks, 64)
		}()
	}
	wg.Wait()
	fleet.Close()
	for i, n := range counts {
		if n != 2*blocks {
			t.Fatalf("job %d analyzed %d, want %d", i, n, 2*blocks)
		}
	}
	fs := fleet.Stats()
	if fs.JobsAdmitted != 2 || fs.JobsActive != 0 {
		t.Fatalf("fleet lifecycle: admitted %d active %d", fs.JobsAdmitted, fs.JobsActive)
	}
	if fs.BlocksRelayed != 2*2*blocks {
		t.Fatalf("tier relayed %d, want %d", fs.BlocksRelayed, 2*2*blocks)
	}
	for i, tn := range fs.Tenants {
		if tn.BlocksRelayed != 2*blocks {
			t.Fatalf("tenant %d relayed %d, want %d", i, tn.BlocksRelayed, 2*blocks)
		}
	}
}
