package analysis

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNthMomentUniform(t *testing.T) {
	// E(u^k) for u ~ U(0,1) is 1/(k+1).
	rng := rand.New(rand.NewSource(1))
	m := NewNthMoment(4)
	block := make([]float64, 10000)
	for b := 0; b < 20; b++ {
		for i := range block {
			block[i] = rng.Float64()
		}
		m.Analyze(block)
	}
	for k := 1; k <= 4; k++ {
		want := 1 / float64(k+1)
		if got := m.Moment(k); math.Abs(got-want) > 0.01 {
			t.Fatalf("moment %d = %v, want ≈%v", k, got, want)
		}
	}
	if m.Count() != 200000 {
		t.Fatalf("count = %d", m.Count())
	}
}

func TestNthMomentOrderIndependent(t *testing.T) {
	blocks := [][]float64{{1, 2}, {3, 4, 5}, {6}}
	a, b := NewNthMoment(3), NewNthMoment(3)
	for _, blk := range blocks {
		a.Analyze(blk)
	}
	for i := len(blocks) - 1; i >= 0; i-- {
		b.Analyze(blocks[i])
	}
	for k := 1; k <= 3; k++ {
		if math.Abs(a.Moment(k)-b.Moment(k)) > 1e-12 {
			t.Fatalf("moment %d depends on block order", k)
		}
	}
}

func TestNthMomentPanicsOutOfRange(t *testing.T) {
	m := NewNthMoment(2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range moment did not panic")
		}
	}()
	m.Moment(3)
}

func TestVarianceMatchesDirect(t *testing.T) {
	prop := func(vals []float64) bool {
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				return true // skip pathological inputs
			}
		}
		w := NewVariance()
		w.Analyze(vals)
		if len(vals) == 0 {
			return w.Value() == 0
		}
		var mean float64
		for _, v := range vals {
			mean += v
		}
		mean /= float64(len(vals))
		var direct float64
		for _, v := range vals {
			direct += (v - mean) * (v - mean)
		}
		direct /= float64(len(vals))
		scale := math.Max(1, direct)
		return math.Abs(w.Value()-direct) <= 1e-9*scale
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestVarianceStreamingEqualsBatch(t *testing.T) {
	vals := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	batch := NewVariance()
	batch.Analyze(vals)
	stream := NewVariance()
	for _, v := range vals {
		stream.Analyze([]float64{v})
	}
	if math.Abs(batch.Value()-stream.Value()) > 1e-12 {
		t.Fatalf("streaming %v != batch %v", stream.Value(), batch.Value())
	}
	if math.Abs(batch.StdDev()-math.Sqrt(batch.Value())) > 1e-15 {
		t.Fatal("StdDev inconsistent with Value")
	}
}

func TestMSDZeroWhenStationary(t *testing.T) {
	m := NewMSD()
	pos := []float64{1, 2, 3, 4, 5, 6}
	m.Analyze(0, 0, pos)
	m.Analyze(0, 1, pos)
	if v, ok := m.At(1); !ok || v != 0 {
		t.Fatalf("MSD stationary = %v,%v want 0,true", v, ok)
	}
}

func TestMSDKnownDisplacement(t *testing.T) {
	m := NewMSD()
	m.Analyze(0, 0, []float64{0, 0, 0, 0, 0, 0}) // 2 atoms at origin
	m.Analyze(0, 5, []float64{1, 0, 0, 0, 2, 0}) // displacements 1 and 2
	if v, _ := m.At(5); v != 2.5 {
		t.Fatalf("MSD = %v, want (1+4)/2 = 2.5", v)
	}
}

func TestMSDMultiRankOutOfOrder(t *testing.T) {
	m := NewMSD()
	// rank 1's step-0 block arrives before rank 0's.
	m.Analyze(1, 0, []float64{0, 0, 0})
	m.Analyze(0, 0, []float64{10, 0, 0})
	m.Analyze(0, 2, []float64{13, 4, 0}) // |d|² = 9+16 = 25
	m.Analyze(1, 2, []float64{0, 0, 5})  // |d|² = 25
	if v, _ := m.At(2); v != 25 {
		t.Fatalf("MSD = %v, want 25", v)
	}
	steps := m.Steps()
	if len(steps) != 2 || steps[0] != 0 || steps[1] != 2 {
		t.Fatalf("steps = %v", steps)
	}
	if s := m.Series(); len(s) != 2 || s[0] != 0 || s[1] != 25 {
		t.Fatalf("series = %v", s)
	}
}

func TestMSDGrowsDuringDiffusion(t *testing.T) {
	m := NewMSD()
	rng := rand.New(rand.NewSource(2))
	const atoms = 50
	pos := make([]float64, 3*atoms)
	m.Analyze(0, 0, pos)
	for step := 1; step <= 10; step++ {
		for i := range pos {
			pos[i] += rng.NormFloat64() * 0.1
		}
		m.Analyze(0, step, pos)
	}
	s := m.Series()
	if s[len(s)-1] <= s[1] {
		t.Fatalf("MSD did not grow: %v", s)
	}
}

func TestMSDBuffersBlocksBeforeReference(t *testing.T) {
	m := NewMSD()
	// Step 7 arrives before the rank's reference frame (out-of-order
	// delivery via the file-system path).
	m.Analyze(3, 7, []float64{1, 0, 0})
	if m.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", m.Pending())
	}
	if _, ok := m.At(7); ok {
		t.Fatal("step 7 visible before reference")
	}
	m.Analyze(3, 0, []float64{0, 0, 0})
	if m.Pending() != 0 {
		t.Fatalf("pending = %d after reference, want 0", m.Pending())
	}
	if v, ok := m.At(7); !ok || v != 1 {
		t.Fatalf("MSD(7) = %v,%v want 1,true", v, ok)
	}
}

func TestMSDPanicsOnSizeChange(t *testing.T) {
	m := NewMSD()
	m.Analyze(0, 0, []float64{0, 0, 0})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for size change")
		}
	}()
	m.Analyze(0, 1, []float64{0, 0, 0, 1, 1, 1})
}

func TestMSDMissingStep(t *testing.T) {
	m := NewMSD()
	if _, ok := m.At(9); ok {
		t.Fatal("At on empty accumulator reported ok")
	}
}
