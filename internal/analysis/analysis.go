// Package analysis implements the paper's three data-analysis applications
// as streaming block reducers: the n-th moment turbulence statistics coupled
// with the CFD simulation, mean squared displacement (MSD) coupled with the
// LAMMPS simulation, and the standard-variance reduction coupled with the
// synthetic kernels (Table 3). Each reducer consumes data blocks in any
// arrival order — the property Zipper's out-of-order delivery relies on —
// and produces the final statistic on demand.
package analysis

import (
	"fmt"
	"math"
	"sort"
)

// NthMoment accumulates E(u^k) for k = 1..N over streamed velocity samples,
// the turbulence statistics of §6.3.1. When all moments are available, the
// velocity PDF of the turbulent flow can be characterized.
type NthMoment struct {
	n     int
	sums  []float64
	count int64
}

// NewNthMoment returns an accumulator for moments 1..n.
func NewNthMoment(n int) *NthMoment {
	if n < 1 {
		panic("analysis: moment order must be ≥ 1")
	}
	return &NthMoment{n: n, sums: make([]float64, n)}
}

// Analyze folds one block of velocity samples into the accumulator.
func (m *NthMoment) Analyze(samples []float64) {
	for _, u := range samples {
		p := 1.0
		for k := 0; k < m.n; k++ {
			p *= u
			m.sums[k] += p
		}
	}
	m.count += int64(len(samples))
}

// Count reports how many samples have been folded in.
func (m *NthMoment) Count() int64 { return m.count }

// Moment returns E(u^k) for 1 ≤ k ≤ n; it panics for other k.
func (m *NthMoment) Moment(k int) float64 {
	if k < 1 || k > m.n {
		panic(fmt.Sprintf("analysis: moment %d out of range 1..%d", k, m.n))
	}
	if m.count == 0 {
		return 0
	}
	return m.sums[k-1] / float64(m.count)
}

// Variance is the streaming standard-variance reduction used with the
// synthetic applications: each data block is reduced to one double-precision
// value (§6.1). It uses Welford's algorithm for numerical stability.
type Variance struct {
	n    int64
	mean float64
	m2   float64
}

// NewVariance returns an empty accumulator.
func NewVariance() *Variance { return &Variance{} }

// Analyze folds one block of samples into the accumulator.
func (v *Variance) Analyze(samples []float64) {
	for _, x := range samples {
		v.n++
		d := x - v.mean
		v.mean += d / float64(v.n)
		v.m2 += d * (x - v.mean)
	}
}

// Count reports the number of samples seen.
func (v *Variance) Count() int64 { return v.n }

// Mean returns the running mean.
func (v *Variance) Mean() float64 { return v.mean }

// Value returns the population variance.
func (v *Variance) Value() float64 {
	if v.n == 0 {
		return 0
	}
	return v.m2 / float64(v.n)
}

// StdDev returns the population standard deviation.
func (v *Variance) StdDev() float64 { return math.Sqrt(v.Value()) }

// MSD accumulates the mean squared displacement of particles relative to
// their reference (step-0) positions, per time step — the deviation
// statistic coupled with the LAMMPS melt (§6.3.2). Blocks may arrive out of
// order across steps and ranks — the delivery order Zipper produces — so
// blocks that precede their rank's reference frame are buffered and folded
// in once it arrives.
type MSD struct {
	refs    map[int][]float64    // rank -> reference positions (3N)
	sums    map[int]float64      // step -> Σ |r-r0|²
	count   map[int]int64        // step -> atom count
	pending map[int][]msdPending // rank -> blocks awaiting a reference
}

type msdPending struct {
	step int
	pos  []float64
}

// NewMSD returns an empty accumulator.
func NewMSD() *MSD {
	return &MSD{
		refs:    map[int][]float64{},
		sums:    map[int]float64{},
		count:   map[int]int64{},
		pending: map[int][]msdPending{},
	}
}

// SetReference registers rank's reference positions (3N packed xyz) and
// folds in any blocks that arrived early. Analyze auto-registers the first
// step-0 block a rank delivers; use SetReference when step 0 is not
// transported.
func (m *MSD) SetReference(rank int, pos []float64) {
	ref := make([]float64, len(pos))
	copy(ref, pos)
	m.refs[rank] = ref
	queued := m.pending[rank]
	delete(m.pending, rank)
	for _, q := range queued {
		m.fold(rank, q.step, q.pos)
	}
}

// Pending reports how many blocks are still waiting for their rank's
// reference frame; nonzero after the stream ends indicates a producer never
// sent step 0.
func (m *MSD) Pending() int {
	n := 0
	for _, q := range m.pending {
		n += len(q)
	}
	return n
}

// Analyze folds one block: positions (3N packed) of rank's atoms at a step.
// Blocks arriving before their rank's step-0 reference are buffered. It
// panics if the position count changes mid-stream — a workflow wiring bug.
func (m *MSD) Analyze(rank, step int, pos []float64) {
	if len(pos)%3 != 0 {
		panic("analysis: MSD positions not a multiple of 3")
	}
	if _, ok := m.refs[rank]; !ok {
		if step != 0 {
			cp := make([]float64, len(pos))
			copy(cp, pos)
			m.pending[rank] = append(m.pending[rank], msdPending{step: step, pos: cp})
			return
		}
		m.SetReference(rank, pos)
		// The reference frame itself has zero displacement; fall through so
		// step 0 contributes to the series.
	}
	m.fold(rank, step, pos)
}

func (m *MSD) fold(rank, step int, pos []float64) {
	ref := m.refs[rank]
	if len(ref) != len(pos) {
		panic(fmt.Sprintf("analysis: MSD rank %d position count changed %d -> %d", rank, len(ref), len(pos)))
	}
	var s float64
	for i := range pos {
		d := pos[i] - ref[i]
		s += d * d
	}
	m.sums[step] += s
	m.count[step] += int64(len(pos) / 3)
}

// At returns the MSD at a step; ok reports whether any data arrived for it.
func (m *MSD) At(step int) (msd float64, ok bool) {
	c := m.count[step]
	if c == 0 {
		return 0, false
	}
	return m.sums[step] / float64(c), true
}

// Steps returns the steps with data, ascending.
func (m *MSD) Steps() []int {
	out := make([]int, 0, len(m.sums))
	for s := range m.sums {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// Series returns the MSD for every step with data, ascending by step.
func (m *MSD) Series() []float64 {
	steps := m.Steps()
	out := make([]float64, len(steps))
	for i, s := range steps {
		out[i], _ = m.At(s)
	}
	return out
}
