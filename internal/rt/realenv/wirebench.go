package realenv

import (
	"net"
	"runtime"
	"time"

	"zipper/internal/block"
	"zipper/internal/rt"
)

// sinkConn swallows writes, so a frame-writer measurement isolates framing
// work (header assembly plus either the bufio copy or the vectored writev)
// from any peer or kernel cost.
type sinkConn struct{ n int64 }

func (c *sinkConn) Write(p []byte) (int, error)      { c.n += int64(len(p)); return len(p), nil }
func (c *sinkConn) Read(p []byte) (int, error)       { return 0, net.ErrClosed }
func (c *sinkConn) Close() error                     { return nil }
func (c *sinkConn) LocalAddr() net.Addr              { return nil }
func (c *sinkConn) RemoteAddr() net.Addr             { return nil }
func (c *sinkConn) SetDeadline(time.Time) error      { return nil }
func (c *sinkConn) SetReadDeadline(time.Time) error  { return nil }
func (c *sinkConn) SetWriteDeadline(time.Time) error { return nil }

// WireBenchResult is one frame-writer measurement over the discard sink.
type WireBenchResult struct {
	NsPerFrame     float64 // wall time per Send
	NsPerBlock     float64 // wall time per block within the frame
	AllocsPerFrame float64 // heap objects per Send at steady state
	BytesPerFrame  int64   // bytes the writer handed the connection per Send
}

// BenchWriteFrame measures the frame-v5 send path: `frames` Sends of a
// message carrying `blocks` payloads of blockBytes each into a discard
// sink. vectoredMin is handed to SetVectoredMin — pass a negative value to
// force the buffered-copy path (the pre-v5 behavior) and 0 for the default
// vectored threshold, so callers can put the two paths side by side. It
// backs cmd/benchwire; the committed BENCH_wire.json gates on its numbers.
func BenchWriteFrame(frames, blocks, blockBytes, vectoredMin int) WireBenchResult {
	sink := &sinkConn{}
	tr := newTCPTransport(sink)
	tr.SetVectoredMin(vectoredMin)
	c := New().Ctx()

	m := rt.Message{From: 1, Dest: 2}
	for i := 0; i < blocks; i++ {
		data := make([]byte, blockBytes)
		for j := range data {
			data[j] = byte(i + j)
		}
		m.Blocks = append(m.Blocks, block.New(block.ID{Rank: 1, Step: 1, Seq: i}, int64(i*blockBytes), data))
	}

	tr.Send(c, 0, m) // warm the header and iovec scratch
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	sink.n = 0
	start := time.Now()
	for i := 0; i < frames; i++ {
		tr.Send(c, 0, m)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	res := WireBenchResult{
		NsPerFrame:     float64(elapsed.Nanoseconds()) / float64(frames),
		NsPerBlock:     float64(elapsed.Nanoseconds()) / float64(frames*blocks),
		AllocsPerFrame: float64(after.Mallocs-before.Mallocs) / float64(frames),
		BytesPerFrame:  sink.n / int64(frames),
	}
	return res
}
