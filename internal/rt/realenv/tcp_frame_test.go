package realenv

import (
	"bytes"
	"fmt"
	"net"
	"testing"
	"time"

	"zipper/internal/block"
	"zipper/internal/rt"
)

// memConn is a net.Conn that captures writes in memory, so frame tests can
// exercise both TCPTransport write paths (buffered copy and vectored)
// without a socket.
type memConn struct{ buf bytes.Buffer }

func (c *memConn) Write(p []byte) (int, error)      { return c.buf.Write(p) }
func (c *memConn) Read(p []byte) (int, error)       { return c.buf.Read(p) }
func (c *memConn) Close() error                     { return nil }
func (c *memConn) LocalAddr() net.Addr              { return nil }
func (c *memConn) RemoteAddr() net.Addr             { return nil }
func (c *memConn) SetDeadline(time.Time) error      { return nil }
func (c *memConn) SetReadDeadline(time.Time) error  { return nil }
func (c *memConn) SetWriteDeadline(time.Time) error { return nil }

// discardConn swallows writes: the deterministic sink for the send-path
// benchmarks, so ns/frame measures framing work, not a peer.
type discardConn struct{ n int64 }

func (c *discardConn) Write(p []byte) (int, error)      { c.n += int64(len(p)); return len(p), nil }
func (c *discardConn) Read(p []byte) (int, error)       { return 0, fmt.Errorf("discard") }
func (c *discardConn) Close() error                     { return nil }
func (c *discardConn) LocalAddr() net.Addr              { return nil }
func (c *discardConn) RemoteAddr() net.Addr             { return nil }
func (c *discardConn) SetDeadline(time.Time) error      { return nil }
func (c *discardConn) SetReadDeadline(time.Time) error  { return nil }
func (c *discardConn) SetWriteDeadline(time.Time) error { return nil }

// frameMessages enumerates every flag/field combination of the v5 frame:
// Fin/Retire flags, declared totals, lost counts, disk refs, block batches
// with every descriptor field exercised (offsets, raw sizes, OnDisk,
// reduction encodings, zero-length payloads).
func frameMessages() []rt.Message {
	mkBlk := func(rank, step, seq int, offset int64, data []byte, onDisk bool, enc uint8, raw int64) *block.Block {
		b := &block.Block{
			ID:     block.ID{Rank: rank, Step: step, Seq: seq},
			Offset: offset, Data: data, OnDisk: onDisk, Enc: enc,
		}
		if data != nil {
			b.Bytes = int64(len(data))
		}
		if enc != 0 {
			b.Bytes = raw
			b.EncBytes = int64(len(data))
		}
		return b
	}
	var ms []rt.Message
	for _, fin := range []bool{false, true} {
		for _, retire := range []bool{false, true} {
			for _, blocks := range [][]*block.Block{
				nil,
				{mkBlk(1, 2, 3, 64, []byte{9, 8, 7}, false, 0, 0)},
				{
					mkBlk(0, 0, 0, 0, nil, false, 0, 0), // zero-length payload
					mkBlk(7, 8, 9, 1024, bytes.Repeat([]byte{0xab}, 600), true, 0, 0),
					mkBlk(7, 8, 10, 2048, []byte{1, 2, 3, 4}, false, 1, 4096), // encoded
				},
			} {
				for _, disk := range [][]rt.DiskRef{
					nil,
					{{ID: block.ID{Rank: 5, Step: 6, Seq: 7}, Bytes: 512}, {ID: block.ID{Rank: 5, Step: 6, Seq: 8}, Bytes: 1 << 20}},
				} {
					m := rt.Message{
						From: 3, Dest: 11, Fin: fin, Retire: retire,
						Blocks: blocks, Disk: disk,
					}
					if fin {
						m.FinBlocks, m.FinDisk, m.Lost = 12345, 67, 2
					}
					ms = append(ms, m)
				}
			}
		}
	}
	return ms
}

// TestFrameV5RoundTrip proves encode→decode is the identity for every
// flag/field combination, on both the buffered-copy and vectored write
// paths.
func TestFrameV5RoundTrip(t *testing.T) {
	for _, vectoredMin := range []int{-1, 1} {
		conn := &memConn{}
		tr := newTCPTransport(conn)
		tr.SetVectoredMin(vectoredMin)
		c := New().Ctx()
		msgs := frameMessages()
		for i, m := range msgs {
			tr.Send(c, i%7, m)
		}
		for i, want := range msgs {
			to, got, err := readFrame(&conn.buf)
			if err != nil {
				t.Fatalf("vectoredMin=%d frame %d: %v", vectoredMin, i, err)
			}
			if to != i%7 {
				t.Fatalf("frame %d: to=%d want %d", i, to, i%7)
			}
			checkMessage(t, i, want, got)
		}
	}
}

func checkMessage(t *testing.T, i int, want, got rt.Message) {
	t.Helper()
	if got.From != want.From || got.Dest != want.Dest ||
		got.Fin != want.Fin || got.Retire != want.Retire ||
		got.FinBlocks != want.FinBlocks || got.FinDisk != want.FinDisk ||
		got.Lost != want.Lost {
		t.Fatalf("frame %d header mismatch:\nwant %+v\ngot  %+v", i, want, got)
	}
	if len(got.Disk) != len(want.Disk) {
		t.Fatalf("frame %d: %d disk refs, want %d", i, len(got.Disk), len(want.Disk))
	}
	for j := range want.Disk {
		if got.Disk[j] != want.Disk[j] {
			t.Fatalf("frame %d disk %d: %+v want %+v", i, j, got.Disk[j], want.Disk[j])
		}
	}
	if len(got.Blocks) != len(want.Blocks) {
		t.Fatalf("frame %d: %d blocks, want %d", i, len(got.Blocks), len(want.Blocks))
	}
	for j, wb := range want.Blocks {
		gb := got.Blocks[j]
		if gb.ID != wb.ID || gb.Offset != wb.Offset || gb.Bytes != wb.Bytes ||
			gb.OnDisk != wb.OnDisk || gb.Enc != wb.Enc {
			t.Fatalf("frame %d block %d descriptor: %+v want %+v", i, j, gb, wb)
		}
		if wb.Enc != 0 && gb.EncBytes != int64(len(wb.Data)) {
			t.Fatalf("frame %d block %d: EncBytes=%d want %d", i, j, gb.EncBytes, len(wb.Data))
		}
		if !bytes.Equal(gb.Data, wb.Data) {
			t.Fatalf("frame %d block %d payload mismatch (%d vs %d bytes)", i, j, len(gb.Data), len(wb.Data))
		}
	}
}

func benchMessage(blocks, blockBytes int) rt.Message {
	m := rt.Message{From: 1, Dest: 2}
	for i := 0; i < blocks; i++ {
		data := make([]byte, blockBytes)
		for j := range data {
			data[j] = byte(i + j)
		}
		m.Blocks = append(m.Blocks, block.New(block.ID{Rank: 1, Step: 1, Seq: i}, int64(i*blockBytes), data))
	}
	return m
}

// TestWriteFrameAllocs pins the steady-state allocation budget of the send
// path: after warm-up, a vectored Send must not allocate more than one
// object per frame (target: zero — header scratch and iovec backing are
// both reused).
func TestWriteFrameAllocs(t *testing.T) {
	tr := newTCPTransport(&discardConn{})
	c := New().Ctx()
	m := benchMessage(16, 64<<10)
	tr.Send(c, 0, m) // warm up the scratch buffers
	avg := testing.AllocsPerRun(100, func() { tr.Send(c, 0, m) })
	if avg > 1 {
		t.Fatalf("vectored Send allocates %.1f objects/frame, want ≤1", avg)
	}
}

// BenchmarkWriteFrame measures the two send paths over a discard sink so
// the numbers isolate framing cost: header assembly plus either the bufio
// memcpy (copy) or iovec assembly (vectored). The committed BENCH_wire.json
// gates the vectored path at ≥20% lower ns/block on this workload.
func BenchmarkWriteFrame(b *testing.B) {
	for _, bench := range []struct {
		name        string
		vectoredMin int
	}{
		{"copy", -1},
		{"vectored", 1},
	} {
		b.Run(bench.name, func(b *testing.B) {
			tr := newTCPTransport(&discardConn{})
			tr.SetVectoredMin(bench.vectoredMin)
			c := New().Ctx()
			m := benchMessage(16, 256<<10)
			b.SetBytes(m.PayloadBytes())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.Send(c, 0, m)
			}
		})
	}
}
