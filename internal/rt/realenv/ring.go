package realenv

import (
	"sync"
	"sync/atomic"

	"zipper/internal/rt"
)

// Intra-node fast path: a lock-free single-producer single-consumer ring of
// rt.Message. Co-located endpoint pairs (producer sender → stager receiver,
// stager forwarder → consumer receiver, and every in-process hop when the
// whole job shares an address space) exchange messages through node-local
// memory without a channel lock or a scheduler round-trip per message —
// the DIMES-style shared-memory transport the paper's co-located ranks use.
//
// Hot-path discipline:
//
//   - The producer owns tail, the consumer owns head. Each side keeps a
//     cached snapshot of the other's cursor and re-loads it only on
//     apparent-full / apparent-empty, so a steady-state push or pop touches
//     one atomic on its own cache line.
//   - The cursors are padded a cache line apart: the producer's store to
//     tail never invalidates the line the consumer's head store lives on.
//   - pop copies a message out of its slot exactly once (no staging buffer
//     on the receive side) and clears only the slot's pointer fields; the
//     scalar bytes are overwritten by the next push, so the consumer never
//     pays a full-struct zero per message the way a channel receive does.
//   - Parking is the slow path only: a full producer or an empty consumer
//     parks on a gate (see below); the wake probe on the fast path is one
//     atomic load that almost always reads "nobody sleeping".

// cacheLine is the assumed coherence granule: cursor fields are padded this
// far apart so the producer and consumer sides never false-share.
const cacheLine = 64

// ring is the SPSC queue. Push from exactly one goroutine at a time, pop
// from exactly one goroutine at a time; occupancy probes are safe anywhere.
type ring struct {
	buf  []rt.Message
	mask uint64

	_          [cacheLine]byte
	tail       atomic.Uint64 // producer cursor: next slot to fill (published)
	tailLocal  uint64        // producer's plain mirror of tail (producer-owned)
	cachedHead uint64        // producer's last-seen head (producer-owned)
	_          [cacheLine - 24]byte
	head       atomic.Uint64 // consumer cursor: next slot to drain (published)
	headLocal  uint64        // consumer's plain mirror of head (consumer-owned)
	cachedTail uint64        // consumer's last-seen tail (consumer-owned)
	_          [cacheLine - 24]byte
}

// newRing returns a ring holding at least `depth` messages, rounded up to a
// power of two so slot indexing is a mask, not a division.
func newRing(depth int) *ring {
	d := 2
	for d < depth {
		d <<= 1
	}
	return &ring{buf: make([]rt.Message, d), mask: uint64(d - 1)}
}

// capacity is the usable slot count.
func (r *ring) capacity() int { return len(r.buf) }

// push appends m, reporting false when the ring is full. Producer side only.
func (r *ring) push(m rt.Message) bool {
	t := r.tailLocal
	if t-r.cachedHead >= uint64(len(r.buf)) {
		r.cachedHead = r.head.Load()
		if t-r.cachedHead >= uint64(len(r.buf)) {
			return false
		}
	}
	r.buf[t&r.mask] = m
	r.tailLocal = t + 1
	// The release store publishes the slot write above: a consumer that
	// loads the new tail is ordered after the message it guards.
	r.tail.Store(t + 1)
	return true
}

// The consume side is a claim/take/release protocol so a batch of queued
// messages costs one atomic load (the tail refresh in claim) and one
// atomic store (the cursor publish in release) total, not per message:
//
//	n := r.claim()            // messages visible, 0 = empty
//	for i := 0; i < n; i++ {
//		m := r.take(i)        // copy out + clear slot pointer fields
//	}
//	r.release(n)              // publish, returning the slots to the producer
//
// Slots stay owned by the consumer from claim to release, so the producer
// sees the window shrink until release — bounded by the caller's batch cap,
// and identical in kind to a channel receiver that is slow to drain.

// claim reports how many queued messages the consumer may take, refreshing
// the cached tail only when the ring looks empty. Consumer side only.
func (r *ring) claim() int {
	h := r.headLocal
	if r.cachedTail == h {
		r.cachedTail = r.tail.Load()
	}
	return int(r.cachedTail - h)
}

// take copies the i-th claimed message out of its slot — the receiver
// consumes straight from ring memory, no staging buffer — and clears only
// the slot's pointer fields (the scalar remainder is overwritten by the
// next push anyway), so the ring never pins released payload buffers and
// never pays a full-struct zero. Consumer side only; i < the last claim.
func (r *ring) take(i int) rt.Message {
	s := &r.buf[(r.headLocal+uint64(i))&r.mask]
	m := *s
	s.Blocks = nil
	s.Disk = nil
	return m
}

// release publishes n consumed slots back to the producer. Consumer side
// only.
func (r *ring) release(n int) {
	h := r.headLocal + uint64(n)
	r.headLocal = h
	r.head.Store(h)
}

// pop moves the oldest queued message out, reporting false when the ring
// is empty: a one-message claim/take/release. Consumer side only.
func (r *ring) pop() (rt.Message, bool) {
	if r.claim() == 0 {
		return rt.Message{}, false
	}
	m := r.take(0)
	r.release(1)
	return m, true
}

// occupancy reports the queued message count. Safe from any thread; between
// a concurrent push and pop the answer is approximate but never negative
// and never exceeds capacity (head is loaded first, so a racing pop can
// only inflate the count toward what the producer already published).
func (r *ring) occupancy() int {
	h := r.head.Load()
	n := int(r.tail.Load() - h)
	if n > len(r.buf) {
		n = len(r.buf)
	}
	if n < 0 {
		n = 0
	}
	return n
}

// free reports the open slot count — the ring-derived send window that
// backs Credits on the ring transport.
func (r *ring) free() int { return len(r.buf) - r.occupancy() }

// gate is the futex-style park/wake primitive the ring's slow paths use: a
// waiter publishes a sleeper flag and blocks on a condvar; a waker probes
// the flag with one atomic load and takes the mutex only when someone is
// actually parked, so the uncontended fast path never locks.
//
// Lost-wakeup soundness (both atomics are sequentially consistent): the
// waiter stores state=1 before re-checking the ring condition; the waker
// mutates the ring before loading state. If the waiter's condition check
// missed the waker's mutation, the check preceded the mutation in the
// seq-cst order, so the waiter's state store preceded the waker's state
// load — the waker sees the sleeper and broadcasts. The broadcast itself
// cannot slip into the window before the waiter parks, because the waiter
// holds the gate mutex from before the flag store until Wait releases it.
type gate struct {
	state atomic.Int32 // 1 while a waiter is parked (or about to park)
	// The flag is probed on every wake (once per send or per released
	// batch); padding keeps the slow path's mutex traffic off its line.
	_  [cacheLine - 4]byte
	mu sync.Mutex
	cv *sync.Cond
}

func newGate() *gate {
	g := &gate{}
	g.cv = sync.NewCond(&g.mu)
	return g
}

// sleep blocks until cond() reports true. cond is re-evaluated under the
// gate mutex after every wake, and must read only atomic ring state. The
// flag is re-published on every loop iteration because a waker consumes it
// (see wake): each park episode needs its own claim.
func (g *gate) sleep(cond func() bool) {
	g.mu.Lock()
	for {
		g.state.Store(1)
		if cond() {
			break
		}
		g.cv.Wait()
	}
	g.state.Store(0)
	g.mu.Unlock()
}

// wake unblocks any parked waiter. One atomic load when nobody sleeps. A
// waker that finds the flag set consumes it with a swap before taking the
// mutex, so a burst of wakes racing a sleeper that hasn't been rescheduled
// yet pays the mutex once, not once per wake; the sleeper re-publishes the
// flag before every re-check, so a consumed flag can never strand a parked
// waiter (the condition its waker established is re-read after the swap).
func (g *gate) wake() {
	if g.state.Load() == 0 {
		return
	}
	if g.state.Swap(0) == 0 {
		return
	}
	g.mu.Lock()
	g.cv.Broadcast()
	g.mu.Unlock()
}
