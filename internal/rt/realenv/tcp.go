package realenv

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"zipper/internal/block"
	"zipper/internal/rt"
)

// TCP transport: the real-mode network path for running the producer and
// consumer applications as separate OS processes, mirroring the paper's two
// independently launched MPI applications. The consumer side listens; every
// producer process dials in and streams framed mixed messages. Receive
// windows are per-endpoint buffered queues; when a window fills, the reader
// goroutine stops draining its connection and TCP flow control pushes the
// backpressure to the sender — the same stall the in-memory path produces.
// In-transit stagers run as goroutines inside the listening process: the
// listener's endpoint space is consumers followed by stagers, and a stager
// forwards to consumer inboxes through the listener's Loopback transport.

// frame layout (little endian):
//
//	u32 magic | u32 flags | i64 to | i64 from | i64 dest
//	i64 finBlocks | i64 finDisk | i64 lost
//	i64 nDisk | nDisk × (i64 rank | i64 step | i64 seq | i64 bytes)
//	i64 nBlocks | nBlocks × (i64 rank | i64 step | i64 seq | i64 offset |
//	                         i64 bytes | i64 onDisk | i64 dataLen | data)
//
// Version 2 of the frame carries a batch of data blocks so one socket write
// (and one read on the far side) moves a whole drained batch; version 3 adds
// the relay destination so a frame can address a stager endpoint while
// naming the consumer the data is ultimately for; version 4 adds the Fin's
// declared delivery totals (counted stream termination for the elastic
// staging tier), the relay's Lost count, and the Retire flag that drains a
// pool-managed stager.
//
// The Retire flag is carried for frame completeness only: the elastic drain
// protocol's "Retire arrives last" guarantee requires a transport whose Send
// returns only after the message is deposited in the destination inbox
// (in-process channels, the simulated network). TCPTransport.Send returns
// after the socket write, and frames from different connections interleave
// at the listener, so a quiesced claim does NOT order a Retire behind
// in-flight data here — do not drive a pool-managed stager across TCP.
const (
	frameMagic  = 0x5a495034 // "ZIP4"
	flagFin     = 1 << 0
	flagRetire  = 1 << 1
	maxFrameLen = 1 << 31
	maxBatchLen = 1 << 20 // sanity cap on per-frame block and disk-ref counts
)

// TCPListener is the consumer-side endpoint set.
type TCPListener struct {
	ln      net.Listener
	inboxes []chan rt.Message
	wg      sync.WaitGroup
	mu      sync.Mutex
	closed  bool
}

// ListenTCP starts the consumer-side endpoint set on addr (use
// "127.0.0.1:0" for tests) with one window-deep inbox per endpoint.
// `endpoints` counts consumers plus any stager goroutines the caller will
// run in this process (stager inboxes follow the consumer inboxes).
func ListenTCP(addr string, endpoints, window int) (*TCPListener, error) {
	if endpoints < 1 {
		return nil, fmt.Errorf("realenv: need ≥1 endpoint, got %d", endpoints)
	}
	if window < 1 {
		window = 1
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("realenv: listen: %w", err)
	}
	l := &TCPListener{ln: ln}
	for i := 0; i < endpoints; i++ {
		l.inboxes = append(l.inboxes, make(chan rt.Message, window))
	}
	l.wg.Add(1)
	go l.acceptLoop()
	return l, nil
}

// Addr returns the listening address to hand to producer processes.
func (l *TCPListener) Addr() string { return l.ln.Addr().String() }

// Inbox returns endpoint i's receive side.
func (l *TCPListener) Inbox(i int) rt.Inbox { return inbox(l.inboxes[i]) }

// Loopback returns a transport that delivers straight into this listener's
// inboxes — the path a stager goroutine running in the listening process
// uses to forward relayed frames to its consumers.
func (l *TCPListener) Loopback() rt.Transport { return loopback{l} }

type loopback struct{ l *TCPListener }

func (lb loopback) Send(c rt.Ctx, to int, m rt.Message) { lb.l.inboxes[to] <- m }

// Credits reports endpoint `to`'s remaining window, for hybrid routing
// inside the listening process.
func (lb loopback) Credits(to int) int {
	return cap(lb.l.inboxes[to]) - len(lb.l.inboxes[to])
}

// Close stops accepting; established connections drain until their peers
// close.
func (l *TCPListener) Close() error {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	err := l.ln.Close()
	l.wg.Wait()
	return err
}

func (l *TCPListener) acceptLoop() {
	defer l.wg.Done()
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			return // listener closed
		}
		l.wg.Add(1)
		go func() {
			defer l.wg.Done()
			defer conn.Close()
			r := bufio.NewReaderSize(conn, 1<<20)
			for {
				to, m, err := readFrame(r)
				if err != nil {
					return // EOF or peer failure: connection done
				}
				if to < 0 || to >= len(l.inboxes) {
					return // corrupt target: drop the connection
				}
				l.inboxes[to] <- m
			}
		}()
	}
}

// TCPTransport is the producer-side sender over one connection.
type TCPTransport struct {
	mu sync.Mutex
	w  *bufio.Writer
	c  net.Conn
}

// DialTCP connects a producer process to the consumer-side listener.
func DialTCP(addr string) (*TCPTransport, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("realenv: dial %s: %w", addr, err)
	}
	return &TCPTransport{w: bufio.NewWriterSize(c, 1<<20), c: c}, nil
}

// Send frames and writes the message. It is safe for concurrent use by the
// sender threads of multiple producers sharing the connection.
func (t *TCPTransport) Send(c rt.Ctx, to int, m rt.Message) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := writeFrame(t.w, to, m); err != nil {
		panic(fmt.Sprintf("realenv: tcp send: %v", err))
	}
	if err := t.w.Flush(); err != nil {
		panic(fmt.Sprintf("realenv: tcp flush: %v", err))
	}
}

// Close shuts the connection down; the consumer side sees EOF after the
// final frame.
func (t *TCPTransport) Close() error { return t.c.Close() }

func writeFrame(w io.Writer, to int, m rt.Message) error {
	var flags uint32
	if m.Fin {
		flags |= flagFin
	}
	if m.Retire {
		flags |= flagRetire
	}
	hdr := make([]byte, 0, 128)
	hdr = binary.LittleEndian.AppendUint32(hdr, frameMagic)
	hdr = binary.LittleEndian.AppendUint32(hdr, flags)
	hdr = appendI64(hdr, int64(to), int64(m.From), int64(m.Dest))
	hdr = appendI64(hdr, m.FinBlocks, m.FinDisk, m.Lost)
	hdr = appendI64(hdr, int64(len(m.Disk)))
	for _, d := range m.Disk {
		hdr = appendI64(hdr, int64(d.ID.Rank), int64(d.ID.Step), int64(d.ID.Seq), d.Bytes)
	}
	hdr = appendI64(hdr, int64(len(m.Blocks)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	bh := make([]byte, 0, 7*8)
	for _, b := range m.Blocks {
		onDisk := int64(0)
		if b.OnDisk {
			onDisk = 1
		}
		bh = appendI64(bh[:0], int64(b.ID.Rank), int64(b.ID.Step), int64(b.ID.Seq),
			b.Offset, b.Bytes, onDisk, int64(len(b.Data)))
		if _, err := w.Write(bh); err != nil {
			return err
		}
		if _, err := w.Write(b.Data); err != nil {
			return err
		}
	}
	return nil
}

func appendI64(b []byte, vs ...int64) []byte {
	for _, v := range vs {
		b = binary.LittleEndian.AppendUint64(b, uint64(v))
	}
	return b
}

func readFrame(r io.Reader) (int, rt.Message, error) {
	var m rt.Message
	u32 := func() (uint32, error) {
		var buf [4]byte
		_, err := io.ReadFull(r, buf[:])
		return binary.LittleEndian.Uint32(buf[:]), err
	}
	i64 := func() (int64, error) {
		var buf [8]byte
		_, err := io.ReadFull(r, buf[:])
		return int64(binary.LittleEndian.Uint64(buf[:])), err
	}
	magic, err := u32()
	if err != nil {
		return 0, m, err
	}
	if magic != frameMagic {
		return 0, m, fmt.Errorf("realenv: bad frame magic %#x", magic)
	}
	flags, err := u32()
	if err != nil {
		return 0, m, err
	}
	to, err := i64()
	if err != nil {
		return 0, m, err
	}
	from, err := i64()
	if err != nil {
		return 0, m, err
	}
	dest, err := i64()
	if err != nil {
		return 0, m, err
	}
	finBlocks, err := i64()
	if err != nil {
		return 0, m, err
	}
	finDisk, err := i64()
	if err != nil {
		return 0, m, err
	}
	lost, err := i64()
	if err != nil {
		return 0, m, err
	}
	m.From = int(from)
	m.Dest = int(dest)
	m.Fin = flags&flagFin != 0
	m.Retire = flags&flagRetire != 0
	m.FinBlocks = finBlocks
	m.FinDisk = finDisk
	m.Lost = lost
	nDisk, err := i64()
	if err != nil || nDisk < 0 || nDisk > maxBatchLen {
		return 0, m, fmt.Errorf("realenv: bad disk-ref count %d: %v", nDisk, err)
	}
	for i := int64(0); i < nDisk; i++ {
		var dr, ds, dq, db int64
		for _, dst := range []*int64{&dr, &ds, &dq, &db} {
			if *dst, err = i64(); err != nil {
				return 0, m, err
			}
		}
		m.Disk = append(m.Disk, rt.DiskRef{
			ID:    block.ID{Rank: int(dr), Step: int(ds), Seq: int(dq)},
			Bytes: db,
		})
	}
	nBlocks, err := i64()
	if err != nil || nBlocks < 0 || nBlocks > maxBatchLen {
		return 0, m, fmt.Errorf("realenv: bad block count %d: %v", nBlocks, err)
	}
	var frameData int64 // aggregate payload: a corrupt header must not demand unbounded allocation
	for i := int64(0); i < nBlocks; i++ {
		var rank, step, seq, offset, bytes, onDisk, dataLen int64
		for _, dst := range []*int64{&rank, &step, &seq, &offset, &bytes, &onDisk, &dataLen} {
			if *dst, err = i64(); err != nil {
				return 0, m, err
			}
		}
		if dataLen < 0 || dataLen > maxFrameLen {
			return 0, m, fmt.Errorf("realenv: bad block data length %d", dataLen)
		}
		if frameData += dataLen; frameData > maxFrameLen {
			return 0, m, fmt.Errorf("realenv: frame payload exceeds %d bytes", int64(maxFrameLen))
		}
		blk := &block.Block{
			ID:     block.ID{Rank: int(rank), Step: int(step), Seq: int(seq)},
			Offset: offset,
			Bytes:  bytes,
			OnDisk: onDisk == 1,
		}
		if dataLen > 0 {
			// Pooled payload: the consumer releases it after analysis, so
			// steady-state TCP receive allocates nothing for data.
			blk.Data = block.GetPayload(int(dataLen))
			if _, err := io.ReadFull(r, blk.Data); err != nil {
				return 0, m, err
			}
		}
		m.Blocks = append(m.Blocks, blk)
	}
	return int(to), m, nil
}

var _ rt.Transport = (*TCPTransport)(nil)
