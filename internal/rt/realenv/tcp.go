package realenv

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"zipper/internal/block"
	"zipper/internal/rt"
)

// TCP transport: the real-mode network path for running the producer and
// consumer applications as separate OS processes, mirroring the paper's two
// independently launched MPI applications. The consumer side listens; every
// producer process dials in and streams framed mixed messages. Receive
// windows are per-endpoint buffered queues; when a window fills, the reader
// goroutine stops draining its connection and TCP flow control pushes the
// backpressure to the sender — the same stall the in-memory path produces.
// In-transit stagers run as goroutines inside the listening process: the
// listener's endpoint space is consumers followed by stagers, and a stager
// forwards to consumer inboxes through the listener's Loopback transport.

// frame layout (little endian):
//
//	u32 magic | u32 flags | i64 to | i64 from | i64 dest
//	i64 finBlocks | i64 finDisk | i64 lost
//	i64 nDisk | nDisk × (i64 rank | i64 step | i64 seq | i64 bytes)
//	i64 nBlocks | nBlocks × (i64 rank | i64 step | i64 seq | i64 offset |
//	                         i64 bytes | i64 onDisk | i64 enc | i64 dataLen)
//	payload bytes of every block, concatenated in descriptor order
//
// Version 2 of the frame carries a batch of data blocks so one socket write
// (and one read on the far side) moves a whole drained batch; version 3 adds
// the relay destination so a frame can address a stager endpoint while
// naming the consumer the data is ultimately for; version 4 adds the Fin's
// declared delivery totals (counted stream termination for the elastic
// staging tier), the relay's Lost count, and the Retire flag that drains a
// pool-managed stager. Version 5 reorganizes the layout for zero-copy
// sends: all descriptors are contiguous up front and the payloads are
// concatenated at the end, so the sender can issue the whole frame as one
// vectored write — [header | payload₁ | payload₂ | …] — straight from the
// pooled block payloads, no intermediate copy. v5 also adds the per-block
// `enc` word carrying the in-transit reduction operator (block.Enc), with
// dataLen then holding the encoded payload size while `bytes` stays the
// raw size.
//
// The Retire flag is carried for frame completeness only: the elastic drain
// protocol's "Retire arrives last" guarantee requires a transport whose Send
// returns only after the message is deposited in the destination inbox
// (in-process channels, the simulated network). TCPTransport.Send returns
// after the socket write, and frames from different connections interleave
// at the listener, so a quiesced claim does NOT order a Retire behind
// in-flight data here — do not drive a pool-managed stager across TCP.
// zipper.NewJob enforces this: a TCP job with an elastic, fault-tolerant,
// or non-rank-affine (pool-managed) staging tier is rejected at validation.
const (
	frameMagic  = 0x5a495035 // "ZIP5"
	flagFin     = 1 << 0
	flagRetire  = 1 << 1
	maxFrameLen = 1 << 31
	maxBatchLen = 1 << 20 // sanity cap on per-frame block and disk-ref counts

	// defaultVectoredMin is the aggregate payload size at which Send
	// switches from the buffered-copy path to one vectored write. Below it
	// a single bufio copy+flush is cheaper than pinning iovecs; above it
	// the memcpy into the 1 MiB bufio buffer dominates.
	defaultVectoredMin = 16 << 10

	// payloadChunk bounds the eager allocation for one claimed payload
	// length: a reader first proves the wire can deliver this much before
	// allocating the full claimed size, so a corrupt or adversarial
	// descriptor costs at most one chunk, not maxFrameLen.
	payloadChunk = 4 << 20
)

// TCPListener is the consumer-side endpoint set, hosted behind the accept
// loop: each accepted connection's reader delivers into the shared set.
type TCPListener struct {
	ln     net.Listener
	eps    endpointSet
	wg     sync.WaitGroup
	mu     sync.Mutex
	closed bool
}

// ListenTCP starts the consumer-side endpoint set on addr (use
// "127.0.0.1:0" for tests) with one window-deep channel inbox per endpoint.
// `endpoints` counts consumers plus any stager goroutines the caller will
// run in this process (stager inboxes follow the consumer inboxes).
func ListenTCP(addr string, endpoints, window int) (*TCPListener, error) {
	if window < 1 {
		window = 1
	}
	return listenTCP(addr, endpoints, func() endpointSet {
		return newChanEndpoints(endpoints, window)
	})
}

// ListenTCPRing starts the consumer-side endpoint set on addr over the SPSC
// ring transport: each accepted connection's reader goroutine — naturally a
// single producer — gets a private wait-free lane into the endpoints it
// addresses, and in-process stagers forward through LoopbackPort lanes.
// Selected by Config.Staging.RingDepth > 0 on a TCP job.
func ListenTCPRing(addr string, endpoints, depth int) (*TCPListener, error) {
	if depth < 1 {
		depth = 1
	}
	return listenTCP(addr, endpoints, func() endpointSet {
		return newRingEndpoints(endpoints, depth)
	})
}

func listenTCP(addr string, endpoints int, mkSet func() endpointSet) (*TCPListener, error) {
	if endpoints < 1 {
		return nil, fmt.Errorf("realenv: need ≥1 endpoint, got %d", endpoints)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("realenv: listen: %w", err)
	}
	l := &TCPListener{ln: ln, eps: mkSet()}
	l.wg.Add(1)
	go l.acceptLoop()
	return l, nil
}

// Addr returns the listening address to hand to producer processes.
func (l *TCPListener) Addr() string { return l.ln.Addr().String() }

// Inbox returns endpoint i's receive side.
func (l *TCPListener) Inbox(i int) rt.Inbox { return l.eps.Inbox(i) }

// Loopback returns a transport that delivers straight into this listener's
// endpoint set — the path a stager goroutine running in the listening
// process uses to forward relayed frames to its consumers. Safe from any
// thread; hot forwarders should prefer LoopbackPort.
func (l *TCPListener) Loopback() rt.Transport { return loopback{l} }

// LoopbackPort returns a loopback transport handle for one forwarding
// thread: on the ring set it mints the thread's private SPSC lanes, on the
// channel set it is the shared loopback, so callers can hold one per stager
// unconditionally.
func (l *TCPListener) LoopbackPort() rt.Transport { return l.eps.Port() }

type loopback struct{ l *TCPListener }

func (lb loopback) Send(c rt.Ctx, to int, m rt.Message) { lb.l.eps.Send(c, to, m) }

// Credits reports endpoint `to`'s remaining window, for hybrid routing
// inside the listening process.
func (lb loopback) Credits(to int) int { return lb.l.eps.Credits(to) }

// Close stops accepting; established connections drain until their peers
// close.
func (l *TCPListener) Close() error {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	err := l.ln.Close()
	l.wg.Wait()
	return err
}

func (l *TCPListener) acceptLoop() {
	defer l.wg.Done()
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			return // listener closed
		}
		l.wg.Add(1)
		go func() {
			defer l.wg.Done()
			defer conn.Close()
			// Each connection has exactly one reader goroutine, so the
			// reader is a natural single producer: on the ring set its port
			// is a private wait-free lane per addressed endpoint.
			port := l.eps.Port()
			endpoints := l.eps.Endpoints()
			r := bufio.NewReaderSize(conn, 1<<20)
			for {
				to, m, err := readFrame(r)
				if err != nil {
					return // EOF or peer failure: connection done
				}
				if to < 0 || to >= endpoints {
					return // corrupt target: drop the connection
				}
				port.Send(nil, to, m)
			}
		}()
	}
}

// TCPTransport is the producer-side sender over one connection. The frame
// header is assembled into a per-transport scratch buffer and large frames
// go out as one vectored write over [header, payload₁, payload₂, …], so a
// steady-state Send performs zero allocations and never copies payload
// bytes.
type TCPTransport struct {
	mu          sync.Mutex
	w           *bufio.Writer
	c           net.Conn
	hdr         []byte   // reusable frame-header scratch
	vecs        [][]byte // reusable backing for the vectored write
	vectoredMin int
}

// DialTCP connects a producer process to the consumer-side listener.
func DialTCP(addr string) (*TCPTransport, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("realenv: dial %s: %w", addr, err)
	}
	return newTCPTransport(c), nil
}

func newTCPTransport(c net.Conn) *TCPTransport {
	return &TCPTransport{
		w:           bufio.NewWriterSize(c, 1<<20),
		c:           c,
		vectoredMin: defaultVectoredMin,
	}
}

// SetVectoredMin adjusts the payload size at which Send switches to the
// vectored (writev) path: 0 restores the default, a negative value disables
// the vectored path entirely so every frame takes the buffered-copy path —
// the pre-v5 behavior, kept reachable for benchmarking the two against
// each other.
func (t *TCPTransport) SetVectoredMin(n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n == 0 {
		n = defaultVectoredMin
	}
	t.vectoredMin = n
}

// Send frames and writes the message. It is safe for concurrent use by the
// sender threads of multiple producers sharing the connection. Payload
// ownership stays with the caller (as on the in-process path, where the
// consumer releases blocks after analysis): the payload bytes are fully on
// the wire when Send returns.
func (t *TCPTransport) Send(c rt.Ctx, to int, m rt.Message) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.writeFrame(to, m); err != nil {
		panic(fmt.Sprintf("realenv: tcp send: %v", err))
	}
}

// Close shuts the connection down; the consumer side sees EOF after the
// final frame.
func (t *TCPTransport) Close() error { return t.c.Close() }

// writeFrame assembles the v5 header into the transport's scratch buffer
// and writes the frame: small frames are copied through the bufio writer
// (one write syscall after Flush), large frames go out as one vectored
// write whose iovecs point straight at the pooled block payloads. Callers
// hold t.mu.
func (t *TCPTransport) writeFrame(to int, m rt.Message) error {
	var flags uint32
	if m.Fin {
		flags |= flagFin
	}
	if m.Retire {
		flags |= flagRetire
	}
	hdr := t.hdr[:0]
	hdr = binary.LittleEndian.AppendUint32(hdr, frameMagic)
	hdr = binary.LittleEndian.AppendUint32(hdr, flags)
	hdr = appendI64(hdr, int64(to), int64(m.From), int64(m.Dest))
	hdr = appendI64(hdr, m.FinBlocks, m.FinDisk, m.Lost)
	hdr = appendI64(hdr, int64(len(m.Disk)))
	for _, d := range m.Disk {
		hdr = appendI64(hdr, int64(d.ID.Rank), int64(d.ID.Step), int64(d.ID.Seq), d.Bytes)
	}
	hdr = appendI64(hdr, int64(len(m.Blocks)))
	var payload int64
	for _, b := range m.Blocks {
		onDisk := int64(0)
		if b.OnDisk {
			onDisk = 1
		}
		hdr = appendI64(hdr, int64(b.ID.Rank), int64(b.ID.Step), int64(b.ID.Seq),
			b.Offset, b.Bytes, onDisk, int64(b.Enc), int64(len(b.Data)))
		payload += int64(len(b.Data))
	}
	t.hdr = hdr // keep the grown scratch for the next frame

	if t.vectoredMin >= 0 && payload >= int64(t.vectoredMin) {
		// Vectored path: nothing is buffered (Send always leaves the bufio
		// writer flushed), so the whole frame — header segment plus every
		// payload in place — leaves in one writev.
		if err := t.w.Flush(); err != nil {
			return err
		}
		vecs := append(t.vecs[:0], hdr)
		for _, b := range m.Blocks {
			if len(b.Data) > 0 {
				vecs = append(vecs, b.Data)
			}
		}
		t.vecs = vecs // keep the grown backing for the next frame
		nb := net.Buffers(vecs)
		_, err := nb.WriteTo(t.c)
		for i := range vecs {
			vecs[i] = nil // drop payload references until the next frame
		}
		return err
	}

	// Buffered-copy path: small frames amortize into one copied write.
	if _, err := t.w.Write(hdr); err != nil {
		return err
	}
	for _, b := range m.Blocks {
		if len(b.Data) == 0 {
			continue
		}
		if _, err := t.w.Write(b.Data); err != nil {
			return err
		}
	}
	return t.w.Flush()
}

func appendI64(b []byte, vs ...int64) []byte {
	for _, v := range vs {
		b = binary.LittleEndian.AppendUint64(b, uint64(v))
	}
	return b
}

// readPayload returns a pooled payload of length n filled from r. Claimed
// lengths beyond payloadChunk are proven against the wire chunk-first, so
// a corrupt descriptor cannot force an allocation larger than one chunk
// plus what the peer actually delivered.
func readPayload(r io.Reader, n int64) ([]byte, error) {
	if n <= payloadChunk {
		buf := block.GetPayload(int(n))
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
	head := block.GetPayload(payloadChunk)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, err
	}
	buf := block.GetPayload(int(n))
	copy(buf, head)
	(&block.Block{Data: head}).Release()
	if _, err := io.ReadFull(r, buf[payloadChunk:]); err != nil {
		return nil, err
	}
	return buf, nil
}

func readFrame(r io.Reader) (int, rt.Message, error) {
	var m rt.Message
	u32 := func() (uint32, error) {
		var buf [4]byte
		_, err := io.ReadFull(r, buf[:])
		return binary.LittleEndian.Uint32(buf[:]), err
	}
	i64 := func() (int64, error) {
		var buf [8]byte
		_, err := io.ReadFull(r, buf[:])
		return int64(binary.LittleEndian.Uint64(buf[:])), err
	}
	magic, err := u32()
	if err != nil {
		return 0, m, err
	}
	if magic != frameMagic {
		return 0, m, fmt.Errorf("realenv: bad frame magic %#x", magic)
	}
	flags, err := u32()
	if err != nil {
		return 0, m, err
	}
	to, err := i64()
	if err != nil {
		return 0, m, err
	}
	from, err := i64()
	if err != nil {
		return 0, m, err
	}
	dest, err := i64()
	if err != nil {
		return 0, m, err
	}
	finBlocks, err := i64()
	if err != nil {
		return 0, m, err
	}
	finDisk, err := i64()
	if err != nil {
		return 0, m, err
	}
	lost, err := i64()
	if err != nil {
		return 0, m, err
	}
	m.From = int(from)
	m.Dest = int(dest)
	m.Fin = flags&flagFin != 0
	m.Retire = flags&flagRetire != 0
	m.FinBlocks = finBlocks
	m.FinDisk = finDisk
	m.Lost = lost
	nDisk, err := i64()
	if err != nil || nDisk < 0 || nDisk > maxBatchLen {
		return 0, m, fmt.Errorf("realenv: bad disk-ref count %d: %v", nDisk, err)
	}
	for i := int64(0); i < nDisk; i++ {
		var dr, ds, dq, db int64
		for _, dst := range []*int64{&dr, &ds, &dq, &db} {
			if *dst, err = i64(); err != nil {
				return 0, m, err
			}
		}
		m.Disk = append(m.Disk, rt.DiskRef{
			ID:    block.ID{Rank: int(dr), Step: int(ds), Seq: int(dq)},
			Bytes: db,
		})
	}
	nBlocks, err := i64()
	if err != nil || nBlocks < 0 || nBlocks > maxBatchLen {
		return 0, m, fmt.Errorf("realenv: bad block count %d: %v", nBlocks, err)
	}
	// Pass 1: the contiguous descriptor table. A corrupt header must not
	// demand unbounded allocation, so descriptors are validated (and the
	// aggregate payload capped) before any payload byte is read.
	lens := make([]int64, 0, nBlocks)
	var frameData int64
	for i := int64(0); i < nBlocks; i++ {
		var rank, step, seq, offset, bytes, onDisk, enc, dataLen int64
		for _, dst := range []*int64{&rank, &step, &seq, &offset, &bytes, &onDisk, &enc, &dataLen} {
			if *dst, err = i64(); err != nil {
				return 0, m, err
			}
		}
		if dataLen < 0 || dataLen > maxFrameLen {
			return 0, m, fmt.Errorf("realenv: bad block data length %d", dataLen)
		}
		if frameData += dataLen; frameData > maxFrameLen {
			return 0, m, fmt.Errorf("realenv: frame payload exceeds %d bytes", int64(maxFrameLen))
		}
		if enc < 0 || enc > 255 {
			return 0, m, fmt.Errorf("realenv: bad block encoding %d", enc)
		}
		blk := &block.Block{
			ID:     block.ID{Rank: int(rank), Step: int(step), Seq: int(seq)},
			Offset: offset,
			Bytes:  bytes,
			OnDisk: onDisk == 1,
			Enc:    uint8(enc),
		}
		if blk.Enc != 0 {
			blk.EncBytes = dataLen
		}
		m.Blocks = append(m.Blocks, blk)
		lens = append(lens, dataLen)
	}
	// Pass 2: the concatenated payloads, in descriptor order.
	for i, blk := range m.Blocks {
		if lens[i] == 0 {
			continue
		}
		// Pooled payload: the consumer releases it after analysis, so
		// steady-state TCP receive allocates nothing for data.
		if blk.Data, err = readPayload(r, lens[i]); err != nil {
			return 0, m, err
		}
	}
	return int(to), m, nil
}

var _ rt.Transport = (*TCPTransport)(nil)
