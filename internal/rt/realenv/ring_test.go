package realenv

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"zipper/internal/block"
	"zipper/internal/rt"
)

// msg stamps a (sender, sequence) pair into a message so receivers can
// verify per-sender FIFO delivery and loss-free accounting.
func msg(sender, seq int) rt.Message {
	return rt.Message{From: sender, Blocks: []*block.Block{
		{ID: block.ID{Rank: sender, Step: seq}},
	}}
}

func msgSeq(m rt.Message) int { return m.Blocks[0].ID.Step }

func TestRingPushPopWraparound(t *testing.T) {
	r := newRing(3) // rounds up to 4
	if r.capacity() != 4 {
		t.Fatalf("capacity = %d, want 4 (rounded up)", r.capacity())
	}
	next := 0 // next sequence to push
	seen := 0 // next sequence expected out
	// Push/pop in ragged runs far past capacity so the cursors wrap.
	for round := 0; round < 50; round++ {
		for r.push(msg(0, next)) {
			next++
		}
		if r.free() != 0 {
			t.Fatalf("round %d: push refused with %d free slots", round, r.free())
		}
		for i := 0; i < 1+round%3; i++ {
			m, ok := r.pop()
			if !ok {
				t.Fatalf("round %d: nothing to pop after filling", round)
			}
			if got := msgSeq(m); got != seen {
				t.Fatalf("round %d: popped seq %d, want %d", round, got, seen)
			}
			seen++
		}
	}
	// Drain the tail and confirm the ring reports empty.
	for {
		m, ok := r.pop()
		if !ok {
			break
		}
		if got := msgSeq(m); got != seen {
			t.Fatalf("drain: popped seq %d, want %d", got, seen)
		}
		seen++
	}
	if seen != next {
		t.Fatalf("popped %d messages, pushed %d", seen, next)
	}
	if r.occupancy() != 0 || r.free() != r.capacity() {
		t.Fatalf("drained ring reports occupancy %d free %d", r.occupancy(), r.free())
	}
}

func TestRingNetworkDelivers(t *testing.T) {
	env := New()
	net := NewRingNetwork(2, 8)
	const total = 1000
	port := net.Port()
	env.Go("sender", func(c rt.Ctx) {
		for i := 0; i < total; i++ {
			port.Send(c, 1, msg(0, i))
		}
	})
	in := net.Inbox(1)
	c := env.Ctx()
	for i := 0; i < total; i++ {
		m, ok := in.Recv(c)
		if !ok {
			t.Fatalf("inbox closed at %d", i)
		}
		if got := msgSeq(m); got != i {
			t.Fatalf("message %d arrived with seq %d", i, got)
		}
	}
	env.Wait()
}

// TestRingRetireHeldBack pins the drain-protocol guarantee the ring inbox
// restores: a Retire popped from one lane is delivered only after every
// other lane has drained empty, so "Retire arrives last" holds across
// per-sender lanes exactly as it did on the single channel FIFO.
func TestRingRetireHeldBack(t *testing.T) {
	net := NewRingNetwork(1, 16)
	c := New().Ctx()
	data := net.Port()
	for i := 0; i < 5; i++ {
		data.Send(c, 0, msg(7, i))
	}
	// The control-path Retire lands on a different lane; a naive
	// round-robin drain could surface it before the data lane.
	net.Send(c, 0, rt.Message{Retire: true})
	in := net.Inbox(0)
	for i := 0; i < 5; i++ {
		m, _ := in.Recv(c)
		if m.Retire {
			t.Fatalf("Retire delivered at position %d, before the data lane drained", i)
		}
		if got := msgSeq(m); got != i {
			t.Fatalf("data message %d out of order (seq %d)", i, got)
		}
	}
	m, _ := in.Recv(c)
	if !m.Retire {
		t.Fatalf("sixth delivery is not the Retire: %+v", m)
	}
}

// TestTransportBackpressure is the satellite -race hammer: concurrent
// Send/Recv/Credits on both the channel and ring endpoint sets, asserting
// zero message loss, per-sender FIFO order, and sane credit accounting
// (never negative, never above the window, back to full after drain).
func TestTransportBackpressure(t *testing.T) {
	const (
		senders  = 4
		perSend  = 2000
		depth    = 8
		endpoint = 0
	)
	for _, tc := range []struct {
		name string
		net  *Network
	}{
		{"channel", NewNetwork(2, depth)},
		{"ring", NewRingNetwork(2, depth)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			env := New()
			for s := 0; s < senders; s++ {
				s := s
				port := tc.net.Port()
				env.Go(fmt.Sprintf("sender%d", s), func(c rt.Ctx) {
					for i := 0; i < perSend; i++ {
						port.Send(c, endpoint, msg(s, i))
						if cr := port.(rt.CreditTransport).Credits(endpoint); cr < 0 || cr > depth {
							panic(fmt.Sprintf("sender %d: credits %d outside [0,%d]", s, cr, depth))
						}
					}
				})
			}
			var polls atomic.Int64
			stop := make(chan struct{})
			var pollWG sync.WaitGroup
			pollWG.Add(1)
			go func() {
				defer pollWG.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if cr := tc.net.Credits(endpoint); cr < 0 || cr > depth {
						panic(fmt.Sprintf("shared credits %d outside [0,%d]", cr, depth))
					}
					polls.Add(1)
				}
			}()
			in := tc.net.Inbox(endpoint)
			c := env.Ctx()
			lastSeq := make([]int, senders)
			for i := range lastSeq {
				lastSeq[i] = -1
			}
			for got := 0; got < senders*perSend; got++ {
				m, ok := in.Recv(c)
				if !ok {
					t.Fatalf("inbox closed after %d messages", got)
				}
				if seq := msgSeq(m); seq != lastSeq[m.From]+1 {
					t.Fatalf("sender %d: seq %d after %d (per-sender FIFO broken)", m.From, seq, lastSeq[m.From])
				} else {
					lastSeq[m.From] = seq
				}
			}
			env.Wait()
			close(stop)
			pollWG.Wait()
			if polls.Load() == 0 {
				t.Fatal("credit poller never ran")
			}
			// Everything delivered and acknowledged: the window is whole again.
			if cr := tc.net.Credits(endpoint); cr != depth {
				t.Fatalf("post-drain credits = %d, want the full window %d", cr, depth)
			}
		})
	}
}

// TestRingFullParksAndWakes forces the slow path: a depth-2 ring with a
// deliberately slow consumer makes the producer park on the notFull gate
// and the consumer park on notEmpty, in both orders.
func TestRingFullParksAndWakes(t *testing.T) {
	env := New()
	net := NewRingNetwork(1, 2)
	const total = 5000
	port := net.Port()
	env.Go("sender", func(c rt.Ctx) {
		for i := 0; i < total; i++ {
			port.Send(c, 0, msg(0, i))
		}
	})
	in := net.Inbox(0)
	c := env.Ctx()
	for i := 0; i < total; i++ {
		m, _ := in.Recv(c)
		if got := msgSeq(m); got != i {
			t.Fatalf("message %d arrived with seq %d", i, got)
		}
	}
	env.Wait()
}
