package realenv

import (
	"time"

	"zipper/internal/block"
	"zipper/internal/rt"
)

// TransportBenchResult is one transport measurement: a single sender
// pushing `messages` batched messages through a Network port into a
// single receiving inbox.
type TransportBenchResult struct {
	NsPerMessage float64 // wall time per Send/Recv pair
	NsPerBlock   float64 // wall time per block carried
}

// BenchTransport measures the intra-node message path end to end: one
// sender thread Sends `messages` messages of blocksPerMsg blocks each
// through a Network port while the caller drains the receiving inbox.
// ring selects the SPSC ring transport (true) or the classic channel
// network (false); depth is the per-endpoint window in messages for both,
// so the comparison differs only in the transport underneath. The blocks
// travel by pointer on both paths — the measurement is per-message
// synchronization overhead, which is exactly what the ring exists to cut.
// It backs cmd/benchring; the committed BENCH_ring.json gates on its
// numbers.
func BenchTransport(ring bool, messages, blocksPerMsg, depth int) TransportBenchResult {
	var net *Network
	if ring {
		net = NewRingNetwork(1, depth)
	} else {
		net = NewNetwork(1, depth)
	}

	m := rt.Message{From: 0}
	for i := 0; i < blocksPerMsg; i++ {
		data := make([]byte, 64)
		for j := range data {
			data[j] = byte(i + j)
		}
		m.Blocks = append(m.Blocks, block.New(block.ID{Rank: 0, Step: 1, Seq: i}, int64(i*64), data))
	}

	// One continuous stream through a single sender port: the first tenth
	// warms the lane, the scheduler, and the caches, then the clock runs
	// over the measured remainder.
	warmup := messages / 10
	env := New()
	port := net.Port()
	env.Go("sender", func(c rt.Ctx) {
		for i := 0; i < warmup+messages; i++ {
			port.Send(c, 0, m)
		}
	})
	in := net.Inbox(0)
	c := env.Ctx()
	for i := 0; i < warmup; i++ {
		in.Recv(c)
	}
	start := time.Now()
	for i := 0; i < messages; i++ {
		in.Recv(c)
	}
	elapsed := time.Since(start)
	env.Wait()

	return TransportBenchResult{
		NsPerMessage: float64(elapsed.Nanoseconds()) / float64(messages),
		NsPerBlock:   float64(elapsed.Nanoseconds()) / float64(messages*blocksPerMsg),
	}
}
