package realenv

import (
	"sync"
	"sync/atomic"

	"zipper/internal/rt"
)

// endpointSet is the one shape behind every realenv message path: N receive
// endpoints with window-credit accounting and per-sender port minting.
// Network wraps a set directly; TCPListener hosts one behind its accepted
// connections and hands ports to the connection readers and the in-process
// stager loopback. Two implementations exist — buffered Go channels (the
// pinned default, byte-identical to earlier revisions) and pairwise SPSC
// rings (the intra-node fast path).
type endpointSet interface {
	// Send delivers m to endpoint `to`, blocking while its window is full.
	// Safe for any number of concurrent senders.
	Send(c rt.Ctx, to int, m rt.Message)
	// Credits reports how many more messages endpoint `to` can accept.
	Credits(to int) int
	// Inbox returns endpoint i's receive side (one consuming thread each).
	Inbox(i int) rt.Inbox
	// Port returns a transport handle for ONE sending thread — the hot
	// path. Ring sets mint a private SPSC lane per port; channel sets are
	// multi-producer-safe already and return the shared set.
	Port() rt.Transport
	// Endpoints reports the endpoint count, for address validation.
	Endpoints() int
}

// chanEndpoints is the channel-backed endpoint set: one buffered channel per
// endpoint, capacity = receive window. This is the inbox/Credits logic that
// previously lived copied into both Network and TCPListener.
type chanEndpoints struct {
	inboxes []chan rt.Message
}

func newChanEndpoints(endpoints, window int) *chanEndpoints {
	if window < 1 {
		window = 1
	}
	s := &chanEndpoints{}
	for i := 0; i < endpoints; i++ {
		s.inboxes = append(s.inboxes, make(chan rt.Message, window))
	}
	return s
}

func (s *chanEndpoints) Send(c rt.Ctx, to int, m rt.Message) { s.inboxes[to] <- m }

func (s *chanEndpoints) Credits(to int) int {
	return cap(s.inboxes[to]) - len(s.inboxes[to])
}

func (s *chanEndpoints) Inbox(i int) rt.Inbox { return inbox(s.inboxes[i]) }

// Port on a channel set is the set itself: channel sends are already safe
// from any thread and carry no per-sender state to isolate.
func (s *chanEndpoints) Port() rt.Transport { return s }

func (s *chanEndpoints) Endpoints() int { return len(s.inboxes) }

type inbox chan rt.Message

func (b inbox) Recv(c rt.Ctx) (rt.Message, bool) {
	m, ok := <-b
	return m, ok
}

// ringEndpoints is the ring-backed endpoint set: each endpoint holds one
// SPSC ring per registered sender port, created lazily on the port's first
// send to that endpoint, so every hot sender owns a private wait-free lane.
//
// Senders without a port (the scaler's and monitor's Retire control
// messages, journal replay, Fleet teardown) go through Send, which funnels
// into one mutex-serialized control port — rare traffic, identical
// semantics.
//
// Ordering: each lane preserves its sender's FIFO, which is the only order
// the runtime relies on between data messages (a producer's Fin trails its
// blocks on the same lane; cross-sender order was never defined — the
// channel path interleaved senders arbitrarily too). The one cross-sender
// guarantee the drain protocols need — "Retire arrives last" — is restored
// at the receiver: a popped Retire is held back until every other lane has
// drained empty, which is sound because Retire is only sent after the
// membership quiesce proves all data for this endpoint is already deposited.
type ringEndpoints struct {
	depth int
	eps   []*ringEndpoint

	ctlMu sync.Mutex
	ctl   rt.Transport // lazily built shared control port, guarded by ctlMu
}

func newRingEndpoints(endpoints, depth int) *ringEndpoints {
	n := &ringEndpoints{depth: depth}
	for i := 0; i < endpoints; i++ {
		n.eps = append(n.eps, &ringEndpoint{notEmpty: newGate()})
	}
	return n
}

// senderRing is one sender's private lane into one endpoint.
type senderRing struct {
	r       *ring
	notFull *gate // the lane's sender parks here; the receiver wakes it
}

// ringEndpoint is one receive endpoint: the lane list plus the single
// consuming thread's drain state.
type ringEndpoint struct {
	regMu    sync.Mutex                    // serializes lane registration
	lanes    atomic.Pointer[[]*senderRing] // copy-on-write lane list
	notEmpty *gate

	// Receiver-thread-owned state (exactly one consumer per endpoint, the
	// same contract the channel inboxes have):
	cur    *senderRing // lane with the claimed batch being consumed
	curN   int         // claimed batch size
	curI   int         // next claimed index to take
	retire *rt.Message // held-back Retire: delivered once all lanes drain
	scan   int         // round-robin lane cursor, for drain fairness
}

// burstCap bounds how many messages Recv claims from one lane at a time,
// so a hot sender cannot starve its peers and an unreleased claim cannot
// shrink the sender's visible window by more than this.
const burstCap = 64

func (ep *ringEndpoint) loadLanes() []*senderRing {
	if p := ep.lanes.Load(); p != nil {
		return *p
	}
	return nil
}

// register adds a new sender lane. Lanes are only ever appended — a port
// lives as long as its sending thread — and the list is copy-on-write so
// the receiver and credit probes iterate it without a lock.
func (ep *ringEndpoint) register(depth int) *senderRing {
	sr := &senderRing{r: newRing(depth), notFull: newGate()}
	ep.regMu.Lock()
	next := append(append([]*senderRing(nil), ep.loadLanes()...), sr)
	ep.lanes.Store(&next)
	ep.regMu.Unlock()
	return sr
}

func (ep *ringEndpoint) anyLaneReady() bool {
	for _, sr := range ep.loadLanes() {
		if sr.r.occupancy() > 0 {
			return true
		}
	}
	return false
}

// selectLane claims a batch from the next lane with queued traffic,
// round-robin from the last selection point. Reports false when every lane
// is empty.
func (ep *ringEndpoint) selectLane() bool {
	lanes := ep.loadLanes()
	n := len(lanes)
	for i := 0; i < n; i++ {
		sr := lanes[(ep.scan+i)%n]
		if k := sr.r.claim(); k > 0 {
			if k > burstCap {
				k = burstCap
			}
			ep.cur, ep.curN, ep.curI = sr, k, 0
			ep.scan = (ep.scan + i + 1) % n
			return true
		}
	}
	return false
}

// finish releases the current claim back to its lane and wakes the lane's
// sender if it is parked on a full ring.
func (ep *ringEndpoint) finish() {
	ep.cur.r.release(ep.curN)
	ep.cur.notFull.wake()
	ep.cur = nil
}

// Recv implements rt.Inbox for the endpoint's single consuming thread. It
// consumes straight from the claimed lane's ring slots — one message copy
// and zero atomics per message, with the claim's refresh/publish amortized
// across the batch — rotating lanes every burstCap messages for
// cross-sender fairness, and parking on the notEmpty gate only when every
// lane is empty. Whenever Recv parks, delivers the held-back Retire, or
// probes lanes, every claim has been released, so occupancy-derived state
// (credits, anyLaneReady) agrees with what the consumer has actually taken.
func (ep *ringEndpoint) Recv(c rt.Ctx) (rt.Message, bool) {
	for {
		if ep.cur != nil {
			m := ep.cur.r.take(ep.curI)
			if ep.curI++; ep.curI == ep.curN {
				ep.finish()
			}
			if m.Retire && ep.retire == nil {
				r := m
				ep.retire = &r
				continue
			}
			return m, true
		}
		if ep.selectLane() {
			continue
		}
		if ep.retire != nil && !ep.anyLaneReady() {
			// Every lane is drained: the held-back Retire is now provably
			// the last delivery, exactly as on the single-FIFO channel path.
			m := *ep.retire
			ep.retire = nil
			return m, true
		}
		ep.notEmpty.sleep(ep.anyLaneReady)
	}
}

// ringPort is one sending thread's transport handle: a private SPSC lane
// per destination endpoint, created on first send. Not safe for concurrent
// use — that is the point; mint one per sender.
type ringPort struct {
	n     *ringEndpoints
	lanes []*senderRing // indexed by endpoint
}

func (p *ringPort) Send(c rt.Ctx, to int, m rt.Message) {
	sr := p.lanes[to]
	if sr == nil {
		sr = p.n.eps[to].register(p.n.depth)
		p.lanes[to] = sr
	}
	for !sr.r.push(m) {
		sr.notFull.sleep(func() bool { return sr.r.free() > 0 })
	}
	p.n.eps[to].notEmpty.wake()
}

// Credits reports this sender's remaining window into `to`: the free slots
// of its own lane. That is the faithful ring analogue of the channel cap−len
// credit — the signal the hybrid and adaptive routers poll before electing
// the relay — scoped to the one sender whose router is asking.
func (p *ringPort) Credits(to int) int {
	if sr := p.lanes[to]; sr != nil {
		return sr.r.free()
	}
	return p.n.depth
}

func (n *ringEndpoints) Port() rt.Transport {
	return &ringPort{n: n, lanes: make([]*senderRing, len(n.eps))}
}

// Send is the portless slow path: all unported senders share one
// mutex-serialized control port.
func (n *ringEndpoints) Send(c rt.Ctx, to int, m rt.Message) {
	n.ctlMu.Lock()
	if n.ctl == nil {
		n.ctl = n.Port()
	}
	n.ctl.Send(c, to, m)
	n.ctlMu.Unlock()
}

// Credits on the shared handle is the most congested lane's window — the
// conservative aggregate a portless prober gets.
func (n *ringEndpoints) Credits(to int) int {
	min := n.depth
	for _, sr := range n.eps[to].loadLanes() {
		if f := sr.r.free(); f < min {
			min = f
		}
	}
	return min
}

func (n *ringEndpoints) Inbox(i int) rt.Inbox { return n.eps[i] }

func (n *ringEndpoints) Endpoints() int { return len(n.eps) }

var (
	_ endpointSet        = (*chanEndpoints)(nil)
	_ endpointSet        = (*ringEndpoints)(nil)
	_ rt.CreditTransport = (*ringPort)(nil)
	_ rt.Inbox           = (*ringEndpoint)(nil)
)
