// Package realenv implements the rt platform on the real machine: goroutines
// as runtime threads, sync primitives, buffered Go channels as the
// low-latency network path, and a spool directory as the parallel file
// system path. The examples couple genuine simulation and analysis code
// through the Zipper runtime on this platform.
package realenv

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"

	"zipper/internal/block"
	"zipper/internal/rt"
)

// Env is the real-machine platform.
type Env struct {
	epoch time.Time
	wg    sync.WaitGroup
}

// New returns a platform whose clock starts now.
func New() *Env {
	return &Env{epoch: time.Now()}
}

type ctx struct{ e *Env }

func (c ctx) Now() time.Duration    { return time.Since(c.e.epoch) }
func (c ctx) Sleep(d time.Duration) { time.Sleep(d) }

// Ctx returns a context for a caller-owned goroutine (for example, the
// application thread that calls Producer.Write).
func (e *Env) Ctx() rt.Ctx { return ctx{e} }

// Go starts a runtime thread. Use Wait to join all threads.
func (e *Env) Go(name string, fn func(rt.Ctx)) {
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		fn(ctx{e})
	}()
}

// Wait blocks until every thread started with Go has returned.
func (e *Env) Wait() { e.wg.Wait() }

// CopyDelay is a no-op: on the real platform the copy itself costs the time.
func (e *Env) CopyDelay(rt.Ctx, int64) {}

// NewLock creates a sync.Mutex-backed lock.
func (e *Env) NewLock(name string) rt.Lock { return &lock{} }

type lock struct{ mu sync.Mutex }

func (l *lock) Lock(rt.Ctx)   { l.mu.Lock() }
func (l *lock) Unlock(rt.Ctx) { l.mu.Unlock() }
func (l *lock) NewCond(name string) rt.Cond {
	return &cond{c: sync.NewCond(&l.mu)}
}

type cond struct{ c *sync.Cond }

func (c *cond) Wait(rt.Ctx) { c.c.Wait() }
func (c *cond) Signal()     { c.c.Signal() }
func (c *cond) Broadcast()  { c.c.Broadcast() }

// Network is the in-process message path: `endpoints` receive endpoints
// (consumers first, then any in-transit stagers) over a pluggable endpoint
// set. The default set is one buffered channel per endpoint whose capacity
// is the receive window; NewRingNetwork swaps in pairwise lock-free SPSC
// rings — the intra-node fast path for co-located ranks. On either set,
// senders block while the destination window is full, providing the
// backpressure the runtime's stealing and routing logic react to.
type Network struct {
	eps endpointSet
}

// NewNetwork creates `endpoints` channel-backed receive endpoints with the
// given receive-window depth (messages) — the pinned default path.
func NewNetwork(endpoints, window int) *Network {
	return &Network{eps: newChanEndpoints(endpoints, window)}
}

// NewRingNetwork creates `endpoints` ring-backed receive endpoints: every
// sending thread that takes a Port gets a private wait-free SPSC lane of
// `depth` messages (rounded up to a power of two) into each endpoint it
// addresses. Selected by Config.Staging.RingDepth > 0.
func NewRingNetwork(endpoints, depth int) *Network {
	if depth < 1 {
		depth = 1
	}
	return &Network{eps: newRingEndpoints(endpoints, depth)}
}

// Send delivers m to endpoint `to`, blocking while its window is full. Safe
// from any thread; hot senders should prefer a Port.
func (n *Network) Send(c rt.Ctx, to int, m rt.Message) { n.eps.Send(c, to, m) }

// Credits reports how many more messages endpoint `to` can accept right now
// — the hybrid routing policy's direct-path backpressure signal. On the
// ring set this is derived from ring occupancy (free lane slots).
func (n *Network) Credits(to int) int { return n.eps.Credits(to) }

// Inbox returns endpoint i's receive side.
func (n *Network) Inbox(i int) rt.Inbox { return n.eps.Inbox(i) }

// Port returns a transport handle for one sending thread. On the ring set
// it mints the thread's private SPSC lanes; on the channel set it is the
// network itself, so callers can hold a port unconditionally.
func (n *Network) Port() rt.Transport { return n.eps.Port() }

// FileStore spills and preserves blocks as files in a directory, standing in
// for the parallel file system. File layout: 29-byte header (offset, payload
// length, CRC-32C of the payload, raw block size, reduction encoding)
// followed by the payload; the checksum catches torn or corrupted spill
// files before they reach the analysis, and the raw-size/encoding pair lets
// a reduced payload spill and reload without losing its stamp (the payload
// on disk is the encoded bytes — spilling never re-inflates).
type FileStore struct {
	dir string
}

// NewFileStore creates (if needed) and uses dir as the spool directory.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("realenv: creating spool dir: %w", err)
	}
	return &FileStore{dir: dir}, nil
}

// Dir returns the spool directory.
func (s *FileStore) Dir() string { return s.dir }

// Partition returns a store rooted in a subdirectory of this one — each
// in-transit stager spills into its own partition so its private overflow
// never collides with producer spills or preserved blocks.
func (s *FileStore) Partition(name string) (*FileStore, error) {
	return NewFileStore(filepath.Join(s.dir, name))
}

func (s *FileStore) path(id block.ID) string {
	return filepath.Join(s.dir, id.String())
}

// crcTable is the Castagnoli polynomial, hardware-accelerated on amd64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// storeHeaderLen is the spill-file header size (see FileStore doc).
const storeHeaderLen = 29

// WriteBlock persists b and marks it OnDisk.
func (s *FileStore) WriteBlock(c rt.Ctx, b *block.Block) error {
	buf := make([]byte, storeHeaderLen+len(b.Data))
	binary.LittleEndian.PutUint64(buf, uint64(b.Offset))
	binary.LittleEndian.PutUint64(buf[8:], uint64(len(b.Data)))
	binary.LittleEndian.PutUint32(buf[16:], crc32.Checksum(b.Data, crcTable))
	binary.LittleEndian.PutUint64(buf[20:], uint64(b.Bytes))
	buf[28] = b.Enc
	copy(buf[storeHeaderLen:], b.Data)
	if err := os.WriteFile(s.path(b.ID), buf, 0o644); err != nil {
		return fmt.Errorf("realenv: spilling %v: %w", b.ID, err)
	}
	b.OnDisk = true
	return nil
}

// ReadBlock loads a spilled block, verifying its length and checksum.
func (s *FileStore) ReadBlock(c rt.Ctx, id block.ID, bytes int64) (*block.Block, error) {
	buf, err := os.ReadFile(s.path(id))
	if err != nil {
		return nil, fmt.Errorf("realenv: reading %v: %w", id, err)
	}
	if len(buf) < storeHeaderLen {
		return nil, fmt.Errorf("realenv: block file %v truncated (%d bytes)", id, len(buf))
	}
	offset := int64(binary.LittleEndian.Uint64(buf))
	n := int64(binary.LittleEndian.Uint64(buf[8:]))
	sum := binary.LittleEndian.Uint32(buf[16:])
	rawBytes := int64(binary.LittleEndian.Uint64(buf[20:]))
	enc := buf[28]
	if int64(len(buf)-storeHeaderLen) != n {
		return nil, fmt.Errorf("realenv: block file %v corrupt: header says %d bytes, file has %d", id, n, len(buf)-storeHeaderLen)
	}
	if got := crc32.Checksum(buf[storeHeaderLen:], crcTable); got != sum {
		return nil, fmt.Errorf("realenv: block file %v checksum mismatch: %#x != %#x", id, got, sum)
	}
	b := block.New(id, offset, buf[storeHeaderLen:])
	b.OnDisk = true
	if enc != 0 {
		// The file holds a reduced payload: restore the stamp and the raw
		// size so the decoder downstream knows what to rebuild.
		b.Enc = enc
		b.EncBytes = n
		b.Bytes = rawBytes
	}
	return b, nil
}

// RemoveBlock deletes a spilled block file.
func (s *FileStore) RemoveBlock(c rt.Ctx, id block.ID) error {
	if err := os.Remove(s.path(id)); err != nil {
		return fmt.Errorf("realenv: removing %v: %w", id, err)
	}
	return nil
}

var (
	_ rt.Env             = (*Env)(nil)
	_ rt.CreditTransport = (*Network)(nil)
	_ rt.BlockStore      = (*FileStore)(nil)
)
