package realenv

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzReadFrame feeds arbitrary bytes to the frame decoder. The invariants:
// a corrupt, truncated, or adversarial frame returns an error (or decodes
// cleanly, for inputs the fuzzer mutates into valid frames) — it must never
// panic, and it must never allocate past maxFrameLen no matter what the
// descriptors claim. The allocation bound is structural: descriptors are
// validated against the aggregate maxFrameLen cap before any payload is
// read, and claimed payload lengths are proven against the wire one
// payloadChunk at a time before the full size is allocated.
func FuzzReadFrame(f *testing.F) {
	// Seed with real frames of every shape the sender can produce…
	conn := &memConn{}
	tr := newTCPTransport(conn)
	c := New().Ctx()
	for i, m := range frameMessages() {
		conn.buf.Reset()
		tr.Send(c, i%7, m)
		f.Add(append([]byte(nil), conn.buf.Bytes()...))
	}
	// …plus targeted corruptions: bad magic, absurd counts, claimed payload
	// lengths with no bytes behind them.
	bad := [][]byte{
		{},
		{0x35, 0x50, 0x49, 0x5a}, // magic alone, truncated
		binary.LittleEndian.AppendUint32(nil, 0xdeadbeef), // wrong magic
	}
	huge := binary.LittleEndian.AppendUint32(nil, frameMagic)
	huge = binary.LittleEndian.AppendUint32(huge, 0)
	huge = appendI64(huge, 0, 0, 0, 0, 0, 0, 0)            // to..lost, nDisk=0
	huge = appendI64(huge, 1)                              // nBlocks=1
	huge = appendI64(huge, 0, 0, 0, 0, 1<<30, 0, 0, 1<<30) // 1 GiB claim, no data
	bad = append(bad, huge)
	for _, b := range bad {
		f.Add(b)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		to, m, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return // rejected: exactly what corrupt input must produce
		}
		// Accidentally-valid frames must still respect the structural caps.
		if len(m.Blocks) > maxBatchLen || len(m.Disk) > maxBatchLen {
			t.Fatalf("decoded frame exceeds batch caps: %d blocks, %d refs", len(m.Blocks), len(m.Disk))
		}
		var payload int64
		for _, b := range m.Blocks {
			payload += int64(len(b.Data))
		}
		if payload > maxFrameLen {
			t.Fatalf("decoded frame carries %d payload bytes, cap is %d", payload, int64(maxFrameLen))
		}
		_ = to
		// A decoded frame must re-encode and decode identically (the wire
		// format is unambiguous).
		rt2 := &memConn{}
		tr2 := newTCPTransport(rt2)
		tr2.Send(c, 0, m)
		_, m2, err := readFrame(&rt2.buf)
		if err != nil {
			t.Fatalf("re-encode of a valid frame failed to decode: %v", err)
		}
		if len(m2.Blocks) != len(m.Blocks) || len(m2.Disk) != len(m.Disk) ||
			m2.Fin != m.Fin || m2.From != m.From {
			t.Fatalf("re-encode changed the frame: %+v vs %+v", m, m2)
		}
	})
}
