package realenv

import (
	"os"
	"sync"
	"testing"
	"time"

	"zipper/internal/block"
	"zipper/internal/core"
	"zipper/internal/rt"
	"zipper/internal/staging"
)

func TestClockAndThreads(t *testing.T) {
	env := New()
	c := env.Ctx()
	t0 := c.Now()
	var ran bool
	env.Go("worker", func(tc rt.Ctx) {
		tc.Sleep(5 * time.Millisecond)
		ran = true
	})
	env.Wait()
	if !ran {
		t.Fatal("thread did not run")
	}
	if c.Now() <= t0 {
		t.Fatal("clock did not advance")
	}
}

func TestLockAndCond(t *testing.T) {
	env := New()
	lk := env.NewLock("l")
	cond := lk.NewCond("c")
	c := env.Ctx()
	ready := false
	done := make(chan struct{})
	go func() {
		defer close(done)
		lk.Lock(c)
		for !ready {
			cond.Wait(c)
		}
		lk.Unlock(c)
	}()
	time.Sleep(time.Millisecond)
	lk.Lock(c)
	ready = true
	cond.Broadcast()
	lk.Unlock(c)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("cond wait never woke")
	}
}

func TestFileStoreRoundTrip(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := New().Ctx()
	b := block.New(block.ID{Rank: 1, Step: 2, Seq: 3}, 4096, []byte("hello zipper"))
	if err := fs.WriteBlock(c, b); err != nil {
		t.Fatal(err)
	}
	if !b.OnDisk {
		t.Fatal("OnDisk not set")
	}
	got, err := fs.ReadBlock(c, b.ID, b.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Data) != "hello zipper" || got.Offset != 4096 || !got.OnDisk {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if err := fs.RemoveBlock(c, b.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadBlock(c, b.ID, b.Bytes); err == nil {
		t.Fatal("read after remove succeeded")
	}
}

func TestFileStoreDetectsCorruption(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := New().Ctx()
	b := block.New(block.ID{Rank: 0, Step: 0, Seq: 0}, 0, []byte("precious data"))
	if err := fs.WriteBlock(c, b); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte on disk.
	path := fs.path(b.ID)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadBlock(c, b.ID, b.Bytes); err == nil {
		t.Fatal("corrupted block passed the checksum")
	}
	// Truncation is also detected.
	if err := os.WriteFile(path, raw[:10], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadBlock(c, b.ID, b.Bytes); err == nil {
		t.Fatal("truncated block accepted")
	}
}

func TestNetworkBackpressure(t *testing.T) {
	n := NewNetwork(1, 1)
	c := New().Ctx()
	n.Send(c, 0, rt.Message{From: 1}) // fills the window
	blocked := make(chan struct{})
	go func() {
		n.Send(c, 0, rt.Message{From: 2}) // must block
		close(blocked)
	}()
	select {
	case <-blocked:
		t.Fatal("second send did not block on a full window")
	case <-time.After(20 * time.Millisecond):
	}
	if m, ok := n.Inbox(0).Recv(c); !ok || m.From != 1 {
		t.Fatalf("recv = %+v, %v", m, ok)
	}
	select {
	case <-blocked:
	case <-time.After(2 * time.Second):
		t.Fatal("send did not unblock after drain")
	}
}

func TestTCPFrameRoundTrip(t *testing.T) {
	ln, err := ListenTCP("127.0.0.1:0", 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	tr, err := DialTCP(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	c := New().Ctx()

	blk := block.New(block.ID{Rank: 3, Step: 14, Seq: 15}, 926, []byte{1, 2, 3, 4, 5})
	blk2 := block.New(block.ID{Rank: 3, Step: 14, Seq: 16}, 931, []byte{6, 7, 8})
	tr.Send(c, 1, rt.Message{
		From:   3,
		Dest:   1,
		Blocks: []*block.Block{blk, blk2},
		Disk: []rt.DiskRef{
			{ID: block.ID{Rank: 3, Step: 13, Seq: 9}, Bytes: 512},
		},
	})
	tr.Send(c, 0, rt.Message{From: 3, Fin: true})

	m, ok := ln.Inbox(1).Recv(c)
	if !ok {
		t.Fatal("no message")
	}
	if m.From != 3 || m.Dest != 1 || len(m.Blocks) != 2 || m.Blocks[0].ID != blk.ID || m.Blocks[0].Offset != 926 {
		t.Fatalf("frame mismatch: %+v", m)
	}
	if string(m.Blocks[0].Data) != string(blk.Data) || string(m.Blocks[1].Data) != string(blk2.Data) {
		t.Fatalf("payload mismatch: %v %v", m.Blocks[0].Data, m.Blocks[1].Data)
	}
	if m.Blocks[1].ID != blk2.ID || m.Blocks[1].Bytes != 3 {
		t.Fatalf("second batched block mismatch: %+v", m.Blocks[1])
	}
	if len(m.Disk) != 1 || m.Disk[0].Bytes != 512 || m.Disk[0].ID.Seq != 9 {
		t.Fatalf("disk refs mismatch: %+v", m.Disk)
	}
	fin, ok := ln.Inbox(0).Recv(c)
	if !ok || !fin.Fin || len(fin.Blocks) != 0 {
		t.Fatalf("fin mismatch: %+v", fin)
	}
}

// TestTCPWorkflow runs the full Zipper core over the TCP transport: the
// producer and consumer sides share nothing but the socket and the spool
// directory, as two separate OS processes would.
func TestTCPWorkflow(t *testing.T) {
	dir := t.TempDir()
	ln, err := ListenTCP("127.0.0.1:0", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	consEnv := New()
	consFS, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cons := core.NewConsumer(consEnv, core.Config{}, 0, 1, ln.Inbox(0), consFS)

	prodEnv := New()
	prodFS, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := DialTCP(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	prod := core.NewProducer(prodEnv, core.Config{BufferBlocks: 4, HighWater: 2}, 0, 0, tr, prodFS)

	const n = 25
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := prodEnv.Ctx()
		for s := 0; s < n; s++ {
			prod.Write(c, s, int64(s), []byte{byte(s), byte(s + 1)}, 2)
		}
		prod.Close(c)
		prod.Wait(c)
	}()

	c := consEnv.Ctx()
	got := map[int]byte{}
	for {
		b, ok := cons.Read(c)
		if !ok {
			break
		}
		got[b.ID.Step] = b.Data[0]
		time.Sleep(time.Millisecond) // slow consumer: force spills over TCP refs
	}
	wg.Wait()
	cons.Wait(c)
	if err := cons.Err(c); err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("received %d blocks, want %d", len(got), n)
	}
	for s, v := range got {
		if v != byte(s) {
			t.Fatalf("step %d payload %d", s, v)
		}
	}
}

func TestTCPValidation(t *testing.T) {
	if _, err := ListenTCP("127.0.0.1:0", 0, 1); err == nil {
		t.Fatal("zero consumers accepted")
	}
	if _, err := DialTCP("127.0.0.1:1"); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

// TestTCPStagedWorkflow runs the in-transit tier over the TCP frame: the
// producer process dials in and relays everything through a stager that
// lives as goroutines inside the listening (consumer-side) process,
// forwarding to the consumer through the listener's loopback transport.
func TestTCPStagedWorkflow(t *testing.T) {
	dir := t.TempDir()
	// Endpoint space: consumer 0, stager at address 1.
	ln, err := ListenTCP("127.0.0.1:0", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	consEnv := New()
	consFS, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cons := core.NewConsumer(consEnv, core.Config{}, 0, 1, ln.Inbox(0), consFS)
	spill, err := consFS.Partition("stage0")
	if err != nil {
		t.Fatal(err)
	}
	stage := staging.NewStager(consEnv, staging.Config{BufferBlocks: 8, Producers: 1},
		0, ln.Inbox(1), ln.Loopback(), spill)

	prodEnv := New()
	prodFS, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := DialTCP(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	prod := core.NewStagedProducer(prodEnv,
		core.Config{BufferBlocks: 8, DisableSteal: true, RoutePolicy: core.RouteStaging},
		0, 0, 1, tr, prodFS)

	const n = 60
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := prodEnv.Ctx()
		for s := 0; s < n; s++ {
			prod.Write(c, s, int64(s), []byte{byte(s), byte(s + 1)}, 2)
		}
		prod.Close(c)
		prod.Wait(c)
	}()

	c := consEnv.Ctx()
	seq := 0
	for {
		b, ok := cons.Read(c)
		if !ok {
			break
		}
		if b.ID.Seq != seq || b.Data[0] != byte(b.ID.Step) {
			t.Fatalf("relay over TCP broke block %v (seq want %d)", b.ID, seq)
		}
		seq++
		time.Sleep(500 * time.Microsecond) // lag: drive the stager past high water
	}
	wg.Wait()
	stage.Wait(c)
	cons.Wait(c)
	if err := cons.Err(c); err != nil {
		t.Fatal(err)
	}
	if err := stage.Err(c); err != nil {
		t.Fatal(err)
	}
	if seq != n {
		t.Fatalf("received %d blocks, want %d", seq, n)
	}
	ps := prod.Stats(c)
	if ps.BlocksRelayed != n || ps.BlocksSent != 0 {
		t.Fatalf("relay accounting: relayed=%d sent=%d", ps.BlocksRelayed, ps.BlocksSent)
	}
	st := stage.Stats(c)
	if st.BlocksIn != n || st.BlocksForwarded != n {
		t.Fatalf("stager moved %d/%d blocks, want %d", st.BlocksIn, st.BlocksForwarded, n)
	}
	if st.BlocksSpilled == 0 {
		t.Fatal("stager never spilled despite 8-block buffer and slow consumer")
	}
}
