package simenv

import (
	"testing"
	"time"

	"zipper/internal/block"
	"zipper/internal/fabric"
	"zipper/internal/pfs"
	"zipper/internal/rt"
	"zipper/internal/sim"
)

func rig() (*sim.Engine, *fabric.Fabric, *pfs.PFS) {
	e := sim.New()
	f := fabric.New(e, fabric.Config{
		Nodes: 6, NodesPerLeaf: 6, LinkBandwidth: 1e9, LinkLatency: time.Microsecond,
	})
	fs := pfs.New(e, f, pfs.Config{
		OSTNodes: []fabric.NodeID{5}, OSTBandwidth: 5e8,
	})
	return e, f, fs
}

func TestEnvThreadsAndClock(t *testing.T) {
	e, _, _ := rig()
	env := NewEnv(e, 0, 0)
	var at time.Duration
	env.Go("w", func(c rt.Ctx) {
		c.Sleep(7 * time.Millisecond)
		at = c.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 7*time.Millisecond {
		t.Fatalf("thread clock = %v", at)
	}
}

func TestCopyDelayChargesMemoryBandwidth(t *testing.T) {
	e, _, _ := rig()
	env := NewEnv(e, 0, 1e9) // 1 GB/s
	var took time.Duration
	env.Go("w", func(c rt.Ctx) {
		start := c.Now()
		env.CopyDelay(c, 1<<20)
		took = c.Now() - start
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := time.Duration(float64(1<<20) / 1e9 * float64(time.Second))
	if took != want {
		t.Fatalf("CopyDelay = %v, want %v", took, want)
	}
}

func TestForeignContextRejected(t *testing.T) {
	e, _, _ := rig()
	env := NewEnv(e, 0, 0)
	lk := env.NewLock("l")
	defer func() {
		if recover() == nil {
			t.Fatal("foreign context accepted")
		}
	}()
	lk.Lock(badCtx{})
}

type badCtx struct{}

func (badCtx) Now() time.Duration  { return 0 }
func (badCtx) Sleep(time.Duration) {}

func TestNetworkWindowBackpressureAndXmitWait(t *testing.T) {
	e, f, _ := rig()
	net := NewNetwork(e, f, []fabric.NodeID{1}, 1)
	env := NewEnv(e, 0, 0)
	var sendDone [2]time.Duration
	env.Go("sender", func(c rt.Ctx) {
		net.Send(c, 0, rt.Message{From: 0, Blocks: []*block.Block{block.NewSized(block.ID{}, 0, 1<<20)}})
		sendDone[0] = c.Now()
		net.Send(c, 0, rt.Message{From: 0, Blocks: []*block.Block{block.NewSized(block.ID{Seq: 1}, 0, 1<<20)}})
		sendDone[1] = c.Now()
	})
	envC := NewEnv(e, 1, 0)
	envC.Go("receiver", func(c rt.Ctx) {
		c.Sleep(100 * time.Millisecond) // hold the window hostage
		for i := 0; i < 2; i++ {
			if _, ok := net.Inbox(0).Recv(c); !ok {
				t.Error("recv failed")
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// The second send had to wait for the receiver to free a credit.
	if sendDone[1] < 100*time.Millisecond {
		t.Fatalf("second send finished at %v, before the window freed", sendDone[1])
	}
	if w := f.NodeCounters(0).XmitWait; w == 0 {
		t.Fatal("credit stall did not accrue XmitWait")
	}
}

func TestStoreUsesCallerNode(t *testing.T) {
	e, f, fs := rig()
	st := NewStore(fs, "t")
	env := NewEnv(e, 2, 0)
	env.Go("w", func(c rt.Ctx) {
		b := block.NewSized(block.ID{Rank: 2, Step: 1, Seq: 0}, 0, 1<<20)
		if err := st.WriteBlock(c, b); err != nil {
			t.Error(err)
		}
		if !b.OnDisk {
			t.Error("OnDisk not set")
		}
		got, err := st.ReadBlock(c, b.ID, b.Bytes)
		if err != nil {
			t.Error(err)
		}
		if got.Bytes != 1<<20 || !got.OnDisk {
			t.Errorf("read back %+v", got)
		}
		if err := st.RemoveBlock(c, b.ID); err != nil {
			t.Error(err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// The write traveled node 2 -> OST node 5 over the fabric.
	if c := f.NodeCounters(2); c.XmitData == 0 {
		t.Fatal("store write produced no fabric traffic from the client node")
	}
}

func TestWireBytesAccounting(t *testing.T) {
	m := rt.Message{Blocks: []*block.Block{block.NewSized(block.ID{}, 0, 1000)}}
	if got := wireBytes(m); got != 1000+messageOverhead {
		t.Fatalf("wireBytes = %d", got)
	}
	m.Disk = []rt.DiskRef{{}, {}}
	if got := wireBytes(m); got != 1000+messageOverhead+2*diskIDWireBytes {
		t.Fatalf("wireBytes with refs = %d", got)
	}
	if got := wireBytes(rt.Message{Fin: true}); got != messageOverhead {
		t.Fatalf("fin wireBytes = %d", got)
	}
	// A batch charges the message header once plus one descriptor per extra
	// block — strictly cheaper than the same blocks sent individually.
	batch := rt.Message{Blocks: []*block.Block{
		block.NewSized(block.ID{}, 0, 1000),
		block.NewSized(block.ID{Seq: 1}, 0, 500),
		block.NewSized(block.ID{Seq: 2}, 0, 250),
	}}
	want := int64(1750 + messageOverhead + 2*blockWireBytes)
	if got := wireBytes(batch); got != want {
		t.Fatalf("batched wireBytes = %d, want %d", got, want)
	}
}
