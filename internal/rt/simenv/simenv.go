// Package simenv implements the rt platform on the discrete-event simulator:
// runtime threads are engine processes pinned to a fabric node, the network
// path is a credit-windowed message channel over the fabric model, and the
// block store is backed by the parallel-file-system model. Running the
// unchanged Zipper core on this platform replays the paper's cluster-scale
// experiments in virtual time.
package simenv

import (
	"fmt"
	"time"

	"zipper/internal/block"
	"zipper/internal/fabric"
	"zipper/internal/pfs"
	"zipper/internal/rt"
	"zipper/internal/sim"
)

// Env is a per-rank platform handle: threads it spawns run on (and charge
// traffic to) the given fabric node.
type Env struct {
	Eng  *sim.Engine
	Node fabric.NodeID
	// MemBandwidth models staging copies for CopyDelay; zero selects
	// 10 GB/s.
	MemBandwidth float64
}

// NewEnv returns a platform handle for one rank.
func NewEnv(e *sim.Engine, node fabric.NodeID, memBW float64) *Env {
	if memBW <= 0 {
		memBW = 10e9
	}
	return &Env{Eng: e, Node: node, MemBandwidth: memBW}
}

// Ctx is the simulated thread context. It carries the owning node so the
// network and store implementations know where traffic originates.
type Ctx struct {
	P    *sim.Proc
	Node fabric.NodeID
}

// Now reports virtual time.
func (c *Ctx) Now() time.Duration { return c.P.Now() }

// Sleep advances virtual time.
func (c *Ctx) Sleep(d time.Duration) { c.P.Delay(d) }

// WrapProc builds a context for an existing engine process (an application
// rank) running on the environment's node.
func (e *Env) WrapProc(p *sim.Proc) *Ctx { return &Ctx{P: p, Node: e.Node} }

// Go spawns an engine process on the environment's node.
func (e *Env) Go(name string, fn func(rt.Ctx)) {
	node := e.Node
	e.Eng.Spawn(name, func(p *sim.Proc) {
		fn(&Ctx{P: p, Node: node})
	})
}

// CopyDelay charges bytes at the modelled memory bandwidth.
func (e *Env) CopyDelay(c rt.Ctx, bytes int64) {
	if bytes <= 0 {
		return
	}
	c.Sleep(time.Duration(float64(bytes) / e.MemBandwidth * float64(time.Second)))
}

// NewLock creates an engine-backed lock.
func (e *Env) NewLock(name string) rt.Lock {
	return &lock{mu: sim.NewMutex(e.Eng, name)}
}

type lock struct{ mu *sim.Mutex }

func proc(c rt.Ctx) *Ctx {
	sc, ok := c.(*Ctx)
	if !ok {
		panic(fmt.Sprintf("simenv: foreign context %T used with simulated primitive", c))
	}
	return sc
}

func (l *lock) Lock(c rt.Ctx)   { l.mu.Lock(proc(c).P) }
func (l *lock) Unlock(c rt.Ctx) { l.mu.Unlock(proc(c).P) }
func (l *lock) NewCond(name string) rt.Cond {
	return &cond{c: sim.NewCond(l.mu, name)}
}

type cond struct{ c *sim.Cond }

func (c *cond) Wait(x rt.Ctx) { c.c.Wait(proc(x).P) }
func (c *cond) Signal()       { c.c.Signal() }
func (c *cond) Broadcast()    { c.c.Broadcast() }

// messageOverhead is the wire header charged per mixed message (it includes
// the descriptor of the first data block), diskIDWireBytes the per-entry cost
// of the on-disk ID list, and blockWireBytes the descriptor of each batched
// block beyond the first. A single-block message therefore costs exactly what
// the unbatched protocol charged, and batching amortizes messageOverhead
// across the whole batch.
const (
	messageOverhead = 64
	diskIDWireBytes = 24
	blockWireBytes  = 48
)

func wireBytes(m rt.Message) int64 {
	// WireBytes (not PayloadBytes): a block carrying a reduction encoding
	// charges its encoded size, so in-transit reduction is cheaper in
	// virtual time exactly as it is on a real wire.
	n := int64(messageOverhead) + diskIDWireBytes*int64(len(m.Disk)) + m.WireBytes()
	if extra := len(m.Blocks) - 1; extra > 0 {
		n += blockWireBytes * int64(extra)
	}
	return n
}

// Network is the simulated low-latency message path with per-endpoint
// receive windows. A sender that exhausts a window stalls, and the stall is
// credited to its node's XmitWait counter — the paper's congestion proxy.
// Endpoints are consumers followed by any in-transit stagers; a message
// relayed through a stager crosses the fabric twice (producer node → staging
// node → consumer node), which is exactly how the wire model charges the
// extra hop.
type Network struct {
	fab     *fabric.Fabric
	inboxes []*inbox
}

type inbox struct {
	node    fabric.NodeID
	credits *sim.Semaphore
	store   *sim.Store[rt.Message]
}

// NewNetwork creates endpoints on the given nodes (consumers first, then
// stagers) with a window-message receive window each.
func NewNetwork(e *sim.Engine, fab *fabric.Fabric, endpointNodes []fabric.NodeID, window int) *Network {
	if window < 1 {
		window = 1
	}
	n := &Network{fab: fab}
	for i, node := range endpointNodes {
		n.inboxes = append(n.inboxes, &inbox{
			node:    node,
			credits: sim.NewSemaphore(e, fmt.Sprintf("znet.%d.credits", i), window),
			store:   sim.NewStore[rt.Message](e, fmt.Sprintf("znet.%d.inbox", i), 0),
		})
	}
	return n
}

// Send acquires a window credit, transfers the message over the fabric, and
// deposits it in the consumer's inbox. Waiting for exhausted credits is
// "data ready but cannot transmit" — it accrues XmitWait.
func (n *Network) Send(c rt.Ctx, to int, m rt.Message) {
	sc := proc(c)
	ib := n.inboxes[to]
	waitStart := sc.P.Now()
	ib.credits.Acquire(sc.P)
	n.fab.AddXmitWait(sc.Node, sc.P.Now()-waitStart)
	n.fab.Send(sc.P, sc.Node, ib.node, wireBytes(m))
	ib.store.Put(sc.P, m)
}

// Credits reports endpoint `to`'s remaining window permits without sending
// — the hybrid routing policy's direct-path backpressure signal.
func (n *Network) Credits(to int) int { return n.inboxes[to].credits.Available() }

// Inbox returns endpoint i's receive side.
func (n *Network) Inbox(i int) rt.Inbox { return recvBox{n.inboxes[i]} }

type recvBox struct{ ib *inbox }

// Recv takes the next message and releases its window credit.
func (r recvBox) Recv(c rt.Ctx) (rt.Message, bool) {
	sc := proc(c)
	m, ok := r.ib.store.Get(sc.P)
	if ok {
		r.ib.credits.Release()
	}
	return m, ok
}

// Store adapts the PFS model to the rt.BlockStore interface. The client node
// for each operation comes from the calling thread's context, so one Store
// serves all ranks.
type Store struct {
	FS *pfs.PFS
	// Prefix namespaces this workflow's spill files.
	Prefix string
}

// NewStore wraps a simulated parallel file system.
func NewStore(fs *pfs.PFS, prefix string) *Store { return &Store{FS: fs, Prefix: prefix} }

func (s *Store) name(id block.ID) string { return s.Prefix + "/" + id.String() }

// WriteBlock spills the block to the PFS model and marks it OnDisk. A block
// carrying a reduction encoding charges its encoded size: spilling never
// re-inflates, matching the real store.
func (s *Store) WriteBlock(c rt.Ctx, b *block.Block) error {
	sc := proc(c)
	s.FS.Write(sc.P, sc.Node, s.name(b.ID), 0, b.WireBytes())
	b.OnDisk = true
	return nil
}

// ReadBlock loads a spilled block's size and identity (contents are
// symbolic in simulation).
func (s *Store) ReadBlock(c rt.Ctx, id block.ID, bytes int64) (*block.Block, error) {
	sc := proc(c)
	s.FS.Read(sc.P, sc.Node, s.name(id), 0, bytes)
	b := block.NewSized(id, 0, bytes)
	b.OnDisk = true
	return b, nil
}

// RemoveBlock is metadata-only in the simulated store.
func (s *Store) RemoveBlock(c rt.Ctx, id block.ID) error { return nil }

var (
	_ rt.Env             = (*Env)(nil)
	_ rt.CreditTransport = (*Network)(nil)
	_ rt.BlockStore      = (*Store)(nil)
)
