// Package rt defines the platform abstraction beneath the Zipper runtime.
// The runtime's producer and consumer modules are written once against these
// interfaces and run on two platforms:
//
//   - realenv: goroutines, sync primitives, Go channels as the low-latency
//     network, and a spool directory as the parallel file system — for
//     coupling real applications in process (the examples).
//   - simenv: the discrete-event engine with the fabric and PFS models — for
//     re-running the paper's cluster-scale experiments in virtual time.
//
// Everything that blocks takes a Ctx so the simulated platform can park the
// calling virtual process.
package rt

import (
	"time"

	"zipper/internal/block"
)

// Ctx is a per-thread handle. Real threads share a trivial implementation;
// simulated threads wrap their engine process.
type Ctx interface {
	// Now reports elapsed time since the platform epoch. This is the only
	// clock the runtime reads: the flow-control plane's EWMA gauges and the
	// adaptive routing controller are driven entirely by these timestamps
	// (virtual time under simenv), never by a wall clock of their own, so
	// control behavior is identical — and deterministic — on both platforms.
	Now() time.Duration
	// Sleep pauses the calling thread for d.
	Sleep(d time.Duration)
}

// Env spawns threads and creates synchronization primitives.
type Env interface {
	// Go starts a runtime thread. In simulation this creates an engine
	// process; name appears in deadlock reports and traces.
	Go(name string, fn func(Ctx))
	// NewLock creates a mutual-exclusion lock.
	NewLock(name string) Lock
	// CopyDelay charges the cost of staging bytes through memory. The real
	// platform does nothing (the copy itself costs the time); the simulated
	// platform sleeps bytes/memory-bandwidth.
	CopyDelay(c Ctx, bytes int64)
}

// Lock is a mutual-exclusion lock that can mint condition variables.
type Lock interface {
	Lock(Ctx)
	Unlock(Ctx)
	NewCond(name string) Cond
}

// Cond is a condition variable bound to the Lock that created it. As with
// sync.Cond, Wait releases the lock, suspends, and re-acquires; callers must
// re-check predicates in a loop.
type Cond interface {
	Wait(Ctx)
	Signal()
	Broadcast()
}

// DiskRef announces one block the writer thread spilled to the parallel
// file system: its identity plus the size the reader must fetch.
type DiskRef struct {
	ID    block.ID
	Bytes int64
}

// Message is the "mixed message" of the paper's producer runtime (§4.2),
// extended with batching: zero or more data blocks drained from the producer
// buffer in one send, plus the list of block IDs the work-stealing writer
// spilled to the parallel file system since the last send, or an end-of-
// stream marker. Batching amortizes the per-message overhead of the
// fine-grain protocol (header, window credit, send call) without giving up
// fine-grain pipelining: a block still leaves as soon as the sender thread
// gets to it, it just shares the wire trip with whatever else is queued.
type Message struct {
	From   int // producer rank
	Blocks []*block.Block
	Disk   []DiskRef
	Fin    bool // the producer has sent everything
	// FinBlocks and FinDisk, valid on a Fin, declare the producer's lifetime
	// totals: blocks that left via a network path (direct or staging relay)
	// and disk-ref announcements for blocks spilled through the file system.
	// They make stream termination counted rather than ordered: the consumer
	// waits until the declared deliveries have all arrived, so relayed blocks
	// still in flight behind a membership change of an elastic stager pool
	// can trail the Fin without being lost. A fixed pool satisfies the counts
	// exactly when the last Fin arrives, so declared Fins change nothing
	// there.
	FinBlocks int64
	FinDisk   int64
	// Lost counts relayed blocks a stager had to drop after an unrecoverable
	// spill-store failure (the failure itself is reported by Stager.Err and
	// the run must be treated as lost). The consumer counts Lost against the
	// Fins' declared totals so even a lossy stream still terminates instead
	// of waiting forever for blocks that can never arrive.
	Lost int64
	// Retire tells a pool-managed stager endpoint to stop admitting, flush
	// its queue and spill partition to the consumers, and exit. The elastic
	// scaler sends it only after the pool membership change has quiesced, so
	// it is the last message the endpoint ever receives.
	Retire bool
	// Dest is the final consumer endpoint of a message routed through an
	// in-transit staging relay: the producer addresses the send to the
	// stager's endpoint and sets Dest to the consumer the stager must
	// forward to. Endpoints that consume messages directly ignore it.
	Dest int
}

// PayloadBytes sums the data-block payload sizes carried by the message.
func (m Message) PayloadBytes() int64 {
	var n int64
	for _, b := range m.Blocks {
		n += b.Bytes
	}
	return n
}

// WireBytes sums the payload bytes the message actually puts on the wire:
// encoded sizes for blocks carrying a reduction encoding, raw sizes for the
// rest. The simulated fabric charges this, so a reduced relay is cheaper in
// virtual time exactly as it is in real bytes.
func (m Message) WireBytes() int64 {
	var n int64
	for _, b := range m.Blocks {
		n += b.WireBytes()
	}
	return n
}

// Transport sends mixed messages to consumer endpoints over the low-latency
// network path. Send blocks while the destination's receive window is full —
// the backpressure that ultimately stalls producers and triggers stealing.
// With a staging tier the same address space carries stager endpoints after
// the consumer endpoints (addresses Q..Q+S-1).
type Transport interface {
	Send(c Ctx, to int, m Message)
}

// CreditTransport is optionally implemented by transports that can report
// the remaining receive-window credit of an endpoint without sending. The
// producer's hybrid routing policy uses it as its first live-backpressure
// signal: credit available means the direct path will not block. Transports
// without credit visibility (for example TCP across processes) simply do not
// implement it and the policy falls back to local signals.
type CreditTransport interface {
	Transport
	// Credits reports how many messages endpoint `to` can accept right now.
	Credits(to int) int
}

// PortTransport is optionally implemented by transports whose hot path
// benefits from a per-sender lane — the realenv SPSC ring network, where
// each sending thread owns private wait-free rings into the endpoints it
// addresses. Port returns a Transport (usually also a CreditTransport)
// bound to exactly one sending thread; transports without per-sender state
// return a handle that is safe to share. PortOf is the generic accessor.
type PortTransport interface {
	Transport
	Port() Transport
}

// PortOf returns a per-sender transport handle for tr: its minted Port when
// tr is a PortTransport, otherwise tr itself.
func PortOf(tr Transport) Transport {
	if pt, ok := tr.(PortTransport); ok {
		return pt.Port()
	}
	return tr
}

// Inbox is a consumer's receive endpoint.
type Inbox interface {
	// Recv blocks for the next message; ok=false means the inbox was closed.
	Recv(c Ctx) (Message, bool)
}

// BlockStore is the parallel-file-system path for spilling, preserving, and
// re-reading blocks.
type BlockStore interface {
	// WriteBlock persists a block.
	WriteBlock(c Ctx, b *block.Block) error
	// ReadBlock loads a previously written block. bytes is the expected
	// payload size (needed by the simulated store, which keeps no data).
	ReadBlock(c Ctx, id block.ID, bytes int64) (*block.Block, error)
	// RemoveBlock deletes a spilled block (No-Preserve mode reclamation).
	RemoveBlock(c Ctx, id block.ID) error
}
