package pfs

import (
	"fmt"
	"testing"
	"time"

	"zipper/internal/fabric"
	"zipper/internal/sim"
)

func testRig() (*sim.Engine, *fabric.Fabric, *PFS) {
	e := sim.New()
	f := fabric.New(e, fabric.Config{
		Nodes:         10,
		NodesPerLeaf:  5,
		LinkBandwidth: 1e9,
		LinkLatency:   time.Microsecond,
	})
	p := New(e, f, Config{
		OSTNodes:     []fabric.NodeID{8, 9},
		MDSNode:      7,
		OSTBandwidth: 5e8, // disk slower than the network
		StripeSize:   1 << 20,
	})
	return e, f, p
}

func TestWriteThenRead(t *testing.T) {
	e, _, p := testRig()
	var wrote, read time.Duration
	e.Spawn("client", func(proc *sim.Proc) {
		p.Create(proc, "f")
		wrote = p.Write(proc, 0, "f", 0, 4<<20)
		read = p.Read(proc, 0, "f", 0, 4<<20)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if p.Size("f") != 4<<20 {
		t.Fatalf("file size = %d, want %d", p.Size("f"), 4<<20)
	}
	// Disk at 0.5 GB/s bounds both ops: ≥ 8.4ms for 4 MiB.
	min := time.Duration(float64(4<<20) / 5e8 * float64(time.Second))
	if wrote < min || read < min {
		t.Fatalf("write=%v read=%v, want ≥ %v (disk-bound)", wrote, read, min)
	}
}

func TestReadBeyondExtentPanics(t *testing.T) {
	e, _, p := testRig()
	e.Spawn("client", func(proc *sim.Proc) {
		p.Create(proc, "f")
		p.Write(proc, 0, "f", 0, 1024)
		p.Read(proc, 0, "f", 0, 2048)
	})
	if err := e.Run(); err == nil {
		t.Fatal("read beyond extent did not fail")
	}
}

func TestStat(t *testing.T) {
	e, _, p := testRig()
	e.Spawn("client", func(proc *sim.Proc) {
		if _, ok := p.Stat(proc, 0, "missing"); ok {
			t.Error("Stat of missing file reported ok")
		}
		p.Create(proc, "f")
		p.Write(proc, 0, "f", 0, 3000)
		if size, ok := p.Stat(proc, 0, "f"); !ok || size != 3000 {
			t.Errorf("Stat = %d,%v want 3000,true", size, ok)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStripingSpreadsAcrossOSTs(t *testing.T) {
	// Two clients writing distinct files should go faster than 1 client
	// writing both sequentially, because stripes spread over 2 OSTs.
	seq := func() time.Duration {
		e, _, p := testRig()
		e.Spawn("c", func(proc *sim.Proc) {
			p.Write(proc, 0, "a", 0, 8<<20)
			p.Write(proc, 0, "b", 0, 8<<20)
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Now()
	}()
	par := func() time.Duration {
		e, _, p := testRig()
		e.Spawn("c0", func(proc *sim.Proc) { p.Write(proc, 0, "a", 0, 8<<20) })
		e.Spawn("c1", func(proc *sim.Proc) { p.Write(proc, 1, "b", 0, 8<<20) })
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Now()
	}()
	if par >= seq {
		t.Fatalf("parallel writes (%v) not faster than sequential (%v)", par, seq)
	}
}

func TestOSTContention(t *testing.T) {
	// Many clients writing simultaneously are limited by aggregate OST
	// bandwidth (2 × 0.5 GB/s), not by their network ports (1 GB/s each).
	e, _, p := testRig()
	const size = 8 << 20
	for i := 0; i < 4; i++ {
		i := i
		e.Spawn(fmt.Sprintf("c%d", i), func(proc *sim.Proc) {
			p.Write(proc, fabric.NodeID(i), fmt.Sprintf("f%d", i), 0, size)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// 32 MiB through 1 GB/s aggregate disk ⇒ ≥ 33ms.
	min := time.Duration(float64(4*size) / 1e9 * float64(time.Second))
	if e.Now() < min {
		t.Fatalf("4-client write finished in %v, want ≥ %v (disk-bound)", e.Now(), min)
	}
}

func TestBackgroundLoadSlowsIO(t *testing.T) {
	run := func(load float64) time.Duration {
		e := sim.New()
		f := fabric.New(e, fabric.Config{Nodes: 4, NodesPerLeaf: 4, LinkBandwidth: 1e9, LinkLatency: time.Microsecond})
		p := New(e, f, Config{
			OSTNodes:       []fabric.NodeID{3},
			OSTBandwidth:   5e8,
			BackgroundLoad: load,
			Seed:           42,
		})
		e.Spawn("c", func(proc *sim.Proc) { p.Write(proc, 0, "f", 0, 16<<20) })
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Now()
	}
	quiet, busy := run(0), run(0.6)
	if busy <= quiet {
		t.Fatalf("background load had no effect: quiet=%v busy=%v", quiet, busy)
	}
}

func TestBackgroundLoadDeterministic(t *testing.T) {
	run := func() time.Duration {
		e := sim.New()
		f := fabric.New(e, fabric.Config{Nodes: 4, NodesPerLeaf: 4, LinkBandwidth: 1e9, LinkLatency: time.Microsecond})
		p := New(e, f, Config{OSTNodes: []fabric.NodeID{3}, OSTBandwidth: 5e8, BackgroundLoad: 0.5, Seed: 7})
		e.Spawn("c", func(proc *sim.Proc) { p.Write(proc, 0, "f", 0, 8<<20) })
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("background load not deterministic: %v vs %v", a, b)
	}
}

func TestWriteExtendsAndOverwrites(t *testing.T) {
	e, _, p := testRig()
	e.Spawn("c", func(proc *sim.Proc) {
		p.Write(proc, 0, "f", 0, 1000)
		p.Write(proc, 0, "f", 500, 1000) // overlap + extend
		if p.Size("f") != 1500 {
			t.Errorf("size = %d, want 1500", p.Size("f"))
		}
		p.Write(proc, 0, "f", 100, 10) // interior overwrite
		if p.Size("f") != 1500 {
			t.Errorf("size after interior write = %d, want 1500", p.Size("f"))
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
