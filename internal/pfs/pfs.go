// Package pfs models a Lustre-like parallel file system for the
// discrete-event simulator: a metadata server (MDS) plus a set of object
// storage targets (OSTs) attached to fabric nodes. Files are striped
// round-robin across OSTs; every data transfer between a client and an OST
// traverses the shared fabric (Bridges and Stampede2 do not segregate I/O
// traffic), and then contends for the OST's disk service.
//
// The model supports an optional deterministic background-load factor that
// reproduces the "file system shared by many other users" variability the
// paper observes for MPI-IO (Figure 2).
package pfs

import (
	"fmt"
	"math/rand"
	"time"

	"zipper/internal/fabric"
	"zipper/internal/sim"
)

// Config describes the file system.
type Config struct {
	// OSTNodes are the fabric nodes that host object storage targets.
	OSTNodes []fabric.NodeID
	// MDSNode is the fabric node hosting the metadata server.
	MDSNode fabric.NodeID
	// OSTBandwidth is each OST's disk bandwidth in bytes/second.
	OSTBandwidth float64
	// StripeSize is the striping unit in bytes. Zero selects 1 MiB.
	StripeSize int64
	// MetadataLatency is the MDS service time per metadata operation.
	// Zero selects 200µs.
	MetadataLatency time.Duration
	// BackgroundLoad in [0,1) is the average fraction of OST service capacity
	// consumed by other users. Sampled deterministically from Seed.
	BackgroundLoad float64
	// Seed drives the deterministic background-load jitter.
	Seed int64
}

type ost struct {
	node fabric.NodeID
	disk *sim.Mutex
}

// file tracks the extent of data written so far; contents are symbolic.
type file struct {
	size int64
}

// PFS is the simulated parallel file system.
type PFS struct {
	eng    *sim.Engine
	fab    *fabric.Fabric
	cfg    Config
	mds    *sim.Mutex
	osts   []*ost
	files  map[string]*file
	rng    *rand.Rand
	reads  int64
	writes int64
}

// New builds a file system over the fabric. At least one OST is required.
func New(e *sim.Engine, fab *fabric.Fabric, cfg Config) *PFS {
	if len(cfg.OSTNodes) == 0 {
		panic("pfs: at least one OST node required")
	}
	if cfg.OSTBandwidth <= 0 {
		panic("pfs: OSTBandwidth must be positive")
	}
	if cfg.StripeSize <= 0 {
		cfg.StripeSize = 1 << 20
	}
	if cfg.MetadataLatency <= 0 {
		cfg.MetadataLatency = 200 * time.Microsecond
	}
	p := &PFS{
		eng:   e,
		fab:   fab,
		cfg:   cfg,
		mds:   sim.NewMutex(e, "pfs.mds"),
		files: make(map[string]*file),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
	for i, n := range cfg.OSTNodes {
		p.osts = append(p.osts, &ost{
			node: n,
			disk: sim.NewMutex(e, fmt.Sprintf("pfs.ost%d", i)),
		})
	}
	return p
}

// Config returns the configuration with defaults resolved.
func (p *PFS) Config() Config { return p.cfg }

// Stats reports cumulative completed read and write operations.
func (p *PFS) Stats() (reads, writes int64) { return p.reads, p.writes }

// metadataOp serializes through the MDS.
func (p *PFS) metadataOp(proc *sim.Proc) {
	p.mds.Lock(proc)
	proc.Delay(p.cfg.MetadataLatency)
	p.mds.Unlock(proc)
}

// serviceTime is the disk time for one stripe chunk, inflated by the
// deterministic background load sample.
func (p *PFS) serviceTime(bytes int64) time.Duration {
	base := float64(bytes) / p.cfg.OSTBandwidth
	if p.cfg.BackgroundLoad > 0 {
		// Other users consume a random fraction around the configured mean,
		// slowing this request proportionally.
		load := p.cfg.BackgroundLoad * (0.5 + p.rng.Float64())
		if load > 0.95 {
			load = 0.95
		}
		base /= 1 - load
	}
	return time.Duration(base * float64(time.Second))
}

// stripeTargets maps a byte range of a named file onto OST chunk writes.
type chunk struct {
	ost   *ost
	bytes int64
}

func (p *PFS) stripes(name string, offset, size int64) []chunk {
	var out []chunk
	// Deterministic per-file starting OST so load spreads across files.
	h := int64(0)
	for _, c := range name {
		h = h*131 + int64(c)
	}
	if h < 0 {
		h = -h
	}
	for size > 0 {
		idx := (h + offset/p.cfg.StripeSize) % int64(len(p.osts))
		inStripe := p.cfg.StripeSize - offset%p.cfg.StripeSize
		n := size
		if n > inStripe {
			n = inStripe
		}
		out = append(out, chunk{ost: p.osts[idx], bytes: n})
		offset += n
		size -= n
	}
	return out
}

// Create registers a file (one MDS operation). Creating an existing file
// truncates it.
func (p *PFS) Create(proc *sim.Proc, name string) {
	p.metadataOp(proc)
	p.files[name] = &file{}
}

// Write transfers size bytes from client to the file at offset: a fabric
// transfer to each target OST followed by disk service. It returns the
// elapsed time. A missing file is created implicitly; concurrent implicit
// creates of the same file pay the metadata cost once each but never
// truncate one another's data.
func (p *PFS) Write(proc *sim.Proc, client fabric.NodeID, name string, offset, size int64) time.Duration {
	start := proc.Now()
	f := p.files[name]
	if f == nil {
		p.metadataOp(proc)
		// Re-check after blocking in the MDS queue: another writer may have
		// created the file meanwhile, and replacing its entry would discard
		// that writer's extent updates.
		f = p.files[name]
		if f == nil {
			f = &file{}
			p.files[name] = f
		}
	}
	for _, c := range p.stripes(name, offset, size) {
		// The client RPC window paces the wire transfer at the OST's disk
		// drain rate, so spill traffic arrives at the storage nodes without
		// piling up in the fabric.
		c.ost.disk.Lock(proc)
		p.fab.Send(proc, client, c.ost.node, c.bytes)
		proc.Delay(p.serviceTime(c.bytes))
		c.ost.disk.Unlock(proc)
	}
	if end := offset + size; end > f.size {
		f.size = end
	}
	p.writes++
	return proc.Now() - start
}

// Read transfers size bytes of the file from its OSTs to the client. Reading
// past the written extent panics — it indicates a workflow ordering bug.
func (p *PFS) Read(proc *sim.Proc, client fabric.NodeID, name string, offset, size int64) time.Duration {
	start := proc.Now()
	f := p.files[name]
	if f == nil || offset+size > f.size {
		panic(fmt.Sprintf("pfs: read beyond written extent of %q (have %d, want [%d,%d))",
			name, p.Size(name), offset, offset+size))
	}
	for _, c := range p.stripes(name, offset, size) {
		// As with Write, the OST's service rate paces the wire transfer, so
		// read-back traffic trickles into the client instead of bursting.
		c.ost.disk.Lock(proc)
		proc.Delay(p.serviceTime(c.bytes))
		p.fab.Send(proc, c.ost.node, client, c.bytes)
		c.ost.disk.Unlock(proc)
	}
	p.reads++
	return proc.Now() - start
}

// Stat returns the file's current size after an MDS round trip; ok reports
// whether the file exists. It is the polling primitive consumers use to
// discover new data in file-based coupling.
func (p *PFS) Stat(proc *sim.Proc, client fabric.NodeID, name string) (size int64, ok bool) {
	p.metadataOp(proc)
	f := p.files[name]
	if f == nil {
		return 0, false
	}
	return f.size, true
}

// Size reports a file's size without simulating any cost (for assertions).
func (p *PFS) Size(name string) int64 {
	if f := p.files[name]; f != nil {
		return f.size
	}
	return 0
}
