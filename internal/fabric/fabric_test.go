package fabric

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"zipper/internal/sim"
)

func testConfig() Config {
	return Config{
		Nodes:         8,
		NodesPerLeaf:  4,
		LinkBandwidth: 1e9, // 1 GB/s for easy arithmetic
		LinkLatency:   time.Microsecond,
		MTU:           1 << 20,
	}
}

func TestTransferTimeUncontended(t *testing.T) {
	e := sim.New()
	f := New(e, testConfig())
	var dur time.Duration
	e.Spawn("s", func(p *sim.Proc) {
		dur = f.Send(p, 0, 1, 1<<20) // 1 MiB at 1 GB/s ≈ 1.048576 ms + 2 hops
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := time.Duration(float64(1<<20)/1e9*float64(time.Second)) + 2*time.Microsecond
	if dur != want {
		t.Fatalf("transfer took %v, want %v", dur, want)
	}
}

func TestInterLeafExtraHops(t *testing.T) {
	e := sim.New()
	f := New(e, testConfig())
	var intra, inter time.Duration
	e.Spawn("s", func(p *sim.Proc) {
		intra = f.Send(p, 0, 1, 1000) // same leaf (nodes 0-3)
		inter = f.Send(p, 0, 5, 1000) // different leaf
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if inter <= intra {
		t.Fatalf("inter-leaf %v not slower than intra-leaf %v", inter, intra)
	}
	if diff := inter - intra; diff != 2*time.Microsecond {
		t.Fatalf("hop difference %v, want 2µs", diff)
	}
}

func TestIntraNodeBypassesNetwork(t *testing.T) {
	e := sim.New()
	f := New(e, testConfig())
	e.Spawn("s", func(p *sim.Proc) {
		f.Send(p, 2, 2, 1<<20)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if c := f.NodeCounters(2); c.XmitData != 0 || c.RcvData != 0 {
		t.Fatalf("intra-node send touched the network: %+v", c)
	}
}

func TestFanInCongestionAccruesXmitWait(t *testing.T) {
	e := sim.New()
	f := New(e, testConfig())
	const size = 4 << 20
	// Nodes 0,1,2 all send to node 3 simultaneously: two of them must stall.
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn(fmt.Sprintf("s%d", i), func(p *sim.Proc) {
			f.Send(p, NodeID(i), 3, size)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	var wait int64
	for i := 0; i < 3; i++ {
		wait += f.NodeCounters(NodeID(i)).XmitWait
	}
	if wait == 0 {
		t.Fatal("fan-in congestion produced no XmitWait")
	}
	if c := f.NodeCounters(3); c.RcvData != 3*size {
		t.Fatalf("receiver got %d bytes, want %d", c.RcvData, 3*size)
	}
	// Serialized at the receiver: total time ≈ 3 × transfer time.
	if got := e.Now(); got < 3*time.Duration(float64(size)/1e9*float64(time.Second)) {
		t.Fatalf("fan-in finished too fast: %v", got)
	}
}

func TestNoCongestionNoXmitWait(t *testing.T) {
	e := sim.New()
	f := New(e, testConfig())
	// Disjoint pairs: no shared ports, no core oversubscription (default 1).
	e.Spawn("a", func(p *sim.Proc) { f.Send(p, 0, 1, 1<<20) })
	e.Spawn("b", func(p *sim.Proc) { f.Send(p, 2, 3, 1<<20) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if w := f.NodeCounters(NodeID(i)).XmitWait; w != 0 {
			t.Fatalf("node %d XmitWait = %d, want 0", i, w)
		}
	}
}

func TestSmallMessageInterleavesWithLargeBurst(t *testing.T) {
	// A small message to an uncontended destination should not wait for the
	// whole large burst, only for at most one MTU chunk of it.
	cfg := testConfig()
	cfg.MTU = 256 << 10
	e := sim.New()
	f := New(e, cfg)
	var smallDone time.Duration
	e.Spawn("big", func(p *sim.Proc) {
		f.Send(p, 0, 1, 64<<20) // long burst from node 0
	})
	e.Spawn("small", func(p *sim.Proc) {
		p.Delay(time.Millisecond)
		f.Send(p, 0, 2, 4<<10) // same egress port, different destination
		smallDone = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	burstTime := time.Duration(float64(64<<20) / 1e9 * float64(time.Second))
	if smallDone >= burstTime {
		t.Fatalf("small message waited for the entire burst (done at %v, burst %v)", smallDone, burstTime)
	}
}

func TestCoreOversubscriptionLimitsThroughput(t *testing.T) {
	run := func(oversub float64) time.Duration {
		cfg := testConfig()
		cfg.CoreOversubscription = oversub
		e := sim.New()
		f := New(e, cfg)
		// All 4 nodes of leaf 0 send cross-leaf to distinct receivers.
		for i := 0; i < 4; i++ {
			i := i
			e.Spawn(fmt.Sprintf("s%d", i), func(p *sim.Proc) {
				f.Send(p, NodeID(i), NodeID(4+i), 8<<20)
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Now()
	}
	fast := run(1)
	slow := run(4) // only 1 core slot for 4 flows
	if slow < 3*fast {
		t.Fatalf("oversubscription 4: %v, not ≈4× slower than %v", slow, fast)
	}
}

func TestZeroByteMessageCostsLatencyOnly(t *testing.T) {
	e := sim.New()
	f := New(e, testConfig())
	var dur time.Duration
	e.Spawn("s", func(p *sim.Proc) {
		dur = f.Send(p, 0, 1, 0)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if dur != 2*time.Microsecond {
		t.Fatalf("zero-byte send took %v, want 2µs", dur)
	}
}

// TestByteConservation property: whatever mix of transfers runs, transmitted
// bytes equal received bytes and match the requested totals.
func TestByteConservation(t *testing.T) {
	prop := func(seeds []uint16) bool {
		if len(seeds) == 0 {
			return true
		}
		if len(seeds) > 12 {
			seeds = seeds[:12]
		}
		e := sim.New()
		f := New(e, testConfig())
		var want int64
		for i, s := range seeds {
			from := NodeID(int(s) % 8)
			to := NodeID(int(s/8) % 8)
			size := int64(s%977) * 1024
			if from != to {
				want += size
			}
			i := i
			e.Spawn(fmt.Sprintf("s%d", i), func(p *sim.Proc) {
				f.Send(p, from, to, size)
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		tot := f.TotalCounters()
		return tot.XmitData == want && tot.RcvData == want && tot.XmitPkts == tot.RcvPkts
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestResetCounters(t *testing.T) {
	e := sim.New()
	f := New(e, testConfig())
	e.Spawn("s", func(p *sim.Proc) { f.Send(p, 0, 1, 1024) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	f.ResetCounters()
	if tot := f.TotalCounters(); tot != (Counters{}) {
		t.Fatalf("counters after reset: %+v", tot)
	}
}

func BenchmarkSend1MiB(b *testing.B) {
	e := sim.New()
	f := New(e, testConfig())
	e.Spawn("s", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			f.Send(p, 0, 1, 1<<20)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
