// Package fabric models an Omni-Path-like HPC interconnect for the
// discrete-event simulator: a two-level fat tree in which every compute node
// has one full-duplex port to a leaf switch and leaf switches connect through
// a core layer with configurable oversubscription.
//
// The model captures the phenomena the paper measures:
//
//   - Fan-in congestion: a transfer holds the sender's egress port while it
//     waits for the receiver's ingress port, so many-to-few traffic patterns
//     stall senders (head-of-line blocking), exactly the condition the OPA
//     XmitWait hardware counter reports.
//   - Interference: all traffic — application messages, staging traffic, and
//     parallel-file-system I/O — shares the same ports and core capacity,
//     mirroring Bridges and Stampede2, which do not segregate I/O traffic
//     (paper §4.3).
//   - Message granularity: ports arbitrate at MTU-chunk granularity, so a
//     burst of large messages delays small latency-sensitive messages (the
//     MPI_Sendrecv inflation of Figures 5, 6, 17, 19), while fine-grain
//     blocks interleave.
//
// Counters: per node, XmitData/XmitPkts/RcvData/RcvPkts in bytes/packets and
// XmitWait in FLIT-times (64-bit FLITs, paper §6.2.1), accumulated whenever
// the node has data queued at its egress port but cannot transmit because
// downstream capacity (core slot or receiver ingress) is unavailable.
package fabric

import (
	"fmt"
	"math"
	"time"

	"zipper/internal/sim"
)

// NodeID identifies a node within a Fabric.
type NodeID int

// Config describes the modelled interconnect.
type Config struct {
	// Nodes is the total number of nodes (compute + service).
	Nodes int
	// NodesPerLeaf is the number of node ports per leaf switch.
	NodesPerLeaf int
	// LinkBandwidth is the per-port bandwidth in bytes/second.
	LinkBandwidth float64
	// LinkLatency is the one-hop wire+switch latency.
	LinkLatency time.Duration
	// CoreOversubscription is the leaf-to-core taper (2 means half the leaf's
	// aggregate node bandwidth is available towards the core). Values < 1 are
	// treated as 1.
	CoreOversubscription float64
	// MTU is the arbitration granularity in bytes: transfers are chunked so
	// that a port is never held longer than MTU/LinkBandwidth at a time.
	// Zero selects the default of 1 MiB.
	MTU int64
	// FlitBytes is the FLIT size used to convert XmitWait durations into
	// FLIT-time counts. Zero selects the Omni-Path value of 8 bytes.
	FlitBytes int
	// CongestionPenalty models the goodput a port loses to credit-loop
	// stalls and head-of-line blocking when it is driven near saturation
	// (incast). With recent utilization u of the destination port, each
	// chunk's wire time is multiplied by
	//
	//	1 + CongestionPenalty × min(u/(1.05-u), CongestionCap)
	//
	// so lightly loaded ports run at line rate while sustained
	// oversubscription degrades well below it — the behaviour §6.2.1
	// measures with the XmitWait counter. Spreading traffic in time
	// (fine-grain asynchronous blocks) or across destinations (the
	// dual-channel file-system path) lowers u and recovers the lost
	// efficiency. Zero disables the effect.
	CongestionPenalty float64
	// CongestionCap bounds the utilization pressure term. Zero selects 12.
	CongestionCap float64
	// CongestionWindow is the time constant of the exponentially decayed
	// utilization estimate. Zero selects 25ms.
	CongestionWindow time.Duration
}

// Counters mirrors the per-port OPA counters the paper samples with PAPI.
type Counters struct {
	XmitData int64 // bytes transmitted
	XmitPkts int64 // packets (MTU chunks) transmitted
	RcvData  int64 // bytes received
	RcvPkts  int64 // packets received
	XmitWait int64 // FLIT-times the port had data but could not transmit
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.XmitData += other.XmitData
	c.XmitPkts += other.XmitPkts
	c.RcvData += other.RcvData
	c.RcvPkts += other.RcvPkts
	c.XmitWait += other.XmitWait
}

type node struct {
	id      NodeID
	leaf    int
	egress  *sim.Mutex
	ingress *sim.Mutex
	ctr     Counters
	// Exponentially decayed recent busy time of the ingress port, for the
	// congestion model's utilization estimate.
	loadAt   time.Duration
	loadBusy time.Duration
}

// utilization returns the decayed recent utilization of the ingress port in
// [0, 1] and refreshes the decay to time now.
func (n *node) utilization(now, window time.Duration) float64 {
	if now > n.loadAt {
		decay := math.Exp(-float64(now-n.loadAt) / float64(window))
		n.loadBusy = time.Duration(float64(n.loadBusy) * decay)
		n.loadAt = now
	}
	u := float64(n.loadBusy) / float64(window)
	if u > 1 {
		u = 1
	}
	return u
}

type leaf struct {
	uplink *sim.Semaphore // core-capacity slots at full link rate
}

// Fabric is the simulated interconnect.
type Fabric struct {
	eng    *sim.Engine
	cfg    Config
	nodes  []*node
	leaves []*leaf
}

// New builds a fabric over the given engine.
func New(e *sim.Engine, cfg Config) *Fabric {
	if cfg.Nodes <= 0 {
		panic("fabric: Nodes must be positive")
	}
	if cfg.NodesPerLeaf <= 0 {
		cfg.NodesPerLeaf = 42 // OPA leaf switch port count (paper §6.2.1)
	}
	if cfg.LinkBandwidth <= 0 {
		panic("fabric: LinkBandwidth must be positive")
	}
	if cfg.MTU <= 0 {
		cfg.MTU = 1 << 20
	}
	if cfg.FlitBytes <= 0 {
		cfg.FlitBytes = 8
	}
	if cfg.CoreOversubscription < 1 {
		cfg.CoreOversubscription = 1
	}
	f := &Fabric{eng: e, cfg: cfg}
	nLeaves := (cfg.Nodes + cfg.NodesPerLeaf - 1) / cfg.NodesPerLeaf
	for l := 0; l < nLeaves; l++ {
		slots := int(float64(cfg.NodesPerLeaf) / cfg.CoreOversubscription)
		if slots < 1 {
			slots = 1
		}
		f.leaves = append(f.leaves, &leaf{
			uplink: sim.NewSemaphore(e, fmt.Sprintf("leaf%d.uplink", l), slots),
		})
	}
	for i := 0; i < cfg.Nodes; i++ {
		f.nodes = append(f.nodes, &node{
			id:      NodeID(i),
			leaf:    i / cfg.NodesPerLeaf,
			egress:  sim.NewMutex(e, fmt.Sprintf("node%d.egress", i)),
			ingress: sim.NewMutex(e, fmt.Sprintf("node%d.ingress", i)),
		})
	}
	return f
}

// Config returns the fabric configuration (defaults resolved).
func (f *Fabric) Config() Config { return f.cfg }

// NumNodes reports the node count.
func (f *Fabric) NumNodes() int { return len(f.nodes) }

// Leaf reports which leaf switch a node attaches to.
func (f *Fabric) Leaf(id NodeID) int { return f.nodes[id].leaf }

// NodeCounters returns a snapshot of the per-node counters.
func (f *Fabric) NodeCounters(id NodeID) Counters { return f.nodes[id].ctr }

// TotalCounters sums counters across a set of nodes (all nodes when ids is
// empty).
func (f *Fabric) TotalCounters(ids ...NodeID) Counters {
	var t Counters
	if len(ids) == 0 {
		for _, n := range f.nodes {
			t.Add(n.ctr)
		}
		return t
	}
	for _, id := range ids {
		t.Add(f.nodes[id].ctr)
	}
	return t
}

// ResetCounters zeroes every node's counters.
func (f *Fabric) ResetCounters() {
	for _, n := range f.nodes {
		n.ctr = Counters{}
	}
}

// AddXmitWait credits additional transmit-stall time to a node, converted to
// FLIT-times. Higher layers use it when a sender holds data but cannot
// transmit for reasons the port model does not see directly (for example,
// exhausted end-to-end receive-window credits).
func (f *Fabric) AddXmitWait(id NodeID, stall time.Duration) {
	if stall > 0 {
		f.nodes[id].ctr.XmitWait += f.flits(stall)
	}
}

// flits converts a stall duration into FLIT-times at link rate.
func (f *Fabric) flits(d time.Duration) int64 {
	return int64(d.Seconds() * f.cfg.LinkBandwidth / float64(f.cfg.FlitBytes))
}

// transmitTime is the wire time for a chunk plus per-hop latency.
func (f *Fabric) transmitTime(bytes int64, hops int) time.Duration {
	wire := time.Duration(float64(bytes) / f.cfg.LinkBandwidth * float64(time.Second))
	return wire + time.Duration(hops)*f.cfg.LinkLatency
}

// Send performs a blocking transfer of size bytes from node `from` to node
// `to`, contending for ports and core capacity. It returns the transfer
// duration. Intra-node sends cost a fixed small shared-memory copy time and
// do not touch the network.
func (f *Fabric) Send(p *sim.Proc, from, to NodeID, bytes int64) time.Duration {
	if bytes < 0 {
		panic("fabric: negative transfer size")
	}
	start := p.Now()
	if from == to {
		// Shared-memory copy: generous memory bandwidth, no port contention.
		p.Delay(time.Duration(float64(bytes) / (8 * f.cfg.LinkBandwidth) * float64(time.Second)))
		return p.Now() - start
	}
	src, dst := f.nodes[from], f.nodes[to]
	interLeaf := src.leaf != dst.leaf
	hops := 2
	if interLeaf {
		hops = 4
	}
	remaining := bytes
	for remaining > 0 || bytes == 0 {
		chunk := remaining
		if chunk > f.cfg.MTU {
			chunk = f.cfg.MTU
		}
		src.egress.Lock(p)
		waitStart := p.Now()
		var up *sim.Semaphore
		if interLeaf {
			up = f.leaves[src.leaf].uplink
			up.Acquire(p)
		}
		dst.ingress.Lock(p)
		stall := p.Now() - waitStart
		if stall > 0 {
			src.ctr.XmitWait += f.flits(stall)
		}
		wire := f.transmitTime(chunk, hops)
		if f.cfg.CongestionPenalty > 0 {
			capr := f.cfg.CongestionCap
			if capr <= 0 {
				capr = 12
			}
			win := f.cfg.CongestionWindow
			if win <= 0 {
				win = 25 * time.Millisecond
			}
			u := dst.utilization(p.Now(), win)
			pressure := u / (1.05 - u)
			if pressure > capr {
				pressure = capr
			}
			wire = time.Duration(float64(wire) * (1 + f.cfg.CongestionPenalty*pressure))
			dst.loadBusy += wire
		}
		p.Delay(wire)
		src.ctr.XmitData += chunk
		src.ctr.XmitPkts++
		dst.ctr.RcvData += chunk
		dst.ctr.RcvPkts++
		dst.ingress.Unlock(p)
		if up != nil {
			up.Release()
		}
		src.egress.Unlock(p)
		remaining -= chunk
		if bytes == 0 {
			break
		}
	}
	return p.Now() - start
}
