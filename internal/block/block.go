// Package block defines the fine-grain data block that flows through the
// Zipper runtime. Per the paper (§4.2), a block carries all the information
// the analysis application needs to process it independently: the time step
// index, the producing process id, and its position in the global input
// domain. Blocks are the unit of pipelining, transfer, work-stealing, and
// analysis.
package block

import "fmt"

// ID uniquely identifies a block within a workflow run.
type ID struct {
	Rank int // producing process id
	Step int // simulation time step index
	Seq  int // block sequence number within (rank, step)
}

// String formats the ID for file names and diagnostics.
func (id ID) String() string { return fmt.Sprintf("b%d_s%d_q%d", id.Rank, id.Step, id.Seq) }

// Block is one fine-grain unit of simulation output.
type Block struct {
	ID ID
	// Offset is the block's position in the producer's step output, so the
	// consumer can place it in the global input domain.
	Offset int64
	// Bytes is the logical payload size. In simulation mode Data is nil and
	// Bytes carries the size; in real mode Bytes == int64(len(Data)).
	Bytes int64
	// Data is the payload (nil in simulation mode).
	Data []byte
	// OnDisk marks blocks that already reside on the parallel file system,
	// so the Preserve-mode output thread need not store them again.
	OnDisk bool
	// Enc names the reduction operator applied to the payload (0 = none; the
	// values are internal/reduce.Kind). While Enc is nonzero, Data holds the
	// encoded payload and Bytes still carries the raw (decoded) size, so
	// buffer accounting and analysis-side placement are unaffected by what
	// happened on the wire.
	Enc uint8
	// EncBytes is the encoded payload size while Enc is nonzero: the bytes
	// the block actually occupies on the wire and in a spill store. In real
	// mode EncBytes == int64(len(Data)); in simulation mode Data stays nil
	// and EncBytes carries the modeled reduced size.
	EncBytes int64
}

// WireBytes reports the bytes this block occupies on the wire: the encoded
// size while a reduction operator is applied, the raw size otherwise.
func (b *Block) WireBytes() int64 {
	if b.Enc != 0 {
		return b.EncBytes
	}
	return b.Bytes
}

// New returns a real-mode block wrapping data.
func New(id ID, offset int64, data []byte) *Block {
	return &Block{ID: id, Offset: offset, Bytes: int64(len(data)), Data: data}
}

// NewSized returns a simulation-mode block carrying only a size.
func NewSized(id ID, offset, bytes int64) *Block {
	return &Block{ID: id, Offset: offset, Bytes: bytes}
}
