package block

import "testing"

func TestPoolShiftClasses(t *testing.T) {
	cases := []struct {
		n    int
		want int
	}{
		{0, -1},
		{-5, -1},
		{1, minPoolShift},
		{1 << minPoolShift, minPoolShift},
		{1<<minPoolShift + 1, minPoolShift + 1},
		{1 << 20, 20},
		{1<<20 + 1, 21},
		{1 << maxPoolShift, maxPoolShift},
		{1<<maxPoolShift + 1, -1},
	}
	for _, c := range cases {
		if got := poolShift(c.n); got != c.want {
			t.Errorf("poolShift(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestGetPayloadSizes(t *testing.T) {
	b := GetPayload(1000)
	if len(b) != 1000 || cap(b) != 1024 {
		t.Fatalf("len=%d cap=%d, want 1000/1024", len(b), cap(b))
	}
	if b := GetPayload(0); b != nil {
		t.Fatalf("zero-length payload = %v", b)
	}
	// Oversized payloads fall back to exact allocation.
	huge := GetPayload(1<<maxPoolShift + 1)
	if len(huge) != 1<<maxPoolShift+1 {
		t.Fatalf("oversized len = %d", len(huge))
	}
}

func TestReleaseRecyclesPayload(t *testing.T) {
	// sync.Pool randomly drops items under the race detector, so demand
	// reuse at least once across several attempts rather than every time.
	reused := false
	for i := 0; i < 64 && !reused; i++ {
		b := &Block{Data: GetPayload(4096)}
		p0 := &b.Data[0]
		b.Release()
		if b.Data != nil {
			t.Fatal("Release did not clear Data")
		}
		b.Release() // double release is a no-op
		next := GetPayload(4096)
		reused = &next[0] == p0
	}
	if !reused {
		t.Fatal("released payload never reused")
	}
}

func TestReleaseForeignPayloadIsSafe(t *testing.T) {
	// A caller-allocated odd-capacity slice is dropped, not pooled: a later
	// GetPayload of its class must still return a full-capacity buffer.
	b := &Block{Data: make([]byte, 100)}
	b.Release()
	got := GetPayload(100)
	if len(got) != 100 || cap(got) < 100 {
		t.Fatalf("len=%d cap=%d after foreign release", len(got), cap(got))
	}
	var nilBlock *Block
	nilBlock.Release() // must not panic
}

func TestPooledPayloadsDoNotAlias(t *testing.T) {
	// Two live payloads of the same class must never share a backing array,
	// regardless of how many releases happened in between.
	a := GetPayload(2048)
	for i := range a {
		a[i] = 0xAA
	}
	tmp := &Block{Data: GetPayload(2048)}
	tmp.Release()
	b := GetPayload(2048)
	for i := range b {
		b[i] = 0xBB
	}
	for i := range a {
		if a[i] != 0xAA {
			t.Fatalf("live payload corrupted at %d after pool churn", i)
		}
	}
}
