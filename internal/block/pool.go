package block

import "sync"

// Payload pooling: steady-state transfer moves millions of fine-grain blocks
// whose payloads are all near the configured block size, so recycling them
// through size-class pools drops the per-block allocation cost of the hot
// path to almost nothing. Producers obtain payloads with GetPayload, hand
// them to the runtime, and consumers return them with Block.Release once the
// analysis is done with the data.
//
// Classes are powers of two from minPoolShift to maxPoolShift; requests
// outside that range fall back to plain allocation and are dropped on
// Release.
const (
	minPoolShift = 9  // 512 B
	maxPoolShift = 26 // 64 MiB
)

var payloadPools [maxPoolShift + 1]sync.Pool

// poolShift returns the size class for a payload of n bytes: the smallest
// in-range power of two ≥ n, or -1 when n is outside the pooled range.
func poolShift(n int) int {
	if n <= 0 || n > 1<<maxPoolShift {
		return -1
	}
	s := minPoolShift
	for 1<<s < n {
		s++
	}
	return s
}

// GetPayload returns a payload slice of length n, reusing a released buffer
// when one of a suitable class is available. The contents are unspecified —
// the caller is expected to overwrite all n bytes. Payloads larger than the
// pooled range are allocated directly.
func GetPayload(n int) []byte {
	if n <= 0 {
		return nil
	}
	s := poolShift(n)
	if s < 0 {
		return make([]byte, n)
	}
	if v := payloadPools[s].Get(); v != nil {
		return v.([]byte)[:n]
	}
	return make([]byte, n, 1<<s)
}

// putPayload recycles a payload whose capacity is exactly one of the pooled
// classes; anything else (caller-allocated slices of odd capacity, oversized
// buffers) is left for the garbage collector.
func putPayload(b []byte) {
	c := cap(b)
	if c < 1<<minPoolShift || c > 1<<maxPoolShift || c&(c-1) != 0 {
		return
	}
	s := 0
	for 1<<s < c {
		s++
	}
	payloadPools[s].Put(b[:c])
}

// Release returns the block's payload to the pool and clears Data. Call it
// once the analysis is completely done with the bytes: after Release the
// payload may be handed to another block at any moment, so retaining a
// reference corrupts data. Releasing a nil or already-released block is a
// no-op, as is releasing a payload that did not come from (and cannot serve)
// the pool.
func (b *Block) Release() {
	if b == nil || b.Data == nil {
		return
	}
	putPayload(b.Data)
	b.Data = nil
}
