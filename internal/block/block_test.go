package block

import "testing"

func TestIDString(t *testing.T) {
	id := ID{Rank: 7, Step: 42, Seq: 3}
	if got := id.String(); got != "b7_s42_q3" {
		t.Fatalf("String = %q", got)
	}
}

func TestNew(t *testing.T) {
	b := New(ID{Rank: 1}, 128, []byte{9, 8, 7})
	if b.Bytes != 3 || b.Offset != 128 || b.OnDisk {
		t.Fatalf("New = %+v", b)
	}
}

func TestNewSized(t *testing.T) {
	b := NewSized(ID{Step: 2}, 64, 1<<20)
	if b.Bytes != 1<<20 || b.Data != nil || b.Offset != 64 {
		t.Fatalf("NewSized = %+v", b)
	}
}

func TestIDUniqueness(t *testing.T) {
	seen := map[string]bool{}
	for r := 0; r < 3; r++ {
		for s := 0; s < 3; s++ {
			for q := 0; q < 3; q++ {
				k := ID{Rank: r, Step: s, Seq: q}.String()
				if seen[k] {
					t.Fatalf("duplicate ID string %q", k)
				}
				seen[k] = true
			}
		}
	}
}
