package model

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestTT2SIsMaxStage(t *testing.T) {
	m := Model{P: 4, Q: 2, NB: 100, Tc: 10 * time.Millisecond, Tm: 5 * time.Millisecond, Ta: 8 * time.Millisecond}
	// TComp = 10ms*100/4 = 250ms; TTransfer = 125ms; TAnalysis = 400ms.
	if got := m.TComp(); got != 250*time.Millisecond {
		t.Fatalf("TComp = %v", got)
	}
	if got := m.TAnalysis(); got != 400*time.Millisecond {
		t.Fatalf("TAnalysis = %v", got)
	}
	if got := m.TT2S(); got != 400*time.Millisecond {
		t.Fatalf("TT2S = %v", got)
	}
	if m.Bottleneck() != "analysis" {
		t.Fatalf("bottleneck = %q", m.Bottleneck())
	}
}

func TestBottleneckSwitchesWithComplexity(t *testing.T) {
	// As t_c grows (higher time complexity), the dominant stage moves from
	// transfer to simulation — the Figure 12 trend.
	base := Model{P: 8, Q: 4, NB: 1000, Tm: 4 * time.Millisecond, Ta: time.Millisecond}
	base.Tc = time.Millisecond
	if base.Bottleneck() != "transfer" {
		t.Fatalf("cheap compute should be transfer-bound, got %s", base.Bottleneck())
	}
	base.Tc = 50 * time.Millisecond
	if base.Bottleneck() != "simulation" {
		t.Fatalf("expensive compute should be simulation-bound, got %s", base.Bottleneck())
	}
}

func TestRefinedAndNonIntegratedBounds(t *testing.T) {
	prop := func(p, q uint8, nb uint16, tc, tm, ta uint16) bool {
		m := Model{
			P: int(p)%16 + 1, Q: int(q)%16 + 1, NB: int64(nb)%1000 + 10,
			Tc: time.Duration(tc) * time.Microsecond,
			Tm: time.Duration(tm) * time.Microsecond,
			Ta: time.Duration(ta) * time.Microsecond,
		}
		t2s := m.TT2S()
		// Pipelining never beats the slowest stage and never loses to the
		// fully serial execution.
		return t2s <= m.Refined() && m.Refined() <= t2s+m.Tc+m.Tm+m.Ta &&
			t2s <= m.NonIntegrated()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestValidate(t *testing.T) {
	if err := (Model{P: 0, Q: 1, NB: 1}).Validate(); err == nil {
		t.Fatal("P=0 accepted")
	}
	if err := (Model{P: 1, Q: 1, NB: 0}).Validate(); err == nil {
		t.Fatal("nb=0 accepted")
	}
	if err := (Model{P: 1, Q: 1, NB: 1}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineDiagram(t *testing.T) {
	d := PipelineDiagram(5)
	if !strings.Contains(d, "COIA") || !strings.Contains(d, "Non-integrated") {
		t.Fatalf("diagram malformed:\n%s", d)
	}
	if PipelineDiagram(0) == "" || PipelineDiagram(100) == "" {
		t.Fatal("diagram bounds not handled")
	}
}
