// Package model implements the paper's analytical performance model (§4.4):
// with P simulation cores, Q analysis cores, and nb = D/B fine-grain blocks
// of size B, the pipelined workflow's time-to-solution is
//
//	T_t2s = max(T_comp, T_transfer, T_analysis)
//
// where T_comp = t_c·nb/P, T_analysis = t_a·nb/Q, and T_transfer is bounded
// by the narrowest network resource the blocks cross. The model ignores
// pipeline start-up and drainage when nb greatly exceeds the number of
// pipeline stages; Refined adds those terms back for small nb.
package model

import (
	"fmt"
	"strings"
	"time"
)

// Model holds the paper's notation.
type Model struct {
	P  int           // simulation processor cores
	Q  int           // analysis processor cores
	NB int64         // total number of data blocks (nb = D/B)
	Tc time.Duration // time to compute one block (t_c)
	Tm time.Duration // time to transfer one block (t_m)
	Ta time.Duration // time to analyze one block (t_a)
}

// Validate reports structural problems.
func (m Model) Validate() error {
	if m.P <= 0 || m.Q <= 0 {
		return fmt.Errorf("model: P and Q must be positive (P=%d Q=%d)", m.P, m.Q)
	}
	if m.NB <= 0 {
		return fmt.Errorf("model: block count must be positive (nb=%d)", m.NB)
	}
	return nil
}

// TComp is the parallel computation time t_c·nb/P.
func (m Model) TComp() time.Duration {
	return time.Duration(float64(m.Tc) * float64(m.NB) / float64(m.P))
}

// TTransfer is the parallel transfer time t_m·nb/P (each producer core
// transfers its own blocks; network sharing is folded into t_m).
func (m Model) TTransfer() time.Duration {
	return time.Duration(float64(m.Tm) * float64(m.NB) / float64(m.P))
}

// TAnalysis is the parallel analysis time t_a·nb/Q.
func (m Model) TAnalysis() time.Duration {
	return time.Duration(float64(m.Ta) * float64(m.NB) / float64(m.Q))
}

// TT2S is the pipelined end-to-end time: the slowest stage.
func (m Model) TT2S() time.Duration {
	return maxDur(m.TComp(), m.TTransfer(), m.TAnalysis())
}

// Bottleneck names the dominant stage.
func (m Model) Bottleneck() string {
	switch m.TT2S() {
	case m.TComp():
		return "simulation"
	case m.TTransfer():
		return "transfer"
	default:
		return "analysis"
	}
}

// Refined adds pipeline fill and drain: one block must traverse the other
// stages once before and after the steady state.
func (m Model) Refined() time.Duration {
	fill := m.Tc + m.Tm + m.Ta
	return m.TT2S() + fill - maxDur(m.Tc, m.Tm, m.Ta)
}

// NonIntegrated is the serial (post-processing) reference of Figure 11's
// upper half: stages do not overlap at all.
func (m Model) NonIntegrated() time.Duration {
	return m.TComp() + m.TTransfer() + m.TAnalysis()
}

func maxDur(ds ...time.Duration) time.Duration {
	var m time.Duration
	for _, d := range ds {
		if d > m {
			m = d
		}
	}
	return m
}

// PipelineDiagram renders Figure 11: the non-integrated design (upper) vs
// the integrated pipelined design (lower) for n blocks and four stages
// (Compute, Output, Input, Analysis).
func PipelineDiagram(blocks int) string {
	if blocks < 1 {
		blocks = 4
	}
	if blocks > 12 {
		blocks = 12
	}
	var b strings.Builder
	b.WriteString("Non-integrated (serial stages):\n")
	b.WriteString("  ")
	for i := 0; i < blocks; i++ {
		b.WriteString("C")
	}
	for i := 0; i < blocks; i++ {
		b.WriteString("O")
	}
	for i := 0; i < blocks; i++ {
		b.WriteString("I")
	}
	for i := 0; i < blocks; i++ {
		b.WriteString("A")
	}
	b.WriteString("\n\nIntegrated (pipelined, one row per block):\n")
	for i := 0; i < blocks; i++ {
		b.WriteString("  ")
		b.WriteString(strings.Repeat(" ", i))
		b.WriteString("COIA\n")
	}
	b.WriteString("legend: C=compute O=output I=input A=analysis; at any instant four\n")
	b.WriteString("stages work on four distinct (sequentially dependent) blocks.\n")
	return b.String()
}
