package transport

import (
	"fmt"
	"time"

	"zipper/internal/fabric"
	"zipper/internal/mpi"
	"zipper/internal/sim"
)

// Flexpath couples the applications with a type-based publish/subscribe
// system over event channels (§2(4)). Publishers buffer each output epoch;
// subscribers send a fetch request to every publisher they need and pull the
// data back. The paper's investigation (§6.3.1) found its critical weakness:
// Flexpath "utilizes a socket interface and all communications (even within
// the same node) have to go through the socket interface" with no
// shared-memory optimization, so with many processes per node every
// transfer serializes through the node's socket stack. The model reproduces
// this with a per-node socket-service lock and a per-process socket
// throughput, plus the queue-depth interlock between output epochs. The
// segmentation fault the paper hit at 6,528 cores is modelled as a Validate
// failure at the same threshold.
type Flexpath struct {
	// SocketBandwidth is the per-transfer socket-path throughput in
	// bytes/second. Zero selects 1.5 GB/s.
	SocketBandwidth float64
	// PerMessageOverhead is the event-channel software cost per fetch.
	// Zero selects 200µs.
	PerMessageOverhead time.Duration
	// QueueDepth is how many un-fetched output epochs a publisher may
	// buffer before blocking. Zero selects 2.
	QueueDepth int
	// FailCores models the crash the paper reports: workflows with at least
	// this many total cores terminate at Validate. Zero selects 6528;
	// negative disables.
	FailCores int
	// TotalCores is supplied by the driver for the Validate check.
	TotalCores int

	pl      *Platform
	table   *stepTable
	fetched *stepTable
	sockMu  map[fabric.NodeID]*sim.Mutex
}

// NewFlexpath returns the Flexpath model.
func NewFlexpath() *Flexpath { return &Flexpath{} }

// Name implements Method.
func (f *Flexpath) Name() string { return "Flexpath" }

// Validate implements Method.
func (f *Flexpath) Validate(pl *Platform) error {
	fail := f.FailCores
	if fail == 0 {
		fail = 6528
	}
	if fail > 0 && f.TotalCores >= fail {
		return fmt.Errorf("flexpath: segmentation fault at %d cores (software fault reported in §6.3.1)", f.TotalCores)
	}
	return nil
}

// Setup implements Method.
func (f *Flexpath) Setup(pl *Platform) {
	if f.SocketBandwidth <= 0 {
		f.SocketBandwidth = 1.5e9
	}
	if f.PerMessageOverhead <= 0 {
		f.PerMessageOverhead = 200 * time.Microsecond
	}
	if f.QueueDepth <= 0 {
		f.QueueDepth = 2
	}
	f.pl = pl
	f.table = newStepTable(pl.Eng, "flexpath.steps")
	f.fetched = newStepTable(pl.Eng, "flexpath.fetched")
	f.sockMu = map[fabric.NodeID]*sim.Mutex{}
	for _, nodes := range [][]fabric.NodeID{pl.ProdNodes, pl.ConsNodes} {
		for _, n := range nodes {
			if f.sockMu[n] == nil {
				f.sockMu[n] = sim.NewMutex(pl.Eng, fmt.Sprintf("flexpath.sock.node%d", n))
			}
		}
	}
}

// Writer implements Method.
func (f *Flexpath) Writer(r *mpi.Rank) StepWriter { return &fpWriter{f: f, r: r} }

// Reader implements Method.
func (f *Flexpath) Reader(r *mpi.Rank) StepReader { return &fpReader{f: f, r: r} }

type fpWriter struct {
	f *Flexpath
	r *mpi.Rank
}

func (w *fpWriter) Put(step int) {
	f, pl, p := w.f, w.f.pl, w.r.Proc()
	rank := w.r.Local()

	// Publishers may buffer QueueDepth epochs; beyond that the output epoch
	// (open/write/close) blocks until subscribers drain.
	stallStart := p.Now()
	if prev := step - f.QueueDepth; prev >= 0 {
		f.fetched.waitRead(p, fetchStepKeyed(rank, prev), 1)
	}
	if p.Now() > stallStart {
		pl.record(prodProcName(rank), "stall", stallStart, p.Now())
	}

	putStart := p.Now()
	// Copy the epoch into the event channel's buffer.
	p.Delay(time.Duration(float64(pl.BytesPerStep) / 10e9 * float64(time.Second)))
	f.table.publish(p, epochKey(rank, step))
	pl.record(prodProcName(rank), "PUT", putStart, p.Now())
}

func (w *fpWriter) Close() {}

func epochKey(rank, step int) string { return fmt.Sprintf("%d/%d", rank, step) }

type fpReader struct {
	f *Flexpath
	r *mpi.Rank
}

func (rd *fpReader) Get(step int) {
	f, pl, p := rd.f, rd.f.pl, rd.r.Proc()
	rank := rd.r.Local()
	node := rd.r.Node()

	getStart := p.Now()
	for _, src := range pl.Share(rank) {
		srcNode := pl.ProdNodes[src]
		// Fetch message to the publisher.
		pl.Fab.Send(p, node, srcNode, 0)
		f.table.waitPublished(p, epochKey(src, step))
		// The publisher's event stack pushes the epoch through the node's
		// socket interface: serialized per node, bounded by socket
		// throughput. This is where many-processes-per-node collapses.
		sockTime := f.PerMessageOverhead +
			time.Duration(float64(pl.BytesPerStep)/f.SocketBandwidth*float64(time.Second))
		mu := f.sockMu[srcNode]
		mu.Lock(p)
		p.Delay(sockTime)
		mu.Unlock(p)
		pl.Fab.Send(p, srcNode, node, pl.BytesPerStep)
		// The subscriber side pays the same socket-stack toll on its node.
		mu = f.sockMu[node]
		mu.Lock(p)
		p.Delay(sockTime)
		mu.Unlock(p)
		f.fetched.markRead(p, fetchStepKeyed(src, step))
	}
	pl.record(consProcName(rank), "GET", getStart, p.Now())
	f.table.markRead(p, step)
}

// Done implements StepReader; Flexpath holds nothing across analysis.
func (rd *fpReader) Done(step int) {}

func (rd *fpReader) Close() {}

// fetchStepKeyed folds (rank, step) into a single integer key for the
// fetched table so each publisher's epoch recycles independently.
func fetchStepKeyed(rank, step int) int { return step*1_000_000 + rank }

var _ Method = (*Flexpath)(nil)
