package transport

import (
	"errors"
	"fmt"
	"time"

	"zipper/internal/mpi"
	"zipper/internal/sim"
)

// DataSpaces couples the applications through dedicated staging servers
// (§2(2)): producers put data into server memory with RDMA after acquiring a
// write lock from the lock service, and consumers get it back after the
// step's writers unlock. The Adios flavour hides the native customized
// light-weight lock behind ADIOS's uniform interface: a single coarse
// reader/writer lock serializes whole write and read phases against each
// other, plus a fixed per-operation interface overhead — the cost the paper
// measures as the 1.3× native-vs-ADIOS gap in Figure 2.
type DataSpaces struct {
	// Adios selects the ADIOS/DataSpaces flavour.
	Adios bool
	// Slots is the circular lock-queue depth (the paper's num_slots). Zero
	// selects 4.
	Slots int
	// LockWindow is how far producers may run ahead of consumers before the
	// reader/writer lock blocks them; the native custom locks still enforce
	// per-step writer/reader alternation. Zero selects 1.
	LockWindow int
	// ServiceTime is the staging-server per-request CPU time. Zero selects
	// 100µs.
	ServiceTime time.Duration
	// ServerBandwidth is the server-side ingestion rate (indexing plus
	// memory copy into the virtual shared space) in bytes/second. Zero
	// selects 2 GB/s.
	ServerBandwidth float64
	// AdiosOverhead is the per-operation uniform-interface cost in the
	// ADIOS flavour. Zero selects 3ms.
	AdiosOverhead time.Duration
	// PackPerByte is the ADIOS flavour's per-byte marshaling cost. Zero
	// selects 6ns/byte.
	PackPerByte time.Duration

	pl      *Platform
	table   *stepTable
	servers []*server
	// Coarse global RW interlock for the ADIOS flavour.
	rwMu      *sim.Mutex
	rwCond    *sim.Cond
	writersIn int
	readersIn int
}

// NewDataSpaces returns the native or ADIOS-flavoured model.
func NewDataSpaces(adios bool) *DataSpaces { return &DataSpaces{Adios: adios} }

// Name implements Method.
func (d *DataSpaces) Name() string {
	if d.Adios {
		return "ADIOS/DataSpaces"
	}
	return "DataSpaces"
}

// Validate implements Method.
func (d *DataSpaces) Validate(pl *Platform) error {
	if len(pl.StagingNodes) == 0 {
		return errors.New("dataspaces: no staging nodes for servers")
	}
	return nil
}

// Setup implements Method.
func (d *DataSpaces) Setup(pl *Platform) {
	if d.Slots <= 0 {
		d.Slots = 4
	}
	if d.LockWindow <= 0 {
		d.LockWindow = 1
	}
	if d.ServiceTime <= 0 {
		d.ServiceTime = 100 * time.Microsecond
	}
	if d.ServerBandwidth <= 0 {
		d.ServerBandwidth = 2e9
	}
	if d.AdiosOverhead <= 0 {
		d.AdiosOverhead = 3 * time.Millisecond
	}
	if d.PackPerByte <= 0 {
		d.PackPerByte = 6 * time.Nanosecond
	}
	d.pl = pl
	d.table = newStepTable(pl.Eng, "dspaces.steps")
	for i, n := range pl.StagingNodes {
		d.servers = append(d.servers, newServer(pl.Eng, fmt.Sprintf("dspaces.srv%d", i), n, d.ServiceTime))
	}
	d.rwMu = sim.NewMutex(pl.Eng, "dspaces.rw")
	d.rwCond = sim.NewCond(d.rwMu, "dspaces.rw.cond")
}

// serverFor spreads (rank, step) data across staging servers.
func (d *DataSpaces) serverFor(rank, step int) *server {
	return d.servers[(rank+step)%len(d.servers)]
}

// enterWrite/exitWrite and enterRead/exitRead implement the ADIOS-flavour
// coarse interlock: writers exclude readers and vice versa, globally.
func (d *DataSpaces) enterWrite(p *sim.Proc) {
	d.rwMu.Lock(p)
	for d.readersIn > 0 {
		d.rwCond.Wait(p)
	}
	d.writersIn++
	d.rwMu.Unlock(p)
}

func (d *DataSpaces) exitWrite(p *sim.Proc) {
	d.rwMu.Lock(p)
	d.writersIn--
	if d.writersIn == 0 {
		d.rwCond.Broadcast()
	}
	d.rwMu.Unlock(p)
}

func (d *DataSpaces) enterRead(p *sim.Proc) {
	d.rwMu.Lock(p)
	for d.writersIn > 0 {
		d.rwCond.Wait(p)
	}
	d.readersIn++
	d.rwMu.Unlock(p)
}

func (d *DataSpaces) exitRead(p *sim.Proc) {
	d.rwMu.Lock(p)
	d.readersIn--
	if d.readersIn == 0 {
		d.rwCond.Broadcast()
	}
	d.rwMu.Unlock(p)
}

// Writer implements Method.
func (d *DataSpaces) Writer(r *mpi.Rank) StepWriter { return &dsWriter{d: d, r: r} }

// Reader implements Method.
func (d *DataSpaces) Reader(r *mpi.Rank) StepReader { return &dsReader{d: d, r: r} }

type dsWriter struct {
	d *DataSpaces
	r *mpi.Rank
}

func (w *dsWriter) Put(step int) {
	d, pl, p := w.d, w.d.pl, w.r.Proc()
	rank := w.r.Local()
	node := w.r.Node()

	// Reader/writer interlock: the writer of step s must wait until the
	// readers are done with step s-LockWindow, and its slot (s-Slots) must
	// have been recycled.
	stallStart := p.Now()
	d.table.waitRead(p, step-d.LockWindow, pl.Q)
	d.table.waitRead(p, step-d.Slots, pl.Q)
	if p.Now() > stallStart {
		pl.record(prodProcName(rank), "stall", stallStart, p.Now())
	}

	lockStart := p.Now()
	srv := d.serverFor(rank, step)
	srv.call(p, pl.Fab, node) // dspaces_lock_on_write: lock-service round trip
	if d.Adios {
		p.Delay(d.AdiosOverhead + time.Duration(pl.BytesPerStep)*d.PackPerByte)
		d.enterWrite(p)
	}
	pl.record(prodProcName(rank), "lock", lockStart, p.Now())

	putStart := p.Now()
	pl.Fab.Send(p, node, srv.node, pl.BytesPerStep) // RDMA put into server memory
	// Server-side ingestion: the staging server indexes and copies the
	// object into the virtual shared space, serialized per server.
	srv.cpu.Lock(p)
	p.Delay(time.Duration(float64(pl.BytesPerStep) / d.ServerBandwidth * float64(time.Second)))
	srv.cpu.Unlock(p)
	srv.call(p, pl.Fab, node) // metadata update + unlock
	if d.Adios {
		d.exitWrite(p)
	}
	pl.record(prodProcName(rank), "PUT", putStart, p.Now())
	d.table.markWrote(p, step)
}

func (w *dsWriter) Close() {}

type dsReader struct {
	d *DataSpaces
	r *mpi.Rank
}

func (rd *dsReader) Get(step int) {
	d, pl, p := rd.d, rd.d.pl, rd.r.Proc()
	rank := rd.r.Local()
	node := rd.r.Node()

	// lock_on_read: wait until every writer of the step has unlocked.
	lockStart := p.Now()
	d.table.waitWrote(p, step, pl.P)
	if d.Adios {
		d.enterRead(p)
	}
	pl.record(consProcName(rank), "lock", lockStart, p.Now())

	getStart := p.Now()
	for _, src := range pl.Share(rank) {
		srv := d.serverFor(src, step)
		srv.call(p, pl.Fab, node) // directory query
		if d.Adios {
			p.Delay(d.AdiosOverhead + time.Duration(pl.BytesPerStep)*d.PackPerByte)
		}
		// Server-side lookup + copy out of the shared space, then the RDMA
		// transfer back to the consumer.
		srv.cpu.Lock(p)
		p.Delay(time.Duration(float64(pl.BytesPerStep) / d.ServerBandwidth * float64(time.Second)))
		srv.cpu.Unlock(p)
		pl.Fab.Send(p, srv.node, node, pl.BytesPerStep) // RDMA get
	}
	if d.Adios {
		d.exitRead(p)
	}
	pl.record(consProcName(rank), "GET", getStart, p.Now())
}

// Done releases the read lock: the consumer holds it through its analysis
// of the step (dspaces_unlock_on_read after processing), which is what
// stalls waiting writers when analysis is slow.
func (rd *dsReader) Done(step int) {
	rd.d.table.markRead(rd.r.Proc(), step)
}

func (rd *dsReader) Close() {}

var _ Method = (*DataSpaces)(nil)
