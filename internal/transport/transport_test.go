package transport

import (
	"strings"
	"testing"
	"time"

	"zipper/internal/fabric"
	"zipper/internal/mpi"
	"zipper/internal/pfs"
	"zipper/internal/sim"
	"zipper/internal/trace"
)

// microPlatform builds a tiny platform: 2 producers, 1 consumer, 1 staging
// node, and runs a `steps`-step workflow over the given method.
func microPlatform(t *testing.T, steps int) *Platform {
	t.Helper()
	e := sim.New()
	f := fabric.New(e, fabric.Config{
		Nodes: 6, NodesPerLeaf: 6, LinkBandwidth: 1e9, LinkLatency: time.Microsecond,
	})
	fs := pfs.New(e, f, pfs.Config{OSTNodes: []fabric.NodeID{4}, MDSNode: 5, OSTBandwidth: 5e8})
	w := mpi.NewWorld(e, f, mpi.Config{})
	prod := w.AddRanks([]fabric.NodeID{0, 1})
	cons := w.AddRanks([]fabric.NodeID{2})
	return &Platform{
		Eng: e, Fab: f, FS: fs, World: w,
		Prod: prod, Cons: cons,
		ProdNodes:    []fabric.NodeID{0, 1},
		ConsNodes:    []fabric.NodeID{2},
		StagingNodes: []fabric.NodeID{3},
		Rec:          trace.NewRecorder(),
		P:            2, Q: 1, Steps: steps, BytesPerStep: 1 << 20,
	}
}

// runMethod drives the method end to end and returns the virtual makespan.
func runMethod(t *testing.T, pl *Platform, m Method) time.Duration {
	t.Helper()
	if err := m.Validate(pl); err != nil {
		t.Fatal(err)
	}
	m.Setup(pl)
	pl.Prod.Launch("sim", func(r *mpi.Rank) {
		w := m.Writer(r)
		for s := 0; s < pl.Steps; s++ {
			r.Proc().Delay(2 * time.Millisecond)
			w.Put(s)
		}
		w.Close()
	})
	pl.Cons.Launch("ana", func(r *mpi.Rank) {
		rd := m.Reader(r)
		for s := 0; s < pl.Steps; s++ {
			rd.Get(s)
			r.Proc().Delay(time.Millisecond)
			rd.Done(s)
		}
		rd.Close()
	})
	if err := pl.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	return pl.Eng.Now()
}

func TestEveryMethodMicroWorkflow(t *testing.T) {
	mks := map[string]func() Method{
		"mpiio":     func() Method { return NewMPIIO() },
		"dspaces":   func() Method { return NewDataSpaces(false) },
		"adios-ds":  func() Method { return NewDataSpaces(true) },
		"dimes":     func() Method { return NewDIMES(false) },
		"adios-dim": func() Method { return NewDIMES(true) },
		"flexpath":  func() Method { return NewFlexpath() },
		"decaf":     func() Method { return NewDecaf() },
	}
	for name, mk := range mks {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			pl := microPlatform(t, 4)
			d := runMethod(t, pl, mk())
			if d <= 0 {
				t.Fatal("no virtual time elapsed")
			}
			// Every method must record its producer-side activity.
			if pl.Rec.Total("sim.", "PUT") == 0 {
				t.Fatal("no PUT spans recorded")
			}
		})
	}
}

func TestShareMapping(t *testing.T) {
	pl := &Platform{P: 8, Q: 3}
	seen := map[int]bool{}
	total := 0
	for j := 0; j < pl.Q; j++ {
		for _, p := range pl.Share(j) {
			if seen[p] {
				t.Fatalf("producer %d assigned twice", p)
			}
			seen[p] = true
			if pl.ConsumerOf(p) != j {
				t.Fatalf("ConsumerOf(%d) = %d, want %d", p, pl.ConsumerOf(p), j)
			}
			total++
		}
	}
	if total != pl.P {
		t.Fatalf("%d producers assigned, want %d", total, pl.P)
	}
}

func TestDecafValidateOverflow(t *testing.T) {
	d := NewDecaf()
	ok := &Platform{P: 4, BytesPerStep: 1 << 20}
	if err := d.Validate(ok); err != nil {
		t.Fatalf("small workload rejected: %v", err)
	}
	bad := &Platform{P: 4096, BytesPerStep: 8 << 20} // 4096·8MiB/8 = 2^32 > 2^31
	err := d.Validate(bad)
	if err == nil || !strings.Contains(err.Error(), "overflow") {
		t.Fatalf("overflow not detected: %v", err)
	}
	d.MaxGlobalElems = -1 // disabled
	if err := d.Validate(bad); err != nil {
		t.Fatalf("disabled check still fired: %v", err)
	}
}

func TestFlexpathValidateCrash(t *testing.T) {
	f := NewFlexpath()
	f.TotalCores = 6527
	if err := f.Validate(&Platform{}); err != nil {
		t.Fatalf("below threshold rejected: %v", err)
	}
	f.TotalCores = 6528
	if err := f.Validate(&Platform{}); err == nil {
		t.Fatal("threshold crash not modelled")
	}
	f.FailCores = -1
	if err := f.Validate(&Platform{}); err != nil {
		t.Fatalf("disabled crash still fired: %v", err)
	}
}

func TestMPIIOValidateNeedsPFS(t *testing.T) {
	pl := microPlatform(t, 1)
	if err := NewMPIIO().Validate(pl); err != nil {
		t.Fatal(err)
	}
}

func TestStagingValidateNeedsNodes(t *testing.T) {
	pl := &Platform{}
	if err := NewDataSpaces(false).Validate(pl); err == nil {
		t.Fatal("dataspaces accepted no staging nodes")
	}
	if err := NewDIMES(false).Validate(pl); err == nil {
		t.Fatal("dimes accepted no staging nodes")
	}
}

func TestAdiosFlavourSlower(t *testing.T) {
	native := runMethod(t, microPlatform(t, 5), NewDIMES(false))
	adios := runMethod(t, microPlatform(t, 5), NewDIMES(true))
	if adios <= native {
		t.Fatalf("ADIOS/DIMES (%v) not slower than native (%v)", adios, native)
	}
}

func TestDIMESStallsWhenAnalysisSlow(t *testing.T) {
	// Make analysis slower than simulation: producers must show stall time
	// under the type-2 interlock (the Figure 4 behaviour).
	pl := microPlatform(t, 5)
	m := NewDIMES(false)
	if err := m.Validate(pl); err != nil {
		t.Fatal(err)
	}
	m.Setup(pl)
	pl.Prod.Launch("sim", func(r *mpi.Rank) {
		w := m.Writer(r)
		for s := 0; s < pl.Steps; s++ {
			r.Proc().Delay(time.Millisecond)
			w.Put(s)
		}
		w.Close()
	})
	pl.Cons.Launch("ana", func(r *mpi.Rank) {
		rd := m.Reader(r)
		for s := 0; s < pl.Steps; s++ {
			rd.Get(s)
			r.Proc().Delay(50 * time.Millisecond) // slow analysis
			rd.Done(s)
		}
		rd.Close()
	})
	if err := pl.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if pl.Rec.Total("sim.", "stall") == 0 {
		t.Fatal("no producer stall despite slow analysis")
	}
}

func TestStepTable(t *testing.T) {
	e := sim.New()
	tbl := newStepTable(e, "t")
	var order []string
	e.Spawn("writer", func(p *sim.Proc) {
		p.Delay(10 * time.Millisecond)
		tbl.markWrote(p, 0)
		order = append(order, "wrote")
	})
	e.Spawn("reader", func(p *sim.Proc) {
		tbl.waitWrote(p, 0, 1)
		order = append(order, "read-go")
		tbl.markRead(p, 0)
	})
	e.Spawn("next-writer", func(p *sim.Proc) {
		tbl.waitRead(p, 0, 1)
		order = append(order, "recycled")
	})
	e.Spawn("trivial", func(p *sim.Proc) {
		tbl.waitRead(p, -3, 99) // negative steps never block
		order = append(order, "warmup")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"warmup", "wrote", "read-go", "recycled"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestServerSerializesRequests(t *testing.T) {
	e := sim.New()
	f := fabric.New(e, fabric.Config{Nodes: 4, NodesPerLeaf: 4, LinkBandwidth: 1e9, LinkLatency: time.Microsecond})
	srv := newServer(e, "s", 3, 10*time.Millisecond)
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn("client", func(p *sim.Proc) {
			srv.call(p, f, fabric.NodeID(i))
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Three 10ms services through one CPU must take ≥ 30ms.
	if e.Now() < 30*time.Millisecond {
		t.Fatalf("server requests did not serialize: %v", e.Now())
	}
}
