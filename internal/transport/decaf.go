package transport

import (
	"fmt"
	"time"

	"zipper/internal/fabric"
	"zipper/internal/mpi"
)

// Decaf couples the applications through dedicated "link" processes inside a
// single MPI_COMM_WORLD (§2(6)): producers redistribute each step to link
// processes and block in MPI_Waitall until the link has safely stored the
// data (the stall of Figure 6); links forward to consumers, and "slower
// consumers will block the producers" because all data must arrive in the
// link before it can move on (§5). Serialization cost models the Boost
// serialization the paper could not even trace past.
//
// Two scale limits from the paper are modelled: the integer-overflow
// segmentation fault in the count-based redistribution once the global
// element count exceeds 2³¹ (§6.3.1, CFD crash at ≥6,528 cores), and the
// fixed-size staging allocation (Table 1: 64 link processes on 8 nodes)
// whose NICs saturate at large scale — the degradation Figure 18 shows for
// LAMMPS beyond 1,632 cores.
type Decaf struct {
	// LinksPerNode is how many link processes run on each staging node.
	// Zero selects 8 (Table 1: 64 links on 8 nodes).
	LinksPerNode int
	// SerializeBandwidth models Boost serialization throughput in
	// bytes/second on both the put and get sides. Zero selects 2.5 GB/s.
	SerializeBandwidth float64
	// MaxGlobalElems is the count-based redistribution's integer limit in
	// 8-byte elements. Zero selects 2³¹; negative disables the check.
	MaxGlobalElems int64

	pl       *Platform
	linkComm *mpi.Comm
	all      *mpi.Comm
	nLinks   int
}

// NewDecaf returns the Decaf model.
func NewDecaf() *Decaf { return &Decaf{} }

// Name implements Method.
func (d *Decaf) Name() string { return "Decaf" }

// Validate implements Method: the integer-overflow crash.
func (d *Decaf) Validate(pl *Platform) error {
	max := d.MaxGlobalElems
	if max == 0 {
		max = 1 << 31
	}
	if max > 0 {
		elems := int64(pl.P) * pl.BytesPerStep / 8
		if elems > max {
			return fmt.Errorf("decaf: segmentation fault: global element count %d overflows int32 in count-based redistribution (§6.3.1)", elems)
		}
	}
	return nil
}

// Setup implements Method: creates the link ranks inside a spanning
// communicator (Decaf's single MPI_COMM_WORLD) and starts the link
// processes.
func (d *Decaf) Setup(pl *Platform) {
	if d.LinksPerNode <= 0 {
		d.LinksPerNode = 8
	}
	if d.SerializeBandwidth <= 0 {
		d.SerializeBandwidth = 1.2e9
	}
	d.pl = pl
	var linkNodes []fabric.NodeID
	for _, n := range pl.StagingNodes {
		for i := 0; i < d.LinksPerNode; i++ {
			linkNodes = append(linkNodes, n)
		}
	}
	if len(linkNodes) == 0 {
		panic("decaf: no staging nodes")
	}
	d.nLinks = len(linkNodes)
	d.linkComm = pl.World.AddRanks(linkNodes)
	d.all = mpi.Union(pl.Prod, pl.Cons, d.linkComm)
	d.linkComm.Launch("decaf.link", d.linkMain)
}

// linkOf maps a producer rank to its link process.
func (d *Decaf) linkOf(p int) int { return p % d.nLinks }

// allRankOfLink returns a link's index within the spanning communicator.
func (d *Decaf) allRankOfLink(l int) int { return d.pl.P + d.pl.Q + l }

// allRankOfCons returns a consumer's index within the spanning communicator.
func (d *Decaf) allRankOfCons(j int) int { return d.pl.P + j }

// linkMain is the dataflow link process: per step, receive from all assigned
// producers, then forward each producer's data to its consumer. The link
// holds one step at a time — the interlock that back-pressures producers.
func (d *Decaf) linkMain(r *mpi.Rank) {
	pl := d.pl
	l := r.Local()
	var mine []int
	for p := 0; p < pl.P; p++ {
		if d.linkOf(p) == l {
			mine = append(mine, p)
		}
	}
	if len(mine) == 0 {
		return
	}
	for step := 0; step < pl.Steps; step++ {
		// Gather the whole step first: "all data must arrive in link before
		// they can be forwarded to the next application" (§5).
		for range mine {
			d.all.Recv(r, mpi.AnySource, stepTag(step))
		}
		// Forward each producer's portion to its consumer.
		for _, p := range mine {
			d.all.Send(r, d.allRankOfCons(pl.ConsumerOf(p)), fwdTag(step), pl.BytesPerStep, p)
		}
	}
}

func stepTag(step int) int { return 10_000 + step }
func fwdTag(step int) int  { return 20_000 + step }

// Writer implements Method.
func (d *Decaf) Writer(r *mpi.Rank) StepWriter { return &decafWriter{d: d, r: r} }

// Reader implements Method.
func (d *Decaf) Reader(r *mpi.Rank) StepReader { return &decafReader{d: d, r: r} }

type decafWriter struct {
	d *Decaf
	r *mpi.Rank
}

func (w *decafWriter) Put(step int) {
	d, pl, p := w.d, w.d.pl, w.r.Proc()
	rank := w.r.Local()

	serStart := p.Now()
	p.Delay(time.Duration(float64(pl.BytesPerStep) / d.SerializeBandwidth * float64(time.Second)))
	pl.record(prodProcName(rank), "serialize", serStart, p.Now())

	// Rendezvous send to the link: returns only once the link has taken the
	// data — the producer-side MPI_Waitall stall of Figure 6.
	putStart := p.Now()
	d.all.Send(w.r, d.allRankOfLink(d.linkOf(rank)), stepTag(step), pl.BytesPerStep, rank)
	pl.record(prodProcName(rank), "PUT", putStart, p.Now())
}

func (w *decafWriter) Close() {}

type decafReader struct {
	d *Decaf
	r *mpi.Rank
}

func (rd *decafReader) Get(step int) {
	d, pl, p := rd.d, rd.d.pl, rd.r.Proc()
	rank := rd.r.Local()
	getStart := p.Now()
	for range pl.Share(rank) {
		d.all.Recv(rd.r, mpi.AnySource, fwdTag(step))
		p.Delay(time.Duration(float64(pl.BytesPerStep) / d.SerializeBandwidth * float64(time.Second)))
	}
	pl.record(consProcName(rank), "GET", getStart, p.Now())
}

// Done implements StepReader; Decaf's link hand-off completed at Get.
func (rd *decafReader) Done(step int) {}

func (rd *decafReader) Close() {}

var _ Method = (*Decaf)(nil)
