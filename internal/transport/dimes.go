package transport

import (
	"errors"
	"fmt"
	"time"

	"zipper/internal/mpi"
)

// DIMES keeps staged data in RDMA buffers on the producers' own nodes and
// uses metadata servers only for directory and locking services (§2(3)).
// Its type-2 customized lock is collective and "enforces strict
// synchronization between producers and consumers" (§3, Figure 4): the
// producers barrier, wait for the circular lock slot to be recycled (the
// source of the ≈1-step application stall when analysis is slower), insert
// locally, and consumers later pull the data straight out of the producer
// nodes. The Adios flavour adds the uniform-interface overhead and a second
// collective synchronization, the 1.5× gap of Figure 2.
type DIMES struct {
	// Adios selects the ADIOS/DIMES flavour.
	Adios bool
	// Slots is the circular lock-queue depth (num_slots). Zero selects 4.
	Slots int
	// LockWindow is how many steps producers may run ahead of consumers
	// before the type-2 collective lock blocks them. The paper's traces
	// show the strict writer/reader interlock keeps this at 1 (Figure 4:
	// "application stall time is almost equal to one step of simulation
	// time ... the end-to-end workflow time nearly doubles"). Zero
	// selects 1.
	LockWindow int
	// PackPerByte is the ADIOS flavour's per-byte marshaling cost (the
	// uniform interface packs data into its generic format, a pass the
	// native API skips). Zero selects 6ns/byte.
	PackPerByte time.Duration
	// LockServiceTime is the per-step cost of the type-2 collective lock
	// protocol itself, calibrated from the lengthy "lock" periods visible
	// in the Figure 4 trace (a sizeable fraction of each ~0.4s step). Zero
	// selects 70ms.
	LockServiceTime time.Duration
	// ServiceTime is the metadata-server per-request CPU time. Zero
	// selects 100µs.
	ServiceTime time.Duration
	// AdiosOverhead is the per-operation interface cost in the ADIOS
	// flavour. Zero selects 3ms.
	AdiosOverhead time.Duration
	// MemBandwidth models the local RDMA-buffer insertion copy. Zero
	// selects 10 GB/s.
	MemBandwidth float64

	pl      *Platform
	table   *stepTable
	servers []*server
}

// NewDIMES returns the native or ADIOS-flavoured model.
func NewDIMES(adios bool) *DIMES { return &DIMES{Adios: adios} }

// Name implements Method.
func (d *DIMES) Name() string {
	if d.Adios {
		return "ADIOS/DIMES"
	}
	return "DIMES"
}

// Validate implements Method.
func (d *DIMES) Validate(pl *Platform) error {
	if len(pl.StagingNodes) == 0 {
		return errors.New("dimes: no staging nodes for metadata servers")
	}
	return nil
}

// Setup implements Method.
func (d *DIMES) Setup(pl *Platform) {
	if d.Slots <= 0 {
		d.Slots = 4
	}
	if d.LockWindow <= 0 {
		d.LockWindow = 1
	}
	if d.ServiceTime <= 0 {
		d.ServiceTime = 100 * time.Microsecond
	}
	if d.AdiosOverhead <= 0 {
		d.AdiosOverhead = 3 * time.Millisecond
	}
	if d.PackPerByte <= 0 {
		d.PackPerByte = 6 * time.Nanosecond
	}
	if d.LockServiceTime <= 0 {
		d.LockServiceTime = 70 * time.Millisecond
	}
	if d.MemBandwidth <= 0 {
		d.MemBandwidth = 10e9
	}
	d.pl = pl
	d.table = newStepTable(pl.Eng, "dimes.steps")
	for i, n := range pl.StagingNodes {
		d.servers = append(d.servers, newServer(pl.Eng, fmt.Sprintf("dimes.meta%d", i), n, d.ServiceTime))
	}
}

func (d *DIMES) serverFor(rank int) *server { return d.servers[rank%len(d.servers)] }

// Writer implements Method.
func (d *DIMES) Writer(r *mpi.Rank) StepWriter { return &dimesWriter{d: d, r: r} }

// Reader implements Method.
func (d *DIMES) Reader(r *mpi.Rank) StepReader { return &dimesReader{d: d, r: r} }

type dimesWriter struct {
	d *DIMES
	r *mpi.Rank
}

func (w *dimesWriter) Put(step int) {
	d, pl, p := w.d, w.d.pl, w.r.Proc()
	rank := w.r.Local()
	node := w.r.Node()

	// Collective type-2 lock acquisition: all writers synchronize
	// (MPI_Barrier in the Figure 4 trace), then each waits for its circular
	// slot — step-Slots must be fully consumed before its buffer can be
	// reused. The producer stall when analysis lags appears here.
	lockStart := p.Now()
	w.r.Comm().Barrier(w.r)
	if d.Adios {
		p.Delay(d.AdiosOverhead)
		w.r.Comm().Barrier(w.r) // uniform interface adds a second collective
	}
	pl.record(prodProcName(rank), "lock_on_write", lockStart, p.Now())

	stallStart := p.Now()
	d.table.waitRead(p, step-d.LockWindow, pl.Q)
	if p.Now() > stallStart {
		pl.record(prodProcName(rank), "stall", stallStart, p.Now())
	}
	// The lock grant itself (slot bookkeeping at the lock service) sits
	// between the readers' release and the writers' insert, so it extends
	// the producer-consumer critical path.
	lockSvc := p.Now()
	p.Delay(d.LockServiceTime)
	pl.record(prodProcName(rank), "lock_on_write", lockSvc, p.Now())

	putStart := p.Now()
	d.serverFor(rank).call(p, pl.Fab, node) // register block location
	if d.Adios {
		p.Delay(time.Duration(pl.BytesPerStep) * d.PackPerByte)
	}
	// Local RDMA-buffer insertion: a memory copy on the producer node.
	p.Delay(time.Duration(float64(pl.BytesPerStep) / d.MemBandwidth * float64(time.Second)))
	pl.record(prodProcName(rank), "PUT", putStart, p.Now())
	d.table.markWrote(p, step)
}

func (w *dimesWriter) Close() {}

type dimesReader struct {
	d *DIMES
	r *mpi.Rank
}

func (rd *dimesReader) Get(step int) {
	d, pl, p := rd.d, rd.d.pl, rd.r.Proc()
	rank := rd.r.Local()
	node := rd.r.Node()

	lockStart := p.Now()
	d.table.waitWrote(p, step, pl.P)
	pl.record(consProcName(rank), "lock_on_read", lockStart, p.Now())

	getStart := p.Now()
	for _, src := range pl.Share(rank) {
		d.serverFor(src).call(p, pl.Fab, node) // where does src's data live?
		if d.Adios {
			p.Delay(d.AdiosOverhead + time.Duration(pl.BytesPerStep)*d.PackPerByte)
		}
		// One-sided pull out of the producer node's RDMA buffer: occupies
		// the producer node's egress port, interfering with its next-step
		// halo exchanges — visible in the Figure 4 trace.
		pl.Fab.Send(p, pl.ProdNodes[src], node, pl.BytesPerStep)
	}
	pl.record(consProcName(rank), "GET", getStart, p.Now())
}

// Done releases the type-2 read lock after the analysis has processed the
// step: until then, the producers' RDMA buffers for the slot stay pinned and
// waiting writers stall (the ≈1-step stall of Figure 4).
func (rd *dimesReader) Done(step int) {
	rd.d.table.markRead(rd.r.Proc(), step)
}

func (rd *dimesReader) Close() {}

var _ Method = (*DIMES)(nil)
