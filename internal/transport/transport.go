// Package transport implements behavioural models of the seven I/O
// transport methods the paper benchmarks against Zipper (§2, §3): MPI-IO,
// native DataSpaces, ADIOS/DataSpaces, native DIMES, ADIOS/DIMES, Flexpath,
// and Decaf. Each model reproduces the synchronization structure the paper's
// traces attribute the method's cost to — staging-server queries and locks,
// circular lock slots, publish/subscribe fetch epochs over sockets, link
// nodes with MPI_Waitall interlocks, and shared-file polling — while the
// data movement itself is charged to the shared fabric and PFS models, so
// staging traffic interferes with the application's own messages exactly as
// observed in Figures 4–6.
package transport

import (
	"fmt"
	"time"

	"zipper/internal/fabric"
	"zipper/internal/mpi"
	"zipper/internal/pfs"
	"zipper/internal/sim"
	"zipper/internal/trace"
)

// Platform is everything a coupling method needs to wire itself into a
// running workflow: the simulated machine, the application communicators,
// process placement, and the workload's shape.
type Platform struct {
	Eng   *sim.Engine
	Fab   *fabric.Fabric
	FS    *pfs.PFS
	World *mpi.World
	Prod  *mpi.Comm // producer application communicator
	Cons  *mpi.Comm // consumer application communicator

	ProdNodes    []fabric.NodeID // node of each producer rank
	ConsNodes    []fabric.NodeID // node of each consumer rank
	StagingNodes []fabric.NodeID // nodes available for servers / link procs

	Rec *trace.Recorder // may be nil

	P, Q         int   // producer and consumer rank counts
	Steps        int   // workflow steps
	BytesPerStep int64 // output bytes per producer rank per step
}

// ConsumerOf maps a producer rank to the consumer that analyzes its data.
func (pl *Platform) ConsumerOf(p int) int { return p * pl.Q / pl.P }

// Share lists the producer ranks consumer j analyzes.
func (pl *Platform) Share(j int) []int {
	var out []int
	for p := 0; p < pl.P; p++ {
		if pl.ConsumerOf(p) == j {
			out = append(out, p)
		}
	}
	return out
}

// record adds a span to the platform recorder when tracing is on.
func (pl *Platform) record(proc, state string, start, end time.Duration) {
	if pl.Rec != nil {
		pl.Rec.Add(proc, state, start, end)
	}
}

func prodProcName(rank int) string { return fmt.Sprintf("sim.%d", rank) }
func consProcName(rank int) string { return fmt.Sprintf("ana.%d", rank) }

// Method is a coupling method the workflow driver can run.
type Method interface {
	// Name is the label used in the paper's figures.
	Name() string
	// Validate reports configuration-dependent failures before any process
	// starts — the mechanism used to model the software faults the paper hit
	// at large scale (Decaf integer overflow, Flexpath segfault).
	Validate(pl *Platform) error
	// Setup binds the method to the platform and spawns any service
	// processes (staging servers, link processes).
	Setup(pl *Platform)
	// Writer returns producer rank r's output handle.
	Writer(r *mpi.Rank) StepWriter
	// Reader returns consumer rank r's input handle.
	Reader(r *mpi.Rank) StepReader
}

// StepWriter is the producer-side per-rank handle.
type StepWriter interface {
	// Put outputs the rank's BytesPerStep for one step, blocking as the
	// method's synchronization demands.
	Put(step int)
	// Close releases method resources after the last step.
	Close()
}

// StepReader is the consumer-side per-rank handle.
type StepReader interface {
	// Get obtains the consumer's share of one step's data, blocking until
	// the method makes it available.
	Get(step int)
	// Done tells the method the consumer finished processing the step's
	// data. Lock-based methods (DataSpaces, DIMES) release their read locks
	// here — the analysis executes inside the locked region, which is what
	// stalls producers when analysis is slow (Figure 4).
	Done(step int)
	// Close releases method resources after the last step.
	Close()
}

// stepTable tracks per-step write/read completion with FIFO wakeups; the
// lock-slot coordination shared by the staging-based methods.
type stepTable struct {
	mu       *sim.Mutex
	cond     *sim.Cond
	wrote    map[int]int
	read     map[int]int
	pubByKey map[string]bool
}

func newStepTable(e *sim.Engine, name string) *stepTable {
	mu := sim.NewMutex(e, name)
	return &stepTable{
		mu:       mu,
		cond:     sim.NewCond(mu, name+".cond"),
		wrote:    map[int]int{},
		read:     map[int]int{},
		pubByKey: map[string]bool{},
	}
}

// markWrote counts one producer's completion of a step.
func (t *stepTable) markWrote(p *sim.Proc, step int) {
	t.mu.Lock(p)
	t.wrote[step]++
	t.cond.Broadcast()
	t.mu.Unlock(p)
}

// markRead counts one consumer's completion of a step.
func (t *stepTable) markRead(p *sim.Proc, step int) {
	t.mu.Lock(p)
	t.read[step]++
	t.cond.Broadcast()
	t.mu.Unlock(p)
}

// waitWrote blocks until n producers finished writing the step.
func (t *stepTable) waitWrote(p *sim.Proc, step, n int) {
	t.mu.Lock(p)
	for t.wrote[step] < n {
		t.cond.Wait(p)
	}
	t.mu.Unlock(p)
}

// waitRead blocks until n consumers finished reading the step. Steps < 0 are
// trivially complete (slot warm-up).
func (t *stepTable) waitRead(p *sim.Proc, step, n int) {
	if step < 0 {
		return
	}
	t.mu.Lock(p)
	for t.read[step] < n {
		t.cond.Wait(p)
	}
	t.mu.Unlock(p)
}

// publish marks an arbitrary key available and wakes waiters.
func (t *stepTable) publish(p *sim.Proc, key string) {
	t.mu.Lock(p)
	t.pubByKey[key] = true
	t.cond.Broadcast()
	t.mu.Unlock(p)
}

// waitPublished blocks until a key is available.
func (t *stepTable) waitPublished(p *sim.Proc, key string) {
	t.mu.Lock(p)
	for !t.pubByKey[key] {
		t.cond.Wait(p)
	}
	t.mu.Unlock(p)
}

// server models a passive service endpoint (metadata or lock server): each
// request serializes through the server's CPU for serviceTime and costs a
// fabric round trip from the client.
type server struct {
	node fabric.NodeID
	cpu  *sim.Mutex
	svc  time.Duration
}

func newServer(e *sim.Engine, name string, node fabric.NodeID, svc time.Duration) *server {
	return &server{node: node, cpu: sim.NewMutex(e, name), svc: svc}
}

// call performs one request from client (control message + service time).
func (s *server) call(p *sim.Proc, fab *fabric.Fabric, client fabric.NodeID) {
	fab.Send(p, client, s.node, 0)
	s.cpu.Lock(p)
	p.Delay(s.svc)
	s.cpu.Unlock(p)
	fab.Send(p, s.node, client, 0)
}
