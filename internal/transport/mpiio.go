package transport

import (
	"errors"
	"fmt"
	"time"

	"zipper/internal/mpi"
)

// MPIIO couples the applications through shared files on the parallel file
// system (§2(1)): every producer writes its step data at its rank offset in
// a per-step file, and consumers poll the metadata server until the step
// file is complete before reading their share. All data crosses the PFS,
// whose bandwidth is shared with other users — the source of MPI-IO's
// "longest and most variational end-to-end time" in Figure 2.
type MPIIO struct {
	// PollInterval is the consumer's polling period. Zero selects 50ms.
	PollInterval time.Duration

	pl    *Platform
	table *stepTable
}

// NewMPIIO returns the MPI-IO coupling model.
func NewMPIIO() *MPIIO { return &MPIIO{} }

// Name implements Method.
func (m *MPIIO) Name() string { return "MPI-IO" }

// Validate implements Method; MPI-IO has no modelled crash threshold.
func (m *MPIIO) Validate(pl *Platform) error {
	if len(pl.FS.Config().OSTNodes) == 0 {
		return errors.New("mpiio: platform has no parallel file system")
	}
	return nil
}

// Setup implements Method.
func (m *MPIIO) Setup(pl *Platform) {
	if m.PollInterval <= 0 {
		m.PollInterval = 100 * time.Millisecond
	}
	m.pl = pl
	m.table = newStepTable(pl.Eng, "mpiio.steps")
}

func (m *MPIIO) stepFile(step int) string { return fmt.Sprintf("mpiio/step%d", step) }

// Writer implements Method.
func (m *MPIIO) Writer(r *mpi.Rank) StepWriter { return &mpiioWriter{m: m, r: r} }

// Reader implements Method.
func (m *MPIIO) Reader(r *mpi.Rank) StepReader { return &mpiioReader{m: m, r: r} }

type mpiioWriter struct {
	m *MPIIO
	r *mpi.Rank
}

func (w *mpiioWriter) Put(step int) {
	m, pl, p := w.m, w.m.pl, w.r.Proc()
	start := p.Now()
	offset := int64(w.r.Local()) * pl.BytesPerStep
	pl.FS.Write(p, w.r.Node(), m.stepFile(step), offset, pl.BytesPerStep)
	pl.record(prodProcName(w.r.Local()), "PUT", start, p.Now())
	m.table.markWrote(p, step)
}

func (w *mpiioWriter) Close() {}

type mpiioReader struct {
	m *MPIIO
	r *mpi.Rank
}

func (rd *mpiioReader) Get(step int) {
	m, pl, p := rd.m, rd.m.pl, rd.r.Proc()
	start := p.Now()
	// Poll for step completion: a Stat (MDS round trip) per poll, the
	// coupling cost the paper notes file-based methods pay because "a
	// consumer application [must] know when new data is available in a
	// file" (§2).
	for {
		m.table.mu.Lock(p)
		done := m.table.wrote[step] >= pl.P
		m.table.mu.Unlock(p)
		if done {
			break
		}
		pl.FS.Stat(p, rd.r.Node(), m.stepFile(step))
		p.Delay(m.PollInterval)
	}
	pl.record(consProcName(rd.r.Local()), "poll", start, p.Now())
	readStart := p.Now()
	for _, src := range pl.Share(rd.r.Local()) {
		pl.FS.Read(p, rd.r.Node(), m.stepFile(step), int64(src)*pl.BytesPerStep, pl.BytesPerStep)
	}
	pl.record(consProcName(rd.r.Local()), "GET", readStart, p.Now())
	m.table.markRead(p, step)
}

// Done implements StepReader; MPI-IO holds nothing across analysis.
func (rd *mpiioReader) Done(step int) {}

func (rd *mpiioReader) Close() {}

var _ Method = (*MPIIO)(nil)
