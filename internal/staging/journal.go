// The crash-durable spool format and its replay reader. A fault-enabled
// stager writes ahead: every admitted block is copied to the spill
// partition before it is queued and a Record is appended to the Journal;
// disk-ref announcements and Fins get meta Records carrying the declared
// delivery totals. Delivery marks the record. The Journal outlives the
// Stager — the embedder owns it per slot — so after a crash the recovery
// reader (Replay) re-forwards exactly the records the dead endpoint still
// owed, and counted per-destination Fin accounting balances without the
// consumers ever learning a relay died. Message.Lost is the fallback for
// the genuinely unrecoverable case: a journaled block whose spool copy
// cannot be read back.

package staging

import (
	"sort"
	"sync"

	"zipper/internal/block"
	"zipper/internal/rt"
)

// Record is one write-ahead journal entry: a relayed block durable in the
// spool partition, or the metadata of one admitted message (disk refs and
// the Fin with its declared totals).
type Record struct {
	// Block entries.
	id            block.ID
	offset, bytes int64
	isBlock       bool

	// Meta entries.
	disk               []rt.DiskRef
	fin                bool
	finBlocks, finDisk int64

	from, dest int
	delivered  bool
}

// Journal is the write-ahead manifest of one stager slot's spool partition.
// The embedder owns it (it must survive the endpoint's death) and hands it
// to the Stager via Config.Journal; the recovery path reads it back with
// Replay. All methods are safe for concurrent use.
type Journal struct {
	mu      sync.Mutex
	recs    []*Record
	orphans []rt.Message
}

// NewJournal returns an empty journal.
func NewJournal() *Journal { return &Journal{} }

// addBlock appends an undelivered block record.
func (j *Journal) addBlock(id block.ID, offset, bytes int64, from, dest int) *Record {
	r := &Record{isBlock: true, id: id, offset: offset, bytes: bytes, from: from, dest: dest}
	j.mu.Lock()
	j.recs = append(j.recs, r)
	j.mu.Unlock()
	return r
}

// addMeta appends an undelivered metadata record (disk refs and/or Fin).
func (j *Journal) addMeta(from, dest int, disk []rt.DiskRef, fin bool, finBlocks, finDisk int64) *Record {
	r := &Record{from: from, dest: dest, disk: disk, fin: fin, finBlocks: finBlocks, finDisk: finDisk}
	j.mu.Lock()
	j.recs = append(j.recs, r)
	j.mu.Unlock()
	return r
}

// markDelivered retires a record: its payload reached the consumer through
// the normal forwarding path (or was declared Lost there).
func (j *Journal) markDelivered(r *Record) {
	j.mu.Lock()
	r.delivered = true
	j.mu.Unlock()
}

// AddOrphan records a whole message the dead endpoint's receiver drained
// after the crash: never admitted, never journaled, blocks still in memory.
// The recovery reader re-sends it verbatim.
func (j *Journal) AddOrphan(m rt.Message) {
	j.mu.Lock()
	j.orphans = append(j.orphans, m)
	j.mu.Unlock()
}

// Pending reports the undelivered record and orphan counts — what a crash
// right now would owe the recovery reader.
func (j *Journal) Pending() (records, orphans int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, r := range j.recs {
		if !r.delivered {
			records++
		}
	}
	return records, len(j.orphans)
}

// drain atomically takes every undelivered record (marking it delivered so
// a second replay is a no-op) and the orphan backlog.
func (j *Journal) drain() (recs []*Record, orphans []rt.Message) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, r := range j.recs {
		if !r.delivered {
			r.delivered = true
			recs = append(recs, r)
		}
	}
	orphans = j.orphans
	j.orphans = nil
	return
}

// Replay is the recovery reader: it re-forwards everything a dead stager
// still owed its consumers — journaled blocks read back from the spool
// partition fs, journaled disk refs and Fins with their declared totals,
// and the orphaned messages the dead receiver drained. Journal admission
// order is preserved; counted stream termination makes cross-producer
// interleaving irrelevant. A journaled block whose spool copy cannot be
// read back is declared via Message.Lost to its destination so the stream
// still terminates. Returns the blocks re-forwarded (journal + orphans),
// the orphan messages re-sent, and the blocks declared lost.
func Replay(c rt.Ctx, j *Journal, fs rt.BlockStore, tr rt.Transport) (replayed, orphans, lost int64) {
	recs, orphaned := j.drain()
	lostByDest := map[int]int64{}
	for _, r := range recs {
		if !r.isBlock {
			tr.Send(c, r.dest, rt.Message{From: r.from, Dest: r.dest, Disk: r.disk,
				Fin: r.fin, FinBlocks: r.finBlocks, FinDisk: r.finDisk})
			continue
		}
		b, err := fs.ReadBlock(c, r.id, r.bytes)
		if err != nil {
			lostByDest[r.dest]++
			lost++
			continue
		}
		_ = fs.RemoveBlock(c, r.id)
		b.Offset = r.offset
		b.OnDisk = false
		tr.Send(c, r.dest, rt.Message{From: r.from, Dest: r.dest, Blocks: []*block.Block{b}})
		replayed++
	}
	for _, m := range orphaned {
		tr.Send(c, m.Dest, m)
		replayed += int64(len(m.Blocks))
		orphans++
	}
	// Unrecoverable blocks still count against the Fins' declared totals.
	dests := make([]int, 0, len(lostByDest))
	for d := range lostByDest {
		dests = append(dests, d)
	}
	sort.Ints(dests)
	for _, d := range dests {
		tr.Send(c, d, rt.Message{Dest: d, Lost: lostByDest[d]})
	}
	return
}
