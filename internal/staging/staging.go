// Package staging implements the in-transit tier of the Zipper runtime: a
// Stager is a dedicated runtime endpoint that sits between producers and
// consumers as a third channel, next to the low-latency direct message path
// and the work-stealing file-system path.
//
// A producer whose routing policy elects the relay addresses its mixed
// message to the stager's transport endpoint and sets Message.Dest to the
// consumer the data is for. The stager absorbs the burst into a bounded
// in-memory buffer (its receiver thread), re-batches buffered blocks into
// larger mixed messages and forwards them to their destination consumers
// (its forwarder thread), and — past a high-water mark — overflows the
// newest buffered blocks to its own spill partition of the parallel file
// system (its spiller thread), reading them back in order once the consumer
// catches up. Consumers drain a stager exactly like a producer: relayed
// messages arrive in their ordinary inbox, so Preserve mode, disk-ref
// announcements, and Fin accounting work unchanged end to end.
//
// The stager preserves per-producer arrival order, so a Fin routed through
// the relay trails every block that producer relayed — the property the
// producer's sender thread relies on when it closes a staged stream.
//
// A stager normally terminates after counting its assigned producers' Fins.
// Behind a placement-plane directory (Config.Managed) — the elastic pool,
// or a fixed tier resolved per batch by a place.Policy — assignment is
// dynamic, so termination is by drain instead: the Retire control message —
// sent only after the membership change has quiesced, making it the last
// message the endpoint receives — stops admission, and the forwarder
// flushes the queue and the spill partition before the threads exit. The
// re-batching forwarder groups consecutive same-destination arrivals, so it
// composes with any consumer placement: interleaved destinations simply cut
// batches shorter, never reorder a producer's blocks.
//
// Like the core producer and consumer modules, the Stager is written against
// the rt platform interfaces and runs unchanged on the real machine
// (goroutines, TCP or in-process channels) and inside the discrete-event
// simulator (where the extra network hop is charged by the fabric model).
package staging

import (
	"fmt"
	"time"

	"zipper/internal/block"
	"zipper/internal/flow"
	"zipper/internal/reduce"
	"zipper/internal/rt"
	"zipper/internal/trace"
)

// Config tunes one stager endpoint.
type Config struct {
	// BufferBlocks is the in-memory buffer capacity in blocks (default 64).
	// The receiver admits a message only when its blocks fit; a producer
	// sending to a full stager blocks on the stager's receive window, which
	// is the backpressure the hybrid routing policy reads via Occupancy.
	BufferBlocks int
	// HighWater is the spill threshold in blocks (default ¾ of
	// BufferBlocks): above it the spiller thread overflows the newest
	// buffered blocks to the spill store so the head of the queue keeps
	// flowing from memory.
	HighWater int
	// MaxBatchBlocks caps how many buffered blocks one forwarded mixed
	// message may carry (default 16). Re-batching inside the stager is the
	// second half of the tier's job: many small producer sends leave as few
	// large consumer deliveries.
	MaxBatchBlocks int
	// MaxBatchBytes caps a forwarded batch's payload bytes (0 = unlimited);
	// the head block is always taken so oversized blocks make progress.
	MaxBatchBytes int64
	// Producers is the number of upstream producers assigned to this stager
	// (its expected Fin count). Required (≥ 1) unless Managed is set.
	Producers int
	// Managed selects pool-managed termination for stagers behind a
	// placement-plane directory (the elastic pool, or a fixed tier resolved
	// per batch by a place.Policy): producer assignment is dynamic there, so
	// no Fin count is known up front. A managed stager admits messages until
	// it receives the Retire control message, then flushes its queue and
	// spill partition to the consumers and exits. Producers is ignored.
	Managed bool
	// Reduce selects in-transit payload reduction at this endpoint. Blocks
	// that arrive already encoded (producer-side reduction) pass through
	// untouched. With OnPressure set, the stager's pressure ladder gains a
	// middle rung: when occupancy crosses HighWater a flow.ReduceGate
	// engages and the forwarder reduction-encodes what it sends (and the
	// spiller what it spills, for stateless operators), while the PFS spill
	// rung is pushed up to halfway between HighWater and the buffer top —
	// bursts burn CPU before they burn PFS bandwidth. Without OnPressure
	// the stager encodes nothing itself (producer-side reduction is where
	// non-gated encoding lives).
	Reduce reduce.Config
	// Pipeline, when non-nil, fans the forwarder's gated encode out across
	// a shared worker pool instead of encoding inline on the forwarder
	// thread (Reduce.Workers != 0 selects it; zipper builds one pipeline
	// per job). Stateless operators only — and the spiller always encodes
	// its single victim inline, where a pool buys nothing. The pipeline
	// encodes in place and joins before the send, so forwarded batch order
	// and wire bytes are identical to inline.
	Pipeline *reduce.Pipeline
	// Recorder, when non-nil, captures the stager threads' activity spans.
	Recorder *trace.Recorder

	// Tenants is the number of tenant classes sharing this stager under a
	// multi-job control plane (0 leaves the stager single-tenant: no
	// per-tenant state exists and every path below is byte-identical to the
	// pre-tenancy stager). Tenant states are pre-sized here and never
	// reallocated, so TenantLevel/TenantSpilled are safe from any thread
	// without the stager lock.
	Tenants int
	// Tenant resolves an arriving message's producer rank to its tenant
	// class in [0, Tenants). Required when Tenants > 0. Called under the
	// stager lock on the receiver thread: it must be cheap and must never
	// park (a table lookup, not a platform call).
	Tenant func(from int) int

	// Journal, when non-nil, makes the stager crash-durable: every admitted
	// block is written ahead to the spill partition and journaled before it
	// is queued, metadata (disk refs, Fins) gets journal records carrying
	// the declared totals, and delivery marks the records. The journal is
	// owned by the embedder — it must survive the endpoint's death so the
	// recovery reader (Replay) can re-forward what the crash stranded.
	// Requires Managed and a spill store. Enables Kill-based fault
	// injection.
	Journal *Journal
	// Heartbeat, when non-nil, is invoked every HeartbeatInterval by a
	// dedicated thread while the stager is healthy — the lease renewal. A
	// killed stager stops beating (its lease lapses into eviction); a
	// cleanly drained stager stops beating after Unlease runs.
	Heartbeat func(c rt.Ctx)
	// HeartbeatInterval is the lease renewal period (required with
	// Heartbeat).
	HeartbeatInterval time.Duration
	// Unlease, when non-nil, is called exactly once, synchronously, by the
	// last runtime thread to exit a clean drain — before Wait/Drained can
	// observe the endpoint as done — so the failure detector can never
	// mistake a planned drain's silence for a crash. A killed stager never
	// calls it.
	Unlease func()
}

func (c Config) withDefaults() Config {
	if c.BufferBlocks <= 0 {
		c.BufferBlocks = 64
	}
	if c.HighWater <= 0 {
		c.HighWater = c.BufferBlocks * 3 / 4
	}
	if c.HighWater >= c.BufferBlocks {
		c.HighWater = c.BufferBlocks - 1
	}
	if c.HighWater < 1 {
		c.HighWater = 1
	}
	if c.MaxBatchBlocks <= 0 {
		c.MaxBatchBlocks = 16
	}
	if c.MaxBatchBytes < 0 {
		c.MaxBatchBytes = 0
	}
	return c
}

// Stats is a snapshot of one stager endpoint's flow gauges: lifetime totals
// plus the live buffer occupancy and EWMA forwarding rate at snapshot time.
type Stats struct {
	BlocksIn        int64         // blocks received from producers
	BlocksForwarded int64         // blocks delivered to consumers
	BlocksSpilled   int64         // blocks that overflowed to the spill store
	SpilledBytes    int64         // payload bytes that overflowed to the spill store
	DiskRefs        int64         // producer disk-ref announcements relayed
	MessagesIn      int64         // mixed messages received
	MessagesOut     int64         // mixed messages forwarded (re-batched)
	BytesOnWire     int64         // payload bytes forwarded (encoded size when reduced)
	BytesReduced    int64         // payload bytes reduction kept off the wire (raw − encoded)
	ReduceBursts    int64         // times the compress-instead-of-spill gate engaged
	MaxQueued       int64         // peak in-memory buffer occupancy in blocks
	RecvBusy        time.Duration // receiver thread time in Recv
	ForwardBusy     time.Duration // forwarder thread time in Send
	SpillBusy       time.Duration // spiller time writing + forwarder time re-reading
	Finished        time.Duration // when the forwarder delivered the last batch

	// Live gauges at snapshot time.
	Queued      int     // blocks currently resident in the in-memory buffer
	Capacity    int     // the buffer's capacity in blocks
	ForwardRate float64 // blocks/s the forwarder is delivering (EWMA)
}

// relayBlock is one buffered block: resident in memory, being spilled, or
// spilled to the store (b == nil) awaiting re-read by the forwarder. The
// enc/encBytes pair snapshots the block's reduction stamp at spill time so
// the forwarder's re-read can restore it on platforms whose store keeps no
// payload (the simulated PFS).
type relayBlock struct {
	b        *block.Block
	id       block.ID
	offset   int64
	bytes    int64
	enc      uint8
	encBytes int64
	spilling bool
	spilled  bool
	rec      *Record      // write-ahead journal entry (fault mode only)
	ten      *tenantState // tenant charged for the resident block (multi-tenant only)
}

// tenantState is one tenant's slice of a shared stager: the admission cap
// the control plane pushed, the blocks currently resident on the tenant's
// account, and the tenant-scoped gauges that keep one job's backlog out of
// another job's routing signals. quota/used mutate only under the stager
// lock; the gauges are lock-order leaves readable from any thread.
type tenantState struct {
	quota   int        // admission cap in resident blocks; 0 = uncapped
	used    int        // resident blocks charged to this tenant
	level   flow.Level // used vs quota (capacity falls back to BufferBlocks)
	in      flow.Meter // lifetime blocks admitted
	spilled flow.Meter // lifetime blocks spilled off this tenant's account
}

// slot is one received mixed message, decomposed and queued in arrival
// order. A slot leaves the queue only once fully forwarded, so its Fin and
// disk refs never overtake its blocks.
type slot struct {
	from, dest int
	blocks     []*relayBlock
	disk       []rt.DiskRef
	fin        bool
	// finBlocks/finDisk are the Fin's declared delivery totals, carried
	// through the relay so counted stream termination survives the hop.
	finBlocks, finDisk int64
	meta               *Record // journaled disk refs + Fin (fault mode only)
}

// Stager is one in-transit staging endpoint.
type Stager struct {
	env rt.Env
	cfg Config
	id  int
	in  rt.Inbox
	tr  rt.Transport
	fs  rt.BlockStore // spill partition; nil disables spilling

	// Compress-instead-of-spill rung (Config.Reduce with OnPressure):
	// gate flips under the stager lock as occupancy crosses its thresholds,
	// fwdEnc encodes forwarded blocks while the gate is engaged (owned by
	// the forwarder thread), spillEnc encodes spill victims for stateless
	// operators (owned by the spiller thread), and spillAt is the raised
	// spill threshold — reduction gets a chance to absorb the burst before
	// the PFS rung engages. Without OnPressure, spillAt == HighWater and
	// the rest are nil.
	gate     *flow.ReduceGate
	fwdEnc   *reduce.Encoder
	spillEnc *reduce.Encoder
	spillAt  int

	lk        rt.Lock
	work      rt.Cond // queue gained forwardable content or state change
	space     rt.Cond // in-memory occupancy dropped
	spillWork rt.Cond // occupancy rose above the spill threshold

	done rt.Cond // a runtime thread exited

	queue       []*slot
	memBlocks   int // blocks resident in memory (mirrored in fl.Queue)
	finsGot     int
	recvDone    bool
	forwardDone bool
	spillDone   bool
	killed      bool // crashed via Kill; threads stop at their next boundary
	unleased    bool // clean-drain Unlease already ran
	err         error
	finished    time.Duration
	fl          flow.StagerFlows
	ten         []*tenantState // pre-sized per-tenant states; nil when single-tenant
}

// NewStager builds the runtime module for stager endpoint id, draining `in`
// and forwarding over `tr` to consumer endpoints, spilling overflow through
// fs (nil disables the spill path), and starts its receiver, forwarder, and
// spiller threads.
func NewStager(env rt.Env, cfg Config, id int, in rt.Inbox, tr rt.Transport, fs rt.BlockStore) *Stager {
	cfg = cfg.withDefaults()
	if !cfg.Managed && cfg.Producers < 1 {
		panic("staging: stager needs at least one producer")
	}
	if cfg.Journal != nil && (!cfg.Managed || fs == nil) {
		panic("staging: a crash journal requires a managed stager with a spill store")
	}
	s := &Stager{env: env, cfg: cfg, id: id, in: in, tr: tr, fs: fs}
	s.spillAt = cfg.HighWater
	if cfg.Reduce.Enabled() && cfg.Reduce.OnPressure {
		s.gate = flow.NewReduceGate(cfg.HighWater)
		s.fwdEnc = reduce.NewEncoder(cfg.Reduce)
		if cfg.Reduce.Operator.Stateless() {
			s.spillEnc = reduce.NewEncoder(cfg.Reduce)
		}
		// Give reduction headroom to absorb the burst before the PFS rung:
		// spill only from halfway between the old threshold and the top.
		s.spillAt = cfg.HighWater + (cfg.BufferBlocks-cfg.HighWater)/2
		if s.spillAt >= cfg.BufferBlocks {
			s.spillAt = cfg.BufferBlocks - 1
		}
	}
	if cfg.Tenants > 0 {
		if cfg.Tenant == nil {
			panic("staging: Tenants > 0 requires a Tenant resolver")
		}
		s.ten = make([]*tenantState, cfg.Tenants)
		for i := range s.ten {
			ts := &tenantState{}
			ts.level.SetCapacity(cfg.BufferBlocks)
			s.ten[i] = ts
		}
	}
	s.fl.Queue.SetCapacity(cfg.BufferBlocks)
	s.lk = env.NewLock(fmt.Sprintf("zstage.%d", id))
	s.work = s.lk.NewCond(fmt.Sprintf("zstage.%d.work", id))
	s.space = s.lk.NewCond(fmt.Sprintf("zstage.%d.space", id))
	s.spillWork = s.lk.NewCond(fmt.Sprintf("zstage.%d.spillWork", id))
	s.done = s.lk.NewCond(fmt.Sprintf("zstage.%d.done", id))
	env.Go(fmt.Sprintf("zstage.%d.receiver", id), s.receiverThread)
	env.Go(fmt.Sprintf("zstage.%d.forwarder", id), s.forwarderThread)
	if fs != nil {
		env.Go(fmt.Sprintf("zstage.%d.spiller", id), s.spillerThread)
	} else {
		s.spillDone = true
	}
	if cfg.Heartbeat != nil && cfg.HeartbeatInterval > 0 {
		env.Go(fmt.Sprintf("zstage.%d.heartbeat", id), s.heartbeatThread)
	}
	return s
}

// ID returns the stager endpoint id.
func (s *Stager) ID() int { return s.id }

func (s *Stager) traceName(thread string) string {
	return fmt.Sprintf("zstage.%d.%s", s.id, thread)
}

// Occupancy reports the live in-memory buffer fill (blocks) and its
// capacity. It is safe to call from any thread without the stager lock —
// producers poll it on every routing decision.
func (s *Stager) Occupancy() (queued, capacity int) {
	return s.fl.Queue.Get()
}

// Level exposes the buffer-occupancy gauge itself so the flow-control plane
// can read both the instantaneous fill and its time-weighted average. This
// is what core.Config.StagerLevel should return.
func (s *Stager) Level() *flow.Level { return &s.fl.Queue }

// Flows exposes the module's live flow gauges.
func (s *Stager) Flows() *flow.StagerFlows { return &s.fl }

// TenantLevel exposes tenant's occupancy gauge (resident blocks vs its
// admission quota) — the per-tenant routing signal and the pressure gauge
// the control plane's preemption rule reads. Safe from any thread; nil for
// a single-tenant stager or an out-of-range tenant.
func (s *Stager) TenantLevel(tenant int) *flow.Level {
	if s.ten == nil || tenant < 0 || tenant >= len(s.ten) {
		return nil
	}
	return &s.ten[tenant].level
}

// TenantSpilled returns tenant's lifetime spilled-block count at this
// endpoint. Safe from any thread; 0 for a single-tenant stager.
func (s *Stager) TenantSpilled(tenant int) int64 {
	if s.ten == nil || tenant < 0 || tenant >= len(s.ten) {
		return 0
	}
	return s.ten[tenant].spilled.Total()
}

// TenantIn returns tenant's lifetime admitted-block count at this endpoint.
// Safe from any thread; 0 for a single-tenant stager.
func (s *Stager) TenantIn(tenant int) int64 {
	if s.ten == nil || tenant < 0 || tenant >= len(s.ten) {
		return 0
	}
	return s.ten[tenant].in.Total()
}

// SetTenantQuota sets tenant's admission cap in resident blocks (0 =
// uncapped): the receiver holds tenant's messages once its resident count
// would exceed the cap, which is the backpressure that keeps one job's
// burst from consuming another job's share of the buffer. The control
// plane's reconcile loop is the caller. No-op on a single-tenant stager.
func (s *Stager) SetTenantQuota(c rt.Ctx, tenant, blocks int) {
	if s.ten == nil || tenant < 0 || tenant >= len(s.ten) {
		return
	}
	s.lk.Lock(c)
	ts := s.ten[tenant]
	ts.quota = blocks
	capacity := blocks
	if capacity <= 0 || capacity > s.cfg.BufferBlocks {
		capacity = s.cfg.BufferBlocks
	}
	ts.level.SetCapacity(capacity)
	// A raised quota may unblock a receiver parked on the tenant's old cap.
	s.space.Broadcast()
	s.lk.Unlock(c)
}

// tenantOf resolves an arriving message's tenant state (nil when
// single-tenant; out-of-range ranks fold to tenant 0).
func (s *Stager) tenantOf(from int) *tenantState {
	if s.ten == nil {
		return nil
	}
	t := s.cfg.Tenant(from)
	if t < 0 || t >= len(s.ten) {
		t = 0
	}
	return s.ten[t]
}

// chargeTenantLocked moves delta resident blocks onto (or off) ts's account
// and refreshes its occupancy gauge.
func (s *Stager) chargeTenantLocked(c rt.Ctx, ts *tenantState, delta int) {
	if ts == nil {
		return
	}
	ts.used += delta
	ts.level.Set(c.Now(), ts.used)
}

// Err reports a runtime failure (an unwritable or unreadable spill block).
// After a failure the stager keeps forwarding what it can so streams still
// terminate, but relayed data may be missing — callers must treat the run
// as lost.
func (s *Stager) Err(c rt.Ctx) error {
	s.lk.Lock(c)
	defer s.lk.Unlock(c)
	return s.err
}

// Wait blocks until the receiver, forwarder, and spiller threads have
// exited: every assigned producer sent its Fin (or, for a managed stager,
// the Retire arrived) and all relayed data was delivered.
func (s *Stager) Wait(c rt.Ctx) {
	s.lk.Lock(c)
	for !(s.recvDone && s.forwardDone && s.spillDone) {
		s.done.Wait(c)
	}
	s.lk.Unlock(c)
}

// Drained reports, without blocking, whether every runtime thread has exited
// — for a managed stager, that the Retire arrived and the flush completed.
// The elastic scaler polls it to learn when a retired endpoint's slot can be
// reused.
func (s *Stager) Drained(c rt.Ctx) bool {
	s.lk.Lock(c)
	defer s.lk.Unlock(c)
	return s.recvDone && s.forwardDone && s.spillDone
}

// Kill crashes the endpoint for fault injection, SIGKILL-style: the
// forwarder and spiller stop at their next batch boundary without flushing
// (an in-flight Send completes — the network never tears a message), and
// the receiver switches to dead mode: it keeps draining the inbox so
// producers parked in Send never deadlock, hands everything that arrives
// to the journal as orphans, and exits only when the eviction path's
// Retire lands. Nothing is lost: the write-ahead journal owns every block
// the crash strands, and the recovery reader replays it. Requires fault
// mode (Config.Journal).
func (s *Stager) Kill(c rt.Ctx) {
	if s.cfg.Journal == nil {
		panic("staging: Kill requires a crash journal (fault mode)")
	}
	s.lk.Lock(c)
	s.killed = true
	s.work.Broadcast()
	s.space.Broadcast()
	s.spillWork.Broadcast()
	s.done.Broadcast()
	s.lk.Unlock(c)
}

// Killed reports whether the endpoint was crashed via Kill — the liveness
// oracle the shutdown sweep consults to tell an undetected crash from a
// healthy member about to drain.
func (s *Stager) Killed(c rt.Ctx) bool {
	s.lk.Lock(c)
	defer s.lk.Unlock(c)
	return s.killed
}

// NeedsRetire reports whether the receiver thread is still draining the
// inbox — whether the eviction path must deliver a Retire before Wait can
// return. (Sending a Retire to an endpoint whose receiver already exited
// would park the sender on a window nobody drains.)
func (s *Stager) NeedsRetire(c rt.Ctx) bool {
	s.lk.Lock(c)
	defer s.lk.Unlock(c)
	return !s.recvDone
}

// maybeUnleaseLocked runs the clean-drain lease release: the last runtime
// thread to exit — and only on a genuine drain, never a crash — hands the
// lease back synchronously, so by the time Wait/Drained observe the
// endpoint as done the failure detector already knows the silence is
// planned.
func (s *Stager) maybeUnleaseLocked() {
	if s.recvDone && s.forwardDone && s.spillDone && !s.killed && !s.unleased && s.cfg.Unlease != nil {
		s.unleased = true
		s.cfg.Unlease()
	}
}

// heartbeatThread renews the endpoint's lease every HeartbeatInterval. A
// crash stops the beats silently (the lease lapses and the failure
// detector evicts); a clean drain stops them after Unlease already ran.
func (s *Stager) heartbeatThread(c rt.Ctx) {
	for {
		c.Sleep(s.cfg.HeartbeatInterval)
		s.lk.Lock(c)
		killed := s.killed
		done := s.recvDone && s.forwardDone && s.spillDone
		s.lk.Unlock(c)
		if killed || done {
			return
		}
		s.cfg.Heartbeat(c)
	}
}

// snapshot assembles a stats snapshot with rates evaluated at `now`.
func (s *Stager) snapshot(now time.Duration, live bool) Stats {
	st := Stats{
		BlocksIn:        s.fl.In.Total(),
		BlocksForwarded: s.fl.Forwarded.Total(),
		BlocksSpilled:   s.fl.Spilled.Total(),
		SpilledBytes:    s.fl.SpilledBytes.Total(),
		DiskRefs:        s.fl.DiskRefs.Total(),
		MessagesIn:      s.fl.MessagesIn.Total(),
		MessagesOut:     s.fl.MessagesOut.Total(),
		BytesOnWire:     s.fl.WireBytes.Total(),
		BytesReduced:    s.fl.SavedBytes.Total(),
		MaxQueued:       s.fl.Queue.Max(),
		RecvBusy:        s.fl.RecvBusy.TotalDur(),
		ForwardBusy:     s.fl.ForwardBusy.TotalDur(),
		SpillBusy:       s.fl.SpillBusy.TotalDur(),
		Finished:        s.finished,
	}
	if s.gate != nil {
		st.ReduceBursts = s.gate.Engagements()
	}
	st.Queued, st.Capacity = s.fl.Queue.Get()
	if live {
		st.ForwardRate = s.fl.Forwarded.Rate(now)
	} else {
		st.ForwardRate = s.fl.Forwarded.LastRate()
	}
	return st
}

// Stats returns a snapshot of the module's flow gauges: totals plus the live
// buffer occupancy and forwarding rate as of the calling thread's clock.
// Call after Wait for final totals.
func (s *Stager) Stats(c rt.Ctx) Stats {
	s.lk.Lock(c)
	st := s.snapshot(c.Now(), true)
	s.lk.Unlock(c)
	return st
}

// FinalStats returns the counters without a platform clock. It is safe only
// once the platform has fully stopped; rates are reported as of each gauge's
// last event.
func (s *Stager) FinalStats() Stats { return s.snapshot(0, false) }

func (s *Stager) setOccLocked(c rt.Ctx, n int) {
	s.memBlocks = n
	s.fl.Queue.Set(c.Now(), n)
}

// receiverThread admits relayed mixed messages into the queue until every
// assigned producer has sent its Fin. Admission is whole-message: the
// receiver waits for buffer room for all of a message's blocks (unless the
// buffer is empty, so oversized batches still make progress), which keeps
// partially built slots out of the forwarder's and spiller's sight.
func (s *Stager) receiverThread(c rt.Ctx) {
	for {
		start := c.Now()
		m, ok := s.in.Recv(c)
		busy := c.Now() - start
		s.lk.Lock(c)
		s.fl.RecvBusy.AddDur(c.Now(), busy)
		if !ok {
			break // inbox closed under us: treat as end of stream
		}
		if s.killed {
			// Dead mode: a crashed endpoint's inbox must keep draining —
			// producers parked in Send would deadlock otherwise — but
			// nothing is admitted. Everything that arrives before the
			// eviction path's Retire is handed to the journal as an orphan
			// for the recovery reader.
			s.lk.Unlock(c)
			if m.Retire {
				s.lk.Lock(c)
				break
			}
			s.cfg.Journal.AddOrphan(m)
			continue
		}
		if s.cfg.Recorder != nil && len(m.Blocks) > 0 {
			s.cfg.Recorder.Add(s.traceName("receiver"), "recv", start, start+busy)
		}
		if m.Retire {
			// The scaler retires this endpoint: the pool membership change
			// already quiesced, so this is the last message — stop admitting
			// and let the forwarder flush the queue and spill partition.
			break
		}
		ts := s.tenantOf(m.From)
		sl := &slot{from: m.From, dest: m.Dest, disk: m.Disk, fin: m.Fin,
			finBlocks: m.FinBlocks, finDisk: m.FinDisk}
		for _, b := range m.Blocks {
			sl.blocks = append(sl.blocks, &relayBlock{b: b, id: b.ID, offset: b.Offset,
				bytes: b.Bytes, enc: b.Enc, encBytes: b.EncBytes, ten: ts})
		}
		if s.cfg.Journal != nil {
			// Write ahead, outside the lock: the message is fully durable
			// (blocks in the spool partition, metadata journaled) before it
			// can become visible to the forwarder.
			s.lk.Unlock(c)
			walBusy := s.walSlot(c, sl)
			s.lk.Lock(c)
			s.fl.SpillBusy.AddDur(c.Now(), walBusy)
			if s.killed {
				// The crash landed mid-journaling: the records already cover
				// this message, so admitting it too would replay duplicates.
				s.lk.Unlock(c)
				continue
			}
		}
		// Admission is whole-message against both caps: the shared buffer,
		// and — multi-tenant — the sender's own quota. Each cap yields when
		// the relevant occupancy is zero so oversized batches still make
		// progress, and a tenant with nothing resident is never blocked by
		// another tenant's quota arithmetic.
		need := len(m.Blocks)
		for need > 0 && !s.killed &&
			((s.memBlocks > 0 && s.memBlocks+need > s.cfg.BufferBlocks) ||
				(ts != nil && ts.quota > 0 && ts.used > 0 && ts.used+need > ts.quota)) {
			s.space.Wait(c)
		}
		if s.killed {
			// Crashed while waiting for buffer room: the journal owns the
			// message now (fault mode is the only way killed can be set).
			s.lk.Unlock(c)
			continue
		}
		s.queue = append(s.queue, sl)
		s.setOccLocked(c, s.memBlocks+need)
		if ts != nil && need > 0 {
			s.chargeTenantLocked(c, ts, need)
			ts.in.Add(c.Now(), int64(need))
		}
		s.fl.MessagesIn.Add(c.Now(), 1)
		s.fl.In.Add(c.Now(), int64(need))
		s.fl.DiskRefs.Add(c.Now(), int64(len(m.Disk)))
		s.work.Signal()
		if s.gate != nil {
			s.gate.Observe(s.memBlocks)
		}
		if s.memBlocks > s.spillAt {
			s.spillWork.Signal()
		}
		if m.Fin && !s.cfg.Managed {
			s.finsGot++
			if s.finsGot == s.cfg.Producers {
				break
			}
		}
		s.lk.Unlock(c)
	}
	s.recvDone = true
	s.work.Broadcast()
	s.spillWork.Broadcast()
	s.maybeUnleaseLocked()
	s.done.Broadcast()
	s.lk.Unlock(c)
}

// walSlot writes the write-ahead copy of one admitted message: each block
// into the spool partition plus a journal record, and one meta record for
// disk refs and Fins. Runs without the stager lock (WriteBlock parks).
// A failed write-ahead copy degrades gracefully: the record is kept, the
// normal forwarding path still delivers the in-memory block, and only if
// the endpoint then crashes does the unreadable spool copy surface as a
// Lost declaration — the documented fallback.
func (s *Stager) walSlot(c rt.Ctx, sl *slot) time.Duration {
	start := c.Now()
	for _, rb := range sl.blocks {
		_ = s.fs.WriteBlock(c, rb.b)
		// The spool copy is the stager's private durability copy, not a
		// preserved block: the consumer must keep treating the forwarded
		// in-memory block as network data.
		rb.b.OnDisk = false
		rb.rec = s.cfg.Journal.addBlock(rb.id, rb.offset, rb.bytes, sl.from, sl.dest)
	}
	if len(sl.disk) > 0 || sl.fin {
		sl.meta = s.cfg.Journal.addMeta(sl.from, sl.dest, sl.disk, sl.fin, sl.finBlocks, sl.finDisk)
	}
	return c.Now() - start
}

// assembleLocked removes the next outgoing batch from the head of the
// queue: blocks for a single destination, up to MaxBatchBlocks /
// MaxBatchBytes, merging consecutive slots (re-batching) and stopping once
// a Fin is included or a block still being spilled is reached. The head
// block is always taken. Returns ok=false when nothing is consumable right
// now (head block mid-spill).
//
// A merged message can carry blocks from several producers — blocks
// self-identify through their IDs, so the outgoing From is informational:
// it names the Fin's producer when the message carries one (Fin attribution
// must stay exact) and the first merged producer otherwise.
//
// On a multi-tenant stager the batch does not have to start at the head:
// one tenant's slow consumer must not stall every other tenant's traffic
// behind it. When the transport reports receive credits, the batch starts
// at the earliest run whose destination can accept a message right now —
// per-destination FIFO order is preserved because a destination's earliest
// slot is always its first in the queue. With no credit anywhere (or no
// credit visibility) the head run is taken and the send blocks: that is
// the natural backpressure. Single-tenant stagers keep strict FIFO so the
// private-tier forwarding order is untouched.
func (s *Stager) assembleLocked(c rt.Ctx) (taken []*relayBlock, disk []rt.DiskRef, from, dest int, fin bool, finBlocks, finDisk int64, metas []*Record, ok bool) {
	start := 0
	if s.cfg.Tenants > 1 {
		if ct, hasCredit := s.tr.(rt.CreditTransport); hasCredit {
			for i, sl := range s.queue {
				if ct.Credits(sl.dest) > 0 {
					start = i
					break
				}
			}
		}
	}
	head := s.queue[start]
	from, dest = head.from, head.dest
	var bytes int64
	freed := 0
	end := start
	for end < len(s.queue) && !fin {
		sl := s.queue[end]
		if sl.dest != dest {
			break
		}
		blocked := false
		for len(sl.blocks) > 0 {
			rb := sl.blocks[0]
			if rb.spilling {
				blocked = true
				break
			}
			if len(taken) > 0 && (len(taken) >= s.cfg.MaxBatchBlocks ||
				(s.cfg.MaxBatchBytes > 0 && bytes+rb.bytes > s.cfg.MaxBatchBytes)) {
				blocked = true
				break
			}
			sl.blocks = sl.blocks[1:]
			taken = append(taken, rb)
			bytes += rb.bytes
			if !rb.spilled {
				freed++
				s.chargeTenantLocked(c, rb.ten, -1)
			}
		}
		if blocked {
			break
		}
		// Slot fully consumed: its disk refs and Fin travel with (or after)
		// its last block, never before.
		disk = append(disk, sl.disk...)
		if sl.meta != nil {
			metas = append(metas, sl.meta)
		}
		if sl.fin {
			fin = true
			from = sl.from
			finBlocks, finDisk = sl.finBlocks, sl.finDisk
		}
		end++
	}
	if end > start {
		s.queue = append(s.queue[:start], s.queue[end:]...)
	}
	if freed > 0 {
		s.setOccLocked(c, s.memBlocks-freed)
		s.space.Broadcast()
	}
	ok = len(taken) > 0 || len(disk) > 0 || fin
	return
}

// forwarderThread drains the queue head, re-reads any spilled blocks, and
// sends re-batched mixed messages to the destination consumers.
func (s *Stager) forwarderThread(c rt.Ctx) {
	for {
		s.lk.Lock(c)
		var taken []*relayBlock
		var disk []rt.DiskRef
		var from, dest int
		var fin, ok bool
		var finBlocks, finDisk int64
		var metas []*Record
		for {
			if s.killed {
				// Crashed: abandon the queue without flushing — the
				// write-ahead journal owns every stranded block and the
				// recovery reader replays it.
				s.forwardDone = true
				s.finished = c.Now()
				s.done.Broadcast()
				s.lk.Unlock(c)
				return
			}
			if len(s.queue) > 0 {
				taken, disk, from, dest, fin, finBlocks, finDisk, metas, ok = s.assembleLocked(c)
				if ok {
					break
				}
			} else if s.recvDone {
				s.forwardDone = true
				s.finished = c.Now()
				s.maybeUnleaseLocked()
				s.done.Broadcast()
				s.lk.Unlock(c)
				return
			}
			s.work.Wait(c)
		}
		encodeNow := s.gate != nil && s.gate.Observe(s.memBlocks)
		s.lk.Unlock(c)

		blocks := make([]*block.Block, 0, len(taken))
		var unspillBusy time.Duration
		var unspillErr error
		var lost int64
		for _, rb := range taken {
			if !rb.spilled {
				blocks = append(blocks, rb.b)
				continue
			}
			readSize := rb.bytes
			if rb.enc != 0 {
				readSize = rb.encBytes
			}
			start := c.Now()
			b, err := s.fs.ReadBlock(c, rb.id, readSize)
			unspillBusy += c.Now() - start
			if err != nil {
				unspillErr = fmt.Errorf("staging: re-reading spilled block %v: %w", rb.id, err)
				// Forward the rest, declaring the drop: the consumer counts
				// Lost against the Fins' declared totals, so the stream
				// still terminates (the data is gone either way — Err marks
				// the run lost).
				lost++
				continue
			}
			// Reclaim the spill file and hand the block on as a fresh
			// in-memory one: the consumer must not mistake the stager's
			// private spill copy for a preserved block.
			_ = s.fs.RemoveBlock(c, rb.id)
			b.Offset = rb.offset
			b.OnDisk = false
			if rb.enc != 0 {
				// Restore the reduction stamp on platforms whose spill store
				// keeps no payload (realenv's file header already did this).
				b.Enc = rb.enc
				b.EncBytes = rb.encBytes
				b.Bytes = rb.bytes
			}
			blocks = append(blocks, b)
		}
		if s.cfg.Recorder != nil && unspillBusy > 0 {
			s.cfg.Recorder.Add(s.traceName("forwarder"), "unspill", c.Now()-unspillBusy, c.Now())
		}
		if encodeNow && s.fwdEnc != nil {
			// Compress-instead-of-spill rung: occupancy is past the old spill
			// threshold, so burn forwarder CPU shrinking what goes on the wire
			// before the raised PFS rung engages. Blocks that arrived already
			// encoded pass through untouched.
			if pp := s.cfg.Pipeline; pp != nil && s.fwdEnc.Stateless() {
				for _, b := range blocks {
					if b.Enc == 0 {
						s.env.CopyDelay(c, b.Bytes)
					}
				}
				if err := pp.EncodeBatch(blocks); err != nil {
					panic(fmt.Sprintf("staging: reducing relayed batch: %v", err))
				}
			} else {
				for _, b := range blocks {
					if b.Enc != 0 {
						continue
					}
					s.env.CopyDelay(c, b.Bytes)
					if err := s.fwdEnc.EncodeBlock(b); err != nil {
						panic(fmt.Sprintf("staging: reducing relayed block: %v", err))
					}
				}
			}
		}
		var rawBytes, wireBytes int64
		for _, b := range blocks {
			rawBytes += b.Bytes
			wireBytes += b.WireBytes()
		}

		start := c.Now()
		s.tr.Send(c, dest, rt.Message{From: from, Dest: dest, Blocks: blocks, Disk: disk,
			Fin: fin, FinBlocks: finBlocks, FinDisk: finDisk, Lost: lost})
		busy := c.Now() - start
		if s.cfg.Recorder != nil && len(blocks) > 0 {
			s.cfg.Recorder.Add(s.traceName("forwarder"), "forward", start, start+busy)
		}

		if s.cfg.Journal != nil {
			// Delivery retires the write-ahead records and reclaims the
			// resident blocks' spool copies (spilled ones were already
			// removed at re-read; lost ones were declared in the message).
			for _, rb := range taken {
				if rb.rec != nil {
					s.cfg.Journal.markDelivered(rb.rec)
				}
				if !rb.spilled {
					_ = s.fs.RemoveBlock(c, rb.id)
				}
			}
			for _, mr := range metas {
				s.cfg.Journal.markDelivered(mr)
			}
		}

		s.lk.Lock(c)
		s.fl.ForwardBusy.AddDur(c.Now(), busy)
		s.fl.SpillBusy.AddDur(c.Now(), unspillBusy)
		s.fl.MessagesOut.Add(c.Now(), 1)
		s.fl.Forwarded.Add(c.Now(), int64(len(blocks)))
		s.fl.WireBytes.Add(c.Now(), wireBytes)
		if saved := rawBytes - wireBytes; saved > 0 {
			s.fl.SavedBytes.Add(c.Now(), saved)
		}
		if unspillErr != nil && s.err == nil {
			s.err = unspillErr
		}
		s.lk.Unlock(c)
	}
}

// spillerThread overflows the newest in-memory blocks to the spill store
// while occupancy is above the high-water mark: the queue head keeps
// streaming from memory while the tail — the data the consumer will want
// last — rides out the burst on the parallel file system. A failed spill
// disables the thread (data stays in memory; the buffer simply stops
// absorbing past its capacity).
func (s *Stager) spillerThread(c rt.Ctx) {
	for {
		s.lk.Lock(c)
		var victim *relayBlock
		for victim == nil {
			if s.killed {
				s.spillDone = true
				s.done.Broadcast()
				s.lk.Unlock(c)
				return
			}
			if s.memBlocks > s.spillAt {
				victim = s.newestResidentLocked()
			}
			if victim != nil {
				break
			}
			if s.recvDone {
				s.spillDone = true
				s.maybeUnleaseLocked()
				s.done.Broadcast()
				s.lk.Unlock(c)
				return
			}
			s.spillWork.Wait(c)
		}
		victim.spilling = true
		s.lk.Unlock(c)

		// In fault mode the write-ahead copy made at admission already sits
		// in the spool partition, so "spilling" is just dropping the
		// in-memory payload.
		var err error
		var busy time.Duration
		if s.cfg.Journal == nil {
			if s.spillEnc != nil && victim.b.Enc == 0 {
				// Even once the raised rung engages, shrink the spill I/O
				// itself: the victim rides to the PFS (and later back and
				// onto the wire) encoded. Stateless operators only — the
				// spiller takes blocks out of stream order.
				s.env.CopyDelay(c, victim.b.Bytes)
				if encErr := s.spillEnc.EncodeBlock(victim.b); encErr != nil {
					panic(fmt.Sprintf("staging: reducing spill victim: %v", encErr))
				}
			}
			start := c.Now()
			err = s.fs.WriteBlock(c, victim.b)
			busy = c.Now() - start
			if s.cfg.Recorder != nil {
				s.cfg.Recorder.Add(s.traceName("spiller"), "spill", start, start+busy)
			}
		}

		s.lk.Lock(c)
		s.fl.SpillBusy.AddDur(c.Now(), busy)
		victim.spilling = false
		if err != nil {
			victim.b.OnDisk = false
			if s.err == nil {
				s.err = fmt.Errorf("staging: spilling block %v: %w", victim.id, err)
			}
			s.spillDone = true
			s.work.Broadcast()
			s.maybeUnleaseLocked()
			s.done.Broadcast()
			s.lk.Unlock(c)
			return
		}
		victim.enc = victim.b.Enc
		victim.encBytes = victim.b.EncBytes
		spillBytes := victim.b.WireBytes()
		victim.b.Release() // recycle the payload: the spill copy is authoritative now
		victim.b = nil
		victim.spilled = true
		if victim.ten != nil {
			// The spill moves the block off the tenant's resident account —
			// the spill-heavy tenant pays the PFS detour, and its spilled
			// meter is the signal the control plane's preemption rule reads.
			s.chargeTenantLocked(c, victim.ten, -1)
			victim.ten.spilled.Add(c.Now(), 1)
		}
		s.fl.Spilled.Add(c.Now(), 1)
		s.fl.SpilledBytes.Add(c.Now(), spillBytes)
		s.setOccLocked(c, s.memBlocks-1)
		s.space.Broadcast()
		s.work.Broadcast() // a forwarder parked on a mid-spill head can move again
		s.lk.Unlock(c)
	}
}

// newestResidentLocked finds the youngest in-memory block — the one whose
// turn to be forwarded is farthest away. On a multi-tenant stager the scan
// first targets the tenant holding the largest fraction of its quota, so
// the spill cost of a shared burst lands on the account that caused it; if
// that tenant has no spillable block the global newest is taken as before.
func (s *Stager) newestResidentLocked() *relayBlock {
	if ts := s.pressuredTenantLocked(); ts != nil {
		for i := len(s.queue) - 1; i >= 0; i-- {
			sl := s.queue[i]
			for j := len(sl.blocks) - 1; j >= 0; j-- {
				rb := sl.blocks[j]
				if rb.ten == ts && !rb.spilled && !rb.spilling {
					return rb
				}
			}
		}
	}
	for i := len(s.queue) - 1; i >= 0; i-- {
		sl := s.queue[i]
		for j := len(sl.blocks) - 1; j >= 0; j-- {
			rb := sl.blocks[j]
			if !rb.spilled && !rb.spilling {
				return rb
			}
		}
	}
	return nil
}

// pressuredTenantLocked returns the tenant with the highest resident
// occupancy relative to its admission quota (ties to the lower tenant id),
// or nil on a single-tenant stager or when nothing is resident.
func (s *Stager) pressuredTenantLocked() *tenantState {
	var best *tenantState
	var bestFrac float64
	for _, ts := range s.ten {
		if ts.used == 0 {
			continue
		}
		capacity := ts.quota
		if capacity <= 0 {
			capacity = s.cfg.BufferBlocks
		}
		frac := float64(ts.used) / float64(capacity)
		if best == nil || frac > bestFrac {
			best, bestFrac = ts, frac
		}
	}
	return best
}
