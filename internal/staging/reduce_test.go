package staging

import (
	"testing"
	"time"

	"zipper/internal/core"
	"zipper/internal/reduce"
)

// TestCompressInsteadOfSpill drives a small stager buffer with a slow
// consumer so occupancy climbs past the high-water mark, with the
// OnPressure reduction rung configured. The gate must engage at least
// once, forwarded bytes must shrink below the raw payload total, and
// every block must still arrive intact, in order, and decoded.
func TestCompressInsteadOfSpill(t *testing.T) {
	r := newRig(t, 1, 1, 1,
		core.Config{RoutePolicy: core.RouteStaging, DisableSteal: true, BufferBlocks: 32, MaxBatchBlocks: 4},
		Config{BufferBlocks: 8, Reduce: reduce.Config{Operator: reduce.Compress, OnPressure: true}},
		1)
	const blocks = 120
	const blockBytes = 512
	wg := r.produce(t, blocks, blockBytes)

	ctx := r.env.Ctx()
	seq := 0
	for {
		b, ok := r.cons[0].Read(ctx)
		if !ok {
			break
		}
		if b.Enc != 0 {
			t.Fatalf("block %v reached the application still encoded (enc=%d)", b.ID, b.Enc)
		}
		if int64(len(b.Data)) != int64(blockBytes) || b.Bytes != blockBytes {
			t.Fatalf("block %v: %d data bytes / %d logical, want %d", b.ID, len(b.Data), b.Bytes, blockBytes)
		}
		if b.ID.Seq != seq {
			t.Fatalf("out of order: seq %d, want %d", b.ID.Seq, seq)
		}
		if b.Data[0] != 0 || b.Data[len(b.Data)-1] != byte(b.ID.Step) {
			t.Fatalf("block %v corrupted through the reduction rung", b.ID)
		}
		seq++
		time.Sleep(500 * time.Microsecond) // the backpressure that fills the stager
	}
	wg.Wait()
	r.stage[0].Wait(ctx)
	r.cons[0].Wait(ctx)
	if err := r.stage[0].Err(ctx); err != nil {
		t.Fatal(err)
	}
	if seq != blocks {
		t.Fatalf("delivered %d blocks, want %d", seq, blocks)
	}
	st := r.stage[0].Stats(ctx)
	if st.ReduceBursts == 0 {
		t.Fatal("reduction gate never engaged despite sustained backpressure")
	}
	raw := int64(blocks) * blockBytes
	if st.BytesOnWire >= raw {
		t.Fatalf("forwarded %d bytes, want under the %d raw", st.BytesOnWire, raw)
	}
	if st.BytesReduced == 0 {
		t.Fatal("BytesReduced is zero despite engaged gate and compressible payloads")
	}
	if st.BytesOnWire+st.BytesReduced != raw {
		t.Fatalf("accounting leak: %d on wire + %d reduced != %d raw",
			st.BytesOnWire, st.BytesReduced, raw)
	}
}

// TestProducerReducedRelaySurvivesSpill runs producer-side (non-gated)
// reduction through a stager small enough to spill: encoded blocks must
// cycle through the spill partition with their reduction stamp intact —
// the consumer, not the stager, does the one decode.
func TestProducerReducedRelaySurvivesSpill(t *testing.T) {
	r := newRig(t, 1, 1, 1,
		core.Config{RoutePolicy: core.RouteStaging, DisableSteal: true, BufferBlocks: 32,
			MaxBatchBlocks: 4, Reduce: reduce.Config{Operator: reduce.Compress}},
		Config{BufferBlocks: 8},
		1)
	const blocks = 120
	const blockBytes = 512
	wg := r.produce(t, blocks, blockBytes)

	ctx := r.env.Ctx()
	seq := 0
	for {
		b, ok := r.cons[0].Read(ctx)
		if !ok {
			break
		}
		if b.Enc != 0 {
			t.Fatalf("block %v reached the application still encoded (enc=%d)", b.ID, b.Enc)
		}
		if b.ID.Seq != seq {
			t.Fatalf("out of order: seq %d, want %d", b.ID.Seq, seq)
		}
		if b.Data[0] != 0 || b.Data[len(b.Data)-1] != byte(b.ID.Step) {
			t.Fatalf("block %v corrupted after encoded spill cycle", b.ID)
		}
		seq++
		time.Sleep(500 * time.Microsecond)
	}
	wg.Wait()
	r.stage[0].Wait(ctx)
	r.cons[0].Wait(ctx)
	if err := r.stage[0].Err(ctx); err != nil {
		t.Fatal(err)
	}
	if seq != blocks {
		t.Fatalf("delivered %d blocks, want %d", seq, blocks)
	}
	st := r.stage[0].Stats(ctx)
	if st.BlocksSpilled == 0 {
		t.Fatal("no spills despite 8-block stager buffer and slow consumer")
	}
	raw := int64(blocks) * blockBytes
	if st.BytesOnWire >= raw {
		t.Fatalf("forwarded %d bytes, want under the %d raw (producer encoded)", st.BytesOnWire, raw)
	}
	ps := r.prod[0].Stats(ctx)
	if ps.BytesReduced == 0 {
		t.Fatal("producer reports no reduction despite Reduce configured")
	}
	if ps.BytesOnWire+ps.BytesReduced != raw {
		t.Fatalf("producer accounting leak: %d on wire + %d reduced != %d raw",
			ps.BytesOnWire, ps.BytesReduced, raw)
	}
}
