package staging

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"zipper/internal/block"
	"zipper/internal/core"
	"zipper/internal/flow"
	"zipper/internal/rt"
	"zipper/internal/rt/realenv"
)

// rig wires producers → stager(s) → consumers over the in-process realenv
// network, with each stager spilling into its own partition of the spool
// directory.
type rig struct {
	env    *realenv.Env
	net    *realenv.Network
	prod   []*core.Producer
	cons   []*core.Consumer
	stage  []*Stager
	spool  string
	window int
}

func newRig(t *testing.T, producers, consumers, stagers int, ccfg core.Config, scfg Config, window int) *rig {
	t.Helper()
	dir := t.TempDir()
	env := realenv.New()
	net := realenv.NewNetwork(consumers+stagers, window)
	fs, err := realenv.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{env: env, net: net, spool: dir, window: window}
	for q := 0; q < consumers; q++ {
		n := 0
		for p := 0; p < producers; p++ {
			if p*consumers/producers == q {
				n++
			}
		}
		r.cons = append(r.cons, core.NewConsumer(env, ccfg, q, n, net.Inbox(q), fs))
	}
	for s := 0; s < stagers; s++ {
		spill, err := fs.Partition(fmt.Sprintf("stage%d", s))
		if err != nil {
			t.Fatal(err)
		}
		cfg := scfg
		cfg.Producers = 0
		for p := 0; p < producers; p++ {
			if p%stagers == s {
				cfg.Producers++
			}
		}
		r.stage = append(r.stage, NewStager(env, cfg, s, net.Inbox(consumers+s), net, spill))
	}
	if stagers > 0 {
		ccfg.StagerLevel = func(addr int) *flow.Level { return r.stage[addr-consumers].Level() }
	}
	for p := 0; p < producers; p++ {
		addr := core.NoStager
		if stagers > 0 {
			addr = consumers + p%stagers
		}
		r.prod = append(r.prod, core.NewStagedProducer(env, ccfg, p, p*consumers/producers, addr, net, fs))
	}
	return r
}

func (r *rig) produce(t *testing.T, blocks, blockBytes int) *sync.WaitGroup {
	t.Helper()
	var wg sync.WaitGroup
	for i, p := range r.prod {
		wg.Add(1)
		go func(rank int, p *core.Producer) {
			defer wg.Done()
			c := r.env.Ctx()
			for s := 0; s < blocks; s++ {
				data := make([]byte, blockBytes)
				data[0], data[blockBytes-1] = byte(rank), byte(s)
				p.Write(c, s, 0, data, int64(blockBytes))
			}
			p.Close(c)
			p.Wait(c)
		}(i, p)
	}
	return &wg
}

// TestRelayRoundTrip pushes every block through the staging tier and checks
// nothing is lost, payloads survive, per-producer order holds on the pure
// network path, and the stager re-batches (fewer messages out than in).
func TestRelayRoundTrip(t *testing.T) {
	r := newRig(t, 3, 2, 1,
		core.Config{RoutePolicy: core.RouteStaging, DisableSteal: true, BufferBlocks: 16, MaxBatchBlocks: 4},
		Config{BufferBlocks: 1 << 20}, // never spill: pure memory relay
		2)
	const blocks = 200
	wg := r.produce(t, blocks, 64)

	var mu sync.Mutex
	total := 0
	lastSeq := map[int]int{}
	var cwg sync.WaitGroup
	for q, c := range r.cons {
		cwg.Add(1)
		go func(q int, c *core.Consumer) {
			defer cwg.Done()
			x := r.env.Ctx()
			for {
				b, ok := c.Read(x)
				if !ok {
					return
				}
				if b.Data[0] != byte(b.ID.Rank) || b.Data[len(b.Data)-1] != byte(b.ID.Step) {
					t.Errorf("block %v corrupted", b.ID)
				}
				mu.Lock()
				total++
				// With stealing disabled the relay is FIFO per producer.
				if last, seen := lastSeq[b.ID.Rank]; seen && b.ID.Seq != last+1 {
					t.Errorf("rank %d out of order: seq %d after %d", b.ID.Rank, b.ID.Seq, last)
				}
				lastSeq[b.ID.Rank] = b.ID.Seq
				mu.Unlock()
			}
		}(q, c)
	}
	wg.Wait()
	cwg.Wait()
	ctx := r.env.Ctx()
	for _, s := range r.stage {
		s.Wait(ctx)
		if err := s.Err(ctx); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range r.cons {
		c.Wait(ctx)
	}
	if total != 3*blocks {
		t.Fatalf("delivered %d blocks, want %d", total, 3*blocks)
	}
	st := r.stage[0].Stats(ctx)
	if st.BlocksIn != 3*blocks || st.BlocksForwarded != 3*blocks {
		t.Fatalf("stager moved %d in / %d out, want %d", st.BlocksIn, st.BlocksForwarded, 3*blocks)
	}
	if st.BlocksSpilled != 0 {
		t.Fatalf("unexpected spills: %d", st.BlocksSpilled)
	}
	if st.MessagesOut >= st.MessagesIn {
		t.Fatalf("no re-batching: %d messages in, %d out", st.MessagesIn, st.MessagesOut)
	}
	for i, p := range r.prod {
		ps := p.Stats(ctx)
		if ps.BlocksSent != 0 || ps.BlocksRelayed != blocks {
			t.Fatalf("producer %d: sent=%d relayed=%d, want 0/%d", i, ps.BlocksSent, ps.BlocksRelayed, blocks)
		}
	}
}

// TestSpillUnderBackpressure forces the stager past its high-water mark with
// a slow consumer and verifies overflowed blocks come back intact, in order,
// and that the spill partition is reclaimed.
func TestSpillUnderBackpressure(t *testing.T) {
	r := newRig(t, 1, 1, 1,
		core.Config{RoutePolicy: core.RouteStaging, DisableSteal: true, BufferBlocks: 32, MaxBatchBlocks: 4},
		Config{BufferBlocks: 8},
		1)
	const blocks = 120
	wg := r.produce(t, blocks, 512)

	ctx := r.env.Ctx()
	seq := 0
	for {
		b, ok := r.cons[0].Read(ctx)
		if !ok {
			break
		}
		if b.ID.Seq != seq {
			t.Fatalf("out of order: seq %d, want %d", b.ID.Seq, seq)
		}
		if b.Data[0] != 0 || b.Data[len(b.Data)-1] != byte(b.ID.Step) {
			t.Fatalf("block %v corrupted after spill cycle", b.ID)
		}
		if b.OnDisk {
			t.Fatalf("relayed block %v still marked OnDisk", b.ID)
		}
		seq++
		time.Sleep(500 * time.Microsecond) // the backpressure that fills the stager
	}
	wg.Wait()
	r.stage[0].Wait(ctx)
	r.cons[0].Wait(ctx)
	if err := r.stage[0].Err(ctx); err != nil {
		t.Fatal(err)
	}
	if seq != blocks {
		t.Fatalf("delivered %d blocks, want %d", seq, blocks)
	}
	st := r.stage[0].Stats(ctx)
	if st.BlocksSpilled == 0 {
		t.Fatal("no spills despite 8-block stager buffer and slow consumer")
	}
	ents, err := os.ReadDir(r.spool + "/stage0")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("spill partition not reclaimed: %d files left", len(ents))
	}
}

// TestPreserveThroughRelay runs Preserve mode end to end through the staging
// tier: every relayed block — including ones that cycled through the
// stager's spill partition — must be persisted by the consumer's output
// thread exactly as on the direct path.
func TestPreserveThroughRelay(t *testing.T) {
	r := newRig(t, 2, 1, 1,
		core.Config{RoutePolicy: core.RouteStaging, DisableSteal: true, BufferBlocks: 16,
			MaxBatchBlocks: 4, Mode: core.Preserve},
		Config{BufferBlocks: 8},
		1)
	const blocks = 60
	wg := r.produce(t, blocks, 256)

	ctx := r.env.Ctx()
	n := 0
	for {
		b, ok := r.cons[0].Read(ctx)
		if !ok {
			break
		}
		r.cons[0].ReleaseBlock(ctx, b)
		n++
		time.Sleep(300 * time.Microsecond)
	}
	wg.Wait()
	r.stage[0].Wait(ctx)
	r.cons[0].Wait(ctx)
	if err := r.cons[0].Err(ctx); err != nil {
		t.Fatal(err)
	}
	if n != 2*blocks {
		t.Fatalf("analyzed %d blocks, want %d", n, 2*blocks)
	}
	cs := r.cons[0].Stats(ctx)
	if cs.BlocksStored != 2*blocks {
		t.Fatalf("preserved %d blocks, want %d", cs.BlocksStored, 2*blocks)
	}
	// Every block's preserved file lives in the spool root; the stager's
	// private partition must be empty again.
	ents, err := os.ReadDir(r.spool)
	if err != nil {
		t.Fatal(err)
	}
	files := 0
	for _, e := range ents {
		if !e.IsDir() {
			files++
		}
	}
	if files != 2*blocks {
		t.Fatalf("%d preserved files, want %d", files, 2*blocks)
	}
	stents, err := os.ReadDir(r.spool + "/stage0")
	if err != nil {
		t.Fatal(err)
	}
	if len(stents) != 0 {
		t.Fatalf("stager partition holds %d leftover files", len(stents))
	}
}

// TestFanInCreditAccounting drives many producers into one consumer through
// one stager under batching and cross-checks every counter pair across the
// three endpoint types: nothing lost, nothing double-counted, and the
// number of forwarded messages bounded by the window-credit protocol's
// guarantees (one Fin per producer, at least one message per batch cap).
func TestFanInCreditAccounting(t *testing.T) {
	const producers, blocks = 8, 100
	r := newRig(t, producers, 1, 2,
		core.Config{RoutePolicy: core.RouteStaging, DisableSteal: true, BufferBlocks: 8, MaxBatchBlocks: 8},
		Config{BufferBlocks: 64, MaxBatchBlocks: 8},
		1)
	wg := r.produce(t, blocks, 128)

	ctx := r.env.Ctx()
	perRank := map[int]int{}
	lastSeq := map[int]int{}
	for {
		b, ok := r.cons[0].Read(ctx)
		if !ok {
			break
		}
		perRank[b.ID.Rank]++
		if last, seen := lastSeq[b.ID.Rank]; seen && b.ID.Seq <= last {
			t.Fatalf("rank %d fan-in reordered: seq %d after %d", b.ID.Rank, b.ID.Seq, last)
		}
		lastSeq[b.ID.Rank] = b.ID.Seq
	}
	wg.Wait()
	for _, s := range r.stage {
		s.Wait(ctx)
	}
	r.cons[0].Wait(ctx)

	var relayed, msgs int64
	for _, p := range r.prod {
		ps := p.Stats(ctx)
		relayed += ps.BlocksRelayed
		msgs += ps.Messages
	}
	var stIn, stOut, stMsgsIn int64
	for _, s := range r.stage {
		st := s.Stats(ctx)
		stIn += st.BlocksIn
		stOut += st.BlocksForwarded
		stMsgsIn += st.MessagesIn
	}
	cs := r.cons[0].Stats(ctx)
	total := int64(producers * blocks)
	if relayed != total || stIn != total || stOut != total || cs.BlocksReceived != total || cs.BlocksAnalyzed != total {
		t.Fatalf("counter chain broken: relayed=%d stagerIn=%d stagerOut=%d received=%d analyzed=%d want %d",
			relayed, stIn, stOut, cs.BlocksReceived, cs.BlocksAnalyzed, total)
	}
	if stMsgsIn != msgs {
		t.Fatalf("stager saw %d messages, producers sent %d", stMsgsIn, msgs)
	}
	for rank, n := range perRank {
		if n != blocks {
			t.Fatalf("rank %d delivered %d blocks, want %d", rank, n, blocks)
		}
	}
}

// TestHybridPrefersDirectWhenConsumerKeepsUp checks the routing policy's
// other end: with an eager consumer the direct window always has credit, so
// hybrid routing must leave the staging tier essentially idle.
func TestHybridPrefersDirectWhenConsumerKeepsUp(t *testing.T) {
	r := newRig(t, 1, 1, 1,
		core.Config{RoutePolicy: core.RouteHybrid, DisableSteal: true, BufferBlocks: 8},
		Config{BufferBlocks: 64},
		8) // deep window: credit effectively always available
	const blocks = 200
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := r.env.Ctx()
		for s := 0; s < blocks; s++ {
			data := make([]byte, 64)
			r.prod[0].Write(c, s, 0, data, 64)
			// Throttled producer: the consumer genuinely keeps up, so the
			// direct window never exhausts.
			time.Sleep(100 * time.Microsecond)
		}
		r.prod[0].Close(c)
		r.prod[0].Wait(c)
	}()

	ctx := r.env.Ctx()
	n := 0
	for {
		if _, ok := r.cons[0].Read(ctx); !ok {
			break
		}
		n++
	}
	wg.Wait()
	for _, s := range r.stage {
		s.Wait(ctx)
	}
	r.cons[0].Wait(ctx)
	if n != blocks {
		t.Fatalf("delivered %d blocks, want %d", n, blocks)
	}
	ps := r.prod[0].Stats(ctx)
	if ps.BlocksSent < int64(blocks)*9/10 {
		t.Fatalf("hybrid relayed under an open window: direct=%d relayed=%d", ps.BlocksSent, ps.BlocksRelayed)
	}
}

// lossyStore injects an unreadable spill partition: spill writes succeed but
// every re-read fails, as a torn or corrupted spill file would.
type lossyStore struct{ inner rt.BlockStore }

func (s lossyStore) WriteBlock(c rt.Ctx, b *block.Block) error { return s.inner.WriteBlock(c, b) }
func (s lossyStore) ReadBlock(c rt.Ctx, id block.ID, bytes int64) (*block.Block, error) {
	return nil, errors.New("injected spill-read failure")
}
func (s lossyStore) RemoveBlock(c rt.Ctx, id block.ID) error { return s.inner.RemoveBlock(c, id) }

// TestLossyRelayStillTerminates pins the counted-termination escape hatch:
// when a stager cannot re-read spilled blocks, the relayed stream loses data
// (the run is lost, reported by Stager.Err) but the consumer's stream must
// still terminate — the forwarder declares the drops via Message.Lost, which
// counts against the Fins' declared totals. Before Lost existed this
// scenario hung the consumer forever.
func TestLossyRelayStillTerminates(t *testing.T) {
	const blocks, blockBytes = 100, 1 << 10
	dir := t.TempDir()
	env := realenv.New()
	net := realenv.NewNetwork(2, 1)
	fs, err := realenv.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	spill, err := fs.Partition("stage0")
	if err != nil {
		t.Fatal(err)
	}
	ccfg := core.Config{RoutePolicy: core.RouteStaging, DisableSteal: true,
		BufferBlocks: 16, MaxBatchBlocks: 4}
	cons := core.NewConsumer(env, ccfg, 0, 1, net.Inbox(0), fs)
	stg := NewStager(env, Config{BufferBlocks: 8, MaxBatchBlocks: 4, Producers: 1},
		0, net.Inbox(1), net, lossyStore{spill})
	prod := core.NewStagedProducer(env, ccfg, 0, 0, 1, net, fs)

	go func() {
		c := env.Ctx()
		for i := 0; i < blocks; i++ {
			data := make([]byte, blockBytes)
			prod.Write(c, i, 0, data, blockBytes)
		}
		prod.Close(c)
	}()
	received := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		c := env.Ctx()
		for {
			if _, ok := cons.Read(c); !ok {
				return
			}
			received++
			time.Sleep(2 * time.Millisecond) // lag so the stager spills
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("lossy relayed stream never terminated")
	}
	ctx := env.Ctx()
	prod.Wait(ctx)
	stg.Wait(ctx)
	cons.Wait(ctx)
	st := stg.FinalStats()
	if st.BlocksSpilled == 0 {
		t.Skip("no spills this run; loss path not exercised")
	}
	if err := stg.Err(ctx); err == nil {
		t.Fatal("stager reported no error despite unreadable spills")
	}
	if int64(received) != blocks-st.BlocksSpilled {
		t.Fatalf("received %d blocks, want %d (sent %d, lost %d spilled)",
			received, blocks-st.BlocksSpilled, blocks, st.BlocksSpilled)
	}
}
