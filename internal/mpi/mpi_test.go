package mpi

import (
	"fmt"
	"testing"
	"time"

	"zipper/internal/fabric"
	"zipper/internal/sim"
)

func rig(nodes int) (*sim.Engine, *World) {
	e := sim.New()
	f := fabric.New(e, fabric.Config{
		Nodes:         nodes,
		NodesPerLeaf:  8,
		LinkBandwidth: 1e9,
		LinkLatency:   time.Microsecond,
	})
	return e, NewWorld(e, f, Config{})
}

func placement(n int) []fabric.NodeID {
	p := make([]fabric.NodeID, n)
	for i := range p {
		p[i] = fabric.NodeID(i)
	}
	return p
}

func TestSendRecvEager(t *testing.T) {
	e, w := rig(2)
	c := w.AddRanks(placement(2))
	var got Message
	c.Launch("r", func(r *Rank) {
		switch r.Local() {
		case 0:
			c.Send(r, 1, 7, 1024, "hello")
		case 1:
			got = c.Recv(r, 0, 7)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got.Src != 0 || got.Tag != 7 || got.Bytes != 1024 || got.Data != "hello" {
		t.Fatalf("got %+v", got)
	}
}

func TestSendRecvRendezvous(t *testing.T) {
	e, w := rig(2)
	c := w.AddRanks(placement(2))
	const size = 8 << 20 // above eager limit
	var senderDone, recvDone time.Duration
	c.Launch("r", func(r *Rank) {
		switch r.Local() {
		case 0:
			c.Send(r, 1, 1, size, nil)
			senderDone = r.Proc().Now()
		case 1:
			r.Proc().Delay(50 * time.Millisecond) // receiver late
			c.Recv(r, 0, 1)
			recvDone = r.Proc().Now()
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Rendezvous: sender cannot finish before the late receiver matched plus
	// the wire time.
	wire := time.Duration(float64(size) / 1e9 * float64(time.Second))
	if senderDone < 50*time.Millisecond+wire {
		t.Fatalf("sender finished at %v, want ≥ %v", senderDone, 50*time.Millisecond+wire)
	}
	if recvDone < senderDone {
		t.Fatalf("receiver done %v before sender %v", recvDone, senderDone)
	}
}

func TestRecvAnySource(t *testing.T) {
	e, w := rig(3)
	c := w.AddRanks(placement(3))
	var got []int
	c.Launch("r", func(r *Rank) {
		switch r.Local() {
		case 0:
			for i := 0; i < 2; i++ {
				m := c.Recv(r, AnySource, 5)
				got = append(got, m.Src)
			}
		default:
			r.Proc().Delay(time.Duration(r.Local()) * time.Millisecond)
			c.Send(r, 0, 5, 64, nil)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("sources = %v, want [1 2] (arrival order)", got)
	}
}

func TestTagSelectivity(t *testing.T) {
	e, w := rig(2)
	c := w.AddRanks(placement(2))
	var first Message
	c.Launch("r", func(r *Rank) {
		switch r.Local() {
		case 0:
			c.Send(r, 1, 1, 8, "one")
			c.Send(r, 1, 2, 8, "two")
		case 1:
			first = c.Recv(r, 0, 2) // skip tag 1
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if first.Data != "two" {
		t.Fatalf("tag-selective recv got %v", first.Data)
	}
}

func TestIsendWaitall(t *testing.T) {
	e, w := rig(4)
	c := w.AddRanks(placement(4))
	received := 0
	c.Launch("r", func(r *Rank) {
		if r.Local() == 0 {
			var reqs []*Request
			for d := 1; d < 4; d++ {
				reqs = append(reqs, c.Isend(r, d, 9, 2<<20, nil))
			}
			Waitall(r, reqs)
		} else {
			c.Recv(r, 0, 9)
			received++
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if received != 3 {
		t.Fatalf("received = %d, want 3", received)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	e, w := rig(4)
	c := w.AddRanks(placement(4))
	var after []time.Duration
	c.Launch("r", func(r *Rank) {
		r.Proc().Delay(time.Duration(r.Local()+1) * 10 * time.Millisecond)
		c.Barrier(r)
		after = append(after, r.Proc().Now())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for _, a := range after {
		if a < 40*time.Millisecond {
			t.Fatalf("rank left barrier at %v, before last arrival at 40ms", a)
		}
	}
}

func TestBcast(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		n := n
		t.Run(fmt.Sprintf("p%d", n), func(t *testing.T) {
			e, w := rig(n)
			c := w.AddRanks(placement(n))
			got := make([]interface{}, n)
			c.Launch("r", func(r *Rank) {
				var v interface{}
				if r.Local() == 1%n {
					v = "payload"
				}
				got[r.Local()] = c.Bcast(r, 1%n, 4096, v)
			})
			if err := e.Run(); err != nil {
				t.Fatal(err)
			}
			for i, v := range got {
				if v != "payload" {
					t.Fatalf("rank %d got %v", i, v)
				}
			}
		})
	}
}

func TestAllreduce(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7} {
		n := n
		t.Run(fmt.Sprintf("p%d", n), func(t *testing.T) {
			e, w := rig(n)
			c := w.AddRanks(placement(n))
			sums := make([]float64, n)
			c.Launch("r", func(r *Rank) {
				sums[r.Local()] = c.AllreduceFloat64(r, float64(r.Local()+1), Sum)
			})
			if err := e.Run(); err != nil {
				t.Fatal(err)
			}
			want := float64(n*(n+1)) / 2
			for i, s := range sums {
				if s != want {
					t.Fatalf("rank %d sum = %v, want %v", i, s, want)
				}
			}
		})
	}
}

func TestSubAndUnionComms(t *testing.T) {
	e, w := rig(4)
	all := w.AddRanks(placement(4))
	prod := all.Sub([]int{0, 1})
	cons := all.Sub([]int{2, 3})
	if prod.Size() != 2 || cons.Size() != 2 {
		t.Fatal("sub sizes wrong")
	}
	u := Union(prod, cons)
	if u.Size() != 4 {
		t.Fatalf("union size = %d", u.Size())
	}
	// Cross-app send through the union comm, app-local barrier through subs.
	var got Message
	prod.Launch("prod", func(r *Rank) {
		prod.Barrier(r)
		if r.Local() == 0 {
			u.Send(r, 2, 3, 128, "cross") // union rank 2 = cons rank 0
		}
	})
	cons.Launch("cons", func(r *Rank) {
		cons.Barrier(r)
		if r.Local() == 0 {
			got = u.Recv(r, 0, 3)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got.Data != "cross" {
		t.Fatalf("cross-app message = %+v", got)
	}
}

func TestSendrecvHaloPattern(t *testing.T) {
	// Ring halo exchange: every rank sends to right, receives from left.
	const n = 6
	e, w := rig(n)
	c := w.AddRanks(placement(n))
	got := make([]int, n)
	c.Launch("r", func(r *Rank) {
		right := (r.Local() + 1) % n
		left := (r.Local() + n - 1) % n
		m := c.Sendrecv(r, right, 4, 1<<20, r.Local(), left, 4)
		got[r.Local()] = m.Data.(int)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if want := (i + n - 1) % n; got[i] != want {
			t.Fatalf("rank %d received %d, want %d", i, got[i], want)
		}
	}
}

func TestMessageOrderPreservedPerPair(t *testing.T) {
	e, w := rig(2)
	c := w.AddRanks(placement(2))
	var seq []int
	c.Launch("r", func(r *Rank) {
		if r.Local() == 0 {
			for i := 0; i < 5; i++ {
				c.Send(r, 1, 0, 64, i)
			}
		} else {
			for i := 0; i < 5; i++ {
				seq = append(seq, c.Recv(r, 0, 0).Data.(int))
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range seq {
		if v != i {
			t.Fatalf("order %v", seq)
		}
	}
}

func BenchmarkPingPong(b *testing.B) {
	e, w := rig(2)
	c := w.AddRanks(placement(2))
	c.Launch("r", func(r *Rank) {
		if r.Local() == 0 {
			for i := 0; i < b.N; i++ {
				c.Send(r, 1, 0, 1024, nil)
				c.Recv(r, 1, 1)
			}
		} else {
			for i := 0; i < b.N; i++ {
				c.Recv(r, 0, 0)
				c.Send(r, 0, 1, 1024, nil)
			}
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
