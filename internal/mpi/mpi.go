// Package mpi provides an MPI-like message-passing layer for simulated
// ranks: point-to-point Send/Recv/Sendrecv with eager and rendezvous
// protocols, non-blocking Isend with Wait/Waitall, and binomial-tree
// collectives (Barrier, Bcast, Allreduce). Data movement is charged to the
// fabric model, so message traffic from different libraries and from the
// application itself contends for the same ports — the interference the
// paper traces in Figures 5 and 6.
//
// A World owns global rank identities; Comms are ordered subsets with
// comm-relative addressing, mirroring MPI communicators. Decaf-style
// workflows build one spanning communicator and per-application
// sub-communicators from it.
package mpi

import (
	"fmt"
	"math"
	"time"

	"zipper/internal/fabric"
	"zipper/internal/sim"
)

// AnySource matches a message from any sender in Recv.
const AnySource = -1

// collectiveTag is reserved for internal collective traffic.
const collectiveTag = -1000

// Config tunes the messaging layer.
type Config struct {
	// EagerLimit is the message size up to which sends complete without
	// waiting for a matching receive. Zero selects 64 KiB.
	EagerLimit int64
}

// Message is a received message.
type Message struct {
	Src   int // comm-relative source rank
	Tag   int
	Bytes int64
	Data  interface{}
}

// envelope is an in-flight message in a rank's arrival queue.
type envelope struct {
	srcWorld int
	tag      int
	bytes    int64
	data     interface{}
	rendez   bool
	matched  *sim.WaitGroup // sender waits until a receiver matches
	done     *sim.WaitGroup // receiver waits until the transfer completes
}

// rankState is the per-world-rank matching engine.
type rankState struct {
	node  fabric.NodeID
	mu    *sim.Mutex
	cond  *sim.Cond
	inbox []*envelope
	proc  *sim.Proc
}

// World owns rank identities and their mailboxes.
type World struct {
	eng   *sim.Engine
	fab   *fabric.Fabric
	cfg   Config
	ranks []*rankState
}

// NewWorld creates an empty world over the engine and fabric.
func NewWorld(e *sim.Engine, f *fabric.Fabric, cfg Config) *World {
	if cfg.EagerLimit <= 0 {
		cfg.EagerLimit = 64 << 10
	}
	return &World{eng: e, fab: f, cfg: cfg}
}

// Engine returns the underlying simulation engine.
func (w *World) Engine() *sim.Engine { return w.eng }

// Fabric returns the underlying network model.
func (w *World) Fabric() *fabric.Fabric { return w.fab }

// AddRanks creates len(nodes) new world ranks placed on the given fabric
// nodes and returns a communicator over them.
func (w *World) AddRanks(nodes []fabric.NodeID) *Comm {
	c := &Comm{w: w}
	for _, n := range nodes {
		id := len(w.ranks)
		st := &rankState{node: n}
		st.mu = sim.NewMutex(w.eng, fmt.Sprintf("mpi.rank%d", id))
		st.cond = sim.NewCond(st.mu, fmt.Sprintf("mpi.rank%d.arrive", id))
		w.ranks = append(w.ranks, st)
		c.members = append(c.members, id)
	}
	c.buildIndex()
	c.barrier = sim.NewBarrier(w.eng, fmt.Sprintf("mpi.comm%p.barrier", c), len(c.members))
	return c
}

// Comm is an ordered set of world ranks with comm-relative addressing.
type Comm struct {
	w       *World
	members []int       // world ranks
	index   map[int]int // world rank -> local rank
	barrier *sim.Barrier
}

func (c *Comm) buildIndex() {
	c.index = make(map[int]int, len(c.members))
	for i, m := range c.members {
		c.index[m] = i
	}
}

// Size reports the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.members) }

// Node reports the fabric node of a comm-relative rank.
func (c *Comm) Node(local int) fabric.NodeID { return c.w.ranks[c.members[local]].node }

// Sub builds a communicator from a subset of comm-relative ranks.
func (c *Comm) Sub(locals []int) *Comm {
	s := &Comm{w: c.w}
	for _, l := range locals {
		s.members = append(s.members, c.members[l])
	}
	s.buildIndex()
	s.barrier = sim.NewBarrier(c.w.eng, fmt.Sprintf("mpi.comm%p.barrier", s), len(s.members))
	return s
}

// Union builds a communicator spanning several communicators, in order and
// without duplicates.
func Union(comms ...*Comm) *Comm {
	if len(comms) == 0 {
		panic("mpi: Union of no communicators")
	}
	u := &Comm{w: comms[0].w}
	seen := map[int]bool{}
	for _, c := range comms {
		if c.w != u.w {
			panic("mpi: Union across worlds")
		}
		for _, m := range c.members {
			if !seen[m] {
				seen[m] = true
				u.members = append(u.members, m)
			}
		}
	}
	u.buildIndex()
	u.barrier = sim.NewBarrier(u.w.eng, fmt.Sprintf("mpi.comm%p.barrier", u), len(u.members))
	return u
}

// Rank is a launched process bound to a communicator slot.
type Rank struct {
	c     *Comm
	local int
	world int
	proc  *sim.Proc
}

// Proc returns the rank's simulation process handle.
func (r *Rank) Proc() *sim.Proc { return r.proc }

// Local returns the comm-relative rank within the launching communicator.
func (r *Rank) Local() int { return r.local }

// WorldRank returns the world-level rank id.
func (r *Rank) WorldRank() int { return r.world }

// Node returns the fabric node the rank runs on.
func (r *Rank) Node() fabric.NodeID { return r.c.w.ranks[r.world].node }

// Comm returns the communicator the rank was launched on.
func (r *Rank) Comm() *Comm { return r.c }

// LocalIn translates this rank into other's comm-relative numbering.
func (r *Rank) LocalIn(other *Comm) int {
	l, ok := other.index[r.world]
	if !ok {
		panic(fmt.Sprintf("mpi: rank w%d not in communicator", r.world))
	}
	return l
}

// Launch spawns one simulation process per comm rank, binding each to a Rank
// handle. name is a prefix; processes are named name.<local>.
func (c *Comm) Launch(name string, fn func(*Rank)) {
	for i := range c.members {
		i := i
		r := &Rank{c: c, local: i, world: c.members[i]}
		c.w.eng.Spawn(fmt.Sprintf("%s.%d", name, i), func(p *sim.Proc) {
			r.proc = p
			c.w.ranks[r.world].proc = p
			fn(r)
		})
	}
}

// sendFrom implements blocking send semantics from srcWorld's node using
// process p (which may be a helper for Isend).
func (c *Comm) sendFrom(p *sim.Proc, srcWorld int, dstLocal, tag int, bytes int64, data interface{}) {
	w := c.w
	dstWorld := c.members[dstLocal]
	dst := w.ranks[dstWorld]
	srcNode := w.ranks[srcWorld].node
	if bytes <= w.cfg.EagerLimit {
		// Eager: pay the wire cost now, deposit, return.
		w.fab.Send(p, srcNode, dst.node, bytes)
		dst.mu.Lock(p)
		dst.inbox = append(dst.inbox, &envelope{srcWorld: srcWorld, tag: tag, bytes: bytes, data: data})
		dst.cond.Broadcast()
		dst.mu.Unlock(p)
		return
	}
	// Rendezvous: offer, wait for match, then transfer.
	env := &envelope{
		srcWorld: srcWorld, tag: tag, bytes: bytes, data: data, rendez: true,
		matched: sim.NewWaitGroup(w.eng, "mpi.rndv.match"),
		done:    sim.NewWaitGroup(w.eng, "mpi.rndv.done"),
	}
	env.matched.Add(1)
	env.done.Add(1)
	// Request-to-send control message.
	w.fab.Send(p, srcNode, dst.node, 0)
	dst.mu.Lock(p)
	dst.inbox = append(dst.inbox, env)
	dst.cond.Broadcast()
	dst.mu.Unlock(p)
	env.matched.Wait(p)
	w.fab.Send(p, srcNode, dst.node, bytes)
	env.done.Done()
}

// Send transfers bytes to dst (comm-relative) with the given tag, blocking
// until the message is deliverable (eager) or delivered (rendezvous).
func (c *Comm) Send(r *Rank, dst, tag int, bytes int64, data interface{}) {
	c.sendFrom(r.proc, r.world, dst, tag, bytes, data)
}

// Recv blocks until a message with matching source and tag arrives. src may
// be AnySource. The returned Src is comm-relative; messages from ranks
// outside this communicator are matched only by AnySource and report Src=-2.
func (c *Comm) Recv(r *Rank, src, tag int) Message {
	w := c.w
	st := w.ranks[r.world]
	var wantWorld int = AnySource
	if src != AnySource {
		wantWorld = c.members[src]
	}
	st.mu.Lock(r.proc)
	for {
		for i, env := range st.inbox {
			if env.tag != tag {
				continue
			}
			if wantWorld != AnySource && env.srcWorld != wantWorld {
				continue
			}
			st.inbox = append(st.inbox[:i], st.inbox[i+1:]...)
			st.mu.Unlock(r.proc)
			if env.rendez {
				env.matched.Done()
				env.done.Wait(r.proc)
			}
			local, ok := c.index[env.srcWorld]
			if !ok {
				local = -2
			}
			return Message{Src: local, Tag: env.tag, Bytes: env.bytes, Data: env.data}
		}
		st.cond.Wait(r.proc)
	}
}

// Request tracks a non-blocking operation.
type Request struct {
	wg *sim.WaitGroup
}

// Wait blocks until the operation completes.
func (q *Request) Wait(r *Rank) { q.wg.Wait(r.proc) }

// Waitall blocks until every request completes (MPI_Waitall).
func Waitall(r *Rank, reqs []*Request) {
	for _, q := range reqs {
		q.Wait(r)
	}
}

// Isend starts a non-blocking send serviced by a helper process on the same
// node and returns a request.
func (c *Comm) Isend(r *Rank, dst, tag int, bytes int64, data interface{}) *Request {
	req := &Request{wg: sim.NewWaitGroup(c.w.eng, "mpi.isend")}
	req.wg.Add(1)
	srcWorld := r.world
	c.w.eng.Spawn(fmt.Sprintf("isend.w%d", srcWorld), func(p *sim.Proc) {
		c.sendFrom(p, srcWorld, dst, tag, bytes, data)
		req.wg.Done()
	})
	return req
}

// Sendrecv performs a blocking combined send and receive, as used by halo
// exchanges (MPI_Sendrecv).
func (c *Comm) Sendrecv(r *Rank, dst, sendTag int, sendBytes int64, sendData interface{}, src, recvTag int) Message {
	req := c.Isend(r, dst, sendTag, sendBytes, sendData)
	m := c.Recv(r, src, recvTag)
	req.Wait(r)
	return m
}

// Barrier blocks until every rank of the communicator has entered, then
// charges the dissemination-algorithm latency (log2(P) rounds).
func (c *Comm) Barrier(r *Rank) {
	c.barrier.Wait(r.proc)
	rounds := int(math.Ceil(math.Log2(float64(len(c.members)))))
	if rounds > 0 {
		r.proc.Delay(time.Duration(rounds) * 2 * c.w.fab.Config().LinkLatency)
	}
}

// Bcast distributes bytes from root to all ranks along a binomial tree.
// Every rank must call it with the same arguments; the root's data value is
// returned on every rank.
func (c *Comm) Bcast(r *Rank, root int, bytes int64, data interface{}) interface{} {
	p := len(c.members)
	me := r.LocalIn(c)
	vrank := (me - root + p) % p
	got := data
	recvd := vrank == 0
	for mask := 1; mask < p; mask <<= 1 {
		if vrank < mask { // already has data: maybe send
			peer := vrank + mask
			if peer < p {
				c.Send(r, (peer+root)%p, collectiveTag, bytes, got)
			}
		} else if vrank < mask<<1 && !recvd {
			m := c.Recv(r, (vrank-mask+root)%p, collectiveTag)
			got = m.Data
			recvd = true
		}
	}
	return got
}

// Op is a reduction operator for AllreduceFloat64.
type Op func(a, b float64) float64

// Sum and Max are the common reduction operators.
func Sum(a, b float64) float64 { return a + b }
func Max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// AllreduceFloat64 reduces v across the communicator with op and returns the
// result on every rank (binomial reduce to rank 0, then broadcast).
func (c *Comm) AllreduceFloat64(r *Rank, v float64, op Op) float64 {
	p := len(c.members)
	me := r.LocalIn(c)
	acc := v
	const payload = 8
	for mask := 1; mask < p; mask <<= 1 {
		if me&mask != 0 {
			c.Send(r, me-mask, collectiveTag, payload, acc)
			break
		}
		if me+mask < p {
			m := c.Recv(r, me+mask, collectiveTag)
			acc = op(acc, m.Data.(float64))
		}
	}
	out := c.Bcast(r, 0, payload, acc)
	return out.(float64)
}
