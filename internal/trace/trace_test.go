package trace

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestTotalsAndCounts(t *testing.T) {
	r := NewRecorder()
	r.Add("sim.0", "collision", ms(0), ms(10))
	r.Add("sim.0", "streaming", ms(10), ms(15))
	r.Add("sim.0", "collision", ms(15), ms(25))
	r.Add("sim.1", "collision", ms(0), ms(8))
	r.Add("ana.0", "analyze", ms(5), ms(20))

	if got := r.TotalByState("sim.0")["collision"]; got != ms(20) {
		t.Fatalf("sim.0 collision = %v, want 20ms", got)
	}
	if got := r.Total("sim", "collision"); got != ms(28) {
		t.Fatalf("sim* collision = %v, want 28ms", got)
	}
	if got := r.CountSpans("sim", "collision"); got != 3 {
		t.Fatalf("count = %d, want 3", got)
	}
	if got := r.Total("", "analyze"); got != ms(15) {
		t.Fatalf("analyze total = %v", got)
	}
}

func TestWindowClipsAndShifts(t *testing.T) {
	r := NewRecorder()
	r.Add("p", "a", ms(0), ms(10))
	r.Add("p", "b", ms(10), ms(30))
	r.Add("p", "c", ms(30), ms(40))
	w := r.Window(ms(5), ms(35))
	spans := w.Spans()
	if len(spans) != 3 {
		t.Fatalf("window kept %d spans, want 3", len(spans))
	}
	if spans[0].Start != 0 || spans[0].End != ms(5) {
		t.Fatalf("first clipped span = %+v", spans[0])
	}
	if spans[2].Start != ms(25) || spans[2].End != ms(30) {
		t.Fatalf("last clipped span = %+v", spans[2])
	}
}

func TestWindowDropsOutside(t *testing.T) {
	r := NewRecorder()
	r.Add("p", "early", ms(0), ms(5))
	r.Add("p", "late", ms(50), ms(60))
	if got := r.Window(ms(10), ms(40)).Len(); got != 0 {
		t.Fatalf("window kept %d spans, want 0", got)
	}
}

func TestStepsIn(t *testing.T) {
	r := NewRecorder()
	// Three 10ms steps; a window covering 2.5 of them.
	for i := 0; i < 3; i++ {
		r.Add("sim.0", "step", ms(i*10), ms(i*10+10))
	}
	got := r.StepsIn("sim", "step", ms(0), ms(25))
	if got < 2.45 || got > 2.55 {
		t.Fatalf("StepsIn = %v, want ≈2.5", got)
	}
}

func TestStepsInAveragesOverProcs(t *testing.T) {
	r := NewRecorder()
	r.Add("sim.0", "step", ms(0), ms(10))
	r.Add("sim.0", "step", ms(10), ms(20))
	r.Add("sim.1", "step", ms(0), ms(20)) // slower proc: 1 step
	got := r.StepsIn("sim", "step", ms(0), ms(20))
	if got != 1.5 {
		t.Fatalf("StepsIn = %v, want 1.5", got)
	}
}

func TestGanttRendersStates(t *testing.T) {
	r := NewRecorder()
	r.Add("sim.0", "compute", ms(0), ms(50))
	r.Add("sim.0", "stall", ms(50), ms(100))
	out := r.Gantt(GanttOptions{Width: 10, Symbols: map[string]rune{"compute": 'C', "stall": '#'}})
	if !strings.Contains(out, "CCCCC#####") {
		t.Fatalf("unexpected gantt:\n%s", out)
	}
	if !strings.Contains(out, "C=compute") || !strings.Contains(out, "#=stall") {
		t.Fatalf("legend missing:\n%s", out)
	}
}

func TestGanttIdleColumns(t *testing.T) {
	r := NewRecorder()
	r.Add("p", "x", ms(0), ms(10))
	r.Add("p", "x", ms(90), ms(100))
	out := r.Gantt(GanttOptions{Width: 10, Symbols: map[string]rune{"x": 'X'}})
	if !strings.Contains(out, "X........X") {
		t.Fatalf("gantt:\n%s", out)
	}
}

func TestGanttEmpty(t *testing.T) {
	r := NewRecorder()
	if out := r.Gantt(GanttOptions{}); !strings.Contains(out, "empty") {
		t.Fatalf("empty gantt = %q", out)
	}
}

func TestDisabledRecorderDrops(t *testing.T) {
	r := NewRecorder()
	r.SetEnabled(false)
	r.Add("p", "x", 0, ms(1))
	if r.Len() != 0 {
		t.Fatal("disabled recorder kept a span")
	}
	r.SetEnabled(true)
	r.Add("p", "x", 0, ms(1))
	if r.Len() != 1 {
		t.Fatal("re-enabled recorder dropped a span")
	}
}

func TestNegativeSpanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative span did not panic")
		}
	}()
	NewRecorder().Add("p", "x", ms(2), ms(1))
}

func TestTimed(t *testing.T) {
	r := NewRecorder()
	var fake time.Duration
	clock := func() time.Duration { return fake }
	r.Timed("p", "work", clock, func() { fake = ms(42) })
	s := r.Spans()
	if len(s) != 1 || s[0].Dur() != ms(42) {
		t.Fatalf("timed span = %+v", s)
	}
}

// Property: windowing preserves total in-window duration per state.
func TestWindowConservesDuration(t *testing.T) {
	prop := func(starts []uint16) bool {
		r := NewRecorder()
		for i, s := range starts {
			if i >= 10 {
				break
			}
			st := time.Duration(s%1000) * time.Millisecond
			r.Add("p", "x", st, st+ms(17))
		}
		from, to := ms(100), ms(600)
		w := r.Window(from, to)
		var want time.Duration
		for _, s := range r.Spans() {
			lo, hi := s.Start, s.End
			if lo < from {
				lo = from
			}
			if hi > to {
				hi = to
			}
			if hi > lo {
				want += hi - lo
			}
		}
		return w.Total("p", "x") == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
