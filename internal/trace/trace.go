// Package trace records per-process activity spans and renders them, in the
// spirit of the TAU / Intel Trace Analyzer views the paper uses to diagnose
// workflow inefficiencies (Figures 4, 5, 6, 17, 19).
//
// A Recorder collects (process, state, start, end) spans in either virtual or
// wall-clock time. Analyses include per-state time aggregation, windowed
// snapshots, and an ASCII Gantt chart renderer.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span is one contiguous interval during which a process was in a state.
type Span struct {
	Proc  string
	State string
	Start time.Duration
	End   time.Duration
}

// Dur returns the span length.
func (s Span) Dur() time.Duration { return s.End - s.Start }

// Recorder accumulates spans. It is safe for concurrent use so the same type
// serves the real runtime and the single-threaded simulator.
type Recorder struct {
	mu    sync.Mutex
	spans []Span
	off   bool
}

// NewRecorder returns an enabled recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// SetEnabled toggles collection; a disabled recorder drops spans.
func (r *Recorder) SetEnabled(on bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.off = !on
}

// Add records one span. Zero-length spans are kept (they mark instantaneous
// events); negative spans panic.
func (r *Recorder) Add(proc, state string, start, end time.Duration) {
	if end < start {
		panic(fmt.Sprintf("trace: span ends before it starts: %v < %v", end, start))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.off {
		return
	}
	r.spans = append(r.spans, Span{Proc: proc, State: state, Start: start, End: end})
}

// Timed runs fn and records its duration under (proc, state) using the clock.
func (r *Recorder) Timed(proc, state string, clock func() time.Duration, fn func()) {
	start := clock()
	fn()
	r.Add(proc, state, start, clock())
}

// Spans returns a copy of all recorded spans in insertion order.
func (r *Recorder) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	return out
}

// Len reports the number of recorded spans.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// TotalByState sums span durations per state, optionally filtered to one
// process ("" matches all).
func (r *Recorder) TotalByState(proc string) map[string]time.Duration {
	out := map[string]time.Duration{}
	for _, s := range r.Spans() {
		if proc != "" && s.Proc != proc {
			continue
		}
		out[s.State] += s.Dur()
	}
	return out
}

// Total sums the duration of one state across processes matching the prefix.
func (r *Recorder) Total(procPrefix, state string) time.Duration {
	var t time.Duration
	for _, s := range r.Spans() {
		if s.State == state && strings.HasPrefix(s.Proc, procPrefix) {
			t += s.Dur()
		}
	}
	return t
}

// CountSpans counts spans of a state across processes matching the prefix.
func (r *Recorder) CountSpans(procPrefix, state string) int {
	n := 0
	for _, s := range r.Spans() {
		if s.State == state && strings.HasPrefix(s.Proc, procPrefix) {
			n++
		}
	}
	return n
}

// Window clips all spans to [from, to), dropping spans fully outside it. The
// result's spans are shifted so the window starts at zero — this is the
// "snapshot" operation used for the paper's trace figures.
func (r *Recorder) Window(from, to time.Duration) *Recorder {
	out := NewRecorder()
	for _, s := range r.Spans() {
		if s.End <= from || s.Start >= to {
			continue
		}
		cs := s
		if cs.Start < from {
			cs.Start = from
		}
		if cs.End > to {
			cs.End = to
		}
		cs.Start -= from
		cs.End -= from
		out.spans = append(out.spans, cs)
	}
	return out
}

// Procs lists distinct process names in first-appearance order.
func (r *Recorder) Procs() []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range r.Spans() {
		if !seen[s.Proc] {
			seen[s.Proc] = true
			out = append(out, s.Proc)
		}
	}
	return out
}

// StepsIn estimates how many complete spans of the given state fit in the
// window [from,to) for processes with the prefix, counting partial spans
// fractionally. The paper uses this to compare "steps per snapshot" between
// Zipper and Decaf (Figures 17, 19).
func (r *Recorder) StepsIn(procPrefix, state string, from, to time.Duration) float64 {
	var total float64
	nProcs := map[string]bool{}
	for _, s := range r.Spans() {
		if s.State != state || !strings.HasPrefix(s.Proc, procPrefix) {
			continue
		}
		nProcs[s.Proc] = true
		if s.End <= from || s.Start >= to || s.Dur() == 0 {
			continue
		}
		ov := s
		if ov.Start < from {
			ov.Start = from
		}
		if ov.End > to {
			ov.End = to
		}
		total += float64(ov.Dur()) / float64(s.Dur())
	}
	if len(nProcs) == 0 {
		return 0
	}
	return total / float64(len(nProcs))
}

// GanttOptions configures rendering.
type GanttOptions struct {
	// Width is the number of time columns. Zero selects 100.
	Width int
	// Procs restricts and orders the rows; empty means all in appearance order.
	Procs []string
	// Symbols maps state -> glyph. States not listed get letters assigned in
	// first-appearance order.
	Symbols map[string]rune
}

// Gantt renders the recorder's spans as an ASCII timeline, one row per
// process, with a legend. Each column shows the state occupying the largest
// share of that time bucket ('.' for idle).
func (r *Recorder) Gantt(opt GanttOptions) string {
	spans := r.Spans()
	if len(spans) == 0 {
		return "(empty trace)\n"
	}
	width := opt.Width
	if width <= 0 {
		width = 100
	}
	procs := opt.Procs
	if len(procs) == 0 {
		procs = r.Procs()
	}
	var maxT time.Duration
	for _, s := range spans {
		if s.End > maxT {
			maxT = s.End
		}
	}
	if maxT == 0 {
		maxT = 1
	}
	symbols := map[string]rune{}
	for k, v := range opt.Symbols {
		symbols[k] = v
	}
	next := 0
	alphabet := []rune("CSUPTWRABDEFGHIJKLMNOQVXYZ")
	sym := func(state string) rune {
		if g, ok := symbols[state]; ok {
			return g
		}
		g := alphabet[next%len(alphabet)]
		next++
		symbols[state] = g
		return g
	}
	rowFor := map[string]int{}
	for i, p := range procs {
		rowFor[p] = i
	}
	// occupancy[row][col][state] = overlapped duration
	occ := make([]map[int]map[string]time.Duration, len(procs))
	for i := range occ {
		occ[i] = map[int]map[string]time.Duration{}
	}
	bucket := maxT / time.Duration(width)
	if bucket == 0 {
		bucket = 1
	}
	for _, s := range spans {
		row, ok := rowFor[s.Proc]
		if !ok {
			continue
		}
		c0 := int(s.Start / bucket)
		c1 := int((s.End - 1) / bucket)
		if s.Dur() == 0 {
			c1 = c0
		}
		for c := c0; c <= c1 && c < width; c++ {
			bs, be := time.Duration(c)*bucket, time.Duration(c+1)*bucket
			ov := minDur(s.End, be) - maxDur(s.Start, bs)
			if ov <= 0 {
				ov = 1
			}
			if occ[row][c] == nil {
				occ[row][c] = map[string]time.Duration{}
			}
			occ[row][c][s.State] += ov
		}
	}
	var b strings.Builder
	nameW := 0
	for _, p := range procs {
		if len(p) > nameW {
			nameW = len(p)
		}
	}
	for i, p := range procs {
		fmt.Fprintf(&b, "%-*s |", nameW, p)
		for c := 0; c < width; c++ {
			states := occ[i][c]
			if len(states) == 0 {
				b.WriteRune('.')
				continue
			}
			var best string
			var bestD time.Duration = -1
			keys := make([]string, 0, len(states))
			for k := range states {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				if states[k] > bestD {
					best, bestD = k, states[k]
				}
			}
			b.WriteRune(sym(best))
		}
		b.WriteString("|\n")
	}
	// Legend in glyph-assignment order.
	type kv struct {
		state string
		g     rune
	}
	var legend []kv
	for s, g := range symbols {
		legend = append(legend, kv{s, g})
	}
	sort.Slice(legend, func(i, j int) bool { return legend[i].state < legend[j].state })
	b.WriteString("legend:")
	for _, l := range legend {
		fmt.Fprintf(&b, " %c=%s", l.g, l.state)
	}
	fmt.Fprintf(&b, "  (span %v, %v/col)\n", maxT, bucket)
	return b.String()
}

func minDur(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
