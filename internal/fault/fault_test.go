package fault

import (
	"testing"
	"time"
)

func TestConfigWithDefaults(t *testing.T) {
	c := Config{Enabled: true}.WithDefaults()
	if c.Heartbeat != 500*time.Microsecond {
		t.Fatalf("Heartbeat default = %v", c.Heartbeat)
	}
	if c.LeaseTTL != 4*c.Heartbeat {
		t.Fatalf("LeaseTTL default = %v, want 4x heartbeat", c.LeaseTTL)
	}
	if c.MaxRecoveries != 3 {
		t.Fatalf("MaxRecoveries default = %d", c.MaxRecoveries)
	}
	// Explicit values survive, including the respawn-disabling -1.
	c = Config{Enabled: true, Heartbeat: time.Millisecond, LeaseTTL: 9 * time.Millisecond,
		MaxRecoveries: -1}.WithDefaults()
	if c.Heartbeat != time.Millisecond || c.LeaseTTL != 9*time.Millisecond || c.MaxRecoveries != -1 {
		t.Fatalf("explicit values clobbered: %+v", c)
	}
}

func TestConfigValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"disabled is always valid", Config{LeaseTTL: -time.Second}, true},
		{"zero selects defaults", Config{Enabled: true}, true},
		{"explicit sane timings", Config{Enabled: true, Heartbeat: time.Millisecond, LeaseTTL: 5 * time.Millisecond}, true},
		{"negative heartbeat", Config{Enabled: true, Heartbeat: -1}, false},
		{"TTL equal to heartbeat", Config{Enabled: true, Heartbeat: time.Millisecond, LeaseTTL: time.Millisecond}, false},
		{"TTL inside default heartbeat", Config{Enabled: true, LeaseTTL: 100 * time.Microsecond}, false},
		{"MaxRecoveries below -1", Config{Enabled: true, MaxRecoveries: -2}, false},
	} {
		err := tc.cfg.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}
