// Package fault is the survivable data plane's control loop: a failure
// detector plus recovery sequencer over a leased placement directory.
//
// Every fault-enabled stager holds a lease in the place.Directory, renewed
// by heartbeats clocked on rt.Ctx virtual time — so the simulated and real
// platforms share one deterministic detector. The Monitor sweeps the lease
// table every heartbeat interval; a member whose lease lapsed is evicted
// from the membership (a new epoch — producers re-resolve their claims
// through the placement policy automatically), fenced (the occupant is
// killed if it is somehow still moving, so a false-positive eviction can
// never race a live flush into duplicates), drained of its in-flight
// claims, and retired. The recovery reader then replays the dead
// endpoint's write-ahead journal — blocks from its spool partition, disk
// refs, Fins with their declared totals, and the orphan messages its dead
// receiver absorbed — so counted per-destination Fin accounting balances
// without consumers ever learning a relay died. Finally a replacement is
// respawned into the freed slot (up to MaxRecoveries per slot) and
// re-leased.
//
// At Stop the Monitor runs one forced sweep with the host's liveness
// oracle: kills injected so late that their TTL never lapsed are still
// recovered (no respawn — the run is ending), while healthy members about
// to drain are left alone.
package fault

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"zipper/internal/flow"
	"zipper/internal/place"
	"zipper/internal/rt"
)

// Config tunes the failure detector. The zero value of every field but
// Enabled selects the default noted on the field.
type Config struct {
	// Enabled turns the fault plane on: leases, heartbeats, the eviction
	// monitor, and write-ahead journaling on every managed stager.
	Enabled bool
	// Heartbeat is the lease renewal period and the detector's sweep
	// interval (default 500µs — virtual time under the simulator).
	Heartbeat time.Duration
	// LeaseTTL is how long a member may go without a heartbeat before it
	// is evicted (default 4×Heartbeat). Must exceed Heartbeat: a TTL inside
	// the renewal period would evict healthy members between beats.
	LeaseTTL time.Duration
	// MaxRecoveries caps how many replacement endpoints may be respawned
	// into one slot (default 3). -1 disables respawning entirely: evicted
	// slots are replayed but stay empty.
	MaxRecoveries int
}

// WithDefaults resolves zero fields.
func (c Config) WithDefaults() Config {
	if c.Heartbeat <= 0 {
		c.Heartbeat = 500 * time.Microsecond
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 4 * c.Heartbeat
	}
	if c.MaxRecoveries == 0 {
		c.MaxRecoveries = 3
	}
	return c
}

// Validate rejects inconsistent fault timings, before defaults are
// applied. It reports nothing when disabled.
func (c Config) Validate() error {
	if !c.Enabled {
		return nil
	}
	if c.Heartbeat < 0 || c.LeaseTTL < 0 {
		return errors.New("fault time constants must be ≥ 0 (0 selects the default)")
	}
	if c.LeaseTTL > 0 {
		hb := c.Heartbeat
		if hb == 0 {
			hb = 500 * time.Microsecond
		}
		if c.LeaseTTL <= hb {
			return fmt.Errorf("fault LeaseTTL (%v) must exceed the heartbeat interval (%v): a lease shorter than its renewal period evicts healthy members", c.LeaseTTL, hb)
		}
	}
	if c.MaxRecoveries < -1 {
		return fmt.Errorf("fault MaxRecoveries must be ≥ -1 (-1 disables respawn, 0 selects the default), got %d", c.MaxRecoveries)
	}
	return nil
}

// Event is one entry on the eviction/recovery timeline.
type Event struct {
	At   time.Duration // platform time of the step
	Kind string        // "evict", "replay", "respawn", or "abandon"
	Addr int           // evicted endpoint's transport address
	// Replay outcome ("replay" events): blocks re-forwarded and blocks
	// declared unrecoverable.
	Replayed, Lost int64
}

// Host is the platform half of the monitor: it owns the endpoint
// instances behind the directory addresses and knows how to fence, drain,
// replay, and rebuild them. All methods are called from the monitor's
// thread only, and always in the Evict → Recover → Respawn order per
// eviction.
type Host interface {
	// Dead reports whether the endpoint at addr crashed (was killed) — the
	// liveness oracle the shutdown sweep uses to tell an undetected crash
	// from a healthy member about to drain.
	Dead(c rt.Ctx, addr int) bool
	// Evict completes the evicted endpoint's shutdown: fence it (kill the
	// occupant if it is somehow still live, so a false-positive eviction
	// cannot race a healthy flush into duplicate deliveries), deliver the
	// Retire that releases its dead-mode receiver, and wait for every
	// thread to exit. The directory membership change and claim quiesce
	// have already happened when Evict is called.
	Evict(c rt.Ctx, addr int)
	// Recover replays the dead occupant's write-ahead journal and orphan
	// backlog to the consumers. Returns blocks re-forwarded, orphan
	// messages re-sent, and blocks declared unrecoverable.
	Recover(c rt.Ctx, addr int) (replayed, orphans, lost int64)
	// Respawn builds a replacement endpoint on the freed address and
	// re-admits it to the directory membership. Returns false when the
	// platform cannot (the slot then stays empty).
	Respawn(c rt.Ctx, addr int) bool
}

// Monitor is the failure detector's control loop. Build it with
// NewMonitor once the initial members are leased, Start it, and Stop it
// after the producers have finished but before the staging tier is
// retired — the final forced sweep must run while consumers are still
// counting.
type Monitor struct {
	env  rt.Env
	cfg  Config // defaults resolved
	dir  *place.Directory
	host Host

	mu       sync.Mutex
	stopReq  bool
	stopped  bool
	attempts map[int]int // respawns used per address
	events   []Event
	fl       flow.FailoverFlows
}

// NewMonitor wires a failure detector over dir and host. cfg must already
// have its defaults resolved via WithDefaults.
func NewMonitor(env rt.Env, cfg Config, dir *place.Directory, host Host) *Monitor {
	return &Monitor{env: env, cfg: cfg, dir: dir, host: host, attempts: map[int]int{}}
}

// Start launches the detector loop as a runtime thread.
func (m *Monitor) Start() {
	m.env.Go("fault.monitor", m.run)
}

func (m *Monitor) run(c rt.Ctx) {
	for {
		c.Sleep(m.cfg.Heartbeat)
		m.mu.Lock()
		stop := m.stopReq
		m.mu.Unlock()
		var evicted []int
		if stop {
			// The shutdown sweep: evict exactly the members that actually
			// crashed, however young their lease — their journals must be
			// replayed before consumers can balance their counted Fins.
			evicted = m.dir.EvictIf(func(addr int) bool { return m.host.Dead(c, addr) })
		} else {
			evicted = m.dir.Sweep(c.Now())
		}
		for _, addr := range evicted {
			m.recover(c, addr, !stop)
		}
		if stop {
			m.mu.Lock()
			m.stopped = true
			m.mu.Unlock()
			return
		}
	}
}

// recover runs the full eviction → replay → respawn sequence for one
// evicted address. Evictions are processed serially, so at most one
// endpoint instance ever occupies an address at a time.
func (m *Monitor) recover(c rt.Ctx, addr int, respawn bool) {
	m.event(Event{At: c.Now(), Kind: "evict", Addr: addr})
	m.fl.Evictions.Add(c.Now(), 1)

	// The membership change happened in the sweep; drain the claims that
	// were already in flight (the dead receiver keeps absorbing them), then
	// let the host fence and join the corpse.
	m.dir.Quiesce(c, addr)
	m.host.Evict(c, addr)

	replayed, orphans, lost := m.host.Recover(c, addr)
	m.fl.Replayed.Add(c.Now(), replayed)
	m.fl.Orphaned.Add(c.Now(), orphans)
	m.fl.Lost.Add(c.Now(), lost)
	m.event(Event{At: c.Now(), Kind: "replay", Addr: addr, Replayed: replayed, Lost: lost})

	if !respawn {
		return
	}
	m.mu.Lock()
	used := m.attempts[addr]
	m.mu.Unlock()
	if m.cfg.MaxRecoveries < 0 || used >= m.cfg.MaxRecoveries {
		m.event(Event{At: c.Now(), Kind: "abandon", Addr: addr})
		return
	}
	m.mu.Lock()
	m.attempts[addr]++
	m.mu.Unlock()
	if !m.host.Respawn(c, addr) {
		m.event(Event{At: c.Now(), Kind: "abandon", Addr: addr})
		return
	}
	m.dir.Lease(addr, m.cfg.LeaseTTL, c.Now())
	m.dir.MarkRecovered(addr)
	m.event(Event{At: c.Now(), Kind: "respawn", Addr: addr})
}

func (m *Monitor) event(ev Event) {
	m.mu.Lock()
	m.events = append(m.events, ev)
	m.mu.Unlock()
}

// Stop asks the detector to run its final forced sweep — recovering kills
// whose TTL never lapsed, without respawning — and blocks until it has.
// Call it after the producers have finished and before the staging tier
// is retired.
func (m *Monitor) Stop(c rt.Ctx) {
	m.mu.Lock()
	m.stopReq = true
	m.mu.Unlock()
	for {
		m.mu.Lock()
		done := m.stopped
		m.mu.Unlock()
		if done {
			return
		}
		c.Sleep(m.cfg.Heartbeat)
	}
}

// Events returns the eviction/recovery timeline in step order.
func (m *Monitor) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Event(nil), m.events...)
}

// Flows exposes the fault plane's live gauges.
func (m *Monitor) Flows() *flow.FailoverFlows { return &m.fl }

// Evictions returns the lifetime eviction count.
func (m *Monitor) Evictions() int64 { return m.fl.Evictions.Total() }

// ReplayedBlocks returns the lifetime count of blocks the recovery reader
// re-forwarded (journal replays plus orphaned-message blocks).
func (m *Monitor) ReplayedBlocks() int64 { return m.fl.Replayed.Total() }

// LostBlocks returns the lifetime count of blocks declared unrecoverable.
func (m *Monitor) LostBlocks() int64 { return m.fl.Lost.Total() }
