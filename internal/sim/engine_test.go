package sim

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

func TestDelayAdvancesClock(t *testing.T) {
	e := New()
	var end time.Duration
	e.Spawn("a", func(p *Proc) {
		p.Delay(5 * time.Millisecond)
		p.Delay(7 * time.Millisecond)
		end = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if want := 12 * time.Millisecond; end != want {
		t.Fatalf("end time = %v, want %v", end, want)
	}
}

func TestEventOrdering(t *testing.T) {
	e := New()
	var log []string
	for _, tc := range []struct {
		name string
		d    time.Duration
	}{{"c", 30 * time.Millisecond}, {"a", 10 * time.Millisecond}, {"b", 20 * time.Millisecond}} {
		tc := tc
		e.Spawn(tc.name, func(p *Proc) {
			p.Delay(tc.d)
			log = append(log, fmt.Sprintf("%s@%v", tc.name, p.Now()))
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a@10ms", "b@20ms", "c@30ms"}
	if len(log) != len(want) {
		t.Fatalf("log = %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log[%d] = %q, want %q (full: %v)", i, log[i], want[i], log)
		}
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	// Events at the same virtual time must run in scheduling order.
	e := New()
	var log []int
	for i := 0; i < 10; i++ {
		i := i
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Delay(time.Millisecond)
			log = append(log, i)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range log {
		if v != i {
			t.Fatalf("log[%d] = %d, want %d", i, v, i)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []string {
		e := New()
		var log []string
		mu := NewMutex(e, "m")
		st := NewStore[int](e, "q", 2)
		for i := 0; i < 5; i++ {
			i := i
			e.Spawn(fmt.Sprintf("prod%d", i), func(p *Proc) {
				p.Delay(time.Duration(i) * time.Microsecond)
				mu.Lock(p)
				log = append(log, fmt.Sprintf("lock%d@%v", i, p.Now()))
				p.Delay(3 * time.Microsecond)
				mu.Unlock(p)
				st.Put(p, i)
			})
		}
		e.Spawn("cons", func(p *Proc) {
			for j := 0; j < 5; j++ {
				v, ok := st.Get(p)
				if !ok {
					break
				}
				log = append(log, fmt.Sprintf("got%d@%v", v, p.Now()))
				p.Delay(2 * time.Microsecond)
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic run lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestSpawnFromProcess(t *testing.T) {
	e := New()
	var childTime time.Duration
	e.Spawn("parent", func(p *Proc) {
		p.Delay(4 * time.Millisecond)
		e.Spawn("child", func(c *Proc) {
			c.Delay(time.Millisecond)
			childTime = c.Now()
		})
		p.Delay(10 * time.Millisecond)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if want := 5 * time.Millisecond; childTime != want {
		t.Fatalf("child ran at %v, want %v", childTime, want)
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := New()
	mu := NewMutex(e, "m")
	cond := NewCond(mu, "never")
	e.Spawn("stuck", func(p *Proc) {
		mu.Lock(p)
		cond.Wait(p)
	})
	err := e.Run()
	var d *DeadlockError
	if !errors.As(err, &d) {
		t.Fatalf("Run = %v, want DeadlockError", err)
	}
	if len(d.Blocked) != 1 || d.Blocked[0].Name != "stuck" || d.Blocked[0].Reason != "cond:never" {
		t.Fatalf("unexpected deadlock detail: %+v", d)
	}
}

func TestPanicPropagation(t *testing.T) {
	e := New()
	e.Spawn("bomb", func(p *Proc) {
		p.Delay(time.Millisecond)
		panic("boom")
	})
	err := e.Run()
	if err == nil || err.Error() != `sim: process "bomb" panicked: boom` {
		t.Fatalf("Run = %v, want panic error", err)
	}
}

func TestMutexFIFO(t *testing.T) {
	e := New()
	mu := NewMutex(e, "m")
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Delay(time.Duration(i) * time.Microsecond) // arrival order 0,1,2,3
			mu.Lock(p)
			order = append(order, i)
			p.Delay(10 * time.Microsecond)
			mu.Unlock(p)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("lock order %v, want ascending", order)
		}
	}
}

func TestMutexMisuse(t *testing.T) {
	e := New()
	mu := NewMutex(e, "m")
	e.Spawn("a", func(p *Proc) {
		mu.Lock(p)
		mu.Lock(p) // recursive: must panic
	})
	if err := e.Run(); err == nil {
		t.Fatal("recursive lock did not fail")
	}
}

func TestCondSignalBroadcast(t *testing.T) {
	e := New()
	mu := NewMutex(e, "m")
	cond := NewCond(mu, "c")
	ready := 0
	var woke []string
	for _, n := range []string{"w1", "w2", "w3"} {
		n := n
		e.Spawn(n, func(p *Proc) {
			mu.Lock(p)
			for ready == 0 {
				cond.Wait(p)
			}
			woke = append(woke, n)
			mu.Unlock(p)
		})
	}
	e.Spawn("sig", func(p *Proc) {
		p.Delay(time.Millisecond)
		mu.Lock(p)
		ready = 1
		cond.Broadcast()
		mu.Unlock(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(woke) != 3 {
		t.Fatalf("woke = %v, want 3 waiters", woke)
	}
	// FIFO wake order.
	want := []string{"w1", "w2", "w3"}
	for i := range want {
		if woke[i] != want[i] {
			t.Fatalf("wake order %v, want %v", woke, want)
		}
	}
}

func TestSemaphore(t *testing.T) {
	e := New()
	sem := NewSemaphore(e, "s", 2)
	active, maxActive := 0, 0
	for i := 0; i < 6; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			sem.Acquire(p)
			active++
			if active > maxActive {
				maxActive = active
			}
			p.Delay(time.Millisecond)
			active--
			sem.Release()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if maxActive != 2 {
		t.Fatalf("max concurrent holders = %d, want 2", maxActive)
	}
	if sem.Available() != 2 {
		t.Fatalf("available = %d, want 2", sem.Available())
	}
}

func TestBarrier(t *testing.T) {
	e := New()
	b := NewBarrier(e, "b", 3)
	var releaseTimes []time.Duration
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Delay(time.Duration(i+1) * 10 * time.Millisecond)
			b.Wait(p)
			releaseTimes = append(releaseTimes, p.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for _, rt := range releaseTimes {
		if rt != 30*time.Millisecond {
			t.Fatalf("release times %v, want all at 30ms (last arrival)", releaseTimes)
		}
	}
}

func TestBarrierReusable(t *testing.T) {
	e := New()
	b := NewBarrier(e, "b", 2)
	count := 0
	for i := 0; i < 2; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for r := 0; r < 3; r++ {
				p.Delay(time.Millisecond)
				b.Wait(p)
				count++
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 6 {
		t.Fatalf("count = %d, want 6", count)
	}
}

func TestWaitGroup(t *testing.T) {
	e := New()
	wg := NewWaitGroup(e, "wg")
	wg.Add(3)
	doneAt := time.Duration(-1)
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			p.Delay(time.Duration(i+1) * time.Millisecond)
			wg.Done()
		})
	}
	e.Spawn("waiter", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if doneAt != 3*time.Millisecond {
		t.Fatalf("waiter released at %v, want 3ms", doneAt)
	}
}

func TestStoreBlockingAndOrder(t *testing.T) {
	e := New()
	st := NewStore[int](e, "q", 2)
	var got []int
	var putDone []time.Duration
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			st.Put(p, i)
			putDone = append(putDone, p.Now())
		}
		st.Close()
	})
	e.Spawn("consumer", func(p *Proc) {
		for {
			p.Delay(10 * time.Millisecond)
			v, ok := st.Get(p)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got %v, want FIFO 0..4", got)
		}
	}
	// First two puts at t=0; later puts must have waited for consumer gets.
	if putDone[0] != 0 || putDone[1] != 0 {
		t.Fatalf("first puts delayed: %v", putDone)
	}
	if putDone[2] == 0 {
		t.Fatalf("third put did not block despite full store: %v", putDone)
	}
}

func TestStoreCloseUnblocksAll(t *testing.T) {
	e := New()
	st := NewStore[int](e, "q", 1)
	results := map[string]bool{}
	e.Spawn("getter", func(p *Proc) {
		_, ok := st.Get(p)
		results["get"] = ok
	})
	e.Spawn("putter1", func(p *Proc) {
		// Fills the store; the queued item is drained by getter, so this
		// succeeds.
		results["put1"] = st.Put(p, 1)
	})
	e.Spawn("putter2", func(p *Proc) {
		p.Delay(time.Microsecond)
		st.Put(p, 2)            // fills the store again
		ok := st.Put(p, 3)      // blocks: no getter remains
		results["put3-ok"] = ok // must be false after Close
	})
	e.Spawn("closer", func(p *Proc) {
		p.Delay(time.Millisecond)
		st.Close()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !results["get"] || !results["put1"] {
		t.Fatalf("early operations failed: %v", results)
	}
	if results["put3-ok"] {
		t.Fatalf("put after close succeeded: %v", results)
	}
}

func TestStoreTryOps(t *testing.T) {
	e := New()
	st := NewStore[string](e, "q", 1)
	e.Spawn("p", func(p *Proc) {
		if !st.TryPut("a") {
			t.Error("TryPut on empty store failed")
		}
		if st.TryPut("b") {
			t.Error("TryPut on full store succeeded")
		}
		if v, ok := st.Peek(); !ok || v != "a" {
			t.Errorf("Peek = %q, %v", v, ok)
		}
		if v, ok := st.TryGet(); !ok || v != "a" {
			t.Errorf("TryGet = %q, %v", v, ok)
		}
		if _, ok := st.TryGet(); ok {
			t.Error("TryGet on empty store succeeded")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreConservation is a property test: for random producer/consumer
// configurations, everything put is got exactly once, in per-producer order.
func TestStoreConservation(t *testing.T) {
	prop := func(nProd, nItems, capacity uint8) bool {
		np := int(nProd)%4 + 1
		ni := int(nItems)%20 + 1
		cp := int(capacity)%5 + 1
		e := New()
		st := NewStore[[2]int](e, "q", cp)
		var wg = NewWaitGroup(e, "prods")
		wg.Add(np)
		for pi := 0; pi < np; pi++ {
			pi := pi
			e.Spawn(fmt.Sprintf("prod%d", pi), func(p *Proc) {
				for k := 0; k < ni; k++ {
					st.Put(p, [2]int{pi, k})
				}
				wg.Done()
			})
		}
		e.Spawn("closer", func(p *Proc) {
			wg.Wait(p)
			st.Close()
		})
		seen := make(map[[2]int]int)
		lastPerProd := make([]int, np)
		for i := range lastPerProd {
			lastPerProd[i] = -1
		}
		ordered := true
		e.Spawn("cons", func(p *Proc) {
			for {
				v, ok := st.Get(p)
				if !ok {
					return
				}
				seen[v]++
				if v[1] <= lastPerProd[v[0]] {
					ordered = false
				}
				lastPerProd[v[0]] = v[1]
			}
		})
		if err := e.Run(); err != nil {
			return false
		}
		if len(seen) != np*ni {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return ordered
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRunReentrancyRejected(t *testing.T) {
	e := New()
	var inner error
	e.Spawn("a", func(p *Proc) {
		inner = e.Run()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if inner == nil {
		t.Fatal("reentrant Run did not fail")
	}
}

func BenchmarkEngineDelayEvents(b *testing.B) {
	e := New()
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Delay(time.Nanosecond)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkStorePingPong(b *testing.B) {
	e := New()
	st := NewStore[int](e, "q", 1)
	e.Spawn("prod", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			st.Put(p, i)
		}
		st.Close()
	})
	e.Spawn("cons", func(p *Proc) {
		for {
			if _, ok := st.Get(p); !ok {
				return
			}
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
