// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine runs "processes" (Proc) in virtual time. Each process is backed
// by a goroutine, but the engine guarantees that exactly one process executes
// at any instant: a process runs until it blocks on a simulated operation
// (Delay, Mutex.Lock, Store.Get, ...) and then hands control back to the
// engine, which advances the virtual clock to the next scheduled event. This
// cooperative model lets substrate code (network, file system, runtime
// threads) be written as ordinary sequential Go while the engine provides
// reproducible, laptop-speed execution of cluster-scale scenarios.
//
// Determinism: events are ordered by (time, sequence number), where sequence
// numbers are assigned at scheduling time, and every wait queue in the
// package is strictly FIFO. Two runs of the same program therefore interleave
// identically.
//
// Deadlock: if no events remain but processes are still blocked, Run returns
// a *DeadlockError naming each blocked process and the primitive it waits on.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
	"time"
)

// event is a scheduled wake-up for a process.
type event struct {
	at       time.Duration
	seq      int64
	p        *Proc
	canceled bool
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine owns the virtual clock and the event queue.
type Engine struct {
	now     time.Duration
	seq     int64
	procSeq int
	events  eventHeap
	parked  chan struct{}
	nLive   int
	blocked map[*Proc]string
	failure error
	running bool
}

// New returns an empty engine with the clock at zero.
func New() *Engine {
	return &Engine{
		parked:  make(chan struct{}),
		blocked: make(map[*Proc]string),
	}
}

// Now reports the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// schedule queues a wake-up for p at time at and returns the event so the
// caller may cancel it.
func (e *Engine) schedule(p *Proc, at time.Duration) *event {
	e.seq++
	ev := &event{at: at, seq: e.seq, p: p}
	heap.Push(&e.events, ev)
	return ev
}

// Spawn creates a process named name running fn and schedules it to start at
// the current virtual time. Spawn may be called before Run or from within a
// running process, but not from outside the engine while Run is in progress.
func (e *Engine) Spawn(name string, fn func(*Proc)) *Proc {
	e.procSeq++
	p := &Proc{
		eng:    e,
		name:   name,
		id:     e.procSeq,
		resume: make(chan struct{}),
	}
	e.nLive++
	e.schedule(p, e.now)
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil {
				if e.failure == nil {
					e.failure = fmt.Errorf("sim: process %q panicked: %v", name, r)
				}
			}
			e.nLive--
			p.done = true
			e.parked <- struct{}{}
		}()
		fn(p)
	}()
	return p
}

// Run executes events until none remain or a process panics. It returns a
// *DeadlockError if processes remain blocked with no pending events, or the
// panic wrapped as an error if a process panicked.
func (e *Engine) Run() error {
	if e.running {
		return fmt.Errorf("sim: Run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for e.failure == nil {
		ev := e.next()
		if ev == nil {
			break
		}
		if ev.at < e.now {
			return fmt.Errorf("sim: time went backwards: %v -> %v", e.now, ev.at)
		}
		e.now = ev.at
		ev.p.resume <- struct{}{}
		<-e.parked
	}
	if e.failure != nil {
		return e.failure
	}
	if len(e.blocked) > 0 {
		return e.deadlockError()
	}
	return nil
}

// next pops the earliest non-canceled event, or nil if none remain.
func (e *Engine) next() *event {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if !ev.canceled {
			return ev
		}
	}
	return nil
}

func (e *Engine) deadlockError() *DeadlockError {
	d := &DeadlockError{At: e.now}
	for p, reason := range e.blocked {
		d.Blocked = append(d.Blocked, BlockedProc{Name: p.name, Reason: reason})
	}
	sort.Slice(d.Blocked, func(i, j int) bool { return d.Blocked[i].Name < d.Blocked[j].Name })
	return d
}

// wake moves a blocked process back onto the event queue at the current time.
func (e *Engine) wake(p *Proc) {
	if _, ok := e.blocked[p]; !ok {
		panic(fmt.Sprintf("sim: wake of process %q that is not blocked", p.name))
	}
	delete(e.blocked, p)
	e.schedule(p, e.now)
}

// BlockedProc describes one process stuck at deadlock detection time.
type BlockedProc struct {
	Name   string
	Reason string
}

// DeadlockError reports that the event queue drained while processes were
// still blocked on synchronization primitives.
type DeadlockError struct {
	At      time.Duration
	Blocked []BlockedProc
}

func (d *DeadlockError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sim: deadlock at %v: %d blocked process(es):", d.At, len(d.Blocked))
	for _, bp := range d.Blocked {
		fmt.Fprintf(&b, " %s[%s]", bp.Name, bp.Reason)
	}
	return b.String()
}

// Proc is the handle a process uses to interact with the engine. All methods
// must be called from the process's own goroutine while it is running.
type Proc struct {
	eng    *Engine
	name   string
	id     int
	resume chan struct{}
	done   bool
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// ID returns the process's unique spawn-ordered identifier.
func (p *Proc) ID() int { return p.id }

// Engine returns the owning engine.
func (p *Proc) Engine() *Engine { return p.eng }

// Now reports the current virtual time.
func (p *Proc) Now() time.Duration { return p.eng.now }

// yield passes control to the engine and waits to be resumed.
func (p *Proc) yield() {
	p.eng.parked <- struct{}{}
	<-p.resume
}

// Delay advances the process's virtual time by d, letting other processes run.
func (p *Proc) Delay(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v in process %q", d, p.name))
	}
	p.eng.schedule(p, p.eng.now+d)
	p.yield()
}

// block parks the process with no pending event. Another process must call
// Engine.wake (via a synchronization primitive) to resume it. reason appears
// in deadlock reports.
func (p *Proc) block(reason string) {
	p.eng.blocked[p] = reason
	p.yield()
}
