package sim

import "fmt"

// Store is a bounded FIFO queue connecting simulated processes, analogous to
// a buffered Go channel. Put blocks while the store is full; Get blocks while
// it is empty. Close releases all blocked processes: pending Gets drain the
// remaining items and then report ok=false, and pending Puts report ok=false.
//
// Wakeups are FIFO and woken processes re-check their predicate, so ordering
// is deterministic under the engine's single-running-process discipline.
type Store[T any] struct {
	eng     *Engine
	name    string
	cap     int // <= 0 means unbounded
	items   []T
	getters []*Proc
	putters []*Proc
	closed  bool
}

// NewStore returns a store holding at most capacity items. capacity <= 0
// means unbounded.
func NewStore[T any](e *Engine, name string, capacity int) *Store[T] {
	return &Store[T]{eng: e, name: name, cap: capacity}
}

// Len reports the number of queued items.
func (s *Store[T]) Len() int { return len(s.items) }

// Cap reports the configured capacity (<= 0 meaning unbounded).
func (s *Store[T]) Cap() int { return s.cap }

// Closed reports whether Close has been called.
func (s *Store[T]) Closed() bool { return s.closed }

func (s *Store[T]) full() bool { return s.cap > 0 && len(s.items) >= s.cap }

// Put appends v, blocking while the store is full. It reports false if the
// store is (or becomes) closed.
func (s *Store[T]) Put(p *Proc, v T) bool {
	for s.full() && !s.closed {
		s.putters = append(s.putters, p)
		p.block("store-put:" + s.name)
	}
	if s.closed {
		return false
	}
	s.items = append(s.items, v)
	s.wakeOneGetter()
	return true
}

// TryPut appends v only if the store has room; it reports whether it did.
func (s *Store[T]) TryPut(v T) bool {
	if s.closed || s.full() {
		return false
	}
	s.items = append(s.items, v)
	s.wakeOneGetter()
	return true
}

// Get removes and returns the oldest item, blocking while the store is empty.
// It reports ok=false once the store is closed and drained.
func (s *Store[T]) Get(p *Proc) (T, bool) {
	for len(s.items) == 0 {
		if s.closed {
			var zero T
			return zero, false
		}
		s.getters = append(s.getters, p)
		p.block("store-get:" + s.name)
	}
	v := s.items[0]
	s.items = s.items[1:]
	s.wakeOnePutter()
	return v, true
}

// TryGet removes the oldest item without blocking; ok reports whether an item
// was available.
func (s *Store[T]) TryGet() (T, bool) {
	if len(s.items) == 0 {
		var zero T
		return zero, false
	}
	v := s.items[0]
	s.items = s.items[1:]
	s.wakeOnePutter()
	return v, true
}

// Peek returns the oldest item without removing it.
func (s *Store[T]) Peek() (T, bool) {
	if len(s.items) == 0 {
		var zero T
		return zero, false
	}
	return s.items[0], true
}

// Close marks the store closed and wakes every blocked process. Items already
// queued remain retrievable by Get.
func (s *Store[T]) Close() {
	if s.closed {
		return
	}
	s.closed = true
	gs, ps := s.getters, s.putters
	s.getters, s.putters = nil, nil
	for _, g := range gs {
		s.eng.wake(g)
	}
	for _, p := range ps {
		s.eng.wake(p)
	}
}

func (s *Store[T]) wakeOneGetter() {
	if len(s.getters) == 0 {
		return
	}
	g := s.getters[0]
	s.getters = s.getters[1:]
	s.eng.wake(g)
}

func (s *Store[T]) wakeOnePutter() {
	if len(s.putters) == 0 {
		return
	}
	p := s.putters[0]
	s.putters = s.putters[1:]
	s.eng.wake(p)
}

func (s *Store[T]) String() string {
	return fmt.Sprintf("Store(%s len=%d cap=%d closed=%v)", s.name, len(s.items), s.cap, s.closed)
}
