package sim

import "fmt"

// Mutex is a FIFO mutual-exclusion lock for simulated processes. Ownership is
// handed directly to the longest-waiting process on Unlock, so lock
// acquisition order is deterministic.
type Mutex struct {
	eng     *Engine
	name    string
	owner   *Proc
	waiters []*Proc
}

// NewMutex returns an unlocked mutex. name appears in deadlock reports.
func NewMutex(e *Engine, name string) *Mutex {
	return &Mutex{eng: e, name: name}
}

// Lock acquires the mutex, blocking the calling process until it is available.
func (m *Mutex) Lock(p *Proc) {
	if m.owner == nil {
		m.owner = p
		return
	}
	if m.owner == p {
		panic(fmt.Sprintf("sim: recursive lock of mutex %q by %q", m.name, p.name))
	}
	m.waiters = append(m.waiters, p)
	p.block("mutex:" + m.name)
}

// Unlock releases the mutex, handing it to the longest waiter if any.
func (m *Mutex) Unlock(p *Proc) {
	if m.owner != p {
		panic(fmt.Sprintf("sim: unlock of mutex %q by non-owner %q", m.name, p.name))
	}
	if len(m.waiters) == 0 {
		m.owner = nil
		return
	}
	next := m.waiters[0]
	m.waiters = m.waiters[1:]
	m.owner = next
	m.eng.wake(next)
}

// Holder reports the current owner, or nil when unlocked.
func (m *Mutex) Holder() *Proc { return m.owner }

// Waiters reports how many processes are queued for the mutex.
func (m *Mutex) Waiters() int { return len(m.waiters) }

// Cond is a condition variable associated with a Mutex. Wakeups are FIFO.
type Cond struct {
	M       *Mutex
	name    string
	waiters []*Proc
}

// NewCond returns a condition variable using m as its lock.
func NewCond(m *Mutex, name string) *Cond {
	return &Cond{M: m, name: name}
}

// Wait atomically releases the mutex and suspends the process; on wake-up it
// re-acquires the mutex before returning. As with sync.Cond, callers must
// re-check their predicate in a loop.
func (c *Cond) Wait(p *Proc) {
	if c.M.owner != p {
		panic(fmt.Sprintf("sim: cond %q Wait without holding mutex (process %q)", c.name, p.name))
	}
	c.waiters = append(c.waiters, p)
	c.M.Unlock(p)
	p.block("cond:" + c.name)
	c.M.Lock(p)
}

// Signal wakes the longest-waiting process, if any.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	w := c.waiters[0]
	c.waiters = c.waiters[1:]
	c.M.eng.wake(w)
}

// Broadcast wakes every waiting process in FIFO order.
func (c *Cond) Broadcast() {
	ws := c.waiters
	c.waiters = nil
	for _, w := range ws {
		c.M.eng.wake(w)
	}
}

// Semaphore is a counting semaphore with FIFO hand-off of permits.
type Semaphore struct {
	eng     *Engine
	name    string
	permits int
	waiters []*Proc
}

// NewSemaphore returns a semaphore holding n permits.
func NewSemaphore(e *Engine, name string, n int) *Semaphore {
	if n < 0 {
		panic("sim: negative semaphore count")
	}
	return &Semaphore{eng: e, name: name, permits: n}
}

// Acquire takes one permit, blocking until one is available.
func (s *Semaphore) Acquire(p *Proc) {
	if s.permits > 0 {
		s.permits--
		return
	}
	s.waiters = append(s.waiters, p)
	p.block("sem:" + s.name)
}

// TryAcquire takes a permit without blocking; it reports whether it did.
func (s *Semaphore) TryAcquire() bool {
	if s.permits > 0 {
		s.permits--
		return true
	}
	return false
}

// Release returns one permit, handing it to the longest waiter if any.
func (s *Semaphore) Release() {
	if len(s.waiters) > 0 {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		s.eng.wake(w)
		return
	}
	s.permits++
}

// Available reports the number of free permits.
func (s *Semaphore) Available() int { return s.permits }

// Barrier blocks processes until n of them have arrived, then releases all of
// them. It is reusable (generation-counted).
type Barrier struct {
	eng     *Engine
	name    string
	n       int
	arrived []*Proc
}

// NewBarrier returns a barrier for n participants.
func NewBarrier(e *Engine, name string, n int) *Barrier {
	if n <= 0 {
		panic("sim: barrier participant count must be positive")
	}
	return &Barrier{eng: e, name: name, n: n}
}

// Wait blocks until n processes (including this one) have called Wait.
func (b *Barrier) Wait(p *Proc) {
	if len(b.arrived)+1 == b.n {
		for _, w := range b.arrived {
			b.eng.wake(w)
		}
		b.arrived = nil
		return
	}
	b.arrived = append(b.arrived, p)
	p.block("barrier:" + b.name)
}

// WaitGroup mirrors sync.WaitGroup for simulated processes.
type WaitGroup struct {
	eng     *Engine
	name    string
	count   int
	waiters []*Proc
}

// NewWaitGroup returns an empty wait group.
func NewWaitGroup(e *Engine, name string) *WaitGroup {
	return &WaitGroup{eng: e, name: name}
}

// Add adds delta to the counter.
func (w *WaitGroup) Add(delta int) {
	w.count += delta
	if w.count < 0 {
		panic(fmt.Sprintf("sim: negative WaitGroup %q counter", w.name))
	}
	if w.count == 0 {
		w.release()
	}
}

// Done decrements the counter by one.
func (w *WaitGroup) Done() { w.Add(-1) }

// Wait blocks until the counter reaches zero.
func (w *WaitGroup) Wait(p *Proc) {
	if w.count == 0 {
		return
	}
	w.waiters = append(w.waiters, p)
	p.block("waitgroup:" + w.name)
}

func (w *WaitGroup) release() {
	ws := w.waiters
	w.waiters = nil
	for _, p := range ws {
		w.eng.wake(p)
	}
}
