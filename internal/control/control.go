// Package control is the multi-job control plane: the layer that admits many
// concurrent producer/consumer jobs onto one shared in-transit stager fleet
// and keeps them isolated from each other while they run.
//
// It has three parts. The registry + admission layer (Plane.Admit) accepts
// job specs carrying per-tenant quotas — a guaranteed buffer-block
// reservation, a weighted bandwidth share, and a priority class — and
// rejects over-subscription with typed *ConfigErrors before a single block
// moves. The reconcile loop (modeled on coreos-fleet's offer/reconcile
// engine: desired state in a registry, an engine that continuously diffs it
// against the live fleet and repairs the delta) assigns each tenant a slice
// of stager capacity through its own place.Directory and recomputes the
// weighted-fair share whenever jobs arrive, finish, or the elastic pool
// resizes. Priority preemption evicts spill-heavy low-priority tenants'
// claims first: when a higher-priority tenant is pressured against its
// quota, the noisiest lower-priority tenant's effective weight is halved,
// shrinking both its stager slice and its buffer quota on the next
// reconcile. Per-tenant flow isolation lives in the stager itself (see
// staging's tenant states); the plane only reads those gauges and pushes
// quotas through the Host.
//
// Everything is clocked by rt.Ctx, so the same reconcile loop runs
// deterministically inside the discrete-event simulator and live on the
// real machine. The loop follows the elastic.Scaler concurrency template:
// the plane's mutex guards registry state and is never held across a call
// that can park the thread (Host.SetTenantQuota takes a stager's platform
// lock); quota pushes are computed under the mutex and applied after it is
// released. Directory membership edits and gauge reads are lock-order
// leaves and stay inline.
package control

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"zipper/internal/flow"
	"zipper/internal/place"
	"zipper/internal/rt"
)

// Priority is a tenant's preemption class. Under pressure the plane takes
// capacity from lower classes first; equal classes are never preempted by
// each other.
type Priority int

const (
	// PriorityLow marks best-effort batch tenants: first to lose capacity.
	PriorityLow Priority = iota
	// PriorityNormal is the default class.
	PriorityNormal
	// PriorityHigh marks latency-sensitive tenants whose pressure triggers
	// preemption of lower classes.
	PriorityHigh
)

func (p Priority) String() string {
	switch p {
	case PriorityLow:
		return "low"
	case PriorityNormal:
		return "normal"
	case PriorityHigh:
		return "high"
	}
	return fmt.Sprintf("priority(%d)", int(p))
}

func (p Priority) valid() bool { return p >= PriorityLow && p <= PriorityHigh }

// Quota is a tenant's resource envelope on the shared fleet.
type Quota struct {
	// BufferBlocks is the tenant's guaranteed fleet-wide in-memory buffer
	// reservation, in blocks. Admission rejects a job whose guarantee would
	// oversubscribe the fleet's aggregate buffer. 0 means best-effort (no
	// guarantee, only the fair share).
	BufferBlocks int
	// Share is the tenant's weight in the fair-share split of buffer and
	// stager bandwidth. 0 selects 1. A tenant with Share 2 holds twice the
	// slice of a tenant with Share 1, all else equal.
	Share float64
	// Priority is the preemption class (default PriorityLow — the zero
	// value; latency-sensitive tenants opt up).
	Priority Priority
}

// JobSpec is what a job presents at admission.
type JobSpec struct {
	// Name labels the tenant in events and stats.
	Name string
	// Quota is the tenant's resource envelope.
	Quota Quota
}

// ConfigError is a typed admission or configuration rejection: which field
// of the spec was unacceptable and why. Errors.As-able by embedders that
// wrap it.
type ConfigError struct {
	Field  string
	Reason string
}

func (e *ConfigError) Error() string {
	return "control: invalid " + e.Field + ": " + e.Reason
}

// Config tunes the plane.
type Config struct {
	// Interval is the reconcile period (0 selects 2ms). Admission, finish,
	// and resize also reconcile synchronously; the periodic loop exists for
	// preemption and convergence while the tenant set is static.
	Interval time.Duration
	// PreemptOccupancy is the quota-fraction at which a tenant counts as
	// pressured: when a tenant's worst per-stager tenant-occupancy reaches
	// this fraction of its quota, the plane looks for a lower-priority
	// spill-heavy victim to preempt. 0 selects 0.75.
	PreemptOccupancy float64
	// MaxTenants caps lifetime admissions (tenant ids index pre-sized
	// per-tenant state at every stager, so ids are never reused). 0 means
	// the embedder pre-sized for unlimited growth — fleets always set it.
	MaxTenants int
}

// withDefaults resolves zero fields.
func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 2 * time.Millisecond
	}
	if c.PreemptOccupancy <= 0 {
		c.PreemptOccupancy = 0.75
	}
	return c
}

// Host is the fleet half of the plane: it owns the shared stagers and
// exposes their per-tenant gauges and quota knobs by transport address.
// TenantLevel and TenantSpilled read lock-order-leaf gauges and are safe
// from any thread; SetTenantQuota may park (it takes the stager's platform
// lock) and is only called with no plane mutex held.
type Host interface {
	// TenantLevel returns tenant's occupancy gauge at the stager at addr
	// (resident blocks vs admission quota).
	TenantLevel(addr, tenant int) *flow.Level
	// TenantSpilled returns tenant's lifetime spilled-block count at addr.
	TenantSpilled(addr, tenant int) int64
	// SetTenantQuota pushes tenant's per-stager admission cap in blocks
	// (0 = uncapped) to the stager at addr.
	SetTenantQuota(c rt.Ctx, addr, tenant, blocks int)
}

// Event is one control action, for the fleet timeline and the zippertrace
// fleet view.
type Event struct {
	At      time.Duration
	Kind    string // "admit", "finish", "assign", "preempt", or "resize"
	Tenant  int    // subject tenant id (-1 for resize)
	Victim  int    // preempted tenant id (kind "preempt"; -1 otherwise)
	Stagers int    // subject's slice size after the action (fleet size for resize)
	Blocks  int    // subject's total buffer quota across its slice after the action
}

// Tenant is one admitted job's handle on the plane: its identity, its spec,
// and the place.Directory through which its producers resolve stagers. The
// plane is the only mutator of the directory's membership; producers only
// Peek/Claim/Done against it.
type Tenant struct {
	id   int
	spec JobSpec
	dir  *place.Directory

	// Reconciler state, guarded by the plane's mutex.
	active      bool
	stagers     []int       // assigned stager addrs, ascending
	quotaAt     map[int]int // addr → pushed admission cap
	penalty     uint        // preemption throttle: effective weight is Share/2^penalty
	lastSpilled int64       // fleet-wide spilled total at last reconcile
	lastTotal   int         // total buffer quota across the slice at last reconcile
}

// ID returns the tenant id: the index of this tenant's pre-sized state at
// every stager.
func (t *Tenant) ID() int { return t.id }

// Spec returns the admitted spec.
func (t *Tenant) Spec() JobSpec { return t.spec }

// Directory returns the tenant's stager directory — the core.StagerDirectory
// its producers route through.
func (t *Tenant) Directory() *place.Directory { return t.dir }

// weight is the tenant's effective fair-share weight after preemption
// penalties.
func (t *Tenant) weight() float64 {
	w := t.spec.Quota.Share
	if w <= 0 {
		w = 1
	}
	return w / float64(uint(1)<<t.penalty)
}

// TenantSnapshot is one tenant's current assignment, for FleetStats.
type TenantSnapshot struct {
	ID          int
	Name        string
	Priority    Priority
	Active      bool
	Stagers     []int // assigned stager addrs, ascending
	QuotaBlocks int   // total admission cap across the slice
	Preempted   int   // times this tenant was the preemption victim
}

// Plane is the control plane over one shared stager fleet.
type Plane struct {
	cfg  Config
	host Host

	mu           sync.Mutex
	fleet        []int // live stager addrs, ascending
	bufPerStager int
	tenants      []*Tenant
	preempted    []int // per-tenant victim counts, indexed by id
	events       []Event
	preemptions  int
	started      bool
	stopReq      bool
	stopped      bool
}

// NewPlane builds a plane over the fleet's live stager addresses, each with
// bufPerStager in-memory buffer blocks. The host resolves addresses to
// per-tenant gauges and quota knobs.
func NewPlane(cfg Config, fleet []int, bufPerStager int, host Host) *Plane {
	f := append([]int(nil), fleet...)
	sort.Ints(f)
	return &Plane{cfg: cfg.withDefaults(), host: host, fleet: f, bufPerStager: bufPerStager}
}

// capacityLocked is the fleet's aggregate in-memory buffer in blocks.
func (p *Plane) capacityLocked() int { return len(p.fleet) * p.bufPerStager }

// Admit validates spec against the fleet's remaining capacity and, on
// success, registers the tenant and reconciles synchronously — the caller
// holds a populated directory and live quotas before the job's first block
// is written. Rejections are *ConfigError values.
func (p *Plane) Admit(c rt.Ctx, spec JobSpec) (*Tenant, error) {
	p.mu.Lock()
	q := spec.Quota
	switch {
	case !q.Priority.valid():
		p.mu.Unlock()
		return nil, &ConfigError{"Quota.Priority", fmt.Sprintf("unknown class %d", int(q.Priority))}
	case q.Share < 0 || math.IsNaN(q.Share) || math.IsInf(q.Share, 0):
		p.mu.Unlock()
		return nil, &ConfigError{"Quota.Share", fmt.Sprintf("must be a finite weight ≥ 0, got %v", q.Share)}
	case q.BufferBlocks < 0:
		p.mu.Unlock()
		return nil, &ConfigError{"Quota.BufferBlocks", fmt.Sprintf("must be ≥ 0, got %d", q.BufferBlocks)}
	}
	if p.cfg.MaxTenants > 0 && len(p.tenants) >= p.cfg.MaxTenants {
		p.mu.Unlock()
		return nil, &ConfigError{"Jobs", fmt.Sprintf("fleet admission ceiling reached (%d tenants admitted over the fleet lifetime)", p.cfg.MaxTenants)}
	}
	guaranteed := q.BufferBlocks
	for _, t := range p.tenants {
		if t.active {
			guaranteed += t.spec.Quota.BufferBlocks
		}
	}
	if cap := p.capacityLocked(); guaranteed > cap {
		p.mu.Unlock()
		return nil, &ConfigError{"Quota.BufferBlocks",
			fmt.Sprintf("guarantee oversubscribes the fleet: %d blocks guaranteed against %d aggregate buffer blocks", guaranteed, cap)}
	}
	id := len(p.tenants)
	t := &Tenant{id: id, spec: spec, active: true, quotaAt: map[int]int{}}
	t.dir = place.New(place.RankAffine(), func(addr int) *flow.Level {
		return p.host.TenantLevel(addr, id)
	})
	p.tenants = append(p.tenants, t)
	p.preempted = append(p.preempted, 0)
	p.events = append(p.events, Event{At: c.Now(), Kind: "admit", Tenant: id, Victim: -1})
	pushes := p.reconcileLocked(c.Now())
	p.mu.Unlock()
	p.apply(c, pushes)
	return t, nil
}

// Finish retires the tenant from the registry: its directory empties (any
// in-flight claims drain through Done) and its capacity is redistributed to
// the remaining tenants on the same synchronous reconcile.
func (p *Plane) Finish(c rt.Ctx, t *Tenant) {
	p.mu.Lock()
	if !t.active {
		p.mu.Unlock()
		return
	}
	t.active = false
	for _, addr := range t.stagers {
		t.dir.Remove(addr)
	}
	t.stagers = nil
	p.events = append(p.events, Event{At: c.Now(), Kind: "finish", Tenant: t.id, Victim: -1})
	pushes := p.reconcileLocked(c.Now())
	p.mu.Unlock()
	p.apply(c, pushes)
}

// Resize replaces the fleet membership — the elastic pool grew, drained, or
// recovered a stager — and reconciles every tenant's slice against the new
// capacity. Guarantees admitted against the old capacity are kept (the
// fleet may run oversubscribed after a shrink; the reconcile still splits
// what remains proportionally).
func (p *Plane) Resize(c rt.Ctx, fleet []int) {
	p.mu.Lock()
	f := append([]int(nil), fleet...)
	sort.Ints(f)
	p.fleet = f
	p.events = append(p.events, Event{At: c.Now(), Kind: "resize", Tenant: -1, Victim: -1, Stagers: len(f)})
	pushes := p.reconcileLocked(c.Now())
	p.mu.Unlock()
	p.apply(c, pushes)
}

// Start launches the periodic reconcile loop as a runtime thread.
func (p *Plane) Start(env rt.Env) {
	p.mu.Lock()
	p.started = true
	p.mu.Unlock()
	env.Go("control.reconcile", p.run)
}

func (p *Plane) run(c rt.Ctx) {
	for {
		c.Sleep(p.cfg.Interval)
		p.mu.Lock()
		if p.stopReq {
			p.stopped = true
			p.mu.Unlock()
			return
		}
		pushes := p.reconcileLocked(c.Now())
		p.mu.Unlock()
		p.apply(c, pushes)
	}
}

// Stop halts the periodic loop. Like elastic.Scaler.Stop it only posts the
// request and polls, so it can never contend with a parked mutex holder.
func (p *Plane) Stop(c rt.Ctx) {
	p.mu.Lock()
	if !p.started {
		p.stopped = true
	}
	p.stopReq = true
	p.mu.Unlock()
	for {
		p.mu.Lock()
		done := p.stopped
		p.mu.Unlock()
		if done {
			return
		}
		c.Sleep(p.cfg.Interval)
	}
}

// quotaPush is one deferred Host.SetTenantQuota call, applied after the
// plane mutex is released (the host call may park).
type quotaPush struct{ addr, tenant, blocks int }

func (p *Plane) apply(c rt.Ctx, pushes []quotaPush) {
	for _, q := range pushes {
		p.host.SetTenantQuota(c, q.addr, q.tenant, q.blocks)
	}
}

// activeLocked returns the active tenants in id order.
func (p *Plane) activeLocked() []*Tenant {
	var act []*Tenant
	for _, t := range p.tenants {
		if t.active {
			act = append(act, t)
		}
	}
	return act
}

// reconcileLocked is one pass of the offer/reconcile engine: observe spill
// deltas and pressure, apply at most one preemption, recompute every active
// tenant's weighted-fair slice and buffer quota, and diff the result against
// the live directories. It returns the quota pushes to apply once the mutex
// is released. All iteration is in sorted order so the engine's event
// sequence is deterministic under simulation.
func (p *Plane) reconcileLocked(now time.Duration) []quotaPush {
	act := p.activeLocked()
	if len(act) == 0 || len(p.fleet) == 0 {
		return nil
	}
	p.preemptLocked(now, act)

	// Weighted-fair slice sizes by largest remainder: tenant i's target is
	// S·w_i/Σw stagers, floored, with leftovers going to the largest
	// fractional remainders (ties: higher priority, then lower id). Every
	// tenant keeps at least one stager; slices may overlap when tenants
	// outnumber stagers.
	S := len(p.fleet)
	var W float64
	for _, t := range act {
		W += t.weight()
	}
	count := make([]int, len(act))
	rem := make([]float64, len(act))
	assigned := 0
	for i, t := range act {
		target := float64(S) * t.weight() / W
		count[i] = int(target)
		rem[i] = target - float64(count[i])
		assigned += count[i]
	}
	order := make([]int, len(act))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if rem[ia] != rem[ib] {
			return rem[ia] > rem[ib]
		}
		if act[ia].spec.Quota.Priority != act[ib].spec.Quota.Priority {
			return act[ia].spec.Quota.Priority > act[ib].spec.Quota.Priority
		}
		return act[ia].id < act[ib].id
	})
	for k := 0; assigned < S && k < len(order); k++ {
		count[order[k]]++
		assigned++
	}
	for i := range count {
		if count[i] < 1 {
			count[i] = 1
		}
	}

	// Place the slices: higher priority picks first, each tenant taking its
	// count of least-loaded stagers (by accumulated weight, then address).
	// The load is seeded with each stager's live resident backlog so a
	// picking tenant steers away from OTHER tenants' congestion — a
	// high-priority arrival must not land behind a spill-heavy tenant's
	// queue — while its own resident blocks don't repel it (a backlogged
	// tenant stays sticky to the stagers that hold its data). The factor 2
	// makes a full buffer outweigh one fresh tenant's weight.
	loadW := map[int]float64{}
	ownW := map[[2]int]float64{}
	if p.bufPerStager > 0 {
		for _, addr := range p.fleet {
			for _, t := range act {
				if lv := p.host.TenantLevel(addr, t.id); lv != nil {
					q, _ := lv.Get()
					if q > 0 {
						w := 2 * float64(q) / float64(p.bufPerStager)
						ownW[[2]int{addr, t.id}] = w
						loadW[addr] += w
					}
				}
			}
		}
	}
	pick := make([]int, len(act))
	for i := range pick {
		pick[i] = i
	}
	sort.SliceStable(pick, func(a, b int) bool {
		ia, ib := pick[a], pick[b]
		if act[ia].spec.Quota.Priority != act[ib].spec.Quota.Priority {
			return act[ia].spec.Quota.Priority > act[ib].spec.Quota.Priority
		}
		return act[ia].id < act[ib].id
	})
	slices := make([][]int, len(act))
	for _, i := range pick {
		t, n := act[i], count[i]
		addrs := append([]int(nil), p.fleet...)
		seen := func(addr int) float64 { return loadW[addr] - ownW[[2]int{addr, t.id}] }
		sort.SliceStable(addrs, func(a, b int) bool {
			if sa, sb := seen(addrs[a]), seen(addrs[b]); sa != sb {
				return sa < sb
			}
			return addrs[a] < addrs[b]
		})
		slice := append([]int(nil), addrs[:n]...)
		sort.Ints(slice)
		for _, addr := range slice {
			loadW[addr] += t.weight() / float64(n)
		}
		slices[i] = slice
	}

	// Per-stager buffer quotas: tenant i's cap on stager a is its weighted
	// share of the stager's buffer among the tenants assigned there, raised
	// to its per-stager guarantee floor ⌈g_i/n_i⌉ and clamped to the buffer.
	// Preemption penalties then halve the cap per strike: weight ratios
	// cancel for a tenant alone on its stager, so without this a penalized
	// spill-heavy tenant would keep its full buffer and its spill storm
	// would keep saturating the store. Shrinking the cap toward 1 clamps it
	// to near-synchronous transfer until the pressure clears. A guarantee is
	// a contract and is never shrunk.
	shareW := map[int]float64{}
	for i, t := range act {
		for _, addr := range slices[i] {
			shareW[addr] += t.weight() / float64(count[i])
		}
	}
	var pushes []quotaPush
	for i, t := range act {
		total := 0
		for _, addr := range slices[i] {
			q := int(float64(p.bufPerStager) * (t.weight() / float64(count[i])) / shareW[addr])
			if t.penalty > 0 {
				q >>= t.penalty
			}
			if g := (t.spec.Quota.BufferBlocks + count[i] - 1) / count[i]; q < g {
				q = g
			}
			if q < 1 {
				q = 1
			}
			if q > p.bufPerStager {
				q = p.bufPerStager
			}
			total += q
			if t.quotaAt[addr] != q {
				t.quotaAt[addr] = q
				pushes = append(pushes, quotaPush{addr: addr, tenant: t.id, blocks: q})
			}
		}
		changed := len(slices[i]) != len(t.stagers)
		for k := 0; !changed && k < len(slices[i]); k++ {
			changed = slices[i][k] != t.stagers[k]
		}
		// Directory edits: add before remove so producers never observe an
		// empty membership mid-shuffle (they would fall back to the direct
		// channel). Removed stagers need no quiesce — the endpoints stay
		// live and in-flight claims drain through Done.
		for _, addr := range slices[i] {
			if !containsAddr(t.stagers, addr) {
				t.dir.Add(addr)
			}
		}
		for _, addr := range t.stagers {
			if !containsAddr(slices[i], addr) {
				t.dir.Remove(addr)
			}
		}
		if changed || totalQuotaChanged(t, total) {
			t.lastTotal = total
			p.events = append(p.events, Event{At: now, Kind: "assign", Tenant: t.id, Victim: -1,
				Stagers: len(slices[i]), Blocks: total})
		}
		t.stagers = slices[i]
	}
	return pushes
}

func containsAddr(s []int, addr int) bool {
	for _, a := range s {
		if a == addr {
			return true
		}
	}
	return false
}

func totalQuotaChanged(t *Tenant, total int) bool { return t.lastTotal != total }

// preemptLocked observes each tenant's spill delta and quota pressure and
// applies at most one preemption per pass: the highest-priority pressured
// tenant claims capacity from the spill-heaviest strictly-lower-priority
// tenant (lowest class first), whose effective weight is halved. When no
// tenant is pressured, penalties on tenants that have stopped spilling
// decay one step — capacity flows back once the noisy phase ends.
func (p *Plane) preemptLocked(now time.Duration, act []*Tenant) {
	delta := make([]int64, len(act))
	pressure := make([]float64, len(act))
	for i, t := range act {
		var spilled int64
		for _, addr := range p.fleet {
			spilled += p.host.TenantSpilled(addr, t.id)
		}
		delta[i] = spilled - t.lastSpilled
		t.lastSpilled = spilled
		for _, addr := range t.stagers {
			if lv := p.host.TenantLevel(addr, t.id); lv != nil {
				if q, capacity := lv.Get(); capacity > 0 {
					if f := float64(q) / float64(capacity); f > pressure[i] {
						pressure[i] = f
					}
				}
			}
		}
	}
	claimant := -1
	for i, t := range act {
		if pressure[i] < p.cfg.PreemptOccupancy {
			continue
		}
		if claimant < 0 || t.spec.Quota.Priority > act[claimant].spec.Quota.Priority {
			claimant = i
		}
	}
	if claimant < 0 {
		for _, t := range act {
			if t.penalty > 0 {
				t.penalty--
			}
		}
		return
	}
	victim := -1
	for i, t := range act {
		if t.spec.Quota.Priority >= act[claimant].spec.Quota.Priority || delta[i] <= 0 {
			continue
		}
		if victim < 0 {
			victim = i
			continue
		}
		v := act[victim]
		if t.spec.Quota.Priority != v.spec.Quota.Priority {
			if t.spec.Quota.Priority < v.spec.Quota.Priority {
				victim = i
			}
			continue
		}
		if delta[i] > delta[victim] {
			victim = i
		}
	}
	if victim < 0 || act[victim].penalty >= maxPenalty {
		return
	}
	act[victim].penalty++
	p.preemptions++
	p.preempted[act[victim].id]++
	p.events = append(p.events, Event{At: now, Kind: "preempt",
		Tenant: act[claimant].id, Victim: act[victim].id,
		Stagers: len(act[claimant].stagers)})
}

// maxPenalty bounds the preemption throttle: a victim's effective weight
// never drops below Share/2^6, so it always retains a sliver of capacity
// and its stream can finish.
const maxPenalty = 6

// Events returns the control timeline in action order.
func (p *Plane) Events() []Event {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Event(nil), p.events...)
}

// Preemptions returns the lifetime preemption count.
func (p *Plane) Preemptions() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.preemptions
}

// Snapshot returns every admitted tenant's current assignment, in id order.
func (p *Plane) Snapshot() []TenantSnapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]TenantSnapshot, len(p.tenants))
	for i, t := range p.tenants {
		total := 0
		for _, addr := range t.stagers {
			total += t.quotaAt[addr]
		}
		out[i] = TenantSnapshot{
			ID: t.id, Name: t.spec.Name, Priority: t.spec.Quota.Priority,
			Active:  t.active,
			Stagers: append([]int(nil), t.stagers...), QuotaBlocks: total,
			Preempted: p.preempted[t.id],
		}
	}
	return out
}
