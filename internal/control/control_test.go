package control

import (
	"errors"
	"math"
	"sync"
	"testing"

	"zipper/internal/flow"
	"zipper/internal/rt"
	"zipper/internal/rt/realenv"
)

// fakeHost is a scriptable fleet: per-(addr, tenant) occupancy gauges and
// spill counters the tests drive directly, plus a record of every quota
// push the plane applied.
type fakeHost struct {
	mu      sync.Mutex
	levels  map[[2]int]*flow.Level
	spilled map[[2]int]int64
	quotas  map[[2]int]int
}

func newFakeHost() *fakeHost {
	return &fakeHost{
		levels:  map[[2]int]*flow.Level{},
		spilled: map[[2]int]int64{},
		quotas:  map[[2]int]int{},
	}
}

func (h *fakeHost) TenantLevel(addr, tenant int) *flow.Level {
	h.mu.Lock()
	defer h.mu.Unlock()
	k := [2]int{addr, tenant}
	if h.levels[k] == nil {
		h.levels[k] = &flow.Level{}
	}
	return h.levels[k]
}

func (h *fakeHost) TenantSpilled(addr, tenant int) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.spilled[[2]int{addr, tenant}]
}

func (h *fakeHost) SetTenantQuota(c rt.Ctx, addr, tenant, blocks int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.quotas[[2]int{addr, tenant}] = blocks
}

func (h *fakeHost) quota(addr, tenant int) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quotas[[2]int{addr, tenant}]
}

func (h *fakeHost) spill(addr, tenant int, n int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.spilled[[2]int{addr, tenant}] += n
}

func TestAdmissionValidation(t *testing.T) {
	env := realenv.New()
	ctx := env.Ctx()
	p := NewPlane(Config{MaxTenants: 2}, []int{10, 11}, 8, newFakeHost())
	bad := []struct {
		name  string
		quota Quota
		field string
	}{
		{"priority", Quota{Priority: Priority(7)}, "Quota.Priority"},
		{"negative share", Quota{Share: -1}, "Quota.Share"},
		{"nan share", Quota{Share: math.NaN()}, "Quota.Share"},
		{"negative guarantee", Quota{BufferBlocks: -1}, "Quota.BufferBlocks"},
		{"oversubscribed", Quota{BufferBlocks: 17}, "Quota.BufferBlocks"},
	}
	for _, tc := range bad {
		_, err := p.Admit(ctx, JobSpec{Name: tc.name, Quota: tc.quota})
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Fatalf("%s: got %v, want *ConfigError", tc.name, err)
		}
		if ce.Field != tc.field {
			t.Fatalf("%s: field %q, want %q", tc.name, ce.Field, tc.field)
		}
	}
	// Aggregate guarantees are checked against active tenants only.
	a, err := p.Admit(ctx, JobSpec{Name: "a", Quota: Quota{BufferBlocks: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Admit(ctx, JobSpec{Name: "b", Quota: Quota{BufferBlocks: 8}}); err == nil {
		t.Fatal("second guarantee oversubscribed the fleet but was admitted")
	}
	p.Finish(ctx, a)
	if _, err := p.Admit(ctx, JobSpec{Name: "b", Quota: Quota{BufferBlocks: 8}}); err != nil {
		t.Fatalf("admission after finish: %v", err)
	}
	// MaxTenants is a lifetime cap: a finished tenant's id is not reusable.
	if _, err := p.Admit(ctx, JobSpec{Name: "c"}); err == nil {
		t.Fatal("admission beyond MaxTenants succeeded")
	}
}

func TestWeightedFairShare(t *testing.T) {
	env := realenv.New()
	ctx := env.Ctx()
	host := newFakeHost()
	fleet := []int{10, 11, 12, 13}
	p := NewPlane(Config{}, fleet, 16, host)

	a, err := p.Admit(ctx, JobSpec{Name: "a", Quota: Quota{Share: 1}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Admit(ctx, JobSpec{Name: "b", Quota: Quota{Share: 3}})
	if err != nil {
		t.Fatal(err)
	}
	// 4 stagers split 1:3 → a holds 1, b holds 3, disjointly (each tenant
	// alone on its stagers gets the full buffer).
	sa, sb := a.Directory().Members(), b.Directory().Members()
	if len(sa) != 1 || len(sb) != 3 {
		t.Fatalf("slices %v / %v, want sizes 1 / 3", sa, sb)
	}
	seen := map[int]bool{}
	for _, addr := range append(append([]int(nil), sa...), sb...) {
		if seen[addr] {
			t.Fatalf("stager %d assigned to both tenants with capacity to spare", addr)
		}
		seen[addr] = true
	}
	if q := host.quota(sa[0], a.ID()); q != 16 {
		t.Fatalf("sole tenant's quota %d, want the full buffer", q)
	}
	// Finish b: a's slice grows to the whole fleet on the same call.
	p.Finish(ctx, b)
	if got := a.Directory().Members(); len(got) != 4 {
		t.Fatalf("survivor's slice %v, want all 4 stagers", got)
	}
	if len(b.Directory().Members()) != 0 {
		t.Fatal("finished tenant's directory still has members")
	}
	var kinds []string
	for _, e := range p.Events() {
		kinds = append(kinds, e.Kind)
	}
	want := []string{"admit", "assign", "admit", "assign", "assign", "finish", "assign"}
	if len(kinds) != len(want) {
		t.Fatalf("event kinds %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event kinds %v, want %v", kinds, want)
		}
	}
}

func TestGuaranteeFloorAndOverlap(t *testing.T) {
	env := realenv.New()
	ctx := env.Ctx()
	host := newFakeHost()
	p := NewPlane(Config{}, []int{10, 11}, 16, host)
	// Three tenants on two stagers: slices must overlap (everyone keeps ≥ 1
	// stager) and the guaranteed tenant's per-stager cap is floored at
	// ⌈guarantee/slice⌉ even where it shares the stager.
	g, err := p.Admit(ctx, JobSpec{Name: "g", Quota: Quota{BufferBlocks: 12}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Admit(ctx, JobSpec{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Admit(ctx, JobSpec{Name: "y"}); err != nil {
		t.Fatal(err)
	}
	gs := g.Directory().Members()
	if len(gs) == 0 {
		t.Fatal("guaranteed tenant lost its whole slice")
	}
	floor := (12 + len(gs) - 1) / len(gs)
	for _, addr := range gs {
		if q := host.quota(addr, g.ID()); q < floor {
			t.Fatalf("stager %d quota %d below guarantee floor %d", addr, q, floor)
		}
	}
	for _, sn := range p.Snapshot() {
		if len(sn.Stagers) < 1 {
			t.Fatalf("tenant %d has no stager: %+v", sn.ID, sn)
		}
	}
}

func TestPreemptionAndDecay(t *testing.T) {
	env := realenv.New()
	ctx := env.Ctx()
	host := newFakeHost()
	fleet := []int{10, 11, 12}
	p := NewPlane(Config{}, fleet, 16, host)
	hi, err := p.Admit(ctx, JobSpec{Name: "hi", Quota: Quota{Priority: PriorityHigh}})
	if err != nil {
		t.Fatal(err)
	}
	lo, err := p.Admit(ctx, JobSpec{Name: "lo", Quota: Quota{Priority: PriorityLow}})
	if err != nil {
		t.Fatal(err)
	}
	reconcile := func() { p.Resize(ctx, fleet) } // forces a synchronous pass

	// Script the gauges: the high-priority tenant is pressed against its
	// quota on its first stager while the low-priority tenant spills.
	press := func(on bool) {
		addr := hi.Directory().Members()[0]
		lv := host.TenantLevel(addr, hi.ID())
		_, capacity := lv.Get()
		if capacity == 0 {
			capacity = 16
			lv.SetCapacity(capacity)
		}
		if on {
			lv.Set(ctx.Now(), capacity)
		} else {
			lv.Set(ctx.Now(), 0)
		}
	}
	press(true)
	host.spill(fleet[0], lo.ID(), 5)
	reconcile() // baseline pass records the spill delta and the pressure
	host.spill(fleet[0], lo.ID(), 5)
	reconcile()
	if p.Preemptions() == 0 {
		t.Fatal("pressured high-priority tenant never preempted the spilling low-priority one")
	}
	var ev Event
	for _, e := range p.Events() {
		if e.Kind == "preempt" {
			ev = e
		}
	}
	if ev.Tenant != hi.ID() || ev.Victim != lo.ID() {
		t.Fatalf("preempt event %+v, want claimant %d victim %d", ev, hi.ID(), lo.ID())
	}
	for _, sn := range p.Snapshot() {
		if sn.ID == lo.ID() && sn.Preempted == 0 {
			t.Fatalf("victim snapshot lost the preemption count: %+v", sn)
		}
	}
	if lo.weight() >= 1 {
		t.Fatalf("victim weight %v after preemption, want < 1", lo.weight())
	}
	// Equal or higher classes are never victims: press again with only the
	// high tenant spilling — no further preemption.
	n := p.Preemptions()
	host.spill(fleet[0], hi.ID(), 5)
	reconcile()
	if p.Preemptions() != n {
		t.Fatal("a tenant preempted an equal-or-higher class")
	}
	// Release the pressure: penalties decay and the victim's weight returns.
	press(false)
	for i := 0; i < maxPenalty+1; i++ {
		reconcile()
	}
	if lo.weight() != 1 {
		t.Fatalf("victim weight %v after decay, want 1", lo.weight())
	}
}

func TestPlaneStartStop(t *testing.T) {
	env := realenv.New()
	ctx := env.Ctx()
	p := NewPlane(Config{}, []int{10}, 8, newFakeHost())
	p.Start(env)
	if _, err := p.Admit(ctx, JobSpec{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	p.Stop(ctx)
	// Stop on a never-started plane returns immediately.
	q := NewPlane(Config{}, []int{10}, 8, newFakeHost())
	q.Stop(ctx)
}
