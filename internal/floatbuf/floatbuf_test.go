package floatbuf

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	prop := func(vals []float64) bool {
		got := Decode(Encode(vals))
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if vals[i] != got[i] && !(math.IsNaN(vals[i]) && math.IsNaN(got[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsRaggedInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged input did not panic")
		}
	}()
	Decode(make([]byte, 7))
}

func TestEmpty(t *testing.T) {
	if got := Decode(Encode(nil)); len(got) != 0 {
		t.Fatalf("empty round trip = %v", got)
	}
}
