package floatbuf

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	prop := func(vals []float64) bool {
		got := Decode(Encode(vals))
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if vals[i] != got[i] && !(math.IsNaN(vals[i]) && math.IsNaN(got[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsRaggedInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged input did not panic")
		}
	}()
	Decode(make([]byte, 7))
}

func TestEncodeIntoMatchesEncode(t *testing.T) {
	vals := []float64{1.5, -2.25, math.Pi, 0}
	dst := make([]byte, 8*len(vals))
	EncodeInto(dst, vals)
	if string(dst) != string(Encode(vals)) {
		t.Fatal("EncodeInto diverges from Encode")
	}
}

func TestEncodeIntoRejectsWrongSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch did not panic")
		}
	}()
	EncodeInto(make([]byte, 7), []float64{1})
}

func TestEmpty(t *testing.T) {
	if got := Decode(Encode(nil)); len(got) != 0 {
		t.Fatalf("empty round trip = %v", got)
	}
}
