// Package floatbuf converts between float64 slices and the little-endian
// byte blocks that move through the workflow runtimes.
package floatbuf

import (
	"encoding/binary"
	"math"
)

// Encode serializes vals into a freshly allocated little-endian byte slice.
func Encode(vals []float64) []byte {
	out := make([]byte, 8*len(vals))
	EncodeInto(out, vals)
	return out
}

// EncodeInto serializes vals into dst, which must be exactly 8*len(vals)
// bytes — typically a pooled payload from block.GetPayload or
// zipper.NewPayload, so the encode step allocates nothing. It panics on a
// size mismatch rather than silently truncating a block.
func EncodeInto(dst []byte, vals []float64) {
	if len(dst) != 8*len(vals) {
		panic("floatbuf: EncodeInto buffer size mismatch")
	}
	for i, v := range vals {
		binary.LittleEndian.PutUint64(dst[8*i:], math.Float64bits(v))
	}
}

// Decode deserializes a little-endian byte slice produced by Encode. It
// panics if len(b) is not a multiple of 8 — blocks are always whole floats.
func Decode(b []byte) []float64 {
	if len(b)%8 != 0 {
		panic("floatbuf: byte length not a multiple of 8")
	}
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}
