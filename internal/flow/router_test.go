package flow

import (
	"testing"
	"time"
)

// TestStaticRouters pins the fixed policies.
func TestStaticRouters(t *testing.T) {
	sig := Signals{Credits: 0, Backlog: 99, HighWater: 6}
	if Static(Direct).Route(sig) != Direct {
		t.Fatal("Static(Direct) relayed")
	}
	if Static(Relay).Route(sig) != Relay {
		t.Fatal("Static(Relay) went direct")
	}
}

// TestReactiveRouterMatchesLegacyCascade pins the hybrid policy to the exact
// decision table the producer's routeLocked used to hard-code, so the
// refactor is behavior-preserving for RouteHybrid.
func TestReactiveRouterMatchesLegacyCascade(t *testing.T) {
	r := Reactive()
	cases := []struct {
		name string
		sig  Signals
		want Route
	}{
		{"credit available", Signals{Credits: 2, StagerQueued: 0, StagerCapacity: 64}, Direct},
		{"no credit, stager room", Signals{Credits: 0, StagerQueued: 10, StagerCapacity: 64}, Relay},
		{"no credit, stager full", Signals{Credits: 0, StagerQueued: 64, StagerCapacity: 64}, Direct},
		{"no credit, occupancy unknown", Signals{Credits: 0, StagerQueued: OccupancyUnknown, StagerCapacity: OccupancyUnknown}, Relay},
		{"no visibility, shallow buffer", Signals{Credits: CreditsUnknown, Backlog: 2, HighWater: 6}, Direct},
		{"no visibility, deep buffer", Signals{Credits: CreditsUnknown, Backlog: 6, HighWater: 6}, Relay},
	}
	for _, tc := range cases {
		if got := r.Route(tc.sig); got != tc.want {
			t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
		}
	}
}

// adaptiveHarness drives an Adaptive controller through scripted decision
// rounds: each round advances the clock by `step`, reports any stall, asks
// for a route under the given signals, and reports the send back with a
// route-dependent cost (directBusy / relayBusy model the two channels'
// service rates).
type adaptiveHarness struct {
	a                     *Adaptive
	now                   time.Duration
	directBusy, relayBusy time.Duration
}

func (h *adaptiveHarness) round(step, stall time.Duration, sig Signals) Route {
	h.now += step
	if stall > 0 {
		h.a.ObserveStall(h.now, stall)
	}
	sig.Now = h.now
	r := h.a.Route(sig)
	busy := h.directBusy
	if r == Relay {
		busy = h.relayBusy
	}
	h.a.ObserveSend(r, h.now, busy, 1, 1<<15)
	return r
}

// TestAdaptiveConvergence is the controller's step-response test: a healthy
// phase must keep traffic direct, a consumer slowdown (stalls + exhausted
// credit) must shift the split toward staging within a bounded number of
// batches, and a recovery must hand the traffic back to the direct path —
// all deterministic, clocked by scripted timestamps.
func TestAdaptiveConvergence(t *testing.T) {
	// The direct channel costs 10× the relay per byte once the consumer
	// lags — the regime where the staging tier earns its keep.
	h := &adaptiveHarness{
		a:          NewAdaptive(Tuning{Tau: 2 * time.Millisecond, Decay: 10 * time.Millisecond}),
		directBusy: 2 * time.Millisecond,
		relayBusy:  200 * time.Microsecond,
	}
	healthy := Signals{Credits: 3, StagerCredits: 2, StagerQueued: 0, StagerCapacity: 64}
	step := time.Millisecond

	// Phase A — healthy: no stalls, credit available. All direct.
	for i := 0; i < 50; i++ {
		if r := h.round(step, 0, healthy); r != Direct {
			t.Fatalf("healthy decision %d routed %v", i, r)
		}
	}
	if s := h.a.Share(); s != 0 {
		t.Fatalf("healthy share %.3f, want 0", s)
	}

	// Phase B — slowdown: the consumer lags, Write stalls and the window is
	// out of credit. The split must shift to staging within 10 batches.
	congested := Signals{Credits: 0, StagerCredits: 2, StagerQueued: 8, StagerCapacity: 64}
	relays := 0
	for i := 0; i < 10; i++ {
		if h.round(step, 3*time.Millisecond, congested) == Relay {
			relays++
		}
	}
	if relays < 8 {
		t.Fatalf("slowdown: only %d/10 batches relayed", relays)
	}
	if s := h.a.Share(); s < 0.5 {
		t.Fatalf("share %.3f after sustained stalls, want > 0.5", s)
	}
	// Even when credit reappears briefly, a raised share keeps most batches
	// on the relay — the proactive behavior the reactive policy lacks.
	borrowed := Signals{Credits: 1, StagerCredits: 2, StagerQueued: 8, StagerCapacity: 64}
	relays = 0
	for i := 0; i < 10; i++ {
		if h.round(step, 2*time.Millisecond, borrowed) == Relay {
			relays++
		}
	}
	if relays < 5 {
		t.Fatalf("raised share relayed only %d/10 batches with credit available", relays)
	}

	// Phase C — recovery: stalls stop, credit returns. Within a bounded
	// number of batches (a few Decay constants) the split must come back.
	for i := 0; i < 100; i++ {
		h.round(step, 0, healthy)
	}
	if s := h.a.Share(); s > 0.05 {
		t.Fatalf("share %.3f after recovery, want < 0.05", s)
	}
	for i := 0; i < 10; i++ {
		if r := h.round(step, 0, healthy); r != Direct {
			t.Fatalf("post-recovery decision %d routed %v", i, r)
		}
	}
}

// TestAdaptiveShedsACongestedRelay is the other half of the closed loop:
// when the staging tier is the congested channel (its receive window keeps
// exhausting), stalls must NOT funnel traffic into it — the AIMD back-off
// keeps the split on the direct path, where the work-stealing writer can
// help.
func TestAdaptiveShedsACongestedRelay(t *testing.T) {
	h := &adaptiveHarness{
		a:          NewAdaptive(Tuning{Tau: 2 * time.Millisecond, Decay: 10 * time.Millisecond}),
		directBusy: 100 * time.Microsecond,
		relayBusy:  4 * time.Millisecond,
	}
	// The stager's window is exhausted on most decisions (an oversubscribed
	// or serialized staging tier) while the direct path keeps a free slot.
	// The producer stalls throughout, which would naively argue for MORE
	// relaying — the congestion differential must override that.
	relaysWhenOpen, open := 0, 0
	for i := 0; i < 200; i++ {
		sig := Signals{Credits: 1, StagerCredits: 0, StagerQueued: 64, StagerCapacity: 64}
		if i%4 == 3 { // the stager frees a slot every 4th decision
			sig.StagerCredits = 1
		}
		r := h.round(time.Millisecond, time.Millisecond, sig)
		if sig.StagerCredits > 0 {
			open++
			if r == Relay {
				relaysWhenOpen++
			}
		} else if r == Relay {
			t.Fatalf("decision %d relayed into an exhausted stager window with direct free", i)
		}
	}
	if relaysWhenOpen*3 > open {
		t.Fatalf("%d/%d open-slot batches still funneled into the congested relay", relaysWhenOpen, open)
	}
	if s := h.a.Share(); s > 0.3 {
		t.Fatalf("share %.3f despite a congested relay, want ≈0", s)
	}
}

// TestAdaptiveSaturationPrefersCheaperChannel checks the both-saturated
// arbitration: where the reactive policy hard-codes the blocking direct
// path, the adaptive controller drains through whichever channel has been
// delivering more cheaply, and probes the minority channel periodically.
func TestAdaptiveSaturationPrefersCheaperChannel(t *testing.T) {
	a := NewAdaptive(Tuning{Tau: 2 * time.Millisecond, ProbeInterval: 8})
	now := time.Duration(0)
	// Teach the controller that the relay delivers ~10× cheaper per byte.
	for i := 0; i < 50; i++ {
		now += time.Millisecond
		a.ObserveSend(Relay, now, 200*time.Microsecond, 1, 1<<15)
		a.ObserveSend(Direct, now, 2*time.Millisecond, 1, 1<<15)
	}
	sat := Signals{Credits: 0, StagerCredits: 0, StagerQueued: 64, StagerCapacity: 64}
	relays, probes := 0, 0
	for i := 0; i < 32; i++ {
		now += time.Millisecond
		sat.Now = now
		if a.Route(sat) == Relay {
			relays++
		} else {
			probes++
		}
	}
	if relays < 20 {
		t.Fatalf("saturated: only %d/32 took the cheaper relay channel", relays)
	}
	if probes == 0 {
		t.Fatal("saturated: the more expensive channel was never probed")
	}
}

// TestAdaptiveDeterministic: two controllers fed the same script must make
// identical decisions — the property that keeps simenv runs reproducible.
func TestAdaptiveDeterministic(t *testing.T) {
	script := func() []Route {
		h := &adaptiveHarness{a: NewAdaptive(Tuning{})}
		var out []Route
		for i := 0; i < 200; i++ {
			stall := time.Duration(0)
			if i%7 == 3 {
				stall = time.Duration(i%5) * time.Millisecond
			}
			sig := Signals{Credits: i % 3, StagerCredits: (i + 1) % 3, StagerQueued: i % 70, StagerCapacity: 64}
			out = append(out, h.round(time.Millisecond, stall, sig))
		}
		return out
	}
	a, b := script(), script()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged: %v vs %v", i, a[i], b[i])
		}
	}
}
