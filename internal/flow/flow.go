// Package flow is the Zipper runtime's flow-control plane: the gauges that
// turn raw counter increments into live delivered-throughput and stall
// signals, and the routers that consult those signals to pick a channel for
// every batch a producer's sender thread drains.
//
// Everything here is clocked by caller-supplied timestamps — rt.Ctx.Now()
// virtual time under simenv, wall time since the platform epoch under
// realenv — so the same controller runs deterministically inside the
// discrete-event simulator and live on the real machine. No gauge ever reads
// a wall clock of its own.
//
// Gauges are individually thread-safe (producer, stager, and application
// threads update them concurrently) and are leaves in the lock order: they
// take no other lock while held, so callers may update them under their own
// module locks.
package flow

import (
	"math"
	"sync"
	"time"
)

// DefaultTau is the EWMA time constant a zero-value gauge uses.
const DefaultTau = 50 * time.Millisecond

// Meter is a monotonically increasing counter (events, blocks, bytes, or
// stalled nanoseconds) paired with an exponentially weighted moving average
// of its rate. The zero value is ready to use with DefaultTau.
type Meter struct {
	mu      sync.Mutex
	tau     time.Duration
	total   int64
	rate    float64 // units per second, folded up to `last`
	pending int64   // units observed at (or since) `last`, not yet folded
	last    time.Duration
	started bool
}

// NewMeter returns a meter with the given EWMA time constant (0 selects
// DefaultTau). The returned value must not be copied after first use.
func NewMeter(tau time.Duration) Meter { return Meter{tau: tau} }

func (m *Meter) tauSeconds() float64 {
	if m.tau <= 0 {
		return DefaultTau.Seconds()
	}
	return m.tau.Seconds()
}

// Add records n units at time now. Timestamps may repeat (several events in
// the same instant) but must not go backwards; a stale now is treated as the
// latest fold time.
func (m *Meter) Add(now time.Duration, n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.total += n
	if !m.started {
		m.started = true
		m.last = now
	}
	m.pending += n
	if now > m.last {
		m.foldLocked(now)
	}
}

// foldLocked blends the pending window (last, now] into the rate EWMA.
func (m *Meter) foldLocked(now time.Duration) {
	dt := (now - m.last).Seconds()
	inst := float64(m.pending) / dt
	alpha := 1 - math.Exp(-dt/m.tauSeconds())
	m.rate += alpha * (inst - m.rate)
	m.pending = 0
	m.last = now
}

// Total returns the lifetime count.
func (m *Meter) Total() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.total
}

// Rate returns the EWMA rate in units per second as of now: it decays toward
// zero while no events arrive, without mutating the meter.
func (m *Meter) Rate(now time.Duration) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.started || now <= m.last {
		return m.rate
	}
	dt := (now - m.last).Seconds()
	inst := float64(m.pending) / dt
	alpha := 1 - math.Exp(-dt/m.tauSeconds())
	return m.rate + alpha*(inst-m.rate)
}

// LastRate returns the EWMA rate as of the last recorded event, with no
// decay applied — the value FinalStats-style callers want once the platform
// has stopped and there is no live clock to decay against.
func (m *Meter) LastRate() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rate
}

// AddDur records a duration (stall or busy time) as nanoseconds.
func (m *Meter) AddDur(now, d time.Duration) { m.Add(now, int64(d)) }

// TotalDur returns the lifetime total as a duration.
func (m *Meter) TotalDur() time.Duration { return time.Duration(m.Total()) }

// Frac interprets the meter as accumulated nanoseconds and returns the EWMA
// fraction of recent time spent accumulating (1.0 = permanently stalled).
func (m *Meter) Frac(now time.Duration) float64 {
	return m.Rate(now) / float64(time.Second)
}

// Level tracks an instantaneous occupancy (a queue depth) together with its
// capacity, peak, and a time-weighted EWMA. The zero value is ready to use;
// set the capacity with SetCapacity before readers consult it.
type Level struct {
	mu       sync.Mutex
	tau      time.Duration
	capacity int
	cur      int
	avg      float64
	max      int64
	last     time.Duration
	started  bool
}

// NewLevel returns a level gauge with the given capacity and EWMA time
// constant (0 selects DefaultTau). The returned value must not be copied
// after first use.
func NewLevel(capacity int, tau time.Duration) Level {
	return Level{capacity: capacity, tau: tau}
}

func (l *Level) tauSeconds() float64 {
	if l.tau <= 0 {
		return DefaultTau.Seconds()
	}
	return l.tau.Seconds()
}

// SetCapacity declares the gauge's capacity (for zero-value embedding).
func (l *Level) SetCapacity(c int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.capacity = c
}

// Set records the occupancy v at time now.
func (l *Level) Set(now time.Duration, v int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.started {
		l.started = true
		l.last = now
		l.avg = float64(v)
	} else if now > l.last {
		dt := (now - l.last).Seconds()
		alpha := 1 - math.Exp(-dt/l.tauSeconds())
		l.avg += alpha * (float64(l.cur) - l.avg)
		l.last = now
	}
	l.cur = v
	if int64(v) > l.max {
		l.max = int64(v)
	}
}

// Get returns the current occupancy and the capacity. It is the probe the
// routing policies poll on every decision.
func (l *Level) Get() (queued, capacity int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cur, l.capacity
}

// Avg returns the time-weighted EWMA occupancy as of now.
func (l *Level) Avg(now time.Duration) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.started || now <= l.last {
		return l.avg
	}
	dt := (now - l.last).Seconds()
	alpha := 1 - math.Exp(-dt/l.tauSeconds())
	return l.avg + alpha*(float64(l.cur)-l.avg)
}

// Max returns the peak occupancy ever recorded.
func (l *Level) Max() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.max
}
