package flow

// ReduceGate is the "compress instead of spill" rung of the staging tier's
// pressure ladder. The spiller's ladder used to have two rungs: forward
// from memory while occupancy is healthy, spill to the PFS above the
// high-water mark. The gate inserts a middle rung — when occupancy crosses
// the old spill threshold, the stager starts reduction-encoding the blocks
// it forwards, burning CPU to shrink the queue's wire time before burning
// PFS bandwidth; only if pressure keeps building past a raised spill
// threshold does the PFS rung engage.
//
// The gate is hysteretic: it engages at the high-water mark and releases
// only when occupancy falls back to half of it, so a queue hovering at the
// threshold doesn't flap the encoder on and off per block.
//
// Callers drive it under their own module lock; the gate itself holds no
// synchronization.
type ReduceGate struct {
	engageAt  int // occupancy (blocks) at or above which reduction engages
	releaseAt int // occupancy at or below which it disengages

	engaged     bool
	engagements int64
}

// NewReduceGate builds a gate that engages at highWater blocks and releases
// at half that (at least one block lower, so a one-block buffer still
// hysteretes).
func NewReduceGate(highWater int) *ReduceGate {
	if highWater < 1 {
		highWater = 1
	}
	release := highWater / 2
	if release >= highWater {
		release = highWater - 1
	}
	return &ReduceGate{engageAt: highWater, releaseAt: release}
}

// Observe updates the gate with the current queue occupancy and reports
// whether reduction is engaged.
func (g *ReduceGate) Observe(occupancy int) bool {
	if g.engaged {
		if occupancy <= g.releaseAt {
			g.engaged = false
		}
	} else if occupancy >= g.engageAt {
		g.engaged = true
		g.engagements++
	}
	return g.engaged
}

// Engaged reports the gate state without updating it.
func (g *ReduceGate) Engaged() bool { return g.engaged }

// Engagements counts how many times the gate has switched on — the number
// of pressure bursts reduction absorbed.
func (g *ReduceGate) Engagements() int64 { return g.engagements }
