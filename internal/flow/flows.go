package flow

import "time"

// The three runtime modules — producer, consumer, stager — used to keep
// three parallel structs of plain int64/time.Duration counters, each guarded
// by its module lock and readable only as terminal totals. The flows structs
// below replace them with one shared gauge vocabulary: every counter is a
// Meter (total + live EWMA rate) and every occupancy is a Level, so
// Job.Stats() can report delivered throughput and stall fractions while the
// run is still in flight, and the adaptive router can read the same gauges
// it steers.
//
// A flows struct embeds Meters by value and therefore must not be copied
// after first use; modules hold it as a field and hand out pointers.

// ProducerFlows gauges one producer runtime module.
type ProducerFlows struct {
	Written  Meter // blocks the application handed to Write
	Sent     Meter // blocks that left directly via the network path
	Relayed  Meter // blocks that left via the in-transit staging relay
	Stolen   Meter // blocks the writer thread routed via the file system
	Messages Meter // mixed messages sent (including the Fin)

	WriteStall Meter // ns Write sat blocked on a full buffer
	SendBusy   Meter // ns the sender thread spent in Send
	StealBusy  Meter // ns the writer thread spent spilling

	WireBytes  Meter // payload bytes put on the wire (encoded size when reduced)
	SavedBytes Meter // payload bytes reduction kept off the wire (raw − encoded)
}

// ConsumerFlows gauges one consumer runtime module. Queue is the live
// consumer-buffer occupancy published into the placement plane: a
// least-occupancy consumer directory steers each producer batch toward the
// analysis endpoint with the most headroom by reading it.
type ConsumerFlows struct {
	Received Meter // blocks that arrived via the network path
	Read     Meter // blocks fetched from the file-system path
	Analyzed Meter // blocks handed to the analysis application
	Stored   Meter // blocks persisted by the output thread

	ReadStall Meter // ns Read sat blocked waiting for data
	RecvBusy  Meter // ns the receiver thread spent in Recv
	DiskBusy  Meter // ns the reader thread spent in ReadBlock
	StoreBusy Meter // ns the output thread spent in WriteBlock

	Queue Level // consumer buffer fill in blocks, with capacity and peak
}

// StagerFlows gauges one in-transit stager endpoint. Queue is the live
// in-memory buffer occupancy the routing policies poll — the gauge that
// replaced the ad-hoc occupancy probe func.
type StagerFlows struct {
	In           Meter // blocks received from producers
	Forwarded    Meter // blocks delivered to consumers
	Spilled      Meter // blocks that overflowed to the spill store
	SpilledBytes Meter // payload bytes that overflowed to the spill store
	DiskRefs     Meter // producer disk-ref announcements relayed
	MessagesIn   Meter // mixed messages received
	MessagesOut  Meter // mixed messages forwarded (re-batched)

	RecvBusy    Meter // ns the receiver thread spent in Recv
	ForwardBusy Meter // ns the forwarder thread spent in Send
	SpillBusy   Meter // ns spent writing + re-reading spilled blocks

	WireBytes  Meter // payload bytes forwarded on the wire (encoded size when reduced)
	SavedBytes Meter // payload bytes reduction kept off the wire (raw − encoded)

	Queue Level // in-memory buffer fill in blocks, with capacity and peak
}

// FailoverFlows gauges the fault plane of one job: the failure detector's
// evictions and the recovery reader's outcome per block. The same
// must-not-copy rule as the module flows applies; fault.Monitor holds the
// struct and hands out a pointer.
type FailoverFlows struct {
	Evictions Meter // leases expired and swept from the membership
	Replayed  Meter // blocks re-forwarded from dead stagers' journals
	Orphaned  Meter // whole messages drained off dead receivers and re-sent
	Lost      Meter // blocks genuinely unrecoverable (spool read failed)
}

// PoolSignals is the staging tier seen as one resource: the pool-wide
// aggregate of every live stager's gauges at one instant. It is the
// observation vector the elastic scaler steers on — occupancy and spill
// pressure say the tier is undersized, a near-empty pool says it is
// oversized — and any external observer can read the same aggregate.
type PoolSignals struct {
	Stagers      int     // live stager endpoints aggregated
	Queued       int     // blocks resident across all in-memory buffers
	Capacity     int     // summed buffer capacity in blocks
	Occupancy    float64 // Queued/Capacity, 0 when the pool is empty
	ForwardRate  float64 // summed live EWMA delivery rate, blocks/s
	Spilled      int64   // lifetime blocks spilled across the pool
	SpilledBytes int64   // lifetime payload bytes spilled across the pool
}

// AggregatePool folds the live members' gauges into one PoolSignals as of
// now. Members' gauges are individually thread-safe, so the aggregate is a
// consistent-enough snapshot for control decisions without any global lock.
func AggregatePool(now time.Duration, members []*StagerFlows) PoolSignals {
	ps := PoolSignals{Stagers: len(members)}
	for _, m := range members {
		q, c := m.Queue.Get()
		ps.Queued += q
		ps.Capacity += c
		ps.ForwardRate += m.Forwarded.Rate(now)
		ps.Spilled += m.Spilled.Total()
		ps.SpilledBytes += m.SpilledBytes.Total()
	}
	if ps.Capacity > 0 {
		ps.Occupancy = float64(ps.Queued) / float64(ps.Capacity)
	}
	return ps
}
