package flow

import (
	"math"
	"sync"
	"time"
)

// Route is the channel a Router elects for one drained batch.
type Route int

const (
	// Direct sends straight to the consumer endpoint over the low-latency
	// message path.
	Direct Route = iota
	// Relay sends through the assigned in-transit stager.
	Relay
)

// String names the route as the trace states do.
func (r Route) String() string {
	if r == Relay {
		return "relay"
	}
	return "send"
}

// CreditsUnknown and OccupancyUnknown mark Signals fields for which the
// platform offers no visibility (for example, window credit over TCP).
const (
	CreditsUnknown   = -1
	OccupancyUnknown = -1
)

// Signals is the live backpressure state visible at one routing decision.
// The producer's sender thread assembles it, with the producer lock held,
// immediately after draining a batch.
type Signals struct {
	// Now is the platform clock (virtual time under simenv).
	Now time.Duration
	// Backlog is the number of blocks still queued in the producer buffer
	// after the drain; Capacity and HighWater are the buffer's limits.
	Backlog   int
	Capacity  int
	HighWater int
	// Credits is the consumer receive window's remaining credit, or
	// CreditsUnknown without credit visibility.
	Credits int
	// StagerCredits is the stager endpoint's remaining receive-window
	// credit, or CreditsUnknown. A free slot means a relay send deposits
	// and returns immediately even while the stager's admission is
	// working through a backlog — the most direct "would a relay block?"
	// signal the platform offers.
	StagerCredits int
	// StagerQueued / StagerCapacity are the assigned stager's live buffer
	// occupancy, or OccupancyUnknown without an occupancy gauge.
	StagerQueued   int
	StagerCapacity int
	// Batch is the number of blocks in the batch being routed. The stager
	// admits a message only when all of its blocks fit, so Batch lets a
	// router predict an admission wait the bare occupancy hides.
	Batch int
}

// directBlocked reports whether a direct send would (likely) block: the
// window is out of credit, or — without credit visibility — the producer's
// own buffer depth says the consumer is not keeping up.
func (s Signals) directBlocked() bool {
	if s.Credits != CreditsUnknown {
		return s.Credits == 0
	}
	return s.Backlog >= s.HighWater
}

// stagerFull reports whether the stager's in-memory buffer is at capacity —
// the reactive policy's (deliberately batch-blind, legacy-exact) predicate.
func (s Signals) stagerFull() bool {
	return s.StagerQueued != OccupancyUnknown && s.StagerQueued >= s.StagerCapacity
}

// relayBlocked reports whether a relay send would (likely) block: with
// credit visibility, an exhausted stager window means the send waits for a
// slot; without it, a buffer too full to admit the whole batch predicts an
// admission wait (the stager admits a message only when every block fits).
func (s Signals) relayBlocked() bool {
	if s.StagerCredits != CreditsUnknown {
		return s.StagerCredits == 0
	}
	if s.StagerQueued == OccupancyUnknown {
		return false
	}
	need := s.Batch
	if need < 1 {
		need = 1
	}
	return s.StagerQueued+need > s.StagerCapacity
}

// Router elects a channel for each drained batch and absorbs the feedback
// the producer reports afterwards. Implementations must be safe for
// concurrent use: Route and ObserveSend run on the sender thread while
// ObserveStall runs on the application thread.
type Router interface {
	// Route picks the channel for the batch the sender just drained.
	Route(sig Signals) Route
	// ObserveSend reports a completed send: the channel it took, when it
	// finished, how long the Send call blocked plus transferred, and the
	// batch shape.
	ObserveSend(route Route, now, busy time.Duration, blocks int, bytes int64)
	// ObserveStall reports that the application's Write sat blocked on a
	// full producer buffer for `stall`, ending at now.
	ObserveStall(now, stall time.Duration)
}

// Static returns the fixed-choice router behind RouteDirect and
// RouteStaging: every batch takes the same channel regardless of load.
func Static(r Route) Router { return staticRouter(r) }

// StaticRoute reports whether r is a fixed-choice router and, if so, its
// constant election. Producers use it to skip backpressure-signal assembly
// (credit probes, occupancy gauge reads) on the hot path of the fixed
// policies.
func StaticRoute(r Router) (Route, bool) {
	if s, ok := r.(staticRouter); ok {
		return Route(s), true
	}
	return Direct, false
}

type staticRouter Route

func (s staticRouter) Route(Signals) Route                                       { return Route(s) }
func (staticRouter) ObserveSend(Route, time.Duration, time.Duration, int, int64) {}
func (staticRouter) ObserveStall(time.Duration, time.Duration)                   {}

// Reactive returns the hybrid policy: a stateless per-batch cascade over the
// instantaneous backpressure signals — direct while the consumer's receive
// window has credit, staging relay while the stager has buffer room, and
// otherwise the blocking direct path (during which the work-stealing writer
// drains the overflow through the file system).
func Reactive() Router { return reactiveRouter{} }

type reactiveRouter struct{}

func (reactiveRouter) Route(s Signals) Route {
	if s.Credits != CreditsUnknown {
		if s.Credits > 0 {
			return Direct
		}
		if s.stagerFull() {
			return Direct // stager saturated too: block here, the writer steals
		}
		return Relay
	}
	// No credit visibility (e.g. TCP across processes): infer consumer
	// backpressure from the producer's own buffer depth instead.
	if s.Backlog >= s.HighWater {
		return Relay
	}
	return Direct
}

func (reactiveRouter) ObserveSend(Route, time.Duration, time.Duration, int, int64) {}
func (reactiveRouter) ObserveStall(time.Duration, time.Duration)                   {}

// Tuning parameterizes the adaptive controller. The zero value selects the
// defaults noted on each field.
type Tuning struct {
	// Tau is the EWMA time constant of the controller's stall and
	// throughput gauges (default 20ms — virtual time under simenv).
	Tau time.Duration
	// Decay is the relaxation time constant of the staging share: while the
	// producer runs stall-free the share falls toward MinShare with this
	// half-life-ish constant, handing traffic back to the lower-latency
	// direct path (default 10×Tau).
	Decay time.Duration
	// MinShare and MaxShare clamp the staging share (defaults 0 and 1).
	MinShare, MaxShare float64
	// ProbeInterval is how often, in decisions, the controller probes the
	// minority channel while both channels are saturated, so a recovery on
	// the idle channel is noticed (default every 16th decision).
	ProbeInterval int
}

func (t Tuning) withDefaults() Tuning {
	if t.Tau <= 0 {
		t.Tau = 20 * time.Millisecond
	}
	if t.Decay <= 0 {
		t.Decay = 10 * t.Tau
	}
	if t.MaxShare <= 0 || t.MaxShare > 1 {
		t.MaxShare = 1
	}
	if t.MinShare < 0 {
		t.MinShare = 0
	}
	if t.MinShare > t.MaxShare {
		t.MinShare = t.MaxShare
	}
	if t.ProbeInterval <= 0 {
		t.ProbeInterval = 16
	}
	return t
}

// stallEps is the stall fraction below which the producer counts as healthy
// and the staging share is allowed to relax.
const stallEps = 0.01

// costAlpha is the per-sample weight of the channel cost EWMAs, and
// shareBeta the per-decision tracking speed of the staging share under
// pressure. Both are per-event (not per-second) constants, so the controller
// behaves identically at any timescale.
const (
	costAlpha = 0.2
	shareBeta = 0.2
)

// costEWMA is a sample-weighted average of a channel's delivery cost in
// ns/byte, fed by every completed send on that channel.
type costEWMA struct {
	v    float64
	seen bool
}

func (e *costEWMA) add(x float64) {
	if !e.seen {
		e.v, e.seen = x, true
		return
	}
	e.v += costAlpha * (x - e.v)
}

// Adaptive is the closed-loop controller behind RouteAdaptive. It watches
// three families of gauges — a producer-stall EWMA, per-channel congestion
// fractions (how often each channel's window was exhausted at decision
// time), and per-channel blocked-delivery costs — and continuously
// rebalances the direct/staging split with an AIMD law:
//
//   - climb: while the producer is stalling and the relay shows no more
//     congestion than the direct path, the staging share climbs (additive,
//     scaled by the stall fraction) — this is what a reactive policy cannot
//     do: window credit alone looks healthy at poll instants even while the
//     pipeline as a whole is backlogged, so the reactive policy never sheds
//     load and the producer eats the whole backlog as stall;
//   - back off: when the relay congests more than the direct path the share
//     falls multiplicatively harder than it climbs, so the split hovers at
//     the staging tier's actual service capacity instead of funneling;
//   - relax: while healthy the share decays toward MinShare with time
//     constant Decay, handing traffic back to the low-latency direct path;
//   - work conservation: a batch never blocks on its elected channel while
//     the other channel has a free window slot, and when both are exhausted
//     it waits on the one with the lower measured blocked-delivery cost,
//     probing the other every ProbeInterval-th saturated decision.
//
// All state is clocked by Signals.Now / the observation timestamps, so the
// controller is deterministic under simenv and shared unchanged by realenv.
type Adaptive struct {
	mu        sync.Mutex
	tun       Tuning
	share     float64 // current staging share in [MinShare, MaxShare]
	acc       float64 // deterministic weighted-interleave accumulator
	lastRelax time.Duration
	pressured int // pressured decisions, for the probing cadence

	stall Meter    // ns the producer's Write sat blocked
	dBlk  costEWMA // fraction of decisions that found the direct window exhausted
	rBlk  costEWMA // fraction of decisions that found the stager window exhausted
	dCost costEWMA // direct-channel blocked-delivery cost, ns/byte
	rCost costEWMA // relay-channel blocked-delivery cost, ns/byte
}

// NewAdaptive returns an adaptive router with the given tuning.
func NewAdaptive(t Tuning) *Adaptive {
	t = t.withDefaults()
	return &Adaptive{tun: t, stall: NewMeter(t.Tau)}
}

// costLocked reports a channel's measured blocked-delivery cost; an
// unmeasured channel reads as free so exploration is never blocked by
// ignorance.
func (a *Adaptive) costLocked(r Route) float64 {
	if r == Relay {
		if !a.rCost.seen {
			return 0
		}
		return a.rCost.v
	}
	if !a.dCost.seen {
		return 0
	}
	return a.dCost.v
}

// minActiveShare is the share below which healthy traffic runs purely
// direct (and the interleave accumulator resets). congestionMargin is how
// much more often the relay may block than the direct path before the
// controller counts it as the more congested channel.
const (
	minActiveShare   = 0.02
	congestionMargin = 0.05
)

func other(r Route) Route {
	if r == Relay {
		return Direct
	}
	return Relay
}

// Route implements Router.
func (a *Adaptive) Route(s Signals) Route {
	a.mu.Lock()
	defer a.mu.Unlock()
	blocked, relayBlk := s.directBlocked(), s.relayBlocked()
	a.dBlk.add(b2f(blocked))
	a.rBlk.add(b2f(relayBlk))
	stallFrac := a.stall.Frac(s.Now)
	pressure := blocked || stallFrac > stallEps
	if !pressure {
		// Healthy: the share relaxes toward MinShare and traffic follows
		// it home to the low-latency direct path.
		a.relaxLocked(s.Now)
		if a.share < minActiveShare {
			a.acc = 0
			return Direct
		}
		return a.interleaveLocked()
	}
	// The AIMD share update — the closed loop. Climb speed scales with how
	// badly the producer is stalling; back-off is a hard multiplicative cut
	// so an oversubscribed relay sheds load quickly.
	a.lastRelax = s.Now
	if a.rBlk.v > a.dBlk.v+congestionMargin {
		a.share = a.tun.MinShare + (a.share-a.tun.MinShare)*0.7
	} else {
		climb := 0.01 + 0.1*math.Min(1, stallFrac)
		a.share = math.Min(a.tun.MaxShare, a.share+climb)
	}
	a.pressured++
	probe := a.pressured%a.tun.ProbeInterval == 0
	switch {
	case blocked && !relayBlk:
		// Work conservation: never block on the direct window while the
		// stager can take the batch immediately.
		return Relay
	case relayBlk && !blocked:
		return Direct
	case blocked && relayBlk:
		// Both windows exhausted: wait on the channel with the lower
		// measured blocked-delivery cost, probing the other periodically
		// so a recovery there is noticed.
		relay := a.costLocked(Relay) <= a.costLocked(Direct)
		if probe {
			relay = !relay
		}
		if relay {
			return Relay
		}
		return Direct
	}
	// Both channels have a free slot: deal batches in the ratio of the
	// staging share; probes keep the minority channel's gauges fresh.
	if probe {
		if a.share >= 0.5 {
			return Direct
		}
		return Relay
	}
	return a.interleaveLocked()
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// interleaveLocked deals batches Direct/Relay in the ratio of the staging
// share, deterministically (an error accumulator, not a coin flip).
func (a *Adaptive) interleaveLocked() Route {
	a.acc += a.share
	if a.acc >= 1 {
		a.acc--
		return Relay
	}
	return Direct
}

// relaxLocked decays the staging share toward MinShare while the producer is
// healthy (no recent stall).
func (a *Adaptive) relaxLocked(now time.Duration) {
	if !(now > a.lastRelax) {
		return
	}
	dt := now - a.lastRelax
	a.lastRelax = now
	f := math.Exp(-dt.Seconds() / a.tun.Decay.Seconds())
	a.share = a.tun.MinShare + (a.share-a.tun.MinShare)*f
}

// ObserveSend implements Router: it feeds the per-channel cost gauges with
// the busy time (blocking included) per payload byte of every data send.
func (a *Adaptive) ObserveSend(route Route, now, busy time.Duration, blocks int, bytes int64) {
	if bytes <= 0 {
		return // Fins and ID-only sends carry no payload cost signal
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	c := float64(busy) / float64(bytes)
	if route == Relay {
		a.rCost.add(c)
	} else {
		a.dCost.add(c)
	}
}

// ObserveStall implements Router: it feeds the stall gauge whose EWMA keeps
// the controller in pressure-tracking mode.
func (a *Adaptive) ObserveStall(now, stall time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.stall.AddDur(now, stall)
}

// Share returns the controller's current staging share target.
func (a *Adaptive) Share() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.share
}

// StallFrac returns the stall gauge's EWMA fraction as of now.
func (a *Adaptive) StallFrac(now time.Duration) float64 {
	return a.stall.Frac(now)
}
