package flow

import "testing"

func TestReduceGateHysteresis(t *testing.T) {
	g := NewReduceGate(8)
	if g.Observe(7) {
		t.Fatal("engaged below high water")
	}
	if !g.Observe(8) {
		t.Fatal("did not engage at high water")
	}
	// Stays engaged while occupancy hovers between release and engage.
	for _, occ := range []int{7, 6, 5} {
		if !g.Observe(occ) {
			t.Fatalf("released early at occupancy %d", occ)
		}
	}
	if g.Observe(4) {
		t.Fatal("did not release at half high water")
	}
	if !g.Observe(9) {
		t.Fatal("did not re-engage")
	}
	if g.Engagements() != 2 {
		t.Fatalf("engagements = %d, want 2", g.Engagements())
	}
}

func TestReduceGateTinyBuffer(t *testing.T) {
	g := NewReduceGate(1)
	if !g.Observe(1) {
		t.Fatal("did not engage")
	}
	if g.Observe(0) {
		t.Fatal("did not release at empty")
	}
}
