package flow

import (
	"sync"
	"testing"
	"time"
)

func TestMeterTotalAndRate(t *testing.T) {
	m := NewMeter(100 * time.Millisecond)
	// 10 events per 10ms = 1000 events/s, sustained for 40 taus.
	for i := 1; i <= 400; i++ {
		m.Add(time.Duration(i)*10*time.Millisecond, 10)
	}
	if m.Total() != 4000 {
		t.Fatalf("total %d, want 4000", m.Total())
	}
	now := 400 * 10 * time.Millisecond
	if r := m.Rate(now); r < 900 || r > 1100 {
		t.Fatalf("steady-state rate %.1f, want ≈1000", r)
	}
	// After 5 time constants of silence the rate must have decayed hard.
	later := now + 500*time.Millisecond
	if r := m.Rate(later); r > 50 {
		t.Fatalf("rate %.1f after 5τ of silence, want ≈0", r)
	}
	if m.Rate(later) != m.Rate(later) || m.Total() != 4000 {
		t.Fatal("Rate must not mutate the meter")
	}
}

func TestMeterSameInstantEvents(t *testing.T) {
	var m Meter // zero value: DefaultTau
	for i := 0; i < 5; i++ {
		m.Add(time.Millisecond, 2) // several events in the same instant
	}
	m.Add(2*time.Millisecond, 2)
	if m.Total() != 12 {
		t.Fatalf("total %d, want 12", m.Total())
	}
	if m.Rate(2*time.Millisecond) <= 0 {
		t.Fatal("rate should be positive once time advances")
	}
}

func TestMeterDurationHelpers(t *testing.T) {
	m := NewMeter(50 * time.Millisecond)
	// Stalled 5ms out of every 10ms: a 50% stall fraction.
	for i := 1; i <= 100; i++ {
		m.AddDur(time.Duration(i)*10*time.Millisecond, 5*time.Millisecond)
	}
	if m.TotalDur() != 500*time.Millisecond {
		t.Fatalf("total %v, want 500ms", m.TotalDur())
	}
	if f := m.Frac(time.Second); f < 0.4 || f > 0.6 {
		t.Fatalf("stall fraction %.2f, want ≈0.5", f)
	}
}

func TestLevelTracksOccupancy(t *testing.T) {
	l := NewLevel(64, 100*time.Millisecond)
	l.Set(0, 10)
	l.Set(10*time.Millisecond, 40)
	l.Set(20*time.Millisecond, 20)
	if cur, cap := l.Get(); cur != 20 || cap != 64 {
		t.Fatalf("Get = (%d,%d), want (20,64)", cur, cap)
	}
	if l.Max() != 40 {
		t.Fatalf("Max %d, want 40", l.Max())
	}
	// Hold at 20 for a long time: the average must converge to 20.
	if avg := l.Avg(5 * time.Second); avg < 19 || avg > 21 {
		t.Fatalf("Avg %.1f, want ≈20", avg)
	}
}

func TestLevelZeroValue(t *testing.T) {
	var l Level
	l.SetCapacity(8)
	l.Set(time.Millisecond, 3)
	if cur, cap := l.Get(); cur != 3 || cap != 8 {
		t.Fatalf("Get = (%d,%d), want (3,8)", cur, cap)
	}
}

// TestGaugesConcurrent is the race test for the flow-control plane: meters
// and levels are updated by producer, stager, and application threads
// concurrently while routers read them, so every method must be safe without
// any outer lock. Run under -race (the CI fast lane does).
func TestGaugesConcurrent(t *testing.T) {
	var fl StagerFlows
	fl.Queue.SetCapacity(64)
	ad := NewAdaptive(Tuning{Tau: time.Millisecond})
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < 2000; i++ {
				now := time.Duration(g*2000+i) * time.Microsecond
				fl.In.Add(now, 1)
				fl.Queue.Set(now, i%64)
				fl.SpillBusy.AddDur(now, time.Microsecond)
				ad.ObserveStall(now, 10*time.Microsecond)
				ad.ObserveSend(Relay, now, time.Microsecond, 1, 1024)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < 2000; i++ {
				now := time.Duration(g*2000+i) * time.Microsecond
				_ = fl.In.Rate(now)
				_ = fl.In.Total()
				q, c := fl.Queue.Get()
				_ = fl.Queue.Avg(now)
				_ = fl.Queue.Max()
				_ = ad.Route(Signals{Now: now, Credits: i % 3, StagerQueued: q, StagerCapacity: c})
				_ = ad.Share()
				_ = ad.StallFrac(now)
			}
		}(g)
	}
	close(start)
	wg.Wait()
	if fl.In.Total() != 8000 {
		t.Fatalf("lost updates: total %d, want 8000", fl.In.Total())
	}
}
