package place_test

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"zipper/internal/flow"
	"zipper/internal/place"
	"zipper/internal/rt/realenv"
)

func TestRankAffinePick(t *testing.T) {
	v := place.View{Members: []int{2, 5, 9}}
	pol := place.RankAffine()
	for rank := 0; rank < 9; rank++ {
		addr, ok := pol.Pick(rank, v)
		if !ok || addr != v.Members[rank%3] {
			t.Fatalf("rank %d: got %d ok=%v, want %d", rank, addr, ok, v.Members[rank%3])
		}
	}
	if _, ok := pol.Pick(0, place.View{}); ok {
		t.Fatal("empty membership resolved")
	}
}

func TestLeastOccupancyPick(t *testing.T) {
	occ := map[int]int{2: 8, 5: 1, 9: 8}
	v := place.View{
		Members: []int{2, 5, 9},
		Load: func(addr int) (int, int, bool) {
			q, ok := occ[addr]
			return q, 10, ok
		},
	}
	pol := place.LeastOccupancy()
	for rank := 0; rank < 6; rank++ {
		if addr, _ := pol.Pick(rank, v); addr != 5 {
			t.Fatalf("rank %d landed on %d, want the emptiest endpoint 5", rank, addr)
		}
	}
	// All-equal occupancy must reproduce the rank-affine assignment, so an
	// idle pool never flaps between endpoints.
	for a := range occ {
		occ[a] = 3
	}
	for rank := 0; rank < 6; rank++ {
		if addr, _ := pol.Pick(rank, v); addr != v.Members[rank%3] {
			t.Fatalf("tied occupancy: rank %d landed on %d, want rank-affine %d",
				rank, addr, v.Members[rank%3])
		}
	}
	// No load probe at all degenerates to rank-affine.
	if addr, _ := pol.Pick(4, place.View{Members: []int{2, 5, 9}}); addr != 5 {
		t.Fatalf("nil load: rank 4 landed on %d, want rank-affine 5", addr)
	}
}

// TestHashRingMinimalDisruption pins the property the policy exists for:
// removing a member moves only the ranks it owned, and adding it back
// restores exactly the original assignment — elastic grow/drain churn never
// reshuffles the whole workload.
func TestHashRingMinimalDisruption(t *testing.T) {
	const ranks = 64
	pol := place.HashRing()
	full := place.View{Members: []int{10, 11, 12, 13}}
	before := make([]int, ranks)
	for r := range before {
		before[r], _ = pol.Pick(r, full)
	}
	// Drain member 12.
	drained := place.View{Members: []int{10, 11, 13}}
	moved := 0
	for r := 0; r < ranks; r++ {
		after, _ := pol.Pick(r, drained)
		if before[r] == 12 {
			moved++
			if after == 12 {
				t.Fatalf("rank %d still resolves to the drained member", r)
			}
		} else if after != before[r] {
			t.Fatalf("rank %d moved %d→%d although its member stayed live", r, before[r], after)
		}
	}
	if moved == 0 {
		t.Fatal("no rank was ever mapped to the drained member — the hash never spread")
	}
	// Regrow member 12: the original assignment returns exactly.
	for r := 0; r < ranks; r++ {
		if again, _ := pol.Pick(r, full); again != before[r] {
			t.Fatalf("regrow reshuffled rank %d: %d→%d", r, before[r], again)
		}
	}
}

func TestKindNamesAndValidation(t *testing.T) {
	cases := map[place.Kind]string{
		place.KindRankAffine:     "rank-affine",
		place.KindLeastOccupancy: "least-occupancy",
		place.KindHashRing:       "hash-ring",
	}
	for k, want := range cases {
		if !k.Valid() || k.String() != want || k.New().Name() != want {
			t.Fatalf("kind %d: valid=%v string=%q policy=%q, want %q",
				int(k), k.Valid(), k, k.New().Name(), want)
		}
	}
	if bad := place.Kind(42); bad.Valid() || bad.String() != "unknown(42)" {
		t.Fatalf("out-of-range kind: valid=%v string=%q", bad.Valid(), bad)
	}
	var zero place.Kind
	if zero != place.KindRankAffine {
		t.Fatal("the zero Kind must be rank-affine (the byte-identical default)")
	}
}

func TestDirectoryMembershipAndClaims(t *testing.T) {
	d := place.New(place.RankAffine(), nil)
	if _, ok := d.Peek(0); ok {
		t.Fatal("empty directory resolved")
	}
	d.Add(7)
	d.Add(3)
	d.Add(7) // duplicate: no-op
	if got := d.Members(); len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Fatalf("members = %v, want [3 7]", got)
	}
	if d.Epoch() != 2 || d.Size() != 2 {
		t.Fatalf("epoch %d size %d, want 2 2", d.Epoch(), d.Size())
	}
	addr, ok := d.Claim(1)
	if !ok || addr != 7 {
		t.Fatalf("Claim(1) = %d %v, want 7 true", addr, ok)
	}
	d.Remove(7)
	if a, _ := d.Peek(1); a != 3 {
		t.Fatalf("after Remove(7), Peek(1) = %d, want 3", a)
	}
	// Quiesce must wait out the in-flight claim and return once Done lands.
	env := realenv.New()
	done := make(chan struct{})
	go func() {
		d.Quiesce(env.Ctx(), 7)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Quiesce returned with a claim still in flight")
	case <-time.After(5 * time.Millisecond):
	}
	d.Done(7)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Quiesce never observed the released claim")
	}
}

func TestDirectoryDoneWithoutClaimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Done without a claim did not panic")
		}
	}()
	place.New(place.RankAffine(), nil).Done(3)
}

// TestDirectoryLeastOccupancyReadsLevels wires real flow.Level gauges in and
// checks the directory steers toward the emptiest endpoint as fills change.
func TestDirectoryLeastOccupancyReadsLevels(t *testing.T) {
	levels := map[int]*flow.Level{}
	for _, addr := range []int{4, 5} {
		lv := flow.NewLevel(10, 0)
		levels[addr] = &lv
	}
	d := place.New(place.LeastOccupancy(), func(addr int) *flow.Level { return levels[addr] })
	d.Add(4)
	d.Add(5)
	levels[4].Set(0, 9)
	levels[5].Set(0, 1)
	if a, _ := d.Peek(0); a != 5 {
		t.Fatalf("Peek(0) = %d, want the emptier 5", a)
	}
	levels[4].Set(time.Millisecond, 0)
	levels[5].Set(time.Millisecond, 9)
	if a, _ := d.Peek(1); a != 4 {
		t.Fatalf("after the fill flipped, Peek(1) = %d, want 4", a)
	}
}

// TestDirectoryConcurrentClaimChurn races two claimant threads (the
// multi-tenant control plane's shape: several tenants resolving endpoints
// through one directory) against a churn thread bumping the epoch with
// Add/Remove, under -race. The invariants: a Claim that resolved is always
// matched by exactly one Done (no panic, no leak), claims never resolve to
// an address outside the membership union, and after the churn settles a
// Remove+Quiesce drains to zero — proving the in-flight accounting balanced
// across every epoch bump.
func TestDirectoryConcurrentClaimChurn(t *testing.T) {
	d := place.New(place.RankAffine(), nil)
	d.Add(10)
	d.Add(11)
	env := realenv.New()
	ctx := env.Ctx()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for claimant := 0; claimant < 2; claimant++ {
		rank := claimant
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, ok := d.Peek(rank); !ok {
					continue
				}
				addr, ok := d.Claim(rank)
				if !ok {
					continue
				}
				if addr != 10 && addr != 11 && addr != 12 {
					t.Errorf("claim resolved to %d, not a member", addr)
				}
				runtime.Gosched() // hold the claim across other threads' epoch bumps
				d.Done(addr)
			}
		}()
	}
	// Churn: endpoint 12 joins and leaves repeatedly; each departure waits
	// out in-flight claims exactly like a real drain would.
	for i := 0; i < 200; i++ {
		d.Add(12)
		runtime.Gosched()
		d.Remove(12)
		d.Quiesce(ctx, 12)
	}
	close(stop)
	wg.Wait()
	if got := d.Epoch(); got != 2+400 {
		t.Fatalf("epoch %d after 2 adds + 200 churn cycles, want %d", got, 2+400)
	}
	// The surviving members drain cleanly: every claim was matched by a Done.
	for _, addr := range d.Members() {
		d.Remove(addr)
		d.Quiesce(ctx, addr)
	}
	if n := d.Size(); n != 0 {
		t.Fatalf("membership %d after full drain, want 0", n)
	}
}
