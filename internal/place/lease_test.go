package place

import (
	"testing"
	"time"
)

const ttl = 4 * time.Millisecond

// leasedDir is a 3-member directory with every member leased at t=0.
func leasedDir() *Directory {
	d := New(RankAffine(), nil)
	for _, addr := range []int{2, 3, 4} {
		d.Add(addr)
		d.Lease(addr, ttl, 0)
	}
	return d
}

// TestLeaseSweepEvictsExpired drives the failure-detector clock by hand: a
// member that stops beating turns Suspect past TTL/2 and is evicted past
// TTL — removed from membership with an epoch bump — while beating members
// stay Live.
func TestLeaseSweepEvictsExpired(t *testing.T) {
	d := leasedDir()
	epoch := d.Epoch()

	// All fresh: nothing expires, nobody suspect.
	if got := d.Sweep(ttl / 4); len(got) != 0 {
		t.Fatalf("fresh sweep evicted %v", got)
	}
	if h, _ := d.Health(3); h != Live {
		t.Fatalf("fresh member health = %v", h)
	}

	// 2 and 4 beat; 3 goes silent. Past TTL/2 it reads Suspect.
	d.Beat(2, ttl/2)
	d.Beat(4, ttl/2)
	if got := d.Sweep(ttl/2 + ttl/4); len(got) != 0 {
		t.Fatalf("suspect sweep evicted %v", got)
	}
	if h, _ := d.Health(3); h != Suspect {
		t.Fatalf("silent member health = %v, want Suspect", h)
	}
	if h, _ := d.Health(2); h != Live {
		t.Fatalf("beating member health = %v, want Live", h)
	}

	// Past TTL the silent member is evicted; the beaters survive.
	got := d.Sweep(ttl + ttl/2)
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("expiry sweep evicted %v, want [3]", got)
	}
	if members := d.Members(); len(members) != 2 || members[0] != 2 || members[1] != 4 {
		t.Fatalf("membership after eviction: %v", members)
	}
	if d.Epoch() == epoch {
		t.Fatal("eviction did not bump the epoch")
	}
	if h, _ := d.Health(3); h != Evicted {
		t.Fatalf("evicted health = %v", h)
	}
	if d.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", d.Evictions())
	}
}

// TestLeaseBeatRecoversSuspect pins that a late heartbeat clears Suspect
// before the lease expires.
func TestLeaseBeatRecoversSuspect(t *testing.T) {
	d := leasedDir()
	d.Sweep(ttl/2 + ttl/4) // everyone silent past TTL/2 → Suspect
	if h, _ := d.Health(2); h != Suspect {
		t.Fatalf("health = %v, want Suspect", h)
	}
	d.Beat(2, ttl/2+ttl/4)
	if h, _ := d.Health(2); h != Live {
		t.Fatalf("health after beat = %v, want Live", h)
	}
	// The beat also reset the expiry clock.
	if got := d.Sweep(ttl + ttl/4); len(got) != 2 {
		t.Fatalf("sweep evicted %v, want the two silent members", got)
	}
	if members := d.Members(); len(members) != 1 || members[0] != 2 {
		t.Fatalf("membership: %v, want [2]", members)
	}
}

// TestLeaseUnleaseIsNotACrash pins the planned-drain path: an Unleased
// address is invisible to every later sweep and records no eviction.
func TestLeaseUnleaseIsNotACrash(t *testing.T) {
	d := leasedDir()
	d.Remove(3) // planned drain removes first ...
	d.Unlease(3)
	if got := d.Sweep(10 * ttl); len(got) != 2 {
		t.Fatalf("sweep evicted %v, want the two leased members", got)
	}
	if h, ok := d.Health(3); ok && h == Evicted {
		t.Fatal("drained member reads Evicted")
	}
	if d.Evictions() != 2 {
		t.Fatalf("evictions = %d, want 2 (drained member not counted)", d.Evictions())
	}
}

// TestLeaseRecoveredSticky pins the respawn bookkeeping: MarkRecovered after
// a re-Lease reports Recovered, and stays Recovered across further beats
// and re-leases.
func TestLeaseRecoveredSticky(t *testing.T) {
	d := leasedDir()
	d.Sweep(2 * ttl) // evict everyone
	d.Add(3)
	d.Lease(3, ttl, 2*ttl)
	d.MarkRecovered(3)
	if h, _ := d.Health(3); h != Recovered {
		t.Fatalf("health = %v, want Recovered", h)
	}
	d.Beat(3, 2*ttl+ttl/4)
	if h, _ := d.Health(3); h != Recovered {
		t.Fatalf("health after beat = %v, want Recovered", h)
	}
	d.Lease(3, ttl, 3*ttl) // second respawn re-lease keeps the history
	if h, _ := d.Health(3); h != Recovered {
		t.Fatalf("health after re-lease = %v, want Recovered", h)
	}
}

// TestLeaseEvictIf pins the shutdown sweep: only addresses the oracle
// reports dead are evicted, regardless of TTL.
func TestLeaseEvictIf(t *testing.T) {
	d := leasedDir()
	got := d.EvictIf(func(addr int) bool { return addr == 4 })
	if len(got) != 1 || got[0] != 4 {
		t.Fatalf("EvictIf evicted %v, want [4]", got)
	}
	if members := d.Members(); len(members) != 2 {
		t.Fatalf("membership: %v", members)
	}
	if leased := d.Leased(); len(leased) != 2 || leased[0] != 2 || leased[1] != 3 {
		t.Fatalf("leased: %v, want [2 3]", leased)
	}
}
