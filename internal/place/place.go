// Package place is the Zipper runtime's placement plane: one pluggable
// directory for every endpoint assignment. The paper's zipping optimizations
// assume producers, stagers, and consumers are matched to each other's
// rates; when producer output rates diverge, a static rank-affine mod-map
// piles work onto a few relays while others idle. This package extracts the
// assignment decision — which stager a producer relays through, which
// consumer a batch is destined for — behind a Directory that resolves a rank
// against an epoch-versioned membership through a Policy:
//
//   - RankAffine reproduces the classic fixed split (member[rank mod size]),
//     byte-identical to the assignments earlier revisions hard-coded.
//   - LeastOccupancy routes each batch to the emptiest endpoint, read from
//     the flow.Level occupancy gauges every runtime module already
//     publishes — the SDN-style "least-loaded access point" rule.
//   - HashRing is consistent hashing across membership epochs: when the
//     elastic tier drains an endpoint only the ranks mapped to it move, and
//     when the endpoint regrows exactly those ranks return, so churn never
//     reshuffles the whole workload. (Implemented as rendezvous /
//     highest-random-weight hashing, which carries the same minimal-
//     disruption guarantee as a sorted ring without maintaining one.)
//
// The Directory also owns the in-flight claim accounting that makes elastic
// retirement race-free (it is the generalization of the former
// elastic.Pool): Claim atomically resolves an endpoint in the current
// membership AND registers the upcoming send as in flight there, so a
// drained member can be quiesced — every message bound for it deposited —
// before its Retire control message is sent.
package place

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"zipper/internal/flow"
	"zipper/internal/rt"
)

// View is the membership snapshot a Policy resolves against: the live
// endpoint addresses (ascending) plus the occupancy probe for load-aware
// policies. Load may be nil (no gauges published); ok=false from Load means
// the endpoint at addr publishes no gauge.
type View struct {
	Members []int
	Load    func(addr int) (queued, capacity int, ok bool)
}

// Policy is a pluggable assignment rule: it picks the member a rank
// resolves to in the given view. Pick must be deterministic in (rank, view)
// — the simulated platform replays decisions — and must return ok=false
// only when the membership is empty.
type Policy interface {
	// Name identifies the policy in reports and sweeps.
	Name() string
	// Pick resolves rank to one of v.Members.
	Pick(rank int, v View) (addr int, ok bool)
}

// rankAffine is the classic fixed split.
type rankAffine struct{}

// RankAffine returns the policy of earlier revisions: member[rank mod size]
// over the sorted live membership, so a fixed membership reproduces the
// hard-coded "producer p relays through stager p mod S" assignment exactly
// and every epoch bump re-shards deterministically.
func RankAffine() Policy { return rankAffine{} }

func (rankAffine) Name() string { return "rank-affine" }

func (rankAffine) Pick(rank int, v View) (int, bool) {
	if len(v.Members) == 0 {
		return 0, false
	}
	return v.Members[rank%len(v.Members)], true
}

// leastOccupancy picks the emptiest endpoint.
type leastOccupancy struct{}

// LeastOccupancy returns the load-aware policy: each resolution picks the
// member with the lowest buffer-occupancy fraction, read from the
// flow.Level gauges the directory was built over. The scan starts at the
// rank-affine position and moves only on strictly lower occupancy, so an
// idle pool (all gauges equal) reproduces the rank-affine assignment and
// ties never flap between endpoints. Members publishing no gauge count as
// empty; with no gauges at all the policy degenerates to RankAffine.
func LeastOccupancy() Policy { return leastOccupancy{} }

func (leastOccupancy) Name() string { return "least-occupancy" }

func (leastOccupancy) Pick(rank int, v View) (int, bool) {
	n := len(v.Members)
	if n == 0 {
		return 0, false
	}
	start := rank % n
	best := v.Members[start]
	if v.Load == nil {
		return best, true
	}
	bestFrac := occupancyFrac(v.Load, best)
	for i := 1; i < n; i++ {
		addr := v.Members[(start+i)%n]
		if f := occupancyFrac(v.Load, addr); f < bestFrac {
			best, bestFrac = addr, f
		}
	}
	return best, true
}

// occupancyFrac normalizes an endpoint's fill to [0,1]-ish so differently
// sized buffers compare fairly. Unknown gauges read as empty.
func occupancyFrac(load func(int) (int, int, bool), addr int) float64 {
	q, capacity, ok := load(addr)
	if !ok {
		return 0
	}
	if capacity < 1 {
		capacity = 1
	}
	return float64(q) / float64(capacity)
}

// hashRing is consistent hashing across epochs.
type hashRing struct{}

// HashRing returns the consistent-hashing policy: rank r resolves to the
// member with the highest hash score h(r, member). Removing a member moves
// only the ranks it owned (each falls to its second-highest score), and
// adding it back restores exactly the original assignment — the property
// that keeps elastic grow/drain churn from reshuffling every producer the
// way a mod-map does.
func HashRing() Policy { return hashRing{} }

func (hashRing) Name() string { return "hash-ring" }

func (hashRing) Pick(rank int, v View) (int, bool) {
	if len(v.Members) == 0 {
		return 0, false
	}
	// Members are ascending, so keeping only strictly greater scores also
	// breaks score ties toward the lowest address, deterministically.
	best, bestScore := v.Members[0], rendezvousScore(rank, v.Members[0])
	for _, addr := range v.Members[1:] {
		if s := rendezvousScore(rank, addr); s > bestScore {
			best, bestScore = addr, s
		}
	}
	return best, true
}

// rendezvousScore is FNV-1a over the (rank, member) pair.
func rendezvousScore(rank, addr int) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, v := range [2]uint64{uint64(int64(rank)), uint64(int64(addr))} {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime
		}
	}
	return h
}

// Kind names a built-in policy on configuration surfaces (zipper.Config,
// workflow.Spec). The zero value is KindRankAffine, which preserves the
// fixed assignments of earlier revisions byte-identically.
type Kind int

const (
	// KindRankAffine is the classic fixed split (the default).
	KindRankAffine Kind = iota
	// KindLeastOccupancy routes every batch to the emptiest endpoint.
	KindLeastOccupancy
	// KindHashRing is consistent hashing across membership epochs.
	KindHashRing
)

// Valid reports whether k names a built-in policy.
func (k Kind) Valid() bool {
	return k >= KindRankAffine && k <= KindHashRing
}

// String names the policy; out-of-range values render as "unknown(N)" so a
// misconfigured placement is visible instead of silently reading as the
// default.
func (k Kind) String() string {
	switch k {
	case KindRankAffine:
		return "rank-affine"
	case KindLeastOccupancy:
		return "least-occupancy"
	case KindHashRing:
		return "hash-ring"
	default:
		return fmt.Sprintf("unknown(%d)", int(k))
	}
}

// New builds the policy k names; out-of-range kinds fall back to
// RankAffine (Validate configurations before this point).
func (k Kind) New() Policy {
	switch k {
	case KindLeastOccupancy:
		return LeastOccupancy()
	case KindHashRing:
		return HashRing()
	default:
		return RankAffine()
	}
}

// Endpoints is the per-batch resolution surface a runtime module consults
// (core.Config.Directory). Peek is a read-only resolution for assembling
// routing signals; Claim atomically resolves the rank's endpoint in the
// current membership AND registers the send as in flight, which is what
// lets a pool quiesce an endpoint before retiring it — a claimed address
// stays receivable until the matching Done. Implementations must be safe
// for concurrent use from many sender threads; on the simulated platform
// they must not block (a quiescing drain is the only waiting side).
type Endpoints interface {
	// Peek returns the endpoint address rank currently resolves to, without
	// claiming it. ok=false means the membership is empty.
	Peek(rank int) (addr int, ok bool)
	// Claim resolves rank's endpoint in the live membership and counts the
	// upcoming send as in flight at that address. Every successful Claim
	// must be paired with Done once the send has deposited.
	Claim(rank int) (addr int, ok bool)
	// Done reports that the send claimed at addr has deposited.
	Done(addr int)
}

// Directory is the epoch-versioned endpoint directory: a live membership,
// a Policy that resolves ranks against it, and the in-flight claim
// accounting that makes retirement race-free. It serves both producer→
// stager resolution (where membership churns under the elastic scaler) and
// producer→consumer resolution (static membership, policy-driven
// reassignment only). It implements Endpoints.
//
// All methods are cheap, non-blocking critical sections guarded by a plain
// mutex, which is safe on both platforms: the simulator runs exactly one
// process at an instant, so the lock is never contended there and costs no
// virtual time; on the real machine it is an ordinary shared-state lock.
// Quiesce is the one waiting call and polls with rt sleeps instead of
// parking, so it composes with the simulator's scheduler.
type Directory struct {
	mu       sync.Mutex
	pol      Policy
	load     func(addr int) (queued, capacity int, ok bool)
	epoch    int64
	members  []int // live endpoint addresses, ascending
	inflight map[int]int

	// Liveness layer (lease.go): leases holds the current lease per
	// address, health the sticky post-eviction state, evictions the
	// lifetime eviction count. All nil/zero until the first Lease.
	leases    map[int]*lease
	health    map[int]Health
	evictions int64
}

// New returns an empty directory resolving through pol; the embedder Adds
// the initial membership. levelOf, when non-nil, exposes the occupancy
// gauge of the endpoint at an address (nil gauge = none published) — the
// signal LeastOccupancy steers on; policies that ignore load accept nil.
func New(pol Policy, levelOf func(addr int) *flow.Level) *Directory {
	d := &Directory{pol: pol, inflight: map[int]int{}}
	if levelOf != nil {
		d.load = func(addr int) (int, int, bool) {
			lv := levelOf(addr)
			if lv == nil {
				return 0, 0, false
			}
			q, c := lv.Get()
			return q, c, true
		}
	}
	return d
}

// Policy returns the directory's assignment policy.
func (d *Directory) Policy() Policy { return d.pol }

// Add admits the endpoint at addr to the membership and bumps the epoch.
// Adding a present member is a no-op.
func (d *Directory) Add(addr int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, m := range d.members {
		if m == addr {
			return
		}
	}
	d.members = append(d.members, addr)
	sort.Ints(d.members)
	d.epoch++
}

// Remove retires addr from the membership and bumps the epoch: no Claim
// resolves to it afterwards. In-flight claims are unaffected — Quiesce
// waits them out.
func (d *Directory) Remove(addr int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, m := range d.members {
		if m == addr {
			d.members = append(d.members[:i], d.members[i+1:]...)
			d.epoch++
			return
		}
	}
}

// resolveLocked runs the policy against the live view.
func (d *Directory) resolveLocked(rank int) (int, bool) {
	return d.pol.Pick(rank, View{Members: d.members, Load: d.load})
}

// Peek implements Endpoints: a claim-free resolution for signal assembly.
func (d *Directory) Peek(rank int) (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.resolveLocked(rank)
}

// Claim implements Endpoints: it resolves rank's endpoint in the current
// membership and registers the upcoming send as in flight there,
// atomically — an endpoint observed through Claim cannot receive its
// Retire before the matching Done.
func (d *Directory) Claim(rank int) (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	addr, ok := d.resolveLocked(rank)
	if !ok {
		return 0, false
	}
	d.inflight[addr]++
	return addr, true
}

// Done implements Endpoints: the claimed send has deposited.
func (d *Directory) Done(addr int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.inflight[addr] <= 0 {
		panic(fmt.Sprintf("place: Done(%d) without a claim", addr))
	}
	d.inflight[addr]--
}

// quiescePoll is Quiesce's polling period: long enough not to distort a
// simulated run, short enough that a drain is prompt on the real machine.
const quiescePoll = 200 * time.Microsecond

// Quiesce blocks until no claimed send is in flight toward addr. Call it
// after Remove(addr): new claims can no longer pick addr, so once the count
// reaches zero every message bound for the endpoint has been deposited and
// the Retire sent next is guaranteed to arrive last.
func (d *Directory) Quiesce(c rt.Ctx, addr int) {
	for {
		d.mu.Lock()
		n := d.inflight[addr]
		d.mu.Unlock()
		if n == 0 {
			return
		}
		c.Sleep(quiescePoll)
	}
}

// RetireAll drains the whole membership: each member is removed from the
// directory, its in-flight claims are quiesced, and `retire` is invoked to
// deliver its Retire control message — which the quiesce makes provably the
// last message the endpoint receives. Call it once no new traffic can
// appear (producers finished, or the caller otherwise quiesced admission);
// it is the shutdown sweep shared by every embedder of a managed tier.
func (d *Directory) RetireAll(c rt.Ctx, retire func(addr int)) {
	for _, addr := range d.Members() {
		d.Remove(addr)
		d.Quiesce(c, addr)
		retire(addr)
	}
}

// Epoch returns the membership version; every Add and Remove bumps it.
func (d *Directory) Epoch() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.epoch
}

// Size returns the live membership count.
func (d *Directory) Size() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.members)
}

// Members returns a copy of the live membership, ascending.
func (d *Directory) Members() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]int(nil), d.members...)
}
