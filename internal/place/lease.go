package place

import (
	"sort"
	"time"
)

// The liveness layer: directory membership stops being an immortality
// assumption and becomes a lease. A managed endpoint holds a lease renewed
// by heartbeats; the failure detector (fault.Monitor) periodically Sweeps
// the lease table and evicts members whose lease lapsed — Remove from the
// membership (a new epoch, so every subsequent Claim re-resolves through
// the policy), mark the address Evicted, and hand it to the recovery path.
// Lease state is deliberately decoupled from membership: a planned drain
// Removes the member first and releases the lease only when the endpoint's
// last thread exits (Unlease), so a healthy drain never reads as a crash,
// while a crashed endpoint stops heartbeating, never Unleases, and is
// caught by TTL expiry exactly like a fleet-registry member.
//
// All times are rt.Ctx virtual time, so the simulated and real platforms
// share one deterministic failure detector.

// Health is the liveness state of a leased endpoint address.
type Health int

const (
	// Live means the lease is current: a heartbeat arrived within TTL/2.
	Live Health = iota
	// Suspect means the lease is stale but not expired: more than TTL/2
	// has passed since the last heartbeat.
	Suspect
	// Evicted means the lease expired and the member was swept from the
	// membership; its in-flight work is owed to the recovery path.
	Evicted
	// Recovered means a replacement endpoint was respawned into the
	// address after an eviction; the state is sticky so stats keep
	// showing that the slot failed over.
	Recovered
)

// String names the health state for stats and traces.
func (h Health) String() string {
	switch h {
	case Live:
		return "live"
	case Suspect:
		return "suspect"
	case Evicted:
		return "evicted"
	case Recovered:
		return "recovered"
	default:
		return "unknown"
	}
}

// lease is one address's liveness record.
type lease struct {
	ttl    time.Duration
	beat   time.Duration // virtual time of the last heartbeat (or grant)
	health Health
}

// Lease grants (or re-grants) the endpoint at addr a liveness lease with
// the given TTL, dated now. Call it when the endpoint is spawned; its
// heartbeats then renew via Beat. Re-leasing an address after an eviction
// clears Evicted (the respawn path additionally marks it Recovered).
func (d *Directory) Lease(addr int, ttl, now time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.leases == nil {
		d.leases = map[int]*lease{}
	}
	h := Live
	if prev, ok := d.leases[addr]; ok && prev.health == Recovered {
		h = Recovered
	}
	d.leases[addr] = &lease{ttl: ttl, beat: now, health: h}
}

// Beat renews addr's lease as of now. A Suspect member beats back to Live;
// Recovered is sticky. Beating an unleased (or already evicted) address is
// a no-op — the heartbeat lost the race against the sweep.
func (d *Directory) Beat(addr int, now time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	l, ok := d.leases[addr]
	if !ok {
		return
	}
	l.beat = now
	if l.health == Suspect {
		l.health = Live
	}
}

// Unlease releases addr's lease without eviction — the planned-drain exit.
// The endpoint's last exiting thread calls it, so by the time a drain's
// Retire handshake completes the failure detector can no longer mistake
// the silence for a crash.
func (d *Directory) Unlease(addr int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.leases, addr)
}

// Sweep is the failure detector's clock tick: every leased address whose
// lease has expired as of now is evicted — removed from the membership
// (bumping the epoch so claims re-resolve), marked Evicted, counted, and
// its lease dropped. Addresses past TTL/2 but not yet expired are marked
// Suspect. The expired addresses are returned in ascending order for the
// recovery path to process deterministically.
func (d *Directory) Sweep(now time.Duration) []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	var expired []int
	for addr, l := range d.leases {
		age := now - l.beat
		switch {
		case age > l.ttl:
			expired = append(expired, addr)
		case age > l.ttl/2 && l.health == Live:
			l.health = Suspect
		}
	}
	sort.Ints(expired)
	for _, addr := range expired {
		d.evictLocked(addr)
	}
	return expired
}

// EvictIf force-expires the leases `dead` reports as crashed, regardless of
// TTL: the shutdown sweep. At end of run a kill whose TTL has not lapsed
// yet must still be recovered before consumers can balance their counted
// Fins, while healthy members that are merely about to drain must not be
// disturbed — so the caller supplies the liveness oracle. Evicted addresses
// return ascending.
func (d *Directory) EvictIf(dead func(addr int) bool) []int {
	d.mu.Lock()
	var doomed []int
	for addr := range d.leases {
		doomed = append(doomed, addr)
	}
	d.mu.Unlock()
	sort.Ints(doomed)
	var evicted []int
	for _, addr := range doomed {
		if !dead(addr) {
			continue
		}
		d.mu.Lock()
		if _, ok := d.leases[addr]; ok {
			d.evictLocked(addr)
			evicted = append(evicted, addr)
		}
		d.mu.Unlock()
	}
	return evicted
}

// evictLocked removes addr from membership (if present), records the
// eviction, and drops the lease.
func (d *Directory) evictLocked(addr int) {
	for i, m := range d.members {
		if m == addr {
			d.members = append(d.members[:i], d.members[i+1:]...)
			d.epoch++
			break
		}
	}
	d.evictions++
	delete(d.leases, addr)
	if d.health == nil {
		d.health = map[int]Health{}
	}
	d.health[addr] = Evicted
}

// MarkRecovered records that a replacement endpoint now occupies addr;
// Health reports Recovered (sticky) from here on. Call it after the
// respawned endpoint has been re-Leased.
func (d *Directory) MarkRecovered(addr int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.health == nil {
		d.health = map[int]Health{}
	}
	d.health[addr] = Recovered
	if l, ok := d.leases[addr]; ok {
		l.health = Recovered
	}
}

// Health reports the liveness state of addr: the lease state while one is
// held, else the sticky post-eviction state (Evicted, or Recovered once a
// replacement was spawned). ok=false means the address was never leased.
func (d *Directory) Health(addr int) (Health, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if l, ok := d.leases[addr]; ok {
		return l.health, true
	}
	if h, ok := d.health[addr]; ok {
		return h, true
	}
	return Live, false
}

// Evictions returns the lifetime count of lease evictions.
func (d *Directory) Evictions() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.evictions
}

// Leased returns a copy of the currently leased addresses, ascending.
func (d *Directory) Leased() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []int
	for addr := range d.leases {
		out = append(out, addr)
	}
	sort.Ints(out)
	return out
}
