// Package synthetic provides the three data-producing kernels the paper uses
// to stress the workflow runtime at controlled computational intensities
// (Table 3): T(n)=O(n) linear algorithms, T(n)=O(n log n)
// divide-and-conquer, and T(n)=O(n^{3/2}) matrix-style computations. Each
// kernel really computes over its buffer so the real-mode examples burn
// genuine CPU with the paper's asymptotic profile.
package synthetic

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Complexity identifies a kernel.
type Complexity int

const (
	// Linear is the T(n)=O(n) kernel.
	Linear Complexity = iota
	// NLogN is the T(n)=O(n log n) kernel.
	NLogN
	// N32 is the T(n)=O(n^{3/2}) kernel.
	N32
)

// String returns the paper's notation for the complexity class.
func (c Complexity) String() string {
	switch c {
	case Linear:
		return "O(n)"
	case NLogN:
		return "O(nlogn)"
	case N32:
		return "O(n^3/2)"
	}
	return fmt.Sprintf("Complexity(%d)", int(c))
}

// Ops returns the abstract operation count for producing n elements, used by
// the simulation cost models to scale kernel time with block size.
func (c Complexity) Ops(n int) float64 {
	fn := float64(n)
	switch c {
	case Linear:
		return fn
	case NLogN:
		if n < 2 {
			return fn
		}
		return fn * math.Log2(fn)
	case N32:
		return fn * math.Sqrt(fn)
	}
	panic("synthetic: unknown complexity")
}

// Generator produces successive data blocks of a fixed element count with
// the configured computational complexity.
type Generator struct {
	c    Complexity
	n    int
	rng  *rand.Rand
	work []float64
}

// NewGenerator returns a generator of n-element blocks.
func NewGenerator(c Complexity, n int, seed int64) *Generator {
	if n <= 0 {
		panic("synthetic: block element count must be positive")
	}
	return &Generator{c: c, n: n, rng: rand.New(rand.NewSource(seed)), work: make([]float64, n)}
}

// Next computes one block. The returned slice is freshly allocated.
func (g *Generator) Next() []float64 {
	for i := range g.work {
		g.work[i] = g.rng.Float64()
	}
	switch g.c {
	case Linear:
		acc := 0.0
		for i := range g.work {
			acc = acc*0.5 + g.work[i]
			g.work[i] += acc * 1e-9
		}
	case NLogN:
		sort.Float64s(g.work)
	case N32:
		// Interpret the buffer as an m×m matrix (m=√n) and do one
		// matrix-matrix style pass: n^{3/2} multiply-adds.
		m := int(math.Sqrt(float64(g.n)))
		if m < 1 {
			m = 1
		}
		a := g.work[:m*m]
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				var s float64
				for k := 0; k < m; k++ {
					s += a[i*m+k] * a[k*m+j]
				}
				a[i*m+j] = math.Mod(s, 1)
			}
		}
	}
	out := make([]float64, g.n)
	copy(out, g.work)
	return out
}
