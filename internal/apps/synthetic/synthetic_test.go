package synthetic

import (
	"testing"
)

func TestComplexityString(t *testing.T) {
	cases := map[Complexity]string{Linear: "O(n)", NLogN: "O(nlogn)", N32: "O(n^3/2)"}
	for c, want := range cases {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), want)
		}
	}
}

func TestOpsOrdering(t *testing.T) {
	const n = 1 << 16
	lin, nlog, n32 := Linear.Ops(n), NLogN.Ops(n), N32.Ops(n)
	if !(lin < nlog && nlog < n32) {
		t.Fatalf("ops not ordered: %v %v %v", lin, nlog, n32)
	}
	// Asymptotic ratios: doubling n should grow O(n^{3/2}) by ~2.83.
	r := N32.Ops(2*n) / N32.Ops(n)
	if r < 2.7 || r > 2.95 {
		t.Fatalf("O(n^3/2) scaling ratio = %v, want ≈2.83", r)
	}
}

func TestGeneratorProducesBlocks(t *testing.T) {
	for _, c := range []Complexity{Linear, NLogN, N32} {
		g := NewGenerator(c, 1024, 7)
		b1, b2 := g.Next(), g.Next()
		if len(b1) != 1024 || len(b2) != 1024 {
			t.Fatalf("%v: block sizes %d, %d", c, len(b1), len(b2))
		}
		same := true
		for i := range b1 {
			if b1[i] != b2[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%v: successive blocks identical", c)
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a := NewGenerator(NLogN, 512, 42).Next()
	b := NewGenerator(NLogN, 512, 42).Next()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different blocks")
		}
	}
}

func TestNLogNBlockSorted(t *testing.T) {
	b := NewGenerator(NLogN, 4096, 3).Next()
	for i := 1; i < len(b); i++ {
		if b[i] < b[i-1] {
			t.Fatal("O(n log n) kernel output not sorted")
		}
	}
}

func BenchmarkLinear64K(b *testing.B) {
	g := NewGenerator(Linear, 64<<10/8, 1)
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

func BenchmarkNLogN64K(b *testing.B) {
	g := NewGenerator(NLogN, 64<<10/8, 1)
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

func BenchmarkN32_64K(b *testing.B) {
	g := NewGenerator(N32, 64<<10/8, 1)
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}
