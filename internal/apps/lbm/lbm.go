// Package lbm implements a D3Q19 lattice-Boltzmann method for 3-D channel
// flow, the CFD simulation the paper couples with turbulence analysis
// (§3, §6.3.1). Each time step runs the three kernels the paper's traces
// show: collision (CL), streaming (ST), and update (UD).
//
// The flow is a body-force-driven channel: periodic in x and z, half-way
// bounce-back walls at the y boundaries. Quantities are in lattice units.
package lbm

import (
	"fmt"
	"math"
)

// q is the number of discrete velocities in D3Q19.
const q = 19

// D3Q19 velocity set: rest, 6 faces, 12 edges.
var (
	ex = [q]int{0, 1, -1, 0, 0, 0, 0, 1, -1, 1, -1, 1, -1, 1, -1, 0, 0, 0, 0}
	ey = [q]int{0, 0, 0, 1, -1, 0, 0, 1, -1, -1, 1, 0, 0, 0, 0, 1, -1, 1, -1}
	ez = [q]int{0, 0, 0, 0, 0, 1, -1, 0, 0, 0, 0, 1, -1, -1, 1, 1, -1, -1, 1}
	wt = [q]float64{
		1.0 / 3,
		1.0 / 18, 1.0 / 18, 1.0 / 18, 1.0 / 18, 1.0 / 18, 1.0 / 18,
		1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36,
		1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36,
	}
	// opposite[i] is the direction opposite to i, for bounce-back.
	opposite = [q]int{0, 2, 1, 4, 3, 6, 5, 8, 7, 10, 9, 12, 11, 14, 13, 16, 15, 18, 17}
)

// Params configures a simulation.
type Params struct {
	NX, NY, NZ int     // grid size; NY is the wall-normal direction
	Tau        float64 // BGK relaxation time (> 0.5 for stability)
	Force      float64 // body force density along +x driving the channel
}

// Sim is one process's lattice block.
type Sim struct {
	p     Params
	n     int
	f     []float64 // distributions, f[dir*n + cell]
	ftmp  []float64
	rho   []float64
	ux    []float64
	uy    []float64
	uz    []float64
	steps int
}

// New builds a simulation initialized to uniform unit density at rest.
func New(p Params) (*Sim, error) {
	if p.NX < 2 || p.NY < 4 || p.NZ < 2 {
		return nil, fmt.Errorf("lbm: grid %dx%dx%d too small (need ≥2x4x2)", p.NX, p.NY, p.NZ)
	}
	if p.Tau <= 0.5 {
		return nil, fmt.Errorf("lbm: tau %v must exceed 0.5", p.Tau)
	}
	n := p.NX * p.NY * p.NZ
	s := &Sim{
		p: p, n: n,
		f:    make([]float64, q*n),
		ftmp: make([]float64, q*n),
		rho:  make([]float64, n),
		ux:   make([]float64, n),
		uy:   make([]float64, n),
		uz:   make([]float64, n),
	}
	for c := 0; c < n; c++ {
		s.rho[c] = 1
		for i := 0; i < q; i++ {
			s.f[i*n+c] = wt[i]
		}
	}
	return s, nil
}

// Params returns the simulation parameters.
func (s *Sim) Params() Params { return s.p }

// Steps reports how many time steps have run.
func (s *Sim) Steps() int { return s.steps }

// Cells reports the number of lattice cells.
func (s *Sim) Cells() int { return s.n }

func (s *Sim) idx(x, y, z int) int { return (z*s.p.NY+y)*s.p.NX + x }

// Step advances the simulation one time step: collision, streaming, update.
func (s *Sim) Step() {
	s.Collision()
	s.Streaming()
	s.Update()
	s.steps++
}

// Collision applies the BGK operator with a Guo-style forcing shift: the
// equilibrium velocity is offset by tau·F/rho so a constant body force
// drives the flow.
func (s *Sim) Collision() {
	n := s.n
	invTau := 1 / s.p.Tau
	for c := 0; c < n; c++ {
		rho := s.rho[c]
		ux := s.ux[c] + s.p.Tau*s.p.Force/rho
		uy := s.uy[c]
		uz := s.uz[c]
		usq := ux*ux + uy*uy + uz*uz
		for i := 0; i < q; i++ {
			eu := float64(ex[i])*ux + float64(ey[i])*uy + float64(ez[i])*uz
			feq := wt[i] * rho * (1 + 3*eu + 4.5*eu*eu - 1.5*usq)
			s.f[i*n+c] -= invTau * (s.f[i*n+c] - feq)
		}
	}
}

// Streaming propagates distributions to neighbor cells, with periodic wrap
// in x and z and half-way bounce-back at the y walls. In the distributed
// workflow this is the phase that performs the halo MPI_Sendrecv exchanges.
func (s *Sim) Streaming() {
	nx, ny, nz, n := s.p.NX, s.p.NY, s.p.NZ, s.n
	for i := 0; i < q; i++ {
		fi := s.f[i*n : (i+1)*n]
		for z := 0; z < nz; z++ {
			for y := 0; y < ny; y++ {
				for x := 0; x < nx; x++ {
					src := (z*ny+y)*nx + x
					yy := y + ey[i]
					if yy < 0 || yy >= ny {
						// Bounce back off the wall into the opposite
						// direction at the same cell.
						s.ftmp[opposite[i]*n+src] = fi[src]
						continue
					}
					xx := (x + ex[i] + nx) % nx
					zz := (z + ez[i] + nz) % nz
					s.ftmp[i*n+(zz*ny+yy)*nx+xx] = fi[src]
				}
			}
		}
	}
	s.f, s.ftmp = s.ftmp, s.f
}

// Update recomputes the macroscopic density and velocity fields.
func (s *Sim) Update() {
	n := s.n
	for c := 0; c < n; c++ {
		var rho, jx, jy, jz float64
		for i := 0; i < q; i++ {
			fi := s.f[i*n+c]
			rho += fi
			jx += fi * float64(ex[i])
			jy += fi * float64(ey[i])
			jz += fi * float64(ez[i])
		}
		s.rho[c] = rho
		s.ux[c] = jx / rho
		s.uy[c] = jy / rho
		s.uz[c] = jz / rho
	}
}

// Mass returns the total lattice mass (conserved by collision+streaming).
func (s *Sim) Mass() float64 {
	var m float64
	for _, r := range s.rho {
		m += r
	}
	return m
}

// Velocity returns the velocity vector at a cell.
func (s *Sim) Velocity(x, y, z int) (float64, float64, float64) {
	c := s.idx(x, y, z)
	return s.ux[c], s.uy[c], s.uz[c]
}

// Density returns the density at a cell.
func (s *Sim) Density(x, y, z int) float64 { return s.rho[s.idx(x, y, z)] }

// VelocityField returns a copy of the streamwise (x) velocity of every cell —
// the field the n-th moment turbulence analysis consumes.
func (s *Sim) VelocityField() []float64 {
	out := make([]float64, s.n)
	copy(out, s.ux)
	return out
}

// SpeedField returns the velocity magnitude of every cell.
func (s *Sim) SpeedField() []float64 {
	out := make([]float64, s.n)
	for c := range out {
		out[c] = math.Sqrt(s.ux[c]*s.ux[c] + s.uy[c]*s.uy[c] + s.uz[c]*s.uz[c])
	}
	return out
}

// Profile returns the streamwise velocity averaged over x,z for each y — the
// channel profile, parabolic for laminar Poiseuille flow.
func (s *Sim) Profile() []float64 {
	nx, ny, nz := s.p.NX, s.p.NY, s.p.NZ
	out := make([]float64, ny)
	for y := 0; y < ny; y++ {
		var sum float64
		for z := 0; z < nz; z++ {
			for x := 0; x < nx; x++ {
				sum += s.ux[s.idx(x, y, z)]
			}
		}
		out[y] = sum / float64(nx*nz)
	}
	return out
}
