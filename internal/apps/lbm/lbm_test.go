package lbm

import (
	"math"
	"testing"
)

func mustNew(t testing.TB, p Params) *Sim {
	t.Helper()
	s, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRejectsBadParams(t *testing.T) {
	if _, err := New(Params{NX: 1, NY: 4, NZ: 4, Tau: 0.8}); err == nil {
		t.Error("tiny grid accepted")
	}
	if _, err := New(Params{NX: 4, NY: 4, NZ: 4, Tau: 0.5}); err == nil {
		t.Error("tau=0.5 accepted")
	}
}

func TestMassConservation(t *testing.T) {
	s := mustNew(t, Params{NX: 8, NY: 8, NZ: 8, Tau: 0.8, Force: 1e-5})
	m0 := s.Mass()
	for i := 0; i < 50; i++ {
		s.Step()
	}
	if rel := math.Abs(s.Mass()-m0) / m0; rel > 1e-10 {
		t.Fatalf("mass drifted by %.3e after 50 steps", rel)
	}
	if s.Steps() != 50 {
		t.Fatalf("Steps = %d", s.Steps())
	}
}

func TestRestStateStaysAtRest(t *testing.T) {
	s := mustNew(t, Params{NX: 6, NY: 6, NZ: 6, Tau: 0.9})
	for i := 0; i < 10; i++ {
		s.Step()
	}
	for _, v := range s.VelocityField() {
		if math.Abs(v) > 1e-14 {
			t.Fatalf("rest state developed velocity %v", v)
		}
	}
}

func TestChannelFlowDevelopsPoiseuilleShape(t *testing.T) {
	s := mustNew(t, Params{NX: 4, NY: 16, NZ: 4, Tau: 0.9, Force: 1e-5})
	for i := 0; i < 400; i++ {
		s.Step()
	}
	prof := s.Profile()
	mid := prof[len(prof)/2]
	if mid <= 0 {
		t.Fatalf("no flow developed: mid velocity %v", mid)
	}
	// Walls slower than center.
	if prof[0] >= mid || prof[len(prof)-1] >= mid {
		t.Fatalf("profile not channel-like: %v", prof)
	}
	// Symmetry about the mid-plane (within numerical tolerance).
	for y := 0; y < len(prof)/2; y++ {
		a, b := prof[y], prof[len(prof)-1-y]
		if math.Abs(a-b) > 1e-9*math.Max(1, math.Abs(mid)) {
			t.Fatalf("asymmetric profile at y=%d: %v vs %v", y, a, b)
		}
	}
	// Monotone increase from wall to center (the two central rows of an
	// even-sized grid share the maximum, so stop before the midpoint pair).
	for y := 1; y < len(prof)/2; y++ {
		if prof[y] < prof[y-1] {
			t.Fatalf("profile not monotone toward center: %v", prof)
		}
	}
}

func TestStability(t *testing.T) {
	s := mustNew(t, Params{NX: 8, NY: 8, NZ: 8, Tau: 0.6, Force: 5e-6})
	for i := 0; i < 200; i++ {
		s.Step()
	}
	for _, v := range s.SpeedField() {
		if math.IsNaN(v) || math.IsInf(v, 0) || v > 0.3 {
			t.Fatalf("unstable: speed %v", v)
		}
	}
}

func TestVelocityFieldIsCopy(t *testing.T) {
	s := mustNew(t, Params{NX: 4, NY: 4, NZ: 4, Tau: 0.8, Force: 1e-5})
	s.Step()
	v := s.VelocityField()
	v[0] = 999
	if got := s.VelocityField()[0]; got == 999 {
		t.Fatal("VelocityField aliases internal state")
	}
}

func TestDensityPositive(t *testing.T) {
	s := mustNew(t, Params{NX: 8, NY: 8, NZ: 8, Tau: 0.7, Force: 1e-5})
	for i := 0; i < 100; i++ {
		s.Step()
	}
	for z := 0; z < 8; z++ {
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				if d := s.Density(x, y, z); d <= 0 || math.IsNaN(d) {
					t.Fatalf("bad density %v at %d,%d,%d", d, x, y, z)
				}
			}
		}
	}
}

func BenchmarkStep16(b *testing.B) {
	s := mustNew(b, Params{NX: 16, NY: 16, NZ: 16, Tau: 0.8, Force: 1e-5})
	b.SetBytes(int64(s.Cells() * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}
