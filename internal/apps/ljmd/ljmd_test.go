package ljmd

import (
	"math"
	"testing"
)

func meltParams() Params {
	return Params{Cells: 3, Density: 0.8442, T0: 1.44, Dt: 0.005, RCut: 2.5, Seed: 1}
}

func mustNew(t testing.TB, p Params) *Sim {
	t.Helper()
	s, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRejectsBadParams(t *testing.T) {
	for _, p := range []Params{
		{Cells: 1, Density: 0.8, T0: 1, Dt: 0.005, RCut: 2.5},
		{Cells: 4, Density: -1, T0: 1, Dt: 0.005, RCut: 2.5},
		{Cells: 2, Density: 0.05, T0: 1, Dt: 0.005, RCut: 20}, // box < 2·rcut
	} {
		if _, err := New(p); err == nil {
			t.Errorf("params %+v accepted", p)
		}
	}
}

func TestInitialization(t *testing.T) {
	s := mustNew(t, meltParams())
	if s.N() != 4*3*3*3 {
		t.Fatalf("N = %d, want 108", s.N())
	}
	if temp := s.Temperature(); math.Abs(temp-1.44) > 1e-9 {
		t.Fatalf("T0 = %v, want 1.44", temp)
	}
	px, py, pz := s.Momentum()
	if math.Abs(px)+math.Abs(py)+math.Abs(pz) > 1e-9 {
		t.Fatalf("net momentum (%v,%v,%v), want 0", px, py, pz)
	}
}

func TestMomentumConservation(t *testing.T) {
	s := mustNew(t, meltParams())
	for i := 0; i < 100; i++ {
		s.Step()
	}
	px, py, pz := s.Momentum()
	if math.Abs(px)+math.Abs(py)+math.Abs(pz) > 1e-7 {
		t.Fatalf("momentum drifted to (%v,%v,%v)", px, py, pz)
	}
}

func TestEnergyConservationNVE(t *testing.T) {
	p := meltParams()
	p.Dt = 0.002 // small step for tight conservation
	s := mustNew(t, p)
	// Let initial lattice artifacts relax before measuring.
	for i := 0; i < 50; i++ {
		s.Step()
	}
	e0 := s.TotalEnergy()
	for i := 0; i < 300; i++ {
		s.Step()
	}
	drift := math.Abs(s.TotalEnergy()-e0) / math.Abs(e0)
	if drift > 5e-3 {
		t.Fatalf("energy drift %.2e over 300 steps", drift)
	}
}

func TestMeltIncreasesDisplacement(t *testing.T) {
	s := mustNew(t, meltParams())
	ref := s.Positions()
	for i := 0; i < 500; i++ {
		s.Step()
	}
	cur := s.Positions()
	var msd float64
	for i := range cur {
		d := cur[i] - ref[i]
		msd += d * d
	}
	msd /= float64(s.N())
	if msd < 0.05 {
		t.Fatalf("MSD after melt start = %v, want noticeable motion", msd)
	}
	if math.IsNaN(msd) || math.IsInf(msd, 0) {
		t.Fatalf("MSD = %v", msd)
	}
}

func TestRescale(t *testing.T) {
	s := mustNew(t, meltParams())
	s.Rescale(3)
	if temp := s.Temperature(); math.Abs(temp-3) > 1e-9 {
		t.Fatalf("after rescale T = %v, want 3", temp)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	run := func() float64 {
		s := mustNew(t, meltParams())
		for i := 0; i < 20; i++ {
			s.Step()
		}
		return s.TotalEnergy()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
}

func TestPositionsAreCopy(t *testing.T) {
	s := mustNew(t, meltParams())
	p := s.Positions()
	p[0] = 1e9
	if s.Positions()[0] == 1e9 {
		t.Fatal("Positions aliases internal state")
	}
}

func TestSolidColderThanMelt(t *testing.T) {
	// At very low T the lattice stays ordered: MSD stays small.
	p := meltParams()
	p.T0 = 0.01
	s := mustNew(t, p)
	ref := s.Positions()
	for i := 0; i < 100; i++ {
		s.Step()
	}
	cur := s.Positions()
	var msd float64
	for i := range cur {
		d := cur[i] - ref[i]
		msd += d * d
	}
	msd /= float64(s.N())
	if msd > 0.1 {
		t.Fatalf("cold solid diffused too much: MSD=%v", msd)
	}
}

func BenchmarkStep(b *testing.B) {
	s := mustNew(b, meltParams())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}
