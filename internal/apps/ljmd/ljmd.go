// Package ljmd implements a miniature LAMMPS-style molecular dynamics
// simulation of Lennard-Jones atoms: FCC lattice initialization, cell-list
// neighbor search, truncated LJ 6-12 potential, velocity-Verlet integration,
// and velocity-rescaling temperature control. It reproduces the paper's
// "3D Lennard-Jones atoms melt" workload (Table 3, §6.3.2): a low-energy
// solid driven to a high-temperature liquid, whose per-step positions feed
// the mean-squared-displacement analysis.
//
// All quantities are in LJ reduced units (sigma = epsilon = mass = 1).
package ljmd

import (
	"fmt"
	"math"
	"math/rand"
)

// Params configures a simulation.
type Params struct {
	Cells   int     // FCC unit cells per dimension; N = 4·Cells³ atoms
	Density float64 // reduced number density (LAMMPS melt uses 0.8442)
	T0      float64 // initial temperature
	Dt      float64 // time step (melt benchmark uses 0.005)
	RCut    float64 // potential cutoff (melt benchmark uses 2.5)
	Seed    int64   // velocity initialization seed
}

// Sim is one molecular-dynamics system.
type Sim struct {
	p     Params
	n     int
	box   float64
	pos   []float64 // 3n, wrapped into the box
	vel   []float64
	force []float64
	// unwrapped positions for MSD-style diagnostics
	unwrapped []float64
	// cell list scratch
	nCell   int // cells per dimension
	cellLen float64
	head    []int
	next    []int
	steps   int
	epot    float64
}

// New builds and initializes a system on an FCC lattice with
// Maxwell-distributed velocities at T0 and zero net momentum.
func New(p Params) (*Sim, error) {
	if p.Cells < 2 {
		return nil, fmt.Errorf("ljmd: need ≥2 cells per dimension, got %d", p.Cells)
	}
	if p.Density <= 0 || p.Dt <= 0 || p.RCut <= 0 {
		return nil, fmt.Errorf("ljmd: density, dt, rcut must be positive")
	}
	n := 4 * p.Cells * p.Cells * p.Cells
	box := float64(p.Cells) * math.Cbrt(4/p.Density)
	if box < 2*p.RCut {
		return nil, fmt.Errorf("ljmd: box %.3f too small for rcut %.3f", box, p.RCut)
	}
	s := &Sim{
		p: p, n: n, box: box,
		pos:       make([]float64, 3*n),
		vel:       make([]float64, 3*n),
		force:     make([]float64, 3*n),
		unwrapped: make([]float64, 3*n),
		next:      make([]int, n),
	}
	s.nCell = int(box / p.RCut)
	if s.nCell < 3 {
		s.nCell = 3
	}
	s.cellLen = box / float64(s.nCell)
	s.head = make([]int, s.nCell*s.nCell*s.nCell)

	// FCC lattice: 4 basis atoms per unit cell.
	a := box / float64(p.Cells)
	basis := [4][3]float64{{0, 0, 0}, {0.5, 0.5, 0}, {0.5, 0, 0.5}, {0, 0.5, 0.5}}
	i := 0
	for cx := 0; cx < p.Cells; cx++ {
		for cy := 0; cy < p.Cells; cy++ {
			for cz := 0; cz < p.Cells; cz++ {
				for _, b := range basis {
					s.pos[3*i] = (float64(cx) + b[0]) * a
					s.pos[3*i+1] = (float64(cy) + b[1]) * a
					s.pos[3*i+2] = (float64(cz) + b[2]) * a
					i++
				}
			}
		}
	}
	copy(s.unwrapped, s.pos)

	rng := rand.New(rand.NewSource(p.Seed))
	var px, py, pz float64
	for i := 0; i < n; i++ {
		s.vel[3*i] = rng.NormFloat64()
		s.vel[3*i+1] = rng.NormFloat64()
		s.vel[3*i+2] = rng.NormFloat64()
		px += s.vel[3*i]
		py += s.vel[3*i+1]
		pz += s.vel[3*i+2]
	}
	for i := 0; i < n; i++ {
		s.vel[3*i] -= px / float64(n)
		s.vel[3*i+1] -= py / float64(n)
		s.vel[3*i+2] -= pz / float64(n)
	}
	s.Rescale(p.T0)
	s.computeForces()
	return s, nil
}

// N reports the number of atoms.
func (s *Sim) N() int { return s.n }

// Box reports the periodic box edge length.
func (s *Sim) Box() float64 { return s.box }

// Steps reports completed time steps.
func (s *Sim) Steps() int { return s.steps }

// Temperature returns the instantaneous kinetic temperature.
func (s *Sim) Temperature() float64 {
	return 2 * s.KineticEnergy() / (3 * float64(s.n))
}

// KineticEnergy returns the total kinetic energy.
func (s *Sim) KineticEnergy() float64 {
	var ke float64
	for _, v := range s.vel {
		ke += v * v
	}
	return ke / 2
}

// PotentialEnergy returns the total truncated-LJ potential energy from the
// most recent force evaluation.
func (s *Sim) PotentialEnergy() float64 { return s.epot }

// TotalEnergy returns kinetic + potential energy.
func (s *Sim) TotalEnergy() float64 { return s.KineticEnergy() + s.epot }

// Momentum returns the net momentum vector (conserved, ≈0).
func (s *Sim) Momentum() (float64, float64, float64) {
	var px, py, pz float64
	for i := 0; i < s.n; i++ {
		px += s.vel[3*i]
		py += s.vel[3*i+1]
		pz += s.vel[3*i+2]
	}
	return px, py, pz
}

// Rescale sets the instantaneous temperature to T by velocity scaling.
func (s *Sim) Rescale(T float64) {
	cur := s.Temperature()
	if cur == 0 {
		return
	}
	f := math.Sqrt(T / cur)
	for i := range s.vel {
		s.vel[i] *= f
	}
}

// Positions returns a copy of the unwrapped atom positions (3N), suitable
// for mean-squared-displacement analysis.
func (s *Sim) Positions() []float64 {
	out := make([]float64, 3*s.n)
	copy(out, s.unwrapped)
	return out
}

// Step advances one velocity-Verlet time step.
func (s *Sim) Step() {
	dt := s.p.Dt
	half := dt / 2
	for i := range s.pos {
		s.vel[i] += half * s.force[i]
		d := dt * s.vel[i]
		s.pos[i] += d
		s.unwrapped[i] += d
	}
	// Wrap into the periodic box.
	for i := range s.pos {
		if s.pos[i] < 0 {
			s.pos[i] += s.box
		} else if s.pos[i] >= s.box {
			s.pos[i] -= s.box
		}
	}
	s.computeForces()
	for i := range s.vel {
		s.vel[i] += half * s.force[i]
	}
	s.steps++
}

func (s *Sim) cellOf(i int) int {
	cx := int(s.pos[3*i] / s.cellLen)
	cy := int(s.pos[3*i+1] / s.cellLen)
	cz := int(s.pos[3*i+2] / s.cellLen)
	nc := s.nCell
	if cx >= nc {
		cx = nc - 1
	}
	if cy >= nc {
		cy = nc - 1
	}
	if cz >= nc {
		cz = nc - 1
	}
	return (cz*nc+cy)*nc + cx
}

// computeForces rebuilds the cell list and evaluates the truncated LJ 6-12
// forces with minimum-image convention.
func (s *Sim) computeForces() {
	for i := range s.force {
		s.force[i] = 0
	}
	for i := range s.head {
		s.head[i] = -1
	}
	for i := 0; i < s.n; i++ {
		c := s.cellOf(i)
		s.next[i] = s.head[c]
		s.head[c] = i
	}
	rc2 := s.p.RCut * s.p.RCut
	// Energy shift so the potential is continuous at the cutoff.
	ir6 := 1 / (rc2 * rc2 * rc2)
	shift := 4 * (ir6*ir6 - ir6)
	var epot float64
	nc := s.nCell
	half := s.box / 2
	for cz := 0; cz < nc; cz++ {
		for cy := 0; cy < nc; cy++ {
			for cx := 0; cx < nc; cx++ {
				c := (cz*nc+cy)*nc + cx
				for i := s.head[c]; i >= 0; i = s.next[i] {
					for dz := -1; dz <= 1; dz++ {
						for dy := -1; dy <= 1; dy++ {
							for dx := -1; dx <= 1; dx++ {
								oc := ((cz+dz+nc)%nc*nc+(cy+dy+nc)%nc)*nc + (cx+dx+nc)%nc
								for j := s.head[oc]; j >= 0; j = s.next[j] {
									if j <= i {
										continue
									}
									rx := s.pos[3*i] - s.pos[3*j]
									ry := s.pos[3*i+1] - s.pos[3*j+1]
									rz := s.pos[3*i+2] - s.pos[3*j+2]
									if rx > half {
										rx -= s.box
									} else if rx < -half {
										rx += s.box
									}
									if ry > half {
										ry -= s.box
									} else if ry < -half {
										ry += s.box
									}
									if rz > half {
										rz -= s.box
									} else if rz < -half {
										rz += s.box
									}
									r2 := rx*rx + ry*ry + rz*rz
									if r2 >= rc2 || r2 == 0 {
										continue
									}
									inv2 := 1 / r2
									inv6 := inv2 * inv2 * inv2
									ff := 24 * inv2 * inv6 * (2*inv6 - 1)
									s.force[3*i] += ff * rx
									s.force[3*i+1] += ff * ry
									s.force[3*i+2] += ff * rz
									s.force[3*j] -= ff * rx
									s.force[3*j+1] -= ff * ry
									s.force[3*j+2] -= ff * rz
									epot += 4*inv6*(inv6-1) - shift
								}
							}
						}
					}
				}
			}
		}
	}
	s.epot = epot
}
