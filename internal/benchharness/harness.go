// Package benchharness is the single source of truth for the measurement
// workloads shared by the in-repo benchmarks (bench_test.go) and the
// baseline tools (cmd/benchbatch, cmd/benchstaging): the batching workload
// pushes blocks through a one-deep receive window — the backpressured
// regime where batches form — and the staging workload couples fast
// producers to a deliberately slow consumer — the consumer-bound regime the
// in-transit tier exists for. Keeping all callers on this harness keeps the
// committed BENCH_*.json baselines comparable to the in-repo benchmarks.
package benchharness

import (
	"sync"
	"time"

	"zipper"
)

// Variant is one batching-protocol configuration of the comparison.
type Variant struct {
	Name   string
	Batch  int  // MaxBatchBlocks
	Pooled bool // NewPayload/Release vs a fresh allocation per block
}

// Variants is the canonical comparison: the seed's one-block-per-message
// protocol with per-block allocation, then pooled payloads at rising batch
// caps.
var Variants = []Variant{
	{Name: "seed-1x-unpooled", Batch: 1, Pooled: false},
	{Name: "pooled-batch=1", Batch: 1, Pooled: true},
	{Name: "pooled-batch=4", Batch: 4, Pooled: true},
	{Name: "pooled-batch=16", Batch: 16, Pooled: true},
}

// Run pushes `blocks` blocks of blockBytes through a fresh one-producer
// one-consumer job configured for the variant, waits for the stream to
// drain, and returns the producer's stats (Messages/BlocksSent is the
// batching efficiency).
func Run(spoolDir string, v Variant, blocks, blockBytes int) (zipper.ProducerStats, error) {
	job, err := zipper.NewJob(zipper.Config{
		Producers: 1, Consumers: 1, SpoolDir: spoolDir,
		BufferBlocks: 64, Window: 1, DisableSteal: true,
		MaxBatchBlocks: v.Batch,
	})
	if err != nil {
		return zipper.ProducerStats{}, err
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		var sink byte
		for {
			blk, ok := job.Consumer(0).Read()
			if !ok {
				_ = sink
				return
			}
			sink ^= blk.Data[0] ^ blk.Data[len(blk.Data)-1]
			if v.Pooled {
				blk.Release()
			}
		}
	}()
	p := job.Producer(0)
	for i := 0; i < blocks; i++ {
		var data []byte
		if v.Pooled {
			data = zipper.NewPayload(blockBytes)
		} else {
			data = make([]byte, blockBytes)
		}
		data[0], data[blockBytes-1] = byte(i), byte(i>>8)
		p.Write(i, 0, data)
	}
	p.Close()
	<-done
	job.Wait()
	return p.Stats(), nil
}

// StagingVariant is one routing configuration of the staging comparison.
type StagingVariant struct {
	Name    string
	Stagers int
	Policy  zipper.RoutePolicy
}

// StagingVariants is the canonical three-mode comparison: the paper's
// two-channel in-situ protocol, everything through the in-transit relay,
// and per-batch hybrid routing.
var StagingVariants = []StagingVariant{
	{Name: "in-situ", Stagers: 0, Policy: zipper.RouteDirect},
	{Name: "in-transit", Stagers: 1, Policy: zipper.RouteStaging},
	{Name: "hybrid", Stagers: 1, Policy: zipper.RouteHybrid},
}

// AdaptiveVariants is the canonical closed-loop comparison: the reactive
// hybrid policy against the adaptive flow controller, on the same
// saturation-prone workloads.
var AdaptiveVariants = []StagingVariant{
	{Name: "hybrid", Stagers: 1, Policy: zipper.RouteHybrid},
	{Name: "adaptive", Stagers: 1, Policy: zipper.RouteAdaptive},
}

// FlowScenario shapes one adaptive-routing measurement.
type FlowScenario struct {
	Name       string
	Producers  int
	Blocks     int // per producer
	BlockBytes int
	// Analyze is the consumer's busy time per block.
	Analyze time.Duration
	// StagerBufferBlocks sizes the stager's in-memory buffer.
	StagerBufferBlocks int
	// DisableSteal turns the work-stealing writer off (the paper's
	// message-passing-only baseline), isolating the routing decision.
	DisableSteal bool
	// BurstBlocks/BurstPause, when nonzero, make generation bursty: after
	// every BurstBlocks writes each producer idles for BurstPause.
	BurstBlocks int
	BurstPause  time.Duration
}

// FlowScenarios is the canonical pair.
//
// slow-consumer is the regime the ROADMAP's closed-loop item names: the
// consumer lags steadily, the staging tier has the RAM to absorb the whole
// stream (dedicated staging ranks trading memory for producer liberation),
// and stealing is off so routing is the only relief valve. The reactive
// hybrid policy polls window credit, which looks healthy at every decision
// instant even though the pipeline is backlogged, so it keeps sending
// direct and the producers eat the whole consumer-bound backlog as Write
// stall. The adaptive controller's stall EWMA sees the backlog and shifts
// the split into the staging tier, which drains the producers at memory
// speed.
//
// bursty keeps the work-stealing writer on (so the ViaDisk comparison is
// live) and slams a moderately provisioned stager with bursts: both
// channels saturate transiently and the controller must rebalance each
// burst and relax between bursts.
var FlowScenarios = []FlowScenario{
	{Name: "slow-consumer", Producers: 2, Blocks: 1500, BlockBytes: 32 << 10,
		Analyze: 250 * time.Microsecond, StagerBufferBlocks: 3000, DisableSteal: true},
	{Name: "bursty", Producers: 2, Blocks: 1500, BlockBytes: 32 << 10,
		Analyze: 150 * time.Microsecond, StagerBufferBlocks: 128,
		BurstBlocks: 250, BurstPause: 25 * time.Millisecond},
}

// RunFlow runs one routing variant against one flow scenario and returns
// the job-wide aggregate stats after the stream drains.
func RunFlow(spoolDir string, v StagingVariant, sc FlowScenario) (zipper.JobStats, error) {
	job, err := zipper.NewJob(zipper.Config{
		Producers: sc.Producers, Consumers: 1, SpoolDir: spoolDir,
		BufferBlocks: 16, Window: 2, MaxBatchBlocks: 8,
		Stagers: v.Stagers, StagerBufferBlocks: sc.StagerBufferBlocks,
		RoutePolicy: v.Policy, DisableSteal: sc.DisableSteal,
	})
	if err != nil {
		return zipper.JobStats{}, err
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		var sink byte
		for {
			blk, ok := job.Consumer(0).Read()
			if !ok {
				_ = sink
				return
			}
			sink ^= blk.Data[0] ^ blk.Data[len(blk.Data)-1]
			for t0 := time.Now(); time.Since(t0) < sc.Analyze; {
			}
			blk.Release()
		}
	}()
	for p := 0; p < sc.Producers; p++ {
		go func(p int) {
			prod := job.Producer(p)
			for i := 0; i < sc.Blocks; i++ {
				if sc.BurstBlocks > 0 && i > 0 && i%sc.BurstBlocks == 0 {
					time.Sleep(sc.BurstPause)
				}
				data := zipper.NewPayload(sc.BlockBytes)
				data[0], data[sc.BlockBytes-1] = byte(i), byte(i>>8)
				prod.Write(i, 0, data)
			}
			prod.Close()
		}(p)
	}
	<-done
	job.Wait()
	return job.Stats(), nil
}

// ElasticScenario shapes the bursty workload of the elastic-staging
// comparison: each producer emits Bursts bursts of BurstBlocks blocks at
// memory speed, idling BurstPause between them, against a consumer that
// analyzes steadily. The bursts need the whole stager ceiling; the pauses
// need almost none of it — exactly the regime where a fixed pool must choose
// between stalling producers (sized for the average) and idling nodes
// (sized for the peak), and an elastic pool does neither.
type ElasticScenario struct {
	Producers   int
	Bursts      int
	BurstBlocks int // per producer per burst
	BurstPause  time.Duration
	BlockBytes  int
	// Analyze is the consumer's busy time per block.
	Analyze time.Duration
	// StagerBufferBlocks sizes each stager endpoint's in-memory buffer.
	StagerBufferBlocks int
}

// ElasticScenarioDefault is the committed-baseline workload.
var ElasticScenarioDefault = ElasticScenario{
	Producers: 4, Bursts: 4, BurstBlocks: 300, BurstPause: 400 * time.Millisecond,
	BlockBytes: 32 << 10, Analyze: 100 * time.Microsecond, StagerBufferBlocks: 256,
}

// ElasticVariant is one pool-sizing configuration of the elastic comparison.
type ElasticVariant struct {
	Name    string
	Stagers int // reserved endpoint ceiling
	Elastic zipper.ElasticConfig
}

// ElasticVariants is the canonical three-way comparison: a fixed pool sized
// for the average load (cheap but stalls under bursts), a fixed pool sized
// for the peak (smooth but pays four nodes all run long), and the elastic
// pool that grows into the ceiling during bursts and drains between them.
var ElasticVariants = []ElasticVariant{
	{Name: "fixed-small", Stagers: 1},
	{Name: "fixed-large", Stagers: 4},
	{Name: "elastic", Stagers: 4, Elastic: zipper.ElasticConfig{
		Enabled: true, MinStagers: 1, MaxStagers: 4,
		Interval: time.Millisecond, Cooldown: 4 * time.Millisecond,
	}},
}

// RunElastic runs one pool-sizing variant against the bursty scenario on the
// real platform and returns the job-wide aggregate stats (including the
// scaling timeline and stager node-seconds) after the stream drains.
// Stealing is disabled so the producers' only relief is the staging tier —
// the pool size is the variable under test — and routing is the adaptive
// controller, which sheds each burst into the tier as the stall EWMA rises
// (PR 3's closed loop; a credit-polling reactive policy would barely touch
// the tier and hide the pool size entirely).
func RunElastic(spoolDir string, v ElasticVariant, sc ElasticScenario) (zipper.JobStats, error) {
	job, err := zipper.NewJob(zipper.Config{
		Producers: sc.Producers, Consumers: 1, SpoolDir: spoolDir,
		BufferBlocks: 16, Window: 2, MaxBatchBlocks: 8,
		Stagers: v.Stagers, StagerBufferBlocks: sc.StagerBufferBlocks,
		RoutePolicy: zipper.RouteAdaptive, DisableSteal: true,
		Elastic: v.Elastic,
	})
	if err != nil {
		return zipper.JobStats{}, err
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		var sink byte
		for {
			blk, ok := job.Consumer(0).Read()
			if !ok {
				_ = sink
				return
			}
			sink ^= blk.Data[0] ^ blk.Data[len(blk.Data)-1]
			for t0 := time.Now(); time.Since(t0) < sc.Analyze; {
			}
			blk.Release()
		}
	}()
	for p := 0; p < sc.Producers; p++ {
		go func(p int) {
			prod := job.Producer(p)
			i := 0
			for b := 0; b < sc.Bursts; b++ {
				if b > 0 {
					time.Sleep(sc.BurstPause)
				}
				for k := 0; k < sc.BurstBlocks; k++ {
					data := zipper.NewPayload(sc.BlockBytes)
					data[0], data[sc.BlockBytes-1] = byte(i), byte(i>>8)
					prod.Write(i, 0, data)
					i++
				}
			}
			prod.Close()
		}(p)
	}
	<-done
	job.Wait()
	return job.Stats(), nil
}

// PlacementScenario shapes the skewed-rate workload of the placement
// comparison: per burst, producer p emits BurstBlocks[p] blocks flat out
// (a 10:1 skew by default), idling BurstPause between bursts while the
// consumer catches up. The fast producer's burst does not fit any one
// stager's buffer but does fit the tier's aggregate buffering — exactly the
// regime where assignment is everything. Under rank-affine placement the
// torrent funnels through the one stager rank 0 is wired to (overflow
// spills, the producer stalls) while three stagers sit empty; a load-aware
// policy absorbs the same burst across the whole tier. A single consumer
// keeps the tier the queueing point — relay imbalance is the variable under
// test. (A globally oversubscribed workload would show nothing: every
// buffer pegs full, occupancies tie, and placement cannot matter.)
type PlacementScenario struct {
	Producers int
	Consumers int
	Stagers   int
	Bursts    int
	// BurstBlocks is each producer's blocks per burst (len == Producers) —
	// the skew.
	BurstBlocks []int
	BurstPause  time.Duration
	BlockBytes  int
	// Analyze is each consumer's busy time per block.
	Analyze time.Duration
	// StagerBufferBlocks sizes each stager endpoint's in-memory buffer.
	StagerBufferBlocks int
}

// Total is the block count across all producers and bursts.
func (sc PlacementScenario) Total() int64 {
	var t int64
	for _, b := range sc.BurstBlocks {
		t += int64(b)
	}
	return t * int64(sc.Bursts)
}

// PlacementScenarioDefault is the committed-baseline workload.
var PlacementScenarioDefault = PlacementScenario{
	Producers: 4, Consumers: 1, Stagers: 4,
	Bursts: 6, BurstBlocks: []int{1000, 100, 100, 100}, BurstPause: 150 * time.Millisecond,
	BlockBytes: 32 << 10, Analyze: 100 * time.Microsecond, StagerBufferBlocks: 512,
}

// PlacementVariant is one policy configuration of the placement comparison.
type PlacementVariant struct {
	Name      string
	Placement zipper.Placement
}

// PlacementVariants is the canonical comparison: the fixed rank-affine
// assignment of earlier revisions against the two directory policies.
var PlacementVariants = []PlacementVariant{
	{Name: "rank-affine", Placement: zipper.RankAffine},
	{Name: "least-occupancy", Placement: zipper.LeastOccupancy},
	{Name: "hash-ring", Placement: zipper.HashRing},
}

// RunPlacement runs one placement policy against the skewed scenario on the
// real platform and returns the job-wide aggregate stats (including the
// per-stager relay split behind RelayImbalance) after the stream drains.
// Everything relays (RouteStaging) and stealing is off, so endpoint
// assignment is the only variable: where each batch lands is exactly what
// the policy decided.
func RunPlacement(spoolDir string, v PlacementVariant, sc PlacementScenario) (zipper.JobStats, error) {
	job, err := zipper.NewJob(zipper.Config{
		Producers: sc.Producers, Consumers: sc.Consumers, SpoolDir: spoolDir,
		BufferBlocks: 16, Window: 2, MaxBatchBlocks: 8,
		Stagers: sc.Stagers, StagerBufferBlocks: sc.StagerBufferBlocks,
		RoutePolicy: zipper.RouteStaging, Placement: v.Placement,
		DisableSteal: true,
	})
	if err != nil {
		return zipper.JobStats{}, err
	}
	var wg sync.WaitGroup
	for q := 0; q < sc.Consumers; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			var sink byte
			for {
				blk, ok := job.Consumer(q).Read()
				if !ok {
					_ = sink
					return
				}
				sink ^= blk.Data[0] ^ blk.Data[len(blk.Data)-1]
				for t0 := time.Now(); time.Since(t0) < sc.Analyze; {
				}
				blk.Release()
			}
		}(q)
	}
	for p := 0; p < sc.Producers; p++ {
		go func(p int) {
			prod := job.Producer(p)
			i := 0
			for b := 0; b < sc.Bursts; b++ {
				if b > 0 {
					time.Sleep(sc.BurstPause)
				}
				for k := 0; k < sc.BurstBlocks[p]; k++ {
					data := zipper.NewPayload(sc.BlockBytes)
					data[0], data[sc.BlockBytes-1] = byte(i), byte(i>>8)
					prod.Write(i, 0, data)
					i++
				}
			}
			prod.Close()
		}(p)
	}
	wg.Wait()
	job.Wait()
	return job.Stats(), nil
}

// RunStaging pushes `blocks` blocks of blockBytes from each of `producers`
// producers through a fresh job whose single consumer busy-analyzes each
// block for `analyze` — generation deliberately outruns analysis, so the
// direct window is exhausted most of the run and the routing policy decides
// where the overflow goes: the producer's blocking buffer (WriteStall), the
// file-system steal path (BlocksStolen), or the staging tier
// (BlocksRelayed). The stager buffer is sized to hold the whole burst in
// memory — dedicated staging ranks trade RAM for producer liberation, which
// is the tier's entire bargain — while its high-water mark still exercises
// some spilling. Returns the job-wide aggregate stats after the stream
// drains.
func RunStaging(spoolDir string, v StagingVariant, producers, blocks, blockBytes int, analyze time.Duration) (zipper.JobStats, error) {
	job, err := zipper.NewJob(zipper.Config{
		Producers: producers, Consumers: 1, SpoolDir: spoolDir,
		BufferBlocks: 16, Window: 2, MaxBatchBlocks: 8,
		Stagers: v.Stagers, StagerBufferBlocks: producers * blocks,
		RoutePolicy: v.Policy,
	})
	if err != nil {
		return zipper.JobStats{}, err
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		var sink byte
		for {
			blk, ok := job.Consumer(0).Read()
			if !ok {
				_ = sink
				return
			}
			sink ^= blk.Data[0] ^ blk.Data[len(blk.Data)-1]
			// Busy-analyze: a timer sleep would round the cost up to the
			// scheduler's granularity and drown the comparison in noise.
			for t0 := time.Now(); time.Since(t0) < analyze; {
			}
			blk.Release()
		}
	}()
	for p := 0; p < producers; p++ {
		go func(p int) {
			prod := job.Producer(p)
			for i := 0; i < blocks; i++ {
				data := zipper.NewPayload(blockBytes)
				data[0], data[blockBytes-1] = byte(i), byte(i>>8)
				prod.Write(i, 0, data)
			}
			prod.Close()
		}(p)
	}
	<-done
	job.Wait()
	return job.Stats(), nil
}

// WireVariant is one payload-reduction configuration of the wire
// comparison.
type WireVariant struct {
	Name   string
	Reduce zipper.ReduceConfig
}

// WireVariants is the canonical comparison: the raw relay, then the same
// stream compressed at the producer before it ever touches a socket.
var WireVariants = []WireVariant{
	{Name: "raw"},
	{Name: "compress", Reduce: zipper.ReduceConfig{Operator: zipper.ReduceCompress}},
}

// RunWire pushes `blocks` blocks of blockBytes from each of `producers`
// producers through a real-TCP staged job (every block crosses two wire
// legs: producer→stager over a socket, stager→consumer over the listener
// loopback) under the variant's reduction config. The payload is a smooth
// plateau field — the shape simulation output takes and the reason
// in-transit compression pays. Returns the job-wide stats; BytesOnWire vs
// BytesReduced is the measurement.
func RunWire(spoolDir string, v WireVariant, producers, blocks, blockBytes int) (zipper.JobStats, error) {
	job, err := zipper.NewJob(zipper.Config{
		Producers: producers, Consumers: 1, SpoolDir: spoolDir,
		TCPAddr:      "127.0.0.1:0",
		BufferBlocks: 16, Window: 2, MaxBatchBlocks: 8, DisableSteal: true,
		Staging: zipper.StagingConfig{
			Stagers: 1, BufferBlocks: producers * blocks,
			RoutePolicy: zipper.RouteStaging,
			Reduce:      v.Reduce,
		},
	})
	if err != nil {
		return zipper.JobStats{}, err
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		var sink byte
		for {
			blk, ok := job.Consumer(0).Read()
			if !ok {
				_ = sink
				return
			}
			sink ^= blk.Data[0] ^ blk.Data[len(blk.Data)-1]
			blk.Release()
		}
	}()
	for p := 0; p < producers; p++ {
		go func(p int) {
			prod := job.Producer(p)
			for i := 0; i < blocks; i++ {
				data := zipper.NewPayload(blockBytes)
				for j := range data {
					// Plateaus 64 bytes wide, drifting with the step: locally
					// constant like a physical field, distinct across blocks.
					data[j] = byte((j / 64) + i + p)
				}
				prod.Write(i, 0, data)
			}
			prod.Close()
		}(p)
	}
	<-done
	job.Wait()
	return job.Stats(), nil
}
