// Package benchharness is the single source of truth for the batching
// measurement workload shared by BenchmarkBatching (bench_test.go) and
// cmd/benchbatch: one producer pushing blocks through a one-deep receive
// window — the backpressured regime where batches form — under a given
// protocol variant. Keeping both callers on this harness keeps the committed
// BENCH_batching.json baseline comparable to the in-repo benchmark.
package benchharness

import "zipper"

// Variant is one batching-protocol configuration of the comparison.
type Variant struct {
	Name   string
	Batch  int  // MaxBatchBlocks
	Pooled bool // NewPayload/Release vs a fresh allocation per block
}

// Variants is the canonical comparison: the seed's one-block-per-message
// protocol with per-block allocation, then pooled payloads at rising batch
// caps.
var Variants = []Variant{
	{Name: "seed-1x-unpooled", Batch: 1, Pooled: false},
	{Name: "pooled-batch=1", Batch: 1, Pooled: true},
	{Name: "pooled-batch=4", Batch: 4, Pooled: true},
	{Name: "pooled-batch=16", Batch: 16, Pooled: true},
}

// Run pushes `blocks` blocks of blockBytes through a fresh one-producer
// one-consumer job configured for the variant, waits for the stream to
// drain, and returns the producer's stats (Messages/BlocksSent is the
// batching efficiency).
func Run(spoolDir string, v Variant, blocks, blockBytes int) (zipper.ProducerStats, error) {
	job, err := zipper.NewJob(zipper.Config{
		Producers: 1, Consumers: 1, SpoolDir: spoolDir,
		BufferBlocks: 64, Window: 1, DisableSteal: true,
		MaxBatchBlocks: v.Batch,
	})
	if err != nil {
		return zipper.ProducerStats{}, err
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		var sink byte
		for {
			blk, ok := job.Consumer(0).Read()
			if !ok {
				_ = sink
				return
			}
			sink ^= blk.Data[0] ^ blk.Data[len(blk.Data)-1]
			if v.Pooled {
				blk.Release()
			}
		}
	}()
	p := job.Producer(0)
	for i := 0; i < blocks; i++ {
		var data []byte
		if v.Pooled {
			data = zipper.NewPayload(blockBytes)
		} else {
			data = make([]byte, blockBytes)
		}
		data[0], data[blockBytes-1] = byte(i), byte(i>>8)
		p.Write(i, 0, data)
	}
	p.Close()
	<-done
	job.Wait()
	return p.Stats(), nil
}
