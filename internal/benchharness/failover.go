package benchharness

import (
	"sync"
	"time"

	"zipper"
)

// FailoverScenario shapes the crash-recovery measurement: bursty producers
// over a relaying staging tier, with a configurable number of stagers
// hard-killed mid-run. The bursts leave admitted-but-undelivered blocks in
// the victims' buffers at kill time, so the recovery reader has real work:
// the measurement is whether the replay balances the counted streams
// (blocks_lost must be 0) and how long the evict→respawn sequence takes.
type FailoverScenario struct {
	Producers   int
	Consumers   int
	Stagers     int
	Bursts      int
	BurstBlocks int // per producer per burst
	BurstPause  time.Duration
	BlockBytes  int
	// Analyze is each consumer's busy time per block.
	Analyze time.Duration
	// StagerBufferBlocks sizes each stager endpoint's in-memory buffer.
	StagerBufferBlocks int
	// Fault tunes the failure detector. Generous timings by default: the
	// measurement is recovery latency, not detector sensitivity, and a TTL
	// well above scheduler jitter keeps healthy members out of the sweep.
	Fault zipper.FaultConfig
}

// Total is the block count across all producers and bursts.
func (sc FailoverScenario) Total() int64 {
	return int64(sc.Producers) * int64(sc.Bursts) * int64(sc.BurstBlocks)
}

// FailoverScenarioDefault is the committed-baseline workload.
var FailoverScenarioDefault = FailoverScenario{
	Producers: 4, Consumers: 2, Stagers: 3,
	Bursts: 3, BurstBlocks: 200, BurstPause: 60 * time.Millisecond,
	BlockBytes: 16 << 10, Analyze: 50 * time.Microsecond, StagerBufferBlocks: 64,
	Fault: zipper.FaultConfig{Enabled: true,
		Heartbeat: 2 * time.Millisecond, LeaseTTL: 25 * time.Millisecond},
}

// RunFailover runs the bursty relay workload on the real platform, injecting
// `kills` stager crashes spaced one burst pause apart (slot k dies at
// (k+1)·BurstPause/2 into the run), and returns the job-wide aggregate stats
// after the stream drains. With faultOn false the fault plane is left off
// and kills must be 0 — the overhead baseline the fault-on rows compare to.
func RunFailover(spoolDir string, sc FailoverScenario, faultOn bool, kills int) (zipper.JobStats, error) {
	cfg := zipper.Config{
		Producers: sc.Producers, Consumers: sc.Consumers, SpoolDir: spoolDir,
		BufferBlocks: 16, Window: 2, MaxBatchBlocks: 8, DisableSteal: true,
		Staging: zipper.StagingConfig{
			Stagers:      sc.Stagers,
			BufferBlocks: sc.StagerBufferBlocks,
			RoutePolicy:  zipper.RouteStaging,
		},
	}
	if faultOn {
		cfg.Fault = sc.Fault
	}
	job, err := zipper.NewJob(cfg)
	if err != nil {
		return zipper.JobStats{}, err
	}
	var readers sync.WaitGroup
	for q := 0; q < sc.Consumers; q++ {
		readers.Add(1)
		go func(q int) {
			defer readers.Done()
			var sink byte
			for {
				blk, ok := job.Consumer(q).Read()
				if !ok {
					_ = sink
					return
				}
				sink ^= blk.Data[0] ^ blk.Data[len(blk.Data)-1]
				for t0 := time.Now(); time.Since(t0) < sc.Analyze; {
				}
				blk.Release()
			}
		}(q)
	}
	for p := 0; p < sc.Producers; p++ {
		go func(p int) {
			prod := job.Producer(p)
			i := 0
			for b := 0; b < sc.Bursts; b++ {
				if b > 0 {
					time.Sleep(sc.BurstPause)
				}
				for k := 0; k < sc.BurstBlocks; k++ {
					data := zipper.NewPayload(sc.BlockBytes)
					data[0], data[sc.BlockBytes-1] = byte(i), byte(i>>8)
					prod.Write(i, 0, data)
					i++
				}
			}
			prod.Close()
		}(p)
	}
	// The injector runs on the measurement goroutine: each kill lands
	// strictly before Wait, so the failure detector is still sweeping (the
	// final forced sweep catches even a kill whose lease never lapsed).
	for k := 0; k < kills; k++ {
		time.Sleep(sc.BurstPause / 2)
		job.InjectStagerCrash(k % sc.Stagers)
	}
	readers.Wait()
	job.Wait()
	return job.Stats(), nil
}
