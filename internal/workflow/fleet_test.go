package workflow

import (
	"testing"
	"time"

	"zipper/internal/control"
)

// fleetTestJobs is the heterogeneous tenant mix of the acceptance scenario:
// a steady normal-priority job, a latency-sensitive high-priority job, and a
// spill-heavy low-priority batch job that joins the running fleet late and
// floods its slice — the arrival the control plane must contain.
func fleetTestJobs() []FleetJob {
	noisy := FleetJob{
		Name: "noisy",
		Workload: Workload{
			Steps: 4, StepTime: 10 * time.Millisecond,
			BytesPerStep: 16 << 20, BlockBytes: 1 << 20,
			AnalyzePerByte: 50 * time.Nanosecond, // ~52ms/block: a huge backlog
		},
		P: 2, Q: 1,
		// The buffer guarantee keeps the noisy tenant's quota above the
		// spill high-water mark even where its stager is shared, so its
		// flood spills instead of merely queuing — the pressure source the
		// preemption pass must detect.
		Quota:        control.Quota{Priority: control.PriorityLow, BufferBlocks: 20},
		StartAfter:   60 * time.Millisecond,
		BufferBlocks: 8, MaxBatchBlocks: 4, DisableSteal: true,
	}
	mid := FleetJob{
		Name: "mid",
		Workload: Workload{
			Steps: 4, StepTime: 20 * time.Millisecond,
			BytesPerStep: 4 << 20, BlockBytes: 1 << 20,
			AnalyzePerByte: 5 * time.Nanosecond,
		},
		P: 2, Q: 1,
		Quota:        control.Quota{Priority: control.PriorityNormal},
		BufferBlocks: 8, MaxBatchBlocks: 4, DisableSteal: true,
	}
	quiet := FleetJob{
		Name: "quiet",
		Workload: Workload{
			Steps: 4, StepTime: 10 * time.Millisecond,
			BytesPerStep: 16 << 20, BlockBytes: 1 << 20,
			AnalyzePerByte: 10 * time.Nanosecond, // ~10ms/block: consumer-bound
		},
		P: 2, Q: 1,
		// A buffer guarantee pins the quiet tenant's per-stager quota at the
		// full buffer of its slice, so its admission floor survives sharing.
		Quota:        control.Quota{Priority: control.PriorityHigh, BufferBlocks: 24},
		BufferBlocks: 8, MaxBatchBlocks: 4, DisableSteal: true,
	}
	return []FleetJob{noisy, mid, quiet}
}

// fleetTestSpec shares 2 stagers among the 3 jobs, so tenant slices overlap
// and the fair-share split actually divides buffers.
func fleetTestSpec() FleetSpec {
	return FleetSpec{
		Machine:            testMachine(),
		Jobs:               fleetTestJobs(),
		Stagers:            2,
		StagerBufferBlocks: 24,
		StagingNodes:       2,
		Reconcile:          2 * time.Millisecond,
		Window:             2,
	}
}

// quietBaselineSpec is the quiet job alone on a private fleet sized like its
// fair share of the shared one (1 of the 2 stagers, same per-stager buffer) —
// the isolation yardstick: the shared run adds only interference, not
// capacity, so any stall blow-up is the other tenants' fault.
func quietBaselineSpec() FleetSpec {
	spec := fleetTestSpec()
	quiet := spec.Jobs[2]
	quiet.StartAfter = 0
	spec.Jobs = []FleetJob{quiet}
	spec.Stagers = 1
	return spec
}

// TestFleetMultiTenantIsolation is the acceptance scenario: three
// heterogeneous jobs share a fleet; the spill-heavy low-priority tenant is
// preempted, the latency-sensitive high-priority tenant's write-stall stays
// within 1.5x of its private-fleet baseline, and every stream terminates
// with zero blocks lost.
func TestFleetMultiTenantIsolation(t *testing.T) {
	res := RunFleet(fleetTestSpec())
	if !res.OK {
		t.Fatalf("fleet run failed: %s", res.Fail)
	}
	for _, j := range res.Jobs {
		if j.BlocksLost != 0 {
			t.Fatalf("job %s lost %d blocks", j.Name, j.BlocksLost)
		}
		if j.BlocksAnalyzed != j.BlocksWritten || j.BlocksWritten == 0 {
			t.Fatalf("job %s analyzed %d of %d written", j.Name, j.BlocksAnalyzed, j.BlocksWritten)
		}
		if j.End <= j.Start {
			t.Fatalf("job %s never finished: %+v", j.Name, j)
		}
	}
	noisy, quiet := res.Jobs[0], res.Jobs[2]
	if noisy.BlocksSpilled == 0 {
		t.Fatal("the noisy tenant never spilled — the scenario lost its pressure source")
	}
	if res.Preemptions == 0 || noisy.Preempted == 0 {
		t.Fatalf("the spill-heavy low-priority tenant was never preempted (%d fleet preemptions, noisy %d)",
			res.Preemptions, noisy.Preempted)
	}
	if quiet.Preempted != 0 {
		t.Fatalf("the high-priority tenant was preempted %d times", quiet.Preempted)
	}
	seen := map[string]bool{}
	noisyVictim := false
	for _, ev := range res.Events {
		seen[ev.Kind] = true
		if ev.Kind == "preempt" {
			if ev.Victim == quiet.Tenant {
				t.Fatalf("the high-priority tenant was a preemption victim: %+v", ev)
			}
			if ev.Victim == noisy.Tenant {
				noisyVictim = true
			}
		}
	}
	if seen["preempt"] && !noisyVictim {
		t.Fatal("preemptions fired but never against the noisy tenant")
	}
	for _, kind := range []string{"admit", "assign", "preempt", "finish"} {
		if !seen[kind] {
			t.Fatalf("control timeline has no %q event: %+v", kind, res.Events)
		}
	}

	base := RunFleet(quietBaselineSpec())
	if !base.OK {
		t.Fatalf("baseline run failed: %s", base.Fail)
	}
	if base.Jobs[0].BlocksLost != 0 || base.Jobs[0].BlocksAnalyzed != base.Jobs[0].BlocksWritten {
		t.Fatalf("baseline run incomplete: %+v", base.Jobs[0])
	}
	limit := base.Jobs[0].WriteStall + base.Jobs[0].WriteStall/2
	if quiet.WriteStall > limit {
		t.Fatalf("quiet tenant stalled %v on the shared fleet, > 1.5x its private baseline %v",
			quiet.WriteStall, base.Jobs[0].WriteStall)
	}
}

// TestFleetDeterministic pins the multi-job run's simenv reproducibility:
// two runs of the same spec produce identical end-to-end times, per-job
// outcomes, and control-plane event timelines.
func TestFleetDeterministic(t *testing.T) {
	a := RunFleet(fleetTestSpec())
	b := RunFleet(fleetTestSpec())
	if !a.OK || !b.OK {
		t.Fatalf("runs failed: %v / %v", a.Fail, b.Fail)
	}
	if a.E2E != b.E2E || a.Preemptions != b.Preemptions || a.StagerNodeSeconds != b.StagerNodeSeconds {
		t.Fatalf("fleet runs diverged: %v/%d/%.3f vs %v/%d/%.3f",
			a.E2E, a.Preemptions, a.StagerNodeSeconds, b.E2E, b.Preemptions, b.StagerNodeSeconds)
	}
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("job %d diverged:\n%+v\n%+v", i, a.Jobs[i], b.Jobs[i])
		}
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("timelines diverged: %d vs %d events", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d diverged: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
}
