package workflow

import (
	"testing"
	"time"

	"zipper/internal/core"
	"zipper/internal/elastic"
	"zipper/internal/fault"
)

// faultTestSpec is the staging test workflow with the survivable data plane
// on over a 3-stager fixed pool.
func faultTestSpec() Spec {
	spec := stagingTestSpec()
	spec.Stagers = 3
	spec.Zipper.RoutePolicy = core.RouteStaging
	spec.Fault = fault.Config{Enabled: true}
	return spec
}

// faultElasticSpec adds the autoscaler, so membership epochs keep advancing
// through the run — each grow is a later kill point for the epoch sweep.
func faultElasticSpec() Spec {
	spec := faultTestSpec()
	spec.Elastic = elastic.Config{
		Enabled: true, MinStagers: 1, MaxStagers: 3,
		Interval: time.Millisecond, Cooldown: 5 * time.Millisecond,
	}
	return spec
}

func faultTotal(spec Spec) int64 {
	w := spec.Workload
	return int64(spec.P) * int64(w.Steps) * (w.BytesPerStep / w.BlockBytes)
}

// TestZipperFaultKillEverySweep is the tentpole's simenv acceptance test: a
// stager is hard-killed at every reachable membership epoch — under the
// virtual clock each kill lands at a deterministic instant — and every run
// must still terminate with every block analyzed and zero blocks lost,
// because the failure detector evicts the corpse, the recovery reader
// replays its journal, and counted Fins let the replayed blocks land.
func TestZipperFaultKillEverySweep(t *testing.T) {
	for _, tier := range []struct {
		name string
		mk   func() Spec
	}{
		{"fixed", faultTestSpec},
		{"elastic", faultElasticSpec},
	} {
		total := faultTotal(tier.mk())
		kills := 0
		for epoch := 1; epoch <= 8; epoch++ {
			spec := tier.mk()
			spec.FaultKillEpoch = epoch
			res := RunZipper(spec)
			if !res.OK {
				t.Fatalf("%s kill@epoch %d: run failed: %s", tier.name, epoch, res.Fail)
			}
			if res.BlocksAnalyzed != total {
				t.Fatalf("%s kill@epoch %d: analyzed %d of %d blocks", tier.name, epoch, res.BlocksAnalyzed, total)
			}
			if res.BlocksLost != 0 {
				t.Fatalf("%s kill@epoch %d: BlocksLost = %d, want 0", tier.name, epoch, res.BlocksLost)
			}
			if res.Evictions == 0 {
				// The epoch was never reached (no membership change got that
				// far before the producers finished) — the injector stayed
				// quiet, which is itself a valid sweep point.
				continue
			}
			kills++
			if res.Evictions != 1 {
				t.Fatalf("%s kill@epoch %d: Evictions = %d after a single kill", tier.name, epoch, res.Evictions)
			}
			var evicts, replays, respawns int
			for _, ev := range res.FailoverEvents {
				switch ev.Kind {
				case "evict":
					evicts++
				case "replay":
					replays++
				case "respawn":
					respawns++
				case "abandon":
				default:
					t.Fatalf("%s kill@epoch %d: unknown event kind %q", tier.name, epoch, ev.Kind)
				}
			}
			if evicts != 1 || replays != 1 {
				t.Fatalf("%s kill@epoch %d: %d evict / %d replay events, want 1/1",
					tier.name, epoch, evicts, replays)
			}
		}
		if kills == 0 {
			t.Fatalf("%s: no epoch in the sweep produced a kill", tier.name)
		}
	}
}

// TestZipperFaultRecoveryDeterministic pins the whole crash-and-recover
// workflow's simenv reproducibility: two identical killed runs share the
// virtual end time and the full eviction/recovery timeline.
func TestZipperFaultRecoveryDeterministic(t *testing.T) {
	mk := func() Result {
		spec := faultElasticSpec()
		spec.FaultKillEpoch = 2
		return RunZipper(spec)
	}
	a, b := mk(), mk()
	if !a.OK || !b.OK {
		t.Fatalf("runs failed: %v / %v", a.Fail, b.Fail)
	}
	if a.E2E != b.E2E || a.Evictions != b.Evictions || a.ReplayedBlocks != b.ReplayedBlocks ||
		a.BlocksAnalyzed != b.BlocksAnalyzed {
		t.Fatalf("killed runs diverged:\n%+v\n%+v", a, b)
	}
	if len(a.FailoverEvents) != len(b.FailoverEvents) {
		t.Fatalf("timelines diverged: %d vs %d events", len(a.FailoverEvents), len(b.FailoverEvents))
	}
	for i := range a.FailoverEvents {
		if a.FailoverEvents[i] != b.FailoverEvents[i] {
			t.Fatalf("event %d diverged: %+v vs %+v", i, a.FailoverEvents[i], b.FailoverEvents[i])
		}
	}
}

// TestZipperFaultOffPinned pins the acceptance guarantee alongside the
// elastic and placement pins: with Fault disabled the run is byte-identical
// whether the fault knobs are zero or populated but off, and no fault
// machinery leaks into the result.
func TestZipperFaultOffPinned(t *testing.T) {
	zero := stagingTestSpec()
	zero.Zipper.RoutePolicy = core.RouteStaging
	a := RunZipper(zero)

	populated := stagingTestSpec()
	populated.Zipper.RoutePolicy = core.RouteStaging
	populated.Fault = fault.Config{
		Enabled:   false,
		Heartbeat: time.Millisecond, LeaseTTL: 10 * time.Millisecond,
		MaxRecoveries: 5,
	}
	b := RunZipper(populated)

	if !a.OK || !b.OK {
		t.Fatalf("runs failed: %v / %v", a.Fail, b.Fail)
	}
	if a.E2E != b.E2E || a.Messages != b.Messages ||
		a.BlocksSent != b.BlocksSent || a.BlocksRelayed != b.BlocksRelayed ||
		a.BlocksStolen != b.BlocksStolen || a.BlocksAnalyzed != b.BlocksAnalyzed {
		t.Fatalf("Fault:off diverged from zero knobs:\n%+v\n%+v", a, b)
	}
	for _, res := range []Result{a, b} {
		if res.Evictions != 0 || res.ReplayedBlocks != 0 || res.BlocksLost != 0 || len(res.FailoverEvents) != 0 {
			t.Fatalf("fault machinery leaked into a fault-off run: %+v", res)
		}
	}
}
