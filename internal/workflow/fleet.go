package workflow

// Multi-job fleet runs on the simulated platform: many producer/consumer
// jobs share one in-transit stager tier under the control plane, clocked
// entirely by virtual time so admission, fair-share reconciles, and
// preemptions land at bit-for-bit reproducible instants. This is the
// harness the multi-tenant acceptance tests and cmd/benchcontrol drive.

import (
	"fmt"
	"time"

	"zipper/internal/control"
	"zipper/internal/core"
	"zipper/internal/fabric"
	"zipper/internal/flow"
	"zipper/internal/rt"
	"zipper/internal/rt/simenv"
	"zipper/internal/staging"
)

// FleetJob is one tenant workload in a FleetSpec.
type FleetJob struct {
	Name     string
	Workload Workload
	// P and Q are this job's producer and consumer rank counts.
	P, Q int
	// Quota is the tenant's resource envelope on the shared fleet.
	Quota control.Quota
	// StartAfter delays the job's admission: the tenant joins the running
	// fleet at this virtual instant, and the fair share reconverges.
	StartAfter time.Duration
	// RoutePolicy is the producer's channel policy (default RouteStaging —
	// everything relays through the shared tier).
	RoutePolicy core.RoutePolicy
	// BufferBlocks is each producer's buffer capacity (default 8), and
	// MaxBatchBlocks the drain-batch cap.
	BufferBlocks   int
	MaxBatchBlocks int
	// DisableSteal turns the file-system relief path off for this job.
	DisableSteal bool
}

// FleetSpec is a complete multi-job fleet experiment.
type FleetSpec struct {
	Machine Machine
	Jobs    []FleetJob
	// Stagers is the shared tier's size and StagerBufferBlocks each
	// endpoint's in-memory buffer capacity.
	Stagers            int
	StagerBufferBlocks int
	// StagingNodes is the node count the shared tier is placed on.
	StagingNodes int
	// Reconcile is the control plane's period (0 selects 2ms virtual) and
	// PreemptOccupancy its pressure threshold (0 selects 0.75).
	Reconcile        time.Duration
	PreemptOccupancy float64
	// Window is each endpoint's receive window in messages (default 4).
	Window int
	// Sample, when > 0, records the per-tenant share/occupancy timeline at
	// this virtual period — the zippertrace fleet view's input.
	Sample time.Duration
	// Seed drives PFS background-load jitter.
	Seed int64
}

// TenantSample is one tenant's state at a sample instant.
type TenantSample struct {
	Stagers     int  // assigned slice size
	QuotaBlocks int  // total admission cap across the slice
	Resident    int  // blocks resident in shared-stager memory, fleet-wide
	Active      bool // admitted and not yet finished
}

// FleetSample is one instant of the per-tenant timeline.
type FleetSample struct {
	At      time.Duration
	Tenants []TenantSample // indexed by tenant id (admission order)
}

// FleetJobResult is one job's outcome.
type FleetJobResult struct {
	Name   string
	Tenant int           // control-plane tenant id (admission order)
	Start  time.Duration // admission instant
	End    time.Duration // all of the job's streams complete
	// Producer/consumer totals.
	BlocksWritten  int64
	BlocksAnalyzed int64
	BlocksLost     int64
	BlocksSent     int64
	BlocksRelayed  int64
	BlocksStolen   int64
	BlocksSpilled  int64 // the tenant's spills inside the shared tier
	// WriteStall is the job's worst producer stall — the latency number the
	// isolation guarantee is judged on.
	WriteStall time.Duration
	// Preempted counts how often this tenant was the preemption victim.
	Preempted int
}

// FleetResult is one multi-job fleet execution's outcome.
type FleetResult struct {
	OK   bool
	Fail string
	E2E  time.Duration
	Jobs []FleetJobResult
	// Events is the control plane's admit/finish/assign/preempt timeline,
	// and Preemptions its lifetime count.
	Events      []control.Event
	Preemptions int
	// StagerNodeSeconds is the shared tier's provisioned cost (each stager
	// billed to its finish time) — the axis shared fleets are compared to
	// private tiers on. StagerRelayed is each stager's received-block total
	// and StagerSpills the tier-wide overflow count.
	StagerNodeSeconds float64
	StagerRelayed     []int64
	StagerSpills      int64
	// Samples is the per-tenant timeline (empty unless Spec.Sample > 0).
	Samples []FleetSample
}

// simControlHost adapts the simulated shared tier to control.Host. All
// stagers exist before the plane starts, so the slice is immutable.
type simControlHost struct {
	stagers []*staging.Stager
	base    int // transport address of stager 0
}

func (h *simControlHost) TenantLevel(addr, tenant int) *flow.Level {
	return h.stagers[addr-h.base].TenantLevel(tenant)
}

func (h *simControlHost) TenantSpilled(addr, tenant int) int64 {
	return h.stagers[addr-h.base].TenantSpilled(tenant)
}

func (h *simControlHost) SetTenantQuota(c rt.Ctx, addr, tenant, blocks int) {
	h.stagers[addr-h.base].SetTenantQuota(c, tenant, blocks)
}

// RunFleet executes every job in the spec over one shared stager tier on
// the simulated platform. Each job's coordinator sleeps to its StartAfter,
// admits the tenant (the control plane reconciles synchronously, so the
// job's directory is populated before its first block), spawns the job's
// endpoints, and releases its capacity when the streams complete. A janitor
// stops the plane and retires the shared tier once the last job is done.
func RunFleet(spec FleetSpec) FleetResult {
	if len(spec.Jobs) == 0 || spec.Stagers < 1 {
		return FleetResult{Fail: "fleet: need ≥ 1 job and ≥ 1 stager"}
	}
	totP, totQ := 0, 0
	for _, j := range spec.Jobs {
		totP += j.P
		totQ += j.Q
	}
	r := build(Spec{Machine: spec.Machine, P: totP, Q: totQ,
		StagingNodes: spec.StagingNodes, Seed: spec.Seed})
	window := spec.Window
	if window <= 0 {
		window = 4
	}
	endpointNodes := append([]fabric.NodeID{}, r.consNodes...)
	for s := 0; s < spec.Stagers; s++ {
		endpointNodes = append(endpointNodes, r.stageNode[s%len(r.stageNode)])
	}
	net := simenv.NewNetwork(r.eng, r.fab, endpointNodes, window)
	store := simenv.NewStore(r.fs, "zipper")

	// Global rank and consumer-address layout: jobs are packed in spec
	// order, so the tenant of any producer rank is a static table lookup —
	// the stagers' receiver threads resolve it without reaching into the
	// registry.
	rankTenant := make([]int, totP)
	prodBase := make([]int, len(spec.Jobs))
	consBase := make([]int, len(spec.Jobs))
	{
		p, q := 0, 0
		for i, j := range spec.Jobs {
			prodBase[i], consBase[i] = p, q
			for k := 0; k < j.P; k++ {
				rankTenant[p+k] = i
			}
			p += j.P
			q += j.Q
		}
	}

	stagers := make([]*staging.Stager, spec.Stagers)
	mem := spec.Machine.MemBandwidth
	for s := 0; s < spec.Stagers; s++ {
		env := simenv.NewEnv(r.eng, r.stageNode[s%len(r.stageNode)], mem)
		spill := simenv.NewStore(r.fs, fmt.Sprintf("zipper-stage%d", s))
		stagers[s] = staging.NewStager(env, staging.Config{
			BufferBlocks: spec.StagerBufferBlocks,
			Managed:      true,
			Tenants:      len(spec.Jobs),
			Tenant:       func(from int) int { return rankTenant[from%totP] },
		}, s, net.Inbox(totQ+s), net, spill)
	}
	addrs := make([]int, spec.Stagers)
	for s := range addrs {
		addrs[s] = totQ + s
	}
	host := &simControlHost{stagers: stagers, base: totQ}
	plane := control.NewPlane(control.Config{
		Interval:         spec.Reconcile,
		PreemptOccupancy: spec.PreemptOccupancy,
		MaxTenants:       len(spec.Jobs),
	}, addrs, spec.StagerBufferBlocks, host)
	planeEnv := simenv.NewEnv(r.eng, r.stageNode[0], mem)
	plane.Start(planeEnv)

	// Shared run state: written only under the engine's one-process-at-a-
	// time scheduling, so no locking is needed.
	results := make([]FleetJobResult, len(spec.Jobs))
	jobsDone := 0
	tenants := make([]*control.Tenant, len(spec.Jobs))
	producers := make([][]*core.Producer, len(spec.Jobs))
	consumers := make([][]*core.Consumer, len(spec.Jobs))

	for i, job := range spec.Jobs {
		i, job := i, job
		w := job.Workload
		blockBytes := w.BlockBytes
		if blockBytes <= 0 {
			blockBytes = 1 << 20
		}
		nBlocks := int(w.BytesPerStep / blockBytes)
		if nBlocks < 1 {
			nBlocks = 1
		}
		coord := simenv.NewEnv(r.eng, r.prodNodes[prodBase[i]], mem)
		coord.Go(fmt.Sprintf("fleet.job%d", i), func(c rt.Ctx) {
			if job.StartAfter > 0 {
				c.Sleep(job.StartAfter)
			}
			tenant, err := plane.Admit(c, control.JobSpec{Name: job.Name, Quota: job.Quota})
			if err != nil {
				results[i] = FleetJobResult{Name: job.Name, Start: c.Now()}
				jobsDone++
				return
			}
			tenants[i] = tenant
			results[i].Name = job.Name
			results[i].Tenant = tenant.ID()
			results[i].Start = c.Now()
			zcfg := core.Config{
				BufferBlocks:   job.BufferBlocks,
				MaxBatchBlocks: job.MaxBatchBlocks,
				RoutePolicy:    job.RoutePolicy,
				DisableSteal:   job.DisableSteal,
			}
			if zcfg.RoutePolicy == core.RouteDirect {
				zcfg.RoutePolicy = core.RouteStaging
			}
			// The tenant's slice of the fleet, with tenant-scoped occupancy
			// as the routing signal: another tenant's backlog never distorts
			// this job's gauges.
			zcfg.Directory = tenant.Directory()
			zcfg.StagerLevel = func(addr int) *flow.Level {
				return host.TenantLevel(addr, tenant.ID())
			}
			cons := make([]*core.Consumer, job.Q)
			for q := 0; q < job.Q; q++ {
				n := 0
				for p := 0; p < job.P; p++ {
					if p*job.Q/job.P == q {
						n++
					}
				}
				env := simenv.NewEnv(r.eng, r.consNodes[consBase[i]+q], mem)
				cons[q] = core.NewConsumer(env, zcfg, consBase[i]+q, n, net.Inbox(consBase[i]+q), store)
			}
			consumers[i] = cons
			prods := make([]*core.Producer, job.P)
			for p := 0; p < job.P; p++ {
				env := simenv.NewEnv(r.eng, r.prodNodes[prodBase[i]+p], mem)
				dest := consBase[i] + p*job.Q/job.P
				prods[p] = core.NewStagedProducer(env, zcfg, prodBase[i]+p, dest, core.NoStager, net, store)
			}
			producers[i] = prods
			// Producer ranks: the fine-grain write loop of RunZipper, one
			// engine process per rank.
			for p := 0; p < job.P; p++ {
				p := p
				penv := simenv.NewEnv(r.eng, r.prodNodes[prodBase[i]+p], mem)
				penv.Go(fmt.Sprintf("fleet.job%d.prod%d", i, p), func(c rt.Ctx) {
					prod := prods[p]
					rankBlocks := int(float64(nBlocks) * w.skew(p))
					if rankBlocks < 1 {
						rankBlocks = 1
					}
					perBlock := w.StepTime / time.Duration(rankBlocks)
					for s := 0; s < w.Steps; s++ {
						for b := 0; b < rankBlocks; b++ {
							c.Sleep(perBlock)
							prod.Write(c, s, int64(b)*blockBytes, nil, blockBytes)
						}
					}
					prod.Close(c)
				})
			}
			// Consumer ranks: analyze at AnalyzePerByte.
			for q := 0; q < job.Q; q++ {
				q := q
				cenv := simenv.NewEnv(r.eng, r.consNodes[consBase[i]+q], mem)
				cenv.Go(fmt.Sprintf("fleet.job%d.cons%d", i, q), func(c rt.Ctx) {
					for {
						blk, ok := cons[q].Read(c)
						if !ok {
							break
						}
						c.Sleep(time.Duration(blk.Bytes) * w.AnalyzePerByte)
					}
				})
			}
			// The coordinator doubles as the job's janitor: once every
			// stream completes, release the tenant's capacity so the plane
			// redistributes the slice to the jobs still running.
			for _, prod := range prods {
				prod.Wait(c)
			}
			for _, cn := range cons {
				cn.Wait(c)
			}
			plane.Finish(c, tenant)
			results[i].End = c.Now()
			jobsDone++
		})
	}

	// The sampler records the per-tenant timeline until the last job is
	// done — the zippertrace fleet view's input.
	var samples []FleetSample
	if spec.Sample > 0 {
		senv := simenv.NewEnv(r.eng, r.stageNode[0], mem)
		senv.Go("fleet.sampler", func(c rt.Ctx) {
			for jobsDone < len(spec.Jobs) {
				c.Sleep(spec.Sample)
				snap := plane.Snapshot()
				sm := FleetSample{At: c.Now(), Tenants: make([]TenantSample, len(spec.Jobs))}
				for _, sn := range snap {
					ts := TenantSample{Stagers: len(sn.Stagers), QuotaBlocks: sn.QuotaBlocks, Active: sn.Active}
					for _, st := range stagers {
						if lv := st.TenantLevel(sn.ID); lv != nil {
							q, _ := lv.Get()
							ts.Resident += q
						}
					}
					sm.Tenants[sn.ID] = ts
				}
				samples = append(samples, sm)
			}
		})
	}

	// The fleet janitor: once every job released its tenant, stop the plane
	// and retire the shared tier (the directories are already empty, so the
	// Retire message is provably last).
	jenv := simenv.NewEnv(r.eng, r.stageNode[0], mem)
	jenv.Go("fleet.janitor", func(c rt.Ctx) {
		interval := spec.Reconcile
		if interval <= 0 {
			interval = 2 * time.Millisecond
		}
		for jobsDone < len(spec.Jobs) {
			c.Sleep(interval)
		}
		plane.Stop(c)
		for s, st := range stagers {
			net.Send(c, totQ+s, rt.Message{Retire: true})
			st.Wait(c)
		}
	})

	if err := r.eng.Run(); err != nil {
		return FleetResult{Fail: err.Error()}
	}

	res := FleetResult{OK: true, E2E: r.eng.Now(),
		Events: plane.Events(), Preemptions: plane.Preemptions(), Samples: samples}
	snap := plane.Snapshot()
	for i := range spec.Jobs {
		jr := &results[i]
		for _, p := range producers[i] {
			st := p.FinalStats()
			jr.BlocksWritten += st.BlocksWritten
			jr.BlocksSent += st.BlocksSent
			jr.BlocksRelayed += st.BlocksRelayed
			jr.BlocksStolen += st.BlocksStolen
			if st.WriteStall > jr.WriteStall {
				jr.WriteStall = st.WriteStall
			}
		}
		for _, cn := range consumers[i] {
			st := cn.FinalStats()
			jr.BlocksAnalyzed += st.BlocksAnalyzed
			jr.BlocksLost += st.BlocksLost
		}
		if tenants[i] != nil {
			for _, st := range stagers {
				jr.BlocksSpilled += st.TenantSpilled(tenants[i].ID())
			}
			for _, sn := range snap {
				if sn.ID == tenants[i].ID() {
					jr.Preempted = sn.Preempted
				}
			}
		}
		res.Jobs = append(res.Jobs, *jr)
	}
	for _, st := range stagers {
		fs := st.FinalStats()
		res.StagerRelayed = append(res.StagerRelayed, fs.BlocksIn)
		res.StagerSpills += fs.BlocksSpilled
		res.StagerNodeSeconds += fs.Finished.Seconds()
	}
	return res
}
