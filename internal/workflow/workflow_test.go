package workflow

import (
	"strings"
	"testing"
	"time"

	"zipper/internal/core"
	"zipper/internal/transport"
)

func testMachine() Machine {
	return Machine{
		Name:          "testrig",
		CoresPerNode:  4,
		LinkBandwidth: 2e9,
		LinkLatency:   2 * time.Microsecond,
		NodesPerLeaf:  8,
		MTU:           512 << 10,
		OSTs:          2,
		OSTBandwidth:  1e9,
		MemBandwidth:  10e9,
	}
}

func testWorkload() Workload {
	return Workload{
		Name:           "unit",
		Steps:          6,
		StepTime:       20 * time.Millisecond,
		HaloBytes:      64 << 10,
		BytesPerStep:   4 << 20,
		AnalyzePerByte: 2 * time.Nanosecond, // 2-rank share ≈ 16.8ms/step < step time
		BlockBytes:     1 << 20,
	}
}

func testSpec() Spec {
	return Spec{
		Machine:  testMachine(),
		Workload: testWorkload(),
		P:        8, Q: 4,
		StagingNodes: 2,
		Window:       4,
		Zipper:       core.Config{BufferBlocks: 8, HighWater: 5},
	}
}

func allMethods() []transport.Method {
	return []transport.Method{
		transport.NewMPIIO(),
		transport.NewDataSpaces(false),
		transport.NewDataSpaces(true),
		transport.NewDIMES(false),
		transport.NewDIMES(true),
		transport.NewFlexpath(),
		transport.NewDecaf(),
	}
}

func TestSimOnlyLowerBound(t *testing.T) {
	res := RunSimOnly(testSpec())
	if !res.OK {
		t.Fatal(res.Fail)
	}
	w := testWorkload()
	min := time.Duration(w.Steps) * w.StepTime
	if res.E2E < min {
		t.Fatalf("sim-only %v < pure kernel time %v", res.E2E, min)
	}
	if res.E2E > 2*min {
		t.Fatalf("sim-only %v too slow (halo overhead blew up)", res.E2E)
	}
}

func TestAnalysisOnly(t *testing.T) {
	res := RunAnalysisOnly(testSpec())
	if !res.OK {
		t.Fatal(res.Fail)
	}
	if res.E2E <= 0 || res.Stages.Analysis <= 0 {
		t.Fatalf("analysis-only result %+v", res)
	}
}

func TestEveryBaselineCompletes(t *testing.T) {
	simOnly := RunSimOnly(testSpec())
	for _, m := range allMethods() {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			res := RunBaseline(testSpec(), m)
			if !res.OK {
				t.Fatalf("%s failed: %s", m.Name(), res.Fail)
			}
			if res.E2E < simOnly.E2E {
				t.Fatalf("%s end-to-end %v below simulation-only %v", m.Name(), res.E2E, simOnly.E2E)
			}
		})
	}
}

func TestZipperCompletesAndBeatsSlowBaselines(t *testing.T) {
	res := RunZipper(testSpec())
	if !res.OK {
		t.Fatal(res.Fail)
	}
	want := int64(8 * 6 * 4) // P × steps × blocks/step
	if res.BlocksSent+res.BlocksStolen != want {
		t.Fatalf("blocks sent %d + stolen %d != %d", res.BlocksSent, res.BlocksStolen, want)
	}
	mpiio := RunBaseline(testSpec(), transport.NewMPIIO())
	if !mpiio.OK {
		t.Fatal(mpiio.Fail)
	}
	if res.E2E >= mpiio.E2E {
		t.Fatalf("Zipper (%v) not faster than MPI-IO (%v)", res.E2E, mpiio.E2E)
	}
}

func TestZipperNearSimOnlyWhenAnalysisFast(t *testing.T) {
	spec := testSpec()
	res := RunZipper(spec)
	simOnly := RunSimOnly(spec)
	if !res.OK || !simOnly.OK {
		t.Fatalf("runs failed: %v / %v", res.Fail, simOnly.Fail)
	}
	// Paper Figure 16: Zipper's end-to-end time is almost equal to
	// simulation-only. Allow 35% slack at this tiny scale.
	if float64(res.E2E) > 1.35*float64(simOnly.E2E) {
		t.Fatalf("Zipper %v not near simulation-only %v", res.E2E, simOnly.E2E)
	}
}

func TestNativeBeatsAdiosFlavour(t *testing.T) {
	spec := testSpec()
	nat := RunBaseline(spec, transport.NewDIMES(false))
	adios := RunBaseline(spec, transport.NewDIMES(true))
	if !nat.OK || !adios.OK {
		t.Fatalf("%v / %v", nat.Fail, adios.Fail)
	}
	if nat.E2E >= adios.E2E {
		t.Fatalf("native DIMES (%v) not faster than ADIOS/DIMES (%v)", nat.E2E, adios.E2E)
	}
	natDS := RunBaseline(spec, transport.NewDataSpaces(false))
	adiosDS := RunBaseline(spec, transport.NewDataSpaces(true))
	if natDS.E2E >= adiosDS.E2E {
		t.Fatalf("native DataSpaces (%v) not faster than ADIOS/DataSpaces (%v)", natDS.E2E, adiosDS.E2E)
	}
}

func TestDecafIntegerOverflowCrash(t *testing.T) {
	spec := testSpec()
	spec.Workload.BytesPerStep = 4 << 30 // 8 ranks × 4 GiB = 2^32 elements/8 > 2^31
	res := RunBaseline(spec, transport.NewDecaf())
	if res.OK {
		t.Fatal("Decaf did not crash past the int32 element limit")
	}
	if !strings.Contains(res.Fail, "overflow") {
		t.Fatalf("unexpected failure: %s", res.Fail)
	}
}

func TestFlexpathCrashThreshold(t *testing.T) {
	fp := transport.NewFlexpath()
	fp.TotalCores = 6528
	res := RunBaseline(testSpec(), fp)
	if res.OK {
		t.Fatal("Flexpath did not fail at its crash threshold")
	}
	if !strings.Contains(res.Fail, "segmentation fault") {
		t.Fatalf("unexpected failure: %s", res.Fail)
	}
}

func TestZipperStealsWhenAnalysisSlow(t *testing.T) {
	spec := testSpec()
	spec.Workload.AnalyzePerByte = 40 * time.Nanosecond // analysis ≫ simulation
	spec.Window = 1
	spec.Zipper = core.Config{BufferBlocks: 6, HighWater: 3}
	res := RunZipper(spec)
	if !res.OK {
		t.Fatal(res.Fail)
	}
	if res.BlocksStolen == 0 {
		t.Fatal("no stealing despite slow analysis")
	}
	// Message-passing-only comparison: disabled stealing must stall more.
	spec.Zipper.DisableSteal = true
	mp := RunZipper(spec)
	if !mp.OK {
		t.Fatal(mp.Fail)
	}
	if res.ProducerStall >= mp.ProducerStall {
		t.Fatalf("stealing did not reduce producer stall: %v vs %v", res.ProducerStall, mp.ProducerStall)
	}
}

func TestTraceCapturesKernelsAndTransports(t *testing.T) {
	spec := testSpec()
	spec.Trace = true
	res := RunBaseline(spec, transport.NewDecaf())
	if !res.OK {
		t.Fatal(res.Fail)
	}
	for _, state := range []string{"CL", "ST", "UD", "PUT", "analyze"} {
		if res.Rec.Total("", state) == 0 {
			t.Fatalf("trace missing state %q", state)
		}
	}
	if res.Rec.StepsIn("sim.", "step", 0, res.E2E) < float64(testWorkload().Steps)-0.5 {
		t.Fatal("step spans incomplete")
	}
}

func TestDeterministicResults(t *testing.T) {
	a := RunBaseline(testSpec(), transport.NewDecaf())
	b := RunBaseline(testSpec(), transport.NewDecaf())
	if a.E2E != b.E2E {
		t.Fatalf("non-deterministic Decaf run: %v vs %v", a.E2E, b.E2E)
	}
	za, zb := RunZipper(testSpec()), RunZipper(testSpec())
	if za.E2E != zb.E2E || za.BlocksStolen != zb.BlocksStolen {
		t.Fatalf("non-deterministic Zipper run: %+v vs %+v", za, zb)
	}
}

func TestXmitWaitVisibleUnderCongestion(t *testing.T) {
	spec := testSpec()
	spec.Workload.BytesPerStep = 16 << 20
	spec.Workload.StepTime = 2 * time.Millisecond // generation outruns drain
	spec.Workload.AnalyzePerByte = time.Nanosecond
	spec.Zipper.DisableSteal = true
	res := RunZipper(spec)
	if !res.OK {
		t.Fatal(res.Fail)
	}
	if res.XmitWaitProducers == 0 {
		t.Fatal("no XmitWait recorded under heavy fan-in")
	}
}
