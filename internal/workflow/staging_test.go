package workflow

import (
	"testing"
	"time"

	"zipper/internal/core"
)

// stagingTestSpec is a small consumer-bound workflow: analysis costs ~2× the
// kernel time, so the direct window exhausts and routing matters.
func stagingTestSpec() Spec {
	return Spec{
		Machine: testMachine(),
		Workload: Workload{
			Name:           "staged",
			Steps:          6,
			StepTime:       80 * time.Millisecond,
			PhaseFrac:      [3]float64{1, 0, 0},
			BytesPerStep:   8 << 20,
			AnalyzePerByte: 40 * time.Nanosecond,
			BlockBytes:     1 << 20,
		},
		P: 4, Q: 2,
		ProducerProcsPerNode: 2,
		ConsumerProcsPerNode: 2,
		StagingNodes:         1,
		Stagers:              1,
		StagerBufferBlocks:   64,
		Window:               2,
		Zipper:               core.Config{BufferBlocks: 8, MaxBatchBlocks: 4},
	}
}

// TestZipperStagingModes runs the three routing policies on the simulated
// platform and checks conservation (every block leaves by exactly one
// channel), that the relay actually carries traffic under staging policies,
// and that hybrid routing does not stall producers more than pure in-situ.
func TestZipperStagingModes(t *testing.T) {
	perProducer := int64(6) * (8 << 20) / (1 << 20) // steps × blocks/step
	total := 4 * perProducer

	results := map[core.RoutePolicy]Result{}
	for _, pol := range []core.RoutePolicy{core.RouteDirect, core.RouteStaging, core.RouteHybrid} {
		spec := stagingTestSpec()
		spec.Zipper.RoutePolicy = pol
		res := RunZipper(spec)
		if !res.OK {
			t.Fatalf("policy %v failed: %s", pol, res.Fail)
		}
		if got := res.BlocksSent + res.BlocksRelayed + res.BlocksStolen; got != total {
			t.Fatalf("policy %v: %d+%d+%d = %d blocks across channels, want %d",
				pol, res.BlocksSent, res.BlocksRelayed, res.BlocksStolen, got, total)
		}
		results[pol] = res
	}
	if results[core.RouteDirect].BlocksRelayed != 0 {
		t.Fatalf("in-situ relayed %d blocks", results[core.RouteDirect].BlocksRelayed)
	}
	if results[core.RouteStaging].BlocksSent != 0 {
		t.Fatalf("in-transit sent %d blocks direct", results[core.RouteStaging].BlocksSent)
	}
	if results[core.RouteStaging].BlocksRelayed == 0 || results[core.RouteHybrid].BlocksRelayed == 0 {
		t.Fatal("staging policies moved nothing through the relay")
	}
	if results[core.RouteHybrid].ProducerStall > results[core.RouteDirect].ProducerStall {
		t.Fatalf("hybrid stalled producers %v, in-situ only %v",
			results[core.RouteHybrid].ProducerStall, results[core.RouteDirect].ProducerStall)
	}
}

// TestZipperStagersZeroUnchanged pins the acceptance guarantee: a Stagers: 0
// run and a Stagers-with-RouteDirect run are the same simulation — identical
// virtual end time, stats, and message counts.
func TestZipperStagersZeroUnchanged(t *testing.T) {
	base := stagingTestSpec()
	base.Stagers = 0
	a := RunZipper(base)

	withTier := stagingTestSpec()
	withTier.Stagers = 2
	withTier.Zipper.RoutePolicy = core.RouteDirect
	b := RunZipper(withTier)

	if !a.OK || !b.OK {
		t.Fatalf("runs failed: %v / %v", a.Fail, b.Fail)
	}
	if a.E2E != b.E2E || a.Messages != b.Messages ||
		a.BlocksSent != b.BlocksSent || a.BlocksStolen != b.BlocksStolen ||
		a.ProducerStall != b.ProducerStall {
		t.Fatalf("RouteDirect with stagers diverged from Stagers:0:\n%+v\n%+v", a, b)
	}
	if b.BlocksRelayed != 0 || b.StagerSpills != 0 {
		t.Fatalf("phantom staging traffic: relayed=%d spills=%d", b.BlocksRelayed, b.StagerSpills)
	}
}
