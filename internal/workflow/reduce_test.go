package workflow

import (
	"testing"

	"zipper/internal/core"
	"zipper/internal/reduce"
)

// TestZipperReducedWireBytes runs the staged sim workflow with and without
// in-transit reduction. The simulated platform must charge the fabric the
// reduced byte counts: fewer bytes on the wire, the savings visible in
// BytesReduced, and a virtual end time no worse than the raw run — the
// SIM-SITU fidelity requirement the reduction model exists to satisfy.
func TestZipperReducedWireBytes(t *testing.T) {
	raw := stagingTestSpec()
	raw.Zipper.RoutePolicy = core.RouteStaging
	base := RunZipper(raw)
	if !base.OK {
		t.Fatalf("raw run failed: %s", base.Fail)
	}
	if base.BytesReduced != 0 {
		t.Fatalf("raw run reports %d bytes reduced", base.BytesReduced)
	}

	for _, mode := range []struct {
		name string
		cfg  reduce.Config
	}{
		{"producer-side", reduce.Config{Operator: reduce.Compress}},
		{"on-pressure", reduce.Config{Operator: reduce.Compress, OnPressure: true}},
	} {
		spec := stagingTestSpec()
		spec.Zipper.RoutePolicy = core.RouteStaging
		spec.Zipper.Reduce = mode.cfg
		res := RunZipper(spec)
		if !res.OK {
			t.Fatalf("%s run failed: %s", mode.name, res.Fail)
		}
		if res.BlocksAnalyzed != base.BlocksAnalyzed {
			t.Fatalf("%s: analyzed %d blocks, raw run analyzed %d",
				mode.name, res.BlocksAnalyzed, base.BlocksAnalyzed)
		}
		if mode.cfg.OnPressure {
			// The gate engages only under pressure; this workload may or
			// may not cross it, but accounting must still balance.
			if res.BytesOnWire+res.BytesReduced != base.BytesOnWire {
				t.Fatalf("%s: %d on wire + %d reduced != raw run's %d",
					mode.name, res.BytesOnWire, res.BytesReduced, base.BytesOnWire)
			}
			continue
		}
		if res.BytesOnWire >= base.BytesOnWire {
			t.Fatalf("%s: %d bytes on wire, raw run charged %d — the simulator is not modeling reduction",
				mode.name, res.BytesOnWire, base.BytesOnWire)
		}
		if res.BytesReduced == 0 {
			t.Fatalf("%s: BytesReduced is zero", mode.name)
		}
		if res.BytesOnWire+res.BytesReduced != base.BytesOnWire {
			t.Fatalf("%s: %d on wire + %d reduced != raw run's %d",
				mode.name, res.BytesOnWire, res.BytesReduced, base.BytesOnWire)
		}
		if res.E2E > base.E2E {
			t.Fatalf("%s: reduced run ended at %v, raw run at %v — cheaper transfers must not slow the sim",
				mode.name, res.E2E, base.E2E)
		}
	}
}
