package workflow

import (
	"testing"
	"time"

	"zipper/internal/core"
	"zipper/internal/transport"
)

func TestZipperPreserveMatchesBlockCounts(t *testing.T) {
	spec := testSpec()
	spec.Zipper.Mode = core.Preserve
	res := RunZipper(spec)
	if !res.OK {
		t.Fatal(res.Fail)
	}
	want := int64(spec.P) * int64(spec.Workload.Steps) *
		(spec.Workload.BytesPerStep / spec.Workload.BlockBytes)
	if res.BlocksSent+res.BlocksStolen != want {
		t.Fatalf("blocks %d+%d != %d", res.BlocksSent, res.BlocksStolen, want)
	}
	if res.Stages.Store == 0 {
		t.Fatal("preserve mode recorded no store-stage time")
	}
}

func TestZipperProducerWallClockBounded(t *testing.T) {
	res := RunZipper(testSpec())
	if !res.OK {
		t.Fatal(res.Fail)
	}
	if res.ProducerWallClock <= 0 || res.ProducerWallClock > res.E2E {
		t.Fatalf("producer wall clock %v outside (0, %v]", res.ProducerWallClock, res.E2E)
	}
	// Producers must at least run their kernels.
	if res.ProducerWallClock < res.Stages.Simulation {
		t.Fatalf("producer wall %v below pure kernel time %v",
			res.ProducerWallClock, res.Stages.Simulation)
	}
}

func TestLAMMPSStyleWorkloadCompletes(t *testing.T) {
	spec := testSpec()
	spec.Workload.Name = "LAMMPS"
	spec.Workload.PhaseFrac = [3]float64{0.7, 0.25, 0.05}
	spec.Workload.BytesPerStep = 5 << 20
	spec.Workload.BlockBytes = 1_258_291 // 1.2 MiB, not a divisor of the step
	res := RunZipper(spec)
	if !res.OK {
		t.Fatal(res.Fail)
	}
	dec := RunBaseline(spec, transport.NewDecaf())
	if !dec.OK {
		t.Fatal(dec.Fail)
	}
	if res.E2E >= dec.E2E {
		t.Fatalf("Zipper (%v) not faster than Decaf (%v) on the MD-shaped workload", res.E2E, dec.E2E)
	}
}

func TestBaselineStageTimesPopulated(t *testing.T) {
	res := RunBaseline(testSpec(), transport.NewDIMES(false))
	if !res.OK {
		t.Fatal(res.Fail)
	}
	if res.Stages.Simulation <= 0 || res.Stages.Transfer <= 0 || res.Stages.Analysis <= 0 {
		t.Fatalf("stage times missing: %+v", res.Stages)
	}
	if res.Stages.Analysis >= res.E2E {
		t.Fatalf("analysis busy %v not below e2e %v", res.Stages.Analysis, res.E2E)
	}
}

func TestAnalysisPerConsumerStep(t *testing.T) {
	w := Workload{BytesPerStep: 1 << 20, AnalyzePerByte: 2 * time.Nanosecond}
	// 8 producers over 4 consumers: share of 2 ranks each.
	got := w.AnalysisPerConsumerStep(8, 4)
	want := 2 * time.Duration(1<<20) * 2 * time.Nanosecond / 2
	_ = want
	if got != time.Duration(2*(1<<20))*2 {
		t.Fatalf("analysis per step = %v", got)
	}
	// Uneven division rounds the share up (max-loaded consumer).
	if w.AnalysisPerConsumerStep(7, 3) != time.Duration(3*(1<<20))*2 {
		t.Fatalf("uneven share = %v", w.AnalysisPerConsumerStep(7, 3))
	}
}

func TestWindowDefaultApplied(t *testing.T) {
	spec := testSpec()
	spec.Window = 0 // must default, not deadlock
	res := RunZipper(spec)
	if !res.OK {
		t.Fatal(res.Fail)
	}
}
