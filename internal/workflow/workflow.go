// Package workflow assembles and runs complete coupled
// simulation + analysis workflows on the simulated platform: it builds the
// machine (fabric + PFS), places producer/consumer/staging/storage ranks on
// nodes, models the simulation application's per-step kernels and halo
// exchanges, and drives either one of the baseline transport methods or the
// Zipper runtime end to end, returning the stage times, traces, and network
// counters the paper's figures report.
package workflow

import (
	"fmt"
	"time"

	"zipper/internal/core"
	"zipper/internal/elastic"
	"zipper/internal/fabric"
	"zipper/internal/fault"
	"zipper/internal/flow"
	"zipper/internal/mpi"
	"zipper/internal/pfs"
	"zipper/internal/place"
	"zipper/internal/rt"
	"zipper/internal/rt/simenv"
	"zipper/internal/sim"
	"zipper/internal/staging"
	"zipper/internal/trace"
	"zipper/internal/transport"
)

// Machine describes a target system (Bridges, Stampede2, or a test rig).
type Machine struct {
	Name                 string
	CoresPerNode         int
	LinkBandwidth        float64 // bytes/s per port
	LinkLatency          time.Duration
	NodesPerLeaf         int
	CoreOversubscription float64
	MTU                  int64
	OSTs                 int     // parallel file system object targets
	OSTBandwidth         float64 // bytes/s per OST
	PFSStripeSize        int64   // Lustre stripe size (0 = 1 MiB)
	PFSBackgroundLoad    float64 // share of PFS consumed by other users
	MemBandwidth         float64 // per-process staging-copy bandwidth
	CongestionPenalty    float64 // ingress congestion efficiency loss
}

// Workload describes the coupled application pair per producer rank.
type Workload struct {
	Name  string
	Steps int
	// StepTime is one rank's pure kernel time per step, split into the
	// collision/streaming/update phases by PhaseFrac.
	StepTime  time.Duration
	PhaseFrac [3]float64
	// HaloBytes is exchanged with each ring neighbor during streaming.
	HaloBytes int64
	// BytesPerStep is the data each producer rank outputs per step.
	BytesPerStep int64
	// AnalyzePerByte is the consumer's analysis cost per byte received.
	AnalyzePerByte time.Duration
	// BlockBytes is Zipper's fine-grain block size.
	BlockBytes int64
	// Skew, when non-empty, is a per-producer output multiplier for
	// RunZipper: rank i emits BytesPerStep·Skew[i] per step, the blocks
	// spread evenly across the unchanged kernel time, so Skew[i] scales
	// both the rank's output rate and its total volume. Missing or
	// non-positive entries mean 1. It models divergent producer rates (AMR
	// refinement, load imbalance) — the regime the load-aware placement
	// policies exist for.
	Skew []float64
}

// skew returns the rank's output multiplier.
func (w Workload) skew(rank int) float64 {
	if rank < len(w.Skew) && w.Skew[rank] > 0 {
		return w.Skew[rank]
	}
	return 1
}

// AnalysisPerConsumerStep is one consumer's busy time per step given its
// share of producers.
func (w Workload) AnalysisPerConsumerStep(p, q int) time.Duration {
	share := (p + q - 1) / q
	return time.Duration(share) * time.Duration(w.BytesPerStep) * w.AnalyzePerByte
}

// Spec is a complete experiment configuration.
type Spec struct {
	Machine  Machine
	Workload Workload
	// P and Q are the producer and consumer rank counts. Which consumer a
	// producer's output lands on is the Placement policy's decision: the
	// default rank-affine placement wires producer p permanently to
	// consumer p·Q/P, the load-aware policies re-resolve per batch.
	P, Q int
	// ProducerProcsPerNode / ConsumerProcsPerNode set placement density;
	// zero selects the machine's core count.
	ProducerProcsPerNode int
	ConsumerProcsPerNode int
	// StagingNodes is the node count reserved for staging servers / links.
	StagingNodes int
	// Zipper tunes the Zipper runtime (RunZipper only); Zipper.RoutePolicy
	// selects in-situ, in-transit, or hybrid routing when Stagers ≥ 1.
	Zipper core.Config
	// Stagers is the number of Zipper in-transit stager ranks (RunZipper
	// only). They are placed round-robin on the staging nodes, so a relayed
	// block crosses the fabric twice — the extra hop the wire model charges
	// in-transit configurations. With Elastic enabled it is the reserved
	// endpoint ceiling: endpoints (and their fabric placements on the
	// StagingNodes headroom) exist up front, but only the live pool runs.
	Stagers int
	// StagerBufferBlocks is each stager's in-memory buffer capacity.
	StagerBufferBlocks int
	// Elastic enables and tunes the staging-tier autoscaler (RunZipper
	// only): the pool starts at Elastic.MinStagers and the scaler grows and
	// drains stager ranks at runtime within the Stagers ceiling.
	Elastic elastic.Config
	// Placement selects the placement-plane policy (RunZipper only): how
	// producers resolve their consumer and stager endpoints per drained
	// batch. The zero value (rank-affine) reproduces the fixed assignments
	// of earlier revisions byte-identically; KindLeastOccupancy and
	// KindHashRing run the endpoints behind epoch-versioned directories
	// with counted stream termination.
	Placement place.Kind
	// Fault enables and tunes the survivable data plane (RunZipper only):
	// leases renewed by heartbeats on every pool-managed stager, write-ahead
	// journaling of admitted traffic, and the eviction/replay/respawn
	// monitor. With Fault.Enabled the staging tier always runs pool-managed,
	// even under rank-affine placement.
	Fault fault.Config
	// FaultKillEpoch, when > 0, arms the deterministic kill injector: the
	// first time the stager pool's membership epoch reaches it, the lowest
	// live member's stager is hard-killed (once per run). Under the
	// simulator's virtual clock the crash lands at a bit-for-bit
	// reproducible point in the run.
	FaultKillEpoch int
	// Window is Zipper's per-consumer receive window in messages.
	Window int
	// Trace enables span recording.
	Trace bool
	// Seed drives PFS background-load jitter.
	Seed int64
}

// StageTimes aggregates the pipeline-stage busy times across ranks
// (maximum over ranks, as the model's bottleneck analysis requires).
type StageTimes struct {
	Simulation time.Duration // producer kernel time
	Transfer   time.Duration // producer output/send busy time
	Store      time.Duration // file-system path busy time (spill + preserve)
	Analysis   time.Duration // consumer analysis busy time
}

// Result is one workflow execution's outcome.
type Result struct {
	Method string
	OK     bool
	Fail   string // crash reason when OK is false
	E2E    time.Duration
	Stages StageTimes
	// ProducerStall is the maximum time a producer spent blocked handing
	// data to the transport.
	ProducerStall time.Duration
	// SenderIdle is Zipper's sender-thread wait time (E2E - send busy),
	// reported for the Figure 14 stacked bars.
	SenderIdle time.Duration
	// ProducerWallClock is when the last producer finished handing off its
	// data (runtime threads drained) — the "simulation wall clock time" of
	// Figure 14.
	ProducerWallClock time.Duration
	// XmitWaitProducers sums the XmitWait counter over producer nodes.
	XmitWaitProducers int64
	// BlocksSent/BlocksRelayed/BlocksStolen/Messages aggregate Zipper
	// producer stats; Messages counts mixed messages (including Fins), so
	// Messages/BlocksSent measures how well batching amortizes the
	// per-message overhead. BlocksRelayed counts blocks that traveled the
	// in-transit staging tier.
	BlocksSent, BlocksRelayed, BlocksStolen, Messages int64
	// BytesOnWire totals the payload bytes every network traversal carried
	// (producer sends plus stager forwards — a relayed block crosses twice),
	// at encoded size when in-transit reduction was in effect, and
	// BytesReduced what reduction kept off those traversals. The simulator
	// charges the fabric the same reduced byte counts, so a reduced run's
	// E2E reflects the cheaper transfers.
	BytesOnWire, BytesReduced int64
	// StagerSpills counts blocks the staging tier overflowed to its spill
	// partitions; StagerMaxQueued is the deepest any stager's memory
	// buffer ran.
	StagerSpills, StagerMaxQueued int64
	// StagerRelayed is each stager instance's received-block total (spawn
	// order), and RelayImbalance their max/mean ratio — 1.0 means every
	// stager carried an equal share of the relay traffic, S means one
	// stager carried everything; zero when nothing was relayed. It is the
	// number the load-aware placement policies shrink when producer output
	// rates diverge.
	StagerRelayed  []int64
	RelayImbalance float64
	// ScaleEvents is the elastic scaler's action timeline (grow/drain), and
	// StagerNodeSeconds the summed provisioned lifetime of stager ranks in
	// virtual seconds — the resource cost a fixed pool pays as pool-size ×
	// run-length. Both are populated for fixed pools too (no events; each
	// stager billed to its finish time) so elastic and fixed runs compare on
	// one axis.
	ScaleEvents       []elastic.Event
	StagerNodeSeconds float64
	// BlocksAnalyzed is the consumers' delivered-block total — with no
	// losses it equals the producers' declared output, even across crashes.
	BlocksAnalyzed int64
	// Fault plane (zero/empty with Fault off): the failure detector's
	// eviction count, the blocks its recovery reader re-forwarded from dead
	// stagers' journals, the blocks the consumers saw declared
	// unrecoverable, and the eviction/recovery timeline.
	Evictions      int64
	ReplayedBlocks int64
	BlocksLost     int64
	FailoverEvents []fault.Event
	Rec            *trace.Recorder
}

// rig is a built machine instance.
type rig struct {
	eng       *sim.Engine
	fab       *fabric.Fabric
	fs        *pfs.PFS
	world     *mpi.World
	prodComm  *mpi.Comm
	consComm  *mpi.Comm
	prodNodes []fabric.NodeID
	consNodes []fabric.NodeID
	stageNode []fabric.NodeID
	rec       *trace.Recorder
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// build constructs the machine and communicators for a spec.
func build(spec Spec) *rig {
	m := spec.Machine
	ppn := spec.ProducerProcsPerNode
	if ppn <= 0 {
		ppn = m.CoresPerNode
	}
	cpn := spec.ConsumerProcsPerNode
	if cpn <= 0 {
		cpn = m.CoresPerNode
	}
	nProd := ceilDiv(spec.P, ppn)
	nCons := ceilDiv(spec.Q, cpn)
	nStage := spec.StagingNodes
	if nStage <= 0 {
		nStage = 1
	}
	osts := m.OSTs
	if osts <= 0 {
		osts = 4
	}
	total := nProd + nCons + nStage + osts + 1
	eng := sim.New()
	fab := fabric.New(eng, fabric.Config{
		Nodes:                total,
		NodesPerLeaf:         m.NodesPerLeaf,
		LinkBandwidth:        m.LinkBandwidth,
		LinkLatency:          m.LinkLatency,
		CoreOversubscription: m.CoreOversubscription,
		MTU:                  m.MTU,
		CongestionPenalty:    m.CongestionPenalty,
	})
	var ostNodes []fabric.NodeID
	for i := 0; i < osts; i++ {
		ostNodes = append(ostNodes, fabric.NodeID(nProd+nCons+nStage+i))
	}
	fs := pfs.New(eng, fab, pfs.Config{
		OSTNodes:       ostNodes,
		MDSNode:        fabric.NodeID(total - 1),
		OSTBandwidth:   m.OSTBandwidth,
		StripeSize:     m.PFSStripeSize,
		BackgroundLoad: m.PFSBackgroundLoad,
		Seed:           spec.Seed,
	})
	r := &rig{eng: eng, fab: fab, fs: fs}
	for p := 0; p < spec.P; p++ {
		r.prodNodes = append(r.prodNodes, fabric.NodeID(p/ppn))
	}
	for q := 0; q < spec.Q; q++ {
		r.consNodes = append(r.consNodes, fabric.NodeID(nProd+q/cpn))
	}
	for s := 0; s < nStage; s++ {
		r.stageNode = append(r.stageNode, fabric.NodeID(nProd+nCons+s))
	}
	r.world = mpi.NewWorld(eng, fab, mpi.Config{})
	r.prodComm = r.world.AddRanks(r.prodNodes)
	r.consComm = r.world.AddRanks(r.consNodes)
	if spec.Trace {
		r.rec = trace.NewRecorder()
	}
	return r
}

// phases returns the per-phase durations of one simulation step.
func phases(w Workload) [3]time.Duration {
	f := w.PhaseFrac
	if f[0]+f[1]+f[2] <= 0 {
		f = [3]float64{0.45, 0.35, 0.20} // CL/ST/UD split seen in Figure 6
	}
	var out [3]time.Duration
	for i := range out {
		out[i] = time.Duration(float64(w.StepTime) * f[i])
	}
	return out
}

// simStep models one time step of the producer application: collision
// kernel, streaming with ring halo exchanges, update kernel.
func simStep(r *mpi.Rank, w Workload, rec *trace.Recorder, step int) {
	p := r.Proc()
	ph := phases(w)
	name := fmt.Sprintf("sim.%d", r.Local())
	stepStart := p.Now()
	t0 := p.Now()
	p.Delay(ph[0])
	if rec != nil {
		rec.Add(name, "CL", t0, p.Now())
	}
	t1 := p.Now()
	if size := r.Comm().Size(); size > 1 && w.HaloBytes > 0 {
		right := (r.Local() + 1) % size
		left := (r.Local() + size - 1) % size
		sr := p.Now()
		r.Comm().Sendrecv(r, right, 100+step, w.HaloBytes, nil, left, 100+step)
		r.Comm().Sendrecv(r, left, 200+step, w.HaloBytes, nil, right, 200+step)
		if rec != nil {
			rec.Add(name, "MPI_Sendrecv", sr, p.Now())
		}
	}
	p.Delay(ph[1])
	if rec != nil {
		rec.Add(name, "ST", t1, p.Now())
	}
	t2 := p.Now()
	p.Delay(ph[2])
	if rec != nil {
		rec.Add(name, "UD", t2, p.Now())
		rec.Add(name, "step", stepStart, p.Now())
	}
}

// RunSimOnly measures the simulation application alone: the lower bound the
// paper plots in Figures 16 and 18.
func RunSimOnly(spec Spec) Result {
	r := build(spec)
	w := spec.Workload
	r.prodComm.Launch("sim", func(rank *mpi.Rank) {
		for s := 0; s < w.Steps; s++ {
			simStep(rank, w, r.rec, s)
		}
	})
	if err := r.eng.Run(); err != nil {
		return Result{Method: "Simulation-only", Fail: err.Error()}
	}
	return Result{
		Method: "Simulation-only",
		OK:     true,
		E2E:    r.eng.Now(),
		Stages: StageTimes{Simulation: time.Duration(w.Steps) * w.StepTime},
		Rec:    r.rec,
	}
}

// RunAnalysisOnly measures the analysis application alone (Figure 2's
// "analysis time" bar): every consumer busy-analyzes its share per step with
// data already in memory.
func RunAnalysisOnly(spec Spec) Result {
	r := build(spec)
	w := spec.Workload
	per := w.AnalysisPerConsumerStep(spec.P, spec.Q)
	r.consComm.Launch("ana", func(rank *mpi.Rank) {
		for s := 0; s < w.Steps; s++ {
			rank.Proc().Delay(per)
		}
	})
	if err := r.eng.Run(); err != nil {
		return Result{Method: "Analysis-only", Fail: err.Error()}
	}
	return Result{
		Method: "Analysis-only",
		OK:     true,
		E2E:    r.eng.Now(),
		Stages: StageTimes{Analysis: time.Duration(w.Steps) * per},
		Rec:    r.rec,
	}
}

// RunBaseline executes the workflow with one of the seven baseline coupling
// methods.
func RunBaseline(spec Spec, method transport.Method) Result {
	r := build(spec)
	w := spec.Workload
	pl := &transport.Platform{
		Eng: r.eng, Fab: r.fab, FS: r.fs, World: r.world,
		Prod: r.prodComm, Cons: r.consComm,
		ProdNodes: r.prodNodes, ConsNodes: r.consNodes, StagingNodes: r.stageNode,
		Rec: r.rec, P: spec.P, Q: spec.Q, Steps: w.Steps, BytesPerStep: w.BytesPerStep,
	}
	if err := method.Validate(pl); err != nil {
		return Result{Method: method.Name(), Fail: err.Error()}
	}
	method.Setup(pl)

	putBusy := make([]time.Duration, spec.P)
	anaBusy := make([]time.Duration, spec.Q)
	perStep := w.AnalysisPerConsumerStep(spec.P, spec.Q)

	r.prodComm.Launch("sim", func(rank *mpi.Rank) {
		wr := method.Writer(rank)
		for s := 0; s < w.Steps; s++ {
			simStep(rank, w, r.rec, s)
			t0 := rank.Proc().Now()
			wr.Put(s)
			putBusy[rank.Local()] += rank.Proc().Now() - t0
		}
		wr.Close()
	})
	r.consComm.Launch("ana", func(rank *mpi.Rank) {
		rd := method.Reader(rank)
		for s := 0; s < w.Steps; s++ {
			rd.Get(s)
			t0 := rank.Proc().Now()
			rank.Proc().Delay(perStep)
			anaBusy[rank.Local()] += rank.Proc().Now() - t0
			if r.rec != nil {
				r.rec.Add(fmt.Sprintf("ana.%d", rank.Local()), "analyze", t0, rank.Proc().Now())
			}
			rd.Done(s)
		}
		rd.Close()
	})
	if err := r.eng.Run(); err != nil {
		return Result{Method: method.Name(), Fail: err.Error()}
	}
	res := Result{
		Method: method.Name(),
		OK:     true,
		E2E:    r.eng.Now(),
		Stages: StageTimes{
			Simulation: time.Duration(w.Steps) * w.StepTime,
			Transfer:   maxDur(putBusy),
			Analysis:   maxDur(anaBusy),
		},
		ProducerStall:     maxDur(putBusy), // Put time is transfer + stall for baselines
		XmitWaitProducers: sumXmitWait(r),
		Rec:               r.rec,
	}
	return res
}

// RunZipper executes the workflow on the Zipper runtime.
func RunZipper(spec Spec) Result {
	r := build(spec)
	w := spec.Workload
	window := spec.Window
	if window <= 0 {
		window = 4
	}
	zcfg := spec.Zipper
	zcfg.Recorder = r.rec
	// The staging tier only exists when routing can reach it; with
	// RouteDirect the run is identical to a Stagers: 0 run. A stager with
	// no assigned producer would never see its Fins, so the tier never
	// outnumbers the producers.
	nStage := spec.Stagers
	if zcfg.RoutePolicy == core.RouteDirect {
		nStage = 0
	}
	if nStage > spec.P {
		nStage = spec.P
	}
	endpointNodes := append([]fabric.NodeID{}, r.consNodes...)
	for s := 0; s < nStage; s++ {
		endpointNodes = append(endpointNodes, r.stageNode[s%len(r.stageNode)])
	}
	net := simenv.NewNetwork(r.eng, r.fab, endpointNodes, window)
	store := simenv.NewStore(r.fs, "zipper")

	producers := make([]*core.Producer, spec.P)
	consumers := make([]*core.Consumer, spec.Q)
	var allStagers []*staging.Stager // every stager instance, for stats
	var scaler *elastic.Scaler
	var fixedPool *place.Directory // placement-directed fixed tier (no scaler)
	elasticOn := spec.Elastic.Enabled && nStage > 0
	placed := spec.Placement != place.KindRankAffine
	faultOn := spec.Fault.Enabled && nStage > 0
	var fcfg fault.Config
	if faultOn {
		fcfg = spec.Fault.WithDefaults()
	}
	// Pool-managed tier state shared by the fault plane: every spawned
	// instance with its journal, the pool the leases live in, and the spawn
	// hook the monitor respawns through. All of it is touched only under the
	// engine's one-process-at-a-time scheduling, so no locking is needed.
	var insts []*stagerInst
	var faultPool *place.Directory
	var spawnFn func(slot int) *staging.Stager
	var monitor *fault.Monitor
	for q := 0; q < spec.Q; q++ {
		n := 0
		for p := 0; p < spec.P; p++ {
			if p*spec.Q/spec.P == q {
				n++
			}
		}
		if placed {
			// A placement-resolved consumer can receive from any producer,
			// and every producer Fin-broadcasts to every consumer.
			n = spec.P
		}
		env := simenv.NewEnv(r.eng, r.consNodes[q], spec.Machine.MemBandwidth)
		consumers[q] = core.NewConsumer(env, zcfg, q, n, net.Inbox(q), store)
	}
	if placed {
		// The consumer directory: static membership, policy-driven
		// per-batch resolution fed by the consumer-buffer occupancy gauges.
		cdir := place.New(spec.Placement.New(), func(addr int) *flow.Level {
			return consumers[addr].Level()
		})
		for q := 0; q < spec.Q; q++ {
			cdir.Add(q)
		}
		zcfg.ConsumerDirectory = cdir
	}
	// mkManaged builds one pool-managed stager endpoint on a reserved slot,
	// wiring the fault plane (journal, heartbeat, lease, unlease) when it is
	// on. Both pool-managed tiers — elastic and fixed — spawn through it, so
	// the monitor's respawn path reuses the exact construction.
	mkManaged := func(slot int, slots []*staging.Stager, pool *place.Directory) *staging.Stager {
		env := simenv.NewEnv(r.eng, r.stageNode[slot%len(r.stageNode)], spec.Machine.MemBandwidth)
		scfg := staging.Config{
			BufferBlocks:   spec.StagerBufferBlocks,
			MaxBatchBlocks: zcfg.MaxBatchBlocks,
			MaxBatchBytes:  zcfg.MaxBatchBytes,
			Managed:        true,
			Reduce:         zcfg.Reduce,
			Recorder:       r.rec,
		}
		spill := simenv.NewStore(r.fs, fmt.Sprintf("zipper-stage%d", slot))
		in := &stagerInst{slot: slot, spill: spill}
		if faultOn {
			// Each instance gets a fresh write-ahead journal — a respawned
			// slot must not replay its predecessor's records — and a liveness
			// lease renewed by its heartbeat thread; a clean drain releases
			// the lease synchronously, so only a crash ever lapses it.
			addr := spec.Q + slot
			in.journal = staging.NewJournal()
			scfg.Journal = in.journal
			scfg.HeartbeatInterval = fcfg.Heartbeat
			scfg.Heartbeat = func(c rt.Ctx) { pool.Beat(addr, c.Now()) }
			scfg.Unlease = func() { pool.Unlease(addr) }
			pool.Lease(addr, fcfg.LeaseTTL, r.eng.Now())
		}
		st := staging.NewStager(env, scfg, slot, net.Inbox(spec.Q+slot), net, spill)
		in.st = st
		slots[slot] = st
		allStagers = append(allStagers, st)
		insts = append(insts, in)
		return st
	}
	switch {
	case elasticOn:
		// Elastic staging tier: reserve the endpoint ceiling, spawn the
		// starting pool as managed stagers, and let the scaler grow and
		// drain ranks at runtime over the StagingNodes headroom. The pool
		// resolves through the placement policy.
		ecfg := spec.Elastic.WithDefaults(nStage)
		if faultOn {
			// Draining a member that may already be dead is unsound (its
			// Retire would never be consumed); fault mode trades mid-run
			// drains for crash safety.
			ecfg.DisableDrain = true
		}
		slots := make([]*staging.Stager, ecfg.MaxStagers)
		stagerLevel := func(addr int) *flow.Level {
			if st := slots[addr-spec.Q]; st != nil {
				return st.Level()
			}
			return nil
		}
		pool := place.New(spec.Placement.New(), stagerLevel)
		spawn := func(slot int) *staging.Stager { return mkManaged(slot, slots, pool) }
		faultPool, spawnFn = pool, spawn
		var initial []*flow.StagerFlows
		for s := 0; s < ecfg.MinStagers; s++ {
			st := spawn(s)
			pool.Add(spec.Q + s)
			initial = append(initial, st.Flows())
		}
		zcfg.Directory = pool
		zcfg.StagerLevel = stagerLevel
		scalerEnv := simenv.NewEnv(r.eng, r.stageNode[0], spec.Machine.MemBandwidth)
		scaler = elastic.NewScaler(scalerEnv, ecfg, pool,
			&simHost{spawn: spawn, slots: slots, net: net, base: spec.Q}, spec.Q, initial)
		scaler.Start()
	case (placed || faultOn) && nStage > 0:
		// Placement-directed (or fault-protected) fixed tier: the same
		// pool-managed endpoints as the elastic tier over a static
		// membership, no scaler. Producers resolve their stager per drained
		// batch through the placement policy; a janitor retires the
		// endpoints once the producers finish and counted termination
		// completes the consumers' streams from the flushed deliveries. The
		// fault plane needs this shape even under rank-affine placement: an
		// eviction is a membership epoch, and counted Fins are what let
		// replayed blocks land after their relay died.
		slots := make([]*staging.Stager, nStage)
		stagerLevel := func(addr int) *flow.Level {
			if st := slots[addr-spec.Q]; st != nil {
				return st.Level()
			}
			return nil
		}
		fixedPool = place.New(spec.Placement.New(), stagerLevel)
		for s := 0; s < nStage; s++ {
			mkManaged(s, slots, fixedPool)
			fixedPool.Add(spec.Q + s)
		}
		faultPool = fixedPool
		spawnFn = func(slot int) *staging.Stager { return mkManaged(slot, slots, fixedPool) }
		zcfg.Directory = fixedPool
		zcfg.StagerLevel = stagerLevel
	case nStage > 0:
		for s := 0; s < nStage; s++ {
			n := 0
			for p := 0; p < spec.P; p++ {
				if p%nStage == s {
					n++
				}
			}
			env := simenv.NewEnv(r.eng, r.stageNode[s%len(r.stageNode)], spec.Machine.MemBandwidth)
			scfg := staging.Config{
				BufferBlocks:   spec.StagerBufferBlocks,
				MaxBatchBlocks: zcfg.MaxBatchBlocks,
				MaxBatchBytes:  zcfg.MaxBatchBytes,
				Producers:      n,
				Reduce:         zcfg.Reduce,
				Recorder:       r.rec,
			}
			spill := simenv.NewStore(r.fs, fmt.Sprintf("zipper-stage%d", s))
			st := staging.NewStager(env, scfg, s, net.Inbox(spec.Q+s), net, spill)
			allStagers = append(allStagers, st)
		}
		fixed := allStagers
		zcfg.StagerLevel = func(addr int) *flow.Level {
			return fixed[addr-spec.Q].Level()
		}
	}
	for p := 0; p < spec.P; p++ {
		env := simenv.NewEnv(r.eng, r.prodNodes[p], spec.Machine.MemBandwidth)
		stager := core.NoStager
		if nStage > 0 && !elasticOn && !placed {
			stager = spec.Q + p%nStage
		}
		producers[p] = core.NewStagedProducer(env, zcfg, p, p*spec.Q/spec.P, stager, net, store)
	}
	if faultOn && faultPool != nil {
		// The failure detector: sweeps the lease table every heartbeat,
		// evicts lapsed members, and drives the fence → replay → respawn
		// recovery sequence through the simulated host.
		menv := simenv.NewEnv(r.eng, r.stageNode[0], spec.Machine.MemBandwidth)
		monitor = fault.NewMonitor(menv, fcfg, faultPool, &simFaultHost{
			insts: &insts, spawn: spawnFn, net: net, pool: faultPool, scaler: scaler, base: spec.Q,
		})
		monitor.Start()
	}
	prodsDone := false
	if faultOn && spec.FaultKillEpoch > 0 && faultPool != nil {
		// The deterministic kill injector: the first time the pool's
		// membership epoch reaches FaultKillEpoch, hard-kill the lowest live
		// member's stager. Clocked on virtual time, so the same spec crashes
		// at the same instant in every run.
		kenv := simenv.NewEnv(r.eng, r.stageNode[0], spec.Machine.MemBandwidth)
		kenv.Go("fault.injector", func(c rt.Ctx) {
			for !prodsDone {
				if faultPool.Epoch() >= int64(spec.FaultKillEpoch) {
					if members := faultPool.Members(); len(members) > 0 {
						slot := members[0] - spec.Q
						for i := len(insts) - 1; i >= 0; i-- {
							if insts[i].slot == slot {
								if st := insts[i].st; !st.Killed(c) && !st.Drained(c) {
									st.Kill(c)
								}
								break
							}
						}
					}
					return
				}
				c.Sleep(fcfg.Heartbeat)
			}
		})
	}
	if scaler != nil {
		// The janitor closes the loop's lifetime: once every producer has
		// handed off its data, no relay traffic can appear, so the failure
		// detector runs its final forced sweep (replays must land while the
		// consumers are still counting, and no respawn may interleave with
		// the shutdown), then the scaler stops and retires the remaining
		// pool — the flush completes the consumers' counted streams.
		jenv := simenv.NewEnv(r.eng, r.stageNode[0], spec.Machine.MemBandwidth)
		jenv.Go("elastic.janitor", func(c rt.Ctx) {
			for _, p := range producers {
				p.Wait(c)
			}
			prodsDone = true
			if monitor != nil {
				monitor.Stop(c)
			}
			scaler.Stop(c)
		})
	}
	if fixedPool != nil {
		// Same lifetime rule for the pool-managed fixed tier: stop the
		// failure detector, then retire every endpoint the elastic way (out
		// of the membership, quiesce in-flight claims, then the
		// provably-last Retire message) once the producers are done.
		jenv := simenv.NewEnv(r.eng, r.stageNode[0], spec.Machine.MemBandwidth)
		jenv.Go("place.janitor", func(c rt.Ctx) {
			for _, p := range producers {
				p.Wait(c)
			}
			prodsDone = true
			if monitor != nil {
				monitor.Stop(c)
			}
			fixedPool.RetireAll(c, func(addr int) {
				net.Send(c, addr, rt.Message{Retire: true})
			})
		})
	}

	blockBytes := w.BlockBytes
	if blockBytes <= 0 {
		blockBytes = 1 << 20
	}
	nBlocks := int(w.BytesPerStep / blockBytes)
	if nBlocks < 1 {
		nBlocks = 1
	}

	anaBusy := make([]time.Duration, spec.Q)
	r.prodComm.Launch("sim", func(rank *mpi.Rank) {
		env := simenv.NewEnv(r.eng, r.prodNodes[rank.Local()], spec.Machine.MemBandwidth)
		prod := producers[rank.Local()]
		p := rank.Proc()
		c := env.WrapProc(p)
		name := fmt.Sprintf("sim.%d", rank.Local())
		// Workload.Skew scales this rank's per-step output volume with the
		// kernel time unchanged: a skewed rank emits more blocks, faster.
		rankBlocks := int(float64(nBlocks) * w.skew(rank.Local()))
		if rankBlocks < 1 {
			rankBlocks = 1
		}
		perBlock := w.StepTime / time.Duration(rankBlocks)
		for s := 0; s < w.Steps; s++ {
			stepStart := p.Now()
			// Halo exchange at the step boundary, as in the baseline app.
			if size := rank.Comm().Size(); size > 1 && w.HaloBytes > 0 {
				right := (rank.Local() + 1) % size
				left := (rank.Local() + size - 1) % size
				sr := p.Now()
				rank.Comm().Sendrecv(rank, right, 100+s, w.HaloBytes, nil, left, 100+s)
				rank.Comm().Sendrecv(rank, left, 200+s, w.HaloBytes, nil, right, 200+s)
				if r.rec != nil {
					r.rec.Add(name, "MPI_Sendrecv", sr, p.Now())
				}
			}
			// Fine-grain pipelining: each block is handed to the runtime as
			// soon as it is computed, not in an end-of-step burst — this is
			// the data-availability-driven design of §4.1.
			computeStart := p.Now()
			for b := 0; b < rankBlocks; b++ {
				p.Delay(perBlock)
				prod.Write(c, s, int64(b)*blockBytes, nil, blockBytes)
			}
			if r.rec != nil {
				r.rec.Add(name, "compute", computeStart, p.Now())
				r.rec.Add(name, "step", stepStart, p.Now())
			}
		}
		prod.Close(c)
		prod.Wait(c)
	})
	r.consComm.Launch("ana", func(rank *mpi.Rank) {
		env := simenv.NewEnv(r.eng, r.consNodes[rank.Local()], spec.Machine.MemBandwidth)
		cons := consumers[rank.Local()]
		c := env.WrapProc(rank.Proc())
		for {
			blk, ok := cons.Read(c)
			if !ok {
				break
			}
			t0 := rank.Proc().Now()
			rank.Proc().Delay(time.Duration(blk.Bytes) * w.AnalyzePerByte)
			anaBusy[rank.Local()] += rank.Proc().Now() - t0
			if r.rec != nil {
				r.rec.Add(fmt.Sprintf("ana.%d", rank.Local()), "analyze", t0, rank.Proc().Now())
			}
		}
		cons.Wait(c)
	})
	if err := r.eng.Run(); err != nil {
		return Result{Method: "Zipper", Fail: err.Error()}
	}

	res := Result{
		Method: "Zipper",
		OK:     true,
		E2E:    r.eng.Now(),
		Rec:    r.rec,
	}
	var maxSend, maxStall, maxStore time.Duration
	for _, p := range producers {
		st := p.FinalStats()
		res.BlocksSent += st.BlocksSent
		res.BlocksRelayed += st.BlocksRelayed
		res.BlocksStolen += st.BlocksStolen
		res.Messages += st.Messages
		res.BytesOnWire += st.BytesOnWire
		res.BytesReduced += st.BytesReduced
		if st.SendBusy > maxSend {
			maxSend = st.SendBusy
		}
		if st.WriteStall > maxStall {
			maxStall = st.WriteStall
		}
		if st.StealBusy > maxStore {
			maxStore = st.StealBusy
		}
		if st.Finished > res.ProducerWallClock {
			res.ProducerWallClock = st.Finished
		}
	}
	var storeCons time.Duration
	for _, c := range consumers {
		st := c.FinalStats()
		res.BlocksAnalyzed += st.BlocksAnalyzed
		res.BlocksLost += st.BlocksLost
		if st.StoreBusy > storeCons {
			storeCons = st.StoreBusy
		}
	}
	if monitor != nil {
		res.Evictions = monitor.Evictions()
		res.ReplayedBlocks = monitor.ReplayedBlocks()
		res.FailoverEvents = monitor.Events()
	}
	for _, s := range allStagers {
		st := s.FinalStats()
		res.StagerSpills += st.BlocksSpilled
		res.BytesOnWire += st.BytesOnWire
		res.BytesReduced += st.BytesReduced
		res.StagerRelayed = append(res.StagerRelayed, st.BlocksIn)
		if st.MaxQueued > res.StagerMaxQueued {
			res.StagerMaxQueued = st.MaxQueued
		}
		if scaler == nil {
			res.StagerNodeSeconds += st.Finished.Seconds()
		}
	}
	if n := len(res.StagerRelayed); n > 0 {
		var total, peak int64
		for _, v := range res.StagerRelayed {
			total += v
			if v > peak {
				peak = v
			}
		}
		if total > 0 {
			res.RelayImbalance = float64(peak) * float64(n) / float64(total)
		}
	}
	if scaler != nil {
		res.ScaleEvents = scaler.Events()
		res.StagerNodeSeconds = scaler.NodeSeconds()
	}
	res.Stages = StageTimes{
		Simulation: time.Duration(w.Steps) * w.StepTime,
		Transfer:   maxSend,
		Store:      maxStore + storeCons,
		Analysis:   maxDur(anaBusy),
	}
	res.ProducerStall = maxStall
	res.SenderIdle = res.E2E - maxSend
	res.XmitWaitProducers = sumXmitWait(r)
	return res
}

// simHost adapts the simulated workflow wiring to elastic.Host: spawned
// stagers are fresh engine-process sets placed round-robin on the staging
// nodes, and Retire travels the simulated network like any other message.
// All fields are written only under the engine's one-process-at-a-time
// scheduling, so no locking is needed.
type simHost struct {
	spawn func(slot int) *staging.Stager
	slots []*staging.Stager
	net   *simenv.Network
	base  int // transport address of slot 0
}

func (h *simHost) Spawn(c rt.Ctx, slot int) (*flow.StagerFlows, error) {
	return h.spawn(slot).Flows(), nil
}

func (h *simHost) Retire(c rt.Ctx, slot int) {
	h.net.Send(c, h.base+slot, rt.Message{Retire: true})
}

func (h *simHost) Drained(c rt.Ctx, slot int) bool {
	st := h.slots[slot]
	return st == nil || st.Drained(c)
}

// stagerInst tracks one stager endpoint instance and its fault-plane
// attachments for the lifetime of a run. A slot can accumulate several
// instances as the monitor respawns replacements into it; the latest entry
// for a slot is the current occupant.
type stagerInst struct {
	slot           int
	st             *staging.Stager
	journal        *staging.Journal
	spill          rt.BlockStore
	evicted        bool
	replayed, lost int64
}

// simFaultHost adapts the simulated workflow wiring to fault.Host: evicted
// endpoints are fenced and joined in-engine, their journals replayed through
// the simulated network, and replacements spawned with the same builder the
// initial tier used. All fields are written only under the engine's
// one-process-at-a-time scheduling, so no locking is needed.
type simFaultHost struct {
	insts  *[]*stagerInst
	spawn  func(slot int) *staging.Stager
	net    *simenv.Network
	pool   *place.Directory
	scaler *elastic.Scaler
	base   int // transport address of slot 0
}

// latest returns the current (most recently spawned) instance on a slot.
func (h *simFaultHost) latest(slot int) *stagerInst {
	insts := *h.insts
	for i := len(insts) - 1; i >= 0; i-- {
		if insts[i].slot == slot {
			return insts[i]
		}
	}
	return nil
}

func (h *simFaultHost) Dead(c rt.Ctx, addr int) bool {
	in := h.latest(addr - h.base)
	return in != nil && in.st.Killed(c)
}

func (h *simFaultHost) Evict(c rt.Ctx, addr int) {
	in := h.latest(addr - h.base)
	if in == nil {
		return
	}
	if h.scaler != nil {
		h.scaler.Crashed(addr - h.base)
	}
	if !in.st.Killed(c) {
		// Fence: a false-positive eviction must not leave a live occupant
		// flushing blocks the recovery reader is about to replay.
		in.st.Kill(c)
	}
	if in.st.NeedsRetire(c) {
		h.net.Send(c, addr, rt.Message{Retire: true})
	}
	in.st.Wait(c)
	in.evicted = true
}

func (h *simFaultHost) Recover(c rt.Ctx, addr int) (replayed, orphans, lost int64) {
	in := h.latest(addr - h.base)
	if in == nil || in.journal == nil {
		return 0, 0, 0
	}
	replayed, orphans, lost = staging.Replay(c, in.journal, in.spill, h.net)
	in.replayed += replayed
	in.lost += lost
	return replayed, orphans, lost
}

func (h *simFaultHost) Respawn(c rt.Ctx, addr int) bool {
	if h.spawn == nil {
		return false
	}
	st := h.spawn(addr - h.base)
	h.pool.Add(addr)
	if h.scaler != nil {
		h.scaler.Respawned(addr-h.base, st.Flows())
	}
	return true
}

func maxDur(ds []time.Duration) time.Duration {
	var m time.Duration
	for _, d := range ds {
		if d > m {
			m = d
		}
	}
	return m
}

func sumXmitWait(r *rig) int64 {
	seen := map[fabric.NodeID]bool{}
	var total int64
	for _, n := range r.prodNodes {
		if !seen[n] {
			seen[n] = true
			total += r.fab.NodeCounters(n).XmitWait
		}
	}
	return total
}
