package workflow

import (
	"testing"
	"time"

	"zipper/internal/core"
	"zipper/internal/elastic"
)

// elasticTestSpec is the staging test workflow with the autoscaler on: a
// consumer-bound run over a 3-endpoint ceiling starting from a 1-stager
// pool.
func elasticTestSpec() Spec {
	spec := stagingTestSpec()
	spec.Stagers = 3
	spec.Zipper.RoutePolicy = core.RouteStaging
	spec.Elastic = elastic.Config{
		Enabled: true, MinStagers: 1, MaxStagers: 3,
		Interval: time.Millisecond, Cooldown: 5 * time.Millisecond,
	}
	return spec
}

// TestZipperElasticWorkflow runs the autoscaled staging tier end to end on
// the simulated platform: no block may be lost across membership changes,
// the consumer-bound burst must grow the pool beyond its floor, and the
// elastic run must bill fewer stager node-seconds than the same ceiling
// held statically for the whole run.
func TestZipperElasticWorkflow(t *testing.T) {
	total := int64(4) * 6 * (8 << 20) / (1 << 20) // P × steps × blocks/step

	res := RunZipper(elasticTestSpec())
	if !res.OK {
		t.Fatalf("elastic run failed: %s", res.Fail)
	}
	if got := res.BlocksSent + res.BlocksRelayed + res.BlocksStolen; got != total {
		t.Fatalf("conservation broken: %d+%d+%d = %d blocks, want %d",
			res.BlocksSent, res.BlocksRelayed, res.BlocksStolen, got, total)
	}
	if res.BlocksRelayed != total {
		t.Fatalf("RouteStaging relayed %d of %d blocks", res.BlocksRelayed, total)
	}
	grows := 0
	for _, ev := range res.ScaleEvents {
		if ev.PoolSize < 1 || ev.PoolSize > 3 {
			t.Fatalf("pool size %d escaped [1,3]", ev.PoolSize)
		}
		if ev.Action == "grow" {
			grows++
		}
	}
	if grows == 0 {
		t.Fatal("a consumer-bound run never grew the pool")
	}
	if res.StagerNodeSeconds <= 0 {
		t.Fatalf("StagerNodeSeconds = %v, want > 0", res.StagerNodeSeconds)
	}

	// The same ceiling as a fixed pool: every endpoint is provisioned for
	// the whole run, so the elastic run must come in under it.
	fixed := elasticTestSpec()
	fixed.Elastic = elastic.Config{}
	fres := RunZipper(fixed)
	if !fres.OK {
		t.Fatalf("fixed run failed: %s", fres.Fail)
	}
	if res.StagerNodeSeconds >= fres.StagerNodeSeconds {
		t.Fatalf("elastic billed %.3f stager node-seconds, fixed ceiling %.3f — no saving",
			res.StagerNodeSeconds, fres.StagerNodeSeconds)
	}
}

// TestZipperElasticDeterministic pins the whole elastic workflow's simenv
// reproducibility, scaling timeline included.
func TestZipperElasticDeterministic(t *testing.T) {
	a := RunZipper(elasticTestSpec())
	b := RunZipper(elasticTestSpec())
	if !a.OK || !b.OK {
		t.Fatalf("runs failed: %v / %v", a.Fail, b.Fail)
	}
	if a.E2E != b.E2E || a.BlocksRelayed != b.BlocksRelayed || a.StagerNodeSeconds != b.StagerNodeSeconds {
		t.Fatalf("elastic runs diverged:\n%+v\n%+v", a, b)
	}
	if len(a.ScaleEvents) != len(b.ScaleEvents) {
		t.Fatalf("timelines diverged: %d vs %d events", len(a.ScaleEvents), len(b.ScaleEvents))
	}
	for i := range a.ScaleEvents {
		if a.ScaleEvents[i] != b.ScaleEvents[i] {
			t.Fatalf("event %d diverged: %+v vs %+v", i, a.ScaleEvents[i], b.ScaleEvents[i])
		}
	}
}

// TestZipperElasticOffPinned pins the acceptance guarantee alongside the
// unmodified TestZipperStagersZeroUnchanged: with Elastic disabled the run
// is byte-identical to today's fixed pool — the same virtual end time,
// stats, and message counts whether the Elastic knobs are zero or populated
// but off, and no scaling machinery leaks into the result.
func TestZipperElasticOffPinned(t *testing.T) {
	zero := stagingTestSpec()
	zero.Zipper.RoutePolicy = core.RouteHybrid
	a := RunZipper(zero)

	populated := stagingTestSpec()
	populated.Zipper.RoutePolicy = core.RouteHybrid
	populated.Elastic = elastic.Config{
		Enabled: false, MinStagers: 2, MaxStagers: 3,
		GrowOccupancy: 0.5, DrainOccupancy: 0.1,
		Interval: time.Millisecond, Cooldown: time.Millisecond,
	}
	b := RunZipper(populated)

	if !a.OK || !b.OK {
		t.Fatalf("runs failed: %v / %v", a.Fail, b.Fail)
	}
	if a.E2E != b.E2E || a.Messages != b.Messages ||
		a.BlocksSent != b.BlocksSent || a.BlocksRelayed != b.BlocksRelayed ||
		a.BlocksStolen != b.BlocksStolen || a.ProducerStall != b.ProducerStall ||
		a.StagerNodeSeconds != b.StagerNodeSeconds {
		t.Fatalf("disabled Elastic diverged from the fixed pool:\n%+v\n%+v", a, b)
	}
	if len(a.ScaleEvents) != 0 || len(b.ScaleEvents) != 0 {
		t.Fatalf("fixed pools produced scale events: %d / %d", len(a.ScaleEvents), len(b.ScaleEvents))
	}
}
