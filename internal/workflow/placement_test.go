package workflow

import (
	"testing"

	"zipper/internal/core"
	"zipper/internal/place"
)

// skewedSpec is the placement test workload: four producers whose output
// volumes diverge 6:1:1:1 (rank 0 emits six blocks for every one of its
// peers, at six times the rate), everything relayed through a four-endpoint
// staging tier. Under rank-affine placement stager 0 carries rank 0's whole
// torrent; a load-aware policy spreads it.
func skewedSpec() Spec {
	spec := stagingTestSpec()
	spec.Stagers = 4
	spec.Workload.Skew = []float64{6, 1, 1, 1}
	spec.Zipper.RoutePolicy = core.RouteStaging
	return spec
}

// skewedTotal is the skewed workload's block count across channels.
func skewedTotal(spec Spec) int64 {
	perStep := spec.Workload.BytesPerStep / spec.Workload.BlockBytes
	var total int64
	for p := 0; p < spec.P; p++ {
		blocks := int64(float64(perStep) * spec.Workload.skew(p))
		total += int64(spec.Workload.Steps) * blocks
	}
	return total
}

// TestZipperPlacementRankAffinePinned pins the default: the zero-value
// Placement IS rank-affine, and requesting it explicitly changes nothing —
// the same simulation to the virtual nanosecond. Together with the
// untouched TestZipperStagersZeroUnchanged and TestZipperElasticOffPinned
// this is the byte-identical guarantee for pre-placement configurations.
func TestZipperPlacementRankAffinePinned(t *testing.T) {
	if zero := (Spec{}).Placement; zero != place.KindRankAffine {
		t.Fatalf("zero Placement is %v, want rank-affine", zero)
	}
	def := stagingTestSpec()
	def.Zipper.RoutePolicy = core.RouteHybrid
	a := RunZipper(def)

	explicit := stagingTestSpec()
	explicit.Zipper.RoutePolicy = core.RouteHybrid
	explicit.Placement = place.KindRankAffine
	b := RunZipper(explicit)

	if !a.OK || !b.OK {
		t.Fatalf("runs failed: %v / %v", a.Fail, b.Fail)
	}
	if a.E2E != b.E2E || a.Messages != b.Messages ||
		a.BlocksSent != b.BlocksSent || a.BlocksRelayed != b.BlocksRelayed ||
		a.BlocksStolen != b.BlocksStolen || a.ProducerStall != b.ProducerStall {
		t.Fatalf("explicit RankAffine diverged from the default:\n%+v\n%+v", a, b)
	}
}

// TestZipperPlacementLeastOccupancyRebalances is the deterministic simenv
// rebalancing check: on the skewed 4-producer workload the load-aware
// policy must cut the per-stager relay imbalance well below rank-affine's
// while conserving every block through mid-run reassignment, and the whole
// run must replay identically.
func TestZipperPlacementLeastOccupancyRebalances(t *testing.T) {
	ra := RunZipper(skewedSpec())

	lo := skewedSpec()
	lo.Placement = place.KindLeastOccupancy
	a := RunZipper(lo)
	b := RunZipper(lo)

	if !ra.OK || !a.OK || !b.OK {
		t.Fatalf("runs failed: %v / %v / %v", ra.Fail, a.Fail, b.Fail)
	}
	total := skewedTotal(skewedSpec())
	for _, res := range []Result{ra, a} {
		if got := res.BlocksSent + res.BlocksRelayed + res.BlocksStolen; got != total {
			t.Fatalf("conservation broken: %d+%d+%d = %d blocks, want %d",
				res.BlocksSent, res.BlocksRelayed, res.BlocksStolen, got, total)
		}
		if res.BlocksRelayed != total {
			t.Fatalf("RouteStaging relayed %d of %d blocks", res.BlocksRelayed, total)
		}
	}
	if ra.RelayImbalance < 2 {
		t.Fatalf("rank-affine imbalance %.2f on the 6:1:1:1 skew — the workload is not skewed enough to test rebalancing",
			ra.RelayImbalance)
	}
	if a.RelayImbalance*2 > ra.RelayImbalance {
		t.Fatalf("least-occupancy imbalance %.2f did not halve rank-affine's %.2f",
			a.RelayImbalance, ra.RelayImbalance)
	}
	if a.E2E != b.E2E || a.RelayImbalance != b.RelayImbalance || a.Messages != b.Messages {
		t.Fatalf("least-occupancy runs diverged:\n%+v\n%+v", a, b)
	}
}

// TestZipperPlacementHashRingWorkflow runs the consistent-hashing policy end
// to end on the simulated platform: conservation through the directory-
// placed tier and deterministic replay.
func TestZipperPlacementHashRingWorkflow(t *testing.T) {
	spec := skewedSpec()
	spec.Placement = place.KindHashRing
	a := RunZipper(spec)
	b := RunZipper(spec)
	if !a.OK || !b.OK {
		t.Fatalf("runs failed: %v / %v", a.Fail, b.Fail)
	}
	total := skewedTotal(spec)
	if got := a.BlocksSent + a.BlocksRelayed + a.BlocksStolen; got != total {
		t.Fatalf("conservation broken: %d of %d blocks", got, total)
	}
	if a.E2E != b.E2E || a.RelayImbalance != b.RelayImbalance {
		t.Fatalf("hash-ring runs diverged:\n%+v\n%+v", a, b)
	}
}
