// Package elastic is the autoscaler subsystem of the Zipper staging tier: it
// grows and drains in-transit stager endpoints at runtime so the tier tracks
// the workload instead of being provisioned for its peak.
//
// It has three cooperating parts:
//
//   - Pool, an epoch-versioned stager directory — since the placement plane
//     landed it IS a place.Directory (the type below is an alias), so the
//     assignment rule is pluggable: rank-affine by default, or any
//     place.Policy (least-occupancy, consistent hashing across epochs) the
//     embedder configures. Producers resolve their stager from the live
//     membership per drained batch, so membership changes compose with
//     every flow.Router unchanged. The directory also counts
//     claimed-but-undelivered relay sends per endpoint, which is what makes
//     retirement race-free: Quiesce waits for the last straggler to deposit
//     before the Retire control message is sent, so Retire is provably the
//     final message a draining endpoint receives. That proof leans on a
//     transport whose Send returns only after the message is deposited in
//     the destination inbox — true of the in-process channel network and
//     the simulated network, NOT of the TCP transport (frames from
//     different connections interleave at the listener), so an elastic tier
//     must not span a TCP hop.
//
//   - The drain protocol (implemented by staging.Stager in Managed mode): a
//     draining stager stops admitting on Retire, flushes its in-memory queue
//     and its spill partition to the consumers, and exits. Stream
//     termination stays correct under any membership history because Fins
//     carry declared delivery totals (rt.Message.FinBlocks/FinDisk) and the
//     consumer holds its stream open until the counts are met.
//
//   - Scaler, the control loop. It observes the pool-wide flow gauges
//     (occupancy, forward rate, spill growth — flow.PoolSignals), applies a
//     hysteresis band plus a cooldown, and spawns or retires endpoints
//     through a platform Host, up to the reserved endpoint ceiling. The
//     loop is clocked purely by rt.Ctx time, so the identical controller
//     runs deterministically inside the discrete-event simulator and live
//     on the real machine.
package elastic

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"zipper/internal/flow"
	"zipper/internal/place"
	"zipper/internal/rt"
)

// Config tunes the elastic staging tier. The zero value of every field but
// Enabled selects the default noted on the field.
type Config struct {
	// Enabled turns the autoscaler on. Off, the staging tier is the fixed
	// pool of earlier revisions, byte-identical in behavior.
	Enabled bool
	// MinStagers is the floor the pool drains down to and the size it starts
	// at (default 1). MaxStagers is the growth ceiling (default: the number
	// of reserved stager endpoints).
	MinStagers, MaxStagers int
	// GrowOccupancy and DrainOccupancy bound the hysteresis band on
	// pool-wide buffer occupancy (fractions of summed capacity, defaults
	// 0.75 and 0.20): above the former — or whenever the tier spilled to
	// disk since the last tick — the pool grows; below the latter with no
	// spill pressure it drains. Between them the scaler holds.
	GrowOccupancy, DrainOccupancy float64
	// Interval is the control period (default 2ms — virtual time under the
	// simulator). Cooldown is the minimum time between scaling actions
	// (default 10×Interval); together with the hysteresis band it keeps the
	// pool from thrashing on transients.
	Interval, Cooldown time.Duration
	// DisableDrain removes the scale-down verdict: the pool only grows (and
	// respawns crashed slots) until shutdown. The fault plane sets it —
	// draining a member that may already be dead is unsound without fencing
	// (its Retire would never be consumed and the quiesce handshake would
	// wedge against a crashed receiver), so fault mode trades mid-run drains
	// for crash safety.
	DisableDrain bool
}

// WithDefaults resolves zero fields against the reserved endpoint ceiling.
func (c Config) WithDefaults(ceiling int) Config {
	if c.MinStagers <= 0 {
		c.MinStagers = 1
	}
	if c.MaxStagers <= 0 || c.MaxStagers > ceiling {
		c.MaxStagers = ceiling
	}
	if c.MinStagers > c.MaxStagers {
		c.MinStagers = c.MaxStagers
	}
	if c.GrowOccupancy <= 0 {
		c.GrowOccupancy = 0.75
	}
	if c.DrainOccupancy <= 0 {
		c.DrainOccupancy = 0.20
	}
	if c.Interval <= 0 {
		c.Interval = 2 * time.Millisecond
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 10 * c.Interval
	}
	return c
}

// Validate rejects inconsistent elastic bounds against the reserved stager
// ceiling, before defaults are applied. It reports nothing when disabled.
func (c Config) Validate(ceiling int) error {
	if !c.Enabled {
		return nil
	}
	if ceiling < 1 {
		return errors.New("elastic staging needs Stagers ≥ 1 reserved endpoints")
	}
	if c.MinStagers < 0 || c.MaxStagers < 0 {
		return fmt.Errorf("elastic stager bounds must be ≥ 0 (0 selects the default), got min %d max %d",
			c.MinStagers, c.MaxStagers)
	}
	if c.MaxStagers > 0 && c.MinStagers > c.MaxStagers {
		return fmt.Errorf("elastic MinStagers (%d) exceeds MaxStagers (%d)", c.MinStagers, c.MaxStagers)
	}
	if c.MaxStagers > ceiling {
		return fmt.Errorf("elastic MaxStagers (%d) exceeds the reserved Stagers ceiling (%d)",
			c.MaxStagers, ceiling)
	}
	if c.MinStagers > ceiling {
		return fmt.Errorf("elastic MinStagers (%d) exceeds the reserved Stagers ceiling (%d)",
			c.MinStagers, ceiling)
	}
	if c.GrowOccupancy < 0 || c.GrowOccupancy > 1 || c.DrainOccupancy < 0 || c.DrainOccupancy > 1 {
		return fmt.Errorf("elastic occupancy targets must lie in [0,1], got grow %v drain %v",
			c.GrowOccupancy, c.DrainOccupancy)
	}
	if c.GrowOccupancy > 0 && c.DrainOccupancy > 0 && c.DrainOccupancy >= c.GrowOccupancy {
		return fmt.Errorf("elastic DrainOccupancy (%v) must lie below GrowOccupancy (%v): the hysteresis band would be empty",
			c.DrainOccupancy, c.GrowOccupancy)
	}
	if c.Interval < 0 || c.Cooldown < 0 {
		return errors.New("elastic time constants must be ≥ 0 (0 selects the default)")
	}
	return nil
}

// Decide is the scaler's per-tick verdict, exposed as a pure function so the
// hysteresis band is unit-testable without a platform: +1 grow, -1 drain, 0
// hold. occ is the pool-wide occupancy fraction, spillDelta the blocks the
// tier spilled since the last tick, size the live pool size, and cooled
// whether the cooldown since the last action has elapsed. The receiver must
// have defaults resolved (WithDefaults).
func (c Config) Decide(occ float64, spillDelta int64, size int, cooled bool) int {
	if !cooled {
		return 0
	}
	if (occ >= c.GrowOccupancy || spillDelta > 0) && size < c.MaxStagers {
		return 1
	}
	if occ <= c.DrainOccupancy && spillDelta == 0 && size > c.MinStagers && !c.DisableDrain {
		return -1
	}
	return 0
}

// Pool is the epoch-versioned stager directory: the live membership of the
// elastic staging tier plus the in-flight relay accounting that makes
// retirement race-free. It is the placement plane's place.Directory — the
// generalization extracted from the original elastic pool — and implements
// core.StagerDirectory.
type Pool = place.Directory

// NewPool returns an empty rank-affine pool; the embedder Adds the initial
// membership. Pools resolving through another assignment policy (or fed by
// per-endpoint occupancy gauges) are built directly with place.New.
func NewPool() *Pool { return place.New(place.RankAffine(), nil) }

// Host is the platform half of the scaler: it owns the reserved endpoint
// slots and knows how to build a stager on one (fresh goroutine set on the
// real machine, fresh engine processes in the simulator) and how to deliver
// the Retire control message. Slot s corresponds to transport address
// base+s. All three methods are called from the scaler's thread only.
type Host interface {
	// Spawn builds and starts a managed stager endpoint on reserved slot
	// `slot` and returns its flow gauges for pool-wide observation. On
	// error the grow is abandoned; the scaler records the error (see
	// Scaler.Err) and backs off for a cooldown before retrying.
	Spawn(c rt.Ctx, slot int) (*flow.StagerFlows, error)
	// Retire sends the Retire control message to slot's endpoint.
	Retire(c rt.Ctx, slot int)
	// Drained reports whether slot's endpoint has finished flushing after
	// Retire (its threads exited); the slot is then reusable.
	Drained(c rt.Ctx, slot int) bool
}

// Event is one scaling action on the pool, for the Job.Stats timeline and
// the zippertrace pool-size view. The fault plane contributes "crash"
// (eviction took the slot's endpoint) and "respawn" (a replacement is
// live) events with zero Occupancy — they are recoveries, not occupancy
// decisions.
type Event struct {
	At        time.Duration // platform time of the action
	Action    string        // "grow", "drain", "crash", or "respawn"
	Slot      int           // reserved endpoint slot acted on
	PoolSize  int           // live pool size after the action
	Occupancy float64       // pool-wide occupancy that triggered it
}

// Scaler is the elastic control loop. Build it with NewScaler, Start it
// once the initial pool members are live, and Stop it after the producers
// have finished; Stop asks the loop to retire every remaining endpoint and
// returns when the tier has fully flushed.
//
// Concurrency: the scaler thread is the only mutator of the pool-state
// fields; the mutex exists for the cross-thread readers (Events,
// NodeSeconds, PoolSize, Err, the Stop handshake) and is held only for
// quick state access — NEVER across an operation that can park the thread
// on a platform primitive (Quiesce, Host calls, sleeps). A parked holder of
// a raw mutex would block any other runtime thread that touches it, and
// inside the discrete-event engine that stalls the entire simulation: the
// engine resumes one process at a time and a raw mutex wait never parks.
type Scaler struct {
	env  rt.Env
	cfg  Config
	pool *Pool
	host Host
	base int // transport address of slot 0

	mu        sync.Mutex
	stopReq   bool // Stop asked the loop to shut the tier down
	stopped   bool // shutdown complete: every endpoint flushed
	spawnErr  error
	live      map[int]*flow.StagerFlows // slot → gauges of the running endpoint
	draining  map[int]bool              // Retire sent, flush not yet confirmed
	free      []int                     // reusable slots, ascending
	spawnedAt map[int]time.Duration
	events    []Event
	nodeTime  time.Duration // summed provisioned lifetime of retired endpoints
	lastAct   time.Duration
	lastSpill int64
	pending   []poolChange // fault-plane notifications awaiting the scaler thread

	// onResize (set before Start via SetOnResize) fires after every
	// pool-membership change; lastEpoch is the pool epoch it last fired
	// for. Scaler thread only (single-writer rule) — epoch comparison also
	// catches membership edits the fault plane made directly on the pool.
	onResize  func(c rt.Ctx, members []int)
	lastEpoch int64
}

// poolChange is one fault-plane notification: fl == nil records a crash
// (the slot's endpoint was evicted), fl != nil a respawn (a replacement is
// live on the slot with these gauges). The fault monitor posts them from
// its own thread; the scaler thread applies them at the top of its next
// iteration, preserving the single-writer rule for the pool-state fields.
type poolChange struct {
	slot int
	fl   *flow.StagerFlows
}

// NewScaler wires a control loop over pool and host. initial holds the flow
// gauges of the already-running endpoints on slots 0..len(initial)-1 (the
// embedder builds the starting pool and has added their addresses to the
// pool); slots len(initial)..MaxStagers-1 start free. cfg must already have
// its defaults resolved via WithDefaults — an unresolved config has no
// ceiling (MaxStagers 0) and a zero Interval, neither of which NewScaler
// repairs.
func NewScaler(env rt.Env, cfg Config, pool *Pool, host Host, base int, initial []*flow.StagerFlows) *Scaler {
	s := &Scaler{
		env: env, cfg: cfg, pool: pool, host: host, base: base,
		live:      map[int]*flow.StagerFlows{},
		draining:  map[int]bool{},
		spawnedAt: map[int]time.Duration{},
	}
	for slot, fl := range initial {
		s.live[slot] = fl
		s.spawnedAt[slot] = 0
	}
	for slot := len(initial); slot < cfg.MaxStagers; slot++ {
		s.free = append(s.free, slot)
	}
	s.lastEpoch = pool.Epoch()
	return s
}

// SetOnResize registers a hook invoked on the scaler thread after every
// pool-membership change — grow, drain, crash, respawn — with the live
// membership (transport addresses, ascending). It is the bridge to the
// multi-job control plane: a fleet passes control.Plane.Resize here so
// tenant fair shares are recomputed whenever the shared pool changes size.
// The hook may park (it runs with no scaler mutex held); it must not call
// back into the scaler. Call before Start.
func (s *Scaler) SetOnResize(fn func(c rt.Ctx, members []int)) {
	s.onResize = fn
}

// Start launches the control loop as a runtime thread.
func (s *Scaler) Start() {
	s.env.Go("elastic.scaler", s.run)
}

func (s *Scaler) run(c rt.Ctx) {
	for {
		c.Sleep(s.cfg.Interval)
		s.mu.Lock()
		stop := s.stopReq
		s.mu.Unlock()
		if stop {
			s.shutdown(c)
			return
		}
		s.tick(c)
	}
}

// Crashed tells the scaler that slot's endpoint was evicted by the failure
// detector: the slot leaves the live set (its node-time is booked) without
// entering the free list, so grow can never hand it out while the recovery
// path owns it. Safe to call from any thread.
func (s *Scaler) Crashed(slot int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pending = append(s.pending, poolChange{slot: slot})
}

// Respawned tells the scaler that the recovery path spawned a replacement
// endpoint on a crashed slot: it rejoins the live set with the new gauges
// and its provisioned lifetime restarts. No cooldown is charged — a
// respawn is recovery, not a control decision. Safe to call from any
// thread.
func (s *Scaler) Respawned(slot int, fl *flow.StagerFlows) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pending = append(s.pending, poolChange{slot: slot, fl: fl})
}

// applyPending replays the fault plane's crash/respawn notifications on
// the scaler thread, in posting order, and records them on the scaling
// timeline.
func (s *Scaler) applyPending(now time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, pc := range s.pending {
		if pc.fl == nil {
			if _, ok := s.live[pc.slot]; !ok {
				continue
			}
			delete(s.live, pc.slot)
			s.nodeTime += now - s.spawnedAt[pc.slot]
			delete(s.spawnedAt, pc.slot)
			s.events = append(s.events, Event{At: now, Action: "crash", Slot: pc.slot, PoolSize: len(s.live)})
			continue
		}
		s.live[pc.slot] = pc.fl
		s.spawnedAt[pc.slot] = now
		s.events = append(s.events, Event{At: now, Action: "respawn", Slot: pc.slot, PoolSize: len(s.live)})
	}
	s.pending = nil
}

// tick is one control period: reap flushed drains, observe the pool, and
// apply at most one scaling action. lastSpill advances only on cooled
// ticks, so spill pressure that lands entirely inside a cooldown window
// accumulates into the next real decision instead of being consumed unseen.
// Reads of the pool-state fields here are lock-free by the single-writer
// rule (this thread is the only mutator).
func (s *Scaler) tick(c rt.Ctx) {
	now := c.Now()
	s.applyPending(now)
	s.reap(c, now)
	if !(s.lastAct == 0 || now-s.lastAct >= s.cfg.Cooldown) {
		s.notifyResize(c) // fault-plane edits surface even inside a cooldown
		return
	}
	sig := s.observe(now)
	spillDelta := sig.Spilled - s.lastSpill
	s.lastSpill = sig.Spilled
	switch s.cfg.Decide(sig.Occupancy, spillDelta, len(s.live), true) {
	case 1:
		s.grow(c, now, sig.Occupancy)
	case -1:
		s.drain(c, now, sig.Occupancy)
	}
	s.notifyResize(c)
}

// notifyResize fires the SetOnResize hook when the pool membership changed
// since the last notification — whether this tick's grow/drain did it or
// the fault plane edited the pool directly (epoch comparison sees both).
// Runs on the scaler thread with no mutex held: the hook may park.
func (s *Scaler) notifyResize(c rt.Ctx) {
	if s.onResize == nil {
		return
	}
	if ep := s.pool.Epoch(); ep != s.lastEpoch {
		s.lastEpoch = ep
		s.onResize(c, s.pool.Members())
	}
}

// observe aggregates the live members' gauges.
func (s *Scaler) observe(now time.Duration) flow.PoolSignals {
	members := make([]*flow.StagerFlows, 0, len(s.live))
	for _, slot := range s.liveSlots() {
		members = append(members, s.live[slot])
	}
	return flow.AggregatePool(now, members)
}

// liveSlots returns the live slots ascending (map order is not
// deterministic; the scaler's decisions must be).
func (s *Scaler) liveSlots() []int {
	slots := make([]int, 0, len(s.live))
	for slot := range s.live {
		slots = append(slots, slot)
	}
	sort.Ints(slots)
	return slots
}

// grow spawns a stager on the lowest free slot and admits it to the pool.
// The endpoint is live before the membership change, so the first batch
// resolved to it finds a running receiver. A failed spawn is recorded (Err)
// and charged as an action so retries back off by the cooldown instead of
// hammering the failing platform every tick.
func (s *Scaler) grow(c rt.Ctx, now time.Duration, occ float64) {
	if len(s.free) == 0 {
		return
	}
	slot := s.free[0]
	fl, err := s.host.Spawn(c, slot) // may park: no mutex held
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		s.spawnErr = err
		s.lastAct = now
		return
	}
	s.free = s.free[1:]
	s.live[slot] = fl
	s.spawnedAt[slot] = now
	s.pool.Add(s.base + slot)
	s.lastAct = now
	s.events = append(s.events, Event{At: now, Action: "grow", Slot: slot, PoolSize: len(s.live), Occupancy: occ})
}

// drain retires the highest live slot: out of the membership first, a
// quiesce for in-flight claims, then the Retire message — provably the last
// message the endpoint receives. The flush runs concurrently; the slot is
// reaped (and its node-time booked) once the stager reports Drained.
func (s *Scaler) drain(c rt.Ctx, now time.Duration, occ float64) {
	slots := s.liveSlots()
	if len(slots) == 0 {
		return
	}
	slot := slots[len(slots)-1]
	s.pool.Remove(s.base + slot)
	s.pool.Quiesce(c, s.base+slot) // may park: no mutex held
	s.host.Retire(c, slot)         // may park: no mutex held
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.live, slot)
	s.draining[slot] = true
	s.lastAct = c.Now()
	s.events = append(s.events, Event{At: c.Now(), Action: "drain", Slot: slot, PoolSize: len(s.live), Occupancy: occ})
}

// reap returns flushed drained slots to the free list and books their
// provisioned lifetime. Drained is polled in slot order so the engine's
// event sequence stays deterministic.
func (s *Scaler) reap(c rt.Ctx, now time.Duration) {
	slots := make([]int, 0, len(s.draining))
	for slot := range s.draining {
		slots = append(slots, slot)
	}
	sort.Ints(slots)
	var flushed []int
	for _, slot := range slots {
		if s.host.Drained(c, slot) { // may park: no mutex held
			flushed = append(flushed, slot)
		}
	}
	if len(flushed) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, slot := range flushed {
		delete(s.draining, slot)
		s.nodeTime += now - s.spawnedAt[slot]
		delete(s.spawnedAt, slot)
		s.free = append(s.free, slot)
	}
	sort.Ints(s.free)
}

// shutdown retires every remaining endpoint (teardown, not control
// decisions — no events are logged) and waits for the tier to flush.
func (s *Scaler) shutdown(c rt.Ctx) {
	s.applyPending(c.Now())
	for _, slot := range s.liveSlots() {
		s.pool.Remove(s.base + slot)
		s.pool.Quiesce(c, s.base+slot)
		s.host.Retire(c, slot)
		s.mu.Lock()
		delete(s.live, slot)
		s.draining[slot] = true
		s.mu.Unlock()
	}
	for {
		s.reap(c, c.Now())
		s.mu.Lock()
		n := len(s.draining)
		s.mu.Unlock()
		if n == 0 {
			break
		}
		c.Sleep(s.cfg.Interval)
	}
	s.mu.Lock()
	s.stopped = true
	s.mu.Unlock()
}

// Stop asks the control loop to retire every remaining endpoint and blocks
// until the whole tier has flushed. Call it after Start, and only once all
// producers have finished (no new relay traffic can appear); the consumers'
// counted termination then completes from the flushed deliveries. The
// retirement work runs on the scaler's own thread — Stop only posts the
// request and polls for completion, so it can never contend with a parked
// mutex holder.
func (s *Scaler) Stop(c rt.Ctx) {
	s.mu.Lock()
	s.stopReq = true
	s.mu.Unlock()
	for {
		s.mu.Lock()
		done := s.stopped
		s.mu.Unlock()
		if done {
			return
		}
		c.Sleep(s.cfg.Interval)
	}
}

// Err reports the most recent endpoint-spawn failure, if any: the scaler
// holds (and retries after a cooldown) when the platform cannot build a new
// stager, and this surfaces why the pool is not growing.
func (s *Scaler) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spawnErr
}

// Events returns the scaling timeline in action order.
func (s *Scaler) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// NodeSeconds returns the summed provisioned lifetime of every stager
// endpoint the scaler managed, in seconds — the resource-cost metric the
// elastic tier is judged on against a fixed pool (which pays pool-size ×
// run-length). It is complete only after Stop.
func (s *Scaler) NodeSeconds() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nodeTime.Seconds()
}

// PoolSize returns the current live pool size.
func (s *Scaler) PoolSize() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.live)
}
