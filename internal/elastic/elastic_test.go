package elastic

import (
	"testing"
	"time"

	"zipper/internal/rt/realenv"
)

// TestPoolMembershipAndEpoch pins the directory semantics: rank-affine
// resolution over the sorted live membership, and an epoch bump on every
// change.
func TestPoolMembershipAndEpoch(t *testing.T) {
	p := NewPool()
	if _, ok := p.Peek(0); ok {
		t.Fatal("empty pool resolved a stager")
	}
	p.Add(5)
	p.Add(3)
	p.Add(3) // duplicate: no-op, no epoch bump
	if e := p.Epoch(); e != 2 {
		t.Fatalf("epoch %d after two distinct Adds, want 2", e)
	}
	if got := p.Members(); len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Fatalf("members %v, want [3 5]", got)
	}
	// Ranks shard over the sorted membership.
	for rank, want := range map[int]int{0: 3, 1: 5, 2: 3, 3: 5} {
		if addr, ok := p.Peek(rank); !ok || addr != want {
			t.Fatalf("Peek(%d) = %d,%v want %d", rank, addr, ok, want)
		}
	}
	p.Remove(3)
	if e := p.Epoch(); e != 3 {
		t.Fatalf("epoch %d after Remove, want 3", e)
	}
	if addr, ok := p.Peek(0); !ok || addr != 5 {
		t.Fatalf("Peek(0) = %d,%v after re-shard, want 5", addr, ok)
	}
	p.Remove(3) // absent: no-op
	if e := p.Epoch(); e != 3 {
		t.Fatalf("epoch %d after no-op Remove, want 3", e)
	}
}

// TestPoolClaimQuiesce pins the drain handshake: Quiesce returns only once
// every claimed send has reported Done, and claims after Remove cannot pick
// the retiring endpoint.
func TestPoolClaimQuiesce(t *testing.T) {
	env := realenv.New()
	p := NewPool()
	p.Add(7)
	addr, ok := p.Claim(0)
	if !ok || addr != 7 {
		t.Fatalf("Claim = %d,%v want 7", addr, ok)
	}
	p.Remove(7)
	if _, ok := p.Claim(0); ok {
		t.Fatal("Claim resolved to a retired endpoint")
	}
	released := make(chan struct{})
	quiesced := make(chan struct{})
	go func() {
		p.Quiesce(env.Ctx(), 7)
		close(quiesced)
	}()
	select {
	case <-quiesced:
		t.Fatal("Quiesce returned with a claim still in flight")
	case <-time.After(5 * time.Millisecond):
	}
	close(released)
	p.Done(7)
	select {
	case <-quiesced:
	case <-time.After(time.Second):
		t.Fatal("Quiesce never returned after the last Done")
	}
	<-released
}

// TestDecideHysteresis pins the control law: grow above the occupancy
// target or on spill pressure, drain below the low target with no spills,
// hold inside the band, and never act against the bounds or the cooldown.
func TestDecideHysteresis(t *testing.T) {
	cfg := Config{Enabled: true, MinStagers: 1, MaxStagers: 4}.WithDefaults(4)
	cases := []struct {
		name       string
		occ        float64
		spillDelta int64
		size       int
		cooled     bool
		want       int
	}{
		{"grow on occupancy", 0.8, 0, 2, true, 1},
		{"grow on spill pressure", 0.5, 3, 2, true, 1},
		{"hold inside the band", 0.5, 0, 2, true, 0},
		{"drain when idle", 0.1, 0, 2, true, -1},
		{"no drain with spill pressure", 0.1, 1, 2, true, 1},
		{"grow capped at max", 0.9, 5, 4, true, 0},
		{"drain floored at min", 0.0, 0, 1, true, 0},
		{"cooldown blocks grow", 0.9, 5, 2, false, 0},
		{"cooldown blocks drain", 0.0, 0, 2, false, 0},
	}
	for _, tc := range cases {
		if got := cfg.Decide(tc.occ, tc.spillDelta, tc.size, tc.cooled); got != tc.want {
			t.Errorf("%s: Decide = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestConfigDefaultsAndValidate pins the default resolution and the bound
// checks shared by zipper.Config.validate and the workflow specs.
func TestConfigDefaultsAndValidate(t *testing.T) {
	d := Config{Enabled: true}.WithDefaults(6)
	if d.MinStagers != 1 || d.MaxStagers != 6 {
		t.Fatalf("default bounds %d..%d, want 1..6", d.MinStagers, d.MaxStagers)
	}
	if d.GrowOccupancy <= d.DrainOccupancy {
		t.Fatalf("default band empty: grow %v drain %v", d.GrowOccupancy, d.DrainOccupancy)
	}
	if d.Interval <= 0 || d.Cooldown < d.Interval {
		t.Fatalf("default clocks broken: interval %v cooldown %v", d.Interval, d.Cooldown)
	}
	if err := (Config{}).Validate(0); err != nil {
		t.Fatalf("disabled config must always validate, got %v", err)
	}
	bad := []Config{
		{Enabled: true}, // no ceiling (Validate(0))
		{Enabled: true, MinStagers: 3, MaxStagers: 2},               // min > max
		{Enabled: true, MaxStagers: 9},                              // max > ceiling
		{Enabled: true, MinStagers: -1},                             // negative
		{Enabled: true, GrowOccupancy: 2},                           // out of [0,1]
		{Enabled: true, GrowOccupancy: 0.3, DrainOccupancy: 0.5},    // empty band
		{Enabled: true, Interval: -time.Second},                     // negative clock
		{Enabled: true, MinStagers: 7, MaxStagers: 0 /* default */}, // min > ceiling
	}
	for i, c := range bad {
		ceiling := 4
		if i == 0 {
			ceiling = 0
		}
		if err := c.Validate(ceiling); err == nil {
			t.Errorf("case %d: invalid config %+v accepted", i, c)
		}
	}
}
