package elastic_test

import (
	"fmt"
	"testing"
	"time"

	"zipper/internal/core"
	"zipper/internal/elastic"
	"zipper/internal/fabric"
	"zipper/internal/flow"
	"zipper/internal/pfs"
	"zipper/internal/rt"
	"zipper/internal/rt/simenv"
	"zipper/internal/sim"
	"zipper/internal/staging"
)

// simHost wires spawn/retire/drained for the manual simenv rig. The engine
// runs one process at a time, so the plain slice needs no lock.
type simHost struct {
	spawn func(slot int) *staging.Stager
	slots []*staging.Stager
	net   *simenv.Network
	base  int
}

func (h *simHost) Spawn(c rt.Ctx, slot int) (*flow.StagerFlows, error) {
	return h.spawn(slot).Flows(), nil
}
func (h *simHost) Retire(c rt.Ctx, slot int) {
	h.net.Send(c, h.base+slot, rt.Message{Retire: true})
}
func (h *simHost) Drained(c rt.Ctx, slot int) bool {
	st := h.slots[slot]
	return st == nil || st.Drained(c)
}

// elasticStepRun drives the canonical step-change workload on the simulated
// platform: a fast burst saturates the staging tier (scale-up), a long calm
// lets the consumer catch up (drain-down to the floor), then a second burst
// forces the pool to regrow into the retired slots, and a final calm drains
// it again before the janitor stops the scaler. It returns the scaling
// timeline, the analyzed-block count, and the virtual end time.
func elasticStepRun(t *testing.T) (events []elastic.Event, analyzed int, end time.Duration) {
	t.Helper()
	const (
		burstBlocks = 200
		blockBytes  = 64 << 10
		analyze     = 2 * time.Millisecond
		calm        = 600 * time.Millisecond
	)
	eng := sim.New()
	// Nodes: 0 producer, 1 consumer, 2-4 stagers, 5-6 OSTs, 7 MDS.
	fab := fabric.New(eng, fabric.Config{
		Nodes: 8, NodesPerLeaf: 16, LinkBandwidth: 1e9, LinkLatency: time.Microsecond, MTU: 256 << 10,
	})
	fs := pfs.New(eng, fab, pfs.Config{
		OSTNodes: []fabric.NodeID{5, 6}, MDSNode: 7, OSTBandwidth: 8e8,
	})
	net := simenv.NewNetwork(eng, fab, []fabric.NodeID{1, 2, 3, 4}, 2)
	store := simenv.NewStore(fs, "zipper")

	ecfg := elastic.Config{
		Enabled: true, MinStagers: 1, MaxStagers: 3,
		Interval: time.Millisecond, Cooldown: 4 * time.Millisecond,
	}.WithDefaults(3)
	pool := elastic.NewPool()
	slots := make([]*staging.Stager, 3)
	spawn := func(slot int) *staging.Stager {
		env := simenv.NewEnv(eng, fabric.NodeID(2+slot), 0)
		st := staging.NewStager(env, staging.Config{
			BufferBlocks: 16, MaxBatchBlocks: 4, Managed: true,
		}, slot, net.Inbox(1+slot), net, simenv.NewStore(fs, fmt.Sprintf("zipper-stage%d", slot)))
		slots[slot] = st
		return st
	}
	first := spawn(0)
	pool.Add(1)
	scaler := elastic.NewScaler(simenv.NewEnv(eng, 2, 0), ecfg, pool,
		&simHost{spawn: spawn, slots: slots, net: net, base: 1},
		1, []*flow.StagerFlows{first.Flows()})
	scaler.Start()

	cfg := core.Config{
		BufferBlocks: 8, MaxBatchBlocks: 2,
		RoutePolicy: core.RouteStaging,
		Directory:   pool,
		StagerLevel: func(addr int) *flow.Level {
			if st := slots[addr-1]; st != nil {
				return st.Level()
			}
			return nil
		},
	}
	cons := core.NewConsumer(simenv.NewEnv(eng, 1, 0), cfg, 0, 1, net.Inbox(0), store)
	prod := core.NewStagedProducer(simenv.NewEnv(eng, 0, 0), cfg, 0, 0, core.NoStager, net, store)

	prodEnv := simenv.NewEnv(eng, 0, 0)
	eng.Spawn("app.prod", func(sp *sim.Proc) {
		c := prodEnv.WrapProc(sp)
		step := 0
		burst := func() {
			for i := 0; i < burstBlocks; i++ {
				sp.Delay(200 * time.Microsecond)
				prod.Write(c, step, 0, nil, blockBytes)
				step++
			}
		}
		burst()        // saturate: scale-up
		sp.Delay(calm) // consumer catches up: drain-down
		burst()        // regrow into the retired slots
		prod.Close(c)
		prod.Wait(c)
	})
	consEnv := simenv.NewEnv(eng, 1, 0)
	eng.Spawn("app.cons", func(sp *sim.Proc) {
		c := consEnv.WrapProc(sp)
		for {
			_, ok := cons.Read(c)
			if !ok {
				break
			}
			analyzed++
			sp.Delay(analyze)
		}
		cons.Wait(c)
	})
	janEnv := simenv.NewEnv(eng, 2, 0)
	janEnv.Go("elastic.janitor", func(c rt.Ctx) {
		prod.Wait(c)
		scaler.Stop(c)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return scaler.Events(), analyzed, eng.Now()
}

// TestElasticStepChangeConvergence is the end-to-end autoscaler test on the
// simulated platform: the burst must grow the pool to its ceiling, the calm
// must drain it back to the floor, and the second burst must regrow into
// the slots the drain retired — all without losing a block.
func TestElasticStepChangeConvergence(t *testing.T) {
	events, analyzed, _ := elasticStepRun(t)
	if analyzed != 400 {
		t.Fatalf("analyzed %d blocks, want 400", analyzed)
	}
	if len(events) == 0 {
		t.Fatal("the scaler never acted")
	}
	var maxPool, regrown int
	var drainedToFloor bool
	prevDrain := false
	for _, ev := range events {
		if ev.PoolSize > maxPool {
			maxPool = ev.PoolSize
		}
		if ev.PoolSize < 1 || ev.PoolSize > 3 {
			t.Fatalf("pool size %d escaped [1,3] at %v", ev.PoolSize, ev.At)
		}
		if ev.Action == "drain" && ev.PoolSize == 1 {
			drainedToFloor = true
		}
		if ev.Action == "grow" && prevDrain {
			regrown++
		}
		prevDrain = prevDrain || ev.Action == "drain"
	}
	if maxPool != 3 {
		t.Fatalf("burst grew the pool to %d, want the ceiling 3", maxPool)
	}
	if !drainedToFloor {
		t.Fatal("the calm never drained the pool back to the floor")
	}
	if regrown == 0 {
		t.Fatal("the second burst never regrew into a retired slot")
	}
}

// TestElasticStepChangeDeterministic pins the controller's simenv
// reproducibility: two identical runs must produce the identical scaling
// timeline, action by action and timestamp by timestamp.
func TestElasticStepChangeDeterministic(t *testing.T) {
	e1, a1, end1 := elasticStepRun(t)
	e2, a2, end2 := elasticStepRun(t)
	if a1 != a2 || end1 != end2 {
		t.Fatalf("runs diverged: analyzed %d/%d, end %v/%v", a1, a2, end1, end2)
	}
	if len(e1) != len(e2) {
		t.Fatalf("event counts diverged: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("event %d diverged: %+v vs %+v", i, e1[i], e2[i])
		}
	}
}
