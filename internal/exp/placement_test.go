package exp

import (
	"strings"
	"testing"
)

// TestPlacementSweepRebalances runs the sweep at a small step count and
// checks the structural story the zippertrace view exists to show: every
// policy completes, and least-occupancy carries a lower per-stager relay
// imbalance than the rank-affine funnel on the skewed workload.
func TestPlacementSweepRebalances(t *testing.T) {
	rows := RunPlacementSweep(4)
	byPolicy := map[string]PlacementRow{}
	for _, r := range rows {
		if !r.OK {
			t.Fatalf("policy %s failed: %s", r.Policy, r.Fail)
		}
		byPolicy[r.Policy] = r
	}
	ra, lo := byPolicy["rank-affine"], byPolicy["least-occupancy"]
	if ra.Imbalance <= 1 {
		t.Fatalf("rank-affine imbalance %.2f on a 6:1:1:1 skew — the workload is not skewed", ra.Imbalance)
	}
	if lo.Imbalance >= ra.Imbalance {
		t.Fatalf("least-occupancy imbalance %.2f did not improve on rank-affine's %.2f",
			lo.Imbalance, ra.Imbalance)
	}
	out := FormatPlacement(rows)
	for _, want := range []string{"rank-affine", "least-occupancy", "hash-ring", "imbalance"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered sweep missing %q:\n%s", want, out)
		}
	}
}
