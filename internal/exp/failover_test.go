package exp

import (
	"strings"
	"testing"

	"zipper/internal/workflow"
)

// TestFailoverTraceRecovers pins the zippertrace failover view: the armed
// kill must actually land, the run must recover every block, and the
// rendered detail must carry the eviction/recovery timeline.
func TestFailoverTraceRecovers(t *testing.T) {
	fig := RunFailoverTrace(6)
	if fig.Gantt == "" {
		t.Fatalf("no gantt rendered: %s", fig.Detail)
	}
	for _, want := range []string{"evict", "replay", "0 lost"} {
		if !strings.Contains(fig.Detail, want) {
			t.Errorf("detail missing %q:\n%s", want, fig.Detail)
		}
	}

	spec := failoverSpec(6)
	res := workflow.RunZipper(spec)
	if !res.OK {
		t.Fatalf("failover spec failed: %s", res.Fail)
	}
	if res.Evictions == 0 {
		t.Fatal("the armed kill never landed")
	}
	if res.BlocksLost != 0 {
		t.Fatalf("BlocksLost = %d, want 0", res.BlocksLost)
	}
	total := int64(spec.P) * int64(spec.Workload.Steps) *
		(spec.Workload.BytesPerStep / spec.Workload.BlockBytes)
	if res.BlocksAnalyzed != total {
		t.Fatalf("analyzed %d of %d blocks", res.BlocksAnalyzed, total)
	}
}
