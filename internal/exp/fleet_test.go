package exp

import (
	"strings"
	"testing"
)

// TestFleetTraceRenders pins the zippertrace fleet view: the shared-fleet
// scenario must complete with zero loss, fire preemptions against the noisy
// tenant, and render both the per-tenant occupancy chart and the control
// event log.
func TestFleetTraceRenders(t *testing.T) {
	fig := RunFleetTrace(4)
	if strings.HasPrefix(fig.Detail, "crash:") {
		t.Fatal(fig.Detail)
	}
	for _, want := range []string{
		"per-tenant occupancy/quota timeline",
		"control events:",
		"preempt quiet  victim=noisy",
		"lost=0",
	} {
		if !strings.Contains(fig.Detail, want) {
			t.Errorf("detail missing %q:\n%s", want, fig.Detail)
		}
	}
	if strings.Contains(fig.Detail, "lost=1") || strings.Contains(fig.Detail, "0 preemptions") {
		t.Fatalf("fleet scenario lost its pressure story:\n%s", fig.Detail)
	}
}
