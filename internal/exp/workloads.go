package exp

import (
	"time"

	"zipper/internal/apps/synthetic"
	"zipper/internal/workflow"
)

// Calibration anchors, each tied to a number the paper itself reports.
const (
	// cfdBridgesStepTime: "simulation time" bar of Figure 2 is 39.2 s for
	// 100 steps, so one step of the 64×64×256-per-process LBM costs 392 ms.
	cfdBridgesStepTime = 392 * time.Millisecond
	// cfdBytesPerStep: Table 1 moves 400 GB over 100 steps across 256
	// processes — 16 MB per process per step ("16 MB per time step per
	// process", §3).
	cfdBytesPerStep = 16 << 20
	// cfdAnalyzePerByte: the analysis bar of Figure 2 is 48.4 s for 100
	// steps on 128 consumers, each analyzing two producers' 16 MB — 484 ms
	// per 32 MB ≈ 14.4 ns per byte of n-th moment computation (n=4).
	cfdAnalyzePerByte = 14 * time.Nanosecond
	// cfdHaloBytes: one 64×256 face of 5 outbound D3Q19 distributions in
	// float64 ≈ 640 KB per neighbor per step.
	cfdHaloBytes = 64 * 256 * 5 * 8
	// cfdStampede2StepTime: the Figure 17 trace shows Zipper running 3 CFD
	// steps in 1.3 s on 204 cores with Zipper ≈ simulation-only, so a KNL
	// step costs ≈ 420 ms.
	cfdStampede2StepTime = 420 * time.Millisecond
	// lammpsStepTime: the Figure 19 trace shows ≈4.4 LAMMPS steps per 9.1 s
	// at 13,056 cores with Zipper ≈ simulation-only — ≈2.0 s per step.
	lammpsStepTime = 2 * time.Second
	// lammpsBytesPerStep: "each LAMMPS process generates approximately 20MB
	// of data in each time step" (§6.3.2).
	lammpsBytesPerStep = 20 << 20
	// lammpsBlockBytes: "Zipper divides the contiguous 20MB data into many
	// small blocks of size 1.2MB" (§6.3.2).
	lammpsBlockBytes = 1_258_291 // 1.2 MiB
	// synBytesPerRank: §6.1 transfers 3,136 GB from 1,568 producers — 2 GB
	// per producer rank.
	synBytesPerRank = 2 << 30
	// synSteps: the synthetic producers emit their 2 GB as 40 bursts.
	synSteps = 40
	// synAnalyzePerByte: the Figure 12 analysis bars sit at 22–29 s for a
	// 2-producer share of 4 GB — ≈6 ns per byte of variance reduction.
	synAnalyzePerByte = 6 * time.Nanosecond
	// synOnRate: §6.2 gives the O(n) kernel's data generation rate as
	// 56 GB/s per 28-core node — 2 GB/s per process.
	synOnRate = 2e9
)

// CFDBridges is the Figure 2 / Table 1 workflow: LBM channel flow coupled
// with the 4th-moment turbulence analysis on Bridges.
func CFDBridges(steps int) workflow.Spec {
	if steps <= 0 {
		steps = 100
	}
	return workflow.Spec{
		Machine: Bridges(),
		Workload: workflow.Workload{
			Name:           "CFD",
			Steps:          steps,
			StepTime:       cfdBridgesStepTime,
			PhaseFrac:      [3]float64{0.45, 0.35, 0.20},
			HaloBytes:      cfdHaloBytes,
			BytesPerStep:   cfdBytesPerStep,
			AnalyzePerByte: cfdAnalyzePerByte,
			BlockBytes:     2 << 20,
		},
		P: 256, Q: 128,
		ProducerProcsPerNode: 16, // 256 processes on 16 nodes (Table 1)
		ConsumerProcsPerNode: 16, // 128 processes on 8 nodes (Table 1)
		StagingNodes:         8,  // 32 server / 64 link processes on 8 nodes
		Window:               4,
	}
}

// Synthetic is the §6.1/§6.2 workload for one complexity class and Zipper
// block size, at a given producer count (consumers = producers/2, the
// paper's 1,568:784 ratio).
func Synthetic(c synthetic.Complexity, blockBytes int64, producers int) workflow.Spec {
	if producers <= 0 {
		producers = 1568
	}
	perStep := int64(synBytesPerRank / synSteps)
	// Per-step kernel time follows the complexity class, anchored so the
	// O(n) class matches the 2 GB/s per-process generation rate.
	elems := int(perStep / 8)
	onOps := synthetic.Linear.Ops(elems)
	scale := (float64(perStep) / synOnRate) / onOps // seconds per O(n) op
	stepTime := time.Duration(synthetic.Complexity(c).Ops(elems) * scale * float64(time.Second))
	return workflow.Spec{
		Machine: Bridges(),
		Workload: workflow.Workload{
			Name:           c.String(),
			Steps:          synSteps,
			StepTime:       stepTime,
			PhaseFrac:      [3]float64{1, 0, 0}, // single kernel, no halo
			HaloBytes:      0,
			BytesPerStep:   perStep,
			AnalyzePerByte: synAnalyzePerByte,
			BlockBytes:     blockBytes,
		},
		P: producers, Q: producers / 2,
		ProducerProcsPerNode: 28,
		ConsumerProcsPerNode: 28,
		StagingNodes:         4,
		Window:               4,
	}
}

// CFDStampede2 is the Figure 16/17 weak-scaling workflow: per-process
// 64×64×256 subgrids, two thirds of the cores simulating and one third
// analyzing.
func CFDStampede2(totalCores, steps int) workflow.Spec {
	if steps <= 0 {
		steps = 100
	}
	p := totalCores * 2 / 3
	q := totalCores - p
	return workflow.Spec{
		Machine: Stampede2(),
		Workload: workflow.Workload{
			Name:           "CFD",
			Steps:          steps,
			StepTime:       cfdStampede2StepTime,
			PhaseFrac:      [3]float64{0.45, 0.35, 0.20},
			HaloBytes:      cfdHaloBytes,
			BytesPerStep:   cfdBytesPerStep,
			AnalyzePerByte: 5 * time.Nanosecond, // n-th moment on 2:1 share, below step time
			BlockBytes:     2 << 20,
		},
		P: p, Q: q,
		ProducerProcsPerNode: 68,
		ConsumerProcsPerNode: 68,
		StagingNodes:         8, // fixed staging allocation (Table 1 scheme)
		Window:               4,
	}
}

// LAMMPSStampede2 is the Figure 18/19 weak-scaling workflow: Lennard-Jones
// melt coupled with MSD analysis.
func LAMMPSStampede2(totalCores, steps int) workflow.Spec {
	if steps <= 0 {
		steps = 100
	}
	p := totalCores * 2 / 3
	q := totalCores - p
	return workflow.Spec{
		Machine: Stampede2(),
		Workload: workflow.Workload{
			Name:           "LAMMPS",
			Steps:          steps,
			StepTime:       lammpsStepTime,
			PhaseFrac:      [3]float64{0.70, 0.25, 0.05}, // force, comm, integrate
			HaloBytes:      2 << 20,
			BytesPerStep:   lammpsBytesPerStep,
			AnalyzePerByte: 20 * time.Nanosecond, // MSD over a 2:1 share
			BlockBytes:     lammpsBlockBytes,
		},
		P: p, Q: q,
		ProducerProcsPerNode: 68,
		ConsumerProcsPerNode: 68,
		StagingNodes:         8,
		Window:               4,
	}
}

// ScalingCores are the Figure 16/18 weak-scaling points.
var ScalingCores = []int{204, 408, 816, 1632, 3264, 6528, 13056}
