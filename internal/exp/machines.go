// Package exp reproduces every table and figure of the paper's evaluation:
// the machine descriptions (Bridges, Stampede2), the calibrated workloads
// (CFD + n-th moment, LAMMPS + MSD, three synthetic kernels + variance), and
// one runner per experiment that emits the same rows or series the paper
// reports. Absolute seconds depend on the calibrated substrate, so each
// runner's output should be compared by shape: ordering, ratios, and
// crossover points (see EXPERIMENTS.md).
package exp

import (
	"time"

	"zipper/internal/workflow"
)

// Bridges models the PSC Bridges system (§3, §6): 752 regular nodes with two
// 14-core Haswell CPUs (28 cores) and 128 GB each, a 100 Gbps Intel
// Omni-Path fabric (12.5 GB/s ports, 42-port leaf switches), and a 10 PB
// Lustre parallel file system.
func Bridges() workflow.Machine {
	return workflow.Machine{
		Name:                 "Bridges",
		CoresPerNode:         28,
		LinkBandwidth:        12.5e9, // 100 Gbps OPA port
		LinkLatency:          time.Microsecond,
		NodesPerLeaf:         42, // OPA leaf edge switch ports (§6.2.1)
		CoreOversubscription: 2,
		MTU:                  1 << 20,
		OSTs:                 16,
		OSTBandwidth:         4e9, // ≈64 GB/s aggregate Lustre write
		PFSStripeSize:        1 << 20,
		PFSBackgroundLoad:    0.7, // shared by many other users (§3)
		MemBandwidth:         10e9,
		CongestionPenalty:    0.06,
	}
}

// Stampede2 models the TACC Stampede2 system (§6): 4,200 self-booting
// Knights Landing nodes (68 cores, 96 GB DDR + 16 GB MCDRAM), Intel
// Omni-Path, and a 30 PB Lustre file system.
func Stampede2() workflow.Machine {
	return workflow.Machine{
		Name:                 "Stampede2",
		CoresPerNode:         68,
		LinkBandwidth:        12.5e9,
		LinkLatency:          time.Microsecond,
		NodesPerLeaf:         48,
		CoreOversubscription: 2,
		MTU:                  1 << 20,
		OSTs:                 24,
		OSTBandwidth:         1.5e9,
		PFSStripeSize:        4 << 20,
		PFSBackgroundLoad:    0.25,
		MemBandwidth:         8e9, // KNL DDR per-process share
		CongestionPenalty:    0.06,
	}
}
