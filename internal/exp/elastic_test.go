package exp

import (
	"strings"
	"testing"
	"time"

	"zipper/internal/elastic"
)

// TestPoolSizeTimelineEmpty pins the no-activity rendering.
func TestPoolSizeTimelineEmpty(t *testing.T) {
	if got := PoolSizeTimeline(nil, 1, time.Second, 8); !strings.Contains(got, "no scaling activity") {
		t.Fatalf("empty timeline rendered %q", got)
	}
}

// TestPoolSizeTimelineSteps pins the bucket rendering: each cell is the
// live size at the end of its slice, carried forward between events.
func TestPoolSizeTimelineSteps(t *testing.T) {
	events := []elastic.Event{
		{At: 250 * time.Millisecond, Action: "grow", PoolSize: 2},
		{At: 500 * time.Millisecond, Action: "grow", PoolSize: 3},
		{At: 750 * time.Millisecond, Action: "drain", PoolSize: 2},
	}
	got := PoolSizeTimeline(events, 1, time.Second, 4)
	if !strings.Contains(got, "[2322]") {
		t.Fatalf("timeline rendered %q, want cells [2322]", got)
	}
}

// TestElasticTraceShowsPool checks the trace figure renders the stager rows
// and a live pool-size timeline with at least one scaling action.
func TestElasticTraceShowsPool(t *testing.T) {
	fig := RunElasticTrace(6)
	if fig.Gantt == "" {
		t.Fatalf("no gantt rendered: %s", fig.Detail)
	}
	for _, row := range []string{"zstage.0.receiver", "zstage.1.receiver", "ana.0"} {
		if !strings.Contains(fig.Gantt, row) {
			t.Fatalf("trace missing %s row:\n%s", row, fig.Gantt)
		}
	}
	if !strings.Contains(fig.Detail, "pool size over time") {
		t.Fatalf("detail missing the pool timeline: %s", fig.Detail)
	}
	if strings.Contains(fig.Detail, "0 grows") {
		t.Fatalf("the trace workload never grew the pool: %s", fig.Detail)
	}
}
