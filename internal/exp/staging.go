package exp

import (
	"fmt"
	"strings"
	"time"

	"zipper/internal/apps/synthetic"
	"zipper/internal/core"
	"zipper/internal/trace"
	"zipper/internal/transport"
	"zipper/internal/workflow"
)

// StagingRow is one coupling mode of the staging sweep: the same
// consumer-bound workload run in-situ (two channels), in-transit (all data
// through stager ranks), hybrid (per-batch routing from live backpressure),
// and on the DataSpaces staging-server baseline.
type StagingRow struct {
	Mode string
	OK   bool
	Fail string
	E2E  time.Duration
	// WriteStall is the longest any producer's Write sat blocked on a full
	// buffer — the number in-situ coupling loses when the consumer lags.
	WriteStall time.Duration
	// ProducerWall is when the last producer finished handing off its data.
	ProducerWall time.Duration
	// BlocksSent counts direct-path blocks, BlocksRelayed staging-tier
	// blocks, and ViaDisk blocks stolen through the file system.
	BlocksSent, BlocksRelayed, ViaDisk int64
	// StagerSpills counts blocks the staging tier overflowed to its own
	// spill partitions while absorbing the burst.
	StagerSpills int64
	Messages     int64
}

// stagingSpec builds the consumer-bound workload of the staging comparison:
// the analysis deliberately runs behind generation, which is the regime the
// in-transit tier exists for.
func stagingSpec(app string, producers, steps int) workflow.Spec {
	var spec workflow.Spec
	switch app {
	case "lbm", "cfd":
		spec = CFDBridges(steps)
		if producers > 0 {
			spec.P, spec.Q = producers, producers/2
		}
		// Double the per-byte analysis cost: the consumer now clearly lags
		// one step behind (Figure 2's regime rather than Figure 3's).
		spec.Workload.AnalyzePerByte *= 2
	default:
		spec = Synthetic(synthetic.Linear, 1<<20, producers)
		if steps > 0 {
			spec.Workload.Steps = steps
		}
		spec.Workload.AnalyzePerByte *= 4
	}
	spec.Zipper.BufferBlocks = 16
	spec.Zipper.MaxBatchBlocks = 4
	spec.Stagers = spec.StagingNodes
	spec.StagerBufferBlocks = 256
	return spec
}

// RunStagingSweep compares the three original Zipper routing modes and the
// DataSpaces baseline on one consumer-bound workload ("synthetic" or
// "lbm"). Hybrid routing should show in-situ's throughput with a fraction
// of its WriteStall and far fewer ViaDisk blocks than the steal-heavy
// in-situ run — while pure in-transit pays the extra hop for everything.
func RunStagingSweep(app string, producers, steps int) []StagingRow {
	return routingSweep(app, producers, steps,
		[]core.RoutePolicy{core.RouteDirect, core.RouteStaging, core.RouteHybrid})
}

// RunAdaptiveSweep is RunStagingSweep plus the closed-loop adaptive
// controller: the same consumer-bound workload run in-situ, in-transit,
// hybrid, adaptive, and on the DataSpaces staging-server baseline. Adaptive
// routing should match or beat hybrid on producer stall — it shifts the
// split before the window credit runs dry instead of reacting send by send.
func RunAdaptiveSweep(app string, producers, steps int) []StagingRow {
	return routingSweep(app, producers, steps,
		[]core.RoutePolicy{core.RouteDirect, core.RouteStaging, core.RouteHybrid, core.RouteAdaptive})
}

// routingSweep runs one row per routing mode plus the DataSpaces baseline.
func routingSweep(app string, producers, steps int, modes []core.RoutePolicy) []StagingRow {
	var rows []StagingRow
	for _, mode := range modes {
		spec := stagingSpec(app, producers, steps)
		spec.Zipper.RoutePolicy = mode
		if mode == core.RouteDirect {
			spec.Stagers = 0
		}
		res := workflow.RunZipper(spec)
		rows = append(rows, StagingRow{
			Mode:          mode.String(),
			OK:            res.OK,
			Fail:          res.Fail,
			E2E:           res.E2E,
			WriteStall:    res.ProducerStall,
			ProducerWall:  res.ProducerWallClock,
			BlocksSent:    res.BlocksSent,
			BlocksRelayed: res.BlocksRelayed,
			ViaDisk:       res.BlocksStolen,
			StagerSpills:  res.StagerSpills,
			Messages:      res.Messages,
		})
	}
	spec := stagingSpec(app, producers, steps)
	base := workflow.RunBaseline(spec, transport.NewDataSpaces(false))
	rows = append(rows, StagingRow{
		Mode:         base.Method,
		OK:           base.OK,
		Fail:         base.Fail,
		E2E:          base.E2E,
		WriteStall:   base.ProducerStall,
		ProducerWall: base.E2E,
	})
	return rows
}

// RoutingSplitTimeline renders the direct/staging split over time from a
// recorded trace: the run is cut into `buckets` equal slices and each cell
// shows, as a decile digit, the share of producer sender batches that took
// the staging relay in that slice. It is the zippertrace view of the flow
// controller's behavior — a reactive policy flips cell to cell where the
// closed loop holds a plateau and relaxes after the burst.
func RoutingSplitTimeline(spans []trace.Span, buckets int) string {
	if buckets < 1 {
		buckets = 32
	}
	var end time.Duration
	for _, sp := range spans {
		if strings.HasPrefix(sp.Proc, "zprod.") && sp.End > end {
			end = sp.End
		}
	}
	if end == 0 {
		return "routing split: no sender activity recorded"
	}
	direct := make([]int, buckets)
	relay := make([]int, buckets)
	for _, sp := range spans {
		if !strings.HasPrefix(sp.Proc, "zprod.") || !strings.HasSuffix(sp.Proc, ".sender") {
			continue
		}
		b := int(int64(sp.Start) * int64(buckets) / int64(end))
		if b >= buckets {
			b = buckets - 1
		}
		switch sp.State {
		case "send":
			direct[b]++
		case "relay":
			relay[b]++
		}
	}
	var cells strings.Builder
	for b := 0; b < buckets; b++ {
		if direct[b]+relay[b] == 0 {
			cells.WriteByte('-')
			continue
		}
		d := 10 * relay[b] / (direct[b] + relay[b])
		if d > 9 {
			d = 9
		}
		cells.WriteByte(byte('0' + d))
	}
	return fmt.Sprintf("routing split over time (staging share per %.0fms slice, 0=all direct, 9=all relay, -=idle):\n  [%s]",
		float64(end)/float64(buckets)/1e6, cells.String())
}

// FormatStaging renders the staging sweep.
func FormatStaging(app string, rows []StagingRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "In-situ vs in-transit vs hybrid routing (%s, consumer-bound)\n", app)
	fmt.Fprintf(&b, "  %-12s | %9s %9s %10s %10s %10s %9s\n",
		"mode", "e2e", "stall", "direct", "relayed", "via disk", "spills")
	for _, r := range rows {
		if !r.OK {
			fmt.Fprintf(&b, "  %-12s | crash: %s\n", r.Mode, r.Fail)
			continue
		}
		fmt.Fprintf(&b, "  %-12s | %8.1fs %8.1fs %10d %10d %10d %9d\n",
			r.Mode, r.E2E.Seconds(), r.WriteStall.Seconds(),
			r.BlocksSent, r.BlocksRelayed, r.ViaDisk, r.StagerSpills)
	}
	return b.String()
}

// RunStagingTrace renders a hybrid-routing run with the stager threads'
// activity visible next to the simulation and analysis rows — the staging
// tier's counterpart of the paper's runtime-thread trace views.
func RunStagingTrace(steps int) TraceFigure {
	spec := stagingSpec("cfd", 8, steps)
	spec.P, spec.Q = 2, 1
	spec.Stagers = 1
	spec.Zipper.RoutePolicy = core.RouteHybrid
	spec.Trace = true
	res := workflow.RunZipper(spec)
	if !res.OK {
		return TraceFigure{Title: "Staging trace", Detail: "crash: " + res.Fail}
	}
	g := res.Rec.Gantt(trace.GanttOptions{
		Width: 96,
		Procs: []string{
			"sim.0", "zprod.0.sender",
			"zstage.0.receiver", "zstage.0.forwarder", "zstage.0.spiller",
			"ana.0",
		},
		Symbols: map[string]rune{
			"compute": 'C', "send": 's', "relay": 'R',
			"recv": 'r', "forward": 'F', "spill": 'S', "unspill": 'u',
			"analyze": 'A', "stall": '#', "step": ' ', "MPI_Sendrecv": 'm',
		},
	})
	det := fmt.Sprintf(
		"hybrid routing: %d direct, %d relayed, %d via disk, %d stager spills within e2e %.2fs (stall %.2fs)\n%s",
		res.BlocksSent, res.BlocksRelayed, res.BlocksStolen, res.StagerSpills,
		res.E2E.Seconds(), res.ProducerStall.Seconds(),
		RoutingSplitTimeline(res.Rec.Spans(), 48))
	return TraceFigure{Title: "Staging tier: hybrid routing trace", Gantt: g, Detail: det}
}

// RunAdaptiveTrace is RunStagingTrace with the closed-loop controller in
// charge: the routing-split timeline shows the staging share rising as the
// consumer falls behind and relaxing back to the direct path.
func RunAdaptiveTrace(steps int) TraceFigure {
	spec := stagingSpec("cfd", 8, steps)
	spec.P, spec.Q = 2, 1
	spec.Stagers = 1
	spec.Zipper.RoutePolicy = core.RouteAdaptive
	spec.Trace = true
	res := workflow.RunZipper(spec)
	if !res.OK {
		return TraceFigure{Title: "Adaptive routing trace", Detail: "crash: " + res.Fail}
	}
	g := res.Rec.Gantt(trace.GanttOptions{
		Width: 96,
		Procs: []string{
			"sim.0", "zprod.0.sender",
			"zstage.0.receiver", "zstage.0.forwarder", "zstage.0.spiller",
			"ana.0",
		},
		Symbols: map[string]rune{
			"compute": 'C', "send": 's', "relay": 'R',
			"recv": 'r', "forward": 'F', "spill": 'S', "unspill": 'u',
			"analyze": 'A', "stall": '#', "step": ' ', "MPI_Sendrecv": 'm',
		},
	})
	det := fmt.Sprintf(
		"adaptive routing: %d direct, %d relayed, %d via disk, %d stager spills within e2e %.2fs (stall %.2fs)\n%s",
		res.BlocksSent, res.BlocksRelayed, res.BlocksStolen, res.StagerSpills,
		res.E2E.Seconds(), res.ProducerStall.Seconds(),
		RoutingSplitTimeline(res.Rec.Spans(), 48))
	return TraceFigure{Title: "Staging tier: adaptive routing trace", Gantt: g, Detail: det}
}
