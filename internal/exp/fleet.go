package exp

import (
	"fmt"
	"strings"
	"time"

	"zipper/internal/control"
	"zipper/internal/workflow"
)

// FleetScenario is the shared-fleet scenario rendered by `zippertrace
// fleet` and measured by cmd/benchcontrol: a steady normal-priority job and
// a latency-sensitive high-priority job run from t=0, then a spill-heavy
// low-priority batch job joins the live fleet and floods its slice. steps
// scales every job's workload length.
func FleetScenario(steps int) workflow.FleetSpec {
	noisy := workflow.FleetJob{
		Name: "noisy",
		Workload: workflow.Workload{
			Steps: steps, StepTime: 10 * time.Millisecond,
			BytesPerStep: 16 << 20, BlockBytes: 1 << 20,
			// ~21ms/block drain against a 0.6ms/block write rate: a huge
			// backlog, but a runtime comparable to the other jobs' so the
			// consolidation measurement reflects multiplexing, not one
			// straggler holding the tier.
			AnalyzePerByte: 20 * time.Nanosecond,
		},
		P: 2, Q: 1,
		Quota:        control.Quota{Priority: control.PriorityLow, BufferBlocks: 20},
		StartAfter:   60 * time.Millisecond,
		BufferBlocks: 8, MaxBatchBlocks: 4, DisableSteal: true,
	}
	mid := workflow.FleetJob{
		Name: "mid",
		Workload: workflow.Workload{
			Steps: steps, StepTime: 20 * time.Millisecond,
			BytesPerStep: 4 << 20, BlockBytes: 1 << 20,
			AnalyzePerByte: 5 * time.Nanosecond,
		},
		P: 2, Q: 1,
		Quota:        control.Quota{Priority: control.PriorityNormal},
		BufferBlocks: 8, MaxBatchBlocks: 4, DisableSteal: true,
	}
	quiet := workflow.FleetJob{
		Name: "quiet",
		Workload: workflow.Workload{
			Steps: steps, StepTime: 10 * time.Millisecond,
			BytesPerStep: 16 << 20, BlockBytes: 1 << 20,
			AnalyzePerByte: 10 * time.Nanosecond,
		},
		P: 2, Q: 1,
		Quota:        control.Quota{Priority: control.PriorityHigh, BufferBlocks: 24},
		BufferBlocks: 8, MaxBatchBlocks: 4, DisableSteal: true,
	}
	return workflow.FleetSpec{
		Machine:            workflow.Machine{CoresPerNode: 4, LinkBandwidth: 2e9, LinkLatency: 2 * time.Microsecond, NodesPerLeaf: 8, MTU: 512 << 10, OSTs: 2, OSTBandwidth: 1e9, MemBandwidth: 10e9},
		Jobs:               []workflow.FleetJob{mid, quiet, noisy},
		Stagers:            2,
		StagerBufferBlocks: 24,
		StagingNodes:       2,
		Reconcile:          2 * time.Millisecond,
		Window:             2,
		Sample:             10 * time.Millisecond,
	}
}

// FleetTimeline renders a multi-job fleet run's per-tenant share/occupancy
// history plus the control plane's event log. The chart has one row per
// tenant: each column is one sample tick, a digit is the tenant's buffer
// occupancy in tenths of its current quota (0 = idle, 9 = pressed against
// its share), '.' is admitted-but-empty, space is not admitted, and '!'
// marks a tick in which the tenant was a preemption victim. Watching a row's
// quota shrink in the event log while its digits stay high is the fair-share
// squeeze; digits collapsing after '!' is the preemption taking hold.
func FleetTimeline(res workflow.FleetResult) string {
	var b strings.Builder
	if len(res.Samples) == 0 {
		return "fleet: no samples recorded (spec.Sample off)"
	}
	tick := res.Samples[len(res.Samples)-1].At
	if len(res.Samples) > 1 {
		tick = res.Samples[1].At - res.Samples[0].At
	}
	// Victim ticks per tenant.
	victims := map[int]map[int]bool{}
	for _, ev := range res.Events {
		if ev.Kind != "preempt" || tick <= 0 {
			continue
		}
		i := int(ev.At / tick)
		if victims[ev.Victim] == nil {
			victims[ev.Victim] = map[int]bool{}
		}
		victims[ev.Victim][i] = true
	}
	// Downsample to a terminal-friendly width: each printed column covers
	// `per` ticks and shows the worst (highest-pressure) state inside it.
	const maxCols = 110
	per := (len(res.Samples) + maxCols - 1) / maxCols
	fmt.Fprintf(&b, "per-tenant occupancy/quota timeline (one column per %v):\n", tick*time.Duration(per))
	rank := func(c byte) int {
		switch {
		case c == '!':
			return 3
		case c >= '0' && c <= '9':
			return 2
		case c == '.':
			return 1
		}
		return 0
	}
	for _, j := range res.Jobs {
		row := make([]byte, len(res.Samples))
		for i, s := range res.Samples {
			if j.Tenant >= len(s.Tenants) || !s.Tenants[j.Tenant].Active {
				row[i] = ' '
				continue
			}
			ts := s.Tenants[j.Tenant]
			switch {
			case victims[j.Tenant][i]:
				row[i] = '!'
			case ts.QuotaBlocks <= 0 || ts.Resident <= 0:
				row[i] = '.'
			default:
				d := ts.Resident * 9 / ts.QuotaBlocks
				if d > 9 {
					d = 9
				}
				row[i] = byte('0' + d)
			}
		}
		var packed []byte
		for i := 0; i < len(row); i += per {
			best := row[i]
			for k := i + 1; k < i+per && k < len(row); k++ {
				if r := rank(row[k]); r > rank(best) || (r == rank(best) && row[k] > best) {
					best = row[k]
				}
			}
			packed = append(packed, best)
		}
		fmt.Fprintf(&b, "  %-7s |%s|\n", j.Name, packed)
	}
	b.WriteString("control events:\n")
	names := map[int]string{}
	for _, j := range res.Jobs {
		names[j.Tenant] = j.Name
	}
	for _, ev := range res.Events {
		fmt.Fprintf(&b, "  %8.1fms  %-7s %s", float64(ev.At)/1e6, ev.Kind, names[ev.Tenant])
		switch ev.Kind {
		case "assign":
			fmt.Fprintf(&b, "  stagers=%d quota=%d", ev.Stagers, ev.Blocks)
		case "preempt":
			fmt.Fprintf(&b, "  victim=%s", names[ev.Victim])
		}
		b.WriteByte('\n')
	}
	return strings.TrimRight(b.String(), "\n")
}

// RunFleetTrace runs the shared-fleet scenario and renders the per-tenant
// share/occupancy timeline: the quiet high-priority tenant's slice is
// untouched while the late-joining noisy tenant floods, spills, is
// preempted, and has its quota squeezed to near-synchronous transfer.
func RunFleetTrace(steps int) TraceFigure {
	res := workflow.RunFleet(FleetScenario(steps))
	if !res.OK {
		return TraceFigure{Title: "Fleet trace", Detail: "crash: " + res.Fail}
	}
	var sum strings.Builder
	fmt.Fprintf(&sum, "fleet: %d jobs over 2 shared stagers, %d preemptions, %.2f stager-node-seconds\n",
		len(res.Jobs), res.Preemptions, res.StagerNodeSeconds)
	for _, j := range res.Jobs {
		fmt.Fprintf(&sum, "  %-7s prio-join=%-8v written=%-4d spilled=%-3d lost=%d stall=%-10v preempted=%d\n",
			j.Name, j.Start, j.BlocksWritten, j.BlocksSpilled, j.BlocksLost, j.WriteStall, j.Preempted)
	}
	sum.WriteString(FleetTimeline(res))
	return TraceFigure{Title: "Multi-job control plane: admission, fair share, preemption", Detail: sum.String()}
}
