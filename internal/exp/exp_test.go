package exp

import (
	"strings"
	"testing"
	"time"

	"zipper/internal/apps/synthetic"
	"zipper/internal/core"
)

// skipInShort gates the slow paper-figure reproductions (seconds each) out
// of the CI fast lane; the scheduled full-suite job runs them all.
func skipInShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("paper-figure reproduction: skipped in -short mode")
	}
}

// fig2At returns the row map for quick lookups.
func fig2At(t *testing.T, steps, scale int) map[string]Fig2Row {
	t.Helper()
	rows := RunFig2(steps, scale)
	m := map[string]Fig2Row{}
	for _, r := range rows {
		m[r.Method] = r
	}
	return m
}

func TestFig2Shape(t *testing.T) {
	rows := fig2At(t, 12, 16) // 16 producers, 8 consumers, 12 steps
	for name, r := range rows {
		if !r.OK {
			t.Fatalf("%s failed: %s", name, r.Fail)
		}
	}
	sim := rows["Simulation-only"].E2E
	ana := rows["Analysis-only"].E2E
	// Every coupled workflow is bounded below by both standalone apps.
	for _, name := range []string{"MPI-IO", "ADIOS/DataSpaces", "ADIOS/DIMES",
		"DataSpaces", "DIMES", "Flexpath", "Decaf", "Zipper"} {
		if rows[name].E2E < sim || rows[name].E2E < ana {
			t.Errorf("%s (%v) below standalone bounds (sim %v, ana %v)",
				name, rows[name].E2E, sim, ana)
		}
	}
	// Paper ordering (Figure 2): MPI-IO is slower than the whole in-memory
	// fast group (the paper notes its *fastest* case can be comparable to
	// the in-memory methods, so we don't require it to top the ADIOS
	// flavours); native flavours beat their ADIOS flavours; Decaf is the
	// fastest baseline; Zipper beats Decaf.
	for _, fast := range []string{"Decaf", "Flexpath", "DIMES"} {
		if rows["MPI-IO"].E2E < rows[fast].E2E {
			t.Errorf("MPI-IO (%v) faster than %s (%v)", rows["MPI-IO"].E2E, fast, rows[fast].E2E)
		}
	}
	if rows["ADIOS/DIMES"].E2E <= rows["DataSpaces"].E2E {
		t.Errorf("ADIOS/DIMES (%v) not above native DataSpaces (%v) as in Figure 2",
			rows["ADIOS/DIMES"].E2E, rows["DataSpaces"].E2E)
	}
	if rows["DIMES"].E2E <= rows["Flexpath"].E2E {
		t.Errorf("native DIMES (%v) not above Flexpath (%v) as in Figure 2",
			rows["DIMES"].E2E, rows["Flexpath"].E2E)
	}
	if rows["DataSpaces"].E2E >= rows["ADIOS/DataSpaces"].E2E {
		t.Errorf("native DataSpaces (%v) not faster than ADIOS flavour (%v)",
			rows["DataSpaces"].E2E, rows["ADIOS/DataSpaces"].E2E)
	}
	if rows["DIMES"].E2E >= rows["ADIOS/DIMES"].E2E {
		t.Errorf("native DIMES (%v) not faster than ADIOS flavour (%v)",
			rows["DIMES"].E2E, rows["ADIOS/DIMES"].E2E)
	}
	for _, base := range []string{"MPI-IO", "ADIOS/DataSpaces", "ADIOS/DIMES", "DataSpaces", "DIMES"} {
		if rows["Decaf"].E2E >= rows[base].E2E {
			t.Errorf("Decaf (%v) not faster than %s (%v)", rows["Decaf"].E2E, base, rows[base].E2E)
		}
	}
	if rows["Zipper"].E2E >= rows["Decaf"].E2E {
		t.Errorf("Zipper (%v) not faster than Decaf (%v)", rows["Zipper"].E2E, rows["Decaf"].E2E)
	}
	out := FormatFig2(RunFig2(6, 32))
	if !strings.Contains(out, "Figure 2") {
		t.Error("FormatFig2 malformed")
	}
}

func TestBreakdownShape(t *testing.T) {
	skipInShort(t)
	rows := RunBreakdown(core.NoPreserve, 14)
	if len(rows) != 6 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		// Figure 12's headline: the end-to-end time is always close to the
		// maximum stage time (the performance model).
		maxStage := r.Simulation
		for _, d := range []time.Duration{r.Transfer, r.Analysis} {
			if d > maxStage {
				maxStage = d
			}
		}
		if float64(r.E2E) < float64(maxStage) {
			t.Errorf("%s/%dMB: e2e %v below max stage %v", r.App, r.BlockBytes>>20, r.E2E, maxStage)
		}
		if float64(r.E2E) > 1.6*float64(maxStage) {
			t.Errorf("%s/%dMB: e2e %v far above max stage %v (pipeline not overlapping)",
				r.App, r.BlockBytes>>20, r.E2E, maxStage)
		}
	}
	// Dominant stage switches from transfer to simulation as complexity
	// rises (Figure 12's trend).
	var on, n32 BreakdownRow
	for _, r := range rows {
		if r.BlockBytes == 1<<20 {
			switch r.App {
			case "O(n)":
				on = r
			case "O(n^3/2)":
				n32 = r
			}
		}
	}
	if on.Transfer <= on.Simulation {
		t.Errorf("O(n) should be transfer-bound: sim %v transfer %v", on.Simulation, on.Transfer)
	}
	if n32.Simulation <= n32.Transfer {
		t.Errorf("O(n^3/2) should be simulation-bound: sim %v transfer %v", n32.Simulation, n32.Transfer)
	}
}

func TestPreserveStoreDominates(t *testing.T) {
	skipInShort(t)
	rows := RunBreakdown(core.Preserve, 14)
	for _, r := range rows {
		if r.App == "O(n^3/2)" {
			continue // compute-bound even in Preserve mode at small scale
		}
		if r.Store == 0 {
			t.Errorf("%s/%dMB: preserve mode stored nothing", r.App, r.BlockBytes>>20)
		}
	}
	// Figure 13: storing all data makes the file-system stage the largest
	// contributor for the cheap kernels.
	var on BreakdownRow
	for _, r := range rows {
		if r.App == "O(n)" && r.BlockBytes == 1<<20 {
			on = r
		}
	}
	if on.Store <= on.Simulation {
		t.Errorf("O(n) preserve: store %v not above sim %v", on.Store, on.Simulation)
	}
}

func TestConcurrentSweepShape(t *testing.T) {
	skipInShort(t)
	// O(n): generation far outruns the network, so the writer steals and
	// both stall time and XmitWait drop (Figures 14a/15a).
	rows := RunConcurrentSweep(synthetic.Linear, []int{84, 168}, 10)
	for _, r := range rows {
		if r.Concurrent.Stolen == 0 {
			t.Errorf("O(n) at %d cores: concurrent variant never stole", r.Cores)
		}
		if r.MP.Stolen != 0 {
			t.Errorf("MP-only variant stole %d blocks", r.MP.Stolen)
		}
		// Figure 14a: the simulation application's wall-clock time drops
		// when the writer thread reroutes blocks through the file system.
		if r.Concurrent.Wall >= r.MP.Wall {
			t.Errorf("O(n) at %d cores: concurrent producer wall clock %v not below MP %v",
				r.Cores, r.Concurrent.Wall, r.MP.Wall)
		}
		if r.Concurrent.XmitWait >= r.MP.XmitWait {
			t.Errorf("O(n) at %d cores: concurrent XmitWait %d not below MP %d",
				r.Cores, r.Concurrent.XmitWait, r.MP.XmitWait)
		}
	}
	// O(n^{3/2}): the buffer stays near-empty, stealing never activates, and
	// the concurrent method falls back to message passing (Figures 14c/15c).
	rows = RunConcurrentSweep(synthetic.N32, []int{84}, 4)
	r := rows[0]
	if r.Concurrent.Stolen != 0 {
		t.Errorf("O(n^3/2): stole %d blocks despite slow generation", r.Concurrent.Stolen)
	}
	if r.Concurrent.Wall != r.MP.Wall {
		t.Errorf("O(n^3/2): concurrent wall %v != MP wall %v (should fall back exactly)",
			r.Concurrent.Wall, r.MP.Wall)
	}
}

func TestScalingShape(t *testing.T) {
	skipInShort(t)
	rows := RunScaling("cfd", []int{204, 408}, 8)
	for _, r := range rows {
		zip := r.Methods["Zipper"]
		sim := r.Methods["Simulation-only"]
		dec := r.Methods["Decaf"]
		if !zip.OK || !sim.OK || !dec.OK {
			t.Fatalf("runs failed at %d cores: %+v", r.Cores, r.Methods)
		}
		// Figure 16: Zipper ≈ simulation-only; Decaf slower than Zipper.
		if float64(zip.E2E) > 1.4*float64(sim.E2E) {
			t.Errorf("%d cores: Zipper %v not near sim-only %v", r.Cores, zip.E2E, sim.E2E)
		}
		if dec.E2E <= zip.E2E {
			t.Errorf("%d cores: Decaf %v not slower than Zipper %v", r.Cores, dec.E2E, zip.E2E)
		}
		if mp := r.Methods["MPI-IO"]; mp.OK && mp.E2E <= zip.E2E {
			t.Errorf("%d cores: MPI-IO %v not slower than Zipper %v", r.Cores, mp.E2E, zip.E2E)
		}
	}
}

func TestScalingCrashesAtPaperThresholds(t *testing.T) {
	skipInShort(t)
	rows := RunScaling("cfd", []int{6528}, 1)
	r := rows[0]
	if r.Methods["Decaf"].OK {
		t.Error("Decaf did not crash at 6528 cores (int overflow)")
	}
	if r.Methods["Flexpath"].OK {
		t.Error("Flexpath did not crash at 6528 cores (segfault)")
	}
	if !r.Methods["Zipper"].OK || !r.Methods["Simulation-only"].OK {
		t.Error("Zipper / sim-only should survive 6528 cores")
	}
}

func TestStepComparisonZipperAhead(t *testing.T) {
	skipInShort(t)
	cmp := RunStepComparison("cfd", 204, 10, 1300*time.Millisecond)
	if cmp.ZipperSteps <= cmp.DecafSteps {
		t.Fatalf("Zipper %.2f steps not ahead of Decaf %.2f in the snapshot",
			cmp.ZipperSteps, cmp.DecafSteps)
	}
	if !strings.Contains(cmp.ZipperGantt, "legend") || !strings.Contains(cmp.DecafGantt, "legend") {
		t.Fatal("gantt rendering incomplete")
	}
}

func TestTraceFigures(t *testing.T) {
	f4 := RunFig4()
	if !strings.Contains(f4.Gantt, "legend") || f4.Detail == "" {
		t.Fatalf("Fig4 malformed: %+v", f4)
	}
	f5 := RunFig5()
	if !strings.Contains(f5.Detail, "MPI_Sendrecv") {
		t.Fatalf("Fig5 malformed: %s", f5.Detail)
	}
	f6 := RunFig6()
	if !strings.Contains(f6.Detail, "PUT") {
		t.Fatalf("Fig6 malformed: %s", f6.Detail)
	}
}

func TestModelValidation(t *testing.T) {
	skipInShort(t)
	rows := RunModelValidation(14)
	for _, r := range rows {
		ratio := float64(r.Measured) / float64(r.Predicted)
		if ratio < 0.65 || ratio > 1.8 {
			t.Errorf("%s: measured/predicted = %.2f (predicted %v, measured %v)",
				r.App, ratio, r.Predicted, r.Measured)
		}
	}
	if out := FormatModel(rows); !strings.Contains(out, "T_t2s") {
		t.Error("FormatModel malformed")
	}
}

func TestTables(t *testing.T) {
	if !strings.Contains(Table1(), "400 GB") {
		t.Errorf("Table1 total data wrong:\n%s", Table1())
	}
	if !strings.Contains(Table2(), "Flexpath") || !strings.Contains(Table3(), "LAMMPS") {
		t.Error("tables malformed")
	}
	if len(Specs()) != 3 {
		t.Error("Specs registry incomplete")
	}
}

func TestScaleHelper(t *testing.T) {
	s := Scale(CFDBridges(0), 16)
	if s.P != 16 || s.Q != 8 {
		t.Fatalf("scaled to P=%d Q=%d", s.P, s.Q)
	}
	tiny := Scale(CFDBridges(0), 1000)
	if tiny.P < 2 || tiny.Q < 1 || tiny.Q > tiny.P {
		t.Fatalf("degenerate scale: %+v", tiny)
	}
}

func TestBatchingSweepReducesMessages(t *testing.T) {
	rows := RunBatchingSweep([]int{1, 4}, 28, 6)
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	un, batched := rows[0], rows[1]
	if un.BlocksSent == 0 || un.BlocksSent != batched.BlocksSent {
		t.Fatalf("workloads diverged: %d vs %d blocks", un.BlocksSent, batched.BlocksSent)
	}
	// The acceptance bar: batch cap ≥ 4 must at least halve messages per
	// delivered block on a backpressured workload.
	if batched.MsgsPerBlock*2 > un.MsgsPerBlock {
		t.Fatalf("batching ineffective: %.3f msgs/block (batch=4) vs %.3f (batch=1)",
			batched.MsgsPerBlock, un.MsgsPerBlock)
	}
	// Fewer messages must not slow the pipeline down.
	if float64(batched.E2E) > 1.05*float64(un.E2E) {
		t.Fatalf("batching regressed E2E: %v vs %v", batched.E2E, un.E2E)
	}
	if out := FormatBatching(rows); !strings.Contains(out, "msgs/blk") {
		t.Error("FormatBatching malformed")
	}
}

func TestFig3Overlap(t *testing.T) {
	f := RunFig3()
	if !strings.Contains(f.Gantt, "legend") || !strings.Contains(f.Detail, "overlap") {
		t.Fatalf("Fig3 malformed: %+v", f.Detail)
	}
}
