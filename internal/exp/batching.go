package exp

import (
	"fmt"
	"strings"
	"time"

	"zipper/internal/apps/synthetic"
	"zipper/internal/workflow"
)

// BatchingRow is one MaxBatchBlocks setting of the batching sweep: the same
// backpressured workload run with the given batch cap, reporting how many
// mixed messages moved the same number of blocks.
type BatchingRow struct {
	MaxBatchBlocks int
	Messages       int64
	BlocksSent     int64
	// MsgsPerBlock is Messages/BlocksSent — 1.0 (plus Fin noise) for the
	// paper's unbatched protocol, dropping toward 1/MaxBatchBlocks as the
	// producer runs ahead of the network and batches fill.
	MsgsPerBlock float64
	E2E          time.Duration
	ProducerWall time.Duration
	Stall        time.Duration
}

// RunBatchingSweep runs the O(n) synthetic workload (generation far ahead of
// the network — the regime where per-message overhead matters) once per
// batch cap. The message-passing-only configuration isolates the network
// path so Messages/BlocksSent measures batching alone.
func RunBatchingSweep(batches []int, producers, steps int) []BatchingRow {
	var rows []BatchingRow
	for _, batch := range batches {
		spec := Synthetic(synthetic.Linear, 1<<20, producers)
		if steps > 0 {
			spec.Workload.Steps = steps
		}
		spec.Workload.AnalyzePerByte = time.Nanosecond
		spec.Zipper.BufferBlocks = 32
		spec.Zipper.DisableSteal = true
		spec.Zipper.MaxBatchBlocks = batch
		res := workflow.RunZipper(spec)
		row := BatchingRow{
			MaxBatchBlocks: batch,
			Messages:       res.Messages,
			BlocksSent:     res.BlocksSent,
			E2E:            res.E2E,
			ProducerWall:   res.ProducerWallClock,
			Stall:          res.ProducerStall,
		}
		if res.BlocksSent > 0 {
			row.MsgsPerBlock = float64(res.Messages) / float64(res.BlocksSent)
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatBatching renders the batching sweep.
func FormatBatching(rows []BatchingRow) string {
	var b strings.Builder
	b.WriteString("Batched mixed messages: message count vs batch cap (O(n) synthetic)\n")
	fmt.Fprintf(&b, "  %-6s | %10s %10s %10s %10s %10s\n",
		"batch", "messages", "blocks", "msgs/blk", "e2e", "prod wall")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-6d | %10d %10d %10.3f %9.1fs %9.1fs\n",
			r.MaxBatchBlocks, r.Messages, r.BlocksSent, r.MsgsPerBlock,
			r.E2E.Seconds(), r.ProducerWall.Seconds())
	}
	return b.String()
}
