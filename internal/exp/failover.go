package exp

import (
	"fmt"
	"strings"
	"time"

	"zipper/internal/fault"
	"zipper/internal/trace"
	"zipper/internal/workflow"
)

// FailoverTimeline renders the failure detector's eviction/recovery event
// log as an indented time-ordered listing, one line per event, with the
// evict→respawn recovery latency annotated on each respawn.
func FailoverTimeline(events []fault.Event) string {
	if len(events) == 0 {
		return "failover: no evictions recorded"
	}
	var b strings.Builder
	b.WriteString("eviction/recovery timeline:\n")
	evictAt := map[int]time.Duration{}
	for _, ev := range events {
		fmt.Fprintf(&b, "  %8.3fms  %-7s stager@%d", float64(ev.At)/1e6, ev.Kind, ev.Addr)
		switch ev.Kind {
		case "evict":
			evictAt[ev.Addr] = ev.At
		case "replay":
			fmt.Fprintf(&b, "  replayed=%d lost=%d", ev.Replayed, ev.Lost)
		case "respawn":
			if at, ok := evictAt[ev.Addr]; ok {
				fmt.Fprintf(&b, "  recovery=%.3fms", float64(ev.At-at)/1e6)
			}
		}
		b.WriteByte('\n')
	}
	return strings.TrimRight(b.String(), "\n")
}

// failoverSpec is the elastic staging workload with the survivable data
// plane armed: the deterministic injector hard-kills the lowest live stager
// the first time the pool's membership epoch reaches 2 — mid-growth, while
// relayed traffic is in flight.
func failoverSpec(steps int) workflow.Spec {
	spec := elasticSpec(steps)
	spec.Fault = fault.Config{Enabled: true}
	spec.FaultKillEpoch = 2
	return spec
}

// RunFailoverTrace renders a crash-and-recover staging run: the stager
// thread rows go quiet at the kill, the failure detector evicts the corpse
// and replays its journal, and a replacement respawns into the freed slot.
// The detail block is the eviction/recovery timeline with per-eviction
// recovery latencies — the zippertrace view of the fault plane.
func RunFailoverTrace(steps int) TraceFigure {
	spec := failoverSpec(steps)
	spec.Trace = true
	res := workflow.RunZipper(spec)
	if !res.OK {
		return TraceFigure{Title: "Failover trace", Detail: "crash: " + res.Fail}
	}
	g := res.Rec.Gantt(trace.GanttOptions{
		Width: 96,
		Procs: []string{
			"sim.0", "zprod.0.sender",
			"zstage.0.receiver", "zstage.0.forwarder",
			"zstage.1.receiver", "zstage.2.receiver",
			"ana.0",
		},
		Symbols: map[string]rune{
			"compute": 'C', "send": 's', "relay": 'R',
			"recv": 'r', "forward": 'F', "spill": 'S', "unspill": 'u',
			"analyze": 'A', "stall": '#', "step": ' ', "MPI_Sendrecv": 'm',
		},
	})
	det := fmt.Sprintf(
		"failover: %d evictions, %d blocks replayed, %d lost, %d analyzed in e2e %.2fs\n%s",
		res.Evictions, res.ReplayedBlocks, res.BlocksLost, res.BlocksAnalyzed,
		res.E2E.Seconds(),
		FailoverTimeline(res.FailoverEvents))
	return TraceFigure{Title: "Survivable data plane: crash, replay, respawn", Gantt: g, Detail: det}
}
