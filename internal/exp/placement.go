package exp

import (
	"fmt"
	"strings"
	"time"

	"zipper/internal/core"
	"zipper/internal/place"
	"zipper/internal/workflow"
)

// PlacementRow is one placement policy of the placement sweep: the same
// skewed-rate staged workload resolved rank-affine, least-occupancy, and
// hash-ring, with the per-stager relay split that shows where the traffic
// actually landed.
type PlacementRow struct {
	Policy string
	OK     bool
	Fail   string
	E2E    time.Duration
	// WriteStall is the longest any producer's Write sat blocked — the cost
	// of funneling a skewed producer through one relay.
	WriteStall time.Duration
	// PerStager is each stager's received-block total, and Imbalance their
	// max/mean ratio (1.0 = perfectly even).
	PerStager []int64
	Imbalance float64
	// Spills counts blocks the tier overflowed to its spill partitions.
	Spills int64
}

// placementSpec is the skewed staged workload of the placement sweep:
// producer 0 emits 6x its peers' volume (at 6x their rate), everything
// relayed through a 4-endpoint staging tier sized so the skewed stream
// overflows any single stager.
func placementSpec(steps int) workflow.Spec {
	spec := stagingSpec("cfd", 4, steps)
	spec.P, spec.Q = 4, 2
	spec.Stagers = 4
	spec.StagerBufferBlocks = 64
	spec.Workload.Skew = []float64{6, 1, 1, 1}
	spec.Zipper.RoutePolicy = core.RouteStaging
	return spec
}

// RunPlacementSweep runs the skewed workload under each placement policy on
// the simulated platform. Rank-affine funnels rank 0's torrent through one
// stager (the imbalance the load-aware policies exist to shrink);
// least-occupancy spreads it by live buffer occupancy; hash-ring shows the
// churn-stable-but-load-blind middle ground.
func RunPlacementSweep(steps int) []PlacementRow {
	var rows []PlacementRow
	for _, kind := range []place.Kind{place.KindRankAffine, place.KindLeastOccupancy, place.KindHashRing} {
		spec := placementSpec(steps)
		spec.Placement = kind
		res := workflow.RunZipper(spec)
		rows = append(rows, PlacementRow{
			Policy:     kind.String(),
			OK:         res.OK,
			Fail:       res.Fail,
			E2E:        res.E2E,
			WriteStall: res.ProducerStall,
			PerStager:  res.StagerRelayed,
			Imbalance:  res.RelayImbalance,
			Spills:     res.StagerSpills,
		})
	}
	return rows
}

// FormatPlacement renders the placement sweep with a per-stager relay bar
// per row, so the funnel-vs-spread difference is visible at a glance.
func FormatPlacement(rows []PlacementRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Placement sweep: skewed 4-producer staged workload (rank 0 emits 6x its peers)\n")
	fmt.Fprintf(&b, "%-16s %-10s %-12s %-10s %-8s %s\n",
		"policy", "e2e", "write-stall", "imbalance", "spills", "relayed per stager")
	for _, r := range rows {
		if !r.OK {
			fmt.Fprintf(&b, "%-16s crash: %s\n", r.Policy, r.Fail)
			continue
		}
		fmt.Fprintf(&b, "%-16s %-10s %-12s %-10.2f %-8d %s\n",
			r.Policy, fmtDur(r.E2E), fmtDur(r.WriteStall), r.Imbalance, r.Spills,
			relayBar(r.PerStager))
	}
	b.WriteString("\nimbalance = max/mean of blocks relayed per stager endpoint (1.0 = even).\n")
	return b.String()
}

// relayBar renders the per-stager relay split as counts with a proportional
// bar per endpoint.
func relayBar(per []int64) string {
	var peak int64
	for _, v := range per {
		if v > peak {
			peak = v
		}
	}
	if peak == 0 {
		return "(no relay traffic)"
	}
	var b strings.Builder
	for i, v := range per {
		if i > 0 {
			b.WriteByte(' ')
		}
		n := int(v * 8 / peak)
		fmt.Fprintf(&b, "%d:%-5d%s", i, v, strings.Repeat("▍", n))
	}
	return b.String()
}

func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.2fs", d.Seconds())
}
