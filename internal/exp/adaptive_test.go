package exp

import (
	"strings"
	"testing"
)

// TestAdaptiveSweepShape checks the four-policy comparison's headline
// claims on a small synthetic instance: the closed-loop controller must
// carry real relay traffic, stall producers no more than the reactive
// hybrid policy, and move fewer blocks over the file system than the
// steal-heavy in-situ run — while every Zipper mode still beats the
// DataSpaces staging-server baseline end to end. Deterministic under
// simenv.
func TestAdaptiveSweepShape(t *testing.T) {
	rows := RunAdaptiveSweep("synthetic", 8, 10)
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want 5 (four policies + DataSpaces)", len(rows))
	}
	byMode := map[string]StagingRow{}
	for _, r := range rows {
		if !r.OK {
			t.Fatalf("%s failed: %s", r.Mode, r.Fail)
		}
		byMode[r.Mode] = r
	}
	insitu, hybrid, adaptive := byMode["in-situ"], byMode["hybrid"], byMode["adaptive"]
	if adaptive.BlocksRelayed == 0 {
		t.Fatal("adaptive routing never used the staging tier under a lagging consumer")
	}
	if adaptive.WriteStall > hybrid.WriteStall {
		t.Fatalf("adaptive stalled %v, hybrid only %v", adaptive.WriteStall, hybrid.WriteStall)
	}
	if adaptive.ViaDisk >= insitu.ViaDisk {
		t.Fatalf("adaptive moved %d blocks via disk, in-situ %d", adaptive.ViaDisk, insitu.ViaDisk)
	}
	base := byMode["DataSpaces"]
	if adaptive.E2E > base.E2E {
		t.Fatalf("adaptive (%v) slower than DataSpaces baseline (%v)", adaptive.E2E, base.E2E)
	}
	out := FormatStaging("synthetic", rows)
	if !strings.Contains(out, "adaptive") {
		t.Fatalf("formatted sweep missing adaptive row:\n%s", out)
	}
}

// TestAdaptiveTraceRendersRoutingSplit checks the trace figure carries the
// routing-split timeline next to the stager thread rows.
func TestAdaptiveTraceRendersRoutingSplit(t *testing.T) {
	fig := RunAdaptiveTrace(6)
	if fig.Gantt == "" {
		t.Fatalf("no gantt rendered: %s", fig.Detail)
	}
	for _, row := range []string{"zprod.0.sender", "zstage.0.forwarder", "ana.0"} {
		if !strings.Contains(fig.Gantt, row) {
			t.Fatalf("trace missing %s row:\n%s", row, fig.Gantt)
		}
	}
	if !strings.Contains(fig.Detail, "routing split over time") {
		t.Fatalf("detail missing the routing-split timeline: %s", fig.Detail)
	}
	if !strings.ContainsAny(fig.Detail, "123456789") {
		t.Fatalf("timeline shows no staging share at all: %s", fig.Detail)
	}
}

// TestRoutingSplitTimelineEmpty pins the no-activity rendering.
func TestRoutingSplitTimelineEmpty(t *testing.T) {
	if got := RoutingSplitTimeline(nil, 8); !strings.Contains(got, "no sender activity") {
		t.Fatalf("empty trace rendered %q", got)
	}
}
