package exp

import (
	"strings"
	"testing"
)

// TestStagingSweepShape checks the staging comparison's headline claims on
// a small synthetic instance: all four modes complete, the staging modes
// carry real relay traffic, hybrid stalls producers no more than in-situ
// while moving fewer blocks over the file system, and every Zipper mode
// beats the DataSpaces staging-server baseline end to end.
func TestStagingSweepShape(t *testing.T) {
	rows := RunStagingSweep("synthetic", 8, 10)
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	byMode := map[string]StagingRow{}
	for _, r := range rows {
		if !r.OK {
			t.Fatalf("%s failed: %s", r.Mode, r.Fail)
		}
		byMode[r.Mode] = r
	}
	insitu, intransit, hybrid := byMode["in-situ"], byMode["in-transit"], byMode["hybrid"]
	if insitu.BlocksRelayed != 0 {
		t.Fatalf("in-situ relayed %d blocks", insitu.BlocksRelayed)
	}
	if intransit.BlocksSent != 0 || intransit.BlocksRelayed == 0 {
		t.Fatalf("in-transit split wrong: direct=%d relayed=%d", intransit.BlocksSent, intransit.BlocksRelayed)
	}
	if hybrid.BlocksRelayed == 0 {
		t.Fatal("hybrid never used the staging tier under a lagging consumer")
	}
	if hybrid.WriteStall > insitu.WriteStall {
		t.Fatalf("hybrid stalled %v, in-situ %v", hybrid.WriteStall, insitu.WriteStall)
	}
	if hybrid.ViaDisk >= insitu.ViaDisk {
		t.Fatalf("hybrid moved %d blocks via disk, in-situ %d", hybrid.ViaDisk, insitu.ViaDisk)
	}
	base := byMode["DataSpaces"]
	for _, r := range []StagingRow{insitu, intransit, hybrid} {
		if r.E2E > base.E2E {
			t.Fatalf("%s (%v) slower than DataSpaces baseline (%v)", r.Mode, r.E2E, base.E2E)
		}
	}
	out := FormatStaging("synthetic", rows)
	for _, want := range []string{"in-situ", "in-transit", "hybrid", "DataSpaces", "via disk"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted sweep missing %q:\n%s", want, out)
		}
	}
}

// TestStagingTraceShowsStagerThreads checks the trace figure renders the
// stager's runtime-thread rows alongside the application rows.
func TestStagingTraceShowsStagerThreads(t *testing.T) {
	fig := RunStagingTrace(6)
	if fig.Gantt == "" {
		t.Fatalf("no gantt rendered: %s", fig.Detail)
	}
	for _, row := range []string{"zstage.0.receiver", "zstage.0.forwarder", "ana.0"} {
		if !strings.Contains(fig.Gantt, row) {
			t.Fatalf("trace missing %s row:\n%s", row, fig.Gantt)
		}
	}
	if !strings.Contains(fig.Detail, "relayed") {
		t.Fatalf("detail missing relay counts: %s", fig.Detail)
	}
}
