package exp

import (
	"fmt"
	"strings"

	"zipper/internal/workflow"
)

// Table1 renders the experimental setup of the Figure 2 CFD workflow.
func Table1() string {
	spec := CFDBridges(0)
	w := spec.Workload
	total := int64(spec.P) * int64(w.Steps) * w.BytesPerStep
	var b strings.Builder
	b.WriteString("Table 1: Experimental setup of the CFD workflow experiments (Figure 2)\n")
	fmt.Fprintf(&b, "  Global input grid size (3D)   16384x64x256 (64x64x256 per process)\n")
	fmt.Fprintf(&b, "  #Simulation processes         %d processes on %d nodes\n",
		spec.P, (spec.P+spec.ProducerProcsPerNode-1)/spec.ProducerProcsPerNode)
	fmt.Fprintf(&b, "  #Analysis processes           %d processes on %d nodes\n",
		spec.Q, (spec.Q+spec.ConsumerProcsPerNode-1)/spec.ConsumerProcsPerNode)
	fmt.Fprintf(&b, "  Compute node                  %d cores, 128GB memory (%s)\n",
		spec.Machine.CoresPerNode, spec.Machine.Name)
	fmt.Fprintf(&b, "  #Data staging nodes           %d (DataSpaces/DIMES: 32 servers; Decaf: 64 links)\n",
		spec.StagingNodes)
	fmt.Fprintf(&b, "  #Time steps                   %d, every step analyzed\n", w.Steps)
	fmt.Fprintf(&b, "  Data analysis                 n-th moment turbulence analysis, n=4\n")
	fmt.Fprintf(&b, "  Total data moved              %d GB\n", total>>30)
	return b.String()
}

// Table2 renders the library configurations used for Figure 2.
func Table2() string {
	rows := [][3]string{
		{"ADIOS/DataSpaces + ADIOS/DIMES", "DataSpaces 1.6.2, ADIOS 1.13", "lock_type=1, hash_version=2"},
		{"Native DataSpaces + DIMES", "DataSpaces 1.6.2", "lock_type=2, dimes_rdma_buffer=1024MB"},
		{"ADIOS/MPI-IO", "ADIOS 1.13", "xml type=MPI, no time aggregation"},
		{"Flexpath", "EVPath, ADIOS 1.13", "CMTransport=socket, CM_Interface=ib0"},
		{"Decaf", "git 637eb58", "mpi_transport=on, redist=count"},
	}
	var b strings.Builder
	b.WriteString("Table 2: I/O transport library configurations modelled for Figure 2\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-32s %-30s %s\n", r[0], r[1], r[2])
	}
	b.WriteString("  (behavioural models in internal/transport reproduce these modes)\n")
	return b.String()
}

// Table3 renders the applications used in the experiments.
func Table3() string {
	rows := [][2]string{
		{"Synthetic O(n)", "emulates linear algorithms; standard variance analysis"},
		{"Synthetic O(nlogn)", "emulates divide&conquer algorithms; standard variance analysis"},
		{"Synthetic O(n^3/2)", "emulates matrix computations; standard variance analysis"},
		{"CFD application", "lattice Boltzmann 3D channel flow; turbulence n-th moment analysis"},
		{"LAMMPS application", "3D Lennard-Jones atoms melt; atom movement (MSD) statistics"},
	}
	var b strings.Builder
	b.WriteString("Table 3: Applications used in the experiments\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-22s %s\n", r[0], r[1])
	}
	return b.String()
}

// Specs exposes the pre-calibrated experiment configurations by name, for
// the CLI and for tests.
func Specs() map[string]workflow.Spec {
	return map[string]workflow.Spec{
		"cfd-bridges":      CFDBridges(0),
		"cfd-stampede2":    CFDStampede2(204, 0),
		"lammps-stampede2": LAMMPSStampede2(204, 0),
	}
}
