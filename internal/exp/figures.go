package exp

import (
	"fmt"
	"strings"
	"time"

	"zipper/internal/apps/synthetic"
	"zipper/internal/core"
	"zipper/internal/model"
	"zipper/internal/trace"
	"zipper/internal/transport"
	"zipper/internal/workflow"
)

// Scale divides an experiment's rank counts by k for laptop-speed runs. The
// per-rank workload is unchanged (weak scaling), so stage ratios and method
// ordering are preserved; only absolute aggregate bandwidth shifts.
func Scale(spec workflow.Spec, k int) workflow.Spec {
	if k <= 1 {
		return spec
	}
	spec.P /= k
	if spec.P < 2 {
		spec.P = 2
	}
	spec.Q /= k
	if spec.Q < 1 {
		spec.Q = 1
	}
	if spec.P < spec.Q {
		spec.Q = spec.P
	}
	if spec.StagingNodes > 1 {
		spec.StagingNodes = (spec.StagingNodes + k - 1) / k
	}
	// Shrink the file system with the compute so the PFS:network balance —
	// and hence the method ordering — is scale-invariant.
	if spec.Machine.OSTs > 2 {
		spec.Machine.OSTs /= k
		if spec.Machine.OSTs < 2 {
			spec.Machine.OSTs = 2
		}
	}
	return spec
}

// Fig2Row is one bar of Figure 2.
type Fig2Row struct {
	Method string
	E2E    time.Duration
	OK     bool
	Fail   string
}

// baselines returns fresh instances of the seven coupling methods in the
// paper's Figure 2 order.
func baselines(totalCores int) []transport.Method {
	fp := transport.NewFlexpath()
	fp.TotalCores = totalCores
	return []transport.Method{
		transport.NewDataSpaces(true),
		transport.NewDIMES(true),
		transport.NewMPIIO(),
		fp,
		transport.NewDecaf(),
		transport.NewDataSpaces(false),
		transport.NewDIMES(false),
	}
}

// RunFig2 reproduces Figure 2: the CFD workflow's end-to-end time under the
// seven I/O transport libraries, plus the simulation-only and analysis-only
// bars. scaleDiv shrinks the rank counts for quick runs (1 = paper scale).
func RunFig2(steps, scaleDiv int) []Fig2Row {
	spec := Scale(CFDBridges(steps), scaleDiv)
	var rows []Fig2Row
	for _, m := range baselines(spec.P + spec.Q) {
		res := workflow.RunBaseline(spec, m)
		rows = append(rows, Fig2Row{Method: res.Method, E2E: res.E2E, OK: res.OK, Fail: res.Fail})
	}
	sim := workflow.RunSimOnly(spec)
	ana := workflow.RunAnalysisOnly(spec)
	zip := workflow.RunZipper(spec)
	rows = append(rows,
		Fig2Row{Method: "Zipper", E2E: zip.E2E, OK: zip.OK, Fail: zip.Fail},
		Fig2Row{Method: sim.Method, E2E: sim.E2E, OK: sim.OK},
		Fig2Row{Method: ana.Method, E2E: ana.E2E, OK: ana.OK},
	)
	return rows
}

// FormatFig2 renders the rows as the paper-style bar listing.
func FormatFig2(rows []Fig2Row) string {
	var b strings.Builder
	b.WriteString("Figure 2: CFD workflow end-to-end time by I/O transport method\n")
	for _, r := range rows {
		if !r.OK {
			fmt.Fprintf(&b, "  %-18s FAILED: %s\n", r.Method, r.Fail)
			continue
		}
		fmt.Fprintf(&b, "  %-18s %8.1fs\n", r.Method, r.E2E.Seconds())
	}
	return b.String()
}

// TraceFigure holds a trace-based figure: the Gantt snapshot plus headline
// aggregates.
type TraceFigure struct {
	Title  string
	Gantt  string
	Detail string
}

// RunFig3 reproduces Figure 3: a workflow implementation overlapping
// simulation and analysis time steps, rendered from a real (simulated-
// platform) Zipper run — simulation and analysis rows advance concurrently.
func RunFig3() TraceFigure {
	spec := traceSpec(8)
	res := workflow.RunZipper(spec)
	g := res.Rec.Gantt(trace.GanttOptions{
		Width: 96,
		Procs: []string{"sim.0", "sim.1", "ana.0"},
		Symbols: map[string]rune{
			"compute": 'C', "MPI_Sendrecv": 'm', "analyze": 'A',
			"stall": '#', "step": ' ',
		},
	})
	det := fmt.Sprintf("simulation busy %.2fs and analysis busy %.2fs overlap within e2e %.2fs",
		res.Stages.Simulation.Seconds(), res.Stages.Analysis.Seconds(), res.E2E.Seconds())
	return TraceFigure{Title: "Figure 3: overlapping simulation and analysis steps", Gantt: g, Detail: det}
}

// traceSpec shrinks the CFD workflow for trace readability.
func traceSpec(steps int) workflow.Spec {
	spec := Scale(CFDBridges(steps), 32) // 8 producers, 4 consumers
	spec.Trace = true
	return spec
}

// RunFig4 reproduces Figure 4: a native DIMES trace with its lock_on_write
// periods and application stall when the analysis is slower.
func RunFig4() TraceFigure {
	spec := traceSpec(8)
	// Make analysis a little slower than simulation so the circular-slot
	// stall appears, as in the paper's configuration.
	spec.Workload.AnalyzePerByte = 18 * time.Nanosecond
	res := workflow.RunBaseline(spec, transport.NewDIMES(false))
	win := res.Rec.Window(res.E2E/3, res.E2E/3+2*res.E2E/8)
	g := win.Gantt(trace.GanttOptions{
		Width: 96,
		Procs: []string{"sim.0", "sim.1", "ana.0"},
		Symbols: map[string]rune{
			"CL": 'C', "ST": 'S', "UD": 'U', "MPI_Sendrecv": 'm',
			"lock_on_write": 'L', "PUT": 'P', "stall": '#', "GET": 'G',
			"lock_on_read": 'l', "analyze": 'A', "step": ' ',
		},
	})
	det := fmt.Sprintf("total lock_on_write %.2fs, stall %.2fs over %d producers; e2e %.2fs",
		res.Rec.Total("sim.", "lock_on_write").Seconds(),
		res.Rec.Total("sim.", "stall").Seconds(), spec.P, res.E2E.Seconds())
	return TraceFigure{Title: "Figure 4: native DIMES trace (snapshot)", Gantt: g, Detail: det}
}

// RunFig5 reproduces Figure 5: MPI_Sendrecv time inflation once Flexpath
// data staging shares the fabric with the LBM streaming phase.
func RunFig5() TraceFigure {
	spec := traceSpec(8)
	only := workflow.RunSimOnly(spec)
	with := workflow.RunBaseline(spec, transport.NewFlexpath())
	soloSR := only.Rec.Total("sim.", "MPI_Sendrecv")
	wfSR := with.Rec.Total("sim.", "MPI_Sendrecv")
	g := with.Rec.Window(0, with.E2E/2).Gantt(trace.GanttOptions{
		Width: 96,
		Procs: []string{"sim.0", "sim.1"},
		Symbols: map[string]rune{
			"CL": 'C', "ST": 'S', "UD": 'U', "MPI_Sendrecv": 'm',
			"PUT": 'P', "stall": '#', "step": ' ',
		},
	})
	det := fmt.Sprintf("MPI_Sendrecv total: CFD-only %.3fs vs Flexpath workflow %.3fs (%.2fx)",
		soloSR.Seconds(), wfSR.Seconds(), float64(wfSR)/float64(soloSR+1))
	return TraceFigure{Title: "Figure 5: CFD-only vs Flexpath workflow", Gantt: g, Detail: det}
}

// RunFig6 reproduces Figure 6: the Decaf PUT's collective MPI_Waitall stall
// and the inflated MPI_Sendrecv.
func RunFig6() TraceFigure {
	spec := traceSpec(8)
	only := workflow.RunSimOnly(spec)
	with := workflow.RunBaseline(spec, transport.NewDecaf())
	soloSR := only.Rec.Total("sim.", "MPI_Sendrecv")
	wfSR := with.Rec.Total("sim.", "MPI_Sendrecv")
	g := with.Rec.Window(0, with.E2E/2).Gantt(trace.GanttOptions{
		Width: 96,
		Procs: []string{"sim.0", "sim.1", "ana.0"},
		Symbols: map[string]rune{
			"CL": 'C', "ST": 'S', "UD": 'U', "MPI_Sendrecv": 'm',
			"serialize": 'z', "PUT": 'W', "analyze": 'A', "GET": 'G', "step": ' ',
		},
	})
	det := fmt.Sprintf("PUT (MPI_Waitall) total %.3fs across producers; MPI_Sendrecv %.3fs vs CFD-only %.3fs",
		with.Rec.Total("sim.", "PUT").Seconds(), wfSR.Seconds(), soloSR.Seconds())
	return TraceFigure{Title: "Figure 6: CFD-only vs Decaf workflow", Gantt: g, Detail: det}
}

// BreakdownRow is one column group of Figures 12/13.
type BreakdownRow struct {
	App        string
	BlockBytes int64
	Simulation time.Duration
	Transfer   time.Duration
	Store      time.Duration
	Analysis   time.Duration
	E2E        time.Duration
}

// RunBreakdown reproduces Figure 12 (NoPreserve) or Figure 13 (Preserve):
// the Zipper stage breakdown for the three synthetic applications at 1 MB
// and 8 MB block sizes. producers scales the run (paper: 1568).
func RunBreakdown(mode core.Mode, producers int) []BreakdownRow {
	var rows []BreakdownRow
	for _, blockBytes := range []int64{1 << 20, 8 << 20} {
		for _, c := range []synthetic.Complexity{synthetic.Linear, synthetic.NLogN, synthetic.N32} {
			spec := Synthetic(c, blockBytes, producers)
			spec.Zipper.Mode = mode
			res := workflow.RunZipper(spec)
			rows = append(rows, BreakdownRow{
				App:        c.String(),
				BlockBytes: blockBytes,
				Simulation: res.Stages.Simulation,
				Transfer:   res.Stages.Transfer,
				Store:      res.Stages.Store,
				Analysis:   res.Stages.Analysis,
				E2E:        res.E2E,
			})
		}
	}
	return rows
}

// FormatBreakdown renders Figure 12/13 rows.
func FormatBreakdown(title string, rows []BreakdownRow) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	fmt.Fprintf(&b, "  %-10s %-6s %10s %10s %10s %10s %10s\n",
		"app", "block", "sim", "transfer", "store", "analysis", "e2e")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-10s %-6s %9.1fs %9.1fs %9.1fs %9.1fs %9.1fs\n",
			r.App, fmt.Sprintf("%dMB", r.BlockBytes>>20),
			r.Simulation.Seconds(), r.Transfer.Seconds(), r.Store.Seconds(),
			r.Analysis.Seconds(), r.E2E.Seconds())
	}
	return b.String()
}

// SweepRow is one core count of Figures 14/15, with the message-passing-only
// and concurrent-optimization variants side by side.
type SweepRow struct {
	Cores int
	// Per-variant: producer compute busy, producer stall, sender busy,
	// XmitWait over producer nodes, blocks stolen.
	MP, Concurrent SweepCell
}

// SweepCell is one stacked column of Figure 14.
type SweepCell struct {
	Simulation time.Duration
	Stall      time.Duration
	Transfer   time.Duration
	// Wall is the simulation application's wall-clock time (Figure 14's
	// y-axis): when the producer side finished handing off its data.
	Wall     time.Duration
	E2E      time.Duration
	XmitWait int64
	Stolen   int64
}

// Fig14Cores are the paper's §6.2 weak-scaling points.
var Fig14Cores = []int{84, 168, 336, 588, 1176, 2352}

// RunConcurrentSweep reproduces Figures 14 and 15 for one synthetic
// complexity class: each core count is run with the message-passing-only
// method and with the concurrent message&file transfer optimization.
func RunConcurrentSweep(c synthetic.Complexity, cores []int, steps int) []SweepRow {
	var rows []SweepRow
	for _, n := range cores {
		producers := n * 2 / 3
		spec := Synthetic(c, 1<<20, producers)
		if steps > 0 {
			// Shorter bursts keep large sweeps fast; ratios are preserved.
			spec.Workload.Steps = steps
		}
		// §6.2 couples the kernels with the cheap one-pass standard-variance
		// reduction, so the producer side — generation rate vs network drain
		// rate — is what the experiment stresses.
		spec.Workload.AnalyzePerByte = time.Nanosecond
		run := func(disable bool) SweepCell {
			s := spec
			s.Zipper.BufferBlocks = 16
			s.Zipper.HighWater = 12
			s.Zipper.DisableSteal = disable
			res := workflow.RunZipper(s)
			return SweepCell{
				Simulation: res.Stages.Simulation,
				Stall:      res.ProducerStall,
				Transfer:   res.Stages.Transfer,
				Wall:       res.ProducerWallClock,
				E2E:        res.E2E,
				XmitWait:   res.XmitWaitProducers,
				Stolen:     res.BlocksStolen,
			}
		}
		rows = append(rows, SweepRow{Cores: n, MP: run(true), Concurrent: run(false)})
	}
	return rows
}

// FormatSweep renders Figure 14 (time stacks) and Figure 15 (XmitWait).
func FormatSweep(c synthetic.Complexity, rows []SweepRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figures 14/15 (%s): message-passing-only vs concurrent transfer\n", c)
	fmt.Fprintf(&b, "  %-6s | %10s %8s %8s %12s | %10s %8s %8s %12s %7s\n",
		"cores", "MP sim", "stall", "xfer", "XmitWait", "Conc sim", "stall", "xfer", "XmitWait", "stolen")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-6d | %9.1fs %7.1fs %7.1fs %12d | %9.1fs %7.1fs %7.1fs %12d %7d\n",
			r.Cores,
			r.MP.Simulation.Seconds(), r.MP.Stall.Seconds(), r.MP.Transfer.Seconds(), r.MP.XmitWait,
			r.Concurrent.Simulation.Seconds(), r.Concurrent.Stall.Seconds(),
			r.Concurrent.Transfer.Seconds(), r.Concurrent.XmitWait, r.Concurrent.Stolen)
	}
	return b.String()
}

// ScalingRow is one core count of Figures 16/18.
type ScalingRow struct {
	Cores   int
	Methods map[string]ScalingCell
}

// ScalingCell is one point of a scaling series.
type ScalingCell struct {
	E2E  time.Duration
	OK   bool
	Fail string
}

// RunScaling reproduces Figure 16 (app = "cfd") or Figure 18
// (app = "lammps"): weak-scaling end-to-end time for MPI-IO, Flexpath,
// Decaf, Zipper, and the simulation-only lower bound.
func RunScaling(app string, cores []int, steps int) []ScalingRow {
	var rows []ScalingRow
	for _, n := range cores {
		var spec workflow.Spec
		switch app {
		case "lammps":
			spec = LAMMPSStampede2(n, steps)
		default:
			spec = CFDStampede2(n, steps)
		}
		row := ScalingRow{Cores: n, Methods: map[string]ScalingCell{}}
		fp := transport.NewFlexpath()
		fp.TotalCores = n
		for _, m := range []transport.Method{transport.NewMPIIO(), fp, transport.NewDecaf()} {
			res := workflow.RunBaseline(spec, m)
			row.Methods[res.Method] = ScalingCell{E2E: res.E2E, OK: res.OK, Fail: res.Fail}
		}
		zip := workflow.RunZipper(spec)
		row.Methods["Zipper"] = ScalingCell{E2E: zip.E2E, OK: zip.OK, Fail: zip.Fail}
		sim := workflow.RunSimOnly(spec)
		row.Methods["Simulation-only"] = ScalingCell{E2E: sim.E2E, OK: sim.OK}
		rows = append(rows, row)
	}
	return rows
}

// FormatScaling renders Figure 16/18 rows.
func FormatScaling(title string, rows []ScalingRow) string {
	methods := []string{"MPI-IO", "Flexpath", "Decaf", "Zipper", "Simulation-only"}
	var b strings.Builder
	b.WriteString(title + "\n")
	fmt.Fprintf(&b, "  %-7s", "cores")
	for _, m := range methods {
		fmt.Fprintf(&b, " %15s", m)
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-7d", r.Cores)
		for _, m := range methods {
			c := r.Methods[m]
			if !c.OK {
				fmt.Fprintf(&b, " %15s", "CRASH")
				continue
			}
			fmt.Fprintf(&b, " %14.1fs", c.E2E.Seconds())
		}
		b.WriteString("\n")
	}
	return b.String()
}

// StepComparison is the Figure 17/19 result: steps completed by Zipper and
// Decaf within the same snapshot window.
type StepComparison struct {
	Title       string
	Window      time.Duration
	ZipperSteps float64
	DecafSteps  float64
	ZipperGantt string
	DecafGantt  string
}

// RunStepComparison reproduces Figure 17 (cfd, 204 cores) or Figure 19
// (lammps, 13,056 cores — pass a smaller core count for quick runs).
func RunStepComparison(app string, cores, steps int, window time.Duration) StepComparison {
	var spec workflow.Spec
	switch app {
	case "lammps":
		spec = LAMMPSStampede2(cores, steps)
	default:
		spec = CFDStampede2(cores, steps)
	}
	spec.Trace = true
	zip := workflow.RunZipper(spec)
	dec := workflow.RunBaseline(spec, transport.NewDecaf())
	if window <= 0 {
		window = zip.E2E / 4
	}
	from := zip.E2E / 4
	symbols := map[string]rune{
		"CL": 'C', "ST": 'S', "UD": 'U', "MPI_Sendrecv": 'm',
		"serialize": 'z', "PUT": 'W', "stall": '#', "step": ' ', "compute": 'c',
	}
	zg := zip.Rec.Window(from, from+window).Gantt(trace.GanttOptions{Width: 96, Procs: []string{"sim.0"}, Symbols: symbols})
	dg := dec.Rec.Window(from, from+window).Gantt(trace.GanttOptions{Width: 96, Procs: []string{"sim.0"}, Symbols: symbols})
	return StepComparison{
		Title:       fmt.Sprintf("Zipper vs Decaf (%s, %d cores, %v snapshot)", app, cores, window),
		Window:      window,
		ZipperSteps: zip.Rec.StepsIn("sim.", "step", from, from+window),
		DecafSteps:  dec.Rec.StepsIn("sim.", "step", from, from+window),
		ZipperGantt: zg,
		DecafGantt:  dg,
	}
}

// ModelRow compares the analytical model against a measured Zipper run.
type ModelRow struct {
	App       string
	Predicted time.Duration
	Measured  time.Duration
	Stage     string
}

// RunModelValidation reproduces §6.1's model check: predicted
// max(Tcomp, Ttransfer, Tanalysis) vs the measured end-to-end time for the
// three synthetic applications.
func RunModelValidation(producers int) []ModelRow {
	var rows []ModelRow
	for _, c := range []synthetic.Complexity{synthetic.Linear, synthetic.NLogN, synthetic.N32} {
		spec := Synthetic(c, 1<<20, producers)
		res := workflow.RunZipper(spec)
		w := spec.Workload
		nbPerRank := int64(w.Steps) * (w.BytesPerStep / w.BlockBytes)
		m := model.Model{
			P: spec.P, Q: spec.Q, NB: nbPerRank * int64(spec.P),
			Tc: time.Duration(float64(w.StepTime) / float64(w.BytesPerStep/w.BlockBytes)),
			Tm: time.Duration(float64(res.Stages.Transfer) / float64(nbPerRank)),
			Ta: time.Duration(w.BlockBytes) * w.AnalyzePerByte,
		}
		rows = append(rows, ModelRow{
			App:       c.String(),
			Predicted: m.TT2S(),
			Measured:  res.E2E,
			Stage:     m.Bottleneck(),
		})
	}
	return rows
}

// FormatModel renders the model validation rows.
func FormatModel(rows []ModelRow) string {
	var b strings.Builder
	b.WriteString("Performance model validation (§4.4/§6.1): T_t2s = max(Tcomp, Ttransfer, Tanalysis)\n")
	for _, r := range rows {
		ratio := float64(r.Measured) / float64(r.Predicted)
		fmt.Fprintf(&b, "  %-10s predicted %8.1fs (%s-bound)  measured %8.1fs  ratio %.2f\n",
			r.App, r.Predicted.Seconds(), r.Stage, r.Measured.Seconds(), ratio)
	}
	return b.String()
}
