package exp

import (
	"fmt"
	"strings"
	"time"

	"zipper/internal/core"
	"zipper/internal/elastic"
	"zipper/internal/trace"
	"zipper/internal/workflow"
)

// PoolSizeTimeline renders the elastic stager pool's size over time from the
// scaler's event log: the run is cut into `buckets` equal slices and each
// cell shows the live pool size at the end of that slice. It is the
// zippertrace view of the autoscaler's behavior — the size steps up as a
// burst saturates the tier and steps back down through the hysteresis band
// as the consumers catch up.
func PoolSizeTimeline(events []elastic.Event, initial int, end time.Duration, buckets int) string {
	if buckets < 1 {
		buckets = 32
	}
	if len(events) == 0 || end <= 0 {
		return "pool size: no scaling activity recorded"
	}
	var cells strings.Builder
	size, next := initial, 0
	for b := 1; b <= buckets; b++ {
		edge := time.Duration(int64(end) * int64(b) / int64(buckets))
		for next < len(events) && events[next].At <= edge {
			size = events[next].PoolSize
			next++
		}
		switch {
		case size > 9:
			cells.WriteByte('+')
		default:
			cells.WriteByte(byte('0' + size))
		}
	}
	return fmt.Sprintf("pool size over time (live stagers per %.0fms slice):\n  [%s]",
		float64(end)/float64(buckets)/1e6, cells.String())
}

// elasticSpec is the staging workload with the autoscaler on: the
// consumer-bound burst must grow the pool off its floor, and the tail of
// the run (producers done, consumers catching up) drains it back.
func elasticSpec(steps int) workflow.Spec {
	spec := stagingSpec("cfd", 8, steps)
	spec.P, spec.Q = 2, 1
	spec.Stagers = 3
	// A deliberately small per-endpoint buffer: each step's output burst
	// saturates one stager, so the pool must grow to ride it out.
	spec.StagerBufferBlocks = 8
	spec.Zipper.RoutePolicy = core.RouteStaging
	spec.Elastic = elastic.Config{
		Enabled: true, MinStagers: 1, MaxStagers: 3,
		Interval: time.Millisecond, Cooldown: 5 * time.Millisecond,
	}
	return spec
}

// RunElasticTrace renders an autoscaled staging run with the first stager's
// threads visible next to the simulation and analysis rows, plus the
// pool-size timeline — the elastic counterpart of the staging and adaptive
// trace views.
func RunElasticTrace(steps int) TraceFigure {
	spec := elasticSpec(steps)
	spec.Trace = true
	res := workflow.RunZipper(spec)
	if !res.OK {
		return TraceFigure{Title: "Elastic staging trace", Detail: "crash: " + res.Fail}
	}
	g := res.Rec.Gantt(trace.GanttOptions{
		Width: 96,
		Procs: []string{
			"sim.0", "zprod.0.sender",
			"zstage.0.receiver", "zstage.0.forwarder", "zstage.0.spiller",
			"zstage.1.receiver", "zstage.2.receiver",
			"ana.0",
		},
		Symbols: map[string]rune{
			"compute": 'C', "send": 's', "relay": 'R',
			"recv": 'r', "forward": 'F', "spill": 'S', "unspill": 'u',
			"analyze": 'A', "stall": '#', "step": ' ', "MPI_Sendrecv": 'm',
		},
	})
	grows, drains := 0, 0
	for _, ev := range res.ScaleEvents {
		if ev.Action == "grow" {
			grows++
		} else {
			drains++
		}
	}
	det := fmt.Sprintf(
		"elastic staging: %d relayed, %d stager spills, %d grows / %d drains, %.2f stager node-s within e2e %.2fs (stall %.2fs)\n%s",
		res.BlocksRelayed, res.StagerSpills, grows, drains, res.StagerNodeSeconds,
		res.E2E.Seconds(), res.ProducerStall.Seconds(),
		PoolSizeTimeline(res.ScaleEvents, spec.Elastic.MinStagers, res.E2E, 48))
	return TraceFigure{Title: "Staging tier: elastic pool trace", Gantt: g, Detail: det}
}
