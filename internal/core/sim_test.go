package core

import (
	"fmt"
	"testing"
	"time"

	"zipper/internal/fabric"
	"zipper/internal/pfs"
	"zipper/internal/rt/simenv"
	"zipper/internal/sim"
	"zipper/internal/trace"
)

// simRig wires producers and consumers over the simulated platform.
type simRig struct {
	eng  *sim.Engine
	fab  *fabric.Fabric
	fs   *pfs.PFS
	net  *simenv.Network
	st   *simenv.Store
	prod []*Producer
	cons []*Consumer
}

// newSimRig places each rank on its own node; PFS OSTs live on trailing
// nodes.
func newSimRig(cfg Config, producers, consumers, window int) *simRig {
	eng := sim.New()
	nodes := producers + consumers + 3 // +2 OSTs +1 MDS
	fab := fabric.New(eng, fabric.Config{
		Nodes:         nodes,
		NodesPerLeaf:  16,
		LinkBandwidth: 1e9,
		LinkLatency:   time.Microsecond,
		MTU:           256 << 10,
	})
	fs := pfs.New(eng, fab, pfs.Config{
		OSTNodes:     []fabric.NodeID{fabric.NodeID(nodes - 2), fabric.NodeID(nodes - 1)},
		MDSNode:      fabric.NodeID(nodes - 3),
		OSTBandwidth: 8e8,
	})
	var consNodes []fabric.NodeID
	for i := 0; i < consumers; i++ {
		consNodes = append(consNodes, fabric.NodeID(producers+i))
	}
	net := simenv.NewNetwork(eng, fab, consNodes, window)
	st := simenv.NewStore(fs, "zipper")
	r := &simRig{eng: eng, fab: fab, fs: fs, net: net, st: st}
	for i := 0; i < consumers; i++ {
		n := 0
		for p := 0; p < producers; p++ {
			if p*consumers/producers == i {
				n++
			}
		}
		env := simenv.NewEnv(eng, consNodes[i], 0)
		r.cons = append(r.cons, NewConsumer(env, cfg, i, n, net.Inbox(i), st))
	}
	for p := 0; p < producers; p++ {
		env := simenv.NewEnv(eng, fabric.NodeID(p), 0)
		r.prod = append(r.prod, NewProducer(env, cfg, p, p*consumers/producers, net, st))
	}
	return r
}

// runSimWorkflow drives producers that emit blocksPerStep blocks of
// blockBytes every computeTime, and consumers that spend analyzeTime per
// block. Returns the virtual end-to-end time.
func runSimWorkflow(t testing.TB, r *simRig, steps, blocksPerStep int, blockBytes int64,
	computeTime, analyzeTime time.Duration) time.Duration {
	t.Helper()
	for i, p := range r.prod {
		p := p
		env := simenv.NewEnv(r.eng, fabric.NodeID(i), 0)
		r.eng.Spawn(fmt.Sprintf("app.prod.%d", i), func(sp *sim.Proc) {
			c := env.WrapProc(sp)
			for s := 0; s < steps; s++ {
				sp.Delay(computeTime)
				for b := 0; b < blocksPerStep; b++ {
					p.Write(c, s, int64(b)*blockBytes, nil, blockBytes)
				}
			}
			p.Close(c)
			p.Wait(c)
		})
	}
	for i, cons := range r.cons {
		cons := cons
		node := cons.ID()
		env := simenv.NewEnv(r.eng, fabric.NodeID(len(r.prod)+node), 0)
		_ = i
		r.eng.Spawn(fmt.Sprintf("app.cons.%d", node), func(sp *sim.Proc) {
			c := env.WrapProc(sp)
			for {
				_, ok := cons.Read(c)
				if !ok {
					break
				}
				sp.Delay(analyzeTime)
			}
			cons.Wait(c)
		})
	}
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	return r.eng.Now()
}

func TestSimDeliveryCounts(t *testing.T) {
	r := newSimRig(Config{BufferBlocks: 8}, 4, 2, 4)
	runSimWorkflow(t, r, 10, 3, 1<<20, time.Millisecond, 100*time.Microsecond)
	var analyzed, written int64
	for _, cons := range r.cons {
		analyzed += cons.FinalStats().BlocksAnalyzed
		if cons.err != nil {
			t.Fatal(cons.err)
		}
	}
	for _, p := range r.prod {
		written += p.FinalStats().BlocksWritten
	}
	if written != 4*10*3 || analyzed != written {
		t.Fatalf("written %d analyzed %d, want both %d", written, analyzed, 4*10*3)
	}
}

func TestSimStealingRelievesStall(t *testing.T) {
	// Slow analysis: with stealing disabled the producer stalls far more.
	run := func(disable bool) (stall time.Duration, stolen int64) {
		cfg := Config{BufferBlocks: 8, HighWater: 4, DisableSteal: disable}
		r := newSimRig(cfg, 2, 1, 2)
		runSimWorkflow(t, r, 20, 4, 4<<20, 500*time.Microsecond, 30*time.Millisecond)
		for _, p := range r.prod {
			st := p.FinalStats()
			stall += st.WriteStall
			stolen += st.BlocksStolen
		}
		return
	}
	stallMP, stolenMP := run(true)
	stallConc, stolenConc := run(false)
	if stolenMP != 0 {
		t.Fatalf("message-passing-only stole %d blocks", stolenMP)
	}
	if stolenConc == 0 {
		t.Fatal("concurrent mode never stole despite slow consumer")
	}
	if stallConc >= stallMP {
		t.Fatalf("stealing did not reduce stall: %v (concurrent) vs %v (MP-only)", stallConc, stallMP)
	}
}

func TestSimFastConsumerNeverSteals(t *testing.T) {
	// Paper §6.2: when the producer buffer is mostly empty the concurrent
	// method falls back to message passing.
	cfg := Config{BufferBlocks: 8, HighWater: 4}
	r := newSimRig(cfg, 2, 2, 8)
	runSimWorkflow(t, r, 10, 2, 1<<20, 5*time.Millisecond, 10*time.Microsecond)
	for _, p := range r.prod {
		if stolen := p.FinalStats().BlocksStolen; stolen != 0 {
			t.Fatalf("producer %d stole %d blocks with a fast consumer", p.rank, stolen)
		}
	}
}

func TestSimXmitWaitGrowsUnderBackpressure(t *testing.T) {
	run := func(analyze time.Duration) int64 {
		cfg := Config{BufferBlocks: 8, DisableSteal: true}
		r := newSimRig(cfg, 4, 1, 1)
		runSimWorkflow(t, r, 10, 4, 4<<20, 100*time.Microsecond, analyze)
		var wait int64
		for i := range r.prod {
			wait += r.fab.NodeCounters(fabric.NodeID(i)).XmitWait
		}
		return wait
	}
	fast := run(10 * time.Microsecond)
	slow := run(20 * time.Millisecond)
	if slow <= fast {
		t.Fatalf("XmitWait did not grow under backpressure: fast=%d slow=%d", fast, slow)
	}
}

func TestSimPreserveStoresAll(t *testing.T) {
	cfg := Config{BufferBlocks: 8, Mode: Preserve}
	r := newSimRig(cfg, 2, 1, 4)
	runSimWorkflow(t, r, 5, 2, 1<<20, time.Millisecond, 100*time.Microsecond)
	var stored, stolen int64
	for _, cons := range r.cons {
		stored += cons.FinalStats().BlocksStored
	}
	for _, p := range r.prod {
		stolen += p.FinalStats().BlocksStolen
	}
	if stored+stolen != 2*5*2 {
		t.Fatalf("stored %d + spilled %d != %d blocks", stored, stolen, 2*5*2)
	}
	if reads, writes := r.fs.Stats(); writes == 0 || reads > writes {
		t.Fatalf("pfs reads=%d writes=%d inconsistent with preserve mode", reads, writes)
	}
}

func TestSimDeterministic(t *testing.T) {
	run := func() (time.Duration, int64) {
		cfg := Config{BufferBlocks: 8, HighWater: 4}
		r := newSimRig(cfg, 3, 2, 2)
		d := runSimWorkflow(t, r, 8, 3, 2<<20, 300*time.Microsecond, 2*time.Millisecond)
		var stolen int64
		for _, p := range r.prod {
			stolen += p.FinalStats().BlocksStolen
		}
		return d, stolen
	}
	d1, s1 := run()
	d2, s2 := run()
	if d1 != d2 || s1 != s2 {
		t.Fatalf("non-deterministic: (%v,%d) vs (%v,%d)", d1, s1, d2, s2)
	}
}

func TestSimTraceRecorderCapturesThreadActivity(t *testing.T) {
	rec := trace.NewRecorder()
	cfg := Config{BufferBlocks: 4, HighWater: 2, Recorder: rec}
	r := newSimRig(cfg, 1, 1, 1)
	runSimWorkflow(t, r, 10, 3, 4<<20, 100*time.Microsecond, 10*time.Millisecond)
	if rec.Total("zprod.0.sender", "send") == 0 {
		t.Fatal("no send spans recorded")
	}
	if r.prod[0].FinalStats().BlocksStolen > 0 && rec.Total("zprod.0.writer", "steal") == 0 {
		t.Fatal("steals happened but no steal spans recorded")
	}
	if rec.CountSpans("zcons.0.receiver", "recv") == 0 {
		t.Fatal("no recv spans recorded")
	}
}
