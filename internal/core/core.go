// Package core implements the Zipper runtime system (paper §4): a fully
// asynchronous, fine-grain, pipelining layer that sits below a simulation
// (producer) application and an analysis (consumer) application and above
// the network and parallel file system.
//
// Producer runtime module (§4.2, Figure 8): a bounded producer buffer, a
// sender thread that drains blocks to the consumer over the low-latency
// network as "mixed messages" (data block + IDs of blocks spilled to disk),
// and a writer thread running the adaptive work-stealing algorithm
// (Algorithm 1): when the buffer rises above a high-water threshold, the
// writer steals the oldest block and routes it through the parallel file
// system — the concurrent dual-channel transfer optimization (§4.3).
//
// Consumer runtime module (§4.2, Figure 9): a receiver thread that splits
// mixed messages into data blocks and on-disk IDs, a reader thread that
// fetches spilled blocks from the file system, an output thread (Preserve
// mode only) that persists blocks that are not yet on disk, and a bounded
// consumer buffer from which the analysis application reads blocks as they
// become available. A block is freed only once it has been analyzed and —
// in Preserve mode — stored.
//
// The runtime is written against the rt platform interfaces and runs
// unchanged on the real machine (realenv) and inside the discrete-event
// simulator (simenv).
package core

import (
	"fmt"
	"time"

	"zipper/internal/flow"
	"zipper/internal/place"
	"zipper/internal/reduce"
	"zipper/internal/trace"
)

// Mode selects whether computed results are kept on the file system.
type Mode int

const (
	// NoPreserve discards results after analysis (fast experiments).
	NoPreserve Mode = iota
	// Preserve keeps every block on the parallel file system for future
	// analysis, validation, and verification.
	Preserve
)

// String names the mode as the paper does.
func (m Mode) String() string {
	if m == Preserve {
		return "Preserve"
	}
	return "No Preserve"
}

// RoutePolicy selects how a producer's sender thread picks a channel for
// each drained batch when an in-transit stager is assigned.
type RoutePolicy int

const (
	// RouteDirect ignores the staging tier: blocks travel the in-memory
	// message path, relieved by the work-stealing file-system path. This is
	// the paper's original two-channel protocol and the zero value.
	RouteDirect RoutePolicy = iota
	// RouteStaging relays every batch through the assigned stager — the
	// pure in-transit configuration of the DataSpaces-style baselines.
	RouteStaging
	// RouteHybrid chooses per batch from live backpressure: direct while
	// the consumer's receive window has credit, staging relay while the
	// stager has buffer room, and otherwise the blocking direct path (where
	// the work-stealing writer drains the overflow to the file system).
	RouteHybrid
	// RouteAdaptive closes the loop that RouteHybrid only reacts to: a
	// flow.Adaptive controller tracks per-channel delivered-throughput and
	// producer-stall EWMAs and continuously rebalances the direct/staging
	// split so the producer never stalls while the consumer and stagers
	// run at their service rates. Tune it with Config.Adaptive.
	RouteAdaptive
)

// String names the policy for reports and sweeps. Out-of-range values render
// as "unknown(N)" so a misconfigured policy is visible instead of silently
// reading as in-situ.
func (r RoutePolicy) String() string {
	switch r {
	case RouteDirect:
		return "in-situ"
	case RouteStaging:
		return "in-transit"
	case RouteHybrid:
		return "hybrid"
	case RouteAdaptive:
		return "adaptive"
	default:
		return fmt.Sprintf("unknown(%d)", int(r))
	}
}

// Config tunes one side (producer or consumer) of the runtime.
type Config struct {
	// BufferBlocks is the producer buffer capacity in blocks (the paper's
	// num_slots circular FIFO). Zero selects 8.
	BufferBlocks int
	// HighWater is the stealing threshold in blocks: the writer thread
	// steals while more than this many blocks are queued. Zero selects
	// 3/4 of BufferBlocks. It must be < BufferBlocks to be reachable.
	HighWater int
	// ConsumerBufferBlocks is the consumer buffer capacity. Zero selects 16.
	ConsumerBufferBlocks int
	// MaxBatchBlocks caps how many buffered blocks the sender thread drains
	// into one mixed message. Zero or one selects the paper's original
	// one-block-per-message protocol; larger values amortize the per-message
	// overhead (header, window credit, send call) when the buffer runs deep.
	MaxBatchBlocks int
	// MaxBatchBytes caps a batch's total payload bytes. Zero means unlimited.
	// The head block of a batch is always taken, even when it alone exceeds
	// the cap, so oversized blocks still make progress.
	MaxBatchBytes int64
	// Mode selects Preserve or NoPreserve.
	Mode Mode
	// RoutePolicy picks the channel for each drained batch when the
	// producer has a stager assigned (see NewProducer's stager argument).
	RoutePolicy RoutePolicy
	// Adaptive tunes the RouteAdaptive controller; the zero value selects
	// the flow package's defaults.
	Adaptive flow.Tuning
	// NewRouter, when non-nil, overrides the policy-based router: each
	// producer gets its own instance from this factory, making any routing
	// strategy a plug-in rather than another branch in the sender thread.
	// It is consulted only when a stager is assigned. The producer routes
	// its Fin through the stager whenever the router relayed any batch, so
	// a custom policy cannot strand relayed blocks behind a direct Fin.
	NewRouter func() flow.Router
	// StagerLevel exposes the live occupancy gauge of the stager at a
	// transport address; nil means occupancy is unknown and the routing
	// policies fall back to window credit and producer buffer depth alone.
	StagerLevel func(addr int) *flow.Level
	// Directory, when non-nil, replaces the fixed per-producer stager
	// assignment with an epoch-versioned pool: the sender thread resolves
	// its stager from the live membership for every drained batch, so the
	// staging tier can grow and drain endpoints mid-run — and any
	// place.Policy can redirect batches — without touching the producer.
	// With a Directory the Fin always travels the direct path and counted
	// termination (Message.FinBlocks/FinDisk) covers relayed blocks still in
	// flight. The stager argument of NewStagedProducer is ignored.
	//
	// This per-batch resolution is also what makes fault-plane evictions
	// transparent to the producer: an eviction epoch (place.Directory.Sweep)
	// removes the dead member before the next Claim, so the very next batch
	// re-resolves to a surviving stager, and because the Fin declares totals
	// rather than naming a relay, nothing needs rebroadcasting when the
	// recovery reader later replays the dead stager's journal — the declared
	// counts balance once the replayed blocks land.
	Directory StagerDirectory
	// ConsumerDirectory, when non-nil, replaces the fixed producer→consumer
	// wiring (the `to` argument of NewProducer) with placement-plane
	// resolution: the sender thread resolves the destination consumer from
	// the directory for every drained batch, so a load-aware policy can
	// rebalance divergent producer rates across the analysis endpoints
	// mid-run. Termination turns counted on every path: instead of one Fin
	// to a fixed consumer, the producer sends a direct Fin to EVERY member,
	// each declaring that consumer's delivered totals, and each consumer
	// holds its stream open until its declared deliveries arrive — so a
	// batch relayed to one consumer just before the policy moved the
	// producer to another is never lost. Every consumer endpoint must then
	// be built expecting a Fin from every producer, and any staging tier in
	// play must itself run behind a Directory (a fixed-assignment stager
	// counts relayed Fins to terminate, which directory-placed producers
	// never send). The directory's membership must be static for the run.
	ConsumerDirectory *place.Directory
	// Reduce selects the in-transit payload reduction applied to relayed
	// batches. With OnPressure unset, each producer's sender thread encodes
	// the blocks of every batch it routes through a stager (the decode
	// happens once, at the consumer's receiver); with OnPressure set the
	// producer sends raw and the stager encodes only while its occupancy is
	// above the spill high-water mark — the "compress instead of spill"
	// rung. The zero value disables reduction entirely.
	Reduce reduce.Config
	// ReducePipeline, when non-nil, fans the sender thread's relay-path
	// encode out across the pipeline's shared worker pool instead of
	// encoding inline (Reduce.Workers != 0 selects it; zipper builds one
	// pipeline per job and hands it to every producer and stager). Only
	// consulted for stateless operators — Delta keeps its single in-order
	// encode path on the sender thread regardless (see reduce.Pipeline).
	// The pipeline encodes in place and joins before the send, so batch
	// order, per-stream run order, and wire bytes are identical to inline.
	ReducePipeline *reduce.Pipeline
	// DisableSteal turns the writer thread off, yielding the
	// message-passing-only baseline of §6.2.
	DisableSteal bool
	// Recorder, when non-nil, receives thread activity spans for trace
	// analysis (Figures 4–6, 17, 19 style views).
	Recorder *trace.Recorder
}

func (c Config) withDefaults() Config {
	if c.BufferBlocks <= 0 {
		c.BufferBlocks = 8
	}
	if c.HighWater <= 0 {
		c.HighWater = c.BufferBlocks * 3 / 4
	}
	if c.HighWater >= c.BufferBlocks {
		c.HighWater = c.BufferBlocks - 1
	}
	if c.HighWater < 1 {
		c.HighWater = 1
	}
	if c.ConsumerBufferBlocks <= 0 {
		c.ConsumerBufferBlocks = 16
	}
	if c.MaxBatchBlocks <= 0 {
		c.MaxBatchBlocks = 1
	}
	if c.MaxBatchBytes < 0 {
		c.MaxBatchBytes = 0
	}
	return c
}

// router builds the flow-control router a producer's sender thread consults
// for each drained batch.
func (c Config) router() flow.Router {
	if c.NewRouter != nil {
		return c.NewRouter()
	}
	switch c.RoutePolicy {
	case RouteStaging:
		return flow.Static(flow.Relay)
	case RouteHybrid:
		return flow.Reactive()
	case RouteAdaptive:
		return flow.NewAdaptive(c.Adaptive)
	default:
		return flow.Static(flow.Direct)
	}
}

// StagerDirectory is the epoch-versioned stager pool a producer consults
// when Config.Directory is set. It is the placement plane's resolution
// surface (place.Directory is the implementation; the interface form exists
// so tests can substitute their own). ok=false from Peek/Claim means the
// pool is empty (route direct).
type StagerDirectory = place.Endpoints

// ProducerStats is a snapshot of one producer runtime module's flow gauges:
// lifetime totals plus the live EWMA rates at snapshot time. Snapshots taken
// via Stats mid-run report the current delivery rates; after Wait the totals
// are final and the rates reflect the end of the stream.
type ProducerStats struct {
	BlocksWritten int64         // blocks the application handed to Write
	BlocksSent    int64         // blocks that left directly via the network path
	BlocksRelayed int64         // blocks that left via the in-transit staging relay
	BlocksStolen  int64         // blocks the writer thread routed via the file system
	Messages      int64         // mixed messages sent (including the Fin)
	BytesOnWire   int64         // payload bytes put on the network paths (encoded size when reduced)
	BytesReduced  int64         // payload bytes reduction kept off the wire (raw − encoded)
	WriteStall    time.Duration // time Write blocked on a full buffer
	SendBusy      time.Duration // sender thread time spent in Send
	StealBusy     time.Duration // writer thread time spent spilling
	Finished      time.Duration // when both threads had exited

	// Live EWMA gauges at snapshot time.
	WriteRate   float64 // blocks/s the application is writing
	DeliverRate float64 // blocks/s leaving by any channel (sent+relayed+stolen)
	StallFrac   float64 // fraction of recent time Write sat blocked
}

// ConsumerStats is a snapshot of one consumer runtime module's flow gauges.
type ConsumerStats struct {
	BlocksReceived int64         // blocks that arrived via the network path
	BlocksRead     int64         // blocks fetched from the file system path
	BlocksAnalyzed int64         // blocks handed to the analysis application
	BlocksStored   int64         // blocks persisted by the output thread
	BlocksLost     int64         // blocks an upstream relay declared unrecoverable
	ReadStall      time.Duration // time Read blocked waiting for data
	RecvBusy       time.Duration // receiver thread time in Recv
	DiskBusy       time.Duration // reader thread time in ReadBlock
	StoreBusy      time.Duration // output thread time in WriteBlock
	Finished       time.Duration // when all threads had exited

	// Live EWMA gauges at snapshot time.
	AnalyzeRate float64 // blocks/s delivered to the analysis application
	StallFrac   float64 // fraction of recent time Read sat blocked
	Queued      int     // blocks currently resident in the consumer buffer
	Capacity    int     // the consumer buffer's capacity in blocks
}
