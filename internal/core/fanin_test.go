package core

import (
	"sync"
	"testing"
	"time"
)

// TestFanInOrderingUnderBatching drives many producers into one consumer
// with deep batches over a one-message window — the fan-in regime where a
// mis-shared credit or a batch split across a Fin would scramble or strand
// blocks. With stealing disabled every block rides the network path, so
// per-producer delivery must be strictly seq-ordered, and the message
// counters must balance: each producer emits at least ceil(blocks/batch)
// data messages plus exactly one Fin, and the consumer sees every block
// exactly once.
func TestFanInOrderingUnderBatching(t *testing.T) {
	const producers, blocks, batch = 6, 120, 8
	r := newRealRig(t, Config{
		BufferBlocks: 16, MaxBatchBlocks: batch, DisableSteal: true,
	}, producers, 1, 1)
	c := r.env.Ctx()

	var wg sync.WaitGroup
	for i, p := range r.prod {
		wg.Add(1)
		go func(rank int, p *Producer) {
			defer wg.Done()
			for s := 0; s < blocks; s++ {
				data := []byte{byte(rank), byte(s)}
				p.Write(c, s, 0, data, 2)
			}
			p.Close(c)
			p.Wait(c)
		}(i, p)
	}

	lastSeq := map[int]int{}
	perRank := map[int]int{}
	n := 0
	for {
		b, ok := r.cons[0].Read(c)
		if !ok {
			break
		}
		if b.Data[0] != byte(b.ID.Rank) || b.Data[1] != byte(b.ID.Step) {
			t.Fatalf("block %v corrupted in fan-in", b.ID)
		}
		if last, seen := lastSeq[b.ID.Rank]; seen && b.ID.Seq != last+1 {
			t.Fatalf("rank %d reordered: seq %d after %d", b.ID.Rank, b.ID.Seq, last)
		}
		lastSeq[b.ID.Rank] = b.ID.Seq
		perRank[b.ID.Rank]++
		n++
		if n%16 == 0 {
			time.Sleep(200 * time.Microsecond) // keep the window full so batches form
		}
	}
	wg.Wait()
	r.cons[0].Wait(c)
	if err := r.cons[0].Err(c); err != nil {
		t.Fatal(err)
	}
	if n != producers*blocks {
		t.Fatalf("delivered %d blocks, want %d", n, producers*blocks)
	}
	for rank, got := range perRank {
		if got != blocks {
			t.Fatalf("rank %d delivered %d blocks, want %d", rank, got, blocks)
		}
	}

	var sent, msgs int64
	for _, p := range r.prod {
		st := p.Stats(c)
		if st.BlocksSent != blocks {
			t.Fatalf("producer sent %d blocks, want %d", st.BlocksSent, blocks)
		}
		if st.BlocksRelayed != 0 || st.BlocksStolen != 0 {
			t.Fatalf("fan-in leaked off the network path: relayed=%d stolen=%d", st.BlocksRelayed, st.BlocksStolen)
		}
		// One Fin each, and no more data messages than blocks (batching can
		// only reduce the count, never inflate it).
		if st.Messages < blocks/batch+1 || st.Messages > blocks+1 {
			t.Fatalf("message count %d outside [%d, %d]", st.Messages, blocks/batch+1, blocks+1)
		}
		sent += st.BlocksSent
		msgs += st.Messages
	}
	cs := r.cons[0].Stats(c)
	if cs.BlocksReceived != sent {
		t.Fatalf("credit accounting broken: consumer received %d of %d sent", cs.BlocksReceived, sent)
	}
	if cs.BlocksAnalyzed != sent {
		t.Fatalf("analyzed %d of %d received", cs.BlocksAnalyzed, sent)
	}
	if msgs <= int64(producers) {
		t.Fatalf("suspiciously few messages: %d", msgs)
	}
}
