package core

import (
	"fmt"
	"time"

	"zipper/internal/block"
	"zipper/internal/flow"
	"zipper/internal/reduce"
	"zipper/internal/rt"
)

// entry is one block resident in the consumer buffer with its lifecycle
// flags. A block is freed only when analyzed and, in Preserve mode, stored;
// release marks a payload the analysis has returned for recycling, which the
// runtime honors only once it no longer needs the bytes itself.
type entry struct {
	b        *block.Block
	analyzed bool
	stored   bool
	release  bool
}

// Consumer is one analysis process's runtime module. The analysis
// application calls Read repeatedly; ok=false reports that every producer
// finished and all their blocks were delivered and analyzed.
type Consumer struct {
	env rt.Env
	cfg Config
	id  int
	in  rt.Inbox
	fs  rt.BlockStore
	// dec restores reduced payloads at the receiver edge. It needs no
	// configuration — the block's Enc tag selects the decode path — so every
	// consumer owns one and any upstream hop is free to reduce.
	dec *reduce.Decoder

	lk        rt.Lock
	avail     rt.Cond // a block became available for analysis or state change
	space     rt.Cond // buffer space freed
	diskWork  rt.Cond // a disk ID arrived or receiver exited
	storeWork rt.Cond // an unstored block arrived or upstream exited
	done      rt.Cond // a runtime thread exited

	entries      []*entry
	pendingDisk  []pendingRead
	finsExpected int
	finsGot      int
	// Counted termination: Fins declare how many network blocks and disk
	// refs each producer emitted; the receiver holds the stream open until
	// the declared deliveries have arrived, so relayed blocks trailing a Fin
	// through an elastic stager pool are never dropped. Fixed configurations
	// satisfy the counts exactly when the last Fin arrives. seenLost counts
	// blocks an upstream relay declared dropped (spill-store failure) — they
	// satisfy the declared totals so a lossy stream still terminates.
	declaredBlocks int64
	declaredDisk   int64
	seenDisk       int64
	seenLost       int64
	recvDone       bool
	readerDone     bool
	outputDone     bool
	err            error
	finished       time.Duration
	fl             flow.ConsumerFlows
}

// pendingRead is a spilled block awaiting the reader thread.
type pendingRead struct {
	id    block.ID
	bytes int64
}

// NewConsumer builds the runtime module for one consumer endpoint that will
// see `producers` upstream ranks, and starts its receiver, reader, and (in
// Preserve mode) output threads.
func NewConsumer(env rt.Env, cfg Config, id int, producers int, in rt.Inbox, fs rt.BlockStore) *Consumer {
	cfg = cfg.withDefaults()
	if producers < 1 {
		panic("core: consumer needs at least one producer")
	}
	c := &Consumer{env: env, cfg: cfg, id: id, in: in, fs: fs, finsExpected: producers,
		dec: reduce.NewDecoder()}
	c.fl.Queue.SetCapacity(cfg.ConsumerBufferBlocks)
	c.lk = env.NewLock(fmt.Sprintf("zcons.%d", id))
	c.avail = c.lk.NewCond(fmt.Sprintf("zcons.%d.avail", id))
	c.space = c.lk.NewCond(fmt.Sprintf("zcons.%d.space", id))
	c.diskWork = c.lk.NewCond(fmt.Sprintf("zcons.%d.diskWork", id))
	c.storeWork = c.lk.NewCond(fmt.Sprintf("zcons.%d.storeWork", id))
	c.done = c.lk.NewCond(fmt.Sprintf("zcons.%d.done", id))
	env.Go(fmt.Sprintf("zcons.%d.receiver", id), c.receiverThread)
	env.Go(fmt.Sprintf("zcons.%d.reader", id), c.readerThread)
	if cfg.Mode == Preserve {
		env.Go(fmt.Sprintf("zcons.%d.output", id), c.outputThread)
	} else {
		c.outputDone = true
	}
	return c
}

// ID returns the consumer endpoint id.
func (c *Consumer) ID() int { return c.id }

func (c *Consumer) traceName(thread string) string {
	return fmt.Sprintf("zcons.%d.%s", c.id, thread)
}

// Read blocks until a data block is available and returns it, marking it
// analyzed. ok=false means the stream is complete (or failed; check Err).
// Blocks are delivered in arrival order, which may interleave steps and
// producers — each block carries its identity, so the analysis can place it.
func (c *Consumer) Read(x rt.Ctx) (*block.Block, bool) {
	c.lk.Lock(x)
	stallStart := x.Now()
	for {
		for _, e := range c.entries {
			if !e.analyzed {
				e.analyzed = true
				b := e.b
				c.fl.Analyzed.Add(x.Now(), 1)
				if stall := x.Now() - stallStart; stall > 0 {
					c.fl.ReadStall.AddDur(x.Now(), stall)
					if c.cfg.Recorder != nil {
						c.cfg.Recorder.Add(c.traceName("app"), "stall", stallStart, x.Now())
					}
				}
				c.reapLocked(x)
				c.lk.Unlock(x)
				return b, true
			}
		}
		if c.drainedLocked() || c.err != nil {
			if stall := x.Now() - stallStart; stall > 0 {
				c.fl.ReadStall.AddDur(x.Now(), stall)
			}
			c.lk.Unlock(x)
			return nil, false
		}
		c.avail.Wait(x)
	}
}

// drainedLocked reports whether no more analyzable blocks can appear.
func (c *Consumer) drainedLocked() bool {
	if !c.recvDone || !c.readerDone {
		return false
	}
	for _, e := range c.entries {
		if !e.analyzed {
			return false
		}
	}
	return true
}

// reapLocked frees entries that completed their lifecycle.
func (c *Consumer) reapLocked(x rt.Ctx) {
	kept := c.entries[:0]
	freed := false
	for _, e := range c.entries {
		if e.analyzed && (e.stored || c.cfg.Mode == NoPreserve) {
			freed = true
			continue
		}
		kept = append(kept, e)
	}
	c.entries = kept
	if freed {
		c.fl.Queue.Set(x.Now(), len(c.entries))
		c.space.Broadcast()
	}
}

// insertLocked waits for buffer space and appends a new entry. Once the
// consumer has failed (c.err set) space may never free again — the output
// thread is gone and analyzed-but-unstored entries occupy the buffer
// forever — so the wait gives up and the entry is appended over capacity:
// the stream is already lost, but the receiver must keep draining so Wait
// and the producers' Fins can complete.
func (c *Consumer) insertLocked(x rt.Ctx, b *block.Block) {
	for len(c.entries) >= c.cfg.ConsumerBufferBlocks && c.err == nil {
		c.space.Wait(x)
	}
	e := &entry{b: b, stored: b.OnDisk || c.cfg.Mode == NoPreserve}
	c.entries = append(c.entries, e)
	c.fl.Queue.Set(x.Now(), len(c.entries))
	c.avail.Signal()
	if !e.stored {
		c.storeWork.Signal()
	}
}

// ReleaseBlock hands b's payload back for recycling once the runtime is done
// with it. In NoPreserve mode (or once the block is stored) the payload goes
// back to the pool immediately; while the Preserve-mode output thread still
// needs the bytes, the release is deferred and happens right after the store
// completes. Call it from the analysis application when it has finished with
// a block obtained from Read; releasing a block whose payload the caller
// still reads corrupts the stream.
func (c *Consumer) ReleaseBlock(x rt.Ctx, b *block.Block) {
	if b == nil {
		return
	}
	c.lk.Lock(x)
	for _, e := range c.entries {
		if e.b == b {
			if !e.stored {
				e.release = true // output thread releases after storing
				c.lk.Unlock(x)
				return
			}
			break
		}
	}
	c.lk.Unlock(x)
	b.Release()
}

// Err reports a runtime failure (for example, an unreadable spilled block).
func (c *Consumer) Err(x rt.Ctx) error {
	c.lk.Lock(x)
	defer c.lk.Unlock(x)
	return c.err
}

// Wait blocks until the receiver, reader, and output threads have exited.
func (c *Consumer) Wait(x rt.Ctx) {
	c.lk.Lock(x)
	for !(c.recvDone && c.readerDone && c.outputDone) {
		c.done.Wait(x)
	}
	c.lk.Unlock(x)
}

// Flows exposes the module's live flow gauges.
func (c *Consumer) Flows() *flow.ConsumerFlows { return &c.fl }

// Level exposes the consumer-buffer occupancy gauge so the placement plane
// (a least-occupancy consumer directory) and any external observer can read
// both the instantaneous fill and its time-weighted average.
func (c *Consumer) Level() *flow.Level { return &c.fl.Queue }

// snapshot assembles a stats snapshot with rates evaluated at `now`.
func (c *Consumer) snapshot(now time.Duration, live bool) ConsumerStats {
	s := ConsumerStats{
		BlocksReceived: c.fl.Received.Total(),
		BlocksRead:     c.fl.Read.Total(),
		BlocksAnalyzed: c.fl.Analyzed.Total(),
		BlocksStored:   c.fl.Stored.Total(),
		BlocksLost:     c.seenLost,
		ReadStall:      c.fl.ReadStall.TotalDur(),
		RecvBusy:       c.fl.RecvBusy.TotalDur(),
		DiskBusy:       c.fl.DiskBusy.TotalDur(),
		StoreBusy:      c.fl.StoreBusy.TotalDur(),
		Finished:       c.finished,
	}
	if live {
		s.AnalyzeRate = c.fl.Analyzed.Rate(now)
		s.StallFrac = c.fl.ReadStall.Frac(now)
	} else {
		s.AnalyzeRate = c.fl.Analyzed.LastRate()
		s.StallFrac = c.fl.ReadStall.LastRate() / float64(time.Second)
	}
	s.Queued, s.Capacity = c.fl.Queue.Get()
	return s
}

// Stats returns a snapshot of the module's flow gauges: totals plus live
// EWMA rates as of the calling thread's clock. Call after Wait for final
// totals.
func (c *Consumer) Stats(x rt.Ctx) ConsumerStats {
	c.lk.Lock(x)
	s := c.snapshot(x.Now(), true)
	c.lk.Unlock(x)
	return s
}

// FinalStats returns the counters without a platform clock. It is safe only
// once the platform has fully stopped (for example, after the simulation
// engine's Run returned); rates are reported as of each gauge's last event.
func (c *Consumer) FinalStats() ConsumerStats { return c.snapshot(0, false) }

// receiverThread splits mixed messages into buffer entries and disk work
// until every upstream producer has sent Fin.
func (c *Consumer) receiverThread(x rt.Ctx) {
	for {
		start := x.Now()
		m, ok := c.in.Recv(x)
		busy := x.Now() - start
		// Restore reduced payloads before the blocks enter the buffer: the
		// analysis (and the Preserve-mode output thread) only ever sees raw
		// bytes. Decoding runs off-lock — it is the CPU-heavy half of the
		// reduction trade — and the simulated platform charges the pass at
		// memory bandwidth.
		var decErr error
		if ok {
			for _, b := range m.Blocks {
				if b.Enc == 0 {
					continue
				}
				c.env.CopyDelay(x, b.Bytes)
				if err := c.dec.DecodeBlock(b); err != nil {
					decErr = err
					break
				}
			}
		}
		c.lk.Lock(x)
		c.fl.RecvBusy.AddDur(x.Now(), busy)
		if !ok {
			break // inbox closed under us: treat as end of stream
		}
		if decErr != nil {
			// A payload that cannot be restored is stream corruption: fail
			// the run loudly rather than hand garbage to the analysis.
			c.err = fmt.Errorf("core: restoring reduced block: %w", decErr)
			break
		}
		if c.cfg.Recorder != nil && len(m.Blocks) > 0 {
			c.cfg.Recorder.Add(c.traceName("receiver"), "recv", start, start+busy)
		}
		for _, ref := range m.Disk {
			c.pendingDisk = append(c.pendingDisk, pendingRead{id: ref.ID, bytes: ref.Bytes})
		}
		c.seenDisk += int64(len(m.Disk))
		if len(m.Disk) > 0 {
			c.diskWork.Broadcast()
		}
		for _, b := range m.Blocks {
			c.fl.Received.Add(x.Now(), 1)
			c.insertLocked(x, b)
		}
		c.seenLost += m.Lost
		if m.Fin {
			c.finsGot++
			c.declaredBlocks += m.FinBlocks
			c.declaredDisk += m.FinDisk
		}
		// End of stream once every producer's Fin arrived AND their declared
		// deliveries are all in (blocks a relay declared dropped count too —
		// they can never arrive). Fins that declare nothing (legacy senders,
		// hand-built test messages) trivially satisfy the count, reproducing
		// the pure Fin-counted termination exactly.
		if c.finsGot == c.finsExpected &&
			c.fl.Received.Total()+c.seenLost >= c.declaredBlocks && c.seenDisk >= c.declaredDisk {
			break
		}
		c.lk.Unlock(x)
	}
	c.recvDone = true
	c.finished = x.Now()
	c.diskWork.Broadcast()
	c.storeWork.Broadcast()
	c.avail.Broadcast()
	c.done.Broadcast()
	c.lk.Unlock(x)
}

// readerThread fetches spilled blocks from the file system path and inserts
// them into the consumer buffer; in NoPreserve mode it reclaims the spill
// file afterwards.
func (c *Consumer) readerThread(x rt.Ctx) {
	c.lk.Lock(x)
	for {
		for len(c.pendingDisk) == 0 && !c.recvDone {
			c.diskWork.Wait(x)
		}
		if len(c.pendingDisk) == 0 && c.recvDone {
			break
		}
		pr := c.pendingDisk[0]
		c.pendingDisk = c.pendingDisk[1:]
		c.lk.Unlock(x)

		start := x.Now()
		b, err := c.fs.ReadBlock(x, pr.id, pr.bytes)
		busy := x.Now() - start
		if err == nil && c.cfg.Mode == NoPreserve {
			// Reclaim the temporary spill file; losing the remove is not
			// fatal, so the error is ignored by design.
			_ = c.fs.RemoveBlock(x, pr.id)
		}
		if c.cfg.Recorder != nil {
			c.cfg.Recorder.Add(c.traceName("reader"), "disk-read", start, start+busy)
		}

		c.lk.Lock(x)
		c.fl.DiskBusy.AddDur(x.Now(), busy)
		if err != nil {
			c.err = fmt.Errorf("core: reading spilled block %v: %w", pr.id, err)
			break
		}
		c.fl.Read.Add(x.Now(), 1)
		c.insertLocked(x, b)
	}
	c.readerDone = true
	c.finished = x.Now()
	c.avail.Broadcast()
	c.storeWork.Broadcast()
	c.space.Broadcast() // on error, free a receiver stuck in insertLocked
	c.done.Broadcast()
	c.lk.Unlock(x)
}

// outputThread (Preserve mode) persists blocks that are not yet on disk.
func (c *Consumer) outputThread(x rt.Ctx) {
	c.lk.Lock(x)
	for {
		var target *entry
		for _, e := range c.entries {
			if !e.stored {
				target = e
				break
			}
		}
		if target == nil {
			if c.recvDone && c.readerDone {
				break
			}
			c.storeWork.Wait(x)
			continue
		}
		c.lk.Unlock(x)

		start := x.Now()
		err := c.fs.WriteBlock(x, target.b)
		busy := x.Now() - start
		if c.cfg.Recorder != nil {
			c.cfg.Recorder.Add(c.traceName("output"), "store", start, start+busy)
		}

		c.lk.Lock(x)
		c.fl.StoreBusy.AddDur(x.Now(), busy)
		if err != nil {
			c.err = fmt.Errorf("core: preserving block %v: %w", target.b.ID, err)
			break
		}
		target.stored = true
		c.fl.Stored.Add(x.Now(), 1)
		if target.release {
			target.b.Release()
		}
		c.reapLocked(x)
	}
	c.outputDone = true
	c.finished = x.Now()
	c.space.Broadcast()
	c.done.Broadcast()
	c.lk.Unlock(x)
}
