package core

import (
	"fmt"
	"time"

	"zipper/internal/block"
	"zipper/internal/flow"
	"zipper/internal/reduce"
	"zipper/internal/rt"
)

// Producer is one simulation process's runtime module. The application
// thread calls Write for each fine-grain block and Close when done; the
// module's sender and writer threads move the data asynchronously.
type Producer struct {
	env    rt.Env
	cfg    Config
	rank   int
	to     int // fixed consumer endpoint (unused with a ConsumerDirectory)
	stager int // transport address of the assigned in-transit stager (-1 = none)
	tr     rt.Transport
	fs     rt.BlockStore
	router flow.Router
	// enc reduces relayed payloads at the sender (nil when reduction is off
	// or deferred to the stager's pressure gate). Owned by the sender
	// thread, which is what gives the Delta operator its in-order stream.
	enc *reduce.Encoder

	// Per-destination delivery totals, maintained by the sender thread when
	// a ConsumerDirectory resolves the consumer per batch: each consumer's
	// Fin declares exactly the blocks and disk refs that were addressed to
	// it, so counted termination stays correct when the placement policy
	// moves the producer between consumers mid-run.
	destBlocks map[int]int64
	destDisk   map[int]int64

	lk       rt.Lock
	notEmpty rt.Cond // buffer or disk-ID list gained content, or state change
	notFull  rt.Cond // buffer lost a block
	aboveHW  rt.Cond // buffer rose above the high-water mark
	done     rt.Cond // a runtime thread exited

	buf        []*block.Block
	diskIDs    []rt.DiskRef // spilled but not yet announced to the consumer
	seq        int          // next block sequence number
	closed     bool
	senderDone bool
	writerDone bool
	finished   time.Duration
	fl         flow.ProducerFlows
}

// NewProducer builds the runtime module for one producer rank feeding
// consumer endpoint `to`, and starts its sender and writer threads.
// Producers without a staging tier pass NoStager; see NewStagedProducer.
func NewProducer(env rt.Env, cfg Config, rank, to int, tr rt.Transport, fs rt.BlockStore) *Producer {
	return NewStagedProducer(env, cfg, rank, to, NoStager, tr, fs)
}

// NoStager is the stager address of a producer with no staging tier.
const NoStager = -1

// NewStagedProducer is NewProducer with an assigned in-transit stager:
// stager is the transport address (consumer count + stager index) the
// routing policy may relay batches through, or NoStager.
func NewStagedProducer(env rt.Env, cfg Config, rank, to, stager int, tr rt.Transport, fs rt.BlockStore) *Producer {
	cfg = cfg.withDefaults()
	if stager < 0 {
		stager = NoStager
	}
	p := &Producer{env: env, cfg: cfg, rank: rank, to: to, stager: stager, tr: tr, fs: fs}
	p.router = cfg.router()
	if cfg.Reduce.Enabled() && !cfg.Reduce.OnPressure {
		p.enc = reduce.NewEncoder(cfg.Reduce)
	}
	if cfg.ConsumerDirectory != nil {
		p.destBlocks = map[int]int64{}
		p.destDisk = map[int]int64{}
	}
	p.lk = env.NewLock(fmt.Sprintf("zprod.%d", rank))
	p.notEmpty = p.lk.NewCond(fmt.Sprintf("zprod.%d.notEmpty", rank))
	p.notFull = p.lk.NewCond(fmt.Sprintf("zprod.%d.notFull", rank))
	p.aboveHW = p.lk.NewCond(fmt.Sprintf("zprod.%d.aboveHW", rank))
	p.done = p.lk.NewCond(fmt.Sprintf("zprod.%d.done", rank))
	env.Go(fmt.Sprintf("zprod.%d.sender", rank), p.senderThread)
	if cfg.DisableSteal {
		p.writerDone = true
	} else {
		env.Go(fmt.Sprintf("zprod.%d.writer", rank), p.writerThread)
	}
	return p
}

// Rank returns the producer's rank.
func (p *Producer) Rank() int { return p.rank }

func (p *Producer) traceName(thread string) string {
	return fmt.Sprintf("zprod.%d.%s", p.rank, thread)
}

// Write hands one block of simulation output to the runtime. data may be nil
// in simulation mode, with bytes carrying the logical size; in real mode
// pass the payload and bytes == int64(len(data)). Write blocks only while
// the producer buffer is full — with stealing enabled the writer thread
// relieves that condition through the file-system path.
func (p *Producer) Write(c rt.Ctx, step int, offset int64, data []byte, bytes int64) {
	if data != nil && int64(len(data)) != bytes {
		panic(fmt.Sprintf("core: Write bytes %d != len(data) %d", bytes, len(data)))
	}
	p.env.CopyDelay(c, bytes)
	p.lk.Lock(c)
	if p.closed {
		p.lk.Unlock(c)
		panic("core: Write after Close")
	}
	b := &block.Block{
		ID:     block.ID{Rank: p.rank, Step: step, Seq: p.seq},
		Offset: offset,
		Bytes:  bytes,
		Data:   data,
	}
	p.seq++
	stallStart := c.Now()
	for len(p.buf) >= p.cfg.BufferBlocks {
		p.notFull.Wait(c)
	}
	if stall := c.Now() - stallStart; stall > 0 {
		p.fl.WriteStall.AddDur(c.Now(), stall)
		p.router.ObserveStall(c.Now(), stall)
		if p.cfg.Recorder != nil {
			p.cfg.Recorder.Add(p.traceName("app"), "stall", stallStart, c.Now())
		}
	}
	p.buf = append(p.buf, b)
	p.fl.Written.Add(c.Now(), 1)
	p.notEmpty.Signal()
	if len(p.buf) > p.cfg.HighWater {
		p.aboveHW.Signal()
	}
	p.lk.Unlock(c)
}

// Close tells the runtime no more blocks are coming. The sender thread
// drains the buffer and announces end-of-stream to the consumer; Close does
// not wait for that — use Wait.
func (p *Producer) Close(c rt.Ctx) {
	p.lk.Lock(c)
	p.closed = true
	p.notEmpty.Broadcast()
	p.aboveHW.Broadcast()
	p.lk.Unlock(c)
}

// Wait blocks until the sender and writer threads have exited (all data
// handed to the network or the file system and the Fin message sent).
func (p *Producer) Wait(c rt.Ctx) {
	p.lk.Lock(c)
	for !(p.senderDone && p.writerDone) {
		p.done.Wait(c)
	}
	p.lk.Unlock(c)
}

// Flows exposes the module's live flow gauges: totals plus EWMA rates that
// the flow-control plane (and any external observer) can read while the run
// is in flight.
func (p *Producer) Flows() *flow.ProducerFlows { return &p.fl }

// snapshot assembles a stats snapshot with rates evaluated at `now`.
func (p *Producer) snapshot(now time.Duration, live bool) ProducerStats {
	s := ProducerStats{
		BlocksWritten: p.fl.Written.Total(),
		BlocksSent:    p.fl.Sent.Total(),
		BlocksRelayed: p.fl.Relayed.Total(),
		BlocksStolen:  p.fl.Stolen.Total(),
		Messages:      p.fl.Messages.Total(),
		BytesOnWire:   p.fl.WireBytes.Total(),
		BytesReduced:  p.fl.SavedBytes.Total(),
		WriteStall:    p.fl.WriteStall.TotalDur(),
		SendBusy:      p.fl.SendBusy.TotalDur(),
		StealBusy:     p.fl.StealBusy.TotalDur(),
		Finished:      p.finished,
	}
	if live {
		s.WriteRate = p.fl.Written.Rate(now)
		s.DeliverRate = p.fl.Sent.Rate(now) + p.fl.Relayed.Rate(now) + p.fl.Stolen.Rate(now)
		s.StallFrac = p.fl.WriteStall.Frac(now)
	} else {
		s.WriteRate = p.fl.Written.LastRate()
		s.DeliverRate = p.fl.Sent.LastRate() + p.fl.Relayed.LastRate() + p.fl.Stolen.LastRate()
		s.StallFrac = p.fl.WriteStall.LastRate() / float64(time.Second)
	}
	return s
}

// Stats returns a snapshot of the module's flow gauges: totals plus live
// EWMA rates as of the calling thread's clock. Call after Wait for final
// totals.
func (p *Producer) Stats(c rt.Ctx) ProducerStats {
	p.lk.Lock(c)
	s := p.snapshot(c.Now(), true)
	p.lk.Unlock(c)
	return s
}

// FinalStats returns the counters without a platform clock. It is safe only
// once the platform has fully stopped (for example, after the simulation
// engine's Run returned); rates are reported as of each gauge's last event.
func (p *Producer) FinalStats() ProducerStats { return p.snapshot(0, false) }

// senderThread drains the producer buffer to the network in batches of up to
// MaxBatchBlocks / MaxBatchBytes, piggybacking the IDs of spilled blocks, and
// finally emits the Fin message.
func (p *Producer) senderThread(c rt.Ctx) {
	for {
		p.lk.Lock(c)
		for len(p.buf) == 0 && len(p.diskIDs) == 0 && !(p.closed && p.writerDone) {
			p.notEmpty.Wait(c)
		}
		if len(p.buf) == 0 && len(p.diskIDs) == 0 && p.closed && p.writerDone {
			p.lk.Unlock(c)
			break
		}
		blocks := p.drainBatchLocked()
		ids := p.diskIDs
		p.diskIDs = nil
		dest, to, route := p.routeLocked(c, len(blocks))
		p.lk.Unlock(c)

		if route == flow.Relay && p.enc != nil {
			// Reduce the batch before it hits the wire. The encoder touches
			// every raw byte, so the simulated platform charges the pass at
			// memory bandwidth; decode happens once, at the consumer edge.
			if pp := p.cfg.ReducePipeline; pp != nil && p.enc.Stateless() {
				// Parallel encode across the job's shared worker pool:
				// in-place and joined before the send, so batch order and
				// wire bytes match the inline path exactly.
				for _, b := range blocks {
					p.env.CopyDelay(c, b.Bytes)
				}
				if err := pp.EncodeBatch(blocks); err != nil {
					panic(fmt.Sprintf("core: reducing batch: %v", err))
				}
			} else {
				for _, b := range blocks {
					p.env.CopyDelay(c, b.Bytes)
					if err := p.enc.EncodeBlock(b); err != nil {
						panic(fmt.Sprintf("core: reducing block %v: %v", b.ID, err))
					}
				}
			}
		}
		var payload, wire int64
		for _, b := range blocks {
			payload += b.Bytes
			wire += b.WireBytes()
		}
		start := c.Now()
		p.tr.Send(c, dest, rt.Message{From: p.rank, Dest: to, Blocks: blocks, Disk: ids})
		if route == flow.Relay && p.cfg.Directory != nil {
			// The send has deposited: release the pool claim so a drain of
			// this stager can quiesce.
			p.cfg.Directory.Done(dest)
		}
		busy := c.Now() - start
		p.router.ObserveSend(route, c.Now(), busy, len(blocks), payload)

		p.lk.Lock(c)
		p.fl.SendBusy.AddDur(c.Now(), busy)
		p.fl.Messages.Add(c.Now(), 1)
		p.fl.WireBytes.Add(c.Now(), wire)
		if saved := payload - wire; saved > 0 {
			p.fl.SavedBytes.Add(c.Now(), saved)
		}
		if route == flow.Relay {
			p.fl.Relayed.Add(c.Now(), int64(len(blocks)))
		} else {
			p.fl.Sent.Add(c.Now(), int64(len(blocks)))
		}
		if p.destBlocks != nil {
			p.destBlocks[to] += int64(len(blocks))
			p.destDisk[to] += int64(len(ids))
		}
		p.lk.Unlock(c)
		if p.cfg.Recorder != nil {
			p.cfg.Recorder.Add(p.traceName("sender"), route.String(), start, start+busy)
		}
	}
	// Fin carries any last spilled IDs implicitly not needed: loop ensures
	// diskIDs is empty before exit.
	//
	// Note the loop drains the buffer completely before this point, so a
	// Close racing a partially filled batch cannot strand blocks: the exit
	// predicate requires both the buffer and the disk-ID list to be empty.
	//
	// With a staging tier in play the Fin travels through the stager: the
	// stager forwards per-producer arrivals in order, so the relayed Fin
	// trails every relayed block, and — because each Send deposits its
	// message before returning — every earlier direct-path message already
	// sits in the consumer's inbox. Either way the Fin is the last message
	// the consumer sees from this rank.
	//
	// The relayed-anything clause makes that ordering a mechanism rather
	// than a convention: even a custom NewRouter paired with a RouteDirect
	// policy cannot strand relayed blocks behind a direct Fin.
	//
	// With a pool Directory the producer may have relayed through several
	// stagers over its lifetime and no single relay path can order the Fin
	// behind all of them, so the Fin goes direct and termination leans on
	// the declared totals instead: the consumer holds its stream open until
	// FinBlocks network deliveries and FinDisk disk-ref announcements have
	// actually arrived, wherever they are still queued.
	//
	// With a ConsumerDirectory the destination itself was policy-resolved
	// per batch, so there is one direct Fin per consumer member, each
	// declaring that consumer's per-destination totals.
	p.sendFins(c)
	p.lk.Lock(c)
	p.senderDone = true
	p.finished = c.Now()
	p.done.Broadcast()
	p.lk.Unlock(c)
}

// sendFins emits the end-of-stream announcement(s) once the buffer and the
// disk-ID list have fully drained. Runs on the sender thread.
func (p *Producer) sendFins(c rt.Ctx) {
	if p.cfg.ConsumerDirectory != nil {
		// One Fin per consumer member — including consumers this producer
		// never reached, whose Fin declares zero deliveries: every consumer
		// was built expecting a Fin from every producer.
		for _, q := range p.cfg.ConsumerDirectory.Members() {
			start := c.Now()
			p.tr.Send(c, q, rt.Message{From: p.rank, Dest: q, Fin: true,
				FinBlocks: p.destBlocks[q], FinDisk: p.destDisk[q]})
			p.lk.Lock(c)
			p.fl.Messages.Add(c.Now(), 1)
			p.fl.SendBusy.AddDur(c.Now(), c.Now()-start)
			p.lk.Unlock(c)
		}
		return
	}
	finDest := p.to
	if p.cfg.Directory == nil && p.stager != NoStager &&
		(p.cfg.RoutePolicy != RouteDirect || p.fl.Relayed.Total() > 0) {
		finDest = p.stager
	}
	start := c.Now()
	p.tr.Send(c, finDest, rt.Message{From: p.rank, Dest: p.to, Fin: true,
		FinBlocks: p.fl.Sent.Total() + p.fl.Relayed.Total(),
		FinDisk:   p.fl.Stolen.Total()})
	p.lk.Lock(c)
	p.fl.Messages.Add(c.Now(), 1)
	p.fl.SendBusy.AddDur(c.Now(), c.Now()-start)
	p.lk.Unlock(c)
}

// drainBatchLocked removes up to MaxBatchBlocks / MaxBatchBytes blocks from
// the head of the producer buffer. The head block is always taken so an
// oversized block cannot wedge the sender; the byte cap applies only to
// growing the batch past it. Returns nil when the buffer is empty (a send
// that only announces spilled IDs).
func (p *Producer) drainBatchLocked() []*block.Block {
	if len(p.buf) == 0 {
		return nil
	}
	n := 1
	bytes := p.buf[0].Bytes
	for n < len(p.buf) && n < p.cfg.MaxBatchBlocks {
		next := p.buf[n]
		if p.cfg.MaxBatchBytes > 0 && bytes+next.Bytes > p.cfg.MaxBatchBytes {
			break
		}
		bytes += next.Bytes
		n++
	}
	blocks := make([]*block.Block, n)
	copy(blocks, p.buf[:n])
	p.buf = p.buf[n:]
	if n > 1 {
		p.notFull.Broadcast()
	} else {
		p.notFull.Signal()
	}
	return blocks
}

// routeLocked picks the endpoints for the batch the sender just drained:
// the destination consumer `to` (fixed wiring, or resolved per batch from
// the ConsumerDirectory by the placement policy), and the transport address
// `dest` the message is sent to (the consumer itself, or a staging relay).
// It assembles the live backpressure signals — window credit from the
// transport, stager occupancy from its flow gauge, and the remaining buffer
// backlog — and lets the configured flow.Router elect the channel. Called
// with the producer lock held, after drainBatchLocked, so len(p.buf) is the
// remaining backlog.
func (p *Producer) routeLocked(c rt.Ctx, batch int) (dest, to int, route flow.Route) {
	to = p.to
	if p.cfg.ConsumerDirectory != nil {
		if q, ok := p.cfg.ConsumerDirectory.Peek(p.rank); ok {
			to = q
		}
	}
	if p.cfg.Directory != nil {
		dest, route = p.routePoolLocked(c, to, batch)
		return dest, to, route
	}
	if p.stager == NoStager {
		return to, to, flow.Direct
	}
	// Fixed policies ignore every signal: skip the credit probes and the
	// occupancy gauge read so RouteDirect and RouteStaging keep their
	// zero-probe hot path.
	if r, ok := flow.StaticRoute(p.router); ok {
		if r == flow.Relay {
			return p.stager, to, flow.Relay
		}
		return to, to, flow.Direct
	}
	sig := p.signalsLocked(c, p.stager, to, batch)
	if p.router.Route(sig) == flow.Relay {
		return p.stager, to, flow.Relay
	}
	return to, to, flow.Direct
}

// routePoolLocked is routeLocked against a stager pool directory: the
// stager is resolved from the live membership for this batch alone. A relay
// election is committed with Claim — which re-resolves atomically, so a
// membership change between the signal read and the commit can redirect the
// batch but never lands it on a retired endpoint — and the sender releases
// the claim with Done once the send has deposited.
func (p *Producer) routePoolLocked(c rt.Ctx, to, batch int) (int, flow.Route) {
	addr, ok := p.cfg.Directory.Peek(p.rank)
	if !ok {
		return to, flow.Direct // empty pool: only the direct path exists
	}
	relay := false
	if r, fixed := flow.StaticRoute(p.router); fixed {
		relay = r == flow.Relay
	} else {
		relay = p.router.Route(p.signalsLocked(c, addr, to, batch)) == flow.Relay
	}
	if relay {
		if a, ok := p.cfg.Directory.Claim(p.rank); ok {
			return a, flow.Relay
		}
	}
	return to, flow.Direct
}

// signalsLocked assembles the live backpressure signals for a routing
// decision against the stager at addr, for a batch destined to consumer to.
func (p *Producer) signalsLocked(c rt.Ctx, addr, to, batch int) flow.Signals {
	sig := flow.Signals{
		Now:            c.Now(),
		Backlog:        len(p.buf),
		Capacity:       p.cfg.BufferBlocks,
		HighWater:      p.cfg.HighWater,
		Credits:        flow.CreditsUnknown,
		StagerCredits:  flow.CreditsUnknown,
		StagerQueued:   flow.OccupancyUnknown,
		StagerCapacity: flow.OccupancyUnknown,
		Batch:          batch,
	}
	if ct, ok := p.tr.(rt.CreditTransport); ok {
		sig.Credits = ct.Credits(to)
		sig.StagerCredits = ct.Credits(addr)
	}
	if p.cfg.StagerLevel != nil {
		if lv := p.cfg.StagerLevel(addr); lv != nil {
			sig.StagerQueued, sig.StagerCapacity = lv.Get()
		}
	}
	return sig
}

// writerThread is Algorithm 1: steal the oldest block whenever the buffer is
// above the high-water threshold and route it through the parallel file
// system. If a spill fails, the block is returned to the buffer and stealing
// is disabled so no data is lost.
func (p *Producer) writerThread(c rt.Ctx) {
	for {
		p.lk.Lock(c)
		for len(p.buf) <= p.cfg.HighWater && !p.closed {
			p.aboveHW.Wait(c)
		}
		if p.closed {
			p.writerDone = true
			p.finished = c.Now()
			p.notEmpty.Broadcast()
			p.done.Broadcast()
			p.lk.Unlock(c)
			return
		}
		b := p.buf[0]
		p.buf = p.buf[1:]
		p.notFull.Signal()
		p.lk.Unlock(c)

		start := c.Now()
		err := p.fs.WriteBlock(c, b)
		busy := c.Now() - start

		p.lk.Lock(c)
		p.fl.StealBusy.AddDur(c.Now(), busy)
		if err != nil {
			// Put the block back at the front: order within the network path
			// is not load-bearing, but data must not be lost.
			p.buf = append([]*block.Block{b}, p.buf...)
			p.writerDone = true
			p.notEmpty.Broadcast()
			p.done.Broadcast()
			p.lk.Unlock(c)
			return
		}
		p.fl.Stolen.Add(c.Now(), 1)
		p.diskIDs = append(p.diskIDs, rt.DiskRef{ID: b.ID, Bytes: b.Bytes})
		p.notEmpty.Signal() // the ID list alone is worth announcing
		p.lk.Unlock(c)
		if p.cfg.Recorder != nil {
			p.cfg.Recorder.Add(p.traceName("writer"), "steal", start, start+busy)
		}
	}
}
