package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"zipper/internal/block"
	"zipper/internal/floatbuf"
	"zipper/internal/rt"
	"zipper/internal/rt/realenv"
)

// --- real-platform tests ---

type realRig struct {
	env  *realenv.Env
	net  *realenv.Network
	fs   *realenv.FileStore
	prod []*Producer
	cons []*Consumer
}

func newRealRig(t *testing.T, cfg Config, producers, consumers, window int) *realRig {
	t.Helper()
	env := realenv.New()
	net := realenv.NewNetwork(consumers, window)
	fs, err := realenv.NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r := &realRig{env: env, net: net, fs: fs}
	for i := 0; i < consumers; i++ {
		n := 0
		for p := 0; p < producers; p++ {
			if p*consumers/producers == i {
				n++
			}
		}
		r.cons = append(r.cons, NewConsumer(env, cfg, i, n, net.Inbox(i), fs))
	}
	for p := 0; p < producers; p++ {
		r.prod = append(r.prod, NewProducer(env, cfg, p, p*consumers/producers, net, fs))
	}
	return r
}

func TestRealRoundTrip(t *testing.T) {
	r := newRealRig(t, Config{BufferBlocks: 4}, 2, 1, 4)
	c := r.env.Ctx()

	const blocksPerProducer = 10
	var wg sync.WaitGroup
	for _, p := range r.prod {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := 0; s < blocksPerProducer; s++ {
				data := floatbuf.Encode([]float64{float64(p.Rank()), float64(s)})
				p.Write(c, s, int64(s*16), data, int64(len(data)))
			}
			p.Close(c)
			p.Wait(c)
		}()
	}

	got := map[block.ID][]float64{}
	for {
		b, ok := r.cons[0].Read(c)
		if !ok {
			break
		}
		got[b.ID] = floatbuf.Decode(b.Data)
	}
	wg.Wait()
	r.cons[0].Wait(c)

	if len(got) != 2*blocksPerProducer {
		t.Fatalf("received %d blocks, want %d", len(got), 2*blocksPerProducer)
	}
	for id, vals := range got {
		if len(vals) != 2 || vals[0] != float64(id.Rank) || vals[1] != float64(id.Step) {
			t.Fatalf("block %v payload corrupted: %v", id, vals)
		}
	}
	if err := r.cons[0].Err(c); err != nil {
		t.Fatal(err)
	}
}

func TestRealStealingUnderSlowConsumer(t *testing.T) {
	cfg := Config{BufferBlocks: 4, HighWater: 2}
	r := newRealRig(t, cfg, 1, 1, 1)
	c := r.env.Ctx()
	p := r.prod[0]

	const n = 40
	go func() {
		for s := 0; s < n; s++ {
			p.Write(c, s, 0, make([]byte, 1024), 1024)
		}
		p.Close(c)
	}()

	seen := 0
	for {
		b, ok := r.cons[0].Read(c)
		if !ok {
			break
		}
		if b.Bytes != 1024 {
			t.Fatalf("block %v has %d bytes", b.ID, b.Bytes)
		}
		seen++
		time.Sleep(2 * time.Millisecond) // slow analysis
	}
	p.Wait(c)
	r.cons[0].Wait(c)

	if seen != n {
		t.Fatalf("analyzed %d blocks, want %d", seen, n)
	}
	ps := p.Stats(c)
	if ps.BlocksStolen == 0 {
		t.Fatal("slow consumer never triggered stealing")
	}
	if ps.BlocksSent+ps.BlocksStolen != n {
		t.Fatalf("sent %d + stolen %d != %d", ps.BlocksSent, ps.BlocksStolen, n)
	}
	cs := r.cons[0].Stats(c)
	if cs.BlocksRead != ps.BlocksStolen {
		t.Fatalf("disk reads %d != steals %d", cs.BlocksRead, ps.BlocksStolen)
	}
}

func TestRealDisableStealNeverSpills(t *testing.T) {
	cfg := Config{BufferBlocks: 4, DisableSteal: true}
	r := newRealRig(t, cfg, 1, 1, 1)
	c := r.env.Ctx()
	p := r.prod[0]
	go func() {
		for s := 0; s < 20; s++ {
			p.Write(c, s, 0, make([]byte, 512), 512)
		}
		p.Close(c)
	}()
	n := 0
	for {
		_, ok := r.cons[0].Read(c)
		if !ok {
			break
		}
		n++
		time.Sleep(time.Millisecond)
	}
	p.Wait(c)
	if n != 20 {
		t.Fatalf("analyzed %d, want 20", n)
	}
	if s := p.Stats(c); s.BlocksStolen != 0 {
		t.Fatalf("stolen %d with stealing disabled", s.BlocksStolen)
	}
}

func TestRealPreserveStoresEveryBlock(t *testing.T) {
	cfg := Config{BufferBlocks: 4, Mode: Preserve}
	r := newRealRig(t, cfg, 1, 1, 2)
	c := r.env.Ctx()
	p := r.prod[0]
	const n = 12
	go func() {
		for s := 0; s < n; s++ {
			p.Write(c, s, 0, floatbuf.Encode([]float64{float64(s)}), 8)
		}
		p.Close(c)
	}()
	for {
		if _, ok := r.cons[0].Read(c); !ok {
			break
		}
	}
	p.Wait(c)
	r.cons[0].Wait(c)

	// Every block must be readable back from the store, whether it traveled
	// by network (output thread stored it) or by disk (writer spilled it).
	for s := 0; s < n; s++ {
		id := block.ID{Rank: 0, Step: s, Seq: s}
		b, err := r.fs.ReadBlock(c, id, 8)
		if err != nil {
			t.Fatalf("block %v not preserved: %v", id, err)
		}
		if vals := floatbuf.Decode(b.Data); vals[0] != float64(s) {
			t.Fatalf("preserved block %v corrupt: %v", id, vals)
		}
	}
	cs := r.cons[0].Stats(c)
	if ps := p.Stats(c); cs.BlocksStored+ps.BlocksStolen != n {
		t.Fatalf("stored %d + spilled %d != %d", cs.BlocksStored, ps.BlocksStolen, n)
	}
}

func TestRealManyToMany(t *testing.T) {
	cfg := Config{BufferBlocks: 8}
	const producers, consumers, steps = 6, 3, 15
	r := newRealRig(t, cfg, producers, consumers, 4)
	c := r.env.Ctx()

	for _, p := range r.prod {
		p := p
		go func() {
			for s := 0; s < steps; s++ {
				p.Write(c, s, 0, make([]byte, 256), 256)
			}
			p.Close(c)
		}()
	}
	var mu sync.Mutex
	total := 0
	var wg sync.WaitGroup
	for _, cons := range r.cons {
		cons := cons
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if _, ok := cons.Read(c); !ok {
					return
				}
				mu.Lock()
				total++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if total != producers*steps {
		t.Fatalf("analyzed %d blocks, want %d", total, producers*steps)
	}
}

// failStore wraps a BlockStore and fails configured operations.
type failStore struct {
	rt.BlockStore
	mu         sync.Mutex
	failWrites int
	failReads  int
}

func (f *failStore) WriteBlock(c rt.Ctx, b *block.Block) error {
	f.mu.Lock()
	fail := f.failWrites > 0
	if fail {
		f.failWrites--
	}
	f.mu.Unlock()
	if fail {
		return errors.New("injected write failure")
	}
	return f.BlockStore.WriteBlock(c, b)
}

func (f *failStore) ReadBlock(c rt.Ctx, id block.ID, bytes int64) (*block.Block, error) {
	f.mu.Lock()
	fail := f.failReads > 0
	if fail {
		f.failReads--
	}
	f.mu.Unlock()
	if fail {
		return nil, errors.New("injected read failure")
	}
	return f.BlockStore.ReadBlock(c, id, bytes)
}

func TestRealWriterSpillFailureLosesNoData(t *testing.T) {
	env := realenv.New()
	net := realenv.NewNetwork(1, 1)
	base, err := realenv.NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fs := &failStore{BlockStore: base, failWrites: 1 << 30} // every spill fails
	cfg := Config{BufferBlocks: 4, HighWater: 2}
	cons := NewConsumer(env, cfg, 0, 1, net.Inbox(0), fs)
	prod := NewProducer(env, cfg, 0, 0, net, fs)
	c := env.Ctx()
	const n = 25
	go func() {
		for s := 0; s < n; s++ {
			prod.Write(c, s, 0, make([]byte, 128), 128)
		}
		prod.Close(c)
	}()
	seen := 0
	for {
		if _, ok := cons.Read(c); !ok {
			break
		}
		seen++
		time.Sleep(time.Millisecond)
	}
	prod.Wait(c)
	if seen != n {
		t.Fatalf("analyzed %d blocks, want %d (spill failure must not lose data)", seen, n)
	}
	if s := prod.Stats(c); s.BlocksStolen != 0 {
		t.Fatalf("stolen %d despite failing store", s.BlocksStolen)
	}
}

func TestRealReaderFailureSurfacesError(t *testing.T) {
	env := realenv.New()
	net := realenv.NewNetwork(1, 1)
	base, err := realenv.NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fs := &failStore{BlockStore: base, failReads: 1 << 30}
	cfg := Config{BufferBlocks: 4, HighWater: 1}
	cons := NewConsumer(env, cfg, 0, 1, net.Inbox(0), fs)
	prod := NewProducer(env, cfg, 0, 0, net, fs)
	c := env.Ctx()
	go func() {
		for s := 0; s < 30; s++ {
			prod.Write(c, s, 0, make([]byte, 128), 128)
		}
		prod.Close(c)
	}()
	for {
		if _, ok := cons.Read(c); !ok {
			break
		}
		time.Sleep(2 * time.Millisecond) // force spills, hence disk reads
	}
	prod.Wait(c)
	if prod.Stats(c).BlocksStolen == 0 {
		t.Skip("no spill happened; cannot exercise read failure")
	}
	if cons.Err(c) == nil {
		t.Fatal("reader failure did not surface via Err")
	}
}

func TestWriteAfterClosePanics(t *testing.T) {
	r := newRealRig(t, Config{}, 1, 1, 1)
	c := r.env.Ctx()
	p := r.prod[0]
	go func() {
		for {
			if _, ok := r.cons[0].Read(c); !ok {
				return
			}
		}
	}()
	p.Close(c)
	defer func() {
		if recover() == nil {
			t.Fatal("Write after Close did not panic")
		}
	}()
	p.Write(c, 0, 0, []byte{1}, 1)
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.BufferBlocks != 8 || cfg.HighWater != 6 || cfg.ConsumerBufferBlocks != 16 {
		t.Fatalf("defaults = %+v", cfg)
	}
	cfg = Config{BufferBlocks: 2, HighWater: 5}.withDefaults()
	if cfg.HighWater != 1 {
		t.Fatalf("high water not clamped below capacity: %+v", cfg)
	}
	if NoPreserve.String() != "No Preserve" || Preserve.String() != "Preserve" {
		t.Fatal("mode names wrong")
	}
}

func TestStatsAccounting(t *testing.T) {
	cfg := Config{BufferBlocks: 4}
	r := newRealRig(t, cfg, 1, 1, 4)
	c := r.env.Ctx()
	p := r.prod[0]
	const n = 8
	go func() {
		for s := 0; s < n; s++ {
			p.Write(c, s, 0, make([]byte, 64), 64)
		}
		p.Close(c)
	}()
	for {
		if _, ok := r.cons[0].Read(c); !ok {
			break
		}
	}
	p.Wait(c)
	r.cons[0].Wait(c)
	ps, cs := p.Stats(c), r.cons[0].Stats(c)
	if ps.BlocksWritten != n {
		t.Fatalf("written %d", ps.BlocksWritten)
	}
	if cs.BlocksAnalyzed != n {
		t.Fatalf("analyzed %d", cs.BlocksAnalyzed)
	}
	if cs.BlocksReceived+cs.BlocksRead != n {
		t.Fatalf("received %d + read %d != %d", cs.BlocksReceived, cs.BlocksRead, n)
	}
	if ps.Messages < ps.BlocksSent+1 { // at least one message per sent block + Fin
		t.Fatalf("messages %d < sent %d + fin", ps.Messages, ps.BlocksSent)
	}
}
