package core

import (
	"sync"
	"testing"
	"time"

	"zipper/internal/fabric"
	"zipper/internal/flow"
	"zipper/internal/pfs"
	"zipper/internal/rt"
	"zipper/internal/rt/simenv"
	"zipper/internal/sim"
	"zipper/internal/staging"
)

// routeCapture wraps the simulated network, recording the destination and
// virtual time of every producer send while preserving credit visibility.
type routeCapture struct {
	inner *simenv.Network
	mu    sync.Mutex
	dests []int
	times []time.Duration
}

func (t *routeCapture) Send(c rt.Ctx, to int, m rt.Message) {
	if len(m.Blocks) > 0 { // data sends only: Fins and ID-only sends don't split
		t.mu.Lock()
		t.dests = append(t.dests, to)
		t.times = append(t.times, c.Now())
		t.mu.Unlock()
	}
	t.inner.Send(c, to, m)
}

func (t *routeCapture) Credits(to int) int { return t.inner.Credits(to) }

// adaptiveStepRun wires one producer through one stager to one consumer on
// the simulated platform and drives a step-change workload: the consumer
// analyzes fast, then slows 30× for a mid-stream window while the producer
// keeps writing well past the recovery, then recovers. It returns the
// producer's send log and the virtual times at which the slowdown started
// and ended.
func adaptiveStepRun(t *testing.T) (dests []int, times []time.Duration, slowStart, slowEnd time.Duration, ps ProducerStats) {
	t.Helper()
	const (
		blocks     = 300
		blockBytes = 64 << 10
		slowFrom   = 80
		slowTo     = 130
	)
	eng := sim.New()
	// Nodes: 0 producer, 1 consumer, 2 stager, 3-4 OSTs, 5 MDS.
	fab := fabric.New(eng, fabric.Config{
		Nodes: 6, NodesPerLeaf: 16, LinkBandwidth: 1e9, LinkLatency: time.Microsecond, MTU: 256 << 10,
	})
	fs := pfs.New(eng, fab, pfs.Config{
		OSTNodes: []fabric.NodeID{3, 4}, MDSNode: 5, OSTBandwidth: 8e8,
	})
	net := simenv.NewNetwork(eng, fab, []fabric.NodeID{1, 2}, 2)
	store := simenv.NewStore(fs, "zipper")
	cap := &routeCapture{inner: net}

	cfg := Config{
		BufferBlocks: 8, HighWater: 6, MaxBatchBlocks: 2,
		RoutePolicy: RouteAdaptive,
		Adaptive:    flow.Tuning{Tau: 2 * time.Millisecond, Decay: 10 * time.Millisecond},
	}
	cons := NewConsumer(simenv.NewEnv(eng, 1, 0), cfg, 0, 1, net.Inbox(0), store)
	stg := staging.NewStager(simenv.NewEnv(eng, 2, 0),
		staging.Config{BufferBlocks: 64, MaxBatchBlocks: 2, Producers: 1},
		0, net.Inbox(1), net, simenv.NewStore(fs, "zipper-stage0"))
	cfg.StagerLevel = func(addr int) *flow.Level { return stg.Level() }
	prod := NewStagedProducer(simenv.NewEnv(eng, 0, 0), cfg, 0, 0, 1, cap, store)

	prodEnv := simenv.NewEnv(eng, 0, 0)
	eng.Spawn("app.prod", func(sp *sim.Proc) {
		c := prodEnv.WrapProc(sp)
		for s := 0; s < blocks; s++ {
			sp.Delay(2 * time.Millisecond)
			prod.Write(c, s, 0, nil, blockBytes)
		}
		prod.Close(c)
		prod.Wait(c)
	})
	consEnv := simenv.NewEnv(eng, 1, 0)
	eng.Spawn("app.cons", func(sp *sim.Proc) {
		c := consEnv.WrapProc(sp)
		n := 0
		for {
			_, ok := cons.Read(c)
			if !ok {
				break
			}
			switch {
			case n == slowFrom:
				slowStart = sp.Now()
			case n == slowTo:
				slowEnd = sp.Now()
			}
			if n >= slowFrom && n < slowTo {
				sp.Delay(6 * time.Millisecond) // the step-change slowdown
			} else {
				sp.Delay(200 * time.Microsecond)
			}
			n++
		}
		cons.Wait(c)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return cap.dests, cap.times, slowStart, slowEnd, prod.FinalStats()
}

// relayShare counts the fraction of sends addressed to the stager (endpoint
// 1) within [from, to).
func relayShare(dests []int, times []time.Duration, from, to time.Duration) (share float64, n int) {
	relays := 0
	for i, d := range dests {
		if times[i] < from || times[i] >= to {
			continue
		}
		n++
		if d == 1 {
			relays++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return float64(relays) / float64(n), n
}

// TestAdaptiveStepChangeConvergence is the end-to-end controller test on the
// simulated platform: a step-change consumer slowdown mid-run must shift the
// adaptive split toward the staging relay, and the split must come back to
// the direct path after the consumer recovers — within the bounded window
// the virtual-time phases define.
func TestAdaptiveStepChangeConvergence(t *testing.T) {
	dests, times, slowStart, slowEnd, ps := adaptiveStepRun(t)
	if ps.BlocksWritten != 300 {
		t.Fatalf("wrote %d blocks, want 300", ps.BlocksWritten)
	}
	if ps.BlocksRelayed == 0 {
		t.Fatal("the adaptive controller never used the staging tier")
	}
	if slowStart == 0 || slowEnd <= slowStart {
		t.Fatalf("phase markers broken: slow=[%v,%v]", slowStart, slowEnd)
	}
	end := times[len(times)-1] + 1

	// During the slowdown the relay must carry the bulk of the batches; the
	// settle margin tolerates the in-flight batches of the step instant.
	settle := 10 * time.Millisecond
	slow, n := relayShare(dests, times, slowStart+settle, slowEnd)
	if n == 0 || slow < 0.6 {
		t.Fatalf("slow phase relayed %.0f%% of %d batches, want > 60%%", slow*100, n)
	}
	// After recovery the controller must hand traffic back to the direct
	// path within a bounded number of batches: allow a few Decay constants,
	// then require a mostly-direct tail.
	recover := slowEnd + 60*time.Millisecond
	tail, n := relayShare(dests, times, recover, end)
	if n == 0 || tail > 0.3 {
		t.Fatalf("post-recovery relayed %.0f%% of %d batches, want < 30%%", tail*100, n)
	}
}

// TestAdaptiveStepChangeDeterministic pins the controller's simenv
// reproducibility end to end: two identical runs must produce the identical
// send-by-send routing sequence.
func TestAdaptiveStepChangeDeterministic(t *testing.T) {
	d1, t1, _, _, _ := adaptiveStepRun(t)
	d2, t2, _, _, _ := adaptiveStepRun(t)
	if len(d1) != len(d2) {
		t.Fatalf("send counts diverged: %d vs %d", len(d1), len(d2))
	}
	for i := range d1 {
		if d1[i] != d2[i] || t1[i] != t2[i] {
			t.Fatalf("send %d diverged: (%d,%v) vs (%d,%v)", i, d1[i], t1[i], d2[i], t2[i])
		}
	}
}
