package core

import (
	"sync"
	"testing"
	"time"

	"zipper/internal/block"
	"zipper/internal/rt"
	"zipper/internal/rt/realenv"
)

// captureTransport wraps a transport and records the block count of every
// mixed message, so tests can assert on batch shapes.
type captureTransport struct {
	inner rt.Transport
	mu    sync.Mutex
	sizes []int
}

func (t *captureTransport) Send(c rt.Ctx, to int, m rt.Message) {
	t.mu.Lock()
	t.sizes = append(t.sizes, len(m.Blocks))
	t.mu.Unlock()
	t.inner.Send(c, to, m)
}

func (t *captureTransport) batchSizes() []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]int(nil), t.sizes...)
}

// batchRig builds a one-producer one-consumer real-platform pair with the
// capture transport in the middle.
func batchRig(t *testing.T, cfg Config, window int) (*realenv.Env, *Producer, *Consumer, *captureTransport) {
	t.Helper()
	env := realenv.New()
	net := realenv.NewNetwork(1, window)
	fs, err := realenv.NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tr := &captureTransport{inner: net}
	cons := NewConsumer(env, cfg, 0, 1, net.Inbox(0), fs)
	prod := NewProducer(env, cfg, 0, 0, tr, fs)
	return env, prod, cons, tr
}

func TestSimBatchingReducesMessages(t *testing.T) {
	// Deterministic virtual-time comparison: the same slow-consumer workload
	// with batching on must deliver the same blocks in at most half the
	// messages the unbatched protocol used.
	run := func(batch int) (msgs, sent, analyzed int64) {
		cfg := Config{BufferBlocks: 32, DisableSteal: true, MaxBatchBlocks: batch}
		r := newSimRig(cfg, 2, 1, 2)
		runSimWorkflow(t, r, 10, 8, 1<<20, 200*time.Microsecond, 5*time.Millisecond)
		for _, p := range r.prod {
			st := p.FinalStats()
			msgs += st.Messages
			sent += st.BlocksSent
		}
		for _, c := range r.cons {
			analyzed += c.FinalStats().BlocksAnalyzed
		}
		return
	}
	msgs1, sent1, analyzed1 := run(1)
	msgs8, sent8, analyzed8 := run(8)
	const blocks = 2 * 10 * 8
	if sent1 != blocks || sent8 != blocks || analyzed1 != blocks || analyzed8 != blocks {
		t.Fatalf("delivery mismatch: sent %d/%d analyzed %d/%d want %d",
			sent1, sent8, analyzed1, analyzed8, blocks)
	}
	if msgs8*2 > msgs1 {
		t.Fatalf("batching did not halve message count: %d (batch=8) vs %d (batch=1)", msgs8, msgs1)
	}
}

func TestBatchLargerThanBuffer(t *testing.T) {
	// MaxBatchBlocks far above BufferBlocks must clamp to whatever the buffer
	// holds, not block waiting for an unreachable batch size.
	cfg := Config{BufferBlocks: 4, MaxBatchBlocks: 64, DisableSteal: true}
	env, prod, cons, tr := batchRig(t, cfg, 1)
	c := env.Ctx()
	const n = 40
	go func() {
		for s := 0; s < n; s++ {
			prod.Write(c, s, 0, make([]byte, 256), 256)
		}
		prod.Close(c)
	}()
	seen := 0
	for {
		if _, ok := cons.Read(c); !ok {
			break
		}
		seen++
		time.Sleep(500 * time.Microsecond) // let the buffer fill between reads
	}
	prod.Wait(c)
	cons.Wait(c)
	if seen != n {
		t.Fatalf("analyzed %d blocks, want %d", seen, n)
	}
	for _, s := range tr.batchSizes() {
		if s > cfg.BufferBlocks {
			t.Fatalf("batch of %d exceeds buffer capacity %d", s, cfg.BufferBlocks)
		}
	}
}

func TestMaxBatchBytesSmallerThanOneBlock(t *testing.T) {
	// A byte cap below the block size degenerates to one block per message
	// but must never wedge the sender.
	cfg := Config{BufferBlocks: 8, MaxBatchBlocks: 8, MaxBatchBytes: 100, DisableSteal: true}
	env, prod, cons, tr := batchRig(t, cfg, 2)
	c := env.Ctx()
	const n = 20
	go func() {
		for s := 0; s < n; s++ {
			prod.Write(c, s, 0, make([]byte, 1024), 1024)
		}
		prod.Close(c)
	}()
	seen := 0
	for {
		if _, ok := cons.Read(c); !ok {
			break
		}
		seen++
	}
	prod.Wait(c)
	cons.Wait(c)
	if seen != n {
		t.Fatalf("analyzed %d blocks, want %d", seen, n)
	}
	for _, s := range tr.batchSizes() {
		if s > 1 {
			t.Fatalf("byte cap of 100 allowed a %d-block batch", s)
		}
	}
	ps := prod.Stats(c)
	if ps.BlocksSent != n {
		t.Fatalf("sent %d blocks, want %d", ps.BlocksSent, n)
	}
}

func TestMaxBatchBytesSplitsBatches(t *testing.T) {
	// With 1 KiB blocks and a 2.5 KiB cap, no batch may carry more than two
	// blocks even though MaxBatchBlocks would allow eight.
	cfg := Config{BufferBlocks: 16, MaxBatchBlocks: 8, MaxBatchBytes: 2560, DisableSteal: true}
	env, prod, cons, tr := batchRig(t, cfg, 1)
	c := env.Ctx()
	const n = 30
	go func() {
		for s := 0; s < n; s++ {
			prod.Write(c, s, 0, make([]byte, 1024), 1024)
		}
		prod.Close(c)
	}()
	seen := 0
	for {
		if _, ok := cons.Read(c); !ok {
			break
		}
		seen++
		time.Sleep(200 * time.Microsecond)
	}
	prod.Wait(c)
	cons.Wait(c)
	if seen != n {
		t.Fatalf("analyzed %d blocks, want %d", seen, n)
	}
	for _, s := range tr.batchSizes() {
		if s > 2 {
			t.Fatalf("2.5 KiB cap allowed a %d-block batch of 1 KiB blocks", s)
		}
	}
}

func TestFinRacingPartialBatch(t *testing.T) {
	// Close immediately after a burst smaller than one batch: every block
	// must still arrive, with the Fin strictly after the data. Run many
	// rounds to give the race detector a chance at interleavings.
	for round := 0; round < 20; round++ {
		cfg := Config{BufferBlocks: 16, MaxBatchBlocks: 8}
		env, prod, cons, tr := batchRig(t, cfg, 1)
		c := env.Ctx()
		const n = 3 // less than MaxBatchBlocks
		go func() {
			for s := 0; s < n; s++ {
				prod.Write(c, s, 0, []byte{byte(s)}, 1)
			}
			prod.Close(c) // races the sender's partial batch
		}()
		got := map[int]bool{}
		for {
			b, ok := cons.Read(c)
			if !ok {
				break
			}
			got[b.ID.Step] = true
		}
		prod.Wait(c)
		cons.Wait(c)
		if len(got) != n {
			t.Fatalf("round %d: analyzed %d blocks, want %d", round, len(got), n)
		}
		var total int
		for _, s := range tr.batchSizes() {
			total += s
		}
		if total != n {
			t.Fatalf("round %d: transport carried %d blocks, want %d", round, total, n)
		}
	}
}

func TestBatchedBlocksArriveInOrder(t *testing.T) {
	// Within one producer the network path preserves write order even when
	// batches form and split arbitrarily.
	cfg := Config{BufferBlocks: 32, MaxBatchBlocks: 5, DisableSteal: true}
	env, prod, cons, _ := batchRig(t, cfg, 1)
	c := env.Ctx()
	const n = 64
	go func() {
		for s := 0; s < n; s++ {
			prod.Write(c, s, 0, []byte{byte(s)}, 1)
		}
		prod.Close(c)
	}()
	last := -1
	for {
		b, ok := cons.Read(c)
		if !ok {
			break
		}
		if b.ID.Step <= last {
			t.Fatalf("out-of-order delivery: step %d after %d", b.ID.Step, last)
		}
		last = b.ID.Step
	}
	prod.Wait(c)
	cons.Wait(c)
	if last != n-1 {
		t.Fatalf("last step %d, want %d", last, n-1)
	}
}

func TestPreserveStoreFailureDoesNotDeadlock(t *testing.T) {
	// Preserve mode with a failing spool: the output thread dies with an
	// error while the consumer buffer is full of analyzed-but-unstored
	// entries. The receiver must still drain the stream (over capacity) so
	// Wait completes and the error surfaces, instead of hanging forever.
	env := realenv.New()
	net := realenv.NewNetwork(1, 2)
	base, err := realenv.NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fs := &failStore{BlockStore: base, failWrites: 1 << 30}
	cfg := Config{BufferBlocks: 4, ConsumerBufferBlocks: 4, Mode: Preserve,
		MaxBatchBlocks: 4, DisableSteal: true}
	cons := NewConsumer(env, cfg, 0, 1, net.Inbox(0), fs)
	prod := NewProducer(env, cfg, 0, 0, net, fs)
	c := env.Ctx()
	const n = 40 // far more than the consumer buffer holds
	go func() {
		for s := 0; s < n; s++ {
			prod.Write(c, s, 0, make([]byte, 64), 64)
		}
		prod.Close(c)
	}()
	for {
		if _, ok := cons.Read(c); !ok {
			break
		}
	}
	done := make(chan struct{})
	go func() {
		prod.Wait(c)
		cons.Wait(c)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Wait hung after Preserve-mode store failure")
	}
	if cons.Err(c) == nil {
		t.Fatal("store failure did not surface via Err")
	}
}

func TestReleaseBlockDefersUntilStored(t *testing.T) {
	// Preserve mode: releasing right after Read must not hand the payload to
	// the pool before the output thread stores it — the preserved file must
	// hold the original bytes.
	cfg := Config{BufferBlocks: 8, Mode: Preserve, MaxBatchBlocks: 4}
	env := realenv.New()
	net := realenv.NewNetwork(1, 2)
	fs, err := realenv.NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cons := NewConsumer(env, cfg, 0, 1, net.Inbox(0), fs)
	prod := NewProducer(env, cfg, 0, 0, net, fs)
	c := env.Ctx()
	const n = 24
	go func() {
		for s := 0; s < n; s++ {
			data := block.GetPayload(512)
			for i := range data {
				data[i] = byte(s)
			}
			prod.Write(c, s, 0, data, 512)
		}
		prod.Close(c)
	}()
	for {
		b, ok := cons.Read(c)
		if !ok {
			break
		}
		step := b.ID.Step
		for _, v := range b.Data {
			if v != byte(step) {
				t.Fatalf("step %d payload corrupted before release: %d", step, v)
			}
		}
		cons.ReleaseBlock(c, b)
		// Churn the pool so a premature release would get overwritten.
		scratch := block.GetPayload(512)
		for i := range scratch {
			scratch[i] = 0xFF
		}
		(&block.Block{Data: scratch}).Release()
	}
	prod.Wait(c)
	cons.Wait(c)
	if err := cons.Err(c); err != nil {
		t.Fatal(err)
	}
	// Every preserved block must hold its original bytes.
	for s := 0; s < n; s++ {
		id := block.ID{Rank: 0, Step: s, Seq: s}
		b, err := fs.ReadBlock(c, id, 512)
		if err != nil {
			t.Fatalf("block %v not preserved: %v", id, err)
		}
		for _, v := range b.Data {
			if v != byte(s) {
				t.Fatalf("preserved block %v corrupted: got %d", id, v)
			}
		}
	}
}
