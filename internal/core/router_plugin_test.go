package core

import (
	"sync"
	"testing"
	"time"

	"zipper/internal/flow"
	"zipper/internal/rt/realenv"
	"zipper/internal/staging"
)

// alternatingRouter relays every other batch — a minimal custom policy that
// exercises the Config.NewRouter plug-in point.
type alternatingRouter struct {
	mu sync.Mutex
	n  int
}

func (a *alternatingRouter) Route(flow.Signals) flow.Route {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.n++
	if a.n%2 == 0 {
		return flow.Relay
	}
	return flow.Direct
}
func (*alternatingRouter) ObserveSend(flow.Route, time.Duration, time.Duration, int, int64) {}
func (*alternatingRouter) ObserveStall(time.Duration, time.Duration)                        {}

// TestCustomRouterPlugin wires a NewRouter policy through a real
// producer/stager/consumer rig — deliberately leaving RoutePolicy at its
// RouteDirect zero value, the trap case: because the custom router relays
// data batches, the producer must still route its Fin through the stager
// (the relayed-anything clause), or the consumer would count the stream
// finished while relayed blocks sit in the stager.
func TestCustomRouterPlugin(t *testing.T) {
	env := realenv.New()
	net := realenv.NewNetwork(2, 2) // consumer endpoint 0, stager endpoint 1
	fs, err := realenv.NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		BufferBlocks: 8, MaxBatchBlocks: 2, DisableSteal: true,
		NewRouter: func() flow.Router { return &alternatingRouter{} },
	}
	cons := NewConsumer(env, cfg, 0, 1, net.Inbox(0), fs)
	spill, err := fs.Partition("stage0")
	if err != nil {
		t.Fatal(err)
	}
	stg := staging.NewStager(env, staging.Config{BufferBlocks: 32, Producers: 1}, 0, net.Inbox(1), net, spill)
	cfg.StagerLevel = func(addr int) *flow.Level { return stg.Level() }
	prod := NewStagedProducer(env, cfg, 0, 0, 1, net, fs)

	const blocks = 100
	go func() {
		c := env.Ctx()
		for s := 0; s < blocks; s++ {
			data := make([]byte, 64)
			data[0] = byte(s)
			prod.Write(c, s, 0, data, 64)
		}
		prod.Close(c)
	}()
	ctx := env.Ctx()
	n := 0
	for {
		b, ok := cons.Read(ctx)
		if !ok {
			break
		}
		if b.Data[0] != byte(b.ID.Step) {
			t.Fatalf("block %v corrupted", b.ID)
		}
		n++
	}
	prod.Wait(ctx)
	stg.Wait(ctx)
	cons.Wait(ctx)
	if n != blocks {
		t.Fatalf("delivered %d blocks, want %d — relayed data stranded behind a direct Fin?", n, blocks)
	}
	ps := prod.FinalStats()
	if ps.BlocksSent == 0 || ps.BlocksRelayed == 0 {
		t.Fatalf("custom router not in charge: sent=%d relayed=%d", ps.BlocksSent, ps.BlocksRelayed)
	}
	if ps.BlocksSent+ps.BlocksRelayed != blocks {
		t.Fatalf("split %d+%d != %d", ps.BlocksSent, ps.BlocksRelayed, blocks)
	}
}
