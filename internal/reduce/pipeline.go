package reduce

import (
	"runtime"
	"sync"

	"zipper/internal/block"
)

// Pipeline fans a batch's encode cost out across a bounded worker pool, so
// in-transit bandwidth reduction stops serializing on the relay critical
// path: a producer's sender thread (or a stager's forwarder under the
// pressure gate) hands its drained batch to EncodeBatch and gets every
// block back encoded, having burned sender-thread CPU only on its share.
//
// Only stateless operators (Compress, Stride) may run here — each block
// encodes in isolation, in any order, so the workers race nothing. Delta is
// excluded by construction (NewPipeline panics; Config.Validate rejects the
// combination first): a Delta encode consumes the retained raw payload of
// the same stream's previous step as its XOR base and then replaces it, so
// step N+1's encode has a true data dependency on step N's, and the decoder
// replays that exact base chain in step order. Delta therefore stays on its
// single in-order path — one owning encoder per stream path, as before.
//
// Ordering and byte-identity: EncodeBatch encodes blocks IN PLACE and
// returns only after the whole batch is done, so the caller's slice order —
// and with it the per-{rank,seq} stream run order the consumer's decoder
// relies on — is untouched. Per-block flate output is deterministic, so a
// pipelined run produces byte-identical wire traffic to an inline run; only
// the wall-clock cost moves.
type Pipeline struct {
	cfg     Config
	workers int
	jobs    chan pipeJob
	wg      sync.WaitGroup
	encs    sync.Pool // caller-side *Encoder instances
	once    sync.Once
}

type pipeJob struct {
	b   *block.Block
	wg  *sync.WaitGroup
	err *pipeErr
}

// pipeErr collects the first encode error of a batch.
type pipeErr struct {
	mu  sync.Mutex
	err error
}

func (pe *pipeErr) set(err error) {
	pe.mu.Lock()
	if pe.err == nil {
		pe.err = err
	}
	pe.mu.Unlock()
}

func (pe *pipeErr) get() error {
	pe.mu.Lock()
	defer pe.mu.Unlock()
	return pe.err
}

// NewPipeline starts a worker pool for cfg. workers ≤ 0 scales the pool to
// GOMAXPROCS (the cfg.Workers == -1 contract). cfg must validate and must
// name a stateless operator.
func NewPipeline(cfg Config, workers int) *Pipeline {
	if !cfg.Operator.Stateless() {
		panic("reduce: pipeline requires a stateless operator (Delta needs its single in-order path)")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pipeline{cfg: cfg, workers: workers, jobs: make(chan pipeJob, 4*workers)}
	p.encs.New = func() any { return NewEncoder(cfg) }
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// Workers reports the pool size.
func (p *Pipeline) Workers() int { return p.workers }

func (p *Pipeline) worker() {
	defer p.wg.Done()
	enc := NewEncoder(p.cfg)
	for j := range p.jobs {
		if err := enc.EncodeBlock(j.b); err != nil {
			j.err.set(err)
		}
		j.wg.Done()
	}
}

// EncodeBatch encodes every eligible block of the batch in place and
// returns once all are done, reporting the first error. The calling thread
// participates: it keeps the batch tail — plus anything a saturated queue
// refuses — for itself, so a batch never parks behind other senders'
// backlogs without contributing CPU, and a single-block batch never pays
// dispatch at all.
func (p *Pipeline) EncodeBatch(blocks []*block.Block) error {
	var work []*block.Block
	for _, b := range blocks {
		if b != nil && b.Enc == 0 && b.Bytes > 0 {
			work = append(work, b)
		}
	}
	if len(work) == 0 {
		return nil
	}
	enc := p.encs.Get().(*Encoder)
	defer p.encs.Put(enc)
	if len(work) == 1 {
		return enc.EncodeBlock(work[0])
	}
	var wg sync.WaitGroup
	var pe pipeErr
	inline := work[len(work)-1:]
	for _, b := range work[:len(work)-1] {
		wg.Add(1)
		select {
		case p.jobs <- pipeJob{b: b, wg: &wg, err: &pe}:
		default:
			wg.Done()
			inline = append(inline, b)
		}
	}
	var inlineErr error
	for _, b := range inline {
		if err := enc.EncodeBlock(b); err != nil && inlineErr == nil {
			inlineErr = err
		}
	}
	wg.Wait()
	if err := pe.get(); err != nil {
		return err
	}
	return inlineErr
}

// Close stops the workers. Call only after every thread that submits
// batches has exited (zipper's Job.Wait closes the pipeline after joining
// producers and stagers). Idempotent.
func (p *Pipeline) Close() {
	p.once.Do(func() {
		close(p.jobs)
		p.wg.Wait()
	})
}
