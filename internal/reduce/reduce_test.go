package reduce

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"zipper/internal/block"
)

// smoothField builds a compressible float64 payload: a piecewise-constant
// wave (64-sample plateaus) plus a small step-dependent drift — the shape
// of a well-resolved simulation field, where neighboring cells repeat
// values and adjacent steps barely differ.
func smoothField(step, n int) []byte {
	buf := make([]byte, n*8)
	for i := 0; i < n; i++ {
		v := math.Sin(float64(i/64)) + 0.001*float64(step)
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	return buf
}

func mkBlock(rank, step, seq int, data []byte) *block.Block {
	return block.New(block.ID{Rank: rank, Step: step, Seq: seq}, 0, data)
}

func TestCompressRoundTrip(t *testing.T) {
	raw := smoothField(0, 4096)
	b := mkBlock(0, 0, 0, append([]byte(nil), raw...))
	e := NewEncoder(Config{Operator: Compress})
	if err := e.EncodeBlock(b); err != nil {
		t.Fatal(err)
	}
	if b.Enc != uint8(Compress) {
		t.Fatalf("block not encoded (enc=%d)", b.Enc)
	}
	if b.EncBytes >= b.Bytes {
		t.Fatalf("compress grew the payload: %d ≥ %d", b.EncBytes, b.Bytes)
	}
	if b.Bytes != int64(len(raw)) {
		t.Fatalf("raw size clobbered: %d", b.Bytes)
	}
	d := NewDecoder()
	if err := d.DecodeBlock(b); err != nil {
		t.Fatal(err)
	}
	if b.Enc != 0 || b.EncBytes != 0 {
		t.Fatalf("stamp not cleared: enc=%d encBytes=%d", b.Enc, b.EncBytes)
	}
	if !bytes.Equal(b.Data, raw) {
		t.Fatal("compress round-trip corrupted payload")
	}
}

func TestCompressSkipsIncompressible(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	raw := make([]byte, 4096)
	rng.Read(raw)
	b := mkBlock(0, 0, 0, append([]byte(nil), raw...))
	e := NewEncoder(Config{Operator: Compress})
	if err := e.EncodeBlock(b); err != nil {
		t.Fatal(err)
	}
	if b.Enc != 0 {
		t.Fatalf("random payload encoded anyway (encBytes=%d raw=%d)", b.EncBytes, b.Bytes)
	}
	if !bytes.Equal(b.Data, raw) {
		t.Fatal("skipped encode still touched the payload")
	}
}

func TestDeltaRoundTripAcrossSteps(t *testing.T) {
	e := NewEncoder(Config{Operator: Delta})
	d := NewDecoder()
	var fullSize, deltaSize int64
	for step := 0; step < 5; step++ {
		raw := smoothField(step, 4096)
		b := mkBlock(2, step, 7, append([]byte(nil), raw...))
		if err := e.EncodeBlock(b); err != nil {
			t.Fatal(err)
		}
		if b.Enc != uint8(Delta) {
			t.Fatalf("step %d not encoded", step)
		}
		if step == 0 {
			fullSize = b.EncBytes
		} else if step == 1 {
			deltaSize = b.EncBytes
		}
		if err := d.DecodeBlock(b); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if !bytes.Equal(b.Data, raw) {
			t.Fatalf("step %d: delta round-trip corrupted payload", step)
		}
	}
	if deltaSize >= fullSize {
		t.Fatalf("delta step (%d B) not smaller than full step (%d B)", deltaSize, fullSize)
	}
}

func TestDeltaStreamsAreIndependent(t *testing.T) {
	e := NewEncoder(Config{Operator: Delta})
	d := NewDecoder()
	// Interleave two (rank, seq) streams: each must delta against its own
	// previous step, not whatever encoded last.
	for step := 0; step < 3; step++ {
		for _, seq := range []int{0, 1} {
			raw := smoothField(step+seq*100, 1024)
			b := mkBlock(0, step, seq, append([]byte(nil), raw...))
			if err := e.EncodeBlock(b); err != nil {
				t.Fatal(err)
			}
			if err := d.DecodeBlock(b); err != nil {
				t.Fatalf("step %d seq %d: %v", step, seq, err)
			}
			if !bytes.Equal(b.Data, raw) {
				t.Fatalf("step %d seq %d corrupted", step, seq)
			}
		}
	}
}

func TestDeltaBaseMismatchErrors(t *testing.T) {
	e := NewEncoder(Config{Operator: Delta})
	b0 := mkBlock(0, 0, 0, smoothField(0, 512))
	b1 := mkBlock(0, 1, 0, smoothField(1, 512))
	if err := e.EncodeBlock(b0); err != nil {
		t.Fatal(err)
	}
	if err := e.EncodeBlock(b1); err != nil {
		t.Fatal(err)
	}
	// Decode the delta frame without its base: must error, never emit a
	// silently corrupt field.
	d := NewDecoder()
	if err := d.DecodeBlock(b1); err == nil {
		t.Fatal("decoding a delta with no base succeeded")
	}
}

func TestStrideRoundTripIsExpansion(t *testing.T) {
	const n = 1024
	raw := smoothField(0, n)
	b := mkBlock(0, 0, 0, append([]byte(nil), raw...))
	e := NewEncoder(Config{Operator: Stride, Stride: 4})
	if err := e.EncodeBlock(b); err != nil {
		t.Fatal(err)
	}
	if b.Enc != uint8(Stride) {
		t.Fatal("stride did not encode")
	}
	if b.EncBytes >= b.Bytes/3 {
		t.Fatalf("stride 4 left %d of %d bytes", b.EncBytes, b.Bytes)
	}
	d := NewDecoder()
	if err := d.DecodeBlock(b); err != nil {
		t.Fatal(err)
	}
	if int64(len(b.Data)) != b.Bytes {
		t.Fatalf("expanded to %d bytes, want %d", len(b.Data), b.Bytes)
	}
	// Every kept sample must survive exactly; dropped samples are filled
	// from the nearest kept value on the left.
	for i := 0; i < n; i++ {
		got := b.Data[i*8 : i*8+8]
		want := raw[(i/4)*4*8 : (i/4)*4*8+8]
		if !bytes.Equal(got, want) {
			t.Fatalf("sample %d: stride expansion wrong", i)
		}
	}
}

func TestSimModeModelsReduction(t *testing.T) {
	for _, cfg := range []Config{
		{Operator: Compress},
		{Operator: Delta},
		{Operator: Stride, Stride: 8},
		{Operator: Compress, ModelRatio: 0.5},
	} {
		b := block.NewSized(block.ID{Rank: 1, Step: 2, Seq: 3}, 0, 1<<20)
		e := NewEncoder(cfg)
		if err := e.EncodeBlock(b); err != nil {
			t.Fatal(err)
		}
		if b.Enc != uint8(cfg.Operator) {
			t.Fatalf("%v: sim block not stamped", cfg.Operator)
		}
		want := int64(float64(b.Bytes) * cfg.modelRatio())
		if b.EncBytes != want {
			t.Fatalf("%v: modeled %d bytes, want %d", cfg.Operator, b.EncBytes, want)
		}
		if b.Data != nil {
			t.Fatal("sim encode materialized a payload")
		}
		if err := NewDecoder().DecodeBlock(b); err != nil {
			t.Fatal(err)
		}
		if b.Enc != 0 || b.EncBytes != 0 {
			t.Fatal("sim decode left the stamp")
		}
	}
}

func TestConfigValidate(t *testing.T) {
	good := []Config{
		{},
		{Operator: Compress},
		{Operator: Compress, Level: 9},
		{Operator: Delta, OnPressure: true},
		{Operator: Stride, Stride: 2},
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("%+v: unexpected error %v", c, err)
		}
	}
	bad := []Config{
		{Operator: Kind(9)},
		{Operator: Stride},
		{Operator: Stride, Stride: 1},
		{Operator: Compress, Stride: 2},
		{Operator: Compress, Level: 42},
		{Operator: Compress, ModelRatio: 1.5},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%+v: validated", c)
		}
	}
}

func TestCorruptEncodedPayloadErrors(t *testing.T) {
	// Flate garbage, truncated delta headers, and wrong stride sizes must
	// all surface as errors, not panics or silent corruption.
	cases := []*block.Block{
		{ID: block.ID{}, Bytes: 64, Data: []byte{1, 2, 3}, Enc: uint8(Compress), EncBytes: 3},
		{ID: block.ID{}, Bytes: 64, Data: []byte{}, Enc: uint8(Delta), EncBytes: 0},
		{ID: block.ID{}, Bytes: 64, Data: []byte{deltaXOR, 1, 2}, Enc: uint8(Delta), EncBytes: 3},
		{ID: block.ID{}, Bytes: 64, Data: []byte{7}, Enc: uint8(Delta), EncBytes: 1},
		{ID: block.ID{}, Bytes: 64, Data: []byte{0}, Enc: uint8(Stride), EncBytes: 1},
		{ID: block.ID{}, Bytes: 64, Data: []byte{4, 9}, Enc: uint8(Stride), EncBytes: 2},
		{ID: block.ID{}, Bytes: 64, Data: []byte{1, 2, 3}, Enc: 200, EncBytes: 3},
	}
	for i, b := range cases {
		if err := NewDecoder().DecodeBlock(b); err == nil {
			t.Errorf("case %d: corrupt payload decoded", i)
		}
	}
}
