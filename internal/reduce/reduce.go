// Package reduce implements in-transit payload reduction for the wire path.
// The paper's premise is that the producer→consumer transfer is the resource
// worth protecting; Catalyst-ADIOS2-style operator placement says the
// in-transit tier is where bandwidth-limiting operators belong. This package
// supplies the pluggable operators — per-block compression of the float
// payloads, delta-vs-last-step encoding, stride subsampling — and the
// encode/decode state machines the runtime modules drive.
//
// A reduced block keeps its identity and raw size (Block.Bytes) untouched;
// only the payload representation changes: Block.Data holds the encoded
// bytes, Block.Enc names the operator, and Block.EncBytes is the encoded
// size that the wire, the spill store, and the simulated fabric charge.
// Decoding restores the exact raw payload (Compress, Delta) or a stride-
// expanded approximation (Stride — the one deliberately lossy operator).
//
// In simulation mode blocks carry no payload bytes, so EncodeBlock instead
// models the reduction: it stamps Enc and a deterministic EncBytes derived
// from ModelRatio, and DecodeBlock strips the stamp. Virtual-time wire and
// spill costs then reflect the reduced sizes exactly as real mode does.
package reduce

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"zipper/internal/block"
)

// Kind selects a reduction operator. The zero value means no reduction.
type Kind uint8

const (
	// None leaves payloads untouched.
	None Kind = 0
	// Compress deflates each payload independently (lossless). The cheapest
	// to reason about: stateless, any delivery order, safe to apply at any
	// hop including the spill path.
	Compress Kind = 1
	// Delta XORs each payload against the previous step's payload of the
	// same (rank, seq) stream position, then deflates the sparse difference
	// (lossless). Smooth fields change little between adjacent steps, so the
	// XOR is mostly zero bytes and deflates far below plain Compress. The
	// price is per-stream state on both ends: encoder and decoder must see
	// the stream in step order over a single path.
	Delta Kind = 2
	// Stride keeps every k-th float64 of the payload and drops the rest
	// (lossy). Decode expands each kept value over its window, so the
	// consumer sees a coarsened field of the original size. For analyses
	// that tolerate subsampled input it beats any lossless operator by
	// construction: the wire size is ~1/k regardless of entropy.
	Stride Kind = 3
)

// String names the operator for diagnostics and config errors.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Compress:
		return "compress"
	case Delta:
		return "delta"
	case Stride:
		return "stride"
	default:
		return fmt.Sprintf("reduce.Kind(%d)", uint8(k))
	}
}

// Stateless reports whether the operator can encode any block in isolation.
// Stateless operators may run at any hop — including the stager's spill
// path, where blocks leave the stream order. Delta is the one stateful
// operator: it must run on exactly one in-order path per stream.
func (k Kind) Stateless() bool { return k != Delta }

// Config selects and parameterizes the reduction applied to relayed
// payloads.
type Config struct {
	// Operator picks the reduction; None disables the package entirely.
	Operator Kind
	// Stride is the subsampling factor for the Stride operator: keep every
	// Stride-th float64. Must be ≥ 2 when Operator == Stride.
	Stride int
	// Level is the flate compression level for Compress and Delta
	// (flate.BestSpeed .. flate.BestCompression). 0 means flate.BestSpeed:
	// the wire path trades ratio for CPU by default.
	Level int
	// OnPressure defers reduction to the staging tier's pressure valve:
	// instead of encoding every relayed block at the producer, blocks are
	// encoded by the stager only while its occupancy is above the spill
	// high-water mark — the "compress instead of spill" rung. Off means
	// reduce everything at the producer relay path.
	OnPressure bool
	// ModelRatio overrides the simulated encoded-size ratio
	// (EncBytes = ceil(ModelRatio × Bytes)). 0 means the per-operator
	// default: 0.35 for Compress, 0.22 for Delta, 1/Stride for Stride.
	ModelRatio float64
	// Workers parallelizes the encode of stateless operators (Compress,
	// Stride) across a shared bounded worker pool (see Pipeline): 0 keeps
	// every encode inline on its sending thread — the pinned default,
	// byte-identical to earlier revisions — -1 scales the pool to
	// GOMAXPROCS, and N > 0 uses exactly N workers. Per-block flate output
	// is deterministic, so the parallel encode is byte-identical to inline;
	// only the CPU it burns moves off the relay critical path.
	//
	// Delta must keep Workers == 0 (Validate rejects it): every Delta
	// encode XORs against the retained raw payload of the SAME stream's
	// previous step and then replaces that base, so encode N+1 depends on
	// encode N having completed — and the decoder replays the identical
	// base chain in step order. Parallel workers would race the base
	// update and desync the decoder. Delta stays on its single in-order
	// path by construction.
	Workers int
}

// Enabled reports whether the config names an operator.
func (c Config) Enabled() bool { return c.Operator != None }

// Validate rejects malformed operator parameters.
func (c Config) Validate() error {
	switch c.Operator {
	case None, Compress, Delta, Stride:
	default:
		return fmt.Errorf("reduce: unknown operator %d", uint8(c.Operator))
	}
	if c.Operator == Stride && c.Stride < 2 {
		return fmt.Errorf("reduce: stride operator needs Stride ≥ 2, got %d", c.Stride)
	}
	if c.Operator != Stride && c.Stride != 0 {
		return fmt.Errorf("reduce: Stride is only meaningful for the stride operator")
	}
	if c.Level != 0 && (c.Level < flate.HuffmanOnly || c.Level > flate.BestCompression) {
		return fmt.Errorf("reduce: flate level %d out of range", c.Level)
	}
	if c.ModelRatio < 0 || c.ModelRatio > 1 {
		return fmt.Errorf("reduce: ModelRatio %v out of [0,1]", c.ModelRatio)
	}
	if c.Workers < -1 {
		return fmt.Errorf("reduce: Workers %d out of range (-1 = GOMAXPROCS, 0 = inline, N > 0 = fixed pool)", c.Workers)
	}
	if c.Workers != 0 && c.Operator == None {
		return fmt.Errorf("reduce: Workers is only meaningful with an operator")
	}
	if c.Workers != 0 && !c.Operator.Stateless() {
		return fmt.Errorf("reduce: %v needs its single in-order encode path (each step's encode consumes the previous step's base); Workers must be 0", c.Operator)
	}
	return nil
}

func (c Config) level() int {
	if c.Level == 0 {
		return flate.BestSpeed
	}
	return c.Level
}

func (c Config) modelRatio() float64 {
	if c.ModelRatio > 0 {
		return c.ModelRatio
	}
	switch c.Operator {
	case Compress:
		return 0.35
	case Delta:
		return 0.22
	case Stride:
		return 1 / float64(c.Stride)
	default:
		return 1
	}
}

// streamKey identifies one block stream position across steps: the delta
// base for (rank, seq) is the previous step's block at the same position.
type streamKey struct{ rank, seq int }

// base is the retained raw payload a delta stream encodes (or decodes)
// against, tagged with the step it came from so a reordered or dropped
// block is detected instead of silently corrupting the field.
type base struct {
	step int
	data []byte // privately owned copy, never aliases a pooled payload
}

// Delta wire layout (inside Block.Data when Enc == Delta):
//
//	u8 marker (deltaFull | deltaXOR) | [i64 baseStep, only for deltaXOR] |
//	flate stream of the raw payload (full) or the XOR difference (delta)
const (
	deltaFull = 0 // no usable base: payload is the flated raw bytes
	deltaXOR  = 1 // payload is the flated XOR against base step baseStep
)

// Encoder applies one operator to blocks in place. Not safe for concurrent
// use: each sending thread (a producer's sender, a stager's forwarder)
// owns its encoder, which is also what gives Delta its per-path stream
// state.
type Encoder struct {
	cfg  Config
	buf  bytes.Buffer
	xor  []byte
	last map[streamKey]base
}

// NewEncoder returns an encoder for cfg. cfg must validate.
func NewEncoder(cfg Config) *Encoder {
	e := &Encoder{cfg: cfg}
	if cfg.Operator == Delta {
		e.last = make(map[streamKey]base)
	}
	return e
}

// Kind reports the configured operator.
func (e *Encoder) Kind() Kind { return e.cfg.Operator }

// Stateless reports whether this encoder may be applied off the in-order
// stream path (see Kind.Stateless).
func (e *Encoder) Stateless() bool { return e.cfg.Operator.Stateless() }

// EncodeBlock reduces b's payload in place. Blocks already carrying an
// encoding, and blocks the operator cannot shrink, are left untouched (the
// stateful Delta operator always encodes — see below). In simulation mode
// (b.Data == nil) the reduction is modeled: Enc and EncBytes are stamped
// without touching payload bytes. The replaced raw payload is returned to
// the block pool; for Delta a private copy is retained as the next step's
// base.
func (e *Encoder) EncodeBlock(b *block.Block) error {
	if e.cfg.Operator == None || b.Enc != 0 || b.Bytes <= 0 {
		return nil
	}
	if b.Data == nil {
		// Simulation mode: model the encoded size deterministically.
		enc := int64(float64(b.Bytes) * e.cfg.modelRatio())
		if enc < 1 {
			enc = 1
		}
		if e.cfg.Operator != Delta && enc >= b.Bytes {
			return nil // doesn't pay; leave raw like the real path would
		}
		b.Enc = uint8(e.cfg.Operator)
		b.EncBytes = enc
		return nil
	}
	switch e.cfg.Operator {
	case Compress:
		return e.encodeCompress(b)
	case Delta:
		return e.encodeDelta(b)
	case Stride:
		return e.encodeStride(b)
	}
	return nil
}

// flatePools shares flate.Writers across every Encoder in the process, one
// pool per compression level (index level − HuffmanOnly). A flate.Writer
// carries ~700 KiB of compressor state; before pooling, every encoder
// allocated its own, so encoder churn — a pipeline worker per core, the
// stager's forwarder and spiller pair, short-lived spill encoders — paid
// that allocation again and again. Writers park here between encodes and
// are Reset onto the borrowing encoder's buffer.
var flatePools [flate.BestCompression - flate.HuffmanOnly + 1]sync.Pool

// flateInto deflates src into e.buf (reset first) through a pooled writer.
func (e *Encoder) flateInto(src []byte) error {
	e.buf.Reset()
	lvl := e.cfg.level()
	pool := &flatePools[lvl-flate.HuffmanOnly]
	fw, _ := pool.Get().(*flate.Writer)
	if fw == nil {
		var err error
		if fw, err = flate.NewWriter(&e.buf, lvl); err != nil {
			return fmt.Errorf("reduce: flate init: %w", err)
		}
	} else {
		fw.Reset(&e.buf)
	}
	if _, err := fw.Write(src); err != nil {
		return fmt.Errorf("reduce: flate: %w", err)
	}
	if err := fw.Close(); err != nil {
		return fmt.Errorf("reduce: flate close: %w", err)
	}
	pool.Put(fw)
	return nil
}

// swapPayload installs the encoded payload held in enc, stamps the
// encoding, and recycles the raw payload.
func swapPayload(b *block.Block, kind Kind, enc []byte) {
	raw := block.Block{Data: b.Data}
	b.Data = enc
	b.Enc = uint8(kind)
	b.EncBytes = int64(len(enc))
	raw.Release()
}

func (e *Encoder) encodeCompress(b *block.Block) error {
	if err := e.flateInto(b.Data); err != nil {
		return err
	}
	if int64(e.buf.Len()) >= b.Bytes {
		return nil // incompressible: send raw
	}
	enc := block.GetPayload(e.buf.Len())
	copy(enc, e.buf.Bytes())
	swapPayload(b, Compress, enc)
	return nil
}

// encodeDelta XORs against the retained previous-step payload of the same
// (rank, seq) stream position and deflates the (mostly zero) difference.
// Unlike the stateless operators it never skips: the decoder's base state
// must advance in lockstep with the encoder's, so even a poorly-compressing
// block goes out encoded (as deltaFull when no base fits).
func (e *Encoder) encodeDelta(b *block.Block) error {
	key := streamKey{b.ID.Rank, b.ID.Seq}
	prev, ok := e.last[key]
	marker := byte(deltaFull)
	baseStep := int64(0)
	if ok && int64(len(prev.data)) == b.Bytes {
		marker = deltaXOR
		baseStep = int64(prev.step)
		if cap(e.xor) < len(b.Data) {
			e.xor = make([]byte, len(b.Data))
		}
		e.xor = e.xor[:len(b.Data)]
		for i, v := range b.Data {
			e.xor[i] = v ^ prev.data[i]
		}
		if err := e.flateInto(e.xor); err != nil {
			return err
		}
	} else {
		if err := e.flateInto(b.Data); err != nil {
			return err
		}
	}
	hdrLen := 1
	if marker == deltaXOR {
		hdrLen += 8
	}
	enc := block.GetPayload(hdrLen + e.buf.Len())
	enc[0] = marker
	if marker == deltaXOR {
		binary.LittleEndian.PutUint64(enc[1:9], uint64(baseStep))
	}
	copy(enc[hdrLen:], e.buf.Bytes())
	// Retain a private copy of the raw payload as the next step's base,
	// reusing the outgoing base's buffer when it fits.
	next := prev.data
	if cap(next) < len(b.Data) {
		next = make([]byte, len(b.Data))
	}
	next = next[:len(b.Data)]
	copy(next, b.Data)
	e.last[key] = base{step: b.ID.Step, data: next}
	swapPayload(b, Delta, enc)
	return nil
}

// Stride wire layout (inside Block.Data when Enc == Stride):
//
//	u8 stride | kept float64 words (indices 0, k, 2k, …) | raw tail bytes
//	(len % 8 bytes carried verbatim)
func (e *Encoder) encodeStride(b *block.Block) error {
	k := e.cfg.Stride
	n := len(b.Data) / 8
	if n < 2 || k > 255 {
		return nil // too small to subsample, or stride unencodable in a byte
	}
	kept := (n + k - 1) / k
	tail := len(b.Data) % 8
	encLen := 1 + kept*8 + tail
	if int64(encLen) >= b.Bytes {
		return nil
	}
	enc := block.GetPayload(encLen)
	enc[0] = byte(k)
	o := 1
	for i := 0; i < n; i += k {
		copy(enc[o:o+8], b.Data[i*8:i*8+8])
		o += 8
	}
	copy(enc[o:], b.Data[n*8:])
	swapPayload(b, Stride, enc)
	return nil
}

// Decoder restores reduced payloads in place. Not safe for concurrent use:
// each consumer's receiver thread owns one, which carries the Delta base
// state for every stream the consumer is assigned.
type Decoder struct {
	buf  bytes.Buffer
	fr   io.ReadCloser
	last map[streamKey]base
}

// NewDecoder returns a decoder ready for any operator: the block's Enc tag
// selects the decode path, so the consumer needs no reduction config.
func NewDecoder() *Decoder { return &Decoder{} }

// DecodeBlock restores b's raw payload in place and clears the encoding
// stamp. Unencoded blocks pass through; simulation-mode blocks just drop
// the stamp. The encoded payload is recycled into the block pool.
func (d *Decoder) DecodeBlock(b *block.Block) error {
	if b == nil || b.Enc == 0 {
		return nil
	}
	if b.Data == nil {
		// Simulation mode: strip the modeled reduction.
		b.Enc = 0
		b.EncBytes = 0
		return nil
	}
	var err error
	switch Kind(b.Enc) {
	case Compress:
		err = d.decodeCompress(b)
	case Delta:
		err = d.decodeDelta(b)
	case Stride:
		err = d.decodeStride(b)
	default:
		err = fmt.Errorf("reduce: unknown encoding %d on block %v", b.Enc, b.ID)
	}
	return err
}

// inflateInto inflates src into d.buf (reset first) and checks the decoded
// length against want.
func (d *Decoder) inflateInto(src []byte, want int64) error {
	d.buf.Reset()
	r := bytes.NewReader(src)
	if d.fr == nil {
		d.fr = flate.NewReader(r)
	} else if err := d.fr.(flate.Resetter).Reset(r, nil); err != nil {
		return fmt.Errorf("reduce: flate reset: %w", err)
	}
	// want bounds the copy so a corrupt stream cannot balloon the buffer.
	n, err := io.Copy(&d.buf, io.LimitReader(d.fr, want+1))
	if err != nil {
		return fmt.Errorf("reduce: inflate: %w", err)
	}
	if n != want {
		return fmt.Errorf("reduce: inflated %d bytes, want %d", n, want)
	}
	return nil
}

// swapDecoded installs the raw payload and recycles the encoded one.
func swapDecoded(b *block.Block, raw []byte) {
	enc := block.Block{Data: b.Data}
	b.Data = raw
	b.Enc = 0
	b.EncBytes = 0
	enc.Release()
}

func (d *Decoder) decodeCompress(b *block.Block) error {
	if err := d.inflateInto(b.Data, b.Bytes); err != nil {
		return err
	}
	raw := block.GetPayload(int(b.Bytes))
	copy(raw, d.buf.Bytes())
	swapDecoded(b, raw)
	return nil
}

func (d *Decoder) decodeDelta(b *block.Block) error {
	if len(b.Data) < 1 {
		return fmt.Errorf("reduce: empty delta payload on block %v", b.ID)
	}
	marker := b.Data[0]
	body := b.Data[1:]
	key := streamKey{b.ID.Rank, b.ID.Seq}
	var prev base
	switch marker {
	case deltaFull:
	case deltaXOR:
		if len(body) < 8 {
			return fmt.Errorf("reduce: truncated delta header on block %v", b.ID)
		}
		baseStep := int64(binary.LittleEndian.Uint64(body[:8]))
		body = body[8:]
		var ok bool
		prev, ok = d.last[key]
		if !ok || int64(prev.step) != baseStep || int64(len(prev.data)) != b.Bytes {
			return fmt.Errorf("reduce: delta base mismatch on block %v: have step %d, frame names %d",
				b.ID, prev.step, baseStep)
		}
	default:
		return fmt.Errorf("reduce: bad delta marker %d on block %v", marker, b.ID)
	}
	if err := d.inflateInto(body, b.Bytes); err != nil {
		return err
	}
	raw := block.GetPayload(int(b.Bytes))
	copy(raw, d.buf.Bytes())
	if marker == deltaXOR {
		for i := range raw {
			raw[i] ^= prev.data[i]
		}
	}
	// Retain a private copy as the next step's base, reusing the outgoing
	// base's buffer when it fits.
	if d.last == nil {
		d.last = make(map[streamKey]base)
	}
	next := prev.data
	if cap(next) < len(raw) {
		next = make([]byte, len(raw))
	}
	next = next[:len(raw)]
	copy(next, raw)
	d.last[key] = base{step: b.ID.Step, data: next}
	swapDecoded(b, raw)
	return nil
}

func (d *Decoder) decodeStride(b *block.Block) error {
	if len(b.Data) < 1 {
		return fmt.Errorf("reduce: empty stride payload on block %v", b.ID)
	}
	k := int(b.Data[0])
	if k < 2 {
		return fmt.Errorf("reduce: bad stride %d on block %v", k, b.ID)
	}
	n := int(b.Bytes) / 8
	tail := int(b.Bytes) % 8
	kept := (n + k - 1) / k
	if len(b.Data) != 1+kept*8+tail {
		return fmt.Errorf("reduce: stride payload %d bytes, want %d for %d raw",
			len(b.Data), 1+kept*8+tail, b.Bytes)
	}
	raw := block.GetPayload(int(b.Bytes))
	o := 1
	for i := 0; i < n; i += k {
		word := b.Data[o : o+8]
		o += 8
		for j := i; j < i+k && j < n; j++ {
			copy(raw[j*8:j*8+8], word)
		}
	}
	copy(raw[n*8:], b.Data[o:])
	swapDecoded(b, raw)
	return nil
}
