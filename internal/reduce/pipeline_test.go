package reduce

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"zipper/internal/block"
)

// compressible builds a payload with plateau structure (realistic smooth
// field) seeded per block so different blocks differ.
func compressible(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	data := make([]byte, n)
	level := byte(rng.Intn(256))
	for i := range data {
		if i%64 == 0 {
			level = byte(rng.Intn(256))
		}
		data[i] = level
	}
	return data
}

// TestPipelineMatchesInline pins byte-identity: the same blocks encoded
// through the worker pool come out exactly as the inline encoder produces —
// same bytes, same Enc/EncBytes accounting, same slice order.
func TestPipelineMatchesInline(t *testing.T) {
	for _, cfg := range []Config{
		{Operator: Compress},
		{Operator: Stride, Stride: 4},
	} {
		t.Run(cfg.Operator.String(), func(t *testing.T) {
			const blocks = 64
			mk := func() []*block.Block {
				out := make([]*block.Block, blocks)
				for i := range out {
					data := compressible(8192, int64(i))
					out[i] = mkBlock(i%4, i/4, 0, data)
				}
				return out
			}
			inline := mk()
			enc := NewEncoder(cfg)
			for _, b := range inline {
				if err := enc.EncodeBlock(b); err != nil {
					t.Fatalf("inline encode: %v", err)
				}
			}
			piped := mk()
			p := NewPipeline(cfg, 4)
			defer p.Close()
			if err := p.EncodeBatch(piped); err != nil {
				t.Fatalf("pipeline encode: %v", err)
			}
			for i := range inline {
				a, b := inline[i], piped[i]
				if a.ID != b.ID {
					t.Fatalf("block %d: order changed (%v vs %v)", i, a.ID, b.ID)
				}
				if a.Enc != b.Enc || a.EncBytes != b.EncBytes {
					t.Fatalf("block %d: accounting differs: inline (%d,%d) pipeline (%d,%d)",
						i, a.Enc, a.EncBytes, b.Enc, b.EncBytes)
				}
				if !bytes.Equal(a.Data, b.Data) {
					t.Fatalf("block %d: pipeline output not byte-identical to inline", i)
				}
			}
		})
	}
}

// TestPipelineSaturation pushes many batches through a tiny pool from many
// goroutines so the queue-full inline fallback and worker path interleave;
// every block must still come out encoded exactly once.
func TestPipelineSaturation(t *testing.T) {
	p := NewPipeline(Config{Operator: Compress}, 2)
	defer p.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 20; round++ {
				batch := make([]*block.Block, 16)
				for i := range batch {
					batch[i] = mkBlock(g, round, i, compressible(2048, int64(g*1000+round*100+i)))
				}
				if err := p.EncodeBatch(batch); err != nil {
					panic(fmt.Sprintf("EncodeBatch: %v", err))
				}
				dec := NewDecoder()
				for i, b := range batch {
					if b.Enc != uint8(Compress) {
						panic(fmt.Sprintf("goroutine %d round %d block %d left unencoded", g, round, i))
					}
					want := compressible(2048, int64(g*1000+round*100+i))
					if err := dec.DecodeBlock(b); err != nil {
						panic(fmt.Sprintf("decode: %v", err))
					}
					if !bytes.Equal(b.Data, want) {
						panic(fmt.Sprintf("goroutine %d round %d block %d corrupted", g, round, i))
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestPipelineRejectsDelta pins the documented exclusion at both layers:
// config validation and pipeline construction.
func TestPipelineRejectsDelta(t *testing.T) {
	if err := (Config{Operator: Delta, Workers: 2}).Validate(); err == nil {
		t.Fatal("Validate accepted Delta with Workers != 0")
	}
	if err := (Config{Operator: Compress, Workers: -1}).Validate(); err != nil {
		t.Fatalf("Validate rejected Compress with Workers -1: %v", err)
	}
	if err := (Config{Operator: Compress, Workers: -2}).Validate(); err == nil {
		t.Fatal("Validate accepted Workers -2")
	}
	if err := (Config{Workers: 2}).Validate(); err == nil {
		t.Fatal("Validate accepted Workers without an operator")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewPipeline accepted Delta")
		}
	}()
	NewPipeline(Config{Operator: Delta}, 2)
}

// TestDeltaOrderingProperty is the property test behind Delta's exclusion
// from the pipeline: with the encoder on its single in-order path feeding a
// decoder that replays steps in order — while unrelated Compress pipeline
// traffic churns the shared flate pools on other goroutines — every stream
// round-trips exactly. Run under -race this also proves the pooled flate
// writers are safe across concurrent encoders.
func TestDeltaOrderingProperty(t *testing.T) {
	const (
		streams = 6
		steps   = 40
		size    = 4096
	)
	payload := func(rank, seq, step int) []byte {
		base := compressible(size, int64(rank*100+seq))
		// Smooth per-step drift, the regime Delta is built for.
		for i := 0; i < len(base); i += 128 {
			base[i] = byte(int(base[i]) + step)
		}
		return base
	}

	// Background churn: a Compress pipeline hammering the shared pools.
	churnDone := make(chan struct{})
	churn := NewPipeline(Config{Operator: Compress}, 2)
	go func() {
		defer close(churnDone)
		for round := 0; round < 30; round++ {
			batch := make([]*block.Block, 8)
			for i := range batch {
				batch[i] = mkBlock(90+i, round, 0, compressible(1024, int64(round*10+i)))
			}
			if err := churn.EncodeBatch(batch); err != nil {
				panic(err)
			}
		}
	}()

	wire := make(chan *block.Block, 16)
	go func() {
		enc := NewEncoder(Config{Operator: Delta})
		for step := 0; step < steps; step++ {
			for s := 0; s < streams; s++ {
				rank, seq := s/2, s%2
				b := mkBlock(rank, step, seq, payload(rank, seq, step))
				if err := enc.EncodeBlock(b); err != nil {
					panic(err)
				}
				wire <- b
			}
		}
		close(wire)
	}()
	dec := NewDecoder()
	got := 0
	for b := range wire {
		if err := dec.DecodeBlock(b); err != nil {
			t.Fatalf("decode %v: %v", b.ID, err)
		}
		want := payload(b.ID.Rank, b.ID.Seq, b.ID.Step)
		if !bytes.Equal(b.Data, want) {
			t.Fatalf("stream (%d,%d) step %d did not round-trip", b.ID.Rank, b.ID.Seq, b.ID.Step)
		}
		got++
	}
	if got != streams*steps {
		t.Fatalf("decoded %d blocks, want %d", got, streams*steps)
	}
	<-churnDone
	churn.Close()
}
