package zipper

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// runRingWorkload drives a deterministic staged workload (every producer
// writes the same byte(i^s)-patterned blocks, everything relays through the
// tier) and returns the delivered payload signature keyed by (rank, step)
// plus the job-wide stats. The signature is what the ring pin compares:
// the transport underneath must not change a single delivered byte.
func runRingWorkload(t *testing.T, mut func(*Config)) (map[[2]int]byte, JobStats) {
	t.Helper()
	cfg := Config{
		Producers: 4, Consumers: 2, SpoolDir: t.TempDir(),
		BufferBlocks: 8, Window: 2, MaxBatchBlocks: 4, DisableSteal: true,
		Staging: StagingConfig{
			Stagers: 2, BufferBlocks: 16, RoutePolicy: RouteStaging,
		},
	}
	if mut != nil {
		mut(&cfg)
	}
	job, err := NewJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const blocks = 120
	var wg sync.WaitGroup
	for i := 0; i < cfg.Producers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := job.Producer(i)
			for s := 0; s < blocks; s++ {
				data := NewPayload(256)
				for j := range data {
					data[j] = byte(i ^ s)
				}
				p.Write(s, 0, data)
			}
			p.Close()
		}()
	}
	var mu sync.Mutex
	got := make(map[[2]int]byte)
	var cwg sync.WaitGroup
	for q := 0; q < cfg.Consumers; q++ {
		q := q
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				blk, ok := job.Consumer(q).Read()
				if !ok {
					return
				}
				want := byte(blk.ID.Rank ^ blk.ID.Step)
				for _, v := range blk.Data {
					if v != want {
						t.Errorf("block %+v corrupted (got %d want %d)", blk.ID, v, want)
						break
					}
				}
				mu.Lock()
				got[[2]int{blk.ID.Rank, blk.ID.Step}] = blk.Data[0]
				mu.Unlock()
				blk.Release()
				time.Sleep(20 * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	cwg.Wait()
	job.Wait()
	if len(got) != cfg.Producers*blocks {
		t.Fatalf("delivered %d distinct blocks, want %d", len(got), cfg.Producers*blocks)
	}
	return got, job.Stats()
}

// TestJobRingOffPin is the ring-off pin: RingDepth 0 (the channel transport,
// byte-identical to every job before the ring existed) and RingDepth 64 (the
// SPSC fast path) must deliver exactly the same blocks with the same
// payloads and the same end-to-end accounting. Only the transport under the
// inboxes differs; nothing observable may.
func TestJobRingOffPin(t *testing.T) {
	off, offStats := runRingWorkload(t, nil)
	on, onStats := runRingWorkload(t, func(c *Config) { c.Staging.RingDepth = 64 })
	if len(off) != len(on) {
		t.Fatalf("channel run delivered %d blocks, ring run %d", len(off), len(on))
	}
	for id, v := range off {
		rv, ok := on[id]
		if !ok {
			t.Fatalf("ring run missing block %v", id)
		}
		if rv != v {
			t.Fatalf("block %v payload differs across transports", id)
		}
	}
	for _, tc := range []struct {
		name     string
		off, on  int64
		mustZero bool
	}{
		{"BlocksWritten", offStats.BlocksWritten, onStats.BlocksWritten, false},
		{"BlocksAnalyzed", offStats.BlocksAnalyzed, onStats.BlocksAnalyzed, false},
		{"BlocksSent", offStats.BlocksSent, onStats.BlocksSent, true},
	} {
		if tc.off != tc.on {
			t.Fatalf("%s differs: channel %d, ring %d", tc.name, tc.off, tc.on)
		}
		if tc.mustZero && tc.on != 0 {
			t.Fatalf("%s nonzero (%d) under RouteStaging", tc.name, tc.on)
		}
	}
	if onStats.BlocksRelayed == 0 {
		t.Fatal("ring run relayed nothing; the staged path was not exercised")
	}
}

// TestJobRingTCP runs the same staged workload with the ring transport
// behind the frame-v5 TCP listener: accepted-connection readers and the
// stager loopback forwarders each get their own SPSC lane.
func TestJobRingTCP(t *testing.T) {
	got, st := runRingWorkload(t, func(c *Config) {
		c.TCPAddr = "127.0.0.1:0"
		c.Staging.RingDepth = 64
	})
	if len(got) == 0 {
		t.Fatal("no blocks delivered")
	}
	if st.BlocksSent != 0 {
		t.Fatalf("RouteStaging sent %d blocks direct", st.BlocksSent)
	}
	if st.BlocksRelayed != st.BlocksWritten {
		t.Fatalf("relayed %d of %d written blocks", st.BlocksRelayed, st.BlocksWritten)
	}
}

// TestJobRingParallelReduceIdentity turns on both halves of the fast path —
// the ring transport and the parallel reduction pipeline — and checks the
// conservation law the reduction accounting has always obeyed: every raw
// payload byte is either carried on the wire or reduced away, across both
// relay legs (producer→stager, stager→consumer).
func TestJobRingParallelReduceIdentity(t *testing.T) {
	const (
		producers  = 4
		blocks     = 60
		blockBytes = 8 << 10
	)
	job, err := NewJob(Config{
		Producers: producers, Consumers: 1, SpoolDir: t.TempDir(),
		BufferBlocks: 16, Window: 2, MaxBatchBlocks: 8, DisableSteal: true,
		Staging: StagingConfig{
			Stagers: 1, BufferBlocks: producers * blocks,
			RoutePolicy: RouteStaging,
			RingDepth:   64,
			Reduce:      ReduceConfig{Operator: ReduceCompress, Workers: -1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	delivered := 0
	go func() {
		defer close(done)
		for {
			blk, ok := job.Consumer(0).Read()
			if !ok {
				return
			}
			want := byte((0 / 64) + blk.ID.Step + blk.ID.Rank)
			if blk.Data[0] != want {
				t.Errorf("block %+v did not round-trip through parallel reduction", blk.ID)
			}
			delivered++
			blk.Release()
		}
	}()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			prod := job.Producer(p)
			for i := 0; i < blocks; i++ {
				data := NewPayload(blockBytes)
				for j := range data {
					data[j] = byte((j / 64) + i + p)
				}
				prod.Write(i, 0, data)
			}
			prod.Close()
		}()
	}
	wg.Wait()
	<-done
	job.Wait()
	if delivered != producers*blocks {
		t.Fatalf("delivered %d blocks, want %d", delivered, producers*blocks)
	}
	st := job.Stats()
	raw := 2 * int64(producers*blocks) * int64(blockBytes)
	if st.BytesOnWire+st.BytesReduced != raw {
		t.Fatalf("accounting leak: %d on wire + %d reduced != %d raw",
			st.BytesOnWire, st.BytesReduced, raw)
	}
	if st.BytesReduced == 0 {
		t.Fatal("compressible payload reduced nothing")
	}
}

// TestRingDepthValidation pins the config surface: a negative depth is a
// ConfigError naming the field, zero and positive depths are accepted.
func TestRingDepthValidation(t *testing.T) {
	cfg := Config{
		Producers: 1, Consumers: 1, SpoolDir: t.TempDir(),
		Staging: StagingConfig{RingDepth: -1},
	}
	_, err := NewJob(cfg)
	if err == nil {
		t.Fatal("NewJob accepted RingDepth -1")
	}
	var ce *ConfigError
	if !errors.As(err, &ce) || ce.Field != "Staging.RingDepth" {
		t.Fatalf("RingDepth -1 error = %v, want ConfigError on Staging.RingDepth", err)
	}
	cfg.Staging.RingDepth = 4
	job, err := NewJob(cfg)
	if err != nil {
		t.Fatalf("NewJob rejected RingDepth 4: %v", err)
	}
	job.Producer(0).Close()
	for {
		if _, ok := job.Consumer(0).Read(); !ok {
			break
		}
	}
	job.Wait()
}
