package zipper

import (
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestConfigErrorTyped pins the typed validation surface: every NewJob
// rejection is a *ConfigError naming the offending field, with a non-empty
// reason and the descriptive prose preserved in Error().
func TestConfigErrorTyped(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name  string
		field string
		cfg   Config
	}{
		{"no producers", "Producers",
			Config{Consumers: 1, SpoolDir: dir}},
		{"more consumers than producers", "Consumers",
			Config{Producers: 1, Consumers: 2, SpoolDir: dir}},
		{"missing spool dir", "SpoolDir",
			Config{Producers: 1, Consumers: 1}},
		{"negative buffer", "BufferBlocks",
			Config{Producers: 1, Consumers: 1, SpoolDir: dir, BufferBlocks: -1}},
		{"negative stagers via flat alias", "Staging.Stagers",
			Config{Producers: 1, Consumers: 1, SpoolDir: dir, Stagers: -1}},
		{"relay policy without stagers", "Staging.Stagers",
			Config{Producers: 1, Consumers: 1, SpoolDir: dir, RoutePolicy: RouteStaging}},
		{"elastic with RouteDirect", "Staging.Elastic",
			Config{Producers: 2, Consumers: 1, SpoolDir: dir, Stagers: 2,
				Elastic: ElasticConfig{Enabled: true}}},
		{"fault without staging tier", "Fault",
			Config{Producers: 1, Consumers: 1, SpoolDir: dir,
				Fault: FaultConfig{Enabled: true}}},
		{"fault with RouteDirect", "Fault",
			Config{Producers: 2, Consumers: 1, SpoolDir: dir, Stagers: 2,
				Fault: FaultConfig{Enabled: true}}},
		{"fault lease inside heartbeat", "Fault",
			Config{Producers: 2, Consumers: 1, SpoolDir: dir, Stagers: 2,
				RoutePolicy: RouteStaging,
				Fault: FaultConfig{Enabled: true,
					Heartbeat: time.Millisecond, LeaseTTL: time.Millisecond}}},
	}
	for _, tc := range cases {
		_, err := NewJob(tc.cfg)
		if err == nil {
			t.Errorf("%s: invalid config accepted", tc.name)
			continue
		}
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Errorf("%s: error %T is not a *ConfigError: %v", tc.name, err, err)
			continue
		}
		if ce.Field != tc.field {
			t.Errorf("%s: Field = %q, want %q (reason: %s)", tc.name, ce.Field, tc.field, ce.Reason)
		}
		if ce.Reason == "" {
			t.Errorf("%s: empty Reason", tc.name)
		}
		if ce.Error() == "" {
			t.Errorf("%s: empty Error()", tc.name)
		}
	}
}

// TestConfigStagingAliasEquivalence pins the deprecated flat staging fields
// to the grouped StagingConfig: a config written entirely through the flat
// aliases must normalize to exactly the config written through the group,
// and a non-zero grouped field must win over a conflicting flat alias.
func TestConfigStagingAliasEquivalence(t *testing.T) {
	tuning := AdaptiveTuning{Tau: time.Millisecond}
	el := ElasticConfig{Enabled: true, MinStagers: 2, MaxStagers: 3}
	flat := Config{
		Producers: 4, Consumers: 2, SpoolDir: "spool",
		Stagers: 3, StagerBufferBlocks: 48,
		RoutePolicy: RouteAdaptive, Placement: LeastOccupancy,
		Adaptive: tuning, Elastic: el,
	}
	grouped := Config{
		Producers: 4, Consumers: 2, SpoolDir: "spool",
		Staging: StagingConfig{
			Stagers: 3, BufferBlocks: 48,
			RoutePolicy: RouteAdaptive, Placement: LeastOccupancy,
			Adaptive: tuning, Elastic: el,
		},
	}
	if !reflect.DeepEqual(flat.normalized(), grouped.normalized()) {
		t.Fatalf("flat aliases and grouped StagingConfig normalize differently:\nflat:    %+v\ngrouped: %+v",
			flat.normalized(), grouped.normalized())
	}
	mixed := grouped
	mixed.Stagers = 1 // stale flat alias; the grouped field must win
	n := mixed.normalized()
	if n.Staging.Stagers != 3 || n.Stagers != 3 {
		t.Fatalf("grouped Stagers should win over the flat alias: got group=%d flat=%d",
			n.Staging.Stagers, n.Stagers)
	}
	if reflect.DeepEqual(Config{}.normalized(), grouped.normalized()) {
		t.Fatal("normalized() collapsed distinct configs")
	}
}

// TestFaultJobCrashChurn is the real-platform stress of the survivable data
// plane: stagers are hard-killed while producers are mid-relay, and the run
// must still terminate with every block analyzed and zero blocks lost — the
// failure detector evicts the corpses, the recovery reader replays their
// journals, and replacements respawn into the freed slots. Run under -race
// this also checks the monitor/heartbeat/journal locking.
func TestFaultJobCrashChurn(t *testing.T) {
	const (
		producers   = 4
		consumers   = 2
		bursts      = 3
		burstBlocks = 120
		blockBytes  = 8 << 10
		pause       = 50 * time.Millisecond
		total       = producers * bursts * burstBlocks
	)
	job, err := NewJob(Config{
		Producers: producers, Consumers: consumers, SpoolDir: t.TempDir(),
		BufferBlocks: 16, Window: 2, MaxBatchBlocks: 4, DisableSteal: true,
		Staging: StagingConfig{
			Stagers: 3, BufferBlocks: 32, RoutePolicy: RouteStaging,
		},
		// Generous timings: realenv scheduling jitter must not evict healthy
		// members faster than the test can reason about (fencing keeps even
		// a spurious eviction sound, but the assertions below count kills).
		Fault: FaultConfig{Enabled: true, Heartbeat: 2 * time.Millisecond, LeaseTTL: 25 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	var readers sync.WaitGroup
	for q := 0; q < consumers; q++ {
		readers.Add(1)
		go func(q int) {
			defer readers.Done()
			var sink byte
			for {
				blk, ok := job.Consumer(q).Read()
				if !ok {
					_ = sink
					return
				}
				sink ^= blk.Data[0]
				blk.Release()
			}
		}(q)
	}
	for p := 0; p < producers; p++ {
		go func(p int) {
			prod := job.Producer(p)
			i := 0
			for b := 0; b < bursts; b++ {
				if b > 0 {
					time.Sleep(pause)
				}
				for k := 0; k < burstBlocks; k++ {
					data := NewPayload(blockBytes)
					data[0] = byte(i)
					prod.Write(i, 0, data)
					i++
				}
			}
			prod.Close()
		}(p)
	}
	// Hard-kill two of the three stagers mid-run, spaced a burst apart. The
	// kills happen strictly before Wait, so the failure detector is still
	// running (its final forced sweep catches even a kill whose lease never
	// lapsed).
	kills := 0
	time.Sleep(20 * time.Millisecond)
	if job.InjectStagerCrash(0) {
		kills++
	}
	time.Sleep(pause)
	if job.InjectStagerCrash(1) {
		kills++
	}
	if kills == 0 {
		t.Fatal("no crash could be injected: the tier drained before the test reached it")
	}
	readers.Wait()
	job.Wait()

	st := job.Stats()
	if st.BlocksAnalyzed != total {
		t.Fatalf("analyzed %d of %d blocks after %d injected crashes", st.BlocksAnalyzed, total, kills)
	}
	if st.BlocksLost != 0 {
		t.Fatalf("BlocksLost = %d, want 0: spool replay should recover every journaled block", st.BlocksLost)
	}
	if st.Evictions < int64(kills) {
		t.Fatalf("Evictions = %d, want ≥ %d (one per injected crash)", st.Evictions, kills)
	}
	var evictedInsts int
	for _, sg := range st.Stagers {
		if sg.Evicted {
			evictedInsts++
			if sg.Health != "evicted" {
				t.Errorf("evicted instance reports Health %q", sg.Health)
			}
			if !sg.Drained {
				t.Error("evicted instance not marked Drained")
			}
		}
	}
	if int64(evictedInsts) != st.Evictions {
		t.Errorf("%d instances marked Evicted, but Evictions = %d", evictedInsts, st.Evictions)
	}
	var evicts, replays int
	for _, ev := range st.FailoverEvents {
		switch ev.Kind {
		case "evict":
			evicts++
		case "replay":
			replays++
		case "respawn", "abandon":
		default:
			t.Fatalf("unknown failover event kind %q", ev.Kind)
		}
	}
	if evicts != replays {
		t.Errorf("%d evict events but %d replay events: every eviction must be replayed", evicts, replays)
	}
	if int64(evicts) != st.Evictions {
		t.Errorf("%d evict events, but Evictions = %d", evicts, st.Evictions)
	}
	if st.ReplayedBlocks > 0 {
		var perInst int64
		for _, sg := range st.Stagers {
			perInst += sg.ReplayedBlocks
		}
		if perInst != st.ReplayedBlocks {
			t.Errorf("per-instance ReplayedBlocks sum %d != job total %d", perInst, st.ReplayedBlocks)
		}
	}
}

// TestFaultOffIsInert pins that a zero FaultConfig changes nothing: the
// fault machinery (journals, heartbeats, monitor) must stay out of the
// data path, and the stats surface must stay zero.
func TestFaultOffIsInert(t *testing.T) {
	job, err := NewJob(Config{
		Producers: 2, Consumers: 1, SpoolDir: t.TempDir(),
		Stagers: 2, RoutePolicy: RouteStaging, DisableSteal: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	const steps = 40
	for p := 0; p < 2; p++ {
		go func(p int) {
			prod := job.Producer(p)
			for i := 0; i < steps; i++ {
				data := NewPayload(4 << 10)
				data[0] = byte(i)
				prod.Write(i, 0, data)
			}
			prod.Close()
		}(p)
	}
	n := 0
	for {
		blk, ok := job.Consumer(0).Read()
		if !ok {
			break
		}
		n++
		blk.Release()
	}
	job.Wait()
	if n != 2*steps {
		t.Fatalf("analyzed %d of %d blocks", n, 2*steps)
	}
	if job.InjectStagerCrash(0) {
		t.Error("InjectStagerCrash succeeded with the fault plane off")
	}
	st := job.Stats()
	if st.Evictions != 0 || st.ReplayedBlocks != 0 || st.BlocksLost != 0 || len(st.FailoverEvents) != 0 {
		t.Fatalf("fault-off stats not inert: evictions=%d replayed=%d lost=%d events=%d",
			st.Evictions, st.ReplayedBlocks, st.BlocksLost, len(st.FailoverEvents))
	}
	for _, sg := range st.Stagers {
		if sg.Health != "" || sg.Evicted {
			t.Fatalf("fault-off stager reports health %q evicted=%v", sg.Health, sg.Evicted)
		}
	}
}
